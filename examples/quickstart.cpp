// Quickstart: build a hybrid cluster, wrap it in HybridMR, submit a mixed
// batch of MapReduce jobs and watch Phase I steer them between the native
// and virtual partitions.
//
// When the build has telemetry compiled in (the default), the run also
// dumps quickstart_trace.json (load it in chrome://tracing or Perfetto),
// quickstart_report.json and quickstart_report.csv into the working
// directory.
//
//   $ ./quickstart
#include <cstdio>
#include <fstream>

#include "core/hybridmr.h"
#include "harness/table.h"
#include "interactive/presets.h"
#include "harness/testbed.h"
#include "workload/benchmarks.h"

int main() {
  using namespace hybridmr;

  // A small hybrid data center: 4 native Hadoop nodes plus 8 VMs packed on
  // 4 more physical machines (the paper's 2-VMs-per-PM shape).
  harness::TestBed bed;
  bed.add_native_nodes(4);
  bed.add_virtual_nodes(/*hosts=*/4, /*vms_per_host=*/2);

  core::HybridMROptions options;
  options.phase1.training_cluster_sizes = {2};
  core::HybridMRScheduler hybrid(bed.sim(), bed.cluster(), bed.hdfs(),
                                 bed.mr(), options);
  hybrid.set_telemetry(bed.telemetry());
  hybrid.start();

  // An interactive tenant occupies part of the virtual cluster.
  auto& rubis = hybrid.deploy_interactive(interactive::rubis_params(), 600);

  // Submit a mix of the paper's benchmarks (scaled down so the example
  // finishes in a blink of simulated time).
  struct Row {
    mapred::Job* job;
    core::PhaseOneScheduler::Decision decision;
  };
  std::vector<Row> rows;
  for (const auto& base : {workload::sort_job().with_input_gb(2),
                           workload::pi_est().with_input_gb(0.5),
                           workload::wcount().with_input_gb(2),
                           workload::kmeans().with_input_gb(1)}) {
    Row row;
    row.job = hybrid.submit(base);
    row.decision = hybrid.last_decision();
    rows.push_back(row);
  }

  // Run the simulated cluster until everything finishes.
  while (true) {
    bool done = true;
    for (const auto& row : rows) done = done && row.job->finished();
    if (done) break;
    bed.sim().run_until(bed.sim().now() + 120);
  }
  hybrid.stop();

  harness::banner("HybridMR quickstart: Phase I placements and outcomes");
  harness::Table table({"job", "placement", "est overhead", "JCT (s)",
                        "map (s)", "reduce (s)"});
  for (const auto& row : rows) {
    table.row({row.job->spec().name,
               row.decision.pool == mapred::PlacementPool::kNativeOnly
                   ? "native"
                   : "virtual",
               harness::Table::pct(row.decision.overhead),
               harness::Table::num(row.job->jct()),
               harness::Table::num(row.job->map_phase_seconds()),
               harness::Table::num(row.job->reduce_phase_seconds())});
  }
  table.print();

  std::printf("\nInteractive tenant %s: response time %.0f ms (SLA %.0f ms)\n",
              rubis.name().c_str(), rubis.response_time_s() * 1000,
              rubis.params().sla_s.value() * 1000);
  std::printf("Simulated time: %.0f s, events processed: %zu\n",
              bed.sim().now(), bed.sim().events_processed());

  // Telemetry artifacts: a Chrome/Perfetto trace plus the run report.
  if (bed.telemetry() != nullptr) {
    std::vector<const interactive::InteractiveApp*> apps;
    for (const auto& app : hybrid.apps()) apps.push_back(app.get());
    const telemetry::RunReport report = bed.report(apps);

    std::ofstream trace("quickstart_trace.json");
    bed.telemetry()->trace.to_chrome(trace);
    std::ofstream json("quickstart_report.json");
    report.to_json(json);
    std::ofstream csv("quickstart_report.csv");
    report.to_csv(csv);
    std::printf(
        "Telemetry: %zu trace events -> quickstart_trace.json "
        "(chrome://tracing), report -> quickstart_report.{json,csv}\n",
        bed.telemetry()->trace.size());
  }
  return 0;
}
