// SLA guardian: co-locate interactive applications with batch MapReduce on
// a virtualized cluster and watch HybridMR's IPS keep the interactive SLA
// (the paper's Fig. 9(a) scenario, narrated).
//
//   $ ./sla_guardian
#include <cstdio>

#include "core/hybridmr.h"
#include "harness/testbed.h"
#include "interactive/presets.h"
#include "sim/log.h"
#include "workload/benchmarks.h"

int main() {
  using namespace hybridmr;
  sim::Log::threshold() = sim::LogLevel::kInfo;  // narrate decisions

  harness::TestBed bed;
  // Two virtualized hosts: each hosts one interactive VM and one batch VM.
  auto hosts = bed.add_plain_machines(2);
  std::vector<cluster::VirtualMachine*> app_vms;
  for (auto* host : hosts) {
    app_vms.push_back(bed.add_plain_vm(*host));
    auto* batch_vm = bed.add_plain_vm(*host);
    bed.hdfs().add_datanode(*batch_vm);
    bed.mr().add_tracker(*batch_vm);
  }
  // A spare host gives the IPS somewhere to migrate batch VMs.
  bed.add_plain_machines(1);

  core::HybridMROptions options;
  options.enable_phase1 = false;  // virtual-only cluster here
  core::HybridMRScheduler hybrid(bed.sim(), bed.cluster(), bed.hdfs(),
                                 bed.mr(), options);
  hybrid.start();

  auto& rubis = hybrid.deploy_interactive(interactive::rubis_params(), 900,
                                          app_vms[0]);
  auto& tpcw = hybrid.deploy_interactive(interactive::tpcw_params(), 700,
                                         app_vms[1]);

  // Batch work arrives a minute in.
  bed.sim().at(60, [&] {
    hybrid.submit(workload::sort_job().with_input_gb(4));
    hybrid.submit(workload::wcount().with_input_gb(2));
  });

  // Report the interactive latencies every simulated minute.
  std::printf("\n%8s %14s %14s %10s %10s %10s\n", "t(min)", "rubis(ms)",
              "tpcw(ms)", "throttle", "pause", "requeue");
  bed.sim().every(60, [&] {
    const auto& s = hybrid.ips().stats();
    std::printf("%8.0f %14.0f %14.0f %10d %10d %10d\n",
                bed.sim().now() / 60, rubis.response_time_s() * 1000,
                tpcw.response_time_s() * 1000, s.throttles, s.pauses,
                s.requeues);
  });

  bed.run_until(35 * 60);  // the paper's 35-minute window
  hybrid.stop();

  const double rubis_violations =
      interactive::SlaMonitor::violation_fraction(rubis, 0, bed.sim().now());
  const double tpcw_violations =
      interactive::SlaMonitor::violation_fraction(tpcw, 0, bed.sim().now());
  std::printf("\nSLA violation fraction: rubis %.1f%%, tpcw %.1f%%\n",
              rubis_violations * 100, tpcw_violations * 100);
  std::printf("IPS actions: %d throttles, %d pauses, %d requeues, "
              "%d VM migrations, %d restores\n",
              hybrid.ips().stats().throttles, hybrid.ips().stats().pauses,
              hybrid.ips().stats().requeues,
              hybrid.ips().stats().vm_migrations,
              hybrid.ips().stats().restores);
  return 0;
}
