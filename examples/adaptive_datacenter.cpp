// Adaptive data center: the paper's closing claim in action — "it is
// possible to dynamically change the native and virtual cluster
// configurations to accommodate variations in workload mix".
//
// A controller watches the batch backlog and the interactive load, and
// uses the Reconfigurator to convert idle machines between native-Hadoop
// duty (batch-heavy phases) and virtualized duty (interactive-heavy
// phases), on the fly, while jobs keep running.
//
//   $ ./adaptive_datacenter
#include <cstdio>

#include "core/hybridmr.h"
#include "core/reconfigurator.h"
#include "harness/table.h"
#include "harness/testbed.h"
#include "interactive/presets.h"
#include "workload/benchmarks.h"

int main() {
  using namespace hybridmr;

  harness::TestBed bed;
  auto nodes = bed.add_native_nodes(6);      // everything starts native
  bed.add_virtual_nodes(2, 2);               // a small virtual seed

  core::HybridMROptions options;
  options.enable_phase1 = false;  // keep the story focused on reconfig
  core::HybridMRScheduler hybrid(bed.sim(), bed.cluster(), bed.hdfs(),
                                 bed.mr(), options);
  hybrid.start();
  core::Reconfigurator reconfig(bed.cluster(), bed.hdfs(), bed.mr());

  // Phase 1 (0-15 min): batch-heavy. Phase 2 (15-40 min): an interactive
  // surge arrives and batch drains. Phase 3 (40+): batch returns.
  for (double t : {10.0, 60.0, 120.0}) {
    bed.sim().at(t, [&] {
      bed.mr().submit(workload::sort_job().with_input_gb(2));
    });
  }
  std::vector<interactive::InteractiveApp*> apps;
  bed.sim().at(15 * 60, [&] {
    for (int i = 0; i < 3; ++i) {
      apps.push_back(&hybrid.deploy_interactive(
          interactive::rubis_params(), 700));
    }
  });
  bed.sim().at(40 * 60, [&] {
    for (auto* app : apps) app->set_clients(150);
    bed.mr().submit(workload::wcount().with_input_gb(3));
    bed.mr().submit(workload::kmeans().with_input_gb(2));
  });

  // The adaptation loop: virtualize idle native nodes when interactive
  // demand outstrips VM supply; nativize empty virtual hosts when batch
  // backlog dominates.
  bed.sim().every(60, [&] {
    int active_clients = 0;
    for (auto* app : apps) active_clients += app->clients();
    const int wanted_vm_hosts = active_clients / 700 + 2;
    int vm_hosts = 0;
    for (const auto& m : bed.cluster().machines()) {
      if (!m->vms().empty()) ++vm_hosts;
    }
    if (vm_hosts < wanted_vm_hosts) {
      for (auto* site : nodes) {
        auto* machine = static_cast<cluster::Machine*>(site);
        if (machine->vms().empty() && reconfig.idle(*machine) &&
            !reconfig.virtualize_node(*machine, 2).empty()) {
          break;  // one conversion per minute
        }
      }
    } else if (vm_hosts > wanted_vm_hosts && bed.mr().active_jobs() > 0) {
      for (const auto& m : bed.cluster().machines()) {
        if (!m->vms().empty() && reconfig.idle(*m) &&
            reconfig.nativize_host(*m)) {
          break;
        }
      }
    }
  });

  // Report the cluster shape every 10 minutes.
  harness::Table table({"minute", "native nodes", "VM nodes", "active jobs",
                        "conversions"});
  bed.sim().every(10 * 60, [&] {
    int native_trackers = 0;
    int vm_trackers = 0;
    for (const auto& tr : bed.mr().trackers()) {
      (tr->site().is_virtual() ? vm_trackers : native_trackers)++;
    }
    table.row({harness::Table::num(bed.sim().now() / 60, 0),
               std::to_string(native_trackers), std::to_string(vm_trackers),
               std::to_string(bed.mr().active_jobs()),
               std::to_string(reconfig.stats().virtualized +
                              reconfig.stats().nativized)});
  });

  bed.run_until(60 * 60);
  hybrid.stop();

  harness::banner("Adaptive reconfiguration over a one-hour workload shift");
  table.print();
  std::printf(
      "\nconversions: %d virtualized, %d nativized; re-replicated %.0f MB "
      "of HDFS data along the way\n",
      reconfig.stats().virtualized, reconfig.stats().nativized,
      bed.hdfs().re_replicated_mb().value());
  for (auto* app : apps) app->stop();
  return 0;
}
