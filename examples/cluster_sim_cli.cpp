// cluster_sim_cli: run any of the paper's benchmarks on any cluster shape.
//
//   $ ./cluster_sim_cli <benchmark> <nodes> <native|virtual|dom0|split> [data_gb]
//   $ ./cluster_sim_cli sort 8 virtual 4
//
// Prints job phase timings, locality and utilization metrics — a handy way
// to poke at the substrate.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/testbed.h"
#include "workload/benchmarks.h"

int main(int argc, char** argv) {
  using namespace hybridmr;
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <twitter|wcount|piest|distgrep|sort|kmeans> "
                 "<nodes> <native|virtual|dom0|split> [data_gb]\n",
                 argv[0]);
    return 2;
  }
  const std::string bench = argv[1];
  const int nodes = std::atoi(argv[2]);
  const std::string mode = argv[3];

  mapred::JobSpec spec;
  try {
    spec = workload::benchmark(bench);
  } catch (const std::out_of_range& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (argc > 4) spec = spec.with_input_gb(std::atof(argv[4]));

  harness::TestBed bed;
  if (mode == "native") {
    bed.add_native_nodes(nodes);
  } else if (mode == "virtual") {
    bed.add_virtual_nodes((nodes + 1) / 2, 2);
  } else if (mode == "dom0") {
    bed.add_dom0_nodes(nodes);
  } else if (mode == "split") {
    bed.add_split_nodes((nodes + 1) / 2, 2);
  } else {
    std::fprintf(stderr, "unknown mode: %s\n", mode.c_str());
    return 2;
  }

  mapred::Job* job = bed.mr().submit(spec);
  bed.sim().run();
  const double end = bed.sim().now();

  std::printf("benchmark      : %s (%s, %.1f GB)\n", spec.name.c_str(),
              to_string(spec.job_class), spec.input_gb);
  std::printf("cluster        : %d %s nodes (%zu tasktrackers)\n", nodes,
              mode.c_str(), bed.mr().trackers().size());
  std::printf("JCT            : %.1f s  (map %.1f s, reduce %.1f s)\n",
              job->jct(), job->map_phase_seconds(),
              job->reduce_phase_seconds());
  std::printf("tasks          : %zu maps, %zu reduces, %d speculative\n",
              job->maps().size(), job->reduces().size(),
              bed.mr().speculative_launched());
  const double local = bed.hdfs().bytes_read_local_mb().value();
  const double remote = bed.hdfs().bytes_read_remote_mb().value();
  std::printf("input locality : %.1f%% local (%.0f MB local, %.0f MB remote)\n",
              local + remote > 0 ? 100.0 * local / (local + remote) : 100.0,
              local, remote);
  std::printf("hdfs writes    : %.0f MB (replicated)\n",
              bed.hdfs().bytes_written_mb().value());
  std::printf("cpu util       : %.1f%%  energy: %.1f Wh\n",
              bed.cluster().mean_utilization(cluster::ResourceKind::kCpu, 0,
                                             end) *
                  100,
              bed.cluster().energy_joules(0, end).value() / 3600.0);
  return 0;
}
