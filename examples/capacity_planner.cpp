// Capacity planner: given a fixed pool of physical machines, sweep hybrid
// native/virtual splits of the infrastructure, run the same workload mix on
// each, and recommend the split with the best Performance/Energy — the
// paper's Fig. 11 design-trade-off analysis as a tool.
//
//   $ ./capacity_planner [total_pms]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/table.h"
#include "harness/testbed.h"
#include "workload/benchmarks.h"

namespace {

struct Outcome {
  int native_pms = 0;
  int virtual_hosts = 0;
  int vms = 0;
  double mean_jct = 0;
  double energy_wh = 0;
  double utilization = 0;
  double perf_per_energy = 0;  // 1 / (mean JCT * energy), scaled
};

Outcome evaluate(int native_pms, int virtual_hosts) {
  using namespace hybridmr;
  harness::TestBed bed;
  bed.add_native_nodes(native_pms);
  bed.add_virtual_nodes(virtual_hosts, 2);

  const std::vector<mapred::JobSpec> jobs = {
      workload::sort_job().with_input_gb(2).with_reducers(4),
      workload::kmeans().with_input_gb(1).with_reducers(4),
      workload::wcount().with_input_gb(2).with_reducers(4),
      workload::dist_grep().with_input_gb(2),
  };
  const auto jcts = bed.run_jobs(jobs);
  const double end = bed.sim().now();

  Outcome o;
  o.native_pms = native_pms;
  o.virtual_hosts = virtual_hosts;
  o.vms = virtual_hosts * 2;
  for (double jct : jcts) o.mean_jct += jct / jcts.size();
  o.energy_wh = bed.cluster().energy_joules(0, end).value() / 3600.0;
  o.utilization = bed.cluster().mean_utilization(
      cluster::ResourceKind::kCpu, 0, end);
  o.perf_per_energy = 1e6 / (o.mean_jct * o.energy_wh);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const int total = argc > 1 ? std::atoi(argv[1]) : 8;

  hybridmr::harness::banner(
      "Capacity planner: hybrid splits of " + std::to_string(total) +
      " physical machines (workload: sort+kmeans+wcount+distgrep)");
  hybridmr::harness::Table table(
      {"native PMs", "virt hosts", "VMs", "mean JCT (s)", "energy (Wh)",
       "cpu util", "perf/energy"});

  Outcome best;
  bool have_best = false;
  for (int native = 1; native < total; ++native) {
    const int hosts = total - native;
    const Outcome o = evaluate(native, hosts);
    table.row({std::to_string(o.native_pms), std::to_string(o.virtual_hosts),
               std::to_string(o.vms),
               hybridmr::harness::Table::num(o.mean_jct),
               hybridmr::harness::Table::num(o.energy_wh),
               hybridmr::harness::Table::pct(o.utilization),
               hybridmr::harness::Table::num(o.perf_per_energy, 3)});
    if (!have_best || o.perf_per_energy > best.perf_per_energy) {
      best = o;
      have_best = true;
    }
  }
  table.print();
  std::printf(
      "\nRecommended split: %d native PMs + %d virtualized hosts (%d VMs)"
      " -> perf/energy %.3f\n",
      best.native_pms, best.virtual_hosts, best.vms, best.perf_per_energy);
  return 0;
}
