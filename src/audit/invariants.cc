#include "audit/invariants.h"

#include <cstdio>
#include <cstdlib>

namespace hybridmr::audit {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void fail(const char* component, const char* invariant, double sim_time,
          const std::vector<Detail>& details) {
  std::fprintf(stderr, "=== HYBRIDMR AUDIT VIOLATION ===\n");
  std::fprintf(stderr, "component: %s\n", component);
  std::fprintf(stderr, "invariant: %s\n", invariant);
  if (sim_time >= 0) {
    std::fprintf(stderr, "sim_time:  %.9f\n", sim_time);
  }
  for (const auto& [key, value] : details) {
    std::fprintf(stderr, "  %s: %s\n", key.c_str(), value.c_str());
  }
  std::fprintf(stderr, "================================\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace hybridmr::audit
