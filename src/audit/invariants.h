// Runtime invariant auditing (HYBRIDMR_AUDIT).
//
// The simulator's value as a reproduction rests on determinism and
// conservation correctness: a silently corrupted slot count or an
// over-committed resource share invalidates every figure derived from a
// run. This layer compiles hard checkpoints into the substrate when the
// HYBRIDMR_AUDIT CMake option is ON (which defines HYBRIDMR_AUDIT_ENABLED):
//
//   - event queue:    time never moves backwards; no orphaned handlers
//                     (a handler with no heap entry can never fire);
//   - simulation:     at() with a past target time is a hard violation
//                     instead of a counted clamp;
//   - cluster:        per-resource allocations never exceed machine
//                     capacity; power stays within the model's bounds;
//   - mapred:         slot conservation on every tracker; completed tasks
//                     have no running attempts; shuffle traffic is
//                     conserved when partitioned by source site;
//   - hdfs:           every block's replica list is non-empty, duplicate
//                     free, and points only at registered datanodes.
//
// A violation prints a structured dump to stderr and aborts, so CI runs
// (scripts/ci.sh audit stage) fail loudly at the first corrupted state
// rather than producing subtly wrong figures. When the option is OFF the
// checkpoints compile to nothing. See docs/CORRECTNESS.md.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace hybridmr::audit {

#if defined(HYBRIDMR_AUDIT_ENABLED)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// True when invariant auditing is compiled into this build.
constexpr bool enabled() { return kEnabled; }

/// One key/value line of a violation dump.
using Detail = std::pair<std::string, std::string>;

/// Reports an invariant violation: structured dump to stderr, then abort.
/// Pass a negative `sim_time` when no simulated clock is in scope.
[[noreturn]] void fail(const char* component, const char* invariant,
                       double sim_time, const std::vector<Detail>& details);

/// Formats a double for a violation detail (full precision, no locale).
std::string num(double v);

}  // namespace hybridmr::audit

// Checkpoint macro: evaluates nothing when auditing is compiled out. The
// details argument is a braced initializer-list of audit::Detail pairs and
// is only constructed on failure.
#if defined(HYBRIDMR_AUDIT_ENABLED)
#define HYBRIDMR_AUDIT_CHECK(cond, component, invariant, sim_time, ...) \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::hybridmr::audit::fail((component), (invariant), (sim_time),     \
                              __VA_ARGS__);                             \
    }                                                                   \
  } while (false)
#else
#define HYBRIDMR_AUDIT_CHECK(cond, component, invariant, sim_time, ...) \
  do {                                                                  \
  } while (false)
#endif
