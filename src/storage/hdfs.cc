#include "storage/hdfs.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "audit/invariants.h"
#include "telemetry/telemetry.h"

namespace hybridmr::storage {

using cluster::ExecutionSite;
using cluster::Resources;
using cluster::Workload;
using cluster::WorkloadPtr;

bool same_host(const ExecutionSite& a, const ExecutionSite& b) {
  return a.host_machine() != nullptr &&
         a.host_machine() == b.host_machine();
}

DataNode* Hdfs::add_datanode(ExecutionSite& site) {
  datanodes_.push_back(std::make_unique<DataNode>(site));
  return datanodes_.back().get();
}

DataNode* Hdfs::datanode_on(const ExecutionSite* site) const {
  for (const auto& dn : datanodes_) {
    if (dn->site() == site) return dn.get();
  }
  return nullptr;
}

void Hdfs::audit_verify_placement() const {
#if defined(HYBRIDMR_AUDIT_ENABLED)
  for (std::size_t f = 0; f < files_.size(); ++f) {
    const File& file = files_[f];
    for (std::size_t b = 0; b < file.block_replicas.size(); ++b) {
      const auto& reps = file.block_replicas[b];
      const auto detail = [&](const char* what) {
        return std::vector<audit::Detail>{
            {"file", file.name},
            {"block", audit::num(static_cast<double>(b))},
            {"replicas", audit::num(static_cast<double>(reps.size()))},
            {"datanodes", audit::num(static_cast<double>(datanodes_.size()))},
            {"problem", what}};
      };
      // A block may be empty only when a crash destroyed its last replica
      // (and then it must be marked lost): "no replicas" and "lost" are
      // the same condition seen from two ledgers.
      const bool lost = b < file.block_lost.size() && file.block_lost[b] != 0;
      HYBRIDMR_AUDIT_CHECK(reps.empty() == lost, "storage.hdfs",
                           "replicas_match_placement", -1,
                           detail(lost ? "lost block still has replicas"
                                       : "block has no replicas"));
      HYBRIDMR_AUDIT_CHECK(reps.size() <= datanodes_.size(), "storage.hdfs",
                           "replicas_match_placement", -1,
                           detail("more replicas than datanodes"));
      for (std::size_t i = 0; i < reps.size(); ++i) {
        const bool live =
            std::any_of(datanodes_.begin(), datanodes_.end(),
                        [&](const auto& dn) { return dn.get() == reps[i]; });
        HYBRIDMR_AUDIT_CHECK(live, "storage.hdfs",
                             "replicas_match_placement", -1,
                             detail("replica points at unregistered node"));
        const bool dup = std::find(reps.begin() + i + 1, reps.end(),
                                   reps[i]) != reps.end();
        HYBRIDMR_AUDIT_CHECK(!dup, "storage.hdfs",
                             "replicas_match_placement", -1,
                             detail("duplicate replica for block"));
      }
    }
  }
#endif
}

bool Hdfs::remove_datanode(ExecutionSite& site) {
  auto it = std::find_if(datanodes_.begin(), datanodes_.end(),
                         [&](const auto& dn) { return dn->site() == &site; });
  if (it == datanodes_.end() || datanodes_.size() <= 1) return false;
  DataNode* leaving = it->get();

  for (auto& file : files_) {
    for (std::size_t b = 0; b < file.block_replicas.size(); ++b) {
      auto& reps = file.block_replicas[b];
      auto pos = std::find(reps.begin(), reps.end(), leaving);
      if (pos == reps.end()) continue;
      const sim::MegaBytes mb = block_mb_of(
          file.size_mb, static_cast<int>(b),
          static_cast<int>(file.block_replicas.size()), file.block_mb);
      // Pick a surviving target not already holding the block.
      DataNode* target = nullptr;
      std::size_t probe = sim_.rng().index(datanodes_.size());
      for (std::size_t k = 0; k < datanodes_.size(); ++k) {
        DataNode* candidate = datanodes_[(probe + k) % datanodes_.size()].get();
        if (candidate == leaving) continue;
        if (std::find(reps.begin(), reps.end(), candidate) != reps.end()) {
          continue;
        }
        target = candidate;
        break;
      }
      if (target == nullptr) {
        // Every survivor already holds it; just drop the leaving copy.
        reps.erase(pos);
        continue;
      }
      // Copy from a surviving replica when one exists, else from the
      // leaving node itself (it drains before shutdown).
      ExecutionSite* source = &site;
      for (DataNode* dn : reps) {
        if (dn != leaving) {
          source = dn->site();
          break;
        }
      }
      *pos = target;
      target->add_stored(mb);
      re_replicated_mb_ += mb;
      transfer(*source, *target->site(), mb, nullptr);
    }
  }
  datanodes_.erase(it);
  audit_verify_placement();
  return true;
}

int Hdfs::crash_datanodes(const std::vector<ExecutionSite*>& sites) {
  std::vector<DataNode*> dying;
  for (ExecutionSite* s : sites) {
    DataNode* dn = datanode_on(s);
    if (dn != nullptr &&
        std::find(dying.begin(), dying.end(), dn) == dying.end()) {
      dying.push_back(dn);
    }
  }
  if (dying.empty()) return 0;
  auto is_dying = [&](const DataNode* dn) {
    return std::find(dying.begin(), dying.end(), dn) != dying.end();
  };

  for (auto& file : files_) {
    for (std::size_t b = 0; b < file.block_replicas.size(); ++b) {
      auto& reps = file.block_replicas[b];
      const std::size_t before = reps.size();
      reps.erase(std::remove_if(reps.begin(), reps.end(), is_dying),
                 reps.end());
      const std::size_t killed = before - reps.size();
      if (killed == 0) continue;
      if (reps.empty()) {
        // The crash took the last copy; nothing to re-replicate from.
        file.block_lost[b] = 1;
        ++blocks_lost_;
        continue;
      }
      // Restore the replication factor from a surviving copy. The replica
      // map is updated immediately (NameNode bookkeeping); the copy
      // traffic is injected asynchronously, as in the decommission path.
      const sim::MegaBytes mb = block_mb_of(
          file.size_mb, static_cast<int>(b),
          static_cast<int>(file.block_replicas.size()), file.block_mb);
      ExecutionSite* source = reps.front()->site();
      for (std::size_t i = 0; i < killed; ++i) {
        DataNode* target = nullptr;
        std::size_t probe = sim_.rng().index(datanodes_.size());
        for (std::size_t k = 0; k < datanodes_.size(); ++k) {
          DataNode* candidate =
              datanodes_[(probe + k) % datanodes_.size()].get();
          if (is_dying(candidate)) continue;
          if (std::find(reps.begin(), reps.end(), candidate) != reps.end()) {
            continue;
          }
          target = candidate;
          break;
        }
        if (target == nullptr) break;  // every healthy node already holds it
        reps.push_back(target);
        target->add_stored(mb);
        re_replicated_mb_ += mb;
        transfer(*source, *target->site(), mb, nullptr);
      }
    }
  }
  datanodes_.erase(
      std::remove_if(datanodes_.begin(), datanodes_.end(),
                     [&](const auto& dn) { return is_dying(dn.get()); }),
      datanodes_.end());
  audit_verify_placement();
  return static_cast<int>(dying.size());
}

int Hdfs::crash_datanode(ExecutionSite& site) {
  return crash_datanodes({&site});
}

bool Hdfs::has_lost_block(FileId file) const {
  const File& f = files_[file];
  return std::any_of(f.block_lost.begin(), f.block_lost.end(),
                     [](char lost) { return lost != 0; });
}

int Hdfs::min_replication() const {
  int min_reps = -1;
  for (const auto& file : files_) {
    for (std::size_t b = 0; b < file.block_replicas.size(); ++b) {
      if (b < file.block_lost.size() && file.block_lost[b] != 0) continue;
      const int n = static_cast<int>(file.block_replicas[b].size());
      if (min_reps < 0 || n < min_reps) min_reps = n;
    }
  }
  return min_reps;
}

Hdfs::FileId Hdfs::stage_file(const std::string& name, sim::MegaBytes size_mb,
                              sim::MegaBytes block_mb) {
  assert(!datanodes_.empty() && "stage_file needs at least one datanode");
  File file;
  file.name = name;
  file.size_mb = size_mb;
  file.block_mb = block_mb > sim::MegaBytes{0}
                      ? block_mb
                      : cal_.hdfs_block_mb;
  const int blocks = std::max(
      1, static_cast<int>(std::ceil(file.size_mb / file.block_mb)));
  file.block_replicas.reserve(static_cast<std::size_t>(blocks));
  for (int b = 0; b < blocks; ++b) {
    // Random primary with a rotating offset: spreads blocks evenly like
    // HDFS's random placement without correlating consecutive blocks with
    // adjacent (possibly same-host) datanodes.
    const std::size_t start =
        (placement_cursor_ + sim_.rng().index(datanodes_.size()) *
                                 2654435761u) %
        datanodes_.size();
    ++placement_cursor_;
    DataNode* primary = datanodes_[start].get();
    std::vector<DataNode*> reps{primary};
    const int want = std::min<int>(cal_.hdfs_replicas,
                                   static_cast<int>(datanodes_.size()));
    std::size_t probe = start + 1 + sim_.rng().index(datanodes_.size());
    while (static_cast<int>(reps.size()) < want) {
      DataNode* candidate = datanodes_[probe++ % datanodes_.size()].get();
      if (std::find(reps.begin(), reps.end(), candidate) == reps.end()) {
        reps.push_back(candidate);
      }
    }
    const sim::MegaBytes mb = block_mb_of(file.size_mb, b, blocks,
                                          file.block_mb);
    for (DataNode* dn : reps) dn->add_stored(mb);
    file.block_replicas.push_back(std::move(reps));
  }
  file.block_lost.assign(file.block_replicas.size(), 0);
  files_.push_back(std::move(file));
  audit_verify_placement();
  return files_.size() - 1;
}

int Hdfs::num_blocks(FileId file) const {
  return static_cast<int>(files_[file].block_replicas.size());
}

sim::MegaBytes Hdfs::block_mb_of(sim::MegaBytes size_mb, int block, int blocks,
                                 sim::MegaBytes block_size) {
  if (block + 1 < blocks) return block_size;
  const sim::MegaBytes tail = size_mb - block_size * (blocks - 1);
  return tail > sim::MegaBytes{0} ? tail : size_mb;
}

sim::MegaBytes Hdfs::block_size_mb(FileId file, int block) const {
  const File& f = files_[file];
  return block_mb_of(f.size_mb, block,
                     static_cast<int>(f.block_replicas.size()), f.block_mb);
}

const std::vector<DataNode*>& Hdfs::replicas(FileId file, int block) const {
  return files_[file].block_replicas[static_cast<std::size_t>(block)];
}

Locality Hdfs::locality_of(FileId file, int block,
                           const ExecutionSite* site) const {
  Locality best = Locality::kRemote;
  for (const DataNode* dn : replicas(file, block)) {
    if (dn->site() == site) return Locality::kNodeLocal;
    if (site != nullptr && same_host(*dn->site(), *site)) {
      best = Locality::kHostLocal;
    }
  }
  return best;
}

void FlowHandle::cancel() {
  if (!state_ || state_->finished) return;
  state_->finished = true;
  if (auto primary = state_->primary.lock()) {
    primary->on_complete = nullptr;
    if (primary->site() != nullptr) primary->site()->remove(primary.get());
  }
  for (auto& [site, w] : state_->secondaries) {
    if (w->site() != nullptr) site->remove(w.get());
  }
  state_->secondaries.clear();
}

double FlowHandle::progress() const {
  if (!state_ || state_->finished) return 1.0;
  const auto primary = state_->primary.lock();
  return primary ? primary->progress() : 1.0;
}

bool FlowHandle::active() const { return state_ && !state_->finished; }

void FlowHandle::set_paused(bool paused) {
  if (!state_ || state_->finished) return;
  if (auto primary = state_->primary.lock()) primary->set_paused(paused);
  for (auto& [site, w] : state_->secondaries) w->set_paused(paused);
}

void FlowHandle::set_caps(const cluster::Resources& caps) {
  if (!state_ || state_->finished) return;
  if (auto primary = state_->primary.lock()) primary->set_caps(caps);
}

void Hdfs::set_telemetry(telemetry::Hub* hub) {
  prof_ = hub != nullptr && hub->profiler.enabled() ? &hub->profiler
                                                    : nullptr;
  if (prof_ != nullptr) {
    prof_flow_scope_ = prof_->intern("storage.flow_setup");
  }
}

FlowHandle Hdfs::run_flow(ExecutionSite& primary_site, WorkloadPtr primary,
                          std::vector<std::pair<ExecutionSite*, WorkloadPtr>>
                              secondaries,
                          DoneFn done) {
  telemetry::Scope prof_scope(prof_, prof_flow_scope_);
  if (prof_ != nullptr) prof_->add(telemetry::WorkCounter::kHdfsFlows);
  auto state = std::make_shared<FlowHandle::State>();
  // The state holds the primary weakly; the primary's completion callback
  // holds the state strongly. The hosting site owns the primary, so the
  // whole structure is released on completion, cancellation or teardown
  // (Machine::reschedule clears on_complete after firing it).
  state->primary = primary;
  state->secondaries = std::move(secondaries);
  primary->on_complete = [state, done = std::move(done)]() {
    if (state->finished) return;
    state->finished = true;
    for (auto& [site, w] : state->secondaries) {
      if (w->site() != nullptr) site->remove(w.get());
    }
    state->secondaries.clear();
    if (done) done();
  };
  for (auto& [site, w] : state->secondaries) site->add(w);
  primary_site.add(std::move(primary));
  return FlowHandle(state);
}

FlowHandle Hdfs::read_block(FileId file, int block, ExecutionSite& reader,
                            DoneFn done, double fraction) {
  if (prof_ != nullptr) prof_->add(telemetry::WorkCounter::kHdfsReads);
  const sim::MegaBytes mb = block_size_mb(file, block) * fraction;
  const auto& reps = replicas(file, block);
  assert(!reps.empty());

  // Closest replica: node-local, then host-local, then any.
  DataNode* chosen = nullptr;
  Locality locality = Locality::kRemote;
  for (DataNode* dn : reps) {
    if (dn->site() == &reader) {
      chosen = dn;
      locality = Locality::kNodeLocal;
      break;
    }
    if (locality == Locality::kRemote && same_host(*dn->site(), reader)) {
      chosen = dn;
      locality = Locality::kHostLocal;
    }
  }
  if (chosen == nullptr) {
    chosen = reps[sim_.rng().index(reps.size())];
  }

  const sim::MBps disk_rate = cal_.hdfs_stream_disk_mbps;
  const sim::MBps net_rate = cal_.hdfs_stream_net_mbps;

  switch (locality) {
    case Locality::kNodeLocal: {
      read_local_mb_ += mb;
      Resources d;
      d.disk = disk_rate.value();
      d.cpu = cal_.hdfs_serve_cpu_per_stream;
      return run_flow(
          reader, std::make_shared<Workload>("hdfs-read", d, mb / disk_rate),
          {}, std::move(done));
    }
    case Locality::kHostLocal: {
      // Served by a sibling VM over the Xen loopback: disk on the serving
      // datanode paces the flow; no physical NIC usage.
      read_local_mb_ += mb;
      Resources d;
      d.disk = disk_rate.value();
      d.cpu = cal_.hdfs_serve_cpu_per_stream;
      return run_flow(
          *chosen->site(),
          std::make_shared<Workload>("hdfs-serve", d, mb / disk_rate), {},
          std::move(done));
    }
    case Locality::kRemote: {
      read_remote_mb_ += mb;
      Resources reader_d;
      reader_d.net = net_rate.value();
      reader_d.cpu = cal_.hdfs_read_cpu_per_stream;
      Resources server_d;
      server_d.disk = net_rate.value();  // disk paced by the network stream
      server_d.net = net_rate.value();
      server_d.cpu = cal_.hdfs_serve_cpu_per_stream;
      auto primary =
          std::make_shared<Workload>("hdfs-read-remote", reader_d,
                                     mb / net_rate);
      std::vector<std::pair<ExecutionSite*, WorkloadPtr>> secs;
      secs.emplace_back(chosen->site(),
                        std::make_shared<Workload>("hdfs-serve-remote",
                                                   server_d, Workload::kService));
      return run_flow(reader, std::move(primary), std::move(secs),
                      std::move(done));
    }
  }
  return {};
}

std::vector<DataNode*> Hdfs::pick_replicas(const ExecutionSite* origin,
                                           int count) {
  std::vector<DataNode*> out;
  DataNode* local = datanode_on(origin);
  if (local == nullptr && origin != nullptr) {
    // Split architecture: no datanode on the writer VM itself — prefer the
    // storage VM on the same physical host (loopback, no NIC traffic).
    for (const auto& dn : datanodes_) {
      if (same_host(*dn->site(), *origin)) {
        local = dn.get();
        break;
      }
    }
  }
  if (local != nullptr) out.push_back(local);
  std::size_t probe = sim_.rng().index(std::max<std::size_t>(
      1, datanodes_.size()));
  while (static_cast<int>(out.size()) < count &&
         out.size() < datanodes_.size()) {
    DataNode* candidate = datanodes_[probe++ % datanodes_.size()].get();
    if (std::find(out.begin(), out.end(), candidate) == out.end()) {
      out.push_back(candidate);
    }
  }
  return out;
}

FlowHandle Hdfs::write(ExecutionSite& writer, sim::MegaBytes mb, DoneFn done,
                       int replicas) {
  if (prof_ != nullptr) prof_->add(telemetry::WorkCounter::kHdfsWrites);
  const int want =
      std::min<int>(replicas > 0 ? replicas : cal_.hdfs_replicas,
                    std::max<int>(1, datanodes_.size()));
  const auto reps = pick_replicas(&writer, want);
  const sim::MBps disk_rate = cal_.hdfs_stream_disk_mbps;
  const sim::MBps net_rate = cal_.hdfs_stream_net_mbps;
  written_mb_ += mb;
  for (DataNode* dn : reps) dn->add_stored(mb);

  // The pipeline is paced by its slowest stage; each replica is charged
  // its own disk (plus network for remote hops). The writer itself only
  // touches disk when it hosts the first replica — a split-architecture
  // TaskTracker VM just pushes the stream to its sibling storage VM.
  Resources writer_d;
  writer_d.disk =
      !reps.empty() && reps[0]->site() == &writer ? disk_rate.value() : 0;
  writer_d.cpu = cal_.hdfs_serve_cpu_per_stream;
  bool writer_has_remote_hop = false;
  std::vector<std::pair<ExecutionSite*, WorkloadPtr>> secs;
  for (DataNode* dn : reps) {
    if (dn->site() == &writer) continue;
    Resources rep_d;
    rep_d.disk = disk_rate.value();
    rep_d.cpu = cal_.hdfs_serve_cpu_per_stream;
    if (!same_host(*dn->site(), writer)) {
      rep_d.net = net_rate.value();
      writer_has_remote_hop = true;
    }
    secs.emplace_back(dn->site(),
                      std::make_shared<Workload>("hdfs-replica", rep_d,
                                                 Workload::kService));
  }
  if (writer_has_remote_hop) writer_d.net = net_rate.value();
  const sim::MBps rate = writer_has_remote_hop ? std::min(disk_rate, net_rate)
                                               : disk_rate;
  return run_flow(
      writer, std::make_shared<Workload>("hdfs-write", writer_d, mb / rate),
      std::move(secs), std::move(done));
}

FlowHandle Hdfs::transfer(ExecutionSite& src, ExecutionSite& dst,
                          sim::MegaBytes mb, DoneFn done) {
  if (prof_ != nullptr) {
    prof_->add(telemetry::WorkCounter::kShuffleTransfers);
  }
  const sim::MBps disk_rate = cal_.hdfs_stream_disk_mbps;
  const sim::MBps net_rate = cal_.hdfs_stream_net_mbps;
  if (&src == &dst) {
    // Local fetch: just the disk read.
    Resources d;
    d.disk = disk_rate.value();
    d.cpu = cal_.hdfs_read_cpu_per_stream;
    return run_flow(
        dst, std::make_shared<Workload>("fetch-local", d, mb / disk_rate), {},
        std::move(done));
  }
  if (same_host(src, dst)) {
    // Loopback: disk at the source paces it, capped by the loopback rate.
    const sim::MBps rate = std::min(disk_rate, cal_.loopback_mbps);
    Resources d;
    d.disk = disk_rate.value();
    d.cpu = cal_.hdfs_serve_cpu_per_stream;
    return run_flow(
        src, std::make_shared<Workload>("fetch-loopback", d, mb / rate), {},
        std::move(done));
  }
  Resources dst_d;
  dst_d.net = net_rate.value();
  dst_d.cpu = cal_.hdfs_read_cpu_per_stream;
  Resources src_d;
  src_d.disk = net_rate.value();
  src_d.net = net_rate.value();
  src_d.cpu = cal_.hdfs_serve_cpu_per_stream;
  std::vector<std::pair<ExecutionSite*, WorkloadPtr>> secs;
  secs.emplace_back(&src, std::make_shared<Workload>("fetch-serve", src_d,
                                                     Workload::kService));
  return run_flow(
      dst, std::make_shared<Workload>("fetch-remote", dst_d, mb / net_rate),
      std::move(secs), std::move(done));
}

FlowHandle Hdfs::transfer_batch(
    const std::vector<std::pair<ExecutionSite*, sim::MegaBytes>>& sources,
    ExecutionSite& dst, DoneFn done, int max_streams) {
  assert(!sources.empty());
  if (sources.size() == 1) {
    return transfer(*sources.front().first, dst, sources.front().second,
                    std::move(done));
  }
  if (prof_ != nullptr) {
    prof_->add(telemetry::WorkCounter::kShuffleTransfers);
  }
  sim::MegaBytes total;
  for (const auto& [src, mb] : sources) total += mb;
  const double streams = std::min<double>(
      max_streams, static_cast<double>(sources.size()));
  const sim::MBps net_rate = cal_.hdfs_stream_net_mbps;
  const sim::MBps rate = net_rate * streams;

  Resources dst_d;
  dst_d.net = rate.value();
  dst_d.cpu = cal_.hdfs_read_cpu_per_stream * streams;
  std::vector<std::pair<ExecutionSite*, WorkloadPtr>> secs;
  secs.reserve(sources.size());
  for (const auto& [src, mb] : sources) {
    // Each source serves its share across the whole batch window, so its
    // steady rate is its byte fraction of the aggregate stream bandwidth —
    // summed over sources this reproduces the per-flow model's disk/net
    // load exactly.
    const double frac = total > sim::MegaBytes{0} ? mb / total : 0.0;
    Resources src_d;
    src_d.disk = rate.value() * frac;
    src_d.net = rate.value() * frac;
    src_d.cpu = cal_.hdfs_serve_cpu_per_stream * streams * frac;
    secs.emplace_back(src, std::make_shared<Workload>("fetch-serve-batch",
                                                      src_d,
                                                      Workload::kService));
  }
  return run_flow(
      dst,
      std::make_shared<Workload>("fetch-remote-batch", dst_d, total / rate),
      std::move(secs), std::move(done));
}

}  // namespace hybridmr::storage
