// TestDFSIO-equivalent benchmark driver (paper Fig. 1(c)).
//
// Launches N concurrent writer or reader tasks of `file_mb` each across the
// given sites and reports Hadoop TestDFSIO's two metrics:
//   - average I/O rate: mean over tasks of (bytes / task time), MB/s
//   - throughput:       (total bytes) / (sum of task times), MB/s
#pragma once

#include <vector>

#include "storage/hdfs.h"

namespace hybridmr::storage {

struct DfsIoResult {
  sim::MBps avg_io_rate_mbps;
  sim::MBps throughput_mbps;
  sim::Duration wall_seconds;
};

class DfsIoBenchmark {
 public:
  DfsIoBenchmark(sim::Simulation& sim, Hdfs& hdfs) : sim_(sim), hdfs_(hdfs) {}

  /// One writer per site, each writing `file_mb`. Runs the simulation
  /// until all writers finish.
  DfsIoResult run_write(const std::vector<cluster::ExecutionSite*>& sites,
                        sim::MegaBytes file_mb);

  /// One reader per site, each reading a freshly staged `file_mb` file
  /// block-by-block.
  DfsIoResult run_read(const std::vector<cluster::ExecutionSite*>& sites,
                       sim::MegaBytes file_mb);

 private:
  sim::Simulation& sim_;
  Hdfs& hdfs_;
};

}  // namespace hybridmr::storage
