#include "storage/dfsio.h"

#include <memory>
#include <string>

namespace hybridmr::storage {
namespace {

struct TaskClock {
  double start = 0;
  double end = 0;
};

DfsIoResult summarize(const std::vector<TaskClock>& clocks,
                      sim::MegaBytes file_mb) {
  DfsIoResult r;
  double sum_rate = 0;
  double sum_time = 0;
  double wall = 0;
  for (const auto& c : clocks) {
    const double t = c.end - c.start;
    if (t <= 0) continue;
    sum_rate += file_mb.value() / t;
    sum_time += t;
    wall = std::max(wall, c.end);
  }
  r.wall_seconds = sim::Duration{wall};
  if (!clocks.empty()) {
    r.avg_io_rate_mbps =
        sim::MBps{sum_rate / static_cast<double>(clocks.size())};
  }
  if (sum_time > 0) {
    r.throughput_mbps = sim::MBps{
        file_mb.value() * static_cast<double>(clocks.size()) / sum_time};
  }
  return r;
}

}  // namespace

DfsIoResult DfsIoBenchmark::run_write(
    const std::vector<cluster::ExecutionSite*>& sites,
    sim::MegaBytes file_mb) {
  auto clocks = std::make_shared<std::vector<TaskClock>>(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    (*clocks)[i].start = sim_.now();
    hdfs_.write(*sites[i], file_mb, [this, clocks, i]() {
      (*clocks)[i].end = sim_.now();
    });
  }
  sim_.run();
  return summarize(*clocks, file_mb);
}

DfsIoResult DfsIoBenchmark::run_read(
    const std::vector<cluster::ExecutionSite*>& sites,
    sim::MegaBytes file_mb) {
  auto clocks = std::make_shared<std::vector<TaskClock>>(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const auto file =
        hdfs_.stage_file("dfsio-" + std::to_string(i), file_mb);
    (*clocks)[i].start = sim_.now();
    // Read the file block by block, sequentially, like a TestDFSIO mapper.
    // The chain closure references itself only weakly; each in-flight
    // read's completion callback carries the one strong reference, so the
    // chain is released when the last block lands (no shared_ptr cycle).
    auto next = std::make_shared<std::function<void(int)>>();
    const int blocks = hdfs_.num_blocks(file);
    cluster::ExecutionSite* site = sites[i];
    std::weak_ptr<std::function<void(int)>> weak_next = next;
    *next = [this, clocks, i, file, blocks, site, weak_next](int block) {
      if (block >= blocks) {
        (*clocks)[i].end = sim_.now();
        return;
      }
      auto self = weak_next.lock();
      if (!self) return;
      hdfs_.read_block(file, block, *site,
                       [self, block]() { (*self)(block + 1); });
    };
    (*next)(0);
  }
  sim_.run();
  return summarize(*clocks, file_mb);
}

}  // namespace hybridmr::storage
