// HDFS-like replicated block store.
//
// The NameNode role (block -> replica map, placement policy) is explicit;
// DataNodes are bound to execution sites (native machines or VMs) and their
// I/O is injected as real disk/network workloads, so storage traffic contends
// with everything else on the cluster. Locality is modelled at three levels:
// node-local (disk only), host-local (disk on the serving VM, loopback
// transfer — the "split architecture" fast path), and remote (disk + network
// on both ends).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/calibration.h"
#include "cluster/machine.h"
#include "sim/simulation.h"

namespace hybridmr::telemetry {
struct Hub;
}  // namespace hybridmr::telemetry

namespace hybridmr::storage {

/// A storage daemon living on one execution site.
class DataNode {
 public:
  explicit DataNode(cluster::ExecutionSite& site) : site_(&site) {}

  [[nodiscard]] cluster::ExecutionSite* site() const { return site_; }
  [[nodiscard]] sim::MegaBytes stored_mb() const { return stored_mb_; }
  void add_stored(sim::MegaBytes mb) { stored_mb_ += mb; }

 private:
  // hmr-state(back-reference: owner=HybridCluster; the datanode's host)
  cluster::ExecutionSite* site_;
  sim::MegaBytes stored_mb_;
};

/// Locality of one read, for metrics and placement decisions.
enum class Locality { kNodeLocal, kHostLocal, kRemote };

/// Handle to an in-flight data flow (read / write / transfer).
///
/// Flows can be cancelled (speculative-execution losers, IPS aborts) and
/// report transfer progress for straggler detection.
///
/// Ownership: the flow state references its pacing workload only weakly.
/// While the flow is in flight the chain site -> primary workload ->
/// on_complete -> state keeps the state alive (handles may be discarded
/// freely); on completion, cancellation or site teardown that chain is
/// released, so no shared_ptr cycle survives — LeakSanitizer runs clean
/// over abandoned mid-flight runs.
class FlowHandle {
 public:
  FlowHandle() = default;

  /// Tears the flow down without firing its completion callback.
  void cancel();

  /// Fraction transferred, in [0, 1]. Completed or empty flows report 1.
  [[nodiscard]] double progress() const;

  [[nodiscard]] bool active() const;

  /// Pauses/resumes every workload in the flow (IPS pause action).
  void set_paused(bool paused);

  /// Applies cgroup-style caps to the pacing workload (I/O throttling).
  void set_caps(const cluster::Resources& caps);

  /// The pacing workload (nullptr once finished); for resource profiling.
  [[nodiscard]] const cluster::Workload* primary() const {
    if (!state_ || state_->finished) return nullptr;
    return state_->primary.lock().get();
  }

 private:
  friend class Hdfs;
  struct State {
    std::weak_ptr<cluster::Workload> primary;
    std::vector<std::pair<cluster::ExecutionSite*, cluster::WorkloadPtr>>
        secondaries;
    bool finished = false;
  };
  explicit FlowHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

/// The distributed file system (NameNode + DataNodes).
class Hdfs {
 public:
  using FileId = std::size_t;
  using DoneFn = std::function<void()>;

  Hdfs(sim::Simulation& sim, const cluster::Calibration& cal)
      : sim_(sim), cal_(cal) {}

  Hdfs(const Hdfs&) = delete;
  Hdfs& operator=(const Hdfs&) = delete;

  // --- topology ---
  DataNode* add_datanode(cluster::ExecutionSite& site);

  /// Decommissions the DataNode on `site`: every block replica it held is
  /// re-replicated onto a surviving datanode, with the copy traffic
  /// injected as real transfer flows from another replica (or from this
  /// node itself while it drains). Returns false when `site` hosts no
  /// datanode or it is the last one.
  bool remove_datanode(cluster::ExecutionSite& site);

  /// Abruptly kills the DataNodes on `sites` (host crash): unlike
  /// remove_datanode, the dying nodes cannot serve as re-replication
  /// sources — their replicas are simply gone. Every lost replica with a
  /// surviving copy is re-replicated from that copy onto a healthy node
  /// (never one of the dying ones, which is why simultaneous crashes must
  /// go through one call); a block whose last replica died is marked lost
  /// and counted in blocks_lost(). Returns the number of datanodes killed.
  int crash_datanodes(const std::vector<cluster::ExecutionSite*>& sites);
  /// Single-site convenience wrapper around crash_datanodes().
  int crash_datanode(cluster::ExecutionSite& site);

  /// Blocks whose last replica was destroyed by a crash (never recovers).
  [[nodiscard]] int blocks_lost() const { return blocks_lost_; }
  /// True when any block of `file` is lost (readers of the file assert).
  [[nodiscard]] bool has_lost_block(FileId file) const;
  /// Minimum replica count over all non-lost blocks; -1 with no blocks.
  /// After crash recovery this should re-converge to the replication
  /// factor (the audit's replica invariant builds on it).
  [[nodiscard]] int min_replication() const;

  /// Re-replication traffic caused by decommissions and crashes.
  [[nodiscard]] sim::MegaBytes re_replicated_mb() const {
    return re_replicated_mb_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<DataNode>>& datanodes()
      const {
    return datanodes_;
  }
  /// DataNode resident on `site`, or nullptr.
  [[nodiscard]] DataNode* datanode_on(const cluster::ExecutionSite* site) const;

  // --- namespace ---

  /// Registers a pre-loaded input file: blocks are placed randomly with
  /// `replicas` copies each (no simulated I/O; the data is already there,
  /// like a staged benchmark input). `block_mb` overrides the cluster
  /// block size when positive.
  FileId stage_file(const std::string& name, sim::MegaBytes size_mb,
                    sim::MegaBytes block_mb = sim::MegaBytes{0});

  [[nodiscard]] int num_blocks(FileId file) const;
  [[nodiscard]] sim::MegaBytes block_size_mb(FileId file, int block) const;
  [[nodiscard]] const std::vector<DataNode*>& replicas(FileId file,
                                                       int block) const;
  /// Best achievable locality when `site` reads this block.
  [[nodiscard]] Locality locality_of(FileId file, int block,
                                     const cluster::ExecutionSite* site) const;

  // --- asynchronous I/O (all costs are real workloads) ---

  /// Reads `fraction` of one block at `reader`; serves from the closest
  /// replica.
  FlowHandle read_block(FileId file, int block,
                        cluster::ExecutionSite& reader, DoneFn done,
                        double fraction = 1.0);

  /// Writes `mb` with the replication pipeline (local first, then remote
  /// replicas), charging disk at every replica and network for remote
  /// hops. `replicas` overrides the cluster default when positive.
  FlowHandle write(cluster::ExecutionSite& writer, sim::MegaBytes mb,
                   DoneFn done, int replicas = 0);

  /// Raw transfer of `mb` from `src` to `dst` (shuffle traffic): disk read
  /// at src plus network unless the sites share a physical host.
  FlowHandle transfer(cluster::ExecutionSite& src, cluster::ExecutionSite& dst,
                      sim::MegaBytes mb, DoneFn done);

  /// Coalesced shuffle fetch: pulls every (source, mb) share into `dst` as
  /// ONE paced flow instead of one flow per source, so a reducer's shuffle
  /// costs a single completion event however many machines feed it. The
  /// aggregate stream runs at net_rate x min(max_streams, sources) — the
  /// same bandwidth a `max_streams`-deep pump of individual transfers
  /// sustains — and each source carries a serve-side secondary sized to its
  /// byte share of the batch, so per-machine disk/net accounting matches
  /// the per-flow model it replaces. A single source degenerates to a plain
  /// transfer() (identical demands and workload names). `sources` must be
  /// remote to `dst` (no same-site or same-host entries) and non-empty.
  FlowHandle transfer_batch(
      const std::vector<std::pair<cluster::ExecutionSite*, sim::MegaBytes>>&
          sources,
      cluster::ExecutionSite& dst, DoneFn done, int max_streams = 4);

  // --- metrics ---

  /// Attaches the storage layer to a telemetry hub (null detaches). Only
  /// the profiler is consumed today: flow/read/write/transfer counters and
  /// the flow-setup wall scope feed the shuffle-path hotspot analysis.
  void set_telemetry(telemetry::Hub* hub);

  [[nodiscard]] sim::MegaBytes bytes_read_local_mb() const {
    return read_local_mb_;
  }
  [[nodiscard]] sim::MegaBytes bytes_read_remote_mb() const {
    return read_remote_mb_;
  }
  [[nodiscard]] sim::MegaBytes bytes_written_mb() const {
    return written_mb_;
  }

 private:
  struct File {
    std::string name;
    sim::MegaBytes size_mb;
    sim::MegaBytes block_mb;
    std::vector<std::vector<DataNode*>> block_replicas;
    // 1 for blocks whose last replica died in a crash (indexed like
    // block_replicas; the audit pairs "no replicas" with "marked lost").
    std::vector<char> block_lost;
  };

  /// Runs a flow: `primary` paces the transfer; `secondaries` model the load
  /// on other participants and are detached when the primary completes.
  FlowHandle run_flow(cluster::ExecutionSite& primary_site,
                      cluster::WorkloadPtr primary,
                      std::vector<std::pair<cluster::ExecutionSite*,
                                            cluster::WorkloadPtr>> secondaries,
                      DoneFn done);

  /// Picks `count` distinct replica targets, preferring one local to
  /// `origin` (standard HDFS placement policy).
  std::vector<DataNode*> pick_replicas(const cluster::ExecutionSite* origin,
                                       int count);

  /// Size of block `block` of a file of `size_mb` split into `blocks`
  /// blocks of nominal size `block_size`.
  [[nodiscard]] static sim::MegaBytes block_mb_of(sim::MegaBytes size_mb,
                                                  int block, int blocks,
                                                  sim::MegaBytes block_size);

  /// Audit checkpoint (no-op unless HYBRIDMR_AUDIT): every block's replica
  /// list is non-empty, duplicate-free, within the datanode count, and
  /// points only at registered datanodes.
  void audit_verify_placement() const;

  sim::Simulation& sim_;
  const cluster::Calibration& cal_;
  std::vector<std::unique_ptr<DataNode>> datanodes_;
  std::vector<File> files_;
  std::size_t placement_cursor_ = 0;
  int blocks_lost_ = 0;
  sim::MegaBytes read_local_mb_;
  sim::MegaBytes read_remote_mb_;
  sim::MegaBytes written_mb_;
  sim::MegaBytes re_replicated_mb_;
  // Cached profiler handle (null unless a profiled run).
  telemetry::Profiler* prof_ = nullptr;
  telemetry::ScopeId prof_flow_scope_;
};

/// True when the two sites run on the same physical machine.
bool same_host(const cluster::ExecutionSite& a, const cluster::ExecutionSite& b);

}  // namespace hybridmr::storage
