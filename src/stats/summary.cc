#include "stats/summary.h"

#include <algorithm>
#include <cmath>

namespace hybridmr::stats {

void Accumulator::add(double v) {
  ++n_;
  sum_ += v;
  const double delta = v - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (v - mean_);
  if (n_ == 1) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
}

double Accumulator::variance() const {
  if (n_ < 2) return 0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0;
  double s = 0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

Summary Summary::of(std::span<const double> values) {
  Summary s;
  Accumulator acc;
  for (double v : values) acc.add(v);
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.p50 = percentile(values, 50);
  s.p95 = percentile(values, 95);
  s.p99 = percentile(values, 99);
  return s;
}

}  // namespace hybridmr::stats
