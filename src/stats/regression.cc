#include "stats/regression.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace hybridmr::stats {
namespace {

struct LsqFit {
  double slope = 0;
  double intercept = 0;
  double sse = 0;
  double sst = 0;
  bool ok = false;
};

LsqFit least_squares(std::span<const double> x, std::span<const double> y) {
  LsqFit out;
  const std::size_t n = x.size();
  if (n < 2 || y.size() != n) return out;
  const double mx = std::accumulate(x.begin(), x.end(), 0.0) / n;
  const double my = std::accumulate(y.begin(), y.end(), 0.0) / n;
  double sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
  }
  if (sxx <= 0) return out;
  out.slope = sxy / sxx;
  out.intercept = my - out.slope * mx;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = y[i] - (out.intercept + out.slope * x[i]);
    out.sse += e * e;
    out.sst += (y[i] - my) * (y[i] - my);
  }
  out.ok = true;
  return out;
}

double r2_from(double sse, double sst) {
  if (sst <= 0) return 1.0;
  return 1.0 - sse / sst;
}

}  // namespace

std::optional<LinearRegression> LinearRegression::fit(
    std::span<const double> x, std::span<const double> y) {
  const LsqFit f = least_squares(x, y);
  if (!f.ok) return std::nullopt;
  return LinearRegression(f.slope, f.intercept, r2_from(f.sse, f.sst));
}

std::optional<PiecewiseLinearRegression> PiecewiseLinearRegression::fit(
    std::span<const double> x, std::span<const double> y) {
  const std::size_t n = x.size();
  if (n < 2 || y.size() != n) return std::nullopt;

  // Sort samples by x.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });
  std::vector<double> sx(n), sy(n);
  for (std::size_t i = 0; i < n; ++i) {
    sx[i] = x[order[i]];
    sy[i] = y[order[i]];
  }

  const LsqFit whole = least_squares(sx, sy);
  if (!whole.ok) return std::nullopt;

  PiecewiseLinearRegression best;
  best.has_break_ = false;
  best.a0_ = best.a1_ = whole.intercept;
  best.b0_ = best.b1_ = whole.slope;
  best.r2_ = r2_from(whole.sse, whole.sst);
  double best_sse = whole.sse;

  if (n < 4) return best;

  // Try each interior split; each side needs >= 2 points.
  for (std::size_t k = 2; k + 2 <= n; ++k) {
    std::span<const double> lx(sx.data(), k), ly(sy.data(), k);
    std::span<const double> rx(sx.data() + k, n - k), ry(sy.data() + k, n - k);
    const LsqFit left = least_squares(lx, ly);
    const LsqFit right = least_squares(rx, ry);
    if (!left.ok || !right.ok) continue;
    const double sse = left.sse + right.sse;
    if (sse < best_sse * 0.95) {  // require a real improvement
      best_sse = sse;
      best.has_break_ = true;
      best.breakpoint_ = (sx[k - 1] + sx[k]) / 2;
      best.a0_ = left.intercept;
      best.b0_ = left.slope;
      best.a1_ = right.intercept;
      best.b1_ = right.slope;
      best.r2_ = r2_from(sse, whole.sst);
    }
  }
  return best;
}

double PiecewiseLinearRegression::predict(double x) const {
  if (!has_break_ || x <= breakpoint_) return a0_ + b0_ * x;
  return a1_ + b1_ * x;
}

std::optional<ExponentialRegression> ExponentialRegression::fit(
    std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return std::nullopt;
  std::vector<double> logy(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] <= 0) return std::nullopt;
    logy[i] = std::log(y[i]);
  }
  const LsqFit f = least_squares(x, logy);
  if (!f.ok) return std::nullopt;
  return ExponentialRegression(std::exp(f.intercept), f.slope,
                               r2_from(f.sse, f.sst));
}

double ExponentialRegression::predict(double x) const {
  return a_ * std::exp(b_ * x);
}

std::optional<InverseRegression> InverseRegression::fit(
    std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return std::nullopt;
  std::vector<double> inv(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0) return std::nullopt;
    inv[i] = 1.0 / x[i];
  }
  const LsqFit f = least_squares(inv, y);
  if (!f.ok) return std::nullopt;
  return InverseRegression(f.intercept, f.slope, r2_from(f.sse, f.sst));
}

double interpolate(std::span<const double> xs, std::span<const double> ys,
                   double x) {
  if (xs.empty()) return 0;
  if (xs.size() == 1) return ys[0];
  // Find the bracketing segment (xs sorted ascending); extrapolate at ends.
  std::size_t hi = 1;
  while (hi + 1 < xs.size() && xs[hi] < x) ++hi;
  const std::size_t lo = hi - 1;
  const double dx = xs[hi] - xs[lo];
  if (dx == 0) return (ys[lo] + ys[hi]) / 2;
  const double t = (x - xs[lo]) / dx;
  return ys[lo] + t * (ys[hi] - ys[lo]);
}

}  // namespace hybridmr::stats
