// Time-stamped sample series, used by resource profilers, SLA monitors and
// the energy meter.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hybridmr::stats {

/// Append-only series of (time, value) samples with monotone timestamps.
class TimeSeries {
 public:
  struct Sample {
    double time;
    double value;
  };

  void add(double time, double value);

  /// Like add(), but when `time` equals the last sample's timestamp the
  /// last sample is overwritten instead of appended: several updates at
  /// one simulated instant collapse to the final value, so the series
  /// looks the same whether the writer recomputed once or k times.
  void add_coalesced(double time, double value);

  /// Bounds the stored sample count. When an add would exceed `max`
  /// (min 8; 0 disables the bound), older adjacent samples are pairwise
  /// merged into time-weighted means, preserving integrate() exactly and
  /// value_at() for times at/after the merged region's end. Long runs
  /// thus keep O(max) memory at geometrically coarsening resolution.
  void set_max_samples(std::size_t max);
  [[nodiscard]] std::size_t max_samples() const { return max_samples_; }

  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] const Sample& back() const { return samples_.back(); }

  /// Mean of values with time in [t0, t1]; 0 if no samples in range.
  [[nodiscard]] double mean_in(double t0, double t1) const;

  /// Latest value at or before `t` (0 before the first sample).
  [[nodiscard]] double value_at(double t) const;

  /// Time integral of the step function defined by the samples over
  /// [t0, t1] (each sample holds its value until the next sample).
  [[nodiscard]] double integrate(double t0, double t1) const;

  /// Values only (e.g. for Summary::of).
  [[nodiscard]] std::vector<double> values() const;

  /// Drops samples older than `t`, keeping the most recent older sample so
  /// value_at() stays correct at the boundary.
  void trim_before(double t);

 private:
  // Halves the resolution of everything but the most recent samples; see
  // set_max_samples().
  void compact();

  std::vector<Sample> samples_;
  std::size_t max_samples_ = 0;
};

}  // namespace hybridmr::stats
