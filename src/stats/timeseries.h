// Time-stamped sample series, used by resource profilers, SLA monitors and
// the energy meter.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hybridmr::stats {

/// Append-only series of (time, value) samples with monotone timestamps.
class TimeSeries {
 public:
  struct Sample {
    double time;
    double value;
  };

  void add(double time, double value);

  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] const Sample& back() const { return samples_.back(); }

  /// Mean of values with time in [t0, t1]; 0 if no samples in range.
  [[nodiscard]] double mean_in(double t0, double t1) const;

  /// Latest value at or before `t` (0 before the first sample).
  [[nodiscard]] double value_at(double t) const;

  /// Time integral of the step function defined by the samples over
  /// [t0, t1] (each sample holds its value until the next sample).
  [[nodiscard]] double integrate(double t0, double t1) const;

  /// Values only (e.g. for Summary::of).
  [[nodiscard]] std::vector<double> values() const;

  /// Drops samples older than `t`, keeping the most recent older sample so
  /// value_at() stays correct at the boundary.
  void trim_before(double t);

 private:
  std::vector<Sample> samples_;
};

}  // namespace hybridmr::stats
