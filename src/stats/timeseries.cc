#include "stats/timeseries.h"

#include <algorithm>
#include <cassert>

namespace hybridmr::stats {

void TimeSeries::add(double time, double value) {
  assert(samples_.empty() || time >= samples_.back().time);
  if (max_samples_ != 0 && samples_.size() >= max_samples_) compact();
  samples_.push_back({time, value});
}

void TimeSeries::add_coalesced(double time, double value) {
  assert(samples_.empty() || time >= samples_.back().time);
  if (!samples_.empty() && !(time > samples_.back().time)) {
    samples_.back().value = value;
    return;
  }
  add(time, value);
}

void TimeSeries::set_max_samples(std::size_t max) {
  max_samples_ = max == 0 ? 0 : std::max<std::size_t>(max, 8);
  if (max_samples_ != 0) {
    while (samples_.size() > max_samples_) compact();
  }
}

void TimeSeries::compact() {
  const std::size_t n = samples_.size();
  if (n < 4) return;
  // Merge adjacent pairs (a, b) into one sample at a.time whose value is
  // the time-weighted mean of a over [a,b) and b over [b,next): the step
  // function's integral over the merged span is unchanged. The final one
  // or two samples are kept verbatim so back()/value_at(now) stay exact.
  std::size_t out = 0;
  std::size_t i = 0;
  for (; i + 2 < n; i += 2) {
    const Sample& a = samples_[i];
    const Sample& b = samples_[i + 1];
    const double end = samples_[i + 2].time;
    const double wa = b.time - a.time;
    const double wb = end - b.time;
    const double w = wa + wb;
    samples_[out++] = {
        a.time, w > 0 ? (a.value * wa + b.value * wb) / w : b.value};
  }
  for (; i < n; ++i) samples_[out++] = samples_[i];
  samples_.resize(out);
}

double TimeSeries::mean_in(double t0, double t1) const {
  double sum = 0;
  std::size_t n = 0;
  for (const auto& s : samples_) {
    if (s.time >= t0 && s.time <= t1) {
      sum += s.value;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0;
}

double TimeSeries::value_at(double t) const {
  double v = 0;
  for (const auto& s : samples_) {
    if (s.time > t) break;
    v = s.value;
  }
  return v;
}

double TimeSeries::integrate(double t0, double t1) const {
  if (samples_.empty() || t1 <= t0) return 0;
  double total = 0;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const double seg_start = std::max(samples_[i].time, t0);
    const double seg_end =
        std::min(i + 1 < samples_.size() ? samples_[i + 1].time : t1, t1);
    if (seg_end > seg_start) total += samples_[i].value * (seg_end - seg_start);
  }
  return total;
}

std::vector<double> TimeSeries::values() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.value);
  return out;
}

void TimeSeries::trim_before(double t) {
  auto it = std::lower_bound(
      samples_.begin(), samples_.end(), t,
      [](const Sample& s, double v) { return s.time < v; });
  if (it == samples_.begin()) return;
  --it;  // keep one sample at/before t
  samples_.erase(samples_.begin(), it);
}

}  // namespace hybridmr::stats
