#include "stats/timeseries.h"

#include <algorithm>
#include <cassert>

namespace hybridmr::stats {

void TimeSeries::add(double time, double value) {
  assert(samples_.empty() || time >= samples_.back().time);
  samples_.push_back({time, value});
}

double TimeSeries::mean_in(double t0, double t1) const {
  double sum = 0;
  std::size_t n = 0;
  for (const auto& s : samples_) {
    if (s.time >= t0 && s.time <= t1) {
      sum += s.value;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0;
}

double TimeSeries::value_at(double t) const {
  double v = 0;
  for (const auto& s : samples_) {
    if (s.time > t) break;
    v = s.value;
  }
  return v;
}

double TimeSeries::integrate(double t0, double t1) const {
  if (samples_.empty() || t1 <= t0) return 0;
  double total = 0;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const double seg_start = std::max(samples_[i].time, t0);
    const double seg_end =
        std::min(i + 1 < samples_.size() ? samples_[i + 1].time : t1, t1);
    if (seg_end > seg_start) total += samples_[i].value * (seg_end - seg_start);
  }
  return total;
}

std::vector<double> TimeSeries::values() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.value);
  return out;
}

void TimeSeries::trim_before(double t) {
  auto it = std::lower_bound(
      samples_.begin(), samples_.end(), t,
      [](const Sample& s, double v) { return s.time < v; });
  if (it == samples_.begin()) return;
  --it;  // keep one sample at/before t
  samples_.erase(samples_.begin(), it);
}

}  // namespace hybridmr::stats
