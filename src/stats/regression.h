// Regression models used by HybridMR's Estimator (paper §III-B1/B2):
//   - linear regression          -> CPU interference / JCT-vs-data-size
//   - piecewise-linear (1 knee)  -> memory interference
//   - exponential                -> I/O interference
// plus an inverse model (y = a + b/x) for JCT-vs-cluster-size extrapolation.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace hybridmr::stats {

/// Ordinary least squares y = intercept + slope * x.
class LinearRegression {
 public:
  /// Fits to paired samples. Requires >= 2 points with non-degenerate x;
  /// returns nullopt otherwise.
  static std::optional<LinearRegression> fit(std::span<const double> x,
                                             std::span<const double> y);

  [[nodiscard]] double predict(double x) const {
    return intercept_ + slope_ * x;
  }
  [[nodiscard]] double slope() const { return slope_; }
  [[nodiscard]] double intercept() const { return intercept_; }
  /// Coefficient of determination on the training data.
  [[nodiscard]] double r_squared() const { return r2_; }

 private:
  LinearRegression(double slope, double intercept, double r2)
      : slope_(slope), intercept_(intercept), r2_(r2) {}
  double slope_;
  double intercept_;
  double r2_;
};

/// Two-segment continuous piecewise-linear model with a fitted breakpoint.
/// The breakpoint is chosen among interior sample x-values to minimize SSE.
class PiecewiseLinearRegression {
 public:
  /// Requires >= 4 points; falls back to a single segment when no interior
  /// breakpoint improves on plain linear. Returns nullopt on degenerate data.
  static std::optional<PiecewiseLinearRegression> fit(
      std::span<const double> x, std::span<const double> y);

  [[nodiscard]] double predict(double x) const;
  [[nodiscard]] double breakpoint() const { return breakpoint_; }
  [[nodiscard]] bool has_break() const { return has_break_; }
  [[nodiscard]] double r_squared() const { return r2_; }

 private:
  PiecewiseLinearRegression() = default;
  bool has_break_ = false;
  double breakpoint_ = 0;
  // left: y = a0 + b0 x (x <= breakpoint); right: y = a1 + b1 x
  double a0_ = 0, b0_ = 0, a1_ = 0, b1_ = 0;
  double r2_ = 0;
};

/// Exponential model y = a * exp(b * x), fit by log-linear least squares.
/// All y must be > 0.
class ExponentialRegression {
 public:
  static std::optional<ExponentialRegression> fit(std::span<const double> x,
                                                  std::span<const double> y);

  [[nodiscard]] double predict(double x) const;
  [[nodiscard]] double a() const { return a_; }
  [[nodiscard]] double b() const { return b_; }
  [[nodiscard]] double r_squared() const { return r2_; }

 private:
  ExponentialRegression(double a, double b, double r2)
      : a_(a), b_(b), r2_(r2) {}
  double a_;
  double b_;
  double r2_;  // in log space
};

/// Inverse model y = a + b / x (JCT vs cluster size; paper Fig. 5(a,b)).
/// Fit by linear regression on (1/x, y). All x must be > 0.
class InverseRegression {
 public:
  static std::optional<InverseRegression> fit(std::span<const double> x,
                                              std::span<const double> y);

  [[nodiscard]] double predict(double x) const { return a_ + b_ / x; }
  [[nodiscard]] double a() const { return a_; }
  [[nodiscard]] double b() const { return b_; }
  [[nodiscard]] double r_squared() const { return r2_; }

 private:
  InverseRegression(double a, double b, double r2) : a_(a), b_(b), r2_(r2) {}
  double a_;
  double b_;
  double r2_;
};

/// Linear interpolation/extrapolation through a sorted table of (x, y).
/// Used by the profiler when only two neighbouring profile points exist.
double interpolate(std::span<const double> xs, std::span<const double> ys,
                   double x);

}  // namespace hybridmr::stats
