// Descriptive statistics helpers used throughout the harness and benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hybridmr::stats {

/// Streaming accumulator for mean / variance / min / max (Welford).
class Accumulator {
 public:
  void add(double v);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0; }
  [[nodiscard]] double variance() const;  // sample variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

/// Full-sample summary with percentiles.
struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;

  static Summary of(std::span<const double> values);
};

/// Percentile by linear interpolation between closest ranks; p in [0, 100].
double percentile(std::span<const double> values, double p);

/// Mean of a span (0 for empty).
double mean(std::span<const double> values);

/// Exponentially weighted moving average.
class Ewma {
 public:
  /// alpha in (0, 1]: weight of the newest observation.
  explicit Ewma(double alpha) : alpha_(alpha) {}

  double update(double v) {
    value_ = seeded_ ? alpha_ * v + (1 - alpha_) * value_ : v;
    seeded_ = true;
    return value_;
  }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool seeded() const { return seeded_; }

 private:
  double alpha_;
  double value_ = 0;
  bool seeded_ = false;
};

}  // namespace hybridmr::stats
