// Tasks and task attempts.
//
// A Task is a logical unit of job work (one map split or one reduce
// partition); a TaskAttempt is one execution of it on a TaskTracker. Tasks
// can have multiple attempts (speculative execution, IPS re-queues); the
// first attempt to finish wins and the rest are killed, exactly as in
// Hadoop 1.x.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/machine.h"
#include "storage/hdfs.h"

namespace hybridmr::mapred {

class Job;
class TaskTracker;
class MapReduceEngine;
class TaskAttempt;

enum class TaskType { kMap, kReduce };

class Task {
 public:
  Task(Job& job, TaskType type, int index)
      : job_(&job), type_(type), index_(index) {}

  [[nodiscard]] Job& job() const { return *job_; }
  [[nodiscard]] TaskType type() const { return type_; }
  [[nodiscard]] int index() const { return index_; }

  [[nodiscard]] bool completed() const { return completed_; }
  /// Wall time the winning attempt ran (valid once completed).
  [[nodiscard]] sim::Duration duration() const { return duration_; }
  /// Where the winning attempt ran (shuffle sources read map output here).
  [[nodiscard]] cluster::ExecutionSite* output_site() const {
    return output_site_;
  }

  [[nodiscard]] const std::vector<std::unique_ptr<TaskAttempt>>& attempts()
      const {
    return attempts_;
  }
  [[nodiscard]] TaskAttempt* running_attempt() const;
  [[nodiscard]] int running_count() const;
  /// Pending: not completed and nothing running (never launched, or the
  /// previous attempt was killed). O(1): a cached flag reconciled by
  /// sync_pending() at every attempt/completion transition, which also
  /// maintains the per-job pending counters the dispatch fast path sums
  /// (audit builds cross-check flag and counters against a full scan).
  [[nodiscard]] bool pending() const { return pending_; }

  /// One speculative copy per task, like Hadoop.
  bool speculative_launched = false;

  /// Trackers this task must not run on again (IPS re-queue exclusions).
  std::set<const TaskTracker*> banned_trackers;

  /// Attempts that ended in genuine failure (not kills): compared against
  /// the engine's max_attempts bound, like Hadoop's mapred.map.max.attempts.
  [[nodiscard]] int failed_attempts() const { return failed_attempts_; }

 private:
  friend class MapReduceEngine;
  friend class TaskTracker;
  friend class TaskAttempt;
  /// Reconciles the cached pending flag (and the owning job's pending
  /// counters) with the completed/running state. Idempotent — safe to call
  /// from nested transitions (a kill inside a finish inside a launch).
  void sync_pending();
  Job* job_;
  TaskType type_;
  int index_;
  int failed_attempts_ = 0;
  bool completed_ = false;
  bool pending_ = false;
  sim::Duration duration_{-1};
  // hmr-state(back-reference: owner=HybridCluster; where the map output
  // lives — re-point with the site tree on fork)
  cluster::ExecutionSite* output_site_ = nullptr;
  std::vector<std::unique_ptr<TaskAttempt>> attempts_;
};

/// One execution of a task: a small state machine chaining HDFS flows and
/// compute workloads on the tracker's execution site.
class TaskAttempt {
 public:
  TaskAttempt(Task& task, TaskTracker& tracker, MapReduceEngine& engine);
  ~TaskAttempt();

  TaskAttempt(const TaskAttempt&) = delete;
  TaskAttempt& operator=(const TaskAttempt&) = delete;

  /// Begins execution (phases are derived from the job spec here).
  void start();

  /// Cancels the attempt without completing its task. Frees the slot.
  void kill();

  [[nodiscard]] bool running() const {
    return started_ && !finished_ && !killed_;
  }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] bool killed() const { return killed_; }

  [[nodiscard]] Task& task() const { return *task_; }
  [[nodiscard]] TaskTracker& tracker() const { return *tracker_; }
  [[nodiscard]] cluster::ExecutionSite& site() const;

  /// Overall fraction complete in [0, 1] (phase-weighted).
  [[nodiscard]] double progress() const;
  [[nodiscard]] double elapsed() const;
  /// Progress per second since launch (straggler detection).
  [[nodiscard]] double progress_rate() const;
  [[nodiscard]] double started_at() const { return started_at_; }

  // --- DRM / IPS control surface ---

  /// cgroup-style caps applied to this attempt's current and future
  /// workloads.
  void set_caps(const cluster::Resources& caps);
  [[nodiscard]] const cluster::Resources& caps() const { return caps_; }
  void set_paused(bool paused);
  [[nodiscard]] bool paused() const { return paused_; }

  /// The static slot share this attempt started with (stock Hadoop's rigid
  /// partitioning); the DRM uses it as the baseline when relaxing caps.
  [[nodiscard]] const cluster::Resources& base_caps() const {
    return base_caps_;
  }
  void set_base_caps(const cluster::Resources& caps) {
    base_caps_ = caps;
    set_caps(caps);
  }

  /// Resources the attempt is currently granted / asking for (zero between
  /// phases and for flows running on other sites).
  [[nodiscard]] cluster::Resources current_allocation() const;
  [[nodiscard]] cluster::Resources current_demand() const;

  /// Stable display name, e.g. "sort-j0-m3" (job name, job id, task).
  [[nodiscard]] std::string label() const;

  /// True if this running attempt depends on `site` for anything beyond
  /// its own slot: it runs there, has an in-flight flow sourced or served
  /// there, or still has shuffle fetches queued from map outputs there.
  /// Used by the crash path to decide which attempts to requeue.
  [[nodiscard]] bool depends_on(const cluster::ExecutionSite& s) const;

 private:
  struct Phase {
    enum class Kind { kRead, kStream, kCompute, kLocalWrite, kShuffle,
                      kWrite };
    Kind kind;
    double amount;  // MB for I/O phases, seconds for compute/stream
    // kStream only: the pipelined record-processing demand (cpu + disk),
    // sized so the phase finishes in `amount` seconds at full speed.
    cluster::Resources demand;
  };

  void build_phases();
  void next_phase();
  void begin_shuffle(sim::MegaBytes total_mb);
  void pump_shuffle();
  void flow_completed(sim::MegaBytes mb);
  void phase_finished();
  void teardown();

  Task* task_;
  TaskTracker* tracker_;
  MapReduceEngine* engine_;

  std::vector<Phase> phases_;
  std::vector<double> weights_;  // estimated duration share per phase
  int phase_idx_ = -1;
  double completed_weight_ = 0;

  cluster::WorkloadPtr workload_;  // compute / local-write phases
  struct ActiveFlow {
    storage::FlowHandle handle;
    sim::MegaBytes amount_mb;
    // Remote site the flow pulls from (shuffle fetches); null for HDFS
    // reads/writes whose endpoints the storage layer picked.
    cluster::ExecutionSite* src = nullptr;
    // Member sources of a batched shuffle flow (the crash path requeues
    // this attempt when any of them dies mid-fetch).
    std::vector<cluster::ExecutionSite*> batch_srcs;
  };
  std::vector<ActiveFlow> flows_;  // in-flight HDFS flows of this phase
  // Shuffle fetch plan: per-source byte shares, launched in one wave
  // (local and loopback sources as individual flows, every remote source
  // coalesced into one batched flow).
  std::vector<std::pair<cluster::ExecutionSite*, double>> shuffle_queue_;
  std::size_t shuffle_next_ = 0;
  sim::MegaBytes flow_done_mb_;
  double phase_flow_total_ = 0;

  bool started_ = false;
  bool finished_ = false;
  bool killed_ = false;
  bool paused_ = false;
  cluster::Resources caps_ = cluster::Resources::unbounded();
  cluster::Resources base_caps_ = cluster::Resources::unbounded();
  double started_at_ = -1;
};

}  // namespace hybridmr::mapred
