// Job specifications: the static description of a MapReduce job's resource
// behaviour, from which map/reduce task workloads are derived.
#pragma once

#include <string>

#include "sim/units.h"

namespace hybridmr::mapred {

/// Coarse resource class, as the paper categorizes its benchmarks (§IV).
enum class JobClass { kCpuBound, kIoBound, kMemoryIoBound };

const char* to_string(JobClass c);

struct JobSpec {
  std::string name;
  JobClass job_class = JobClass::kIoBound;

  double input_gb = 1.0;

  // Compute factors (cpu-seconds per MB processed).
  sim::SecondsPerMB map_cpu_s_per_mb{0.01};
  sim::SecondsPerMB reduce_cpu_s_per_mb{0.01};
  // Extra merge-sort cost per spill pass in the reduce (drives the
  // piecewise-nonlinear reduce-phase behaviour of Fig. 5(c)).
  sim::SecondsPerMB sort_cpu_s_per_mb{0.004};

  // Data-flow shape.
  double map_selectivity = 1.0;     // intermediate bytes / input bytes
  double reduce_output_ratio = 1.0; // output bytes / intermediate bytes

  // Memory footprint of one running task (JVM heap + buffers).
  sim::MegaBytes task_memory_mb{300};

  // Number of reduce tasks; 0 = one per TaskTracker.
  int num_reducers = 0;

  // Replication factor for job output (0 = the cluster default). Sort
  // benchmarks conventionally write with replication 1 (terasort).
  int output_replicas = 0;

  // Input split size override (0 = the cluster's HDFS block size).
  // Compute-shaped jobs like PiEst use tiny splits over tiny inputs.
  sim::MegaBytes split_mb{0};

  // Completion-time SLO used by the Phase I placement (0 = best effort).
  sim::Duration desired_jct_s{0};

  /// Same job, different input size (paper scales Sort from 1 to 20 GB).
  [[nodiscard]] JobSpec with_input_gb(double gb) const {
    JobSpec s = *this;
    s.input_gb = gb;
    return s;
  }

  [[nodiscard]] JobSpec with_reducers(int n) const {
    JobSpec s = *this;
    s.num_reducers = n;
    return s;
  }

  [[nodiscard]] JobSpec with_desired_jct(sim::Duration jct) const {
    JobSpec s = *this;
    s.desired_jct_s = jct;
    return s;
  }

  [[nodiscard]] sim::MegaBytes input_mb() const {
    return sim::MegaBytes{input_gb * 1024.0};
  }
};

inline const char* to_string(JobClass c) {
  switch (c) {
    case JobClass::kCpuBound:
      return "cpu-bound";
    case JobClass::kIoBound:
      return "io-bound";
    case JobClass::kMemoryIoBound:
      return "mem+io-bound";
  }
  return "?";
}

}  // namespace hybridmr::mapred
