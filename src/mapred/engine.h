// MapReduceEngine: the JobTracker. Owns jobs and trackers, drives task
// dispatch, phase transitions and speculative execution.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/calibration.h"
#include "mapred/job.h"
#include "mapred/scheduler.h"
#include "mapred/task.h"
#include "mapred/tracker.h"
#include "sim/simulation.h"
#include "storage/hdfs.h"
#include "telemetry/profiler.h"

namespace hybridmr::telemetry {
struct Hub;
class Counter;
class Gauge;
class Histogram;
}  // namespace hybridmr::telemetry

namespace hybridmr::mapred {

class MapReduceEngine {
 public:
  struct Options {
    bool speculative_execution = true;
    sim::Duration speculation_interval_s{5.0};
    /// Minimum runtime before an attempt can be judged a straggler.
    sim::Duration speculation_min_elapsed_s{30.0};
    /// Stock Hadoop-1 behaviour: every slot gets a rigid share of the
    /// node's resources (fixed JVM heap, unmanaged I/O). HybridMR's DRM
    /// replaces these static caps with demand-driven allocations.
    bool static_slot_shares = true;
    /// Hadoop's mapred.map.max.attempts: a task whose attempts genuinely
    /// fail this many times takes its whole job down.
    int max_attempts = 4;
    /// When a saturated ban set is forgiven on requeue, the most recent
    /// tracker stays banned for this long before being forgiven too.
    sim::Duration requeue_ban_grace_s{3.0};
    /// Equivalence/debug mode: dispatch by re-scanning every tracker each
    /// pass (the pre-index O(passes x trackers^2) loop) instead of walking
    /// the free-slot offer set. Task placement must be identical either
    /// way; mapred_test pins that byte-for-byte.
    bool naive_dispatch = false;
  };

  MapReduceEngine(sim::Simulation& sim, storage::Hdfs& hdfs,
                  const cluster::Calibration& cal,
                  std::unique_ptr<TaskScheduler> scheduler, Options options);

  MapReduceEngine(sim::Simulation& sim, storage::Hdfs& hdfs,
                  const cluster::Calibration& cal,
                  std::unique_ptr<TaskScheduler> scheduler = nullptr)
      : MapReduceEngine(sim, hdfs, cal, std::move(scheduler), Options{}) {}

  MapReduceEngine(const MapReduceEngine&) = delete;
  MapReduceEngine& operator=(const MapReduceEngine&) = delete;

  /// Registers a TaskTracker on `site`. Slot counts default to the
  /// calibrated Hadoop configuration (2 map + 2 reduce).
  TaskTracker* add_tracker(cluster::ExecutionSite& site, int map_slots = -1,
                           int reduce_slots = -1);

  /// Decommissions the TaskTracker on `site`. Fails (returns false) when
  /// the tracker still runs attempts; drain it first (IPS requeue or wait).
  bool remove_tracker(cluster::ExecutionSite& site);

  /// The tracker registered on `site`, or nullptr.
  [[nodiscard]] TaskTracker* tracker_on(const cluster::ExecutionSite& site)
      const;

  [[nodiscard]] const std::vector<std::unique_ptr<TaskTracker>>& trackers()
      const {
    return trackers_;
  }

  /// Submits a job; stages its input file across the datanodes first.
  Job* submit(const JobSpec& spec,
              PlacementPool pool = PlacementPool::kAny);
  /// Submits a job over an already staged input file.
  Job* submit(const JobSpec& spec, storage::Hdfs::FileId input,
              PlacementPool pool = PlacementPool::kAny);

  [[nodiscard]] const std::vector<std::unique_ptr<Job>>& jobs() const {
    return jobs_;
  }
  [[nodiscard]] int active_jobs() const { return active_jobs_; }

  /// All currently running attempts across all trackers (DRM's view).
  [[nodiscard]] std::vector<TaskAttempt*> running_attempts() const;

  /// Fills every free slot it can. Called internally on submit/completion;
  /// safe to call at any time.
  void dispatch();

  /// Kills a running attempt and re-queues its task, optionally banning the
  /// tracker it ran on (IPS migration/abort action). The MapReduce master
  /// treats it like a failed speculative copy: correctness is unaffected.
  void requeue(TaskAttempt& attempt, bool ban_tracker);

  /// Records a genuine attempt failure (bad record, JVM crash — injected
  /// by the fault layer). Counts against Options::max_attempts; within the
  /// bound the task is requeued (banning the tracker when asked), past it
  /// the whole job fails, like Hadoop. Returns true if the job survived.
  bool fail_attempt(TaskAttempt& attempt, bool ban_tracker = false);

  /// Fails an active job outright: kills its running attempts, marks it
  /// kFailed, fires on_complete. No-op (returns) on terminal jobs.
  void fail_job(Job& job, const std::string& reason);

  /// Heartbeat timeout / host crash for the tracker on `site`: blacklists
  /// it, requeues its running attempts and every attempt that depends on
  /// the site (in-flight shuffle fetches), and schedules completed map
  /// outputs stored there for re-execution (Hadoop 1 semantics). Returns
  /// false when no tracker is registered on `site`.
  bool mark_tracker_lost(cluster::ExecutionSite& site);

  /// Clears the blacklist for the tracker on `site` (heartbeats resumed /
  /// host rebooted) and redispatches. Returns false when unknown.
  bool restore_tracker(cluster::ExecutionSite& site);

  /// Attaches the engine to a telemetry hub (null detaches); counters are
  /// registered and cached here so per-task recording is map-lookup-free.
  void set_telemetry(telemetry::Hub* hub);
  [[nodiscard]] telemetry::Hub* telemetry() const { return tel_; }

  // --- internals used by TaskAttempt / TaskTracker ---
  void attempt_finished(TaskAttempt& attempt);
  /// Re-derives `tracker`'s free-slot offer-set membership after a slot
  /// grant/release or blacklist transition. Idempotent and O(log trackers);
  /// called from TaskTracker::launch/release and the blacklist paths so the
  /// offer set is never stale when dispatch() reads it.
  void update_offer(TaskTracker& tracker);
  /// Registers `fn` to run whenever an attempt leaves its tracker — every
  /// death path funnels through TaskTracker::release (normal finish, kill,
  /// IPS requeue, bounded-retry failure, tracker loss, crash teardown), so
  /// this is the one event-driven signal controllers keyed by TaskAttempt*
  /// (the IPS action map) need to drop state the moment it goes stale
  /// instead of polling at their next epoch. Returns a token for
  /// remove_release_observer(); slots are never erased (tokens stay
  /// stable), removal nulls the entry.
  std::size_t add_release_observer(std::function<void(const TaskAttempt&)> fn);
  void remove_release_observer(std::size_t token);

  /// Telemetry hooks (no-ops without a hub).
  void note_task_started(const TaskAttempt& attempt);
  void note_attempt_released(const TaskAttempt& attempt);
  void note_shuffle_started(const TaskAttempt& attempt,
                            sim::MegaBytes total_mb, int sources);
  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] storage::Hdfs& hdfs() { return hdfs_; }
  [[nodiscard]] const cluster::Calibration& calibration() const {
    return cal_;
  }
  [[nodiscard]] int reducers_for(const JobSpec& spec) const;
  [[nodiscard]] const Options& options() const { return options_; }

  // --- stats ---
  [[nodiscard]] int speculative_launched() const { return speculative_count_; }
  [[nodiscard]] int requeued() const { return requeue_count_; }
  [[nodiscard]] int jobs_failed() const { return jobs_failed_; }
  [[nodiscard]] int attempt_failures() const { return attempt_failures_; }
  [[nodiscard]] int maps_reexecuted() const { return maps_reexecuted_; }
  [[nodiscard]] const TaskScheduler& scheduler() const { return *scheduler_; }

 private:
  void maybe_start_speculation_monitor();
  void speculation_scan();
  /// Reverts completed maps whose output lived on `site` to pending and
  /// downgrades kReducing jobs back to kMapping (Hadoop 1 re-execution of
  /// lost map outputs). Returns the number of maps reverted.
  int reexecute_lost_map_outputs(const cluster::ExecutionSite& site);
  /// Requeues (without banning) every running attempt that depends_on the
  /// site. Returns the number requeued.
  int requeue_attempts_depending_on(const cluster::ExecutionSite& site);
  /// Audit checkpoint (no-op unless HYBRIDMR_AUDIT): task-state exclusivity
  /// and map/reduce completion-count conservation for one job.
  void audit_verify_job(const Job& job) const;
  TaskTracker* tracker_with_free_slot(TaskType type,
                                      const TaskTracker* exclude,
                                      const Task& task) const;
  /// Renumbers tracker indices and rebuilds the offer set + site map after
  /// a structural change (remove_tracker). Cold path.
  void rebuild_dispatch_index();
  /// Exact per-host concurrency gate in O(VMs on the host): sums the
  /// running counts of the trackers on the host's native site and each of
  /// its VMs via the site map (Machine::vms() is live topology, so
  /// migration keeps this correct without hooks).
  [[nodiscard]] bool host_gated(const TaskTracker& tracker,
                                std::uint64_t& tracker_scans) const;
  /// One dispatch sweep over the offer sets (or every tracker when
  /// naive_dispatch). Returns true when anything launched.
  bool dispatch_wave(const std::vector<Job*>& jobs, bool locality_only,
                     std::uint64_t& tracker_scans, std::uint64_t& launches);
  /// Pending tasks of `type` across jobs a dispatch pick may currently draw
  /// from (kMapping jobs offer maps, kReducing jobs offer reduces — the
  /// scheduler's eligibility rule). Sums the O(1) per-job counters, so a
  /// wave can skip slot offers outright when this is zero: pick() consults
  /// exactly the same cached pending flags, so a zero here proves every
  /// pick of this type would return null.
  [[nodiscard]] int schedulable_pending(TaskType type) const;

  sim::Simulation& sim_;
  storage::Hdfs& hdfs_;
  const cluster::Calibration& cal_;
  std::unique_ptr<TaskScheduler> scheduler_;
  Options options_;
  std::vector<std::unique_ptr<TaskTracker>> trackers_;
  // Dispatch index: ordered sets of tracker indices with at least one free
  // slot of the given type (and not blacklisted), maintained incrementally
  // by update_offer(); dispatch waves merge-walk these in index order
  // instead of re-scanning every tracker, and consult each only while
  // schedulable_pending() for its type is nonzero — during a saturated map
  // phase that leaves a handful of slot offers per wave instead of the
  // whole cluster. The site map serves O(1) tracker_on() and the per-host
  // gate; it is only ever *looked up*, never iterated, so unordered is
  // determinism-safe.
  // hmr-state(ephemeral: incrementally maintained dispatch index; a fork
  // rebuilds it from trackers_ via update_offer() instead of copying)
  std::set<std::uint32_t> offer_map_;
  // hmr-state(ephemeral: reduce-side twin of offer_map_)
  std::set<std::uint32_t> offer_reduce_;
  // hmr-state(ephemeral: lookup memo over trackers_; rebuild after a fork
  // re-points the site back-references)
  std::unordered_map<const cluster::ExecutionSite*, TaskTracker*>
      tracker_by_site_;
  std::vector<std::unique_ptr<Job>> jobs_;
  int active_jobs_ = 0;
  bool speculation_monitor_running_ = false;
  int speculative_count_ = 0;
  int requeue_count_ = 0;
  int jobs_failed_ = 0;
  int attempt_failures_ = 0;
  int maps_reexecuted_ = 0;
  bool dispatching_ = false;
  // Attempt-release observer slots (see add_release_observer); the
  // closures hold back-references to their controllers (IPS), which
  // deregister on destruction.
  std::vector<std::function<void(const TaskAttempt&)>> release_observers_;
  // Telemetry hub plus cached metric handles (all null when detached).
  telemetry::Hub* tel_ = nullptr;
  telemetry::Counter* tel_jobs_submitted_ = nullptr;
  telemetry::Counter* tel_jobs_finished_ = nullptr;
  telemetry::Counter* tel_tasks_finished_ = nullptr;
  telemetry::Counter* tel_tasks_killed_ = nullptr;
  telemetry::Counter* tel_speculative_ = nullptr;
  telemetry::Counter* tel_shuffle_mb_ = nullptr;
  telemetry::Counter* tel_tasks_failed_ = nullptr;
  telemetry::Counter* tel_jobs_failed_ = nullptr;
  telemetry::Counter* tel_maps_reexecuted_ = nullptr;
  telemetry::Gauge* tel_running_ = nullptr;
  telemetry::Histogram* tel_map_task_s_ = nullptr;
  telemetry::Histogram* tel_reduce_task_s_ = nullptr;
  // Cached profiler handle (null unless a profiled run).
  telemetry::Profiler* prof_ = nullptr;
  telemetry::ScopeId prof_dispatch_scope_;
  telemetry::ScopeId prof_speculation_scope_;
};

}  // namespace hybridmr::mapred
