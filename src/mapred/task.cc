#include "mapred/task.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "audit/invariants.h"
#include "mapred/engine.h"
#include "mapred/job.h"
#include "mapred/tracker.h"

namespace hybridmr::mapred {

using cluster::Resources;
using cluster::Workload;

namespace {
/// Hadoop's mapreduce.reduce.shuffle.parallelcopies default-ish bound.
constexpr int kShuffleParallelism = 4;
}  // namespace

TaskAttempt* Task::running_attempt() const {
  for (const auto& a : attempts_) {
    if (a->running()) return a.get();
  }
  return nullptr;
}

int Task::running_count() const {
  int n = 0;
  for (const auto& a : attempts_) {
    if (a->running()) ++n;
  }
  return n;
}

void Task::sync_pending() {
  const bool now_pending = !completed_ && running_count() == 0;
  if (now_pending == pending_) return;
  pending_ = now_pending;
  int& counter =
      type_ == TaskType::kMap ? job_->pending_maps_ : job_->pending_reduces_;
  counter += now_pending ? 1 : -1;
}

// ------------------------------------------------------------- attempt ----

TaskAttempt::TaskAttempt(Task& task, TaskTracker& tracker,
                         MapReduceEngine& engine)
    : task_(&task), tracker_(&tracker), engine_(&engine) {}

TaskAttempt::~TaskAttempt() { teardown(); }

cluster::ExecutionSite& TaskAttempt::site() const { return tracker_->site(); }

std::string TaskAttempt::label() const {
  const Job& job = task_->job();
  return job.spec().name + "-j" + std::to_string(job.id()) +
         (task_->type() == TaskType::kMap ? "-m" : "-r") +
         std::to_string(task_->index());
}

void TaskAttempt::start() {
  started_ = true;
  task_->sync_pending();
  started_at_ = engine_->sim().now();
  build_phases();
  next_phase();
}

void TaskAttempt::build_phases() {
  const JobSpec& spec = task_->job().spec();
  const auto& cal = engine_->calibration();
  phases_.clear();
  if (task_->type() == TaskType::kMap) {
    const double mb = engine_->hdfs()
                          .block_size_mb(task_->job().input_file(),
                                         task_->index())
                          .value();
    // Fetch the first split buffer through HDFS (captures locality), then
    // stream the rest pipelined with record processing, like a real map.
    const sim::MegaBytes head_mb{0.15 * mb};
    const sim::MegaBytes body_mb = sim::MegaBytes{mb} - head_mb;
    phases_.push_back({Phase::Kind::kRead, head_mb.value(), {}});
    const double cpu_s = (sim::MegaBytes{mb} * spec.map_cpu_s_per_mb).value();
    const double stream_s = std::max(
        {0.05, cpu_s, (body_mb / cal.hdfs_stream_disk_mbps).value()});
    Phase stream{Phase::Kind::kStream, stream_s, {}};
    stream.demand.cpu = std::min(1.0, cpu_s / stream_s);
    stream.demand.disk = body_mb.value() / stream_s;
    stream.demand.memory = spec.task_memory_mb.value();
    phases_.push_back(stream);
    const double out = mb * spec.map_selectivity;
    if (out > 0.01) phases_.push_back({Phase::Kind::kLocalWrite, out, {}});
  } else {
    const double mb = task_->job().shuffle_mb_per_reducer().value();
    if (mb > 0.01) phases_.push_back({Phase::Kind::kShuffle, mb, {}});
    // Merge-sort passes grow with the spill count: the reduce-phase
    // nonlinearity of Fig. 5(c).
    const double spills = std::max(
        1.0,
        std::log2(1.0 + mb / std::max(1.0, spec.task_memory_mb.value())));
    const double cpu =
        (sim::MegaBytes{mb} *
         (spec.reduce_cpu_s_per_mb + spec.sort_cpu_s_per_mb * spills))
            .value();
    phases_.push_back({Phase::Kind::kCompute, std::max(0.05, cpu), {}});
    const double out = mb * spec.reduce_output_ratio;
    if (out > 0.01) phases_.push_back({Phase::Kind::kWrite, out, {}});
  }

  // Phase weights = estimated duration shares (used only for progress).
  weights_.clear();
  double total = 0;
  for (const auto& p : phases_) {
    double est = 0;
    switch (p.kind) {
      case Phase::Kind::kRead:
      case Phase::Kind::kLocalWrite:
        est = (sim::MegaBytes{p.amount} / cal.hdfs_stream_disk_mbps).value();
        break;
      case Phase::Kind::kCompute:
      case Phase::Kind::kStream:
        est = p.amount;
        break;
      case Phase::Kind::kShuffle:
        est = (sim::MegaBytes{p.amount} / cal.hdfs_stream_net_mbps).value();
        break;
      case Phase::Kind::kWrite:
        est = 2 * (sim::MegaBytes{p.amount} /
                   cal.hdfs_stream_disk_mbps).value();  // replication
        break;
    }
    weights_.push_back(est);
    total += est;
  }
  for (auto& w : weights_) {
    w = total > 0 ? w / total : 1.0 / static_cast<double>(phases_.size());
  }
}

void TaskAttempt::next_phase() {
  ++phase_idx_;
  flows_.clear();
  flow_done_mb_ = sim::MegaBytes{0};
  phase_flow_total_ = 0;
  if (phase_idx_ >= static_cast<int>(phases_.size())) {
    finished_ = true;
    task_->sync_pending();
    tracker_->release(this);
    engine_->attempt_finished(*this);
    return;
  }

  const Phase& phase = phases_[static_cast<std::size_t>(phase_idx_)];
  const JobSpec& spec = task_->job().spec();
  const auto& cal = engine_->calibration();

  switch (phase.kind) {
    case Phase::Kind::kRead: {
      phase_flow_total_ = phase.amount;
      const sim::MegaBytes block_mb = engine_->hdfs().block_size_mb(
          task_->job().input_file(), task_->index());
      auto handle = engine_->hdfs().read_block(
          task_->job().input_file(), task_->index(), site(),
          [this, mb = sim::MegaBytes{phase.amount}]() { flow_completed(mb); },
          block_mb > sim::MegaBytes{0} ? phase.amount / block_mb.value()
                                       : 1.0);
      if (paused_) handle.set_paused(true);
      handle.set_caps(caps_);
      flows_.push_back({handle, sim::MegaBytes{phase.amount}});
      break;
    }
    case Phase::Kind::kStream:
    case Phase::Kind::kCompute: {
      Resources d = phase.demand;
      if (phase.kind == Phase::Kind::kCompute) {
        d.cpu = 1.0;
        d.memory = spec.task_memory_mb.value();
      }
      workload_ = std::make_shared<Workload>(label() + ":compute", d,
                                             sim::Duration{phase.amount});
      workload_->set_caps(caps_);
      workload_->set_paused(paused_);
      workload_->on_complete = [this]() {
        workload_.reset();
        phase_finished();
      };
      site().add(workload_);
      break;
    }
    case Phase::Kind::kLocalWrite: {
      Resources d;
      d.disk = cal.hdfs_stream_disk_mbps.value();
      workload_ = std::make_shared<Workload>(
          label() + ":spill", d,
          sim::MegaBytes{phase.amount} / cal.hdfs_stream_disk_mbps);
      workload_->set_caps(caps_);
      workload_->set_paused(paused_);
      workload_->on_complete = [this]() {
        workload_.reset();
        phase_finished();
      };
      site().add(workload_);
      break;
    }
    case Phase::Kind::kShuffle:
      begin_shuffle(sim::MegaBytes{phase.amount});
      break;
    case Phase::Kind::kWrite: {
      phase_flow_total_ = phase.amount;
      auto handle = engine_->hdfs().write(
          site(), sim::MegaBytes{phase.amount},
          [this, mb = sim::MegaBytes{phase.amount}]() { flow_completed(mb); },
          spec.output_replicas);
      if (paused_) handle.set_paused(true);
      handle.set_caps(caps_);
      flows_.push_back({handle, sim::MegaBytes{phase.amount}});
      break;
    }
  }
}

void TaskAttempt::begin_shuffle(sim::MegaBytes total_mb) {
  phase_flow_total_ = total_mb.value();
  shuffle_queue_.clear();
  shuffle_next_ = 0;

  // Group this reducer's share of each map output by source site, in
  // first-map order (pointer-keyed ordering would be nondeterministic; the
  // unordered map is a lookup index only — the queue itself carries the
  // deterministic order).
  const auto& maps = task_->job().maps();
  const double per_map =
      maps.empty() ? 0 : total_mb.value() / static_cast<double>(maps.size());
  std::unordered_map<const cluster::ExecutionSite*, std::size_t> slot_of;
  slot_of.reserve(maps.size());
  for (const auto& m : maps) {
    cluster::ExecutionSite* src = m->output_site();
    if (src == nullptr) src = &site();  // defensive: treat as local
    const auto [it, inserted] = slot_of.emplace(src, shuffle_queue_.size());
    if (inserted) {
      shuffle_queue_.emplace_back(src, per_map);
    } else {
      shuffle_queue_[it->second].second += per_map;
    }
  }
#if defined(HYBRIDMR_AUDIT_ENABLED)
  // Conservation through the shuffle: partitioning the reducer's input by
  // source site must neither create nor lose bytes.
  sim::MegaBytes queued_mb;
  for (const auto& [src, mb] : shuffle_queue_) queued_mb += sim::MegaBytes{mb};
  HYBRIDMR_AUDIT_CHECK(
      std::abs(queued_mb.value() - (maps.empty() ? 0.0 : total_mb.value())) <=
          1e-6 * std::max(1.0, total_mb.value()),
      "mapred.task", "shuffle_mb_conserved", engine_->sim().now(),
      {{"attempt", label()},
       {"total_mb", audit::num(total_mb.value())},
       {"queued_mb", audit::num(queued_mb.value())},
       {"sources", audit::num(static_cast<double>(shuffle_queue_.size()))}});
#endif
  if (shuffle_queue_.empty()) {
    phase_finished();
    return;
  }
  engine_->note_shuffle_started(*this, total_mb,
                                static_cast<int>(shuffle_queue_.size()));
  pump_shuffle();
}

void TaskAttempt::pump_shuffle() {
  // Launch the whole shuffle in one wave: local and loopback sources keep
  // their individual disk-paced flows (there are O(VMs/host) of those),
  // but every remote source folds into ONE batched flow, so a reducer's
  // shuffle costs one completion event however many machines feed it —
  // event count grows with reducers, not reducers x machines.
  std::vector<std::pair<cluster::ExecutionSite*, sim::MegaBytes>> remote;
  for (; shuffle_next_ < shuffle_queue_.size(); ++shuffle_next_) {
    auto [src, mb] = shuffle_queue_[shuffle_next_];
    if (src != &site() && !storage::same_host(*src, site())) {
      remote.emplace_back(src, sim::MegaBytes{mb});
      continue;
    }
    auto handle = engine_->hdfs().transfer(
        *src, site(), sim::MegaBytes{mb},
        [this, mb]() { flow_completed(sim::MegaBytes{mb}); });
    if (paused_) handle.set_paused(true);
    handle.set_caps(caps_);
    flows_.push_back({handle, sim::MegaBytes{mb}, src});
  }
  if (remote.empty()) return;
  sim::MegaBytes remote_mb;
  for (const auto& [src, mb] : remote) remote_mb += mb;
  auto handle = engine_->hdfs().transfer_batch(
      remote, site(), [this, remote_mb]() { flow_completed(remote_mb); },
      kShuffleParallelism);
  if (paused_) handle.set_paused(true);
  handle.set_caps(caps_);
  ActiveFlow flow{handle, remote_mb};
  flow.batch_srcs.reserve(remote.size());
  for (const auto& [src, mb] : remote) flow.batch_srcs.push_back(src);
  flows_.push_back(std::move(flow));
}

void TaskAttempt::flow_completed(sim::MegaBytes mb) {
  flow_done_mb_ += mb;
  // Drop completed handles.
  flows_.erase(std::remove_if(flows_.begin(), flows_.end(),
                              [](const ActiveFlow& f) {
                                return !f.handle.active();
                              }),
               flows_.end());
  if (shuffle_next_ < shuffle_queue_.size()) pump_shuffle();
  if (flows_.empty() && shuffle_next_ >= shuffle_queue_.size()) {
    phase_finished();
  }
}

void TaskAttempt::phase_finished() {
  if (killed_ || finished_) return;
  completed_weight_ += weights_[static_cast<std::size_t>(phase_idx_)];
  next_phase();
}

double TaskAttempt::progress() const {
  if (finished_) return 1.0;
  if (!started_ || phase_idx_ < 0 ||
      phase_idx_ >= static_cast<int>(phases_.size())) {
    return completed_weight_;
  }
  double in_phase = 0;
  if (workload_) {
    in_phase = workload_->progress();
  } else if (phase_flow_total_ > 0) {
    sim::MegaBytes moving;
    for (const auto& f : flows_) {
      moving += f.amount_mb * f.handle.progress();
    }
    in_phase =
        (flow_done_mb_ + moving) / sim::MegaBytes{phase_flow_total_};
  }
  in_phase = std::clamp(in_phase, 0.0, 1.0);
  return std::clamp(
      completed_weight_ +
          in_phase * weights_[static_cast<std::size_t>(phase_idx_)],
      0.0, 1.0);
}

double TaskAttempt::elapsed() const {
  return started_ ? engine_->sim().now() - started_at_ : 0;
}

double TaskAttempt::progress_rate() const {
  const double t = elapsed();
  return t > 0 ? progress() / t : 0;
}

void TaskAttempt::set_caps(const Resources& caps) {
  caps_ = caps;
  if (workload_) workload_->set_caps(caps);
  for (auto& f : flows_) f.handle.set_caps(caps);
}

void TaskAttempt::set_paused(bool paused) {
  if (paused_ == paused) return;
  paused_ = paused;
  if (workload_) workload_->set_paused(paused);
  for (auto& f : flows_) f.handle.set_paused(paused);
}

Resources TaskAttempt::current_allocation() const {
  if (workload_) return workload_->allocated();
  Resources sum;
  for (const auto& f : flows_) {
    const cluster::Workload* p = f.handle.primary();
    // Flow primaries may run on another site (host-local serves); those do
    // not count against this tracker's node.
    if (p != nullptr && p->site() == &site()) sum += p->allocated();
  }
  return sum;
}

Resources TaskAttempt::current_demand() const {
  if (workload_) return workload_->effective_demand();
  Resources sum;
  for (const auto& f : flows_) {
    const cluster::Workload* p = f.handle.primary();
    if (p != nullptr && p->site() == &site()) sum += p->effective_demand();
  }
  return sum;
}

bool TaskAttempt::depends_on(const cluster::ExecutionSite& s) const {
  if (!running()) return false;
  if (&site() == &s) return true;
  for (const auto& f : flows_) {
    if (f.src == &s) return true;
    for (const cluster::ExecutionSite* member : f.batch_srcs) {
      if (member == &s) return true;
    }
    const cluster::Workload* p = f.handle.primary();
    if (p != nullptr && p->site() == &s) return true;
  }
  // Queued-but-unfetched shuffle sources: the map output lives on `s` and
  // is about to be read from there.
  for (std::size_t i = shuffle_next_; i < shuffle_queue_.size(); ++i) {
    if (shuffle_queue_[i].first == &s) return true;
  }
  return false;
}

void TaskAttempt::teardown() {
  for (auto& f : flows_) f.handle.cancel();
  flows_.clear();
  if (workload_) {
    workload_->on_complete = nullptr;
    if (workload_->site() != nullptr) {
      workload_->site()->remove(workload_.get());
    }
    workload_.reset();
  }
}

void TaskAttempt::kill() {
  if (!running()) return;
  killed_ = true;
  task_->sync_pending();
  teardown();
  tracker_->release(this);
}

}  // namespace hybridmr::mapred
