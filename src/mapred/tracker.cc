#include "mapred/tracker.h"

#include <algorithm>
#include <cassert>

#include "audit/invariants.h"
#include "mapred/engine.h"
#include "mapred/job.h"

namespace hybridmr::mapred {

cluster::Resources TaskTracker::static_slot_share(TaskType /*type*/) const {
  // Stock Hadoop-1 rigidity: a fixed per-JVM heap (mapred.child.java.opts:
  // node memory / per-type slot count) and conservative fixed per-stream
  // I/O throttles. CPU is left work-conserving (Linux CFS). HybridMR's DRM
  // replaces these with demand-driven allocations.
  const auto& cal = engine_->calibration();
  cluster::Resources caps = cluster::Resources::unbounded();
  // Two concurrently active slots saturate a native node's disk exactly;
  // the rigidity shows up whenever fewer streams than slots are active.
  caps.disk = cal.pm_disk_mbps.value() / 2;
  caps.net = cal.pm_net_mbps.value() / 2;
  // Every task JVM runs with the stock fixed heap (mapred.child.java.opts)
  // no matter how much memory the node actually has — the rigidity
  // MROrchestrator reclaims.
  caps.memory = cal.hadoop_child_heap_mb.value();
  return caps;
}

void TaskTracker::audit_verify_slots() const {
#if defined(HYBRIDMR_AUDIT_ENABLED)
  const double now = engine_->sim().now();
  const auto details = [&]() {
    return std::vector<audit::Detail>{
        {"site", site_->name()},
        {"running_maps", audit::num(running_maps_)},
        {"map_slots", audit::num(map_slots_)},
        {"running_reduces", audit::num(running_reduces_)},
        {"reduce_slots", audit::num(reduce_slots_)},
        {"running_list", audit::num(static_cast<double>(running_.size()))}};
  };
  HYBRIDMR_AUDIT_CHECK(
      running_maps_ >= 0 && running_maps_ <= map_slots_ &&
          running_reduces_ >= 0 && running_reduces_ <= reduce_slots_,
      "mapred.tracker", "slot_conservation", now, details());
  HYBRIDMR_AUDIT_CHECK(
      static_cast<int>(running_.size()) == running_maps_ + running_reduces_,
      "mapred.tracker", "slot_conservation", now, details());
  // Every listed attempt is genuinely running here, and appears once.
  for (std::size_t i = 0; i < running_.size(); ++i) {
    HYBRIDMR_AUDIT_CHECK(running_[i]->running() &&
                             &running_[i]->tracker() == this,
                         "mapred.tracker", "slot_conservation", now,
                         details());
    HYBRIDMR_AUDIT_CHECK(std::find(running_.begin() + i + 1, running_.end(),
                                   running_[i]) == running_.end(),
                         "mapred.tracker", "slot_conservation", now,
                         details());
  }
#endif
}

TaskAttempt* TaskTracker::launch(Task& task) {
  assert(free_slots(task.type()) > 0 && "no free slot");
  auto attempt = std::make_unique<TaskAttempt>(task, *this, *engine_);
  TaskAttempt* raw = attempt.get();
  task.attempts_.push_back(std::move(attempt));
  if (task.type() == TaskType::kMap) {
    ++running_maps_;
  } else {
    ++running_reduces_;
  }
  // Before start(): an attempt that finishes synchronously releases (and
  // decrements) from inside start(), so the increment must already be in.
  ++task.job().running_attempts_;
  running_.push_back(raw);
  // Offer-set update before start() for the same reason: a synchronous
  // finish re-derives membership from the post-release counts.
  engine_->update_offer(*this);
  if (engine_->options().static_slot_shares) {
    raw->set_base_caps(static_slot_share(task.type()));
  }
  raw->start();
  engine_->note_task_started(*raw);
  audit_verify_slots();
  return raw;
}

void TaskTracker::release(TaskAttempt* attempt) {
  auto it = std::find(running_.begin(), running_.end(), attempt);
  if (it == running_.end()) return;  // already released
  running_.erase(it);
  engine_->note_attempt_released(*attempt);
  if (attempt->task().type() == TaskType::kMap) {
    --running_maps_;
  } else {
    --running_reduces_;
  }
  --attempt->task().job().running_attempts_;
  engine_->update_offer(*this);
  audit_verify_slots();
}

}  // namespace hybridmr::mapred
