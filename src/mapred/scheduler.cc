#include "mapred/scheduler.h"

#include <algorithm>

namespace hybridmr::mapred {

bool TaskScheduler::eligible(const Job& job, TaskType type) {
  if (type == TaskType::kMap) return job.state() == JobState::kMapping;
  return job.state() == JobState::kReducing;
}

Task* TaskScheduler::pick_from_job(Job& job, TaskType type,
                                   TaskTracker& tracker,
                                   const storage::Hdfs& hdfs,
                                   bool locality_only) {
  const auto& tasks = type == TaskType::kMap ? job.maps() : job.reduces();
  Task* host_local = nullptr;
  Task* fallback = nullptr;
  for (const auto& t : tasks) {
    if (!t->pending()) continue;
    if (t->banned_trackers.contains(&tracker)) continue;
    if (type == TaskType::kMap) {
      const auto loc =
          hdfs.locality_of(job.input_file(), t->index(), &tracker.site());
      if (loc == storage::Locality::kNodeLocal) return t.get();
      if (loc == storage::Locality::kHostLocal && host_local == nullptr) {
        host_local = t.get();
      }
    }
    if (fallback == nullptr) fallback = t.get();
    if (type == TaskType::kReduce) break;  // reduces have no locality
  }
  if (host_local != nullptr) return host_local;
  if (locality_only && type == TaskType::kMap) return nullptr;
  return fallback;
}

Task* FifoScheduler::pick(TaskTracker& tracker, TaskType type,
                          const std::vector<Job*>& jobs,
                          const storage::Hdfs& hdfs, bool locality_only) {
  for (Job* job : jobs) {
    if (!eligible(*job, type)) continue;
    if (!job->pool_allows(tracker.site().is_virtual())) continue;
    if (Task* t = pick_from_job(*job, type, tracker, hdfs, locality_only)) {
      return t;
    }
  }
  return nullptr;
}

Task* FairScheduler::pick(TaskTracker& tracker, TaskType type,
                          const std::vector<Job*>& jobs,
                          const storage::Hdfs& hdfs, bool locality_only) {
  // Most-starved first: fewest running attempts, ties broken by submit
  // order. Sort keys are hoisted out of the comparator — pick() runs once
  // per free slot per dispatch wave, so comparator-time rescans dominate
  // large sweeps — and the key vector is scheduler-owned scratch, so the
  // hot path stops allocating after warm-up.
  by_starvation_.clear();
  for (Job* job : jobs) {
    if (!eligible(*job, type)) continue;
    if (!job->pool_allows(tracker.site().is_virtual())) continue;
    by_starvation_.emplace_back(job->running_tasks(), job);
  }
  std::stable_sort(
      by_starvation_.begin(), by_starvation_.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [running, job] : by_starvation_) {
    if (Task* t = pick_from_job(*job, type, tracker, hdfs, locality_only)) {
      return t;
    }
  }
  return nullptr;
}

std::unique_ptr<TaskScheduler> make_scheduler(const std::string& name) {
  if (name == "fair") return std::make_unique<FairScheduler>();
  return std::make_unique<FifoScheduler>();
}

}  // namespace hybridmr::mapred
