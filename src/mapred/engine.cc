#include "mapred/engine.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "audit/invariants.h"
#include "sim/log.h"
#include "telemetry/telemetry.h"

namespace hybridmr::mapred {

namespace {

/// Jobs share one timeline track in the trace; tasks go on their site's.
constexpr const char* kJobTrack = "jobs";

}  // namespace

MapReduceEngine::MapReduceEngine(sim::Simulation& sim, storage::Hdfs& hdfs,
                                 const cluster::Calibration& cal,
                                 std::unique_ptr<TaskScheduler> scheduler,
                                 Options options)
    : sim_(sim),
      hdfs_(hdfs),
      cal_(cal),
      scheduler_(scheduler ? std::move(scheduler)
                           : std::make_unique<FifoScheduler>()),
      options_(options) {}

TaskTracker* MapReduceEngine::add_tracker(cluster::ExecutionSite& site,
                                          int map_slots, int reduce_slots) {
  trackers_.push_back(std::make_unique<TaskTracker>(
      *this, site, map_slots >= 0 ? map_slots : cal_.map_slots_per_node,
      reduce_slots >= 0 ? reduce_slots : cal_.reduce_slots_per_node));
  TaskTracker* tr = trackers_.back().get();
  tr->index_ = static_cast<std::uint32_t>(trackers_.size() - 1);
  tracker_by_site_.emplace(&tr->site(), tr);
  update_offer(*tr);
  return tr;
}

TaskTracker* MapReduceEngine::tracker_on(
    const cluster::ExecutionSite& site) const {
  auto it = tracker_by_site_.find(&site);
  return it == tracker_by_site_.end() ? nullptr : it->second;
}

bool MapReduceEngine::remove_tracker(cluster::ExecutionSite& site) {
  auto it = std::find_if(trackers_.begin(), trackers_.end(),
                         [&](const auto& tr) { return &tr->site() == &site; });
  if (it == trackers_.end()) return false;
  if (!(*it)->running().empty()) return false;  // drain first
  // Scrub stale references: banned-tracker sets may point at this tracker.
  for (const auto& job : jobs_) {
    for (const auto& t : job->maps()) t->banned_trackers.erase(it->get());
    for (const auto& t : job->reduces()) t->banned_trackers.erase(it->get());
  }
  trackers_.erase(it);
  rebuild_dispatch_index();  // erase shifted every index after `it`
  return true;
}

void MapReduceEngine::update_offer(TaskTracker& tracker) {
  const bool ok = !tracker.blacklisted_;
  if (ok && tracker.free_slots(TaskType::kMap) > 0) {
    offer_map_.insert(tracker.index_);
  } else {
    offer_map_.erase(tracker.index_);
  }
  if (ok && tracker.free_slots(TaskType::kReduce) > 0) {
    offer_reduce_.insert(tracker.index_);
  } else {
    offer_reduce_.erase(tracker.index_);
  }
}

void MapReduceEngine::rebuild_dispatch_index() {
  tracker_by_site_.clear();
  offer_map_.clear();
  offer_reduce_.clear();
  for (std::size_t i = 0; i < trackers_.size(); ++i) {
    TaskTracker* tr = trackers_[i].get();
    tr->index_ = static_cast<std::uint32_t>(i);
    tracker_by_site_.emplace(&tr->site(), tr);
    update_offer(*tr);
  }
}

int MapReduceEngine::reducers_for(const JobSpec& spec) const {
  if (spec.num_reducers > 0) return spec.num_reducers;
  // Hadoop's rule of thumb: 0.95 x total reduce slots.
  int slots = 0;
  for (const auto& tr : trackers_) slots += tr->reduce_slots();
  return std::max(1, static_cast<int>(0.95 * slots));
}

Job* MapReduceEngine::submit(const JobSpec& spec, PlacementPool pool) {
  const auto input = hdfs_.stage_file(
      spec.name + "-input-" + std::to_string(jobs_.size()), spec.input_mb(),
      spec.split_mb);
  return submit(spec, input, pool);
}

Job* MapReduceEngine::submit(const JobSpec& spec, storage::Hdfs::FileId input,
                             PlacementPool pool) {
  assert(!trackers_.empty() && "submit needs at least one TaskTracker");
  const int id = static_cast<int>(jobs_.size());
  jobs_.push_back(std::make_unique<Job>(id, spec));
  Job* job = jobs_.back().get();
  job->input_file_ = input;
  job->submit_time_ = sim_.now();
  job->state_ = JobState::kMapping;
  job->pool_ = pool;

  const int n_maps = hdfs_.num_blocks(input);
  job->maps_.reserve(static_cast<std::size_t>(n_maps));
  for (int i = 0; i < n_maps; ++i) {
    job->maps_.push_back(std::make_unique<Task>(*job, TaskType::kMap, i));
  }
  const int n_reduces = reducers_for(spec);
  job->reduces_.reserve(static_cast<std::size_t>(n_reduces));
  for (int i = 0; i < n_reduces; ++i) {
    job->reduces_.push_back(
        std::make_unique<Task>(*job, TaskType::kReduce, i));
  }
  for (const auto& t : job->maps_) t->sync_pending();
  for (const auto& t : job->reduces_) t->sync_pending();

  ++active_jobs_;
  sim::log_info(sim_.now(), "jobtracker",
                "submit " + spec.name + " (" + std::to_string(n_maps) +
                    " maps, " + std::to_string(n_reduces) + " reduces)");
  if (tel_ != nullptr) {
    tel_jobs_submitted_->add();
    tel_->trace.instant(
        sim_.now(), telemetry::EventKind::kJobSubmit,
        spec.name + "-j" + std::to_string(id), kJobTrack,
        {{"maps", telemetry::json_num(n_maps)},
         {"reduces", telemetry::json_num(n_reduces)},
         {"input_mb", telemetry::json_num(spec.input_mb().value())}});
  }
  maybe_start_speculation_monitor();
  dispatch();
  return job;
}

std::vector<TaskAttempt*> MapReduceEngine::running_attempts() const {
  std::vector<TaskAttempt*> out;
  for (const auto& tr : trackers_) {
    out.insert(out.end(), tr->running().begin(), tr->running().end());
  }
  return out;
}

bool MapReduceEngine::host_gated(const TaskTracker& tracker,
                                 std::uint64_t& tracker_scans) const {
  const cluster::Machine* host = tracker.site().host_machine();
  if (host == nullptr) return false;
  // Every tracker on this host is either the host's own native site or one
  // of its attached VMs (VirtualMachine::host_machine() is non-null exactly
  // while listed in Machine::vms()), so summing those sites' running counts
  // reproduces the old all-tracker co-host scan in O(VMs per host).
  int running = 0;
  auto add_site = [&](const cluster::ExecutionSite* site) {
    ++tracker_scans;
    auto it = tracker_by_site_.find(site);
    if (it != tracker_by_site_.end()) {
      running += static_cast<int>(it->second->running().size());
    }
  };
  add_site(host);
  for (const cluster::VirtualMachine* vm : host->vms()) add_site(vm);
  return running >= static_cast<int>(2 * host->capacity().cpu);
}

bool MapReduceEngine::dispatch_wave(const std::vector<Job*>& jobs,
                                    bool locality_only,
                                    std::uint64_t& tracker_scans,
                                    std::uint64_t& launches) {
  bool progressed = false;
  auto offer_tracker = [&](TaskTracker& tr) {
    for (TaskType type : {TaskType::kMap, TaskType::kReduce}) {
      if (tr.free_slots(type) <= 0) continue;
      Task* task = scheduler_->pick(tr, type, jobs, hdfs_, locality_only);
      if (task == nullptr) continue;
      tr.launch(*task);
      ++launches;
      progressed = true;
    }
  };
  if (options_.naive_dispatch) {
    // Pre-index loop, kept verbatim for the equivalence test: full tracker
    // scan per pass, with the O(trackers) co-host re-scan inside the gate.
    auto naive_gate = [this, &tracker_scans](const TaskTracker& tr) {
      const cluster::Machine* host = tr.site().host_machine();
      if (host == nullptr) return false;
      tracker_scans += trackers_.size();
      int running = 0;
      for (const auto& other : trackers_) {
        if (other->site().host_machine() == host) {
          running += static_cast<int>(other->running().size());
        }
      }
      return running >= static_cast<int>(2 * host->capacity().cpu);
    };
    for (const auto& tr : trackers_) {
      ++tracker_scans;
      if (tr->blacklisted_) continue;
      if (naive_gate(*tr)) continue;
      offer_tracker(*tr);
    }
    return progressed;
  }
  // Indexed wave: merge-walk the two offer sets in index order — the same
  // visit order the full scan used, with map tried before reduce on each
  // tracker — but only while a pick of that type can possibly succeed
  // (schedulable_pending sums the same cached pending flags pick() tests,
  // so a zero is a proof, not a heuristic). Launches during the wave mutate
  // the sets (slot grants drop trackers, synchronous sibling kills re-add
  // them), so the cursor re-enters via lower_bound instead of holding an
  // iterator; a tracker whose slot frees behind the cursor is picked up by
  // the next wave, exactly as the full re-scan would.
  int avail_map = schedulable_pending(TaskType::kMap);
  int avail_reduce = schedulable_pending(TaskType::kReduce);
  std::uint32_t pos = 0;
  while (avail_map > 0 || avail_reduce > 0) {
    const auto im =
        avail_map > 0 ? offer_map_.lower_bound(pos) : offer_map_.end();
    const auto ir = avail_reduce > 0 ? offer_reduce_.lower_bound(pos)
                                     : offer_reduce_.end();
    const bool have_m = im != offer_map_.end();
    const bool have_r = ir != offer_reduce_.end();
    if (!have_m && !have_r) break;
    const std::uint32_t idx =
        have_m && have_r ? std::min(*im, *ir) : (have_m ? *im : *ir);
    TaskTracker& tr = *trackers_[idx];
    pos = idx + 1;
    ++tracker_scans;
    if (host_gated(tr, tracker_scans)) continue;
    for (TaskType type : {TaskType::kMap, TaskType::kReduce}) {
      const int avail = type == TaskType::kMap ? avail_map : avail_reduce;
      if (avail <= 0) continue;
      if (tr.free_slots(type) <= 0) continue;
      Task* task = scheduler_->pick(tr, type, jobs, hdfs_, locality_only);
      if (task == nullptr) continue;
      tr.launch(*task);
      ++launches;
      progressed = true;
      // A launch can cascade (sibling kills, synchronous phase flips), so
      // re-derive both counts from the job counters rather than decrement.
      avail_map = schedulable_pending(TaskType::kMap);
      avail_reduce = schedulable_pending(TaskType::kReduce);
    }
  }
  return progressed;
}

int MapReduceEngine::schedulable_pending(TaskType type) const {
  int n = 0;
  for (const auto& j : jobs_) {
    if (!scheduler_->eligible(*j, type)) continue;
    n += type == TaskType::kMap ? j->pending_maps() : j->pending_reduces();
  }
  return n;
}

void MapReduceEngine::dispatch() {
  if (dispatching_) return;
  dispatching_ = true;
  telemetry::Scope prof_scope(prof_, prof_dispatch_scope_);
  std::uint64_t tracker_scans = 0;
  std::uint64_t launches = 0;
  // Nothing to place (or nowhere to place it): scheduler->pick() cannot
  // return a task, so skip the sweep. eligible() only admits kMapping /
  // kReducing jobs, which active_jobs_ counts.
  const bool can_launch =
      active_jobs_ > 0 && (options_.naive_dispatch || !offer_map_.empty() ||
                           !offer_reduce_.empty());
  if (can_launch) {
    std::vector<Job*> jobs;
    jobs.reserve(jobs_.size());
    for (const auto& j : jobs_) jobs.push_back(j.get());
    // Round-robin one slot per tracker per pass (mirrors heartbeat
    // interleaving), locality round first (Hadoop's delay scheduling). A
    // per-host concurrency cap of 2 tasks per core acts like slots sized to
    // the hardware: it stops a host that frees a slot first from vacuuming
    // the job's tail while other hosts still have capacity — deferred tasks
    // are picked up on a later completion by a less-loaded host.
    for (bool locality_only : {true, false}) {
      while (dispatch_wave(jobs, locality_only, tracker_scans, launches)) {
      }
    }
  }
  if (prof_ != nullptr) {
    prof_->add(telemetry::WorkCounter::kDispatchPasses);
    prof_->add(telemetry::WorkCounter::kDispatchTrackerScans, tracker_scans);
    prof_->add(telemetry::WorkCounter::kDispatchLaunches, launches);
  }
  dispatching_ = false;
}

void MapReduceEngine::requeue(TaskAttempt& attempt, bool ban_tracker) {
  if (!attempt.running()) return;
  Task& task = attempt.task();
  TaskTracker* evicted_from = &attempt.tracker();
  if (ban_tracker) task.banned_trackers.insert(evicted_from);
  if (tel_ != nullptr) {
    tel_tasks_killed_->add();
    tel_->trace.instant(sim_.now(), telemetry::EventKind::kTaskKilled,
                        attempt.label(), attempt.site().name(),
                        {{"banned", ban_tracker ? "true" : "false"}});
  }
  attempt.kill();
  ++requeue_count_;
  // If every tracker is now banned, forgive the bans so the task can still
  // finish somewhere — except the most recent one: re-dispatching straight
  // back onto the tracker the attempt was just evicted from would undo the
  // IPS eviction the ban encodes. That last ban expires after a short
  // grace period instead.
  if (task.banned_trackers.size() >= trackers_.size()) {
    const TaskTracker* recent = ban_tracker ? evicted_from : nullptr;
    task.banned_trackers.clear();
    if (recent != nullptr) {
      task.banned_trackers.insert(recent);
      Task* tp = &task;
      sim_.after(options_.requeue_ban_grace_s, [this, tp, recent]() {
        if (tp->completed() || tp->job().finished()) return;
        if (tp->banned_trackers.erase(recent) > 0) dispatch();
      });
    }
  }
  dispatch();
}

bool MapReduceEngine::fail_attempt(TaskAttempt& attempt, bool ban_tracker) {
  if (!attempt.running()) return true;
  Task& task = attempt.task();
  ++task.failed_attempts_;
  ++attempt_failures_;
  if (tel_ != nullptr) {
    tel_tasks_failed_->add();
    tel_->trace.instant(
        sim_.now(), telemetry::EventKind::kTaskFailed, attempt.label(),
        attempt.site().name(),
        {{"failures", telemetry::json_num(task.failed_attempts_)},
         {"max_attempts", telemetry::json_num(options_.max_attempts)}});
  }
  if (task.failed_attempts_ >= options_.max_attempts) {
    attempt.kill();
    fail_job(task.job(), attempt.label() + " failed " +
                             std::to_string(task.failed_attempts_) +
                             " attempts");
    return false;
  }
  requeue(attempt, ban_tracker);
  return true;
}

void MapReduceEngine::fail_job(Job& job, const std::string& reason) {
  if (job.finished()) return;
  job.state_ = JobState::kFailed;
  job.finish_time_ = sim_.now();
  --active_jobs_;
  ++jobs_failed_;
  for (TaskType type : {TaskType::kMap, TaskType::kReduce}) {
    auto& tasks = type == TaskType::kMap ? job.maps_ : job.reduces_;
    for (auto& t : tasks) {
      for (auto& a : t->attempts_) {
        if (a->running()) a->kill();
      }
    }
  }
  sim::log_info(sim_.now(), "jobtracker",
                job.spec().name + ": FAILED (" + reason + ")");
  if (tel_ != nullptr) {
    tel_jobs_failed_->add();
    tel_->trace.instant(sim_.now(), telemetry::EventKind::kJobFailed,
                        job.spec().name + "-j" + std::to_string(job.id()),
                        kJobTrack, {{"reason", reason}});
  }
  audit_verify_job(job);
  if (job.on_complete) job.on_complete(job);
  dispatch();
}

bool MapReduceEngine::mark_tracker_lost(cluster::ExecutionSite& site) {
  TaskTracker* tr = tracker_on(site);
  if (tr == nullptr || tr->blacklisted_) return false;
  // Blacklist first so the requeues below cannot redispatch onto the dead
  // tracker mid-teardown (the offer-set drop makes indexed dispatch skip it
  // even while its slots free up).
  tr->blacklisted_ = true;
  update_offer(*tr);
  sim::log_info(sim_.now(), "jobtracker", "tracker lost: " + site.name());
  if (tel_ != nullptr) {
    tel_->trace.instant(sim_.now(), telemetry::EventKind::kTrackerLost,
                        site.name(), site.name());
  }
  // Running attempts die with the heartbeat, and reducers elsewhere that
  // were fetching (or queued to fetch) map output from this site must
  // restart. Both are KILLED, not FAILED: lost-tracker attempts do not
  // count against max_attempts, as in Hadoop.
  requeue_attempts_depending_on(site);
  // Completed map outputs stored here are gone; Hadoop 1 re-executes them.
  reexecute_lost_map_outputs(site);
#if defined(HYBRIDMR_AUDIT_ENABLED)
  // Crash teardown must leave no slot leaked on the dead tracker.
  HYBRIDMR_AUDIT_CHECK(
      tr->running().empty() &&
          tr->free_slots(TaskType::kMap) == tr->map_slots() &&
          tr->free_slots(TaskType::kReduce) == tr->reduce_slots(),
      "mapred.engine", "no_slot_leak_on_tracker_loss", sim_.now(),
      {{"site", site.name()},
       {"running", audit::num(static_cast<double>(tr->running().size()))},
       {"free_map_slots", audit::num(tr->free_slots(TaskType::kMap))},
       {"free_reduce_slots", audit::num(tr->free_slots(TaskType::kReduce))}});
#endif
  dispatch();
  return true;
}

bool MapReduceEngine::restore_tracker(cluster::ExecutionSite& site) {
  TaskTracker* tr = tracker_on(site);
  if (tr == nullptr || !tr->blacklisted_) return false;
  tr->blacklisted_ = false;
  update_offer(*tr);
  sim::log_info(sim_.now(), "jobtracker", "tracker restored: " + site.name());
  if (tel_ != nullptr) {
    tel_->trace.instant(sim_.now(), telemetry::EventKind::kTrackerRestored,
                        site.name(), site.name());
  }
  dispatch();
  return true;
}

int MapReduceEngine::requeue_attempts_depending_on(
    const cluster::ExecutionSite& site) {
  int n = 0;
  // Snapshot: requeue() mutates the trackers' running lists.
  for (TaskAttempt* a : running_attempts()) {
    if (!a->running()) continue;  // killed earlier in this sweep
    if (!a->depends_on(site)) continue;
    requeue(*a, false);
    ++n;
  }
  return n;
}

int MapReduceEngine::reexecute_lost_map_outputs(
    const cluster::ExecutionSite& site) {
  int total = 0;
  for (const auto& job : jobs_) {
    if (job->finished()) continue;
    int lost = 0;
    for (const auto& t : job->maps_) {
      if (!t->completed() || t->output_site_ != &site) continue;
      // Revert to pending: the next dispatch launches a fresh attempt.
      t->completed_ = false;
      t->duration_ = sim::Duration{-1};
      t->output_site_ = nullptr;
      t->speculative_launched = false;
      t->sync_pending();
      --job->maps_done_;
      ++lost;
    }
    if (lost == 0) continue;
    total += lost;
    maps_reexecuted_ += lost;
    if (job->state_ == JobState::kReducing) {
      // Back to the map phase until the lost outputs are regenerated;
      // already-running reducers that do not touch the dead site keep
      // going, requeued ones wait for the phase to come back.
      job->state_ = JobState::kMapping;
      job->map_phase_end_ = -1;
    }
    sim::log_info(sim_.now(), "jobtracker",
                  job->spec().name + ": " + std::to_string(lost) +
                      " map output(s) lost on " + site.name() +
                      ", re-executing");
    if (tel_ != nullptr) {
      tel_maps_reexecuted_->add(lost);
      tel_->trace.instant(
          sim_.now(), telemetry::EventKind::kMapOutputLost,
          job->spec().name + "-j" + std::to_string(job->id()), kJobTrack,
          {{"site", site.name()}, {"maps", telemetry::json_num(lost)}});
    }
    audit_verify_job(*job);
  }
  return total;
}

void MapReduceEngine::attempt_finished(TaskAttempt& attempt) {
  Task& task = attempt.task();
  if (task.job().finished()) return;  // terminal jobs take no completions
  if (task.completed_) return;  // a sibling already won (defensive)
  task.completed_ = true;
  task.sync_pending();
  task.duration_ = sim::Duration{attempt.elapsed()};
  task.output_site_ = &attempt.site();
  for (const auto& other : task.attempts_) {
    if (other.get() != &attempt && other->running()) other->kill();
  }

  if (tel_ != nullptr) {
    tel_tasks_finished_->add();
    (task.type() == TaskType::kMap ? tel_map_task_s_ : tel_reduce_task_s_)
        ->record(attempt.elapsed());
    tel_->trace.complete(attempt.started_at(), attempt.elapsed(),
                         telemetry::EventKind::kTaskFinish, attempt.label(),
                         attempt.site().name());
  }

  Job& job = task.job();
  if (task.type() == TaskType::kMap) {
    ++job.maps_done_;
    if (job.state_ == JobState::kMapping &&
        job.maps_done_ == static_cast<int>(job.maps_.size())) {
      job.map_phase_end_ = sim_.now();
      job.state_ = JobState::kReducing;
      sim::log_debug(sim_.now(), "jobtracker",
                     job.spec().name + ": map phase done");
    }
  } else {
    ++job.reduces_done_;
    if (job.reduces_done_ == static_cast<int>(job.reduces_.size())) {
      // Every reducer has its data, so the job is done even if a lost map
      // output was mid-re-execution (state downgraded to kMapping); any
      // re-executed map still running is moot — kill it.
      for (auto& t : job.maps_) {
        for (auto& a : t->attempts_) {
          if (a->running()) a->kill();
        }
      }
      job.finish_time_ = sim_.now();
      job.state_ = JobState::kDone;
      --active_jobs_;
      sim::log_info(
          sim_.now(), "jobtracker",
          job.spec().name + ": finished, jct=" + std::to_string(job.jct()));
      if (tel_ != nullptr) {
        tel_jobs_finished_->add();
        tel_->trace.complete(
            job.submit_time(), job.jct(), telemetry::EventKind::kJobFinish,
            job.spec().name + "-j" + std::to_string(job.id()), kJobTrack,
            {{"jct_s", telemetry::json_num(job.jct())},
             {"map_phase_s", telemetry::json_num(job.map_phase_seconds())},
             {"reduce_phase_s",
              telemetry::json_num(job.reduce_phase_seconds())}});
      }
      if (job.on_complete) job.on_complete(job);
    }
  }
  audit_verify_job(job);
  dispatch();
}

void MapReduceEngine::audit_verify_job(const Job& job) const {
#if defined(HYBRIDMR_AUDIT_ENABLED)
  const double now = sim_.now();
  int maps_completed = 0;
  int reduces_completed = 0;
  int running_scan = 0;
  int pending_scan[2] = {0, 0};
  for (TaskType type : {TaskType::kMap, TaskType::kReduce}) {
    const auto& tasks = type == TaskType::kMap ? job.maps() : job.reduces();
    for (const auto& t : tasks) {
      running_scan += t->running_count();
      const bool pending_actual = !t->completed() && t->running_count() == 0;
      if (pending_actual) ++pending_scan[type == TaskType::kMap ? 0 : 1];
      // The cached pending flag (what dispatch and the schedulable-count
      // fast path consult) must agree with the defining predicate.
      HYBRIDMR_AUDIT_CHECK(
          t->pending() == pending_actual, "mapred.engine",
          "pending_flag_conserved", now,
          {{"job", job.spec().name},
           {"task_type", type == TaskType::kMap ? "map" : "reduce"},
           {"task", audit::num(t->index())},
           {"cached", t->pending() ? "true" : "false"},
           {"actual", pending_actual ? "true" : "false"}});
      const auto details = [&]() {
        return std::vector<audit::Detail>{
            {"job", job.spec().name},
            {"task_type", type == TaskType::kMap ? "map" : "reduce"},
            {"task", audit::num(t->index())},
            {"completed", t->completed() ? "true" : "false"},
            {"running_attempts", audit::num(t->running_count())}};
      };
      // Exactly one state: pending, running or completed. A completed task
      // must have no live attempts (the winner kills its siblings), and a
      // live task has at most the original plus one speculative copy.
      HYBRIDMR_AUDIT_CHECK(!t->completed() || t->running_count() == 0,
                           "mapred.engine", "task_state_exclusive", now,
                           details());
      HYBRIDMR_AUDIT_CHECK(t->running_count() <= 2, "mapred.engine",
                           "task_state_exclusive", now, details());
      if (t->completed()) {
        (type == TaskType::kMap ? maps_completed : reduces_completed)++;
      }
    }
  }
  // The O(1) running-attempts counter (what the FairScheduler sorts by)
  // must agree with a full scan of the attempt lists.
  HYBRIDMR_AUDIT_CHECK(running_scan == job.running_tasks(), "mapred.engine",
                       "running_counter_conserved", now,
                       {{"job", job.spec().name},
                        {"counter", audit::num(job.running_tasks())},
                        {"scan", audit::num(running_scan)}});
  // Likewise the per-job pending counters the dispatch fast path sums.
  HYBRIDMR_AUDIT_CHECK(pending_scan[0] == job.pending_maps() &&
                           pending_scan[1] == job.pending_reduces(),
                       "mapred.engine", "pending_counter_conserved", now,
                       {{"job", job.spec().name},
                        {"maps_counter", audit::num(job.pending_maps())},
                        {"maps_scan", audit::num(pending_scan[0])},
                        {"reduces_counter", audit::num(job.pending_reduces())},
                        {"reduces_scan", audit::num(pending_scan[1])}});
  // Conservation: the phase counters match the per-task completion flags,
  // so no completion is double-counted or lost through the shuffle.
  HYBRIDMR_AUDIT_CHECK(
      maps_completed == job.maps_done() &&
          reduces_completed == job.reduces_done(),
      "mapred.engine", "completion_counts_conserved", now,
      {{"job", job.spec().name},
       {"maps_done", audit::num(job.maps_done())},
       {"maps_completed", audit::num(maps_completed)},
       {"reduces_done", audit::num(job.reduces_done())},
       {"reduces_completed", audit::num(reduces_completed)}});
  HYBRIDMR_AUDIT_CHECK(
      job.state() != JobState::kReducing ||
          job.maps_done() == static_cast<int>(job.maps().size()),
      "mapred.engine", "completion_counts_conserved", now,
      {{"job", job.spec().name},
       {"state", to_string(job.state())},
       {"maps_done", audit::num(job.maps_done())},
       {"maps", audit::num(static_cast<double>(job.maps().size()))}});
  HYBRIDMR_AUDIT_CHECK(
      (job.state() == JobState::kDone) ==
          (job.reduces_done() == static_cast<int>(job.reduces().size())),
      "mapred.engine", "completion_counts_conserved", now,
      {{"job", job.spec().name},
       {"state", to_string(job.state())},
       {"reduces_done", audit::num(job.reduces_done())},
       {"reduces", audit::num(static_cast<double>(job.reduces().size()))}});
#else
  (void)job;
#endif
}

TaskTracker* MapReduceEngine::tracker_with_free_slot(
    TaskType type, const TaskTracker* exclude, const Task& task) const {
  // Prefer the tracker on the least-loaded physical host: a speculative
  // copy is pointless on a machine as contended as the straggler's.
  TaskTracker* best = nullptr;
  double best_load = 1e300;
  for (const auto& tr : trackers_) {
    if (tr.get() == exclude) continue;
    if (tr->blacklisted_) continue;
    if (task.banned_trackers.contains(tr.get())) continue;
    if (!task.job().pool_allows(tr->site().is_virtual())) continue;
    if (tr->free_slots(type) <= 0) continue;
    const cluster::Machine* host = tr->site().host_machine();
    double load = static_cast<double>(tr->running().size());
    if (host != nullptr) {
      load += 4.0 * host->utilization(cluster::ResourceKind::kCpu) +
              2.0 * host->utilization(cluster::ResourceKind::kDisk);
    }
    if (load < best_load) {
      best_load = load;
      best = tr.get();
    }
  }
  return best;
}

void MapReduceEngine::maybe_start_speculation_monitor() {
  if (!options_.speculative_execution || speculation_monitor_running_) return;
  speculation_monitor_running_ = true;
  // The ticker holds itself only weakly; the pending event owns the strong
  // reference, so the monitor is destroyed when it stops rescheduling (or
  // when the queue is torn down) instead of leaking in a self-cycle.
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_tick = tick;
  *tick = [this, weak_tick]() {
    if (active_jobs_ == 0) {
      speculation_monitor_running_ = false;
      return;
    }
    speculation_scan();
    if (auto self = weak_tick.lock()) {
      sim_.after(options_.speculation_interval_s, [self]() { (*self)(); });
    }
  };
  // Deliberate: this one strong capture is what the weak self-reference
  // above balances against.
  // sim-lint: allow(capture-lifetime)
  sim_.after(options_.speculation_interval_s, [tick]() { (*tick)(); });
}

void MapReduceEngine::speculation_scan() {
  telemetry::Scope prof_scope(prof_, prof_speculation_scope_);
  if (prof_ != nullptr) {
    prof_->add(telemetry::WorkCounter::kSpeculationScans);
  }
  for (const auto& job : jobs_) {
    if (job->state() != JobState::kMapping &&
        job->state() != JobState::kReducing) {
      continue;
    }
    for (TaskType type : {TaskType::kMap, TaskType::kReduce}) {
      const auto& tasks =
          type == TaskType::kMap ? job->maps() : job->reduces();
      // Mean progress rate over mature running attempts plus completed
      // tasks (whose rate is 1/duration) of this (job, type).
      double sum_rate = 0;
      int n = 0;
      for (const auto& t : tasks) {
        if (t->completed() && t->duration() > sim::Duration{0}) {
          sum_rate += 1.0 / t->duration().value();
          ++n;
          continue;
        }
        TaskAttempt* a = t->running_attempt();
        if (a == nullptr ||
            sim::Duration{a->elapsed()} < options_.speculation_min_elapsed_s) {
          continue;
        }
        sum_rate += a->progress_rate();
        ++n;
      }
      if (n < 2) continue;
      const double mean_rate = sum_rate / n;
      // Hadoop's speculative cap: at most ~10% of a job's tasks may have
      // live speculative copies at once.
      int live_copies = 0;
      for (const auto& t : tasks) {
        if (!t->completed() && t->running_count() > 1) ++live_copies;
      }
      const int copy_budget =
          std::max(1, static_cast<int>(tasks.size()) / 10) - live_copies;
      int copies_left = std::max(0, copy_budget);
      for (const auto& t : tasks) {
        if (copies_left <= 0) break;
        if (t->completed() || t->speculative_launched) continue;
        TaskAttempt* a = t->running_attempt();
        if (a == nullptr ||
            sim::Duration{a->elapsed()} < options_.speculation_min_elapsed_s) {
          continue;
        }
        if (a->progress() > 0.9) continue;
        if (a->progress_rate() <
            (1.0 - cal_.speculative_slowdown_threshold) * mean_rate) {
          TaskTracker* target =
              tracker_with_free_slot(type, &a->tracker(), *t);
          if (target == nullptr) continue;
          t->speculative_launched = true;
          ++speculative_count_;
          --copies_left;
          sim::log_debug(sim_.now(), "speculation",
                         "copy of " + job->spec().name + " task " +
                             std::to_string(t->index()));
          if (tel_ != nullptr) {
            tel_speculative_->add();
            tel_->trace.instant(
                sim_.now(), telemetry::EventKind::kSpeculativeLaunch,
                job->spec().name + "-j" + std::to_string(job->id()) +
                    (type == TaskType::kMap ? "-m" : "-r") +
                    std::to_string(t->index()),
                target->site().name(),
                {{"progress", telemetry::json_num(a->progress())},
                 {"mean_rate", telemetry::json_num(mean_rate)}});
          }
          target->launch(*t);
        }
      }
    }
  }
}

void MapReduceEngine::set_telemetry(telemetry::Hub* hub) {
  tel_ = hub;
  if (hub == nullptr) {
    tel_jobs_submitted_ = tel_jobs_finished_ = tel_tasks_finished_ =
        tel_tasks_killed_ = tel_speculative_ = tel_shuffle_mb_ =
            tel_tasks_failed_ = tel_jobs_failed_ = tel_maps_reexecuted_ =
                nullptr;
    tel_running_ = nullptr;
    tel_map_task_s_ = tel_reduce_task_s_ = nullptr;
    prof_ = nullptr;
    return;
  }
  prof_ = hub->profiler.enabled() ? &hub->profiler : nullptr;
  if (prof_ != nullptr) {
    prof_dispatch_scope_ = prof_->intern("mapred.dispatch");
    prof_speculation_scope_ = prof_->intern("mapred.speculation_scan");
  }
  auto& reg = hub->registry;
  tel_jobs_submitted_ = &reg.counter("mapred.jobs_submitted");
  tel_jobs_finished_ = &reg.counter("mapred.jobs_finished");
  tel_tasks_finished_ = &reg.counter("mapred.tasks_finished");
  tel_tasks_killed_ = &reg.counter("mapred.tasks_killed");
  tel_speculative_ = &reg.counter("mapred.speculative_launches");
  tel_shuffle_mb_ = &reg.counter("mapred.shuffle_mb", "MB");
  tel_tasks_failed_ = &reg.counter("mapred.tasks_failed");
  tel_jobs_failed_ = &reg.counter("mapred.jobs_failed");
  tel_maps_reexecuted_ = &reg.counter("mapred.maps_reexecuted");
  tel_running_ = &reg.gauge("mapred.running_attempts", "tasks");
  tel_map_task_s_ = &reg.histogram("mapred.map_task_s", 0.0, 600.0, "s");
  tel_reduce_task_s_ = &reg.histogram("mapred.reduce_task_s", 0.0, 600.0, "s");
}

void MapReduceEngine::note_task_started(const TaskAttempt& attempt) {
  if (tel_ == nullptr) return;
  tel_running_->add(1);
  tel_->trace.instant(sim_.now(), telemetry::EventKind::kTaskStart,
                      attempt.label(), attempt.site().name());
}

std::size_t MapReduceEngine::add_release_observer(
    std::function<void(const TaskAttempt&)> fn) {
  release_observers_.push_back(std::move(fn));
  return release_observers_.size() - 1;
}

void MapReduceEngine::remove_release_observer(std::size_t token) {
  if (token < release_observers_.size()) release_observers_[token] = nullptr;
}

void MapReduceEngine::note_attempt_released(const TaskAttempt& attempt) {
  for (const auto& fn : release_observers_) {
    if (fn) fn(attempt);
  }
  if (tel_ == nullptr) return;
  tel_running_->add(-1);
}

void MapReduceEngine::note_shuffle_started(const TaskAttempt& attempt,
                                           sim::MegaBytes total_mb,
                                           int sources) {
  if (tel_ == nullptr) return;
  tel_shuffle_mb_->add(total_mb.value());
  tel_->trace.instant(sim_.now(), telemetry::EventKind::kShuffleStart,
                      attempt.label(), attempt.site().name(),
                      {{"mb", telemetry::json_num(total_mb.value())},
                       {"sources", telemetry::json_num(sources)}});
}

}  // namespace hybridmr::mapred
