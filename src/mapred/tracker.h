// TaskTracker: per-node slot manager (Hadoop 1.x model).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/machine.h"
#include "mapred/task.h"

namespace hybridmr::mapred {

class TaskTracker {
 public:
  TaskTracker(MapReduceEngine& engine, cluster::ExecutionSite& site,
              int map_slots, int reduce_slots)
      : engine_(&engine),
        site_(&site),
        map_slots_(map_slots),
        reduce_slots_(reduce_slots) {}

  [[nodiscard]] cluster::ExecutionSite& site() const { return *site_; }
  [[nodiscard]] int map_slots() const { return map_slots_; }
  [[nodiscard]] int reduce_slots() const { return reduce_slots_; }

  [[nodiscard]] int free_slots(TaskType type) const {
    return type == TaskType::kMap ? map_slots_ - running_maps_
                                  : reduce_slots_ - running_reduces_;
  }

  [[nodiscard]] const std::vector<TaskAttempt*>& running() const {
    return running_;
  }

  /// Creates, registers and starts a new attempt of `task` here.
  TaskAttempt* launch(Task& task);

  /// The rigid per-slot resource share of stock Hadoop-1 (fixed JVM heap,
  /// partitioned I/O); applied to attempts when static_slot_shares is on.
  [[nodiscard]] cluster::Resources static_slot_share(TaskType type) const;

  /// Bookkeeping when an attempt finishes or is killed.
  void release(TaskAttempt* attempt);

  /// Blacklisted trackers hold their slots but receive no new work
  /// (heartbeat timeout / crashed host). Set by the engine.
  [[nodiscard]] bool blacklisted() const { return blacklisted_; }

  /// Audit checkpoint (no-op unless HYBRIDMR_AUDIT): per-type running
  /// counts stay within [0, slots] and sum to the running list's size.
  void audit_verify_slots() const;

 private:
  friend class MapReduceEngine;  // blacklist + dispatch-index management
  // hmr-state(back-reference: owner=TestBed::mr_; re-point on fork)
  MapReduceEngine* engine_;
  // hmr-state(back-reference: owner=HybridCluster::machines_/vms_)
  cluster::ExecutionSite* site_;
  int map_slots_;
  int reduce_slots_;
  int running_maps_ = 0;
  int running_reduces_ = 0;
  bool blacklisted_ = false;
  // Position in the engine's trackers_ vector; keys the free-slot offer
  // set. Assigned by add_tracker, renumbered on remove_tracker.
  std::uint32_t index_ = 0;
  std::vector<TaskAttempt*> running_;
};

}  // namespace hybridmr::mapred
