// A submitted MapReduce job: task lists, phase timing, completion metrics.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mapred/job_spec.h"
#include "mapred/task.h"
#include "storage/hdfs.h"

namespace hybridmr::mapred {

enum class JobState { kPending, kMapping, kReducing, kDone, kFailed };

/// Where a job's tasks may run — set by HybridMR's Phase I placement.
enum class PlacementPool { kAny, kNativeOnly, kVirtualOnly };

const char* to_string(JobState s);

class Job {
 public:
  Job(int id, JobSpec spec) : id_(id), spec_(std::move(spec)) {}

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] const JobSpec& spec() const { return spec_; }
  [[nodiscard]] JobState state() const { return state_; }
  /// Terminal either way: completed or failed past its retry bound.
  [[nodiscard]] bool finished() const {
    return state_ == JobState::kDone || state_ == JobState::kFailed;
  }
  [[nodiscard]] bool succeeded() const { return state_ == JobState::kDone; }
  [[nodiscard]] bool failed() const { return state_ == JobState::kFailed; }

  [[nodiscard]] const std::vector<std::unique_ptr<Task>>& maps() const {
    return maps_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Task>>& reduces() const {
    return reduces_;
  }
  [[nodiscard]] int maps_done() const { return maps_done_; }
  [[nodiscard]] int reduces_done() const { return reduces_done_; }

  /// Tasks currently pending (not completed, no running attempt), by type.
  /// O(1) counters maintained by Task::sync_pending(); the dispatch fast
  /// path sums these across eligible jobs to skip provably-empty scans.
  /// Audit builds cross-check them against a full task-list scan.
  [[nodiscard]] int pending_maps() const { return pending_maps_; }
  [[nodiscard]] int pending_reduces() const { return pending_reduces_; }

  /// Number of attempts currently running across all tasks. O(1): a
  /// counter maintained by TaskTracker::launch()/release() — the
  /// FairScheduler sorts every eligible job by this on every free slot of
  /// every dispatch wave, so a scan over the task lists here is the
  /// dominant cost of large-cluster sweeps (audit builds cross-check the
  /// counter against the scan).
  [[nodiscard]] int running_tasks() const { return running_attempts_; }

  // --- timing (simulated seconds; -1 until reached) ---
  [[nodiscard]] double submit_time() const { return submit_time_; }
  [[nodiscard]] double map_phase_end() const { return map_phase_end_; }
  [[nodiscard]] double finish_time() const { return finish_time_; }

  /// Job completion time (submission to finish).
  [[nodiscard]] double jct() const {
    return finish_time_ >= 0 ? finish_time_ - submit_time_ : -1;
  }
  [[nodiscard]] double map_phase_seconds() const {
    return map_phase_end_ >= 0 ? map_phase_end_ - submit_time_ : -1;
  }
  [[nodiscard]] double reduce_phase_seconds() const {
    return finish_time_ >= 0 && map_phase_end_ >= 0
               ? finish_time_ - map_phase_end_
               : -1;
  }

  // --- data-flow helpers ---
  [[nodiscard]] sim::MegaBytes total_map_output_mb() const {
    return spec_.input_mb() * spec_.map_selectivity;
  }
  [[nodiscard]] sim::MegaBytes shuffle_mb_per_reducer() const {
    return reduces_.empty()
               ? sim::MegaBytes{0}
               : total_map_output_mb() / static_cast<double>(reduces_.size());
  }

  [[nodiscard]] storage::Hdfs::FileId input_file() const {
    return input_file_;
  }

  /// Fired when the last reduce completes.
  std::function<void(Job&)> on_complete;

  [[nodiscard]] PlacementPool pool() const { return pool_; }
  /// True if this job's tasks may run on a site of the given kind.
  [[nodiscard]] bool pool_allows(bool virtual_site) const {
    switch (pool_) {
      case PlacementPool::kAny:
        return true;
      case PlacementPool::kNativeOnly:
        return !virtual_site;
      case PlacementPool::kVirtualOnly:
        return virtual_site;
    }
    return true;
  }

 private:
  friend class MapReduceEngine;
  friend class TaskTracker;
  friend class Task;  // sync_pending() maintains the pending counters
  int id_;
  JobSpec spec_;
  JobState state_ = JobState::kPending;
  storage::Hdfs::FileId input_file_ = 0;
  std::vector<std::unique_ptr<Task>> maps_;
  std::vector<std::unique_ptr<Task>> reduces_;
  int maps_done_ = 0;
  int reduces_done_ = 0;
  int pending_maps_ = 0;
  int pending_reduces_ = 0;
  int running_attempts_ = 0;
  double submit_time_ = -1;
  double map_phase_end_ = -1;
  double finish_time_ = -1;
  PlacementPool pool_ = PlacementPool::kAny;
};

inline const char* to_string(JobState s) {
  switch (s) {
    case JobState::kPending:
      return "pending";
    case JobState::kMapping:
      return "mapping";
    case JobState::kReducing:
      return "reducing";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
  }
  return "?";
}

}  // namespace hybridmr::mapred
