// Pluggable task schedulers (the JobTracker's scheduling policy).
//
// FIFO is Hadoop's default; FairScheduler matches the paper's testbed
// configuration (§IV). Both prefer data-local map tasks, mirroring the
// delay-free locality preference of Hadoop 1.x.
#pragma once

#include <memory>
#include <vector>

#include "mapred/job.h"
#include "mapred/tracker.h"
#include "storage/hdfs.h"

namespace hybridmr::mapred {

class TaskScheduler {
 public:
  virtual ~TaskScheduler() = default;

  /// Chooses the next task to run on a free slot of `type` at `tracker`,
  /// or nullptr when nothing is eligible. With `locality_only`, map slots
  /// only accept node/host-local tasks (delay-scheduling pass); the
  /// dispatcher relaxes the constraint in a second round.
  virtual Task* pick(TaskTracker& tracker, TaskType type,
                     const std::vector<Job*>& jobs, const storage::Hdfs& hdfs,
                     bool locality_only) = 0;

  [[nodiscard]] virtual const char* name() const = 0;

  /// True if `job` has work of `type` ready to schedule. Public so the
  /// dispatcher's schedulable-pending fast path applies the exact same
  /// eligibility rule as pick().
  static bool eligible(const Job& job, TaskType type);

 protected:
  /// Picks a pending task of `type` from `job`, preferring map tasks whose
  /// input block has a replica on (or host-local to) the tracker's site.
  /// With `locality_only`, non-local map tasks are not offered at all.
  static Task* pick_from_job(Job& job, TaskType type, TaskTracker& tracker,
                             const storage::Hdfs& hdfs, bool locality_only);
};

/// Jobs served strictly in submission order.
class FifoScheduler : public TaskScheduler {
 public:
  Task* pick(TaskTracker& tracker, TaskType type,
             const std::vector<Job*>& jobs, const storage::Hdfs& hdfs,
             bool locality_only) override;
  [[nodiscard]] const char* name() const override { return "fifo"; }
};

/// Hadoop FairScheduler: the eligible job with the fewest running tasks
/// gets the slot (equal-share, single pool, no preemption).
class FairScheduler : public TaskScheduler {
 public:
  Task* pick(TaskTracker& tracker, TaskType type,
             const std::vector<Job*>& jobs, const storage::Hdfs& hdfs,
             bool locality_only) override;
  [[nodiscard]] const char* name() const override { return "fair"; }

 private:
  // (running attempts, job) sort scratch, reused across picks.
  std::vector<std::pair<int, Job*>> by_starvation_;
};

std::unique_ptr<TaskScheduler> make_scheduler(const std::string& name);

}  // namespace hybridmr::mapred
