// Clang thread-safety capability macros for the (future) parallel sim core.
//
// The simulator is single-threaded today, but the ROADMAP's parallel-core
// item needs the shared-state surface mapped and enforced *before* threads
// arrive. These macros wrap clang's -Wthread-safety attributes so the
// annotations compile to nothing under gcc (the default toolchain) and turn
// into blocking diagnostics under the clang CI stage (scripts/ci.sh,
// thread-safety stage).
//
// Conventions (see docs/CONCURRENCY.md for the full census):
//   - A class whose state must only be touched from the simulation thread
//     owns a SimThreadGate member and marks that state HMR_GUARDED_BY(gate_).
//   - Public entry points call gate_.assert_held() — a zero-cost inline
//     no-op that tells the analysis "the caller is on the sim thread" —
//     so annotating a class never cascades REQUIRES onto its callers.
//   - Private helpers are annotated HMR_REQUIRES(gate_) instead: they are
//     only reachable through an asserting entry point, and the analysis
//     verifies that.
// When the parallel core lands, SimThreadGate grows a real shard lock and
// assert_held() becomes a debug assertion; the annotation graph is already
// in place to check the locking discipline.
#pragma once

#if defined(__clang__)
#define HMR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HMR_THREAD_ANNOTATION(x)  // compiles out under gcc/msvc
#endif

#define HMR_CAPABILITY(x) HMR_THREAD_ANNOTATION(capability(x))
#define HMR_GUARDED_BY(x) HMR_THREAD_ANNOTATION(guarded_by(x))
#define HMR_PT_GUARDED_BY(x) HMR_THREAD_ANNOTATION(pt_guarded_by(x))
#define HMR_REQUIRES(...) HMR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define HMR_ACQUIRE(...) HMR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define HMR_RELEASE(...) HMR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define HMR_ASSERT_CAPABILITY(x) HMR_THREAD_ANNOTATION(assert_capability(x))
#define HMR_EXCLUDES(...) HMR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define HMR_RETURN_CAPABILITY(x) HMR_THREAD_ANNOTATION(lock_returned(x))
#define HMR_NO_THREAD_SAFETY_ANALYSIS \
  HMR_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace hybridmr::sim {

/// Capability token standing in for "the simulation thread".
///
/// Today there is exactly one such thread, so assert_held() is an empty
/// inline function — the token only exists so HMR_GUARDED_BY annotations
/// have a capability to name and clang's analysis has a graph to check.
/// The one sanctioned concurrent access pattern that bypasses the gate is
/// the quiesced read barrier: once the run loop has exited and every
/// flush hook has drained, const accessors (Machine::ensure_clean() and
/// the reads behind it) are safe from any thread because nothing mutates
/// (tests/concurrency_test.cc exercises exactly this under TSan).
class HMR_CAPABILITY("sim-thread") SimThreadGate {
 public:
  /// Declares to the thread-safety analysis that the calling context is
  /// on the simulation thread. Zero-cost: compiles to nothing.
  void assert_held() const HMR_ASSERT_CAPABILITY(this) {}
};

}  // namespace hybridmr::sim
