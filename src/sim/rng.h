// Deterministic random number generation for simulations.
//
// Every stochastic component draws from a Rng owned by the Simulation, so a
// fixed seed reproduces an entire run bit-for-bit.
#pragma once

#include <cstdint>
#include <random>
#include <span>

namespace hybridmr::sim {

/// Convenience wrapper over std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return uniform_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi) {
    std::uniform_int_distribution<int> d(lo, hi);
    return d(engine_);
  }

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Normal truncated to [lo, hi] by clamping.
  double normal_clamped(double mean, double stddev, double lo, double hi) {
    const double v = normal(mean, stddev);
    return v < lo ? lo : (v > hi ? hi : v);
  }

  /// Exponential with the given rate (mean = 1/rate).
  double exponential(double rate) {
    std::exponential_distribution<double> d(rate);
    return d(engine_);
  }

  /// Lognormal with log-space mean/stddev.
  double lognormal(double log_mean, double log_stddev) {
    std::lognormal_distribution<double> d(log_mean, log_stddev);
    return d(engine_);
  }

  /// Bernoulli trial.
  bool bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Uniformly selected index into a container of size n (n > 0).
  std::size_t index(std::size_t n) {
    std::uniform_int_distribution<std::size_t> d(0, n - 1);
    return d(engine_);
  }

  /// Fisher-Yates shuffle of a span in place.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  // hmr-state(owned-value: the engine is a plain value object; copying the
  // Rng IS the snapshot of the stream position)
  std::mt19937_64 engine_;
  // hmr-state(owned-value: distributions carry call-to-call carry state —
  // copy them with the engine, never reconstruct)
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

}  // namespace hybridmr::sim
