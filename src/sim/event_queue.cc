#include "sim/event_queue.h"

#include <utility>

#include "audit/invariants.h"

namespace hybridmr::sim {

EventQueue::Slot* EventQueue::live_slot(std::uint64_t id) {
  if (id == 0) return nullptr;
  const std::uint32_t index = slot_index(id);
  if (index >= slots_.size()) return nullptr;
  Slot& slot = slots_[index];
  if (!slot.live || slot.gen != generation(id)) return nullptr;
  return &slot;
}

void EventQueue::release(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn = nullptr;  // destroy the handler (and its captures) immediately
  slot.live = false;
  ++slot.gen;  // invalidate every outstanding id for this slot
  free_slots_.push_back(index);
  --live_;
}

EventId EventQueue::push(SimTime time, std::function<void()> fn) {
  gate_.assert_held();
  std::uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.time = time;
  slot.seq = next_seq_++;
  slot.live = true;
  const std::uint64_t id = make_id(index, slot.gen);
  heap_.push(HeapItem{time, slot.seq, id});
  ++live_;
  ++total_pushed_;
  if (live_ > max_size_) max_size_ = live_;
  return EventId{id};
}

bool EventQueue::cancel(EventId id) {
  gate_.assert_held();
  Slot* slot = live_slot(id.value);
  if (slot == nullptr) return false;
  release(slot_index(id.value));
  ++total_cancelled_;
  return true;
}

bool EventQueue::defer(EventId id, SimTime time) {
  gate_.assert_held();
  Slot* slot = live_slot(id.value);
  if (slot == nullptr) return false;
  const bool advanced = time < slot->time;
  // The slot keeps its ORIGINAL push seq: rescheduling never consumes a
  // tie-break number, so same-time FIFO order is anchored to creation
  // order and is invariant under how many times — or in which coalescing
  // regime — an event was rescheduled on the way there. (Consuming a
  // fresh seq here would make tie order depend on the realloc drain
  // policy; see the realloc determinism tests.)
  slot->time = time;
  if (advanced) {
    // Moving earlier: the existing heap item would surface too late, so a
    // fresh item carries the new seat and the old one skims away as a
    // stale duplicate when it reaches the head.
    heap_.push(HeapItem{time, slot->seq, id.value});
  }
  // Postponing (or re-seating at the same time) needs no heap work at all:
  // the stale item surfaces at its old position and skim() re-seats it.
  ++total_deferred_;
  return true;
}

EventId EventQueue::repush(EventId id, SimTime time) {
  gate_.assert_held();
  Slot* slot = live_slot(id.value);
  if (slot == nullptr) return {};
  const std::uint64_t seq = slot->seq;
  std::function<void()> fn = std::move(slot->fn);
  release(slot_index(id.value));
  ++total_cancelled_;
  // Fresh slot (usually the one just released, at a bumped generation),
  // inherited seq: cancel + re-push mechanics, creation-order tie-break.
  std::uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& fresh = slots_[index];
  fresh.fn = std::move(fn);
  fresh.time = time;
  fresh.seq = seq;
  fresh.live = true;
  const std::uint64_t new_id = make_id(index, fresh.gen);
  heap_.push(HeapItem{time, seq, new_id});
  ++live_;
  ++total_pushed_;
  if (live_ > max_size_) max_size_ = live_;
  return EventId{new_id};
}

void EventQueue::skim() {
  while (!heap_.empty()) {
    const HeapItem top = heap_.top();
    const Slot* slot = live_slot(top.id);
    if (slot == nullptr) {
      heap_.pop();  // cancelled, fired, or a defer()-superseded duplicate
      continue;
    }
    if (slot->time > top.time) {
      // Stale seat (the slot was postponed since this item was inserted):
      // re-insert at the authoritative time, carrying the slot's original
      // seq. Conservation counters are untouched — same event, new seat.
      // A duplicate of an already present authoritative item is benign:
      // the first to surface fires and releases the slot, the second
      // skims away dead. (slot->time < top.time cannot happen for a live
      // slot: every live slot always has at least one heap item at or
      // before its authoritative time, which would sit above this one.)
      heap_.pop();
      heap_.push(HeapItem{slot->time, slot->seq, top.id});
      continue;
    }
    break;
  }
}

void EventQueue::audit_no_orphans() const {
  // The heap always holds a superset of the live handlers (cancellation
  // releases the slot and leaves the heap item to be skimmed). After a
  // skim, an empty heap with live handlers remaining means those handlers
  // can never fire — their captures would be leaked silently.
  HYBRIDMR_AUDIT_CHECK(
      !heap_.empty() || live_ == 0, "sim.event_queue", "no_orphaned_handlers",
      -1, {{"live_handlers", audit::num(static_cast<double>(live_))}});
}

std::optional<SimTime> EventQueue::next_time() {
  gate_.assert_held();
  skim();
  audit_no_orphans();
  if (heap_.empty()) return std::nullopt;
  return heap_.top().time;
}

std::optional<EventQueue::Entry> EventQueue::pop() {
  gate_.assert_held();
  skim();
  audit_no_orphans();
  if (heap_.empty()) return std::nullopt;
  const HeapItem item = heap_.top();
  heap_.pop();
  const std::uint32_t index = slot_index(item.id);
  Entry entry{item.time, EventId{item.id}, std::move(slots_[index].fn)};
  release(index);
  return entry;
}

EventQueue::Snapshot EventQueue::snapshot() const {
  gate_.assert_held();
  // A verbatim copy, stale heap items and all: restore() must reproduce
  // the exact lazy-deletion state, or the first skim() after a restore
  // would diverge from the original run's pop order.
  return Snapshot{heap_,          slots_,          free_slots_,
                  live_,          next_seq_,       total_pushed_,
                  total_cancelled_, total_deferred_, max_size_};
}

void EventQueue::restore(const Snapshot& snap) {
  gate_.assert_held();
  heap_ = snap.heap;
  slots_ = snap.slots;
  free_slots_ = snap.free_slots;
  live_ = snap.live;
  next_seq_ = snap.next_seq;
  total_pushed_ = snap.total_pushed;
  total_cancelled_ = snap.total_cancelled;
  total_deferred_ = snap.total_deferred;
  max_size_ = snap.max_size;
}

std::size_t EventQueue::clear() {
  gate_.assert_held();
  const std::size_t dropped = live_;
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    // Releasing (rather than dropping) every slot keeps generations
    // monotonic, so ids issued before clear() can never alias events
    // pushed afterwards — the queue stays usable.
    if (slots_[i].live) release(i);
  }
  while (!heap_.empty()) heap_.pop();
  total_cancelled_ += dropped;
  return dropped;
}

}  // namespace hybridmr::sim
