#include "sim/event_queue.h"

#include <utility>

namespace hybridmr::sim {

EventId EventQueue::push(SimTime time, std::function<void()> fn) {
  const std::uint64_t id = next_id_++;
  heap_.push(HeapItem{time, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return EventId{id};
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  return handlers_.erase(id.value) > 0;
}

void EventQueue::skim() {
  while (!heap_.empty() && !handlers_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

std::optional<SimTime> EventQueue::next_time() {
  skim();
  if (heap_.empty()) return std::nullopt;
  return heap_.top().time;
}

std::optional<EventQueue::Entry> EventQueue::pop() {
  skim();
  if (heap_.empty()) return std::nullopt;
  const HeapItem item = heap_.top();
  heap_.pop();
  auto it = handlers_.find(item.id);
  Entry entry{item.time, EventId{item.id}, std::move(it->second)};
  handlers_.erase(it);
  return entry;
}

}  // namespace hybridmr::sim
