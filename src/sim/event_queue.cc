#include "sim/event_queue.h"

#include <utility>

#include "audit/invariants.h"

namespace hybridmr::sim {

EventId EventQueue::push(SimTime time, std::function<void()> fn) {
  const std::uint64_t id = next_id_++;
  heap_.push(HeapItem{time, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return EventId{id};
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  return handlers_.erase(id.value) > 0;
}

void EventQueue::skim() {
  while (!heap_.empty() && !handlers_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

void EventQueue::audit_no_orphans() const {
  // The heap always holds a superset of the live handlers (cancellation
  // erases the handler and leaves the heap item to be skimmed). After a
  // skim, an empty heap with handlers remaining means those handlers can
  // never fire — their captures would be leaked silently.
  HYBRIDMR_AUDIT_CHECK(
      !heap_.empty() || handlers_.empty(), "sim.event_queue",
      "no_orphaned_handlers", -1,
      {{"live_handlers", audit::num(static_cast<double>(handlers_.size()))}});
}

std::optional<SimTime> EventQueue::next_time() {
  skim();
  audit_no_orphans();
  if (heap_.empty()) return std::nullopt;
  return heap_.top().time;
}

std::optional<EventQueue::Entry> EventQueue::pop() {
  skim();
  audit_no_orphans();
  if (heap_.empty()) return std::nullopt;
  const HeapItem item = heap_.top();
  heap_.pop();
  auto it = handlers_.find(item.id);
  Entry entry{item.time, EventId{item.id}, std::move(it->second)};
  handlers_.erase(it);
  return entry;
}

std::size_t EventQueue::clear() {
  const std::size_t dropped = handlers_.size();
  handlers_.clear();
  while (!heap_.empty()) heap_.pop();
  return dropped;
}

}  // namespace hybridmr::sim
