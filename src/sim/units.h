// Strong dimensional types for simulator quantities.
//
// Every quantity the simulator trades in — simulated seconds, megabytes,
// MB/s, watts, joules, core shares, dimensionless fractions — used to be a
// bare double, so a rate could silently be added to a size and a sim-time
// could be multiplied by a power draw. These wrappers make only the
// dimensionally valid combinations compile:
//
//   MBps * Duration   -> MegaBytes        Watts * Duration -> Joules
//   MegaBytes / MBps  -> Duration         Joules / Duration -> Watts
//   MegaBytes / Duration -> MBps          Joules / Watts    -> Duration
//
// plus same-dimension addition/subtraction, scalar scaling, Fraction
// scaling, ordered comparisons and the dimensionless ratio Q / Q -> double.
// Anything else (Watts * MegaBytes, MBps + Seconds, ...) is a compile
// error, enforced by tests/units_negative and requires-expression
// static_asserts in tests/units_test.cc.
//
// The wrappers are zero-overhead: a Quantity is a single double, every
// operation is constexpr and inline, and no virtual/allocation machinery is
// involved. BENCH_scale.json is gated in CI to keep that true.
//
// Absolute simulated time stays `SimTime` (event_queue.h): a timestamp is a
// point, not a span, and the event queue orders raw doubles. `Duration`
// (alias `Seconds`) is the span type; `SimTime + Duration::value()` or the
// Simulation::after/every overloads bridge the two.
#pragma once

#include <concepts>

#include "sim/event_queue.h"

namespace hybridmr::sim {

namespace unit_detail {
struct seconds_tag;
struct megabytes_tag;
struct mbps_tag;
struct secs_per_mb_tag;
struct watts_tag;
struct joules_tag;
struct cores_tag;
struct fraction_tag;
struct per_second_tag;
}  // namespace unit_detail

/// One double, tagged with its dimension. Explicit construction only:
/// `Watts{180}` compiles, `Watts w = 180` and `Watts{some_mbps}` do not.
template <class Tag>
struct Quantity {
  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : v_(value) {}

  /// The raw magnitude, in this dimension's canonical unit.
  [[nodiscard]] constexpr double value() const { return v_; }

  // --- same-dimension arithmetic ---
  constexpr Quantity& operator+=(Quantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v_ -= o.v_;
    return *this;
  }
  constexpr Quantity& operator*=(double k) {
    v_ *= k;
    return *this;
  }
  constexpr Quantity& operator/=(double k) {
    v_ /= k;
    return *this;
  }
  [[nodiscard]] constexpr Quantity operator-() const { return Quantity{-v_}; }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.v_ + b.v_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.v_ - b.v_};
  }

  // --- scalar scaling ---
  friend constexpr Quantity operator*(Quantity a, double k) {
    return Quantity{a.v_ * k};
  }
  friend constexpr Quantity operator*(double k, Quantity a) {
    return Quantity{k * a.v_};
  }
  friend constexpr Quantity operator/(Quantity a, double k) {
    return Quantity{a.v_ / k};
  }

  /// Dimensionless ratio of two same-dimension quantities.
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.v_ / b.v_;
  }

  // Ordered comparisons are always safe; exact equality on derived values
  // shares SimTime's rounding caveat — prefer ordered forms or
  // sim::same_amount() where intent matters.
  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

 private:
  double v_ = 0;
};

/// A span of simulated time, in seconds. (Absolute timestamps are SimTime.)
using Seconds = Quantity<unit_detail::seconds_tag>;
using Duration = Seconds;
/// A data size.
using MegaBytes = Quantity<unit_detail::megabytes_tag>;
/// A data rate.
using MBps = Quantity<unit_detail::mbps_tag>;
/// Compute cost density: cpu-seconds per MB processed (job profiles).
using SecondsPerMB = Quantity<unit_detail::secs_per_mb_tag>;
/// Instantaneous power.
using Watts = Quantity<unit_detail::watts_tag>;
/// Energy.
using Joules = Quantity<unit_detail::joules_tag>;
/// CPU capacity or occupancy in cores (fractional shares allowed).
using CoreShare = Quantity<unit_detail::cores_tag>;
/// A dimensionless fraction (utilization, progress, tax).
using Fraction = Quantity<unit_detail::fraction_tag>;
/// An inverse-time density (1/s): rate produced per unit of stock, e.g. how
/// many MB/s of page dirtying each MB of hot guest memory generates during
/// Xen pre-copy (Calibration::dirty_rate_per_active_mb).
using PerSecond = Quantity<unit_detail::per_second_tag>;

// --- dimensional cross products ------------------------------------------

constexpr MegaBytes operator*(MBps rate, Duration t) {
  return MegaBytes{rate.value() * t.value()};
}
constexpr MegaBytes operator*(Duration t, MBps rate) { return rate * t; }
constexpr Duration operator/(MegaBytes size, MBps rate) {
  return Duration{size.value() / rate.value()};
}
constexpr MBps operator/(MegaBytes size, Duration t) {
  return MBps{size.value() / t.value()};
}

constexpr Duration operator*(SecondsPerMB cost, MegaBytes size) {
  return Duration{cost.value() * size.value()};
}
constexpr Duration operator*(MegaBytes size, SecondsPerMB cost) {
  return cost * size;
}
constexpr SecondsPerMB operator/(Duration t, MegaBytes size) {
  return SecondsPerMB{t.value() / size.value()};
}

constexpr MBps operator*(PerSecond density, MegaBytes stock) {
  return MBps{density.value() * stock.value()};
}
constexpr MBps operator*(MegaBytes stock, PerSecond density) {
  return density * stock;
}
constexpr PerSecond operator/(MBps rate, MegaBytes stock) {
  return PerSecond{rate.value() / stock.value()};
}

constexpr Joules operator*(Watts p, Duration t) {
  return Joules{p.value() * t.value()};
}
constexpr Joules operator*(Duration t, Watts p) { return p * t; }
constexpr Watts operator/(Joules e, Duration t) {
  return Watts{e.value() / t.value()};
}
constexpr Duration operator/(Joules e, Watts p) {
  return Duration{e.value() / p.value()};
}

// Fraction scales any (non-Fraction) quantity without leaving its
// dimension; Fraction * Fraction stays a plain ratio via Quantity's
// same-dimension operator/ and scalar forms.
template <class Tag>
  requires(!std::same_as<Tag, unit_detail::fraction_tag>)
constexpr Quantity<Tag> operator*(Quantity<Tag> q, Fraction f) {
  return Quantity<Tag>{q.value() * f.value()};
}
template <class Tag>
  requires(!std::same_as<Tag, unit_detail::fraction_tag>)
constexpr Quantity<Tag> operator*(Fraction f, Quantity<Tag> q) {
  return q * f;
}

// --- tolerance-style comparisons ------------------------------------------

/// The sanctioned exact comparison for strong quantities, mirroring
/// sim::same_time() for SimTime: use it only when both operands came from
/// the same computation, so the intent is visible.
template <class Tag>
constexpr bool same_amount(Quantity<Tag> a, Quantity<Tag> b) {
  return same_time(a.value(), b.value());
}

/// Durations are the strong-typed view of SimTime spans; comparing them for
/// exact equality inherits the same rules as SimTime (rule simtime-eq).
constexpr bool same_time(Duration a, Duration b) {
  return same_time(a.value(), b.value());
}

// --- literals --------------------------------------------------------------

/// `using namespace hybridmr::sim::unit_literals;` enables `120.0_secs`,
/// `64_mb`, `50_mbps`, `180_watts`, `3600_joules`, `2_cores`.
inline namespace unit_literals {
constexpr Seconds operator""_secs(long double v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_secs(unsigned long long v) {
  return Seconds{static_cast<double>(v)};
}
constexpr MegaBytes operator""_mb(long double v) {
  return MegaBytes{static_cast<double>(v)};
}
constexpr MegaBytes operator""_mb(unsigned long long v) {
  return MegaBytes{static_cast<double>(v)};
}
constexpr MBps operator""_mbps(long double v) {
  return MBps{static_cast<double>(v)};
}
constexpr MBps operator""_mbps(unsigned long long v) {
  return MBps{static_cast<double>(v)};
}
constexpr Watts operator""_watts(long double v) {
  return Watts{static_cast<double>(v)};
}
constexpr Watts operator""_watts(unsigned long long v) {
  return Watts{static_cast<double>(v)};
}
constexpr Joules operator""_joules(long double v) {
  return Joules{static_cast<double>(v)};
}
constexpr Joules operator""_joules(unsigned long long v) {
  return Joules{static_cast<double>(v)};
}
constexpr CoreShare operator""_cores(long double v) {
  return CoreShare{static_cast<double>(v)};
}
constexpr CoreShare operator""_cores(unsigned long long v) {
  return CoreShare{static_cast<double>(v)};
}
}  // namespace unit_literals

}  // namespace hybridmr::sim
