// The simulation kernel: a virtual clock plus an event queue.
//
// All substrate components (machines, tasks, schedulers, monitors) hold a
// reference to one Simulation and express the passage of time exclusively
// through it. Runs are deterministic for a fixed seed.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "audit/invariants.h"
#include "sim/event_queue.h"
#include "sim/log.h"
#include "sim/probe.h"
#include "sim/rng.h"
#include "sim/thread_annotations.h"
#include "sim/units.h"

namespace hybridmr::sim {

/// Handle for a periodic task registered with Simulation::every().
class PeriodicHandle {
 public:
  PeriodicHandle() = default;

  /// Stops future firings. Safe to call repeatedly or on a default handle.
  void cancel() {
    if (alive_) *alive_ = false;
  }

  [[nodiscard]] bool active() const { return alive_ && *alive_; }

 private:
  friend class Simulation;
  explicit PeriodicHandle(std::shared_ptr<bool> alive)
      : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

/// Single-threaded discrete-event simulation.
class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 42) : rng_(seed), seed_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time in seconds.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute simulated time `t` (must be >= now()).
  /// A past `t` is clamped to now(): the event still fires, but the misuse
  /// is counted (clamped_past_events()) and logged so it cannot pass
  /// silently in release builds. Under HYBRIDMR_AUDIT a past `t` is a hard
  /// violation: a component computing target times incorrectly corrupts
  /// event ordering, so the audit build aborts instead of papering over it.
  EventId at(SimTime t, std::function<void()> fn) {
    if (t < now_) {
      HYBRIDMR_AUDIT_CHECK(false, "sim.simulation", "no_past_scheduling",
                           now_, {{"requested_t", audit::num(t)},
                                  {"now", audit::num(now_)}});
      ++clamped_past_events_;
      log_warn(now_, "sim",
               "at(" + std::to_string(t) +
                   ") is in the past; clamped to now (event " +
                   std::to_string(clamped_past_events_) + " clamped)");
      t = now_;
    }
    return queue_.push(t, std::move(fn));
  }

  /// Schedules `fn` after `delay` seconds (must be >= 0).
  EventId after(SimTime delay, std::function<void()> fn) {
    assert(delay >= 0 && "negative delay");
    return at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Strongly-typed span overload: after(bytes / rate, ...) composes
  /// without unwrapping at every call site.
  EventId after(Duration delay, std::function<void()> fn) {
    return after(delay.value(), std::move(fn));
  }

  /// Cancels a pending event. Returns false if it already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Moves a pending event to absolute time `t` without cancelling it
  /// (see EventQueue::defer — O(1) when postponing, one heap push when
  /// advancing). Returns false when the event already fired or was
  /// cancelled; callers then schedule a fresh one with at(). Past times
  /// clamp to now() under the same audit/log policy as at().
  bool defer(EventId id, SimTime t) {
    if (t < now_) {
      HYBRIDMR_AUDIT_CHECK(false, "sim.simulation", "no_past_scheduling",
                           now_, {{"requested_t", audit::num(t)},
                                  {"now", audit::num(now_)}});
      ++clamped_past_events_;
      log_warn(now_, "sim",
               "defer(" + std::to_string(t) +
                   ") is in the past; clamped to now (event " +
                   std::to_string(clamped_past_events_) + " clamped)");
      t = now_;
    }
    return queue_.defer(id, t);
  }

  /// Cancels `id` and re-pushes its handler at `t`, inheriting the original
  /// FIFO tie-break seat (see EventQueue::repush — the eager-cancel
  /// reference mode's primitive). Returns the new id, or an invalid id when
  /// the event already fired or was cancelled. Past times clamp to now()
  /// under the same audit/log policy as at().
  EventId repush(EventId id, SimTime t) {
    if (t < now_) {
      HYBRIDMR_AUDIT_CHECK(false, "sim.simulation", "no_past_scheduling",
                           now_, {{"requested_t", audit::num(t)},
                                  {"now", audit::num(now_)}});
      ++clamped_past_events_;
      log_warn(now_, "sim",
               "repush(" + std::to_string(t) +
                   ") is in the past; clamped to now (event " +
                   std::to_string(clamped_past_events_) + " clamped)");
      t = now_;
    }
    return queue_.repush(id, t);
  }

  /// Registers `fn` to run every `period` seconds, first firing after
  /// `initial_delay` (defaults to one period). Cancel via the handle.
  PeriodicHandle every(SimTime period, std::function<void()> fn,
                       SimTime initial_delay = -1);

  /// Strongly-typed span overload of every().
  PeriodicHandle every(Duration period, std::function<void()> fn,
                       Duration initial_delay = Duration{-1}) {
    return every(period.value(), std::move(fn), initial_delay.value());
  }

  /// Runs until the event queue drains. Returns events processed.
  std::size_t run();

  /// Runs until simulated time reaches `t` (clock ends exactly at `t` if
  /// events remain) or the queue drains. Returns events processed.
  std::size_t run_until(SimTime t);

  /// Requests that run()/run_until() return after the current event.
  void stop() { stop_requested_ = true; }

  /// Discards every pending event without firing it, destroying the
  /// handlers (and the captures they own). Call at teardown when a run is
  /// abandoned mid-flight — e.g. interactive tickers or in-flight HDFS
  /// flows still have events queued — so no callback state outlives the
  /// simulation. Returns the number of events discarded. Must not be
  /// called from inside a running event.
  std::size_t shutdown() {
    assert(!running_ && "shutdown() inside run() — use stop() first");
    return queue_.clear();
  }

  /// Live events still pending in the queue.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Total events processed since construction.
  [[nodiscard]] std::size_t events_processed() const { return processed_; }

  /// Total events ever scheduled (fired, cancelled or still pending).
  [[nodiscard]] std::uint64_t events_scheduled() const {
    return queue_.total_pushed();
  }

  /// Total events cancelled (explicit cancel() plus shutdown() discards).
  [[nodiscard]] std::uint64_t events_cancelled() const {
    return queue_.total_cancelled();
  }

  /// Total events moved in place by defer() instead of cancel+re-push.
  [[nodiscard]] std::uint64_t events_deferred() const {
    return queue_.total_deferred();
  }

  /// Queue-depth high-water mark over the run.
  [[nodiscard]] std::size_t max_queue_depth() const {
    return queue_.max_size();
  }

  /// Largest number of events any single handler scheduled (fan-out peak;
  /// superlinear growth of this with cluster size is an O(N^2) smell).
  [[nodiscard]] std::uint64_t max_event_fanout() const {
    return max_event_fanout_;
  }

  /// Events scheduled from flush hooks (deferred-drain work) rather than
  /// from inside event handlers.
  [[nodiscard]] std::uint64_t flush_scheduled_events() const {
    return flush_scheduled_events_;
  }

  /// Attaches (or detaches, with nullptr) the dispatch probe. The probe is
  /// invoked around every event handler; see sim/probe.h.
  void set_probe(DispatchProbe* probe) {
    gate_.assert_held();
    probe_ = probe;
  }

  /// How many at() calls asked for a past time and were clamped to now().
  /// Non-zero means a component computes target times incorrectly.
  [[nodiscard]] std::uint64_t clamped_past_events() const {
    return clamped_past_events_;
  }

  /// True while inside run()/run_until().
  [[nodiscard]] bool running() const { return running_; }

  /// Registers a hook that runs before every event dispatch — while now()
  /// is still the previous timestamp — and once more when a run loop
  /// exits. This is how deferred work (the cluster's dirty-machine set)
  /// coalesces: mutations mark state dirty, the hook settles it exactly
  /// once per event boundary before the clock can advance past it.
  /// Returns a token for remove_flush_hook(). Hooks may push new events.
  std::size_t add_flush_hook(std::function<void()> hook);

  /// Deregisters a hook. Safe with an already-removed token.
  void remove_flush_hook(std::size_t token);

  /// Runs every registered flush hook now. Idempotent between mutations;
  /// called automatically at event boundaries and run-loop exits.
  void flush() {
    gate_.assert_held();
    for (const auto& hook : flush_hooks_) {
      if (hook) hook();
    }
  }

  Rng& rng() { return rng_; }

  /// A named auxiliary Rng stream owned by this simulation. Streams are
  /// created on first use; an explicit `seed` wins, otherwise the stream
  /// seeds deterministically from the main seed mixed with the name (so
  /// two same-seed simulations that create the same streams agree draw for
  /// draw). Subsequent calls return the existing stream unchanged — the
  /// seed argument is ignored once a stream exists, which is what lets a
  /// freshly-wired engine restore() a snapshot over its streams. Every
  /// named stream is captured by snapshot() and written back by restore();
  /// components with private randomness (FaultInjector's failure clocks,
  /// the migration dirty-rate jitter) register here instead of owning a
  /// bare Rng the core cannot see.
  Rng& named_rng(const std::string& name);
  Rng& named_rng(const std::string& name, std::uint64_t seed);

  /// Names of the registered auxiliary streams, in deterministic order.
  [[nodiscard]] std::vector<std::string> named_rng_streams() const;

  /// Declares engine state the sim-core snapshot does NOT capture (the
  /// cluster's machines, HDFS blocks, the JobTracker's queues, ...). The
  /// harness registers one domain per subsystem it wires up; a full-scope
  /// snapshot() taken while any domain is registered is a *partial*
  /// capture masquerading as a fork source, and hard-fails under
  /// HYBRIDMR_AUDIT. Process-level forking (src/whatif/) is the sanctioned
  /// full-engine mechanism; callers that genuinely want a core-only
  /// capture acknowledge the exclusion with SnapshotScope::kCoreOnly.
  void register_state_domain(const std::string& name);

  /// Registered engine state domains, in deterministic order.
  [[nodiscard]] const std::vector<std::string>& state_domains() const {
    return state_domains_;
  }

  /// Scope acknowledgement for snapshot() — see register_state_domain().
  enum class SnapshotScope {
    kFull,      ///< capture must cover everything (audit-checked)
    kCoreOnly,  ///< caller acknowledges engine domains are excluded
  };

  /// Value snapshot of the sim core: clock, event queue (pending handlers,
  /// lazy-deleted heap entries, deferred seats), the main Rng stream, every
  /// named Rng stream, and the queue-mechanics counters. See
  /// docs/SNAPSHOT.md for the contract.
  struct Snapshot {
    EventQueue::Snapshot queue;
    // hmr-state(owned-value: engine + distribution carry state, copied
    // verbatim — the stream resumes exactly where the snapshot was taken)
    Rng rng;
    // hmr-state(owned-heap: every named auxiliary stream, by value — a
    // restore resumes each stream exactly where the snapshot was taken)
    std::map<std::string, Rng> named_rngs;
    SimTime now = 0;
    std::size_t processed = 0;
    std::uint64_t clamped_past_events = 0;
    std::uint64_t max_event_fanout = 0;
    std::uint64_t flush_scheduled_events = 0;
  };

  /// Captures the sim core. Must not be called from inside run(): the
  /// event boundary is the only consistent cut. Copied handlers alias
  /// their pointer/shared_ptr captures (docs/SNAPSHOT.md): restoring into
  /// the same object graph (rewind) is exact; restoring into a *fresh*
  /// core is exact only when every pending handler reaches its state
  /// through an indirection the caller re-points (the fork-equivalence
  /// test demonstrates both). every() tickers capture `this` and are
  /// rewind-safe but not fork-safe. Under HYBRIDMR_AUDIT a kFull snapshot
  /// hard-fails while engine state domains are registered (the capture
  /// would silently exclude them); pass kCoreOnly to acknowledge.
  [[nodiscard]] Snapshot snapshot(
      SnapshotScope scope = SnapshotScope::kFull) const;

  /// Replaces the sim core with `snap`, as if the run had just reached the
  /// snapshot point. Every named Rng stream is written back; under
  /// HYBRIDMR_AUDIT a stream that exists now but was not captured by
  /// `snap` is a hard failure (its position would silently survive the
  /// restore). Harness wiring — flush hooks, probe, log sink — is
  /// deliberately untouched: a restored core keeps its own
  /// instrumentation. Must not be called from inside run().
  void restore(const Snapshot& snap);

 private:
  bool dispatch_one() HMR_REQUIRES(gate_);

  // Sim-thread capability token for the dispatch loop's shared hooks (the
  // queue and the clock carry their own discipline; the hook/probe lists
  // are the state a sharded event loop would contend on first).
  SimThreadGate gate_;

  EventQueue queue_;
  Rng rng_;
  std::uint64_t seed_;
  // Ordered by name so snapshot/restore and the audit census walk the
  // streams in a reproducible order.
  std::map<std::string, Rng> named_rngs_;
  // hmr-state(owned-heap: declaration-only — names engine state the core
  // snapshot excludes; the set itself is harness wiring, not run state)
  std::vector<std::string> state_domains_;
  // Slots are never erased (tokens stay stable); removal nulls the entry.
  std::vector<std::function<void()>> flush_hooks_ HMR_GUARDED_BY(gate_);
  SimTime now_ = 0;
  std::size_t processed_ = 0;
  std::uint64_t clamped_past_events_ = 0;
  std::uint64_t max_event_fanout_ = 0;
  std::uint64_t flush_scheduled_events_ = 0;
  // hmr-state(back-reference: owner=harness/profiler wiring; snapshot()
  // leaves it untouched — a restored core keeps its own probe)
  DispatchProbe* probe_ HMR_GUARDED_BY(gate_) = nullptr;
  bool stop_requested_ = false;
  bool running_ = false;
};

}  // namespace hybridmr::sim
