// Minimal leveled logger stamped with simulated time.
//
// Logging is off by default (benchmarks and tests run silently); examples
// turn it on to narrate scheduler decisions. The sink is pluggable: the
// default writes to stdout, tests capture into a string, and TestBed honors
// the HYBRIDMR_LOG environment variable (debug|info|warn|error|off) so
// examples and benches can raise verbosity without recompiling.
#pragma once

#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "sim/event_queue.h"

namespace hybridmr::sim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log configuration (single-threaded simulator, so a plain
/// global is fine and keeps call sites trivial).
class Log {
 public:
  /// Receives every message that passes the threshold.
  using Sink = std::function<void(LogLevel level, SimTime now,
                                  const std::string& tag,
                                  const std::string& message)>;

  static LogLevel& threshold() {
    // hmr-shared(process-global): one log threshold per process; written
    // only at setup (TestBed/env parsing), read from sim code thereafter.
    static LogLevel level = LogLevel::kOff;
    return level;
  }

  static bool enabled(LogLevel level) {
    return static_cast<int>(level) >= static_cast<int>(threshold());
  }

  /// Replaces the output sink; an empty sink restores the stdout default.
  static void set_sink(Sink sink) { sink_ref() = std::move(sink); }

  /// The standard "[ 123.456s] LEVEL tag: message" line.
  static std::string format(LogLevel level, SimTime now,
                            const std::string& tag,
                            const std::string& message) {
    char head[48];
    std::snprintf(head, sizeof(head), "[%9.3fs] %-5s %-12s ", now,
                  level_name(level), tag.c_str());
    return std::string(head) + message;
  }

  /// Routes "tag: message" through the sink if `level` passes.
  static void write(LogLevel level, SimTime now, const std::string& tag,
                    const std::string& message) {
    if (!enabled(level)) return;
    const Sink& sink = sink_ref();
    if (sink) {
      sink(level, now, tag, message);
    } else {
      std::printf("%s\n", format(level, now, tag, message).c_str());
    }
  }

  static const char* level_name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "debug";
      case LogLevel::kInfo:
        return "info";
      case LogLevel::kWarn:
        return "warn";
      case LogLevel::kError:
        return "error";
      case LogLevel::kOff:
        return "off";
    }
    return "?";
  }

  /// Parses a level name ("debug", "info", "warn", "error", "off"; case
  /// sensitive, as env vars conventionally are). nullopt on anything else.
  static std::optional<LogLevel> parse_level(std::string_view name) {
    if (name == "debug") return LogLevel::kDebug;
    if (name == "info") return LogLevel::kInfo;
    if (name == "warn" || name == "warning") return LogLevel::kWarn;
    if (name == "error") return LogLevel::kError;
    if (name == "off" || name == "none") return LogLevel::kOff;
    return std::nullopt;
  }

 private:
  static Sink& sink_ref() {
    // hmr-shared(process-global): pluggable output sink; replaced only at
    // setup/teardown, never from inside event handlers.
    static Sink sink;  // empty = stdout default
    return sink;
  }
};

inline void log_debug(SimTime now, const std::string& tag,
                      const std::string& msg) {
  Log::write(LogLevel::kDebug, now, tag, msg);
}
inline void log_info(SimTime now, const std::string& tag,
                     const std::string& msg) {
  Log::write(LogLevel::kInfo, now, tag, msg);
}
inline void log_warn(SimTime now, const std::string& tag,
                     const std::string& msg) {
  Log::write(LogLevel::kWarn, now, tag, msg);
}
inline void log_error(SimTime now, const std::string& tag,
                      const std::string& msg) {
  Log::write(LogLevel::kError, now, tag, msg);
}

}  // namespace hybridmr::sim
