// Minimal leveled logger stamped with simulated time.
//
// Logging is off by default (benchmarks and tests run silently); examples
// turn it on to narrate scheduler decisions.
#pragma once

#include <cstdio>
#include <string>

#include "sim/event_queue.h"

namespace hybridmr::sim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kOff = 3 };

/// Process-wide log configuration (single-threaded simulator, so a plain
/// global is fine and keeps call sites trivial).
class Log {
 public:
  static LogLevel& threshold() {
    static LogLevel level = LogLevel::kOff;
    return level;
  }

  static bool enabled(LogLevel level) {
    return static_cast<int>(level) >= static_cast<int>(threshold());
  }

  /// Writes "[ 123.456s] tag: message" to stdout if `level` passes.
  static void write(LogLevel level, SimTime now, const std::string& tag,
                    const std::string& message) {
    if (!enabled(level)) return;
    std::printf("[%9.3fs] %-12s %s\n", now, tag.c_str(), message.c_str());
  }
};

inline void log_debug(SimTime now, const std::string& tag,
                      const std::string& msg) {
  Log::write(LogLevel::kDebug, now, tag, msg);
}
inline void log_info(SimTime now, const std::string& tag,
                     const std::string& msg) {
  Log::write(LogLevel::kInfo, now, tag, msg);
}
inline void log_warn(SimTime now, const std::string& tag,
                     const std::string& msg) {
  Log::write(LogLevel::kWarn, now, tag, msg);
}

}  // namespace hybridmr::sim
