#include "sim/simulation.h"

#include <limits>
#include <utility>

namespace hybridmr::sim {

PeriodicHandle Simulation::every(SimTime period, std::function<void()> fn,
                                 SimTime initial_delay) {
  assert(period > 0 && "period must be positive");
  auto alive = std::make_shared<bool>(true);
  // The ticker owns its state; each firing reschedules the next unless the
  // handle was cancelled.
  auto tick = std::make_shared<std::function<void()>>();
  auto shared_fn = std::make_shared<std::function<void()>>(std::move(fn));
  *tick = [this, period, alive, tick, shared_fn]() {
    if (!*alive) return;
    (*shared_fn)();
    if (*alive) after(period, [tick]() { (*tick)(); });
  };
  after(initial_delay >= 0 ? initial_delay : period, [tick]() { (*tick)(); });
  return PeriodicHandle(alive);
}

bool Simulation::dispatch_one() {
  auto entry = queue_.pop();
  if (!entry) return false;
  now_ = entry->time;
  entry->fn();
  ++processed_;
  return true;
}

std::size_t Simulation::run() {
  const std::size_t before = processed_;
  running_ = true;
  stop_requested_ = false;
  while (!stop_requested_ && dispatch_one()) {
  }
  running_ = false;
  return processed_ - before;
}

std::size_t Simulation::run_until(SimTime t) {
  const std::size_t before = processed_;
  running_ = true;
  stop_requested_ = false;
  while (!stop_requested_) {
    auto next = queue_.next_time();
    if (!next || *next > t) break;
    dispatch_one();
  }
  if (now_ < t && t < std::numeric_limits<double>::infinity()) now_ = t;
  running_ = false;
  return processed_ - before;
}

}  // namespace hybridmr::sim
