#include "sim/simulation.h"

#include <limits>
#include <utility>

namespace hybridmr::sim {

PeriodicHandle Simulation::every(SimTime period, std::function<void()> fn,
                                 SimTime initial_delay) {
  assert(period > 0 && "period must be positive");
  auto alive = std::make_shared<bool>(true);
  // Each firing reschedules the next unless the handle was cancelled. The
  // ticker closure holds only a *weak* reference to itself: the pending
  // event owns the one strong reference, so a cancelled or drained ticker
  // is destroyed with its queue entry instead of keeping itself (and the
  // user callback's captures) alive in a shared_ptr cycle.
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_tick = tick;
  *tick = [this, period, alive, weak_tick, fn = std::move(fn)]() {
    if (!*alive) return;
    fn();
    if (!*alive) return;
    if (auto self = weak_tick.lock()) {
      after(period, [self]() { (*self)(); });
    }
  };
  after(initial_delay >= 0 ? initial_delay : period, [tick]() { (*tick)(); });
  return PeriodicHandle(alive);
}

bool Simulation::dispatch_one() {
  auto entry = queue_.pop();
  if (!entry) return false;
  // The virtual clock only moves forward: at() clamps (or aborts, under
  // audit) past target times, and the queue pops in time order.
  HYBRIDMR_AUDIT_CHECK(entry->time >= now_, "sim.simulation",
                       "monotonic_time", now_,
                       {{"event_time", audit::num(entry->time)},
                        {"now", audit::num(now_)}});
  now_ = entry->time;
  entry->fn();
  ++processed_;
  return true;
}

std::size_t Simulation::run() {
  const std::size_t before = processed_;
  running_ = true;
  stop_requested_ = false;
  while (!stop_requested_ && dispatch_one()) {
  }
  running_ = false;
  return processed_ - before;
}

std::size_t Simulation::run_until(SimTime t) {
  const std::size_t before = processed_;
  running_ = true;
  stop_requested_ = false;
  while (!stop_requested_) {
    auto next = queue_.next_time();
    if (!next || *next > t) break;
    dispatch_one();
  }
  if (now_ < t && t < std::numeric_limits<double>::infinity()) now_ = t;
  running_ = false;
  return processed_ - before;
}

}  // namespace hybridmr::sim
