#include "sim/simulation.h"

#include <cmath>
#include <limits>
#include <utility>

namespace hybridmr::sim {

PeriodicHandle Simulation::every(SimTime period, std::function<void()> fn,
                                 SimTime initial_delay) {
  assert(period > 0 && "period must be positive");
  auto alive = std::make_shared<bool>(true);
  // Each firing reschedules the next unless the handle was cancelled. The
  // ticker closure holds only a *weak* reference to itself: the pending
  // event owns the one strong reference, so a cancelled or drained ticker
  // is destroyed with its queue entry instead of keeping itself (and the
  // user callback's captures) alive in a shared_ptr cycle.
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_tick = tick;
  *tick = [this, period, alive, weak_tick, fn = std::move(fn)]() {
    if (!*alive) return;
    fn();
    if (!*alive) return;
    if (auto self = weak_tick.lock()) {
      after(period, [self]() { (*self)(); });
    }
  };
  after(initial_delay >= 0 ? initial_delay : period, [tick]() { (*tick)(); });
  return PeriodicHandle(alive);
}

std::size_t Simulation::add_flush_hook(std::function<void()> hook) {
  gate_.assert_held();
  flush_hooks_.push_back(std::move(hook));
  return flush_hooks_.size() - 1;
}

void Simulation::remove_flush_hook(std::size_t token) {
  gate_.assert_held();
  if (token < flush_hooks_.size()) flush_hooks_[token] = nullptr;
}

bool Simulation::dispatch_one() {
  // Deferred work flushes *before* the pop: a drain can reschedule
  // completion events, which may change what the earliest event is.
  // Events a flush hook schedules are attributed to the flush boundary,
  // not to the event whose handler runs next.
  const std::uint64_t pushed_before_flush = queue_.total_pushed();
  flush();
  flush_scheduled_events_ += queue_.total_pushed() - pushed_before_flush;
  // Events parked at infinity mean "never at the current allocation"
  // (stalled workload completions, see Machine::reschedule). When nothing
  // finite remains, the simulation is quiescent: time cannot reach those
  // events, so the run is over. shutdown() discards them as cancelled.
  const auto next = queue_.next_time();
  if (!next || !std::isfinite(*next)) return false;
  auto entry = queue_.pop();
  if (!entry) return false;
  // The virtual clock only moves forward: at() clamps (or aborts, under
  // audit) past target times, and the queue pops in time order.
  HYBRIDMR_AUDIT_CHECK(entry->time >= now_, "sim.simulation",
                       "monotonic_time", now_,
                       {{"event_time", audit::num(entry->time)},
                        {"now", audit::num(now_)}});
  now_ = entry->time;
  if (probe_) probe_->on_event_begin(now_, queue_.size());
  const std::uint64_t pushed_before = queue_.total_pushed();
  entry->fn();
  const std::uint64_t fanout = queue_.total_pushed() - pushed_before;
  if (fanout > max_event_fanout_) max_event_fanout_ = fanout;
  ++processed_;
  // Conservation across the flush boundary: every event ever scheduled is
  // by now processed, cancelled, or still live. A mismatch means an event
  // left the queue without being dispatched or accounted as cancelled.
  HYBRIDMR_AUDIT_CHECK(
      queue_.total_pushed() ==
          processed_ + queue_.total_cancelled() + queue_.size(),
      "sim.simulation", "event_conservation", now_,
      {{"scheduled", audit::num(static_cast<double>(queue_.total_pushed()))},
       {"processed", audit::num(static_cast<double>(processed_))},
       {"cancelled",
        audit::num(static_cast<double>(queue_.total_cancelled()))},
       {"live", audit::num(static_cast<double>(queue_.size()))}});
  if (probe_) probe_->on_event_end(now_, fanout, queue_.size());
  return true;
}

std::size_t Simulation::run() {
  gate_.assert_held();
  const std::size_t before = processed_;
  running_ = true;
  stop_requested_ = false;
  while (!stop_requested_ && dispatch_one()) {
  }
  // A stop() request can leave the last event's deferred work pending.
  flush();
  running_ = false;
  return processed_ - before;
}

namespace {

// FNV-1a: stable, dependency-free name hash for deriving per-stream seeds
// from the main seed. Collisions only correlate two streams' seeds, never
// their draws, so the cheap hash is fine.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Rng& Simulation::named_rng(const std::string& name) {
  return named_rng(name, seed_ ^ fnv1a(name));
}

Rng& Simulation::named_rng(const std::string& name, std::uint64_t seed) {
  auto it = named_rngs_.find(name);
  if (it == named_rngs_.end()) {
    it = named_rngs_.emplace(name, Rng(seed)).first;
  }
  return it->second;
}

std::vector<std::string> Simulation::named_rng_streams() const {
  std::vector<std::string> out;
  out.reserve(named_rngs_.size());
  for (const auto& [name, rng] : named_rngs_) out.push_back(name);
  return out;
}

void Simulation::register_state_domain(const std::string& name) {
  for (const auto& d : state_domains_) {
    if (d == name) return;
  }
  state_domains_.push_back(name);
}

Simulation::Snapshot Simulation::snapshot(SnapshotScope scope) const {
  gate_.assert_held();
  assert(!running_ && "snapshot() inside run() — stop() first");
  // A full-scope capture while engine domains are registered would be a
  // partial snapshot masquerading as a fork source: the cluster, HDFS and
  // JobTracker state it excludes would silently alias between "forks".
  HYBRIDMR_AUDIT_CHECK(
      scope == SnapshotScope::kCoreOnly || state_domains_.empty(),
      "sim.snapshot", "uncaptured_state_domain", now_,
      {{"registered_domains",
        audit::num(static_cast<double>(state_domains_.size()))},
       {"first_domain",
        state_domains_.empty() ? std::string() : state_domains_.front()}});
  (void)scope;
  return Snapshot{queue_.snapshot(),
                  rng_,
                  named_rngs_,
                  now_,
                  processed_,
                  clamped_past_events_,
                  max_event_fanout_,
                  flush_scheduled_events_};
}

void Simulation::restore(const Snapshot& snap) {
  gate_.assert_held();
  assert(!running_ && "restore() inside run() — stop() first");
  // Every stream alive now must have been captured: a stream created after
  // the snapshot would otherwise keep its current position across the
  // restore, silently decorrelating "identical" replays.
  for (const auto& [name, rng] : named_rngs_) {
    HYBRIDMR_AUDIT_CHECK(snap.named_rngs.contains(name), "sim.snapshot",
                         "named_rng_stream_uncaptured", now_,
                         {{"stream", name}});
  }
  queue_.restore(snap.queue);
  rng_ = snap.rng;
  // Restore named streams IN PLACE, never by whole-map assignment: map
  // assignment may reuse tree nodes under different keys, which would
  // silently re-point long-lived references (FaultInjector's rng_) at a
  // *different* stream. Value-assigning through find() keeps every node —
  // and therefore every outstanding Rng& — exactly where it was.
  for (const auto& [name, rng] : snap.named_rngs) {
    auto it = named_rngs_.find(name);
    if (it != named_rngs_.end()) {
      it->second = rng;
    } else {
      named_rngs_.emplace(name, rng);
    }
  }
  now_ = snap.now;
  processed_ = snap.processed;
  clamped_past_events_ = snap.clamped_past_events;
  max_event_fanout_ = snap.max_event_fanout;
  flush_scheduled_events_ = snap.flush_scheduled_events;
  stop_requested_ = false;
  // flush_hooks_ and probe_ stay untouched: instrumentation and deferred-
  // drain wiring belong to the hosting harness, not to simulation state.
}

std::size_t Simulation::run_until(SimTime t) {
  gate_.assert_held();
  const std::size_t before = processed_;
  running_ = true;
  stop_requested_ = false;
  while (!stop_requested_) {
    // Flush before peeking: a drain can push new events (e.g. rescheduled
    // completions) earlier than the current head.
    flush();
    auto next = queue_.next_time();
    if (!next || *next > t || !std::isfinite(*next)) break;
    dispatch_one();
  }
  // Settle pending deferred work at the final event's timestamp before the
  // clock jumps forward to t.
  flush();
  if (now_ < t && t < std::numeric_limits<double>::infinity()) now_ = t;
  running_ = false;
  return processed_ - before;
}

}  // namespace hybridmr::sim
