// DispatchProbe: the kernel-side hook the profiler attaches through.
//
// The sim layer sits at the bottom of the layering DAG, so it cannot depend
// on telemetry types. Instead the Simulation accepts an abstract probe and
// invokes it around every event dispatch; telemetry::Profiler implements
// this interface and translates the callbacks into wall-time spans, work
// counters and the heartbeat/stall watchdog. A null probe (the default)
// costs one pointer compare per event.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/event_queue.h"

namespace hybridmr::sim {

class DispatchProbe {
 public:
  virtual ~DispatchProbe() = default;

  /// Called after the clock advanced to the event's timestamp, before the
  /// handler runs. `queue_depth` is the number of live events remaining.
  virtual void on_event_begin(SimTime now, std::size_t queue_depth) = 0;

  /// Called after the handler returned. `fanout` is the number of events
  /// the handler scheduled (directly or transitively within its own frame).
  virtual void on_event_end(SimTime now, std::uint64_t fanout,
                            std::size_t queue_depth) = 0;
};

}  // namespace hybridmr::sim
