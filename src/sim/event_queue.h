// Cancellable discrete-event queue.
//
// Events are (time, callback) pairs ordered by time with FIFO tie-breaking.
// Every scheduled event gets a stable EventId that can later be cancelled in
// O(1); cancelled events are dropped lazily when they reach the head of the
// heap, so cancellation never restructures the heap.
//
// Handlers live in a generation-indexed slot vector rather than a hash map:
// an EventId packs (slot index, slot generation), so push/cancel/pop resolve
// handlers with two array reads and no hashing, and slot reuse means a
// steady-state simulation allocates nothing per event (the slot pool and the
// heap grow to the high-water mark once and are then recycled).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "sim/thread_annotations.h"

namespace hybridmr::sim {

/// Simulated time, in seconds since the start of the simulation.
using SimTime = double;

/// The one sanctioned exact-equality comparison for SimTime values.
///
/// SimTime is a double; raw `==`/`!=` on it is a determinism hazard the
/// custom linter (scripts/lint_sim.py, rule simtime-eq) rejects. Exact
/// comparison is legitimate only where both operands came from the same
/// computation (e.g. an event timestamp handed back by the queue); route
/// those cases through this helper so they are visibly intentional.
constexpr bool same_time(SimTime a, SimTime b) {
  return a == b;  // sim-lint: allow(simtime-eq)
}

/// Opaque handle for a scheduled event. Default-constructed ids are invalid.
struct EventId {
  std::uint64_t value = 0;

  [[nodiscard]] bool valid() const { return value != 0; }
  friend bool operator==(EventId a, EventId b) { return a.value == b.value; }
};

/// Min-heap of timed callbacks with O(1) cancellation.
///
/// Not thread-safe: the simulation is single-threaded by design (determinism
/// is a feature; see DESIGN.md).
class EventQueue {
 public:
  struct Entry {
    SimTime time = 0;
    EventId id;
    std::function<void()> fn;
  };

  /// Schedules `fn` at absolute time `time`. Returns a cancellation handle.
  EventId push(SimTime time, std::function<void()> fn);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or the id is invalid.
  bool cancel(EventId id);

  /// Moves a pending event to absolute time `time` without cancelling it
  /// (the handler and its id stay valid). Returns false if the event
  /// already fired or was cancelled — callers then push() a fresh event.
  ///
  /// This is the lazy-deletion path that replaces cancel+push churn:
  /// postponing is O(1) (the slot's authoritative seat is bumped and the
  /// stale heap item is re-seated only when it surfaces at the head),
  /// advancing pushes one extra heap item at the earlier time and lets the
  /// superseded item skim away as a duplicate. Heap items are therefore a
  /// *superset* of live events; only the slot's (time, seq) seat is
  /// authoritative. defer() never consumes a tie-break seq: the event
  /// keeps the seq it was pushed with, so same-time FIFO ties resolve in
  /// creation order no matter how often an event was rescheduled or how
  /// reschedules were coalesced — tie order is a property of the workload,
  /// not of the reschedule policy. Conservation
  /// (total_pushed == fired + cancelled + live) counts events, not heap
  /// items, so defer() never touches those totals.
  bool defer(EventId id, SimTime time);

  /// Cancels `id` and pushes a fresh event with the same handler at `time`,
  /// *inheriting the original tie-break seq*. Returns the new id, or an
  /// invalid id (and does nothing) when `id` already fired or was
  /// cancelled. This is the eager-cancel reference mode's primitive: it
  /// exercises genuine cancel + re-push heap surgery, but keeps FIFO tie
  /// order anchored to event-creation order exactly like defer() — tie
  /// order is a property of the workload, not of the reschedule policy, so
  /// the two modes stay byte-for-byte equivalent on same-time collisions.
  /// Counts one cancellation and one push.
  EventId repush(EventId id, SimTime time);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const {
    gate_.assert_held();
    return live_ == 0;
  }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const {
    gate_.assert_held();
    return live_;
  }

  /// Time of the earliest live event. Empty queue -> nullopt.
  [[nodiscard]] std::optional<SimTime> next_time();

  /// Removes and returns the earliest live event. Empty queue -> nullopt.
  std::optional<Entry> pop();

  /// Drops every pending event (handlers are destroyed, nothing fires).
  /// Returns how many live events were discarded. This is the teardown
  /// path Simulation::shutdown() uses to release callback captures.
  std::size_t clear();

  /// Lifetime totals for work attribution: every event ever pushed is
  /// eventually popped, cancelled, or still live, so
  ///   total_pushed() == pops + total_cancelled() + size()
  /// holds at every quiescent point (the simulation audits this after each
  /// dispatch). clear() counts as cancellation.
  [[nodiscard]] std::uint64_t total_pushed() const {
    gate_.assert_held();
    return total_pushed_;
  }
  [[nodiscard]] std::uint64_t total_cancelled() const {
    gate_.assert_held();
    return total_cancelled_;
  }

  /// Lifetime count of successful defer() calls (not part of the
  /// conservation identity above; a deferred event still fires or is
  /// cancelled exactly once).
  [[nodiscard]] std::uint64_t total_deferred() const {
    gate_.assert_held();
    return total_deferred_;
  }

  /// High-water mark of live events (queue-depth peak over the run).
  [[nodiscard]] std::size_t max_size() const {
    gate_.assert_held();
    return max_size_;
  }

  // Declared below (it needs the private Slot/HeapItem types); the public
  // API is snapshot()/restore() + the struct itself.
  struct Snapshot;

  /// Verbatim value copy of the queue's full mechanics: the heap
  /// *including* lazy-deleted and stale defer() items, every slot with its
  /// pending handler, the free list, and all conservation counters.
  /// Copying a slot copies its std::function, which aliases any pointer /
  /// shared_ptr captures — the snapshot-safety contract (docs/SNAPSHOT.md):
  /// restoring into the same object graph is exact; forking into a cloned
  /// graph must re-point those captures (follow-up PR).
  [[nodiscard]] Snapshot snapshot() const;

  /// Replaces the queue's entire state with `snap`. Ids issued before the
  /// snapshot was taken are valid again exactly as they were at that point.
  void restore(const Snapshot& snap);

 private:
  // An EventId packs the slot index (low 32 bits, biased by one so the
  // all-zero id stays invalid) and the slot's generation at push time
  // (high 32 bits). A slot's generation bumps on every release, so stale
  // ids — fired, cancelled or cleared — can never alias a reused slot.
  struct Slot {
    // hmr-state(owned-heap: copying a slot copies the closure, which
    // ALIASES any pointer/shared_ptr captures — the snapshot contract in
    // docs/SNAPSHOT.md; engine-wide fork re-points them)
    std::function<void()> fn;
    // Authoritative (time, seq) seat of the event. Heap items carry the
    // seat they were inserted with; defer() moves only the time (seq is
    // fixed at push) and skim() reconciles stale items when they surface,
    // so same-time FIFO ties always resolve in event-creation order,
    // independent of the reschedule history.
    SimTime time = 0;
    std::uint64_t seq = 0;
    std::uint32_t gen = 0;
    bool live = false;
  };

  struct HeapItem {
    SimTime time;
    std::uint64_t seq;  // insertion order, for FIFO tie-breaking
    std::uint64_t id;
  };
  struct Later {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      // Ordered comparisons only: exact ==/!= on SimTime doubles is a
      // lint violation (see sim::same_time).
      if (a.time > b.time) return true;
      if (b.time > a.time) return false;
      return a.seq > b.seq;
    }
  };

  static std::uint32_t slot_index(std::uint64_t id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  }
  static std::uint32_t generation(std::uint64_t id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static std::uint64_t make_id(std::uint32_t index, std::uint32_t gen) {
    return (static_cast<std::uint64_t>(gen) << 32) |
           (static_cast<std::uint64_t>(index) + 1);
  }

  // The slot a live id refers to, or nullptr when the id is stale/invalid.
  [[nodiscard]] Slot* live_slot(std::uint64_t id) HMR_REQUIRES(gate_);

  // Destroys the handler, bumps the generation and recycles the slot.
  void release(std::uint32_t index) HMR_REQUIRES(gate_);

  // Drops cancelled items from the heap head.
  void skim() HMR_REQUIRES(gate_);

  // Audit checkpoint: every live handler must have a heap item (an
  // orphaned handler could never fire and would leak its captures).
  void audit_no_orphans() const HMR_REQUIRES(gate_);

  // Sim-thread capability token: the queue is mutated only between event
  // boundaries on the dispatch thread (see sim/thread_annotations.h).
  SimThreadGate gate_;

  std::priority_queue<HeapItem, std::vector<HeapItem>, Later> heap_
      HMR_GUARDED_BY(gate_);
  std::vector<Slot> slots_ HMR_GUARDED_BY(gate_);
  std::vector<std::uint32_t> free_slots_ HMR_GUARDED_BY(gate_);
  std::size_t live_ HMR_GUARDED_BY(gate_) = 0;
  std::uint64_t next_seq_ HMR_GUARDED_BY(gate_) = 0;
  std::uint64_t total_pushed_ HMR_GUARDED_BY(gate_) = 0;
  std::uint64_t total_cancelled_ HMR_GUARDED_BY(gate_) = 0;
  std::uint64_t total_deferred_ HMR_GUARDED_BY(gate_) = 0;
  std::size_t max_size_ HMR_GUARDED_BY(gate_) = 0;
};

/// See EventQueue::snapshot(). Opaque to callers: members mirror the
/// queue's own, field for field, and only snapshot()/restore() touch them.
struct EventQueue::Snapshot {
  // hmr-state(owned-heap: heap items are plain values; the handlers they
  // reference live in `slots`)
  std::priority_queue<HeapItem, std::vector<HeapItem>, Later> heap;
  // hmr-state(owned-heap: copied closures alias their captures — see the
  // snapshot contract in docs/SNAPSHOT.md)
  std::vector<Slot> slots;
  std::vector<std::uint32_t> free_slots;
  std::size_t live = 0;
  std::uint64_t next_seq = 0;
  std::uint64_t total_pushed = 0;
  std::uint64_t total_cancelled = 0;
  std::uint64_t total_deferred = 0;
  std::size_t max_size = 0;
};

}  // namespace hybridmr::sim
