// Workload mixes: the paper's wmix-1/2/3 (50/50, 20/80, 80/20 interactive
// vs batch) plus a general generator.
#pragma once

#include <string>
#include <vector>

#include "interactive/presets.h"
#include "mapred/job_spec.h"
#include "sim/rng.h"

namespace hybridmr::workload {

struct MixEntry {
  double arrival_s = 0;
  bool is_batch = true;
  mapred::JobSpec job;          // valid when is_batch
  interactive::AppParams app;   // valid when !is_batch
  int clients = 0;              // valid when !is_batch
};

struct MixOptions {
  int total_entries = 12;
  double interactive_fraction = 0.5;
  double horizon_s = 300;       // arrivals spread uniformly over [0, horizon)
  double batch_input_scale = 1.0;  // shrink inputs for quick experiments
  int clients_min = 400;
  int clients_max = 1200;
};

/// Deterministically (given the Rng) generates a mixed stream of batch jobs
/// (cycling through the six benchmarks) and interactive apps (cycling
/// through RUBiS / TPC-W / Olio), sorted by arrival time.
std::vector<MixEntry> make_mix(sim::Rng& rng, const MixOptions& options);

/// The paper's named mixes: 1 -> 50% interactive, 2 -> 20%, 3 -> 80%.
MixOptions wmix_options(int which);

}  // namespace hybridmr::workload
