// The paper's six MapReduce benchmarks (§IV) as calibrated JobSpecs.
//
//   Twitter  - ranks users over a 25 GB twitter graph (Memory + I/O bound)
//   Wcount   - word frequencies over 20 GB of text    (Memory + I/O bound)
//   PiEst    - Monte-Carlo Pi over 10 M points        (CPU bound)
//   DistGrep - regex search over 20 GB of text        (I/O bound)
//   Sort     - sorts 20 GB of text                    (I/O bound)
//   Kmeans   - clusters 10 GB of numeric data         (CPU bound)
//
// Only the resource mix matters to a scheduler; the bytes are synthetic.
#pragma once

#include <string>
#include <vector>

#include "mapred/job_spec.h"

namespace hybridmr::workload {

mapred::JobSpec twitter();
mapred::JobSpec wcount();
mapred::JobSpec pi_est();
mapred::JobSpec dist_grep();
mapred::JobSpec sort_job();
mapred::JobSpec kmeans();

/// The six benchmarks in the paper's presentation order.
std::vector<mapred::JobSpec> all_benchmarks();

/// Lookup by (case-insensitive) name; throws std::out_of_range if unknown.
mapred::JobSpec benchmark(const std::string& name);

}  // namespace hybridmr::workload
