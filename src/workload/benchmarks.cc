#include "workload/benchmarks.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace hybridmr::workload {

using mapred::JobClass;
using mapred::JobSpec;

JobSpec twitter() {
  JobSpec s;
  s.name = "Twitter";
  s.job_class = JobClass::kMemoryIoBound;
  s.input_gb = 25;
  s.map_cpu_s_per_mb = sim::SecondsPerMB{0.09};
  s.reduce_cpu_s_per_mb = sim::SecondsPerMB{0.08};
  s.map_selectivity = 0.40;
  s.reduce_output_ratio = 0.20;
  s.task_memory_mb = sim::MegaBytes{800};
  return s;
}

JobSpec wcount() {
  JobSpec s;
  s.name = "Wcount";
  s.job_class = JobClass::kMemoryIoBound;
  s.input_gb = 20;
  s.map_cpu_s_per_mb = sim::SecondsPerMB{0.10};
  s.reduce_cpu_s_per_mb = sim::SecondsPerMB{0.03};
  s.map_selectivity = 0.25;
  s.reduce_output_ratio = 0.30;
  s.task_memory_mb = sim::MegaBytes{700};
  return s;
}

JobSpec pi_est() {
  JobSpec s;
  s.name = "PiEst";
  s.job_class = JobClass::kCpuBound;
  // 10M sample points: a tiny input (128 MB in 1 MB splits -> 128 map
  // tasks) with all the cost in compute, like hadoop-examples pi. Having
  // more tasks than cluster slots keeps every wave full.
  s.input_gb = 0.125;
  s.split_mb = sim::MegaBytes{1};
  s.map_cpu_s_per_mb = sim::SecondsPerMB{9.6};
  s.reduce_cpu_s_per_mb = sim::SecondsPerMB{0.01};
  s.map_selectivity = 0.001;
  s.reduce_output_ratio = 1.0;
  s.task_memory_mb = sim::MegaBytes{200};
  s.num_reducers = 1;
  return s;
}

JobSpec dist_grep() {
  JobSpec s;
  s.name = "DistGrep";
  s.job_class = JobClass::kIoBound;
  s.input_gb = 20;
  s.map_cpu_s_per_mb = sim::SecondsPerMB{0.035};
  s.reduce_cpu_s_per_mb = sim::SecondsPerMB{0.01};
  s.map_selectivity = 0.002;
  s.reduce_output_ratio = 1.0;
  s.task_memory_mb = sim::MegaBytes{300};
  s.num_reducers = 1;
  return s;
}

JobSpec sort_job() {
  JobSpec s;
  s.name = "Sort";
  s.job_class = JobClass::kIoBound;
  s.input_gb = 20;
  s.map_cpu_s_per_mb = sim::SecondsPerMB{0.08};
  s.reduce_cpu_s_per_mb = sim::SecondsPerMB{0.02};
  s.sort_cpu_s_per_mb = sim::SecondsPerMB{0.008};
  s.map_selectivity = 1.0;
  s.reduce_output_ratio = 1.0;
  s.output_replicas = 1;  // terasort convention
  s.task_memory_mb = sim::MegaBytes{400};
  return s;
}

JobSpec kmeans() {
  JobSpec s;
  s.name = "Kmeans";
  s.job_class = JobClass::kCpuBound;
  s.input_gb = 10;
  s.map_cpu_s_per_mb = sim::SecondsPerMB{0.35};
  s.reduce_cpu_s_per_mb = sim::SecondsPerMB{0.10};
  s.map_selectivity = 0.05;
  s.reduce_output_ratio = 0.50;
  s.task_memory_mb = sim::MegaBytes{500};
  return s;
}

std::vector<JobSpec> all_benchmarks() {
  return {twitter(), wcount(), pi_est(), dist_grep(), sort_job(), kmeans()};
}

JobSpec benchmark(const std::string& name) {
  std::string key = name;
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (const auto& spec : all_benchmarks()) {
    std::string candidate = spec.name;
    std::transform(candidate.begin(), candidate.end(), candidate.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (candidate == key) return spec;
  }
  throw std::out_of_range("unknown benchmark: " + name);
}

}  // namespace hybridmr::workload
