#include "workload/mix.h"

#include <algorithm>
#include <stdexcept>

#include "workload/benchmarks.h"

namespace hybridmr::workload {

std::vector<MixEntry> make_mix(sim::Rng& rng, const MixOptions& options) {
  const auto jobs = all_benchmarks();
  const std::vector<interactive::AppParams> apps = {
      interactive::rubis_params(), interactive::tpcw_params(),
      interactive::olio_params()};

  const int n_interactive = static_cast<int>(
      options.total_entries * options.interactive_fraction + 0.5);

  std::vector<MixEntry> out;
  out.reserve(static_cast<std::size_t>(options.total_entries));
  std::size_t job_cursor = 0;
  std::size_t app_cursor = 0;
  for (int i = 0; i < options.total_entries; ++i) {
    MixEntry e;
    e.arrival_s = rng.uniform(0, options.horizon_s);
    e.is_batch = i >= n_interactive;
    if (e.is_batch) {
      e.job = jobs[job_cursor++ % jobs.size()];
      e.job.input_gb *= options.batch_input_scale;
    } else {
      e.app = apps[app_cursor++ % apps.size()];
      e.clients = rng.uniform_int(options.clients_min, options.clients_max);
    }
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const MixEntry& a, const MixEntry& b) {
              return a.arrival_s < b.arrival_s;
            });
  return out;
}

MixOptions wmix_options(int which) {
  MixOptions o;
  switch (which) {
    case 1:
      o.interactive_fraction = 0.5;
      break;
    case 2:
      o.interactive_fraction = 0.2;
      break;
    case 3:
      o.interactive_fraction = 0.8;
      break;
    default:
      throw std::out_of_range("wmix must be 1, 2 or 3");
  }
  return o;
}

}  // namespace hybridmr::workload
