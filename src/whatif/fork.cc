#include "whatif/fork.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "sim/log.h"

namespace hybridmr::whatif {

namespace {

// A lookahead child that outlives its horizon (the driver's run_until
// window ended first) unwinds into driver code it must never execute —
// most of which ends in a normal exit() that would report success for a
// run that never happened. The backstop turns that escape into a loud
// failure; _Exit skips the remaining handlers and any atexit side effects.
void escape_backstop() { std::_Exit(98); }

void write_all(int fd, const std::string& payload) {
  const char* p = payload.data();
  std::size_t left = payload.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // reader died; the parent will see a failed child anyway
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

std::string read_to_eof(int fd) {
  std::string out;
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

}  // namespace

// Common parent half: drain the pipe before reaping — a child with more
// than a pipe buffer of payload blocks in write() and would deadlock
// against waitpid.
ForkResult WhatIfEngine::collect(int read_fd, int pid) {
  ++stats_.forks;
  ForkResult result;
  result.payload = read_to_eof(read_fd);
  ::close(read_fd);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  result.ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  if (!result.ok) ++stats_.child_failures;
  return result;
}

// Common child half, run immediately after fork() returns 0.
void WhatIfEngine::enter_child(int read_fd) {
  ::close(read_fd);
  in_lookahead_ = true;
  std::atexit(&escape_backstop);
  if (options_.silence_child_logs) {
    sim::Log::threshold() = sim::LogLevel::kOff;
  }
}

ForkResult WhatIfEngine::run_isolated(
    const std::function<std::string()>& scenario) {
  assert(!sim_.running() &&
         "run_isolated() inside run() — use lookahead_in_event()");
  if (in_lookahead_) return {};  // children never fork again
  int fds[2];
  if (::pipe(fds) != 0) return {};
  // Flush stdio so buffered output is not duplicated into the child.
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return {};
  }
  if (pid == 0) {
    enter_child(fds[0]);
    write_all(fds[1], scenario());
    ::close(fds[1]);
    // _exit, not exit: the child shares the parent's atexit stack and
    // stdio, and under ASan must skip the leak check (a forked scenario
    // leaks the whole engine by design).
    ::_exit(0);
  }
  ::close(fds[1]);
  return collect(fds[0], pid);
}

WhatIfEngine::Lookahead WhatIfEngine::lookahead_in_event(
    const std::function<void()>& apply, sim::Duration horizon,
    const std::function<std::string()>& score) {
  assert(horizon.value() >= 0 && "negative lookahead horizon");
  if (in_lookahead_) return {};  // children never fork again
  int fds[2];
  if (::pipe(fds) != 0) return {};
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return {};
  }
  if (pid == 0) {
    enter_child(fds[0]);
    apply();
    // The score event both bounds the lookahead and keeps the child's
    // queue non-empty until then; its handler never returns. The caller
    // must now unwind out of the current event handler so the child's
    // event loop can run the horizon down.
    sim_.after(horizon, [fd = fds[1], score]() {
      write_all(fd, score());
      ::_exit(0);
    });
    return Lookahead{/*is_child=*/true, false, {}};
  }
  ::close(fds[1]);
  const ForkResult fr = collect(fds[0], pid);
  return Lookahead{/*is_child=*/false, fr.ok, fr.payload};
}

}  // namespace hybridmr::whatif
