// What-if engine: full-engine snapshot/fork by address-space clone.
//
// The state census (docs/SNAPSHOT.md) enumerates what a full-engine fork
// must preserve: owned values and heap state copied, shared primaries
// cloned exactly once, back-references re-pointed, every named Rng stream
// resumed in place. One mechanism satisfies all five obligations at byte
// fidelity for the single-threaded deterministic simulator: fork(2). The
// child is a copy-on-write clone of the whole address space, so every
// pointer-keyed map keeps its iteration order, every type-erased handler
// closure still reaches the same objects at the same addresses, and every
// Rng stream resumes mid-sequence — properties no field-by-field deep copy
// can reproduce through std::function's type erasure. Isolation is a
// kernel guarantee: nothing the child mutates is visible to the parent.
//
// Two entry points (docs/WHATIF.md has the lifecycle diagrams):
//
//   run_isolated(scenario)  — fork at an event boundary; the child runs
//     `scenario` to completion and its returned string travels back over a
//     pipe. The capacity-planner sweeps hundreds of these from one warmed
//     simulation.
//
//   lookahead_in_event(apply, horizon, score) — fork from *inside* a
//     running event handler (the IPS epoch). In the child the candidate
//     action is applied, a score event is scheduled `horizon` seconds out,
//     and the caller unwinds back into the event loop; when the horizon
//     event fires the child reports its score through the pipe and exits.
//     In the parent (virtual clock frozen at the cut) the call blocks
//     until the score arrives. The pending horizon event keeps the child's
//     queue non-empty, so the lookahead cannot drain early — but the
//     horizon must stay inside the driver's run_until window, or the
//     child's loop returns to driver code it must never execute (an
//     atexit backstop turns that escape into a loud non-zero exit).
//
// Children never fork again: in_lookahead() is true in the child and
// callers (the model-predictive IPS) fall back to their closed-form
// policy, which also keeps lookahead cost bounded. A child that aborts
// (armed audit invariant, crash) is reported as ok=false, never
// propagated: a what-if that dies is an answer, not an error.
#pragma once

#include <functional>
#include <string>

#include "sim/simulation.h"

namespace hybridmr::whatif {

/// Outcome of one forked scenario. `ok` is false when the fork itself
/// failed or the child exited abnormally (audit abort, crash, escape from
/// the lookahead horizon) — `payload` is then whatever arrived before it
/// died, usually empty.
struct ForkResult {
  bool ok = false;
  std::string payload;
};

class WhatIfEngine {
 public:
  struct Options {
    /// Raise the child's log threshold to silence lookahead chatter (the
    /// parent's sink would interleave both processes' lines).
    bool silence_child_logs = true;
  };

  struct Stats {
    int forks = 0;           ///< total fork(2) calls that succeeded
    int child_failures = 0;  ///< children that exited abnormally
  };

  explicit WhatIfEngine(sim::Simulation& sim)
      : WhatIfEngine(sim, Options{}) {}
  WhatIfEngine(sim::Simulation& sim, Options options)
      : sim_(sim), options_(options) {}

  WhatIfEngine(const WhatIfEngine&) = delete;
  WhatIfEngine& operator=(const WhatIfEngine&) = delete;

  /// True in a forked child (scenario or lookahead). Nested forks are
  /// refused — callers fall back to non-predictive policies.
  [[nodiscard]] bool in_lookahead() const { return in_lookahead_; }

  /// Forks the whole engine at an event boundary and runs `scenario` in
  /// the child; returns its string through a pipe. Must not be called
  /// from inside run() (use lookahead_in_event there) or from a child.
  ForkResult run_isolated(const std::function<std::string()>& scenario);

  /// Result of a lookahead fork. Exactly one of the two shapes comes back:
  /// in the parent `is_child` is false and ok/payload carry the child's
  /// report; in the child `is_child` is true and the caller must unwind
  /// out of the current event handler immediately (the scheduled horizon
  /// event finishes the lookahead and exits the process).
  struct Lookahead {
    bool is_child = false;
    bool ok = false;
    std::string payload;
  };

  /// Forks from inside a running event handler. The child applies `apply`
  /// and runs `horizon` seconds of simulated time further, then reports
  /// score() through the pipe. Returns the no-fork parent shape
  /// (ok=false) when forking is unavailable (already in a child, fork
  /// failure) — callers treat that as "no prediction".
  Lookahead lookahead_in_event(const std::function<void()>& apply,
                               sim::Duration horizon,
                               const std::function<std::string()>& score);

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  /// Parent half after a successful fork: reads the pipe to EOF *before*
  /// reaping (a child writing more than the pipe buffer would otherwise
  /// deadlock against waitpid), then collects the exit status.
  ForkResult collect(int read_fd, int pid);
  /// Child half: closes the read end, marks in_lookahead(), arms the
  /// escape backstop and silences logging per Options.
  void enter_child(int read_fd);

  sim::Simulation& sim_;
  Options options_;
  Stats stats_;
  bool in_lookahead_ = false;
};

}  // namespace hybridmr::whatif
