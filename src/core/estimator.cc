#include "core/estimator.h"

#include <algorithm>
#include <cmath>

#include "cluster/calibration.h"
#include "cluster/machine.h"
#include "stats/regression.h"

namespace hybridmr::core {

using cluster::ResourceKind;
using cluster::Resources;

void TaskModel::add(const TaskSample& sample) { samples_.push_back(sample); }

namespace {

/// Analytic fallback: the proportional-share speed model.
double analytic_rate(const Resources& alloc, const Resources& demand,
                     double base_rate) {
  double factor = 1.0;
  if (demand.cpu > 0) factor = std::min(factor, alloc.cpu / demand.cpu);
  if (demand.disk > 0) factor = std::min(factor, alloc.disk / demand.disk);
  if (demand.net > 0) factor = std::min(factor, alloc.net / demand.net);
  if (demand.memory > 0) {
    factor *= cluster::memory_pressure_factor(
        alloc.memory / demand.memory, cluster::Calibration::standard());
  }
  return base_rate * factor;
}

}  // namespace

double TaskModel::predict_rate(const Resources& alloc,
                               const Resources& demand) const {
  if (samples_.empty()) return 0;

  // Anchor: the full-allocation rate implied by each sample (observed rate
  // divided by that sample's starvation factor); the best such estimate
  // bounds the regressions and feeds the analytic fallback.
  double base = 0;
  for (const auto& s : samples_) {
    const double factor = analytic_rate(s.alloc, s.demand, 1.0);
    if (factor > 1e-9) base = std::max(base, s.rate / factor);
  }

  if (samples_.size() < 3) return analytic_rate(alloc, demand, base);

  // Fit the paper's per-resource model forms over the history and predict
  // multiplicatively relative to the anchor allocation.
  std::vector<double> cpu_x, mem_x, io_x, rate_y;
  for (const auto& s : samples_) {
    cpu_x.push_back(s.alloc.cpu);
    mem_x.push_back(s.demand.memory > 0 ? s.alloc.memory / s.demand.memory
                                        : 1.0);
    io_x.push_back(s.alloc.disk + s.alloc.net);
    rate_y.push_back(std::max(1e-6, s.rate));
  }

  double predicted = -1;
  if (demand.cpu > 0) {
    if (auto fit = stats::LinearRegression::fit(cpu_x, rate_y);
        fit && fit->r_squared() > 0.5) {
      predicted = std::max(predicted, fit->predict(alloc.cpu));
    }
  }
  if (demand.disk + demand.net > 0) {
    if (auto fit = stats::ExponentialRegression::fit(io_x, rate_y);
        fit && fit->r_squared() > 0.5) {
      predicted = std::max(predicted, fit->predict(alloc.disk + alloc.net));
    }
  }
  if (demand.memory > 0) {
    if (auto fit = stats::PiecewiseLinearRegression::fit(mem_x, rate_y);
        fit && fit->r_squared() > 0.5) {
      const double ratio =
          demand.memory > 0 ? alloc.memory / demand.memory : 1.0;
      predicted = std::max(predicted, fit->predict(ratio));
    }
  }
  if (predicted < 0) return analytic_rate(alloc, demand, base);
  return std::clamp(predicted, 0.0, base * 1.5);
}

double TaskModel::estimated_remaining_s() const {
  if (samples_.empty()) return 0;
  const TaskSample& s = samples_.back();
  const double remaining = std::max(0.0, 1.0 - s.progress);
  if (s.rate <= 1e-9) return remaining > 0 ? 1e9 : 0;
  return remaining / s.rate;
}

double TaskModel::estimated_remaining_at_full_s() const {
  if (samples_.empty()) return 0;
  const TaskSample& s = samples_.back();
  const double remaining = std::max(0.0, 1.0 - s.progress);
  const double rate = predict_rate(s.demand, s.demand);
  if (rate <= 1e-9) return remaining > 0 ? 1e9 : 0;
  return remaining / rate;
}

std::optional<ResourceKind> TaskModel::bottleneck() const {
  if (samples_.empty()) return std::nullopt;
  const TaskSample& s = samples_.back();
  ResourceKind worst = ResourceKind::kCpu;
  double worst_ratio = 1.0;
  for (int r = 0; r < cluster::kNumResources; ++r) {
    const auto kind = static_cast<ResourceKind>(r);
    const double demand = s.demand[kind];
    if (demand <= 1e-9) continue;
    const double ratio = s.alloc[kind] / demand;
    if (ratio < worst_ratio - 1e-9) {
      worst_ratio = ratio;
      worst = kind;
    }
  }
  if (worst_ratio >= 0.95) return std::nullopt;
  return worst;
}

Resources TaskModel::deficit() const {
  if (samples_.empty()) return {};
  const TaskSample& s = samples_.back();
  Resources d = s.demand - s.alloc;
  for (int r = 0; r < cluster::kNumResources; ++r) {
    auto kind = static_cast<ResourceKind>(r);
    if (d[kind] < 0) d[kind] = 0;
  }
  return d;
}

double TaskModel::interference_score(const Resources& node_capacity) const {
  if (samples_.empty()) return 0;
  return samples_.back().alloc.dominant_share(node_capacity);
}

void Estimator::observe(const mapred::TaskAttempt& attempt, double now) {
  const auto* key = &attempt;
  TaskSample sample;
  sample.time = now;
  sample.progress = attempt.progress();
  sample.demand = attempt.current_demand();
  sample.alloc = attempt.current_allocation();

  auto pit = last_progress_.find(key);
  auto tit = last_time_.find(key);
  if (pit != last_progress_.end() && tit != last_time_.end() &&
      now > tit->second) {
    sample.rate = (sample.progress - pit->second) / (now - tit->second);
    sample.rate = std::max(0.0, sample.rate);
    models_[key].add(sample);
  }
  last_progress_[key] = sample.progress;
  last_time_[key] = now;
}

const TaskModel* Estimator::model(const mapred::TaskAttempt* a) const {
  auto it = models_.find(a);
  return it != models_.end() ? &it->second : nullptr;
}

void Estimator::retain_only(const std::vector<mapred::TaskAttempt*>& live) {
  auto keep = [&](const mapred::TaskAttempt* a) {
    return std::find(live.begin(), live.end(), a) != live.end();
  };
  std::erase_if(models_,
                [&](const auto& kv) { return !keep(kv.first); });
  std::erase_if(last_progress_,
                [&](const auto& kv) { return !keep(kv.first); });
  std::erase_if(last_time_,
                [&](const auto& kv) { return !keep(kv.first); });
}

}  // namespace hybridmr::core
