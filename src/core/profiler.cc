#include "core/profiler.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "cluster/cluster.h"
#include "mapred/engine.h"
#include "mapred/scheduler.h"
#include "sim/simulation.h"
#include "stats/regression.h"
#include "storage/hdfs.h"

namespace hybridmr::core {

TrainingRunner make_simulated_runner(std::uint64_t seed) {
  return [seed](const mapred::JobSpec& spec, bool virtual_cluster,
                int cluster_size, double data_gb) {
    const auto& cal = cluster::Calibration::standard();
    sim::Simulation sim(seed + static_cast<std::uint64_t>(cluster_size) * 131 +
                        static_cast<std::uint64_t>(data_gb * 7));
    cluster::HybridCluster hc(sim, cal);
    storage::Hdfs hdfs(sim, cal);
    mapred::MapReduceEngine mr(sim, hdfs, cal,
                               std::make_unique<mapred::FairScheduler>());
    int hosts = cluster_size;
    if (virtual_cluster) {
      hosts = (cluster_size + 1) / 2;  // two VMs per host
      int made = 0;
      for (auto* host : hc.add_machines(hosts)) {
        for (auto* vm : hc.virtualize(*host, 2)) {
          if (made++ >= cluster_size) break;
          hdfs.add_datanode(*vm);
          mr.add_tracker(*vm);
        }
      }
    } else {
      for (auto* m : hc.add_machines(cluster_size)) {
        hdfs.add_datanode(*m);
        mr.add_tracker(*m);
      }
    }
    // Pin reduce parallelism to the physical host count so native/virtual
    // training runs are compared at equal logical reduce fan-out.
    mapred::JobSpec run_spec = spec.with_input_gb(data_gb);
    if (run_spec.num_reducers == 0) run_spec.num_reducers = hosts;
    mapred::Job* job = mr.submit(run_spec);
    sim.run();

    ProfileEntry entry;
    entry.job_name = spec.name;
    entry.virtual_cluster = virtual_cluster;
    entry.cluster_size = cluster_size;
    entry.data_gb = data_gb;
    entry.jct_s = job->jct();
    entry.map_s = job->map_phase_seconds();
    entry.reduce_s = job->reduce_phase_seconds();
    return entry;
  };
}

void JobProfiler::train(const mapred::JobSpec& spec, bool virtual_cluster,
                        std::span<const int> cluster_sizes,
                        std::span<const double> data_gbs, int runs) {
  for (int csize : cluster_sizes) {
    for (double dgb : data_gbs) {
      ProfileEntry avg;
      for (int r = 0; r < runs; ++r) {
        const ProfileEntry e = runner_(spec, virtual_cluster, csize, dgb);
        avg = e;  // keep identity fields
        if (r > 0) {
          // incremental averaging over runs
          const double w = 1.0 / (r + 1);
          avg.jct_s = avg.jct_s * (1 - w) + e.jct_s * w;
          avg.map_s = avg.map_s * (1 - w) + e.map_s * w;
          avg.reduce_s = avg.reduce_s * (1 - w) + e.reduce_s * w;
        }
      }
      db_->add(avg);
    }
  }
}

namespace {

using Estimate = JobProfiler::Estimate;

std::vector<double> column(const std::vector<ProfileEntry>& entries,
                           double ProfileEntry::*field) {
  std::vector<double> out;
  out.reserve(entries.size());
  for (const auto& e : entries) out.push_back(e.*field);
  return out;
}

/// Linear extrapolation of each phase against data size (Fig. 5(d)).
Estimate extrapolate_data(const std::vector<ProfileEntry>& entries,
                          double data_gb) {
  Estimate est;
  est.method = Estimate::Method::kDataExtrapolation;
  std::vector<double> x;
  for (const auto& e : entries) x.push_back(e.data_gb);
  auto predict = [&](double ProfileEntry::*field) {
    const auto y = column(entries, field);
    if (auto fit = stats::LinearRegression::fit(x, y)) {
      return std::max(0.0, fit->predict(data_gb));
    }
    return stats::interpolate(x, y, data_gb);
  };
  est.map_s = predict(&ProfileEntry::map_s);
  est.reduce_s = predict(&ProfileEntry::reduce_s);
  est.jct_s = predict(&ProfileEntry::jct_s);
  return est;
}

/// Per-phase extrapolation against cluster size: inverse law for the map
/// phase (Fig. 5(a,b)), piecewise-linear for the reduce phase (Fig. 5(c)).
Estimate extrapolate_cluster(std::vector<ProfileEntry> entries,
                             int cluster_size) {
  Estimate est;
  est.method = Estimate::Method::kClusterExtrapolation;
  std::sort(entries.begin(), entries.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              return a.cluster_size < b.cluster_size;
            });
  std::vector<double> x;
  for (const auto& e : entries) x.push_back(e.cluster_size);
  const auto map_y = column(entries, &ProfileEntry::map_s);
  const auto red_y = column(entries, &ProfileEntry::reduce_s);

  if (auto fit = stats::InverseRegression::fit(x, map_y)) {
    est.map_s = std::max(0.0, fit->predict(cluster_size));
  } else {
    est.map_s = stats::interpolate(x, map_y, cluster_size);
  }
  if (auto fit = stats::PiecewiseLinearRegression::fit(x, red_y)) {
    est.reduce_s = std::max(0.0, fit->predict(cluster_size));
  } else {
    est.reduce_s = stats::interpolate(x, red_y, cluster_size);
  }
  est.jct_s = est.map_s + est.reduce_s;
  return est;
}

}  // namespace

Estimate JobProfiler::estimate(const mapred::JobSpec& spec,
                               bool virtual_cluster, int cluster_size) const {
  const double data_gb = spec.input_gb;

  // Algorithm 1 line 2-3: exact match.
  if (auto exact =
          db_->lookup(spec.name, virtual_cluster, cluster_size, data_gb)) {
    Estimate est;
    est.method = Estimate::Method::kExact;
    est.jct_s = exact->jct_s;
    est.map_s = exact->map_s;
    est.reduce_s = exact->reduce_s;
    return est;
  }

  // Line 5-6: same cluster size, different data sizes -> linear in data.
  const auto same_cluster =
      db_->with_cluster_size(spec.name, virtual_cluster, cluster_size);
  std::set<double> data_points;
  for (const auto& e : same_cluster) data_points.insert(e.data_gb);
  if (data_points.size() >= 2) {
    return extrapolate_data(same_cluster, data_gb);
  }

  // Line 7-8: same data size, different cluster sizes -> per-phase fit.
  const auto same_data =
      db_->with_data_size(spec.name, virtual_cluster, data_gb);
  std::set<int> cluster_points;
  for (const auto& e : same_data) cluster_points.insert(e.cluster_size);
  if (cluster_points.size() >= 2) {
    return extrapolate_cluster(same_data, cluster_size);
  }

  // Fallback: nearest profile, scaled linearly in data and inversely in
  // cluster size (sub-linearly for the reduce phase).
  const auto all = db_->for_job(spec.name, virtual_cluster);
  if (all.empty()) return {};
  const ProfileEntry* nearest = &all[0];
  double best = 1e300;
  for (const auto& e : all) {
    const double d = std::abs(std::log(std::max(1e-6, e.data_gb / data_gb))) +
                     std::abs(std::log(static_cast<double>(e.cluster_size) /
                                       cluster_size));
    if (d < best) {
      best = d;
      nearest = &e;
    }
  }
  Estimate est;
  est.method = Estimate::Method::kScaled;
  const double data_ratio = data_gb / std::max(1e-6, nearest->data_gb);
  const double cluster_ratio =
      static_cast<double>(nearest->cluster_size) / cluster_size;
  est.map_s = nearest->map_s * data_ratio * cluster_ratio;
  est.reduce_s =
      nearest->reduce_s * data_ratio * std::sqrt(cluster_ratio);
  est.jct_s = est.map_s + est.reduce_s;
  return est;
}

}  // namespace hybridmr::core
