#include "core/reconfigurator.h"

#include <algorithm>

#include "sim/log.h"
#include "telemetry/telemetry.h"

namespace hybridmr::core {

using cluster::Machine;
using cluster::VirtualMachine;

bool Reconfigurator::idle(const Machine& machine) const {
  auto busy = [&](const cluster::ExecutionSite& site) {
    const mapred::TaskTracker* tracker = mr_->tracker_on(site);
    return tracker != nullptr && !tracker->running().empty();
  };
  if (busy(machine)) return false;
  for (const auto* vm : machine.vms()) {
    if (busy(*vm)) return false;
  }
  return true;
}

bool Reconfigurator::decommission_site(cluster::ExecutionSite& site) {
  const mapred::TaskTracker* tracker = mr_->tracker_on(site);
  if (tracker != nullptr) {
    if (!tracker->running().empty()) return false;
    if (!mr_->remove_tracker(site)) return false;
  }
  if (hdfs_->datanode_on(&site) != nullptr) {
    if (!hdfs_->remove_datanode(site)) return false;
  }
  return true;
}

std::vector<VirtualMachine*> Reconfigurator::virtualize_node(
    Machine& machine, int vms_per_host) {
  if (!idle(machine) || !machine.vms().empty()) return {};
  if (!decommission_site(machine)) return {};

  std::vector<VirtualMachine*> vms;
  const auto& cal = cluster_->calibration();
  const sim::CoreShare vcpus{std::max(1.0, cal.pm_cores / vms_per_host)};
  const sim::MegaBytes memory = vms_per_host <= 2
                                    ? cal.pm_memory_mb / (2.0 * vms_per_host)
                                    : cal.pm_memory_mb / vms_per_host;
  for (int i = 0; i < vms_per_host; ++i) {
    VirtualMachine* vm = cluster_->add_vm(machine, "", vcpus, memory);
    hdfs_->add_datanode(*vm);
    mr_->add_tracker(*vm);
    vms.push_back(vm);
  }
  ++stats_.virtualized;
  sim::log_info(cluster_->simulation().now(), "reconfig",
                machine.name() + ": native -> " +
                    std::to_string(vms_per_host) + " VMs");
  if (tel_ != nullptr) {
    tel_->registry.counter("reconfig.virtualized").add();
    tel_->trace.instant(cluster_->simulation().now(),
                        telemetry::EventKind::kReconfiguration, "virtualize",
                        machine.name(),
                        {{"vms", telemetry::json_num(vms_per_host)}});
  }
  mr_->dispatch();
  return vms;
}

bool Reconfigurator::nativize_host(Machine& machine) {
  if (!idle(machine)) return false;
  // Decommission and detach every resident VM.
  const std::vector<VirtualMachine*> vms = machine.vms();
  for (VirtualMachine* vm : vms) {
    if (mr_->tracker_on(*vm) != nullptr &&
        !mr_->tracker_on(*vm)->running().empty()) {
      return false;
    }
  }
  for (VirtualMachine* vm : vms) {
    if (!decommission_site(*vm)) return false;
    machine.detach_vm(vm);
  }
  hdfs_->add_datanode(machine);
  mr_->add_tracker(machine);
  ++stats_.nativized;
  sim::log_info(cluster_->simulation().now(), "reconfig",
                machine.name() + ": " + std::to_string(vms.size()) +
                    " VMs -> native");
  if (tel_ != nullptr) {
    tel_->registry.counter("reconfig.nativized").add();
    tel_->trace.instant(
        cluster_->simulation().now(), telemetry::EventKind::kReconfiguration,
        "nativize", machine.name(),
        {{"vms", telemetry::json_num(static_cast<double>(vms.size()))}});
  }
  mr_->dispatch();
  return true;
}

}  // namespace hybridmr::core
