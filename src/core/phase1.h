// Phase I scheduler: initial placement of jobs between the physical and
// virtual partitions of the hybrid cluster (paper §III-A, Algorithm 2).
//
// Interactive (transactional) jobs are assigned to the virtual cluster by
// default. For batch MapReduce jobs the scheduler profiles the job on small
// native and virtual training clusters, estimates its JCT in both
// environments (Algorithm 1), and steers it:
//   - with a desired completion time (SLO): virtual-estimate >= desired
//     -> physical cluster, else virtual (Algorithm 2 lines 6-9);
//   - without an SLO: place on the virtual cluster unless the expected
//     virtualization overhead is significant (above a threshold).
#pragma once

#include <string>
#include <vector>

#include "core/profiler.h"
#include "mapred/job.h"
#include "mapred/job_spec.h"

namespace hybridmr::core {

class PhaseOneScheduler {
 public:
  struct Config {
    /// Sizes of the two partitions of the production hybrid cluster, used
    /// as the estimation targets.
    int native_cluster_size = 24;
    int virtual_cluster_size = 48;
    /// Virtualization overhead (relative JCT increase) considered
    /// "significant" when the job carries no explicit SLO. Calibrated to
    /// the unloaded training cluster, where overheads are smaller than on
    /// a busy production cluster (see EXPERIMENTS.md).
    double overhead_threshold = 0.065;
    /// Training-cluster shapes (paper: "a small training cluster"), in
    /// physical machines. The virtual training partition packs
    /// `vms_per_host` VMs onto the same number of PMs, so the native /
    /// virtual comparison is at equal hardware — the paper's testbed ratio
    /// (24 PMs vs 48 VMs on 24 PMs).
    std::vector<int> training_cluster_sizes = {2, 4};
    std::vector<double> training_data_gbs = {1.0, 2.0};
    int training_runs = 1;
    int vms_per_host = 2;
    /// Train lazily on first sight of a job (else estimation uses whatever
    /// profiles already exist).
    bool auto_train = true;
  };

  struct Decision {
    mapred::PlacementPool pool = mapred::PlacementPool::kVirtualOnly;
    /// Equal-hardware training-cluster estimates (overhead comparison).
    JobProfiler::Estimate native_estimate;
    JobProfiler::Estimate virtual_estimate;
    /// Estimate at the production virtual partition size (SLO check).
    JobProfiler::Estimate virtual_production;
    double overhead = 0;  // (virtual - native) / native, equal hardware
    std::string reason;
  };

  PhaseOneScheduler(JobProfiler& profiler, Config config)
      : profiler_(&profiler), config_(std::move(config)) {}

  /// Algorithm 2 for one batch job.
  Decision place(const mapred::JobSpec& spec);

  /// Ensures training profiles exist for this job in both environments.
  void ensure_trained(const mapred::JobSpec& spec);

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] JobProfiler& profiler() { return *profiler_; }

 private:
  JobProfiler* profiler_;
  Config config_;
};

}  // namespace hybridmr::core
