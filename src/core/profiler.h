// JobProfiler: Phase I profiling and JCT estimation (Algorithm 1).
//
// Training runs execute the job on a small representative cluster (the
// paper's "training cluster" with both physical and virtual partitions);
// here each training run is a fresh sub-simulation. Estimation follows
// Algorithm 1 exactly:
//   1. exact (cluster size, data size) match -> stored JCT
//   2. same cluster size, other data sizes   -> linear extrapolation
//      (Fig. 5(d): JCT is linear in data size)
//   3. same data size, other cluster sizes   -> per-phase extrapolation:
//      map time follows an inverse law in cluster size (Fig. 5(b)),
//      reduce time a piecewise-linear relation (Fig. 5(c))
//   4. otherwise -> nearest-profile scaling (data ratio x cluster ratio)
#pragma once

#include <functional>
#include <span>

#include "core/profile_db.h"
#include "mapred/job_spec.h"

namespace hybridmr::core {

/// Runs one training execution and reports the measured profile.
using TrainingRunner = std::function<ProfileEntry(
    const mapred::JobSpec& spec, bool virtual_cluster, int cluster_size,
    double data_gb)>;

/// The default runner: a fresh sub-simulation with `cluster_size` native
/// nodes (or VMs packed two per host), stock Hadoop configuration.
TrainingRunner make_simulated_runner(std::uint64_t seed = 1234);

class JobProfiler {
 public:
  struct Estimate {
    enum class Method {
      kNone,                 // no profiles at all
      kExact,                // Algorithm 1 line 3
      kDataExtrapolation,    // Algorithm 1 line 6
      kClusterExtrapolation, // Algorithm 1 line 8
      kScaled,               // nearest-profile fallback
    };
    double jct_s = 0;
    double map_s = 0;
    double reduce_s = 0;
    Method method = Method::kNone;

    [[nodiscard]] bool valid() const { return method != Method::kNone; }
  };

  JobProfiler(ProfileDatabase& db, TrainingRunner runner)
      : db_(&db), runner_(std::move(runner)) {}

  /// Populates the database: runs the job on each (cluster size, data size)
  /// combination, averaging over `runs` executions (the paper averages 3).
  void train(const mapred::JobSpec& spec, bool virtual_cluster,
             std::span<const int> cluster_sizes,
             std::span<const double> data_gbs, int runs = 1);

  /// Algorithm 1: estimated JCT of `spec` on `cluster_size` nodes.
  [[nodiscard]] Estimate estimate(const mapred::JobSpec& spec,
                                  bool virtual_cluster,
                                  int cluster_size) const;

  [[nodiscard]] const ProfileDatabase& database() const { return *db_; }
  [[nodiscard]] ProfileDatabase& database() { return *db_; }

 private:
  ProfileDatabase* db_;
  TrainingRunner runner_;
};

}  // namespace hybridmr::core
