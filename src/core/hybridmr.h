// HybridMR: the 2-phase hierarchical scheduler for hybrid data centers
// (the paper's contribution, §III, Fig. 4).
//
//   Phase I  — profiles each incoming MapReduce job on small native and
//              virtual training clusters and steers its placement between
//              the physical and virtual partitions (Algorithms 1 and 2).
//              Interactive applications go to the virtual cluster.
//   Phase II — on the virtual cluster, the DRM performs dynamic resource
//              orchestration for batch tasks and the IPS protects the SLAs
//              of collocated interactive applications (Algorithm 3).
//
// Usage: build a cluster + Hdfs + MapReduceEngine with trackers on both
// native nodes and VMs, wrap them in a HybridMRScheduler, call start(),
// then submit jobs and deploy interactive apps through it.
#pragma once

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "core/drm.h"
#include "core/estimator.h"
#include "core/ips.h"
#include "core/phase1.h"
#include "core/profiler.h"
#include "interactive/app.h"
#include "interactive/sla.h"
#include "mapred/engine.h"
#include "storage/hdfs.h"
#include "whatif/fork.h"

namespace hybridmr::core {

struct HybridMROptions {
  PhaseOneScheduler::Config phase1;
  DrmOptions drm;
  IpsOptions ips;
  bool enable_phase1 = true;
  bool enable_drm = true;
  bool enable_ips = true;
  /// Online profiling (paper §III-A1): every production run is fed back
  /// into the profile database, sharpening future placements.
  bool online_profiling = true;
  std::uint64_t profiling_seed = 1234;
};

class HybridMRScheduler {
 public:
  HybridMRScheduler(sim::Simulation& sim, cluster::HybridCluster& cluster,
                    storage::Hdfs& hdfs, mapred::MapReduceEngine& mr,
                    HybridMROptions options);

  HybridMRScheduler(sim::Simulation& sim, cluster::HybridCluster& cluster,
                    storage::Hdfs& hdfs, mapred::MapReduceEngine& mr)
      : HybridMRScheduler(sim, cluster, hdfs, mr, HybridMROptions{}) {}

  HybridMRScheduler(const HybridMRScheduler&) = delete;
  HybridMRScheduler& operator=(const HybridMRScheduler&) = delete;

  /// Starts the Phase II control loops (DRM epochs + IPS monitoring).
  void start();
  void stop();

  /// Submits a batch job through Phase I placement.
  mapred::Job* submit(const mapred::JobSpec& spec);

  /// The Phase I decision made for the most recent submit().
  [[nodiscard]] const PhaseOneScheduler::Decision& last_decision() const {
    return last_decision_;
  }

  /// Deploys an interactive application on the virtual cluster (least
  /// loaded VM unless `site` is given), registers it with the SLA monitor
  /// and starts it.
  interactive::InteractiveApp& deploy_interactive(
      const interactive::AppParams& params, int clients,
      cluster::ExecutionSite* site = nullptr);

  // --- component access ---
  [[nodiscard]] JobProfiler& profiler() { return profiler_; }
  [[nodiscard]] PhaseOneScheduler& phase1() { return phase1_; }
  [[nodiscard]] DynamicResourceManager& drm() { return drm_; }
  [[nodiscard]] InterferencePreventionSystem& ips() { return ips_; }
  /// The what-if engine backing model-predictive IPS arbitration; present
  /// whenever `options.ips.model_predictive` is set (docs/WHATIF.md).
  [[nodiscard]] whatif::WhatIfEngine* whatif() { return whatif_.get(); }
  [[nodiscard]] interactive::SlaMonitor& sla_monitor() { return monitor_; }
  [[nodiscard]] Estimator& estimator() { return estimator_; }
  [[nodiscard]] const HybridMROptions& options() const { return options_; }
  [[nodiscard]] const std::vector<std::unique_ptr<interactive::InteractiveApp>>&
  apps() const {
    return apps_;
  }

  /// Counts of Hadoop nodes per partition (from the engine's trackers).
  [[nodiscard]] int native_nodes() const;
  [[nodiscard]] int virtual_nodes() const;

  /// Attaches the whole Phase I + Phase II stack (DRM, IPS, deployed and
  /// future interactive apps) to a telemetry hub. Null detaches.
  void set_telemetry(telemetry::Hub* hub);

 private:
  sim::Simulation& sim_;
  cluster::HybridCluster& cluster_;
  mapred::MapReduceEngine& mr_;
  HybridMROptions options_;
  ProfileDatabase profile_db_;
  JobProfiler profiler_;
  PhaseOneScheduler phase1_;
  Estimator estimator_;
  DynamicResourceManager drm_;
  interactive::SlaMonitor monitor_;
  InterferencePreventionSystem ips_;
  std::unique_ptr<whatif::WhatIfEngine> whatif_;
  PhaseOneScheduler::Decision last_decision_;
  std::vector<std::unique_ptr<interactive::InteractiveApp>> apps_;
  telemetry::Hub* tel_ = nullptr;
};

}  // namespace hybridmr::core
