#include "core/ips.h"

#include <algorithm>
#include <limits>

#include "sim/log.h"
#include "telemetry/telemetry.h"

namespace hybridmr::core {

using cluster::Machine;
using cluster::Resources;
using cluster::VirtualMachine;
using mapred::TaskAttempt;

std::vector<TaskAttempt*> Arbiter::rank_interferers(
    const Machine& host, const std::vector<TaskAttempt*>& running) const {
  std::vector<std::pair<double, TaskAttempt*>> scored;
  for (TaskAttempt* a : running) {
    if (!a->running()) continue;
    if (a->site().host_machine() != &host) continue;
    const TaskModel* model = estimator_->model(a);
    double score;
    if (model != nullptr && !model->empty()) {
      score = model->interference_score(host.capacity());
    } else {
      score = a->current_allocation().dominant_share(host.capacity());
    }
    scored.emplace_back(score, a);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& x, const auto& y) {
    if (x.first != y.first) return x.first > y.first;
    if (x.second->started_at() != y.second->started_at()) {
      return x.second->started_at() < y.second->started_at();
    }
    return x.second->task().index() < y.second->task().index();
  });
  std::vector<TaskAttempt*> out;
  out.reserve(scored.size());
  for (auto& [score, a] : scored) out.push_back(a);
  return out;
}

Machine* Arbiter::best_fit_host(
    const cluster::HybridCluster& cluster, const Resources& needed,
    const std::vector<const Machine*>& excluded) const {
  Machine* best = nullptr;
  double best_headroom = std::numeric_limits<double>::infinity();
  for (const auto& m : cluster.machines()) {
    if (!m->powered()) continue;
    if (std::find(excluded.begin(), excluded.end(), m.get()) !=
        excluded.end()) {
      continue;
    }
    // Spare capacity on the dominant dimensions.
    const double spare_cpu =
        m->capacity().cpu * (1.0 - m->utilization(cluster::ResourceKind::kCpu));
    const double spare_mem =
        m->capacity().memory *
        (1.0 - m->utilization(cluster::ResourceKind::kMemory));
    if (spare_cpu < needed.cpu || spare_mem < needed.memory) continue;
    // BestFit: tightest host that still fits.
    const double headroom = spare_cpu / std::max(0.1, needed.cpu) +
                            spare_mem / std::max(64.0, needed.memory);
    if (headroom < best_headroom) {
      best_headroom = headroom;
      best = m.get();
    }
  }
  return best;
}

InterferencePreventionSystem::InterferencePreventionSystem(
    sim::Simulation& sim, mapred::MapReduceEngine& mr,
    cluster::HybridCluster& cluster, interactive::SlaMonitor& monitor,
    Estimator& estimator, IpsOptions options)
    : sim_(sim),
      mr_(mr),
      cluster_(cluster),
      monitor_(monitor),
      estimator_(estimator),
      options_(options),
      arbiter_(estimator) {}

void InterferencePreventionSystem::prune_dead_actions() {
  std::erase_if(actions_, [](const auto& kv) {
    return !kv.first->running();
  });
}

void InterferencePreventionSystem::escalate(TaskAttempt& attempt) {
  auto it = actions_.find(&attempt);
  if (it == actions_.end()) {
    // Level 1: throttle the task's shares.
    Resources caps = attempt.current_demand() * options_.throttle_factor;
    caps.memory = attempt.caps().memory;  // heap cannot shrink in flight
    attempt.set_caps(caps);
    actions_[&attempt] = ActionLevel::kThrottled;
    ++stats_.throttles;
    sim::log_info(sim_.now(), "ips", "throttle " + attempt.task().job().spec().name);
    note_action("throttle", attempt.label(), attempt.site().name());
    return;
  }
  if (it->second == ActionLevel::kThrottled) {
    attempt.set_paused(true);
    it->second = ActionLevel::kPaused;
    ++stats_.pauses;
    sim::log_info(sim_.now(), "ips", "pause " + attempt.task().job().spec().name);
    note_action("pause", attempt.label(), attempt.site().name());
    return;
  }
  if (options_.allow_requeue) {
    // Level 3: evict — kill the attempt and let the JobTracker rerun it
    // elsewhere (the paper: "the VM running the task ... can even be
    // aborted; correctness is preserved by speculative re-execution").
    const std::string label = attempt.label();
    const std::string track = attempt.site().name();
    actions_.erase(it);
    mr_.requeue(attempt, /*ban_tracker=*/true);
    ++stats_.requeues;
    sim::log_info(sim_.now(), "ips", "requeue task");
    note_action("requeue", label, track);
  }
}

void InterferencePreventionSystem::migrate_batch_vm(
    const Machine& violated_host) {
  if (!options_.allow_vm_migration) return;
  // A VM on the violated host is a migration candidate when it hosts batch
  // work but no interactive application (we must not move the app itself).
  const auto running = mr_.running_attempts();
  for (auto* vm : violated_host.vms()) {
    if (vm->migrating()) continue;
    bool hosts_batch = false;
    bool hosts_interactive = false;
    for (const auto& w : vm->workloads()) {
      if (!w->finite()) hosts_interactive = true;
    }
    for (TaskAttempt* a : running) {
      if (a->running() && &a->site() == vm) hosts_batch = true;
    }
    if (!hosts_batch || hosts_interactive) continue;

    std::vector<const Machine*> excluded{&violated_host};
    // Also exclude any host currently violating an SLA.
    for (auto* app : monitor_.violators()) {
      excluded.push_back(app->site().host_machine());
    }
    Resources needed;
    needed.cpu = vm->vcpus().value() * 0.5;
    needed.memory = vm->memory_mb().value();
    Machine* dest = arbiter_.best_fit_host(cluster_, needed, excluded);
    if (dest != nullptr &&
        cluster_.migrator().migrate(*vm, *dest)) {
      ++stats_.vm_migrations;
      sim::log_info(sim_.now(), "ips",
                    "migrate " + vm->name() + " -> " + dest->name());
      note_action("migrate_vm", vm->name() + "->" + dest->name(),
                  violated_host.name());
      return;  // one migration per epoch
    }
  }
}

void InterferencePreventionSystem::mitigate(interactive::InteractiveApp& app) {
  Machine* host = app.site().host_machine();
  if (host == nullptr) return;
  // Violating again shortly after a restore: require a longer healthy
  // streak before backing off next time (exponential, capped).
  auto last = last_restore_.find(host);
  if (last != last_restore_.end() &&
      sim_.now() - last->second < 6 * options_.epoch_s) {
    int& required = required_streak_[host];
    required = std::min(64, std::max(options_.restore_streak, required) * 2);
  }
  const auto running = mr_.running_attempts();
  const auto ranked = arbiter_.rank_interferers(*host, running);

  int applied = 0;
  for (TaskAttempt* a : ranked) {
    if (applied >= options_.max_actions_per_epoch) break;
    escalate(*a);
    ++applied;
  }
  if (ranked.empty()) {
    // Interference is coming from a neighbouring VM's batch work that is
    // not task-addressable from here; fall back to VM migration.
    migrate_batch_vm(*host);
  } else if (applied > 0 && ranked.size() > static_cast<std::size_t>(
                                applied)) {
    migrate_batch_vm(*host);
  }
}

void InterferencePreventionSystem::restore_where_healthy() {
  // Track per-host healthy streaks: a host is healthy when every resident
  // app sits below margin * SLA. Actions step down only after
  // `restore_streak` consecutive healthy epochs (hysteresis), and only
  // `max_restores_per_epoch` at a time (gradual back-off).
  std::map<const Machine*, bool> host_healthy;
  for (auto* app : monitor_.apps()) {
    if (!app->running()) continue;
    const Machine* host = app->site().host_machine();
    const bool ok = sim::Duration{app->response_time_s()} <=
                    app->params().sla_s * options_.restore_margin;
    auto it = host_healthy.find(host);
    host_healthy[host] = it == host_healthy.end() ? ok : (it->second && ok);
  }
  for (const auto& [host, ok] : host_healthy) {
    if (ok) {
      ++healthy_streak_[host];
    } else {
      healthy_streak_[host] = 0;
    }
  }

  int restored = 0;
  std::vector<TaskAttempt*> to_restore;
  for (auto& [attempt, level] : actions_) {
    const Machine* host = attempt->site().host_machine();
    const bool monitored = host_healthy.contains(host);
    const int needed =
        std::max(options_.restore_streak,
                 monitored && required_streak_.contains(host)
                     ? required_streak_.at(host)
                     : 0);
    const bool eligible = !monitored || healthy_streak_[host] >= needed;
    if (eligible) to_restore.push_back(attempt);
  }
  // Deterministic restore order: oldest attempt first (the action map is
  // keyed by pointer, whose order is not reproducible).
  std::sort(to_restore.begin(), to_restore.end(),
            [](const TaskAttempt* a, const TaskAttempt* b) {
              if (a->started_at() != b->started_at()) {
                return a->started_at() < b->started_at();
              }
              return a->task().index() < b->task().index();
            });
  for (TaskAttempt* a : to_restore) {
    if (restored >= options_.max_restores_per_epoch) break;
    auto it = actions_.find(a);
    if (it->second == ActionLevel::kPaused) {
      a->set_paused(false);
      it->second = ActionLevel::kThrottled;
    } else {
      a->set_caps(a->base_caps());
      actions_.erase(it);
    }
    ++stats_.restores;
    ++restored;
    last_restore_[a->site().host_machine()] = sim_.now();
    note_action("restore", a->label(), a->site().name());
  }
}

void InterferencePreventionSystem::note_action(const char* action,
                                               const std::string& target,
                                               const std::string& track) {
  if (tel_ == nullptr) return;
  tel_->registry.counter(std::string("ips.") + action + "s").add();
  tel_->trace.instant(sim_.now(), telemetry::EventKind::kIpsAction, action,
                      track, {{"target", target}});
}

void InterferencePreventionSystem::epoch() {
  prune_dead_actions();
  const auto violators = monitor_.violators();
  stats_.violations_seen += static_cast<int>(violators.size());
  // (Violation onsets are traced by the apps themselves; the IPS counts
  // how many violator-epochs it had to arbitrate.)
  if (tel_ != nullptr && !violators.empty()) {
    tel_->registry.counter("ips.violations_seen")
        .add(static_cast<double>(violators.size()));
  }
  for (auto* app : violators) mitigate(*app);
  restore_where_healthy();
}

void InterferencePreventionSystem::start() {
  if (ticker_.active()) return;
  ticker_ = sim_.every(options_.epoch_s, [this]() { epoch(); },
                       options_.epoch_s);
}

void InterferencePreventionSystem::stop() { ticker_.cancel(); }

}  // namespace hybridmr::core
