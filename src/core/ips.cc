#include "core/ips.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "sim/log.h"
#include "telemetry/telemetry.h"
#include "whatif/fork.h"

namespace hybridmr::core {

using cluster::Machine;
using cluster::Resources;
using cluster::VirtualMachine;
using mapred::TaskAttempt;

std::vector<TaskAttempt*> Arbiter::rank_interferers(
    const Machine& host, const std::vector<TaskAttempt*>& running) const {
  std::vector<std::pair<double, TaskAttempt*>> scored;
  for (TaskAttempt* a : running) {
    if (!a->running()) continue;
    if (a->site().host_machine() != &host) continue;
    const TaskModel* model = estimator_->model(a);
    double score;
    if (model != nullptr && !model->empty()) {
      score = model->interference_score(host.capacity());
    } else {
      score = a->current_allocation().dominant_share(host.capacity());
    }
    scored.emplace_back(score, a);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& x, const auto& y) {
    if (x.first != y.first) return x.first > y.first;
    if (x.second->started_at() != y.second->started_at()) {
      return x.second->started_at() < y.second->started_at();
    }
    return x.second->task().index() < y.second->task().index();
  });
  std::vector<TaskAttempt*> out;
  out.reserve(scored.size());
  for (auto& [score, a] : scored) out.push_back(a);
  return out;
}

Machine* Arbiter::best_fit_host(
    const cluster::HybridCluster& cluster, const Resources& needed,
    const std::vector<const Machine*>& excluded) const {
  Machine* best = nullptr;
  double best_headroom = std::numeric_limits<double>::infinity();
  for (const auto& m : cluster.machines()) {
    if (!m->powered()) continue;
    if (std::find(excluded.begin(), excluded.end(), m.get()) !=
        excluded.end()) {
      continue;
    }
    // Spare capacity on the dominant dimensions.
    const double spare_cpu =
        m->capacity().cpu * (1.0 - m->utilization(cluster::ResourceKind::kCpu));
    const double spare_mem =
        m->capacity().memory *
        (1.0 - m->utilization(cluster::ResourceKind::kMemory));
    if (spare_cpu < needed.cpu || spare_mem < needed.memory) continue;
    // BestFit: tightest host that still fits.
    const double headroom = spare_cpu / std::max(0.1, needed.cpu) +
                            spare_mem / std::max(64.0, needed.memory);
    if (headroom < best_headroom) {
      best_headroom = headroom;
      best = m.get();
    }
  }
  return best;
}

InterferencePreventionSystem::InterferencePreventionSystem(
    sim::Simulation& sim, mapred::MapReduceEngine& mr,
    cluster::HybridCluster& cluster, interactive::SlaMonitor& monitor,
    Estimator& estimator, IpsOptions options)
    : sim_(sim),
      mr_(mr),
      cluster_(cluster),
      monitor_(monitor),
      estimator_(estimator),
      options_(options),
      arbiter_(estimator) {
  // Event-driven action cleanup: every attempt death funnels through
  // TaskTracker::release, so the action map never holds a dead attempt
  // past the instant it dies — owns() answers correctly between epochs
  // (the DRM consults it mid-epoch) and a chaos teardown cannot leave
  // throttle/pause state behind.
  release_observer_token_ = mr_.add_release_observer(
      [this](const TaskAttempt& attempt) {
        actions_.erase(const_cast<TaskAttempt*>(&attempt));
      });
}

InterferencePreventionSystem::~InterferencePreventionSystem() {
  mr_.remove_release_observer(release_observer_token_);
}

void InterferencePreventionSystem::prune_stale_state() {
  // Backstop only: the release observer erases these the moment an
  // attempt dies. Kept because an epoch must never arbitrate over a dead
  // attempt even if observer wiring is bypassed.
  std::erase_if(actions_,
                [](const auto& kv) { return !kv.first->running(); });
  // A crashed (powered-off) machine keeps no hysteresis: its streaks and
  // flap ratchet describe a colocation that no longer exists, and a
  // reboot starts clean. Without this the per-host maps grow without
  // bound under chaos schedules.
  const auto host_down = [](const auto& kv) {
    return kv.first == nullptr || !kv.first->powered();
  };
  std::erase_if(healthy_streak_, host_down);
  std::erase_if(required_streak_, host_down);
  std::erase_if(last_restore_, [&](const auto& kv) {
    if (kv.first == nullptr || !kv.first->powered()) return true;
    // Restores old enough to be outside the flap window are inert for the
    // ratchet check; drop them so the map stays bounded on long runs.
    return sim_.now() - kv.second >= 6 * options_.epoch_s &&
           !required_streak_.contains(kv.first);
  });
}

int InterferencePreventionSystem::required_streak(const Machine& host) const {
  const auto it = required_streak_.find(&host);
  return it == required_streak_.end() ? options_.restore_streak : it->second;
}

bool InterferencePreventionSystem::tracks_host(const Machine& host) const {
  return healthy_streak_.contains(&host) ||
         required_streak_.contains(&host) || last_restore_.contains(&host);
}

double InterferencePreventionSystem::batch_progress() const {
  double done = 0;
  for (const auto& job : mr_.jobs()) {
    done += job->maps_done() + job->reduces_done();
  }
  return done;
}

void InterferencePreventionSystem::escalate(TaskAttempt& attempt) {
  auto it = actions_.find(&attempt);
  if (it == actions_.end()) {
    // Level 1: throttle the task's shares.
    Resources caps = attempt.current_demand() * options_.throttle_factor;
    caps.memory = attempt.caps().memory;  // heap cannot shrink in flight
    attempt.set_caps(caps);
    actions_[&attempt] = ActionLevel::kThrottled;
    ++stats_.throttles;
    sim::log_info(sim_.now(), "ips", "throttle " + attempt.task().job().spec().name);
    note_action("throttle", attempt.label(), attempt.site().name());
    return;
  }
  if (it->second == ActionLevel::kThrottled) {
    attempt.set_paused(true);
    it->second = ActionLevel::kPaused;
    ++stats_.pauses;
    sim::log_info(sim_.now(), "ips", "pause " + attempt.task().job().spec().name);
    note_action("pause", attempt.label(), attempt.site().name());
    return;
  }
  if (options_.allow_requeue) {
    // Level 3: evict — kill the attempt and let the JobTracker rerun it
    // elsewhere (the paper: "the VM running the task ... can even be
    // aborted; correctness is preserved by speculative re-execution").
    const std::string label = attempt.label();
    const std::string track = attempt.site().name();
    actions_.erase(it);
    mr_.requeue(attempt, /*ban_tracker=*/true);
    ++stats_.requeues;
    sim::log_info(sim_.now(), "ips", "requeue task");
    note_action("requeue", label, track);
  }
}

void InterferencePreventionSystem::migrate_batch_vm(
    const Machine& violated_host) {
  if (!options_.allow_vm_migration) return;
  // A VM on the violated host is a migration candidate when it hosts batch
  // work but no interactive application (we must not move the app itself).
  const auto running = mr_.running_attempts();
  for (auto* vm : violated_host.vms()) {
    if (vm->migrating()) continue;
    bool hosts_batch = false;
    bool hosts_interactive = false;
    for (const auto& w : vm->workloads()) {
      if (!w->finite()) hosts_interactive = true;
    }
    for (TaskAttempt* a : running) {
      if (a->running() && &a->site() == vm) hosts_batch = true;
    }
    if (!hosts_batch || hosts_interactive) continue;

    std::vector<const Machine*> excluded{&violated_host};
    // Also exclude any host currently violating an SLA.
    for (auto* app : monitor_.violators()) {
      excluded.push_back(app->site().host_machine());
    }
    Resources needed;
    needed.cpu = vm->vcpus().value() * 0.5;
    needed.memory = vm->memory_mb().value();
    Machine* dest = arbiter_.best_fit_host(cluster_, needed, excluded);
    if (dest != nullptr &&
        cluster_.migrator().migrate(*vm, *dest)) {
      ++stats_.vm_migrations;
      sim::log_info(sim_.now(), "ips",
                    "migrate " + vm->name() + " -> " + dest->name());
      note_action("migrate_vm", vm->name() + "->" + dest->name(),
                  violated_host.name());
      return;  // one migration per epoch
    }
  }
}

namespace {

/// What one candidate's lookahead child reported from the horizon.
struct Prediction {
  bool ok = false;
  double viol_frac = 1.0;
  double resp_s = std::numeric_limits<double>::infinity();
  double done = 0;
};

Prediction parse_prediction(const std::string& payload) {
  Prediction p;
  p.ok = std::sscanf(payload.c_str(), "viol=%lf resp=%lf done=%lf",
                     &p.viol_frac, &p.resp_s, &p.done) == 3;
  return p;
}

}  // namespace

InterferencePreventionSystem::PredictiveOutcome
InterferencePreventionSystem::mitigate_predictive(
    interactive::InteractiveApp& app, const Machine& host,
    const std::vector<TaskAttempt*>& ranked) {
  // Candidates ordered cheapest first: equally-good predictions resolve
  // toward the least invasive action ("hold" wins when acting buys
  // nothing — the advantage a closed-form policy cannot have).
  std::vector<std::pair<const char*, std::function<void()>>> candidates;
  candidates.emplace_back("hold", []() {});
  const int escalations =
      std::min<int>(options_.max_actions_per_epoch,
                    static_cast<int>(ranked.size()));
  if (escalations >= 1) {
    candidates.emplace_back("escalate", [this, &ranked]() {
      escalate(*ranked[0]);
    });
  }
  if (escalations >= 2) {
    candidates.emplace_back("escalate2", [this, &ranked]() {
      escalate(*ranked[0]);
      escalate(*ranked[1]);
    });
  }
  if (options_.allow_vm_migration) {
    candidates.emplace_back("migrate", [this, &host]() {
      migrate_batch_vm(host);
    });
  }
  if (escalations >= 1 && options_.allow_vm_migration) {
    candidates.emplace_back("escalate+migrate", [this, &ranked, &host]() {
      escalate(*ranked[0]);
      migrate_batch_vm(host);
    });
  }

  // The child reports the app's SLA trajectory over the horizon window
  // plus total batch progress — recovery and makespan cost in one line.
  // Captures: `app` and `this` are stable addresses the forked child
  // shares; `t0` rides by value inside the copied closure.
  const double t0 = sim_.now();
  const interactive::InteractiveApp* app_ptr = &app;
  const auto score = [this, app_ptr, t0]() {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "viol=%.17g resp=%.17g done=%.17g",
                  interactive::SlaMonitor::violation_fraction(*app_ptr, t0,
                                                              sim_.now()),
                  app_ptr->response_time_s(), batch_progress());
    return std::string(buf);
  };

  const sim::Duration horizon{options_.lookahead_horizon_s};
  std::vector<Prediction> preds;
  preds.reserve(candidates.size());
  for (const auto& [name, apply] : candidates) {
    const auto la = whatif_->lookahead_in_event(apply, horizon, score);
    if (la.is_child) return PredictiveOutcome::kChild;
    ++stats_.lookaheads;
    preds.push_back(la.ok ? parse_prediction(la.payload) : Prediction{});
  }

  const auto recovered = [&](const Prediction& p) {
    return p.ok && sim::Duration{p.resp_s} <=
                       app.params().sla_s * options_.restore_margin;
  };
  // Lexicographic ranking: recover the SLA first; among recovering
  // candidates maximize batch progress (minimal makespan damage); among
  // non-recovering ones minimize the violation fraction, then the final
  // response time, then batch damage. Ties keep the cheaper candidate.
  const auto better = [&](const Prediction& x, const Prediction& y) {
    const bool rx = recovered(x);
    const bool ry = recovered(y);
    if (rx != ry) return rx;
    if (rx) return x.done > y.done;
    if (x.viol_frac != y.viol_frac) return x.viol_frac < y.viol_frac;
    if (x.resp_s != y.resp_s) return x.resp_s < y.resp_s;
    return x.done > y.done;
  };
  std::size_t best = 0;
  for (std::size_t i = 1; i < preds.size(); ++i) {
    if (better(preds[i], preds[best])) best = i;
  }
  if (!preds[best].ok) return PredictiveOutcome::kFallback;

  sim::log_info(sim_.now(), "ips",
                std::string("lookahead picks ") + candidates[best].first +
                    " for " + app.name());
  note_action("lookahead", candidates[best].first, host.name());
  if (best == 0) {
    ++stats_.lookahead_holds;
    return PredictiveOutcome::kApplied;
  }
  candidates[best].second();
  return PredictiveOutcome::kApplied;
}

void InterferencePreventionSystem::mitigate_classic(
    const Machine& host, const std::vector<TaskAttempt*>& ranked) {
  int applied = 0;
  for (TaskAttempt* a : ranked) {
    if (applied >= options_.max_actions_per_epoch) break;
    escalate(*a);
    ++applied;
  }
  if (ranked.empty()) {
    // Interference is coming from a neighbouring VM's batch work that is
    // not task-addressable from here; fall back to VM migration.
    migrate_batch_vm(host);
  } else if (applied > 0 && ranked.size() > static_cast<std::size_t>(
                                applied)) {
    migrate_batch_vm(host);
  }
}

bool InterferencePreventionSystem::mitigate(interactive::InteractiveApp& app) {
  Machine* host = app.site().host_machine();
  if (host == nullptr) return true;
  // Violating again shortly after a restore: require a longer healthy
  // streak before backing off next time (exponential, capped; the decay
  // in restore_where_healthy() unwinds it over sustained health).
  auto last = last_restore_.find(host);
  if (last != last_restore_.end() &&
      sim_.now() - last->second < 6 * options_.epoch_s) {
    int& required = required_streak_[host];
    required = std::min(64, std::max(options_.restore_streak, required) * 2);
  }
  const auto running = mr_.running_attempts();
  const auto ranked = arbiter_.rank_interferers(*host, running);

  if (options_.model_predictive && whatif_ != nullptr &&
      !whatif_->in_lookahead()) {
    switch (mitigate_predictive(app, *host, ranked)) {
      case PredictiveOutcome::kChild:
        return false;
      case PredictiveOutcome::kApplied:
        return true;
      case PredictiveOutcome::kFallback:
        break;  // no usable prediction: Algorithm 3 below
    }
  }
  mitigate_classic(*host, ranked);
  return true;
}

void InterferencePreventionSystem::restore_where_healthy() {
  // Track per-host healthy streaks: a host is healthy when every resident
  // app sits below margin * SLA. Actions step down only after
  // `restore_streak` consecutive healthy epochs (hysteresis), and only
  // `max_restores_per_epoch` at a time (gradual back-off).
  std::map<const Machine*, bool> host_healthy;
  for (auto* app : monitor_.apps()) {
    if (!app->running()) continue;
    const Machine* host = app->site().host_machine();
    if (host == nullptr) continue;  // site detached by a host crash
    const bool ok = sim::Duration{app->response_time_s()} <=
                    app->params().sla_s * options_.restore_margin;
    auto it = host_healthy.find(host);
    host_healthy[host] = it == host_healthy.end() ? ok : (it->second && ok);
  }
  for (const auto& [host, ok] : host_healthy) {
    if (ok) {
      ++healthy_streak_[host];
    } else {
      healthy_streak_[host] = 0;
    }
  }

  // Flap-guard decay: the ratchet doubles on re-offense but must not
  // outlive the flapping it guards against — every `ratchet_decay_epochs`
  // consecutive healthy epochs halves a host's requirement, and a
  // requirement back at the configured floor is dropped entirely. (Order
  // independent: each entry only consults its own host's streak.)
  for (auto it = required_streak_.begin(); it != required_streak_.end();) {
    const auto hs = healthy_streak_.find(it->first);
    const int streak = hs == healthy_streak_.end() ? 0 : hs->second;
    if (streak > 0 && streak % options_.ratchet_decay_epochs == 0) {
      it->second /= 2;
    }
    if (it->second <= options_.restore_streak) {
      it = required_streak_.erase(it);
    } else {
      ++it;
    }
  }

  int restored = 0;
  std::vector<TaskAttempt*> to_restore;
  for (auto& [attempt, level] : actions_) {
    const Machine* host = attempt->site().host_machine();
    const bool monitored = host_healthy.contains(host);
    const int needed =
        std::max(options_.restore_streak,
                 monitored && required_streak_.contains(host)
                     ? required_streak_.at(host)
                     : 0);
    const bool eligible = !monitored || healthy_streak_[host] >= needed;
    if (eligible) to_restore.push_back(attempt);
  }
  // Deterministic restore order: oldest attempt first (the action map is
  // keyed by pointer, whose order is not reproducible).
  std::sort(to_restore.begin(), to_restore.end(),
            [](const TaskAttempt* a, const TaskAttempt* b) {
              if (a->started_at() != b->started_at()) {
                return a->started_at() < b->started_at();
              }
              return a->task().index() < b->task().index();
            });
  for (TaskAttempt* a : to_restore) {
    if (restored >= options_.max_restores_per_epoch) break;
    auto it = actions_.find(a);
    if (it->second == ActionLevel::kPaused) {
      a->set_paused(false);
      it->second = ActionLevel::kThrottled;
    } else {
      a->set_caps(a->base_caps());
      actions_.erase(it);
    }
    ++stats_.restores;
    ++restored;
    last_restore_[a->site().host_machine()] = sim_.now();
    note_action("restore", a->label(), a->site().name());
  }
}

void InterferencePreventionSystem::note_action(const char* action,
                                               const std::string& target,
                                               const std::string& track) {
  if (tel_ == nullptr) return;
  tel_->registry.counter(std::string("ips.") + action + "s").add();
  tel_->trace.instant(sim_.now(), telemetry::EventKind::kIpsAction, action,
                      track, {{"target", target}});
}

void InterferencePreventionSystem::epoch() {
  prune_stale_state();
  const auto violators = monitor_.violators();
  stats_.violations_seen += static_cast<int>(violators.size());
  // (Violation onsets are traced by the apps themselves; the IPS counts
  // how many violator-epochs it had to arbitrate.)
  if (tel_ != nullptr && !violators.empty()) {
    tel_->registry.counter("ips.violations_seen")
        .add(static_cast<double>(violators.size()));
  }
  for (auto* app : violators) {
    if (!mitigate(*app)) return;  // forked lookahead child: unwind now
  }
  restore_where_healthy();
}

void InterferencePreventionSystem::start() {
  if (ticker_.active()) return;
  ticker_ = sim_.every(options_.epoch_s, [this]() { epoch(); },
                       options_.epoch_s);
}

void InterferencePreventionSystem::stop() { ticker_.cancel(); }

}  // namespace hybridmr::core
