// Interference Prevention System (paper §III-B2, Algorithm 3).
//
// The IPS continuously tracks the performance of interactive applications
// against their SLAs. On a violation its Arbiter identifies the map/reduce
// tasks interfering with the affected application (via the Estimator's
// interference scores) and mitigates, escalating per task:
//   1. throttle  - cut the task's resource caps (cgroup shares),
//   2. pause     - suspend the task,
//   3. re-queue  - kill the attempt and reschedule it on another node
//                  (Hadoop's speculation machinery guarantees correctness),
// and, independently, live-migrates a purely-batch VM away from the
// violated host using a BestFit bin-packing choice of destination.
// When latency falls back below a restore margin, actions are undone in
// reverse order.
//
// Beyond the paper: an opt-in model-predictive mode
// (IpsOptions::model_predictive, docs/WHATIF.md) ranks candidate
// mitigations — hold, escalate, escalate two, migrate, escalate+migrate —
// by forking short lookahead simulations through a whatif::WhatIfEngine
// and comparing each candidate's predicted SLA recovery and batch
// progress at the horizon, instead of trusting interference scores alone.
#pragma once

#include <map>
#include <vector>

#include "cluster/cluster.h"
#include "core/estimator.h"
#include "interactive/sla.h"
#include "mapred/engine.h"
#include "sim/simulation.h"

namespace hybridmr::telemetry {
struct Hub;
}  // namespace hybridmr::telemetry

namespace hybridmr::whatif {
class WhatIfEngine;
}  // namespace hybridmr::whatif

namespace hybridmr::core {

struct IpsOptions {
  double epoch_s = 10.0;
  /// Resume batch work when latency is below margin * SLA.
  double restore_margin = 0.7;
  /// Consecutive healthy epochs required before stepping an action down
  /// (hysteresis against throttle/restore flapping).
  int restore_streak = 3;
  /// Restores applied per epoch (gradual back-off).
  int max_restores_per_epoch = 1;
  /// Cap multiplier applied by the throttle action.
  double throttle_factor = 0.4;
  /// Actions (escalations) applied per violating app per epoch.
  int max_actions_per_epoch = 2;
  bool allow_requeue = true;
  bool allow_vm_migration = true;
  /// Healthy epochs between halvings of a host's flap-guard ratchet: a
  /// host that re-violated soon after restores doubles its required
  /// healthy streak (up to 64), and every `ratchet_decay_epochs`
  /// consecutive healthy epochs halves it back toward `restore_streak`.
  int ratchet_decay_epochs = 6;
  /// Rank candidate mitigations by forked-lookahead prediction instead of
  /// interference scores alone. Requires set_whatif(); see docs/WHATIF.md.
  bool model_predictive = false;
  /// Simulated seconds of lookahead per candidate fork. Must stay inside
  /// the driver's run_until window (TestBed drives in 600 s slices).
  double lookahead_horizon_s = 30.0;
};

/// Algorithm 3: picks victims and destinations.
class Arbiter {
 public:
  explicit Arbiter(Estimator& estimator) : estimator_(&estimator) {}

  /// Interfering tasks on `host`, most interfering first
  /// (TaskInterference[] = GetEstimatedInterference()).
  [[nodiscard]] std::vector<mapred::TaskAttempt*> rank_interferers(
      const cluster::Machine& host,
      const std::vector<mapred::TaskAttempt*>& running) const;

  /// BestFit bin-packing: the powered host with the least spare capacity
  /// that still fits `needed`, excluding hosts in `excluded`.
  [[nodiscard]] cluster::Machine* best_fit_host(
      const cluster::HybridCluster& cluster, const cluster::Resources& needed,
      const std::vector<const cluster::Machine*>& excluded) const;

 private:
  // hmr-state(back-reference: owner=HybridMRScheduler::estimator_)
  Estimator* estimator_;
};

class InterferencePreventionSystem {
 public:
  struct Stats {
    int violations_seen = 0;
    int throttles = 0;
    int pauses = 0;
    int requeues = 0;
    int vm_migrations = 0;
    int restores = 0;
    /// Candidate lookahead forks evaluated (model-predictive mode).
    int lookaheads = 0;
    /// Epochs where the lookahead chose "hold" (no action beats acting).
    int lookahead_holds = 0;
  };

  InterferencePreventionSystem(sim::Simulation& sim,
                               mapred::MapReduceEngine& mr,
                               cluster::HybridCluster& cluster,
                               interactive::SlaMonitor& monitor,
                               Estimator& estimator, IpsOptions options);
  ~InterferencePreventionSystem();

  InterferencePreventionSystem(const InterferencePreventionSystem&) = delete;
  InterferencePreventionSystem& operator=(
      const InterferencePreventionSystem&) = delete;

  /// One control round: mitigate violations / restore when healthy.
  void epoch();

  void start();
  void stop();
  [[nodiscard]] bool running() const { return ticker_.active(); }

  /// True when the IPS currently manages this attempt (the DRM must not
  /// override its throttles/pauses).
  [[nodiscard]] bool owns(const mapred::TaskAttempt& attempt) const {
    return actions_.contains(const_cast<mapred::TaskAttempt*>(&attempt));
  }

  /// Live managed attempts (throttled or paused).
  [[nodiscard]] int action_count() const {
    return static_cast<int>(actions_.size());
  }

  /// The flap-guard's current required healthy streak for `host`
  /// (restore_streak when no ratchet is active).
  [[nodiscard]] int required_streak(const cluster::Machine& host) const;

  /// True while any per-host map (healthy streak, flap ratchet, last
  /// restore time) still carries state for `host`.
  [[nodiscard]] bool tracks_host(const cluster::Machine& host) const;

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const IpsOptions& options() const { return options_; }
  [[nodiscard]] Arbiter& arbiter() { return arbiter_; }

  /// Attaches the IPS to a telemetry hub (null detaches).
  void set_telemetry(telemetry::Hub* hub) { tel_ = hub; }

  /// Attaches the what-if engine model-predictive mode forks through
  /// (null detaches; without one the IPS falls back to Algorithm 3).
  void set_whatif(whatif::WhatIfEngine* whatif) { whatif_ = whatif; }

 private:
  enum class ActionLevel { kThrottled = 1, kPaused = 2 };
  /// Outcome of the model-predictive arbitration for one violator.
  enum class PredictiveOutcome {
    kApplied,   ///< a candidate was chosen and applied in this process
    kChild,     ///< this is a forked lookahead child — unwind the epoch
    kFallback,  ///< no usable prediction — run Algorithm 3 instead
  };

  /// Returns false only in a forked lookahead child (the caller must
  /// unwind out of the epoch so the child's event loop runs the horizon).
  bool mitigate(interactive::InteractiveApp& app);
  void mitigate_classic(const cluster::Machine& host,
                        const std::vector<mapred::TaskAttempt*>& ranked);
  PredictiveOutcome mitigate_predictive(
      interactive::InteractiveApp& app, const cluster::Machine& host,
      const std::vector<mapred::TaskAttempt*>& ranked);
  void restore_where_healthy();
  void escalate(mapred::TaskAttempt& attempt);
  void migrate_batch_vm(const cluster::Machine& violated_host);
  /// Drops stale control state: actions whose attempt died between epochs
  /// (backstop — the release observer erases them event-driven), and
  /// per-host hysteresis entries for crashed (unpowered) machines.
  void prune_stale_state();
  /// Sum of finished map+reduce tasks across all jobs (the lookahead's
  /// batch-progress / makespan-cost proxy).
  [[nodiscard]] double batch_progress() const;

  sim::Simulation& sim_;
  mapred::MapReduceEngine& mr_;
  cluster::HybridCluster& cluster_;
  interactive::SlaMonitor& monitor_;
  Estimator& estimator_;
  IpsOptions options_;
  Arbiter arbiter_;
  Stats stats_;
  sim::PeriodicHandle ticker_;
  std::map<mapred::TaskAttempt*, ActionLevel> actions_;
  std::map<const cluster::Machine*, int> healthy_streak_;
  // Re-offense backoff: hosts that violate soon after a restore need an
  // exponentially longer healthy streak before the next restore.
  std::map<const cluster::Machine*, int> required_streak_;
  std::map<const cluster::Machine*, double> last_restore_;
  // hmr-state(back-reference: owner=TestBed::tel_ / example harness)
  telemetry::Hub* tel_ = nullptr;
  // hmr-state(back-reference: owner=HybridMRScheduler::whatif_)
  whatif::WhatIfEngine* whatif_ = nullptr;
  /// Token for the engine release observer registered in the constructor
  /// (erases actions_ entries the moment their attempt leaves its tracker).
  std::size_t release_observer_token_ = 0;

  /// Counter bump + kIpsAction trace instant for one arbitration action.
  void note_action(const char* action, const std::string& target,
                   const std::string& track);
};

}  // namespace hybridmr::core
