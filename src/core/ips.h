// Interference Prevention System (paper §III-B2, Algorithm 3).
//
// The IPS continuously tracks the performance of interactive applications
// against their SLAs. On a violation its Arbiter identifies the map/reduce
// tasks interfering with the affected application (via the Estimator's
// interference scores) and mitigates, escalating per task:
//   1. throttle  - cut the task's resource caps (cgroup shares),
//   2. pause     - suspend the task,
//   3. re-queue  - kill the attempt and reschedule it on another node
//                  (Hadoop's speculation machinery guarantees correctness),
// and, independently, live-migrates a purely-batch VM away from the
// violated host using a BestFit bin-packing choice of destination.
// When latency falls back below a restore margin, actions are undone in
// reverse order.
#pragma once

#include <map>
#include <vector>

#include "cluster/cluster.h"
#include "core/estimator.h"
#include "interactive/sla.h"
#include "mapred/engine.h"
#include "sim/simulation.h"

namespace hybridmr::telemetry {
struct Hub;
}  // namespace hybridmr::telemetry

namespace hybridmr::core {

struct IpsOptions {
  double epoch_s = 10.0;
  /// Resume batch work when latency is below margin * SLA.
  double restore_margin = 0.7;
  /// Consecutive healthy epochs required before stepping an action down
  /// (hysteresis against throttle/restore flapping).
  int restore_streak = 3;
  /// Restores applied per epoch (gradual back-off).
  int max_restores_per_epoch = 1;
  /// Cap multiplier applied by the throttle action.
  double throttle_factor = 0.4;
  /// Actions (escalations) applied per violating app per epoch.
  int max_actions_per_epoch = 2;
  bool allow_requeue = true;
  bool allow_vm_migration = true;
};

/// Algorithm 3: picks victims and destinations.
class Arbiter {
 public:
  explicit Arbiter(Estimator& estimator) : estimator_(&estimator) {}

  /// Interfering tasks on `host`, most interfering first
  /// (TaskInterference[] = GetEstimatedInterference()).
  [[nodiscard]] std::vector<mapred::TaskAttempt*> rank_interferers(
      const cluster::Machine& host,
      const std::vector<mapred::TaskAttempt*>& running) const;

  /// BestFit bin-packing: the powered host with the least spare capacity
  /// that still fits `needed`, excluding hosts in `excluded`.
  [[nodiscard]] cluster::Machine* best_fit_host(
      const cluster::HybridCluster& cluster, const cluster::Resources& needed,
      const std::vector<const cluster::Machine*>& excluded) const;

 private:
  Estimator* estimator_;
};

class InterferencePreventionSystem {
 public:
  struct Stats {
    int violations_seen = 0;
    int throttles = 0;
    int pauses = 0;
    int requeues = 0;
    int vm_migrations = 0;
    int restores = 0;
  };

  InterferencePreventionSystem(sim::Simulation& sim,
                               mapred::MapReduceEngine& mr,
                               cluster::HybridCluster& cluster,
                               interactive::SlaMonitor& monitor,
                               Estimator& estimator, IpsOptions options);

  /// One control round: mitigate violations / restore when healthy.
  void epoch();

  void start();
  void stop();
  [[nodiscard]] bool running() const { return ticker_.active(); }

  /// True when the IPS currently manages this attempt (the DRM must not
  /// override its throttles/pauses).
  [[nodiscard]] bool owns(const mapred::TaskAttempt& attempt) const {
    return actions_.contains(const_cast<mapred::TaskAttempt*>(&attempt));
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const IpsOptions& options() const { return options_; }
  [[nodiscard]] Arbiter& arbiter() { return arbiter_; }

  /// Attaches the IPS to a telemetry hub (null detaches).
  void set_telemetry(telemetry::Hub* hub) { tel_ = hub; }

 private:
  enum class ActionLevel { kThrottled = 1, kPaused = 2 };

  void mitigate(interactive::InteractiveApp& app);
  void restore_where_healthy();
  void escalate(mapred::TaskAttempt& attempt);
  void migrate_batch_vm(const cluster::Machine& violated_host);
  void prune_dead_actions();

  sim::Simulation& sim_;
  mapred::MapReduceEngine& mr_;
  cluster::HybridCluster& cluster_;
  interactive::SlaMonitor& monitor_;
  Estimator& estimator_;
  IpsOptions options_;
  Arbiter arbiter_;
  Stats stats_;
  sim::PeriodicHandle ticker_;
  std::map<mapred::TaskAttempt*, ActionLevel> actions_;
  std::map<const cluster::Machine*, int> healthy_streak_;
  // Re-offense backoff: hosts that violate soon after a restore need an
  // exponentially longer healthy streak before the next restore.
  std::map<const cluster::Machine*, int> required_streak_;
  std::map<const cluster::Machine*, double> last_restore_;
  telemetry::Hub* tel_ = nullptr;

  /// Counter bump + kIpsAction trace instant for one arbitration action.
  void note_action(const char* action, const std::string& target,
                   const std::string& track);
};

}  // namespace hybridmr::core
