#include "core/hybridmr.h"

#include <algorithm>
#include <limits>

#include "sim/log.h"
#include "telemetry/telemetry.h"

namespace hybridmr::core {

HybridMRScheduler::HybridMRScheduler(sim::Simulation& sim,
                                     cluster::HybridCluster& cluster,
                                     storage::Hdfs& hdfs,
                                     mapred::MapReduceEngine& mr,
                                     HybridMROptions options)
    : sim_(sim),
      cluster_(cluster),
      mr_(mr),
      options_(std::move(options)),
      profiler_(profile_db_, make_simulated_runner(options_.profiling_seed)),
      phase1_(profiler_, options_.phase1),
      drm_(sim, mr, cluster, estimator_, options_.drm),
      ips_(sim, mr, cluster, monitor_, estimator_, options_.ips) {
  (void)hdfs;
  // The DRM must not override IPS throttles/pauses.
  drm_.set_exempt(
      [this](const mapred::TaskAttempt& a) { return ips_.owns(a); });
  if (options_.ips.model_predictive) {
    whatif_ = std::make_unique<whatif::WhatIfEngine>(sim_);
    ips_.set_whatif(whatif_.get());
  }
}

int HybridMRScheduler::native_nodes() const {
  int n = 0;
  for (const auto& tr : mr_.trackers()) {
    if (!tr->site().is_virtual()) ++n;
  }
  return n;
}

int HybridMRScheduler::virtual_nodes() const {
  int n = 0;
  for (const auto& tr : mr_.trackers()) {
    if (tr->site().is_virtual()) ++n;
  }
  return n;
}

void HybridMRScheduler::start() {
  if (options_.enable_drm) drm_.start();
  if (options_.enable_ips) ips_.start();
}

void HybridMRScheduler::stop() {
  drm_.stop();
  ips_.stop();
}

mapred::Job* HybridMRScheduler::submit(const mapred::JobSpec& spec) {
  const int natives = native_nodes();
  const int virtuals = virtual_nodes();

  mapred::PlacementPool pool = mapred::PlacementPool::kAny;
  if (options_.enable_phase1 && natives > 0 && virtuals > 0) {
    // Estimate against the actual partition sizes of this deployment.
    auto& config = const_cast<PhaseOneScheduler::Config&>(phase1_.config());
    config.native_cluster_size = natives;
    config.virtual_cluster_size = virtuals;
    last_decision_ = phase1_.place(spec);
    pool = last_decision_.pool;
  } else {
    last_decision_ = {};
    last_decision_.pool = pool;
    last_decision_.reason = "phase 1 disabled or single-partition cluster";
  }

  sim::log_info(sim_.now(), "hybridmr",
                spec.name + " -> " +
                    (pool == mapred::PlacementPool::kNativeOnly
                         ? "native"
                         : pool == mapred::PlacementPool::kVirtualOnly
                               ? "virtual"
                               : "any") +
                    " (" + last_decision_.reason + ")");
  if (tel_ != nullptr) {
    tel_->trace.instant(
        sim_.now(), telemetry::EventKind::kPhase1Placement, spec.name, "jobs",
        {{"pool", pool == mapred::PlacementPool::kNativeOnly
                      ? "native"
                      : pool == mapred::PlacementPool::kVirtualOnly
                            ? "virtual"
                            : "any"},
         {"reason", last_decision_.reason}});
  }
  mapred::Job* job = mr_.submit(spec, pool);
  if (options_.online_profiling) {
    // Feed the production run back into the profile database so future
    // estimates for this job sharpen over time (online profiling).
    const bool virtual_run = pool == mapred::PlacementPool::kVirtualOnly;
    const int nodes = virtual_run ? virtuals
                                  : (pool == mapred::PlacementPool::kNativeOnly
                                         ? natives
                                         : natives + virtuals);
    auto previous = std::move(job->on_complete);
    job->on_complete = [this, virtual_run, nodes,
                        previous = std::move(previous)](mapred::Job& done) {
      ProfileEntry entry;
      entry.job_name = done.spec().name;
      entry.virtual_cluster = virtual_run;
      entry.cluster_size = nodes;
      entry.data_gb = done.spec().input_gb;
      entry.jct_s = done.jct();
      entry.map_s = done.map_phase_seconds();
      entry.reduce_s = done.reduce_phase_seconds();
      profile_db_.add(entry);
      if (previous) previous(done);
    };
  }
  return job;
}

interactive::InteractiveApp& HybridMRScheduler::deploy_interactive(
    const interactive::AppParams& params, int clients,
    cluster::ExecutionSite* site) {
  if (site == nullptr) {
    // Least-loaded VM (by dominant share of current demand), preferring
    // VMs that are not Hadoop nodes.
    double best_score = std::numeric_limits<double>::infinity();
    for (const auto& vm : cluster_.vms()) {
      if (vm->host_machine() == nullptr) continue;
      bool is_tracker = false;
      for (const auto& tr : mr_.trackers()) {
        if (&tr->site() == vm.get()) {
          is_tracker = true;
          break;
        }
      }
      const double load =
          vm->total_demand().dominant_share(vm->nominal()) +
          (is_tracker ? 0.5 : 0.0);
      if (load < best_score) {
        best_score = load;
        site = vm.get();
      }
    }
  }
  if (site == nullptr && !cluster_.machines().empty()) {
    site = cluster_.machines().front().get();  // last resort: native host
  }
  apps_.push_back(std::make_unique<interactive::InteractiveApp>(
      sim_, *site, params, clients));
  interactive::InteractiveApp& app = *apps_.back();
  if (tel_ != nullptr) app.set_telemetry(tel_);
  app.start();
  monitor_.track(app);
  sim::log_info(sim_.now(), "hybridmr",
                params.name + " (" + std::to_string(clients) +
                    " clients) -> " + site->name());
  return app;
}

void HybridMRScheduler::set_telemetry(telemetry::Hub* hub) {
  tel_ = hub;
  drm_.set_telemetry(hub);
  ips_.set_telemetry(hub);
  for (const auto& app : apps_) app->set_telemetry(hub);
}

}  // namespace hybridmr::core
