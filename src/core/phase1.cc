#include "core/phase1.h"

#include <algorithm>

namespace hybridmr::core {

void PhaseOneScheduler::ensure_trained(const mapred::JobSpec& spec) {
  // Native training partitions use the listed PM counts; virtual ones pack
  // vms_per_host VMs per PM so the comparison is at equal hardware.
  if (profiler_->database().for_job(spec.name, false).empty()) {
    profiler_->train(spec, false, config_.training_cluster_sizes,
                     config_.training_data_gbs, config_.training_runs);
  }
  if (profiler_->database().for_job(spec.name, true).empty()) {
    std::vector<int> vm_sizes;
    vm_sizes.reserve(config_.training_cluster_sizes.size());
    for (int c : config_.training_cluster_sizes) {
      vm_sizes.push_back(c * config_.vms_per_host);
    }
    profiler_->train(spec, true, vm_sizes, config_.training_data_gbs,
                     config_.training_runs);
  }
}

PhaseOneScheduler::Decision PhaseOneScheduler::place(
    const mapred::JobSpec& spec) {
  if (config_.auto_train) ensure_trained(spec);

  Decision d;
  // Equal-hardware comparison at the largest training size: c PMs native
  // vs c*vms_per_host VMs (on c PMs) virtual. Estimation at a trained
  // cluster size only extrapolates over data size, which is reliably
  // linear (Fig. 5(d)).
  const int c_train = config_.training_cluster_sizes.empty()
                          ? 2
                          : *std::max_element(
                                config_.training_cluster_sizes.begin(),
                                config_.training_cluster_sizes.end());
  d.native_estimate =
      profiler_->estimate(spec, /*virtual_cluster=*/false, c_train);
  d.virtual_estimate = profiler_->estimate(
      spec, /*virtual_cluster=*/true, c_train * config_.vms_per_host);
  d.virtual_production = profiler_->estimate(
      spec, /*virtual_cluster=*/true, config_.virtual_cluster_size);

  if (!d.virtual_estimate.valid() || !d.native_estimate.valid()) {
    // No profile data: be conservative, use the virtual cluster (spare
    // capacity) — the run itself will populate the database.
    d.pool = mapred::PlacementPool::kVirtualOnly;
    d.reason = "no profiles; defaulting to virtual";
    return d;
  }

  if (d.native_estimate.jct_s > 0) {
    d.overhead =
        (d.virtual_estimate.jct_s - d.native_estimate.jct_s) /
        d.native_estimate.jct_s;
  }

  // Algorithm 2, lines 6-9: jobs whose virtual-cluster estimate misses the
  // desired completion time go to the physical cluster.
  if (spec.desired_jct_s > sim::Duration{0}) {
    const double production_estimate = d.virtual_production.valid()
                                           ? d.virtual_production.jct_s
                                           : d.virtual_estimate.jct_s;
    if (sim::Duration{production_estimate} >= spec.desired_jct_s) {
      d.pool = mapred::PlacementPool::kNativeOnly;
      d.reason = "virtual estimate misses desired JCT";
    } else {
      d.pool = mapred::PlacementPool::kVirtualOnly;
      d.reason = "virtual estimate meets desired JCT";
    }
    return d;
  }

  // No SLO: place on virtual unless the virtualization overhead is
  // significant (paper §III-A: "if the overhead is not significant, the
  // job is selected for deployment on the virtual cluster").
  if (d.overhead > config_.overhead_threshold) {
    d.pool = mapred::PlacementPool::kNativeOnly;
    d.reason = "significant virtualization overhead";
  } else {
    d.pool = mapred::PlacementPool::kVirtualOnly;
    d.reason = "virtualization overhead acceptable";
  }
  return d;
}

}  // namespace hybridmr::core
