// Dynamic Resource Manager (paper §III-B1, Fig. 7).
//
// The DRM replaces stock Hadoop's rigid slot shares with demand-driven
// allocations, epoch by epoch:
//   - LocalResourceManager (one per node): ResourceProfiler samples the
//     run-time resource usage of resident tasks; the shared Estimator fits
//     their performance models.
//   - GlobalResourceManager: the ContentionDetector classifies tasks into
//     resource-deficit and resource-hogging from the coordinated view of
//     all LRM reports; the PerformanceBalancer computes and applies the
//     resource adjustments (cap changes, cgroup-style I/O shares, memory
//     admission).
// Each of CPU / memory / I/O management can be toggled independently —
// exactly the legends of the paper's Fig. 8(b,c).
#pragma once

#include <functional>
#include <set>
#include <vector>

#include "cluster/cluster.h"
#include "core/estimator.h"
#include "mapred/engine.h"
#include "sim/simulation.h"

namespace hybridmr::telemetry {
struct Hub;
class Counter;
}  // namespace hybridmr::telemetry

namespace hybridmr::core {

struct DrmOptions {
  bool manage_cpu = true;
  bool manage_memory = true;
  bool manage_io = true;
  double epoch_s = 10.0;
};

/// Per-node usage report assembled by a LocalResourceManager.
struct NodeReport {
  cluster::ExecutionSite* site = nullptr;
  std::vector<mapred::TaskAttempt*> attempts;
  cluster::Resources total_demand;
  cluster::Resources total_alloc;
};

/// ResourceProfiler + Estimator front-end for one node.
class LocalResourceManager {
 public:
  LocalResourceManager(cluster::ExecutionSite& site, Estimator& estimator)
      : site_(&site), estimator_(&estimator) {}

  /// Samples every resident attempt and produces the node report.
  NodeReport profile(const std::vector<mapred::TaskAttempt*>& resident,
                     double now);

  [[nodiscard]] cluster::ExecutionSite& site() const { return *site_; }

 private:
  cluster::ExecutionSite* site_;
  Estimator* estimator_;
};

/// GRM component: labels resource-deficit and resource-hogging tasks.
class ContentionDetector {
 public:
  struct Result {
    std::vector<mapred::TaskAttempt*> deficit;
    std::vector<mapred::TaskAttempt*> hogging;
  };

  /// A task is deficit when its dominant allocation ratio is below
  /// `deficit_threshold`; hogging when it is (near) fully satisfied while
  /// a deficit task shares its physical host.
  [[nodiscard]] Result classify(const std::vector<NodeReport>& reports,
                                const Estimator& estimator) const;

  double deficit_threshold = 0.75;
};

/// GRM component: computes and applies the resource adjustments.
class PerformanceBalancer {
 public:
  struct Stats {
    int cap_updates = 0;
    int memory_pauses = 0;
    int memory_resumes = 0;
    int vm_share_updates = 0;
  };

  PerformanceBalancer(const DrmOptions& options, Estimator& estimator)
      : options_(&options), estimator_(&estimator) {}

  /// One balancing round over the LRM reports. `exempt` marks attempts
  /// under IPS control that the DRM must not touch.
  Stats balance(const std::vector<NodeReport>& reports,
                const std::function<bool(const mapred::TaskAttempt&)>& exempt);

  /// Attempts currently paused by the memory-admission policy.
  [[nodiscard]] const std::set<mapred::TaskAttempt*>& paused() const {
    return paused_;
  }

  /// Forgets state for attempts that no longer run.
  void prune(const std::vector<mapred::TaskAttempt*>& live);

 private:
  void balance_memory(const NodeReport& report,
                      const std::function<bool(const mapred::TaskAttempt&)>&
                          exempt,
                      Stats& stats);

  const DrmOptions* options_;
  Estimator* estimator_;
  std::set<mapred::TaskAttempt*> paused_;
  std::set<cluster::VirtualMachine*> vm_capped_;

 public:
  /// I/O fair-sharing across the VMs of one physical host (cgroup blkio
  /// weights in the paper). Public for the DRM to drive per host.
  void balance_host_io(cluster::Machine& host,
                       const std::vector<NodeReport>& reports, Stats& stats);
};

/// The full Phase II resource manager: GRM + LRMs on a periodic epoch.
class DynamicResourceManager {
 public:
  DynamicResourceManager(sim::Simulation& sim, mapred::MapReduceEngine& mr,
                         cluster::HybridCluster& cluster,
                         Estimator& estimator, DrmOptions options);

  /// Runs one control epoch immediately.
  void epoch();

  /// Starts/stops the periodic controller.
  void start();
  void stop();
  [[nodiscard]] bool running() const { return ticker_.active(); }

  /// Marks attempts the DRM must leave alone (IPS-owned).
  void set_exempt(std::function<bool(const mapred::TaskAttempt&)> exempt) {
    exempt_ = std::move(exempt);
  }

  [[nodiscard]] const DrmOptions& options() const { return options_; }
  [[nodiscard]] const PerformanceBalancer::Stats& lifetime_stats() const {
    return lifetime_;
  }
  [[nodiscard]] const ContentionDetector::Result& last_contention() const {
    return last_contention_;
  }

  /// Attaches the DRM to a telemetry hub (null detaches).
  void set_telemetry(telemetry::Hub* hub);

 private:
  sim::Simulation& sim_;
  mapred::MapReduceEngine& mr_;
  cluster::HybridCluster& cluster_;
  Estimator& estimator_;
  DrmOptions options_;
  ContentionDetector detector_;
  PerformanceBalancer balancer_;
  ContentionDetector::Result last_contention_;
  PerformanceBalancer::Stats lifetime_;
  sim::PeriodicHandle ticker_;
  std::function<bool(const mapred::TaskAttempt&)> exempt_;
  telemetry::Hub* tel_ = nullptr;
  telemetry::Counter* tel_cap_updates_ = nullptr;
  telemetry::Counter* tel_memory_pauses_ = nullptr;
  telemetry::Counter* tel_memory_resumes_ = nullptr;
  telemetry::Counter* tel_vm_share_updates_ = nullptr;
};

}  // namespace hybridmr::core
