#include "core/drm.h"

#include <algorithm>
#include <map>

#include "sim/log.h"
#include "telemetry/telemetry.h"

namespace hybridmr::core {

using cluster::ResourceKind;
using cluster::Resources;
using mapred::TaskAttempt;

NodeReport LocalResourceManager::profile(
    const std::vector<TaskAttempt*>& resident, double now) {
  NodeReport report;
  report.site = site_;
  for (TaskAttempt* a : resident) {
    if (!a->running()) continue;
    estimator_->observe(*a, now);
    report.attempts.push_back(a);
    report.total_demand += a->current_demand();
    report.total_alloc += a->current_allocation();
  }
  return report;
}

ContentionDetector::Result ContentionDetector::classify(
    const std::vector<NodeReport>& reports, const Estimator& estimator) const {
  Result result;
  // First pass: find deficit tasks per physical host.
  std::map<const cluster::Machine*, bool> host_has_deficit;
  for (const auto& report : reports) {
    const cluster::Machine* host = report.site->host_machine();
    for (TaskAttempt* a : report.attempts) {
      const TaskModel* model = estimator.model(a);
      if (model == nullptr || model->empty()) continue;
      if (model->bottleneck().has_value() &&
          model->last().alloc.dominant_share(model->last().demand) <
              deficit_threshold) {
        result.deficit.push_back(a);
        host_has_deficit[host] = true;
      }
    }
  }
  // Second pass: fully-satisfied tasks sharing a host with a deficit task
  // are the candidates to squeeze.
  for (const auto& report : reports) {
    const cluster::Machine* host = report.site->host_machine();
    if (!host_has_deficit[host]) continue;
    for (TaskAttempt* a : report.attempts) {
      const TaskModel* model = estimator.model(a);
      if (model == nullptr || model->empty()) continue;
      if (!model->bottleneck().has_value() &&
          std::find(result.deficit.begin(), result.deficit.end(), a) ==
              result.deficit.end()) {
        result.hogging.push_back(a);
      }
    }
  }
  return result;
}

void PerformanceBalancer::balance_memory(
    const NodeReport& report,
    const std::function<bool(const TaskAttempt&)>& exempt, Stats& stats) {
  const double capacity = report.site->nominal().memory;

  // Memory admission: the site can satisfy only so many resident task
  // heaps; running fewer tasks at full speed beats thrashing all of them
  // (the piecewise-linear penalty is superlinear below the knee).
  std::vector<TaskAttempt*> unpaused;
  std::vector<TaskAttempt*> ours_paused;
  double demand = 0;
  for (TaskAttempt* a : report.attempts) {
    if (exempt && exempt(*a)) continue;
    if (paused_.contains(a)) {
      ours_paused.push_back(a);
    } else if (!a->paused()) {
      unpaused.push_back(a);
      demand += a->current_demand().memory;
    }
  }
  // Pause youngest-first while oversubscribed.
  std::sort(unpaused.begin(), unpaused.end(),
            [](const TaskAttempt* a, const TaskAttempt* b) {
              return a->started_at() > b->started_at();
            });
  for (TaskAttempt* a : unpaused) {
    if (demand <= capacity || unpaused.size() <= 1) break;
    const double mem = a->current_demand().memory;
    if (mem <= 0) continue;
    if (demand - mem < capacity * 0.5) continue;  // never pause below 50% use
    a->set_paused(true);
    paused_.insert(a);
    demand -= mem;
    ++stats.memory_pauses;
  }
  // Resume oldest-first when space opened up.
  std::sort(ours_paused.begin(), ours_paused.end(),
            [](const TaskAttempt* a, const TaskAttempt* b) {
              return a->started_at() < b->started_at();
            });
  for (TaskAttempt* a : ours_paused) {
    const double mem = a->current_demand().memory;
    if (demand + mem <= capacity) {
      a->set_paused(false);
      paused_.erase(a);
      demand += mem;
      ++stats.memory_resumes;
    }
  }
}

void PerformanceBalancer::balance_host_io(cluster::Machine& host,
                                          const std::vector<NodeReport>&
                                              reports,
                                          Stats& stats) {
  if (!options_->manage_io) return;
  // Count I/O-active tasks per VM of this host; weight each VM's share of
  // the physical disk/net by its task count (cgroup blkio weights).
  std::vector<std::pair<cluster::VirtualMachine*, int>> tasks_per_vm;
  int total_tasks = 0;
  for (const auto& report : reports) {
    if (report.site->host_machine() != &host || !report.site->is_virtual()) {
      continue;
    }
    auto* vm = static_cast<cluster::VirtualMachine*>(report.site);
    int io_tasks = 0;
    for (TaskAttempt* a : report.attempts) {
      const Resources d = a->current_demand();
      if (d.disk + d.net > 0.5 || a->current_allocation().disk > 0.5) {
        ++io_tasks;
      }
    }
    // Every running task is a potential I/O issuer across its phases;
    // weight by resident tasks with a floor of the measured I/O tasks.
    const int weight =
        std::max(io_tasks, static_cast<int>(report.attempts.size()));
    tasks_per_vm.emplace_back(vm, weight);
    total_tasks += weight;
  }
  // Only arbitrate when the hosts' VMs carry *unequal* task loads: equal
  // loads already get equal shares from the hypervisor, and binding caps
  // would only destroy work conservation.
  bool unequal = false;
  for (auto& [vm, n] : tasks_per_vm) {
    if (n * static_cast<int>(tasks_per_vm.size()) != total_tasks) {
      unequal = true;
    }
  }
  if (tasks_per_vm.size() < 2 || total_tasks == 0 || !unequal) {
    // Nothing to arbitrate: lift any caps we previously set on this host.
    for (auto* vm : host.vms()) {
      if (vm_capped_.erase(vm) > 0) {
        vm->set_caps(Resources::unbounded());
        ++stats.vm_share_updates;
      }
    }
    return;
  }
  const Resources cap = host.capacity();
  for (auto& [vm, n] : tasks_per_vm) {
    // Weighted share with 25% headroom: per-task fairness without giving up
    // work conservation entirely.
    const double share =
        1.25 * static_cast<double>(n) / total_tasks;
    Resources caps = Resources::unbounded();
    caps.disk = std::max(5.0, cap.disk * share);
    caps.net = std::max(5.0, cap.net * share);
    vm->set_caps(caps);
    vm_capped_.insert(vm);
    ++stats.vm_share_updates;
  }
}

PerformanceBalancer::Stats PerformanceBalancer::balance(
    const std::vector<NodeReport>& reports,
    const std::function<bool(const TaskAttempt&)>& exempt) {
  Stats stats;
  for (const auto& report : reports) {
    // Lift static slot caps on managed resources: allocation becomes
    // demand-driven (the machine's max-min fair share).
    for (TaskAttempt* a : report.attempts) {
      if (exempt && exempt(*a)) continue;
      Resources caps = a->base_caps();
      if (options_->manage_cpu) {
        caps.cpu = std::numeric_limits<double>::infinity();
      }
      if (options_->manage_io) {
        caps.disk = std::numeric_limits<double>::infinity();
        caps.net = std::numeric_limits<double>::infinity();
      }
      if (options_->manage_memory) {
        caps.memory = std::numeric_limits<double>::infinity();
      }
      if (!(caps.cpu == a->caps().cpu && caps.memory == a->caps().memory &&
            caps.disk == a->caps().disk && caps.net == a->caps().net)) {
        a->set_caps(caps);
        ++stats.cap_updates;
      }
    }
    if (options_->manage_memory) balance_memory(report, exempt, stats);
  }
  return stats;
}

void PerformanceBalancer::prune(const std::vector<TaskAttempt*>& live) {
  std::erase_if(paused_, [&](TaskAttempt* a) {
    return std::find(live.begin(), live.end(), a) == live.end();
  });
}

DynamicResourceManager::DynamicResourceManager(sim::Simulation& sim,
                                               mapred::MapReduceEngine& mr,
                                               cluster::HybridCluster& cluster,
                                               Estimator& estimator,
                                               DrmOptions options)
    : sim_(sim),
      mr_(mr),
      cluster_(cluster),
      estimator_(estimator),
      options_(options),
      balancer_(options_, estimator) {}

void DynamicResourceManager::epoch() {
  const double now = sim_.now();
  const PerformanceBalancer::Stats before = lifetime_;
  auto attempts = mr_.running_attempts();
  estimator_.retain_only(attempts);
  balancer_.prune(attempts);

  // Group attempts by execution site (one LRM per node), in tracker order
  // so the control decisions are deterministic.
  std::vector<std::pair<cluster::ExecutionSite*, std::vector<TaskAttempt*>>>
      by_site;
  for (TaskAttempt* a : attempts) {
    if (!a->running()) continue;
    auto it = std::find_if(by_site.begin(), by_site.end(),
                           [&](const auto& e) { return e.first == &a->site(); });
    if (it == by_site.end()) {
      by_site.emplace_back(&a->site(), std::vector<TaskAttempt*>{a});
    } else {
      it->second.push_back(a);
    }
  }
  std::vector<NodeReport> reports;
  reports.reserve(by_site.size());
  for (auto& [site, resident] : by_site) {
    LocalResourceManager lrm(*site, estimator_);
    reports.push_back(lrm.profile(resident, now));
  }

  last_contention_ = detector_.classify(reports, estimator_);
  const auto stats = balancer_.balance(reports, exempt_);
  for (const auto& m : cluster_.machines()) {
    balancer_.balance_host_io(*m, reports, lifetime_);
  }
  lifetime_.cap_updates += stats.cap_updates;
  lifetime_.memory_pauses += stats.memory_pauses;
  lifetime_.memory_resumes += stats.memory_resumes;

  if (tel_ != nullptr) {
    const int caps = lifetime_.cap_updates - before.cap_updates;
    const int pauses = lifetime_.memory_pauses - before.memory_pauses;
    const int resumes = lifetime_.memory_resumes - before.memory_resumes;
    const int shares = lifetime_.vm_share_updates - before.vm_share_updates;
    if (caps > 0) tel_cap_updates_->add(caps);
    if (pauses > 0) tel_memory_pauses_->add(pauses);
    if (resumes > 0) tel_memory_resumes_->add(resumes);
    if (shares > 0) tel_vm_share_updates_->add(shares);
    const bool active = caps + pauses + resumes + shares > 0 ||
                        !last_contention_.deficit.empty() ||
                        !last_contention_.hogging.empty();
    if (active) {
      tel_->trace.instant(
          now, telemetry::EventKind::kDrmDecision, "drm_epoch", "drm",
          {{"deficit", telemetry::json_num(
                           static_cast<double>(last_contention_.deficit.size()))},
           {"hogging", telemetry::json_num(
                           static_cast<double>(last_contention_.hogging.size()))},
           {"cap_updates", telemetry::json_num(caps)},
           {"memory_pauses", telemetry::json_num(pauses)},
           {"memory_resumes", telemetry::json_num(resumes)},
           {"vm_share_updates", telemetry::json_num(shares)}});
    }
  }
}

void DynamicResourceManager::set_telemetry(telemetry::Hub* hub) {
  tel_ = hub;
  if (hub == nullptr) {
    tel_cap_updates_ = tel_memory_pauses_ = tel_memory_resumes_ =
        tel_vm_share_updates_ = nullptr;
    return;
  }
  auto& reg = hub->registry;
  tel_cap_updates_ = &reg.counter("drm.cap_updates");
  tel_memory_pauses_ = &reg.counter("drm.memory_pauses");
  tel_memory_resumes_ = &reg.counter("drm.memory_resumes");
  tel_vm_share_updates_ = &reg.counter("drm.vm_share_updates");
}

void DynamicResourceManager::start() {
  if (ticker_.active()) return;
  ticker_ = sim_.every(options_.epoch_s, [this]() { epoch(); },
                       options_.epoch_s / 2);
}

void DynamicResourceManager::stop() { ticker_.cancel(); }

}  // namespace hybridmr::core
