// Profile database for Phase I (paper §III-A1, Algorithm 1).
//
// Stores historic job completion times — end-to-end plus separate map and
// reduce phase times — keyed by (job, environment, cluster size, data size).
#pragma once

#include <cmath>
#include <optional>
#include <string>
#include <vector>

namespace hybridmr::core {

struct ProfileEntry {
  std::string job_name;
  bool virtual_cluster = false;  // profiled on VMs or on native nodes
  int cluster_size = 0;          // number of Hadoop nodes
  double data_gb = 0;
  double jct_s = 0;
  double map_s = 0;
  double reduce_s = 0;
};

class ProfileDatabase {
 public:
  void add(ProfileEntry entry) { entries_.push_back(std::move(entry)); }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<ProfileEntry>& entries() const {
    return entries_;
  }

  /// Exact match (cluster size equal, data size within 2%).
  [[nodiscard]] std::optional<ProfileEntry> lookup(
      const std::string& job_name, bool virtual_cluster, int cluster_size,
      double data_gb) const;

  /// All entries for one (job, environment).
  [[nodiscard]] std::vector<ProfileEntry> for_job(
      const std::string& job_name, bool virtual_cluster) const;

  /// Entries for one (job, environment) at a fixed cluster size.
  [[nodiscard]] std::vector<ProfileEntry> with_cluster_size(
      const std::string& job_name, bool virtual_cluster,
      int cluster_size) const;

  /// Entries for one (job, environment) at a fixed data size (within 2%).
  [[nodiscard]] std::vector<ProfileEntry> with_data_size(
      const std::string& job_name, bool virtual_cluster,
      double data_gb) const;

 private:
  static bool data_close(double a, double b) {
    const double hi = a > b ? a : b;
    return hi <= 0 || std::abs(a - b) / hi < 0.02;
  }
  std::vector<ProfileEntry> entries_;
};

}  // namespace hybridmr::core
