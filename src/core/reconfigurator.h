// Dynamic cluster reconfiguration (paper §IV, "Design Trade-off Analysis"
// and conclusions: "it is possible to dynamically change the native and
// virtual cluster configurations to accommodate variations in workload
// mix"; enabled by on-demand virtualization à la Kooburat & Swift [22] and
// the near-native Dom-0 measurements of Fig. 2(c)).
//
// The Reconfigurator converts machines between the two duties at run time:
//   - virtualize: an idle native Hadoop node is decommissioned (tracker
//     drained, blocks re-replicated) and comes back as a virtualized host
//     carrying `vms_per_host` combined DataNode+TaskTracker VMs;
//   - nativize: an idle virtualized host sheds its VMs the same way and
//     rejoins as a native node.
// Both directions refuse while tasks are still running on the affected
// sites — drain first (the IPS's requeue action, or simply wait).
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "mapred/engine.h"
#include "storage/hdfs.h"

namespace hybridmr::telemetry {
struct Hub;
}  // namespace hybridmr::telemetry

namespace hybridmr::core {

class Reconfigurator {
 public:
  Reconfigurator(cluster::HybridCluster& cluster, storage::Hdfs& hdfs,
                 mapred::MapReduceEngine& mr)
      : cluster_(&cluster), hdfs_(&hdfs), mr_(&mr) {}

  struct Stats {
    int virtualized = 0;
    int nativized = 0;
  };

  /// True when the machine (and every VM on it) runs no task attempts, so
  /// it can be reconfigured without killing work.
  [[nodiscard]] bool idle(const cluster::Machine& machine) const;

  /// Converts an idle native Hadoop node into a virtualized host with
  /// `vms_per_host` VMs shaped like the standard guests (1 vCPU / 1 GB at
  /// density 2). Returns the new VM sites, empty on refusal.
  std::vector<cluster::VirtualMachine*> virtualize_node(
      cluster::Machine& machine, int vms_per_host = 2);

  /// Converts an idle virtualized host back into a native Hadoop node.
  /// The resident VMs are decommissioned (blocks re-replicated) and
  /// detached. Returns false on refusal.
  bool nativize_host(cluster::Machine& machine);

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Attaches the reconfigurator to a telemetry hub (null detaches).
  void set_telemetry(telemetry::Hub* hub) { tel_ = hub; }

 private:
  bool decommission_site(cluster::ExecutionSite& site);

  cluster::HybridCluster* cluster_;
  storage::Hdfs* hdfs_;
  mapred::MapReduceEngine* mr_;
  Stats stats_;
  telemetry::Hub* tel_ = nullptr;
};

}  // namespace hybridmr::core
