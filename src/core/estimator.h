// Estimator: statistical models of task run-time performance as a function
// of resource usage/allocation (paper §III-B1, following MROrchestrator
// [31] and TRACON [13]).
//
// Per task it accumulates epoch samples of (allocation, progress rate) and
// fits the paper's model forms:
//   - CPU:    linear regression        rate ~ a + b * cpu_alloc
//   - memory: piecewise-linear         rate ~ pw(mem_ratio)
//   - I/O:    exponential regression   rate ~ a * exp(b * io_alloc)
// The fitted models answer two questions the DRM/IPS ask:
//   1. how long until this task completes (progress-score time series ->
//      estimated completion time), and
//   2. how would its rate change under a different allocation (the
//      "resource imbalance" the PerformanceBalancer redistributes).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "cluster/resources.h"
#include "mapred/task.h"

namespace hybridmr::core {

struct TaskSample {
  double time = 0;
  double progress = 0;
  double rate = 0;  // progress per second since the previous sample
  cluster::Resources demand;
  cluster::Resources alloc;
};

/// Model of one task attempt, built from its sample history.
class TaskModel {
 public:
  void add(const TaskSample& sample);

  [[nodiscard]] std::size_t sample_count() const { return samples_.size(); }
  [[nodiscard]] const TaskSample& last() const { return samples_.back(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Predicted progress rate under allocation `alloc` for demand `demand`.
  /// Uses the fitted per-resource regressions when enough samples exist,
  /// otherwise the analytic proportional model.
  [[nodiscard]] double predict_rate(const cluster::Resources& alloc,
                                    const cluster::Resources& demand) const;

  /// Estimated seconds to completion at the current rate.
  [[nodiscard]] double estimated_remaining_s() const;

  /// Estimated seconds to completion if the task were granted its full
  /// demand (the balancer's target state).
  [[nodiscard]] double estimated_remaining_at_full_s() const;

  /// Resource with the largest relative gap between demand and allocation
  /// in the latest sample; nullopt when fully satisfied.
  [[nodiscard]] std::optional<cluster::ResourceKind> bottleneck() const;

  /// demand - alloc (componentwise, clamped at 0) from the latest sample.
  [[nodiscard]] cluster::Resources deficit() const;

  /// How much of a node this task occupies (normalized dominant share of
  /// its allocation) — the IPS's per-task interference estimate.
  [[nodiscard]] double interference_score(
      const cluster::Resources& node_capacity) const;

 private:
  std::vector<TaskSample> samples_;
};

/// Registry of task models for every running attempt.
class Estimator {
 public:
  /// Records one epoch observation for `attempt`.
  void observe(const mapred::TaskAttempt& attempt, double now);

  /// Model for an attempt (nullptr before the first observation).
  [[nodiscard]] const TaskModel* model(const mapred::TaskAttempt* a) const;

  /// Drops models for attempts not in the live set (call once per epoch).
  void retain_only(const std::vector<mapred::TaskAttempt*>& live);

  [[nodiscard]] std::size_t tracked() const { return models_.size(); }

 private:
  // hmr-state(owned-heap: the TaskModels live here; the keys are
  // back-references into Task::attempts_, dropped by retain_only())
  std::map<const mapred::TaskAttempt*, TaskModel> models_;
  std::map<const mapred::TaskAttempt*, double> last_progress_;
  std::map<const mapred::TaskAttempt*, double> last_time_;
};

}  // namespace hybridmr::core
