#include "core/profile_db.h"

#include <cmath>

namespace hybridmr::core {

std::optional<ProfileEntry> ProfileDatabase::lookup(
    const std::string& job_name, bool virtual_cluster, int cluster_size,
    double data_gb) const {
  for (const auto& e : entries_) {
    if (e.job_name == job_name && e.virtual_cluster == virtual_cluster &&
        e.cluster_size == cluster_size && data_close(e.data_gb, data_gb)) {
      return e;
    }
  }
  return std::nullopt;
}

std::vector<ProfileEntry> ProfileDatabase::for_job(
    const std::string& job_name, bool virtual_cluster) const {
  std::vector<ProfileEntry> out;
  for (const auto& e : entries_) {
    if (e.job_name == job_name && e.virtual_cluster == virtual_cluster) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<ProfileEntry> ProfileDatabase::with_cluster_size(
    const std::string& job_name, bool virtual_cluster,
    int cluster_size) const {
  std::vector<ProfileEntry> out;
  for (const auto& e : for_job(job_name, virtual_cluster)) {
    if (e.cluster_size == cluster_size) out.push_back(e);
  }
  return out;
}

std::vector<ProfileEntry> ProfileDatabase::with_data_size(
    const std::string& job_name, bool virtual_cluster, double data_gb) const {
  std::vector<ProfileEntry> out;
  for (const auto& e : for_job(job_name, virtual_cluster)) {
    if (data_close(e.data_gb, data_gb)) out.push_back(e);
  }
  return out;
}

}  // namespace hybridmr::core
