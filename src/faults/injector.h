// FaultInjector: deterministic, seed-driven failure injection.
//
// Executes a FaultSchedule against a live testbed and drives the recovery
// machinery end to end: machine crash + reboot (VM/tracker teardown, HDFS
// replica loss and re-replication), task-attempt failures with Hadoop-style
// bounded retries, tracker heartbeat timeouts with blacklisting and map
// re-execution, and rollback of migrations whose endpoints died. All victim
// picks and inter-arrival times come from the schedule's private RNG, so a
// chaos run reproduces bit-for-bit without disturbing the simulation's main
// random stream.
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "faults/schedule.h"
#include "mapred/engine.h"
#include "storage/hdfs.h"

namespace hybridmr::telemetry {
struct Hub;
}  // namespace hybridmr::telemetry

namespace hybridmr::faults {

class FaultInjector {
 public:
  struct Stats {
    int machine_crashes = 0;
    int machine_reboots = 0;
    int task_failures = 0;
    int tracker_timeouts = 0;
    int tracker_restores = 0;
    int migrations_aborted = 0;
    int datanodes_crashed = 0;
  };

  FaultInjector(sim::Simulation& sim, cluster::HybridCluster& cluster,
                storage::Hdfs& hdfs, mapred::MapReduceEngine& mr,
                FaultSchedule schedule)
      : sim_(sim),
        cluster_(cluster),
        hdfs_(hdfs),
        mr_(mr),
        schedule_(std::move(schedule)),
        rng_(sim.named_rng("faults.injector", schedule_.seed)) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every one-shot fault and starts the Poisson streams. Call
  /// once, before running the simulation.
  void arm();

  // --- direct injection (tests / custom chaos drivers) ---

  /// Crashes `machine` now: in-flight migrations touching it are rolled
  /// back, its trackers are lost (attempts requeued, map outputs
  /// re-executed), its DataNodes die (replicas re-replicated from
  /// survivors; jobs whose input lost its last replica fail), remaining
  /// workloads are torn down, VMs detach and the host powers off. With
  /// `reboot_after >= 0` the machine comes back — empty DataNodes
  /// re-registered, trackers un-blacklisted — after that delay. Returns
  /// false when the machine is already down.
  bool crash_machine(cluster::Machine& machine,
                     sim::Duration reboot_after = sim::Duration{-1.0});

  /// Reverses a crash: powers the machine on, re-attaches its VMs,
  /// re-registers (empty) DataNodes and restores its trackers.
  void reboot_machine(cluster::Machine& machine);

  /// Fails one running attempt — the first whose label starts with
  /// `label_prefix`, or a seeded-random one when empty. Returns true if an
  /// attempt was failed.
  bool fail_attempt(const std::string& label_prefix = "");

  /// Heartbeat timeout for the tracker on `site`; with `restore_after >=
  /// 0` the heartbeat comes back after that delay.
  bool timeout_tracker(cluster::ExecutionSite& site,
                       sim::Duration restore_after = sim::Duration{-1.0});

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }
  /// Machines currently crashed (not yet rebooted).
  [[nodiscard]] int machines_down() const {
    return static_cast<int>(down_.size());
  }

  /// Attaches the injector to a telemetry hub (null detaches).
  void set_telemetry(telemetry::Hub* hub) { tel_ = hub; }

 private:
  /// Everything needed to undo a crash on reboot.
  struct DownMachine {
    // hmr-state(back-reference: owner=HybridCluster::machines_)
    cluster::Machine* machine = nullptr;
    // hmr-state(back-reference: owner=HybridCluster::vms_)
    std::vector<cluster::VirtualMachine*> vms;
    // hmr-state(back-reference: owner=HybridCluster; roles to restore on
    // reboot — re-point with the site tree on fork)
    std::vector<cluster::ExecutionSite*> tracker_sites;
    // hmr-state(back-reference: owner=HybridCluster, same as tracker_sites)
    std::vector<cluster::ExecutionSite*> datanode_sites;
  };

  void fire(const FaultSpec& spec);
  void schedule_next_task_failure();
  void schedule_next_crash();
  [[nodiscard]] cluster::Machine* pick_machine(const std::string& target);
  [[nodiscard]] bool is_down(const cluster::Machine& machine) const;

  sim::Simulation& sim_;
  cluster::HybridCluster& cluster_;
  storage::Hdfs& hdfs_;
  mapred::MapReduceEngine& mr_;
  FaultSchedule schedule_;
  // hmr-state(back-reference: owner=Simulation::named_rngs_ — the
  // injector's failure clocks live in the core's named-stream registry so
  // snapshot/restore carries their positions)
  sim::Rng& rng_;
  Stats stats_;
  std::vector<DownMachine> down_;
  telemetry::Hub* tel_ = nullptr;
};

}  // namespace hybridmr::faults
