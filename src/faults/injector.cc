#include "faults/injector.h"

#include <algorithm>

#include "sim/log.h"
#include "telemetry/telemetry.h"

namespace hybridmr::faults {

using cluster::ExecutionSite;
using cluster::Machine;
using cluster::VirtualMachine;

void FaultInjector::arm() {
  for (const FaultSpec& spec : schedule_.one_shot) {
    // The injector outlives every pending event (the TestBed tears the
    // event queue down first), so the raw `this` capture is safe.
    // sim-lint: allow(capture-lifetime)
    sim_.at(spec.at, [this, spec]() { fire(spec); });
  }
  if (schedule_.task_failure_rate > 0) schedule_next_task_failure();
  if (schedule_.crash_rate > 0) schedule_next_crash();
}

void FaultInjector::fire(const FaultSpec& spec) {
  switch (spec.kind) {
    case FaultSpec::Kind::kMachineCrash: {
      Machine* m = pick_machine(spec.target);
      if (m != nullptr) crash_machine(*m, spec.recover_after);
      break;
    }
    case FaultSpec::Kind::kTaskFailure:
      fail_attempt(spec.target);
      break;
    case FaultSpec::Kind::kTrackerTimeout: {
      ExecutionSite* site = nullptr;
      if (spec.target.empty()) {
        const auto& trackers = mr_.trackers();
        if (!trackers.empty()) {
          site = &trackers[rng_.index(trackers.size())]->site();
        }
      } else {
        for (const auto& tr : mr_.trackers()) {
          if (tr->site().name() == spec.target) {
            site = &tr->site();
            break;
          }
        }
      }
      if (site != nullptr) timeout_tracker(*site, spec.recover_after);
      break;
    }
  }
}

void FaultInjector::schedule_next_task_failure() {
  const double gap = rng_.exponential(schedule_.task_failure_rate);
  if (schedule_.rate_horizon_s > 0 &&
      sim_.now() + gap > schedule_.rate_horizon_s) {
    return;
  }
  // sim-lint: allow(capture-lifetime)
  sim_.after(sim::Duration{gap}, [this]() {
    fail_attempt();
    schedule_next_task_failure();
  });
}

void FaultInjector::schedule_next_crash() {
  const double gap = rng_.exponential(schedule_.crash_rate);
  if (schedule_.rate_horizon_s > 0 &&
      sim_.now() + gap > schedule_.rate_horizon_s) {
    return;
  }
  // sim-lint: allow(capture-lifetime)
  sim_.after(sim::Duration{gap}, [this]() {
    Machine* m = pick_machine("");
    if (m != nullptr) crash_machine(*m, schedule_.crash_recover_after);
    schedule_next_crash();
  });
}

bool FaultInjector::is_down(const Machine& machine) const {
  return std::any_of(down_.begin(), down_.end(),
                     [&](const DownMachine& d) { return d.machine == &machine; });
}

Machine* FaultInjector::pick_machine(const std::string& target) {
  if (!target.empty()) {
    Machine* m = cluster_.machine(target);
    return m != nullptr && m->powered() && !is_down(*m) ? m : nullptr;
  }
  std::vector<Machine*> up;
  for (const auto& m : cluster_.machines()) {
    if (m->powered() && !is_down(*m)) up.push_back(m.get());
  }
  if (up.empty()) return nullptr;
  return up[rng_.index(up.size())];
}

bool FaultInjector::fail_attempt(const std::string& label_prefix) {
  mapred::TaskAttempt* victim = nullptr;
  const auto attempts = mr_.running_attempts();
  if (attempts.empty()) return false;
  if (label_prefix.empty()) {
    victim = attempts[rng_.index(attempts.size())];
  } else {
    for (mapred::TaskAttempt* a : attempts) {
      if (a->label().rfind(label_prefix, 0) == 0) {
        victim = a;
        break;
      }
    }
  }
  if (victim == nullptr) return false;
  ++stats_.task_failures;
  sim::log_info(sim_.now(), "faults", "task failure: " + victim->label());
  if (tel_ != nullptr) {
    tel_->registry.counter("faults.task_failures").add();
  }
  mr_.fail_attempt(*victim, /*ban_tracker=*/false);
  return true;
}

bool FaultInjector::timeout_tracker(ExecutionSite& site,
                                    sim::Duration restore_after) {
  if (!mr_.mark_tracker_lost(site)) return false;
  ++stats_.tracker_timeouts;
  if (tel_ != nullptr) {
    tel_->registry.counter("faults.tracker_timeouts").add();
  }
  if (restore_after >= sim::Duration{0}) {
    ExecutionSite* sp = &site;
    // sim-lint: allow(capture-lifetime)
    sim_.after(restore_after, [this, sp]() {
      if (mr_.restore_tracker(*sp)) ++stats_.tracker_restores;
    });
  }
  return true;
}

bool FaultInjector::crash_machine(Machine& machine,
                                  sim::Duration reboot_after) {
  if (!machine.powered() || is_down(machine)) return false;
  ++stats_.machine_crashes;
  sim::log_info(sim_.now(), "faults", "machine crash: " + machine.name());

  // 1) Migrations with a dead endpoint roll the VM back to its source (a
  //    VM migrating *off* this machine is still here and dies with it).
  stats_.migrations_aborted += cluster_.migrator().abort_involving(machine);

  DownMachine rec;
  rec.machine = &machine;
  rec.vms = machine.vms();  // snapshot: detach mutates the list

  std::vector<ExecutionSite*> sites;
  for (VirtualMachine* vm : rec.vms) sites.push_back(vm);
  sites.push_back(&machine);

  // 2) Replica loss first, in one batch, so no dying DataNode is chosen as
  //    a re-replication source or target and redispatched tasks (step 3)
  //    only read from survivors.
  std::vector<ExecutionSite*> dn_sites;
  for (ExecutionSite* s : sites) {
    if (hdfs_.datanode_on(s) != nullptr) dn_sites.push_back(s);
  }
  const int lost_before = hdfs_.blocks_lost();
  stats_.datanodes_crashed += hdfs_.crash_datanodes(dn_sites);
  rec.datanode_sites = dn_sites;
  const int blocks_lost = hdfs_.blocks_lost() - lost_before;
  // A job whose input lost its last replica can never finish its reads.
  for (const auto& job : mr_.jobs()) {
    if (job->finished()) continue;
    if (hdfs_.has_lost_block(job->input_file())) {
      mr_.fail_job(*job, "input block lost in crash of " + machine.name());
    }
  }

  // 3) Tracker loss: blacklist, requeue resident + dependent attempts,
  //    re-execute completed map outputs stored on the dead sites.
  for (ExecutionSite* s : sites) {
    if (mr_.mark_tracker_lost(*s)) rec.tracker_sites.push_back(s);
  }

  // 4) Tear down whatever still runs on the dying sites — HDFS serve
  //    flows, interactive workloads, leftover streams. Removal never fires
  //    completions, so nothing observes the half-dead state.
  for (ExecutionSite* s : sites) {
    while (!s->workloads().empty()) {
      s->remove(s->workloads().back().get());
    }
  }

  // 5) Detach the (now empty) VMs and cut the power.
  for (VirtualMachine* vm : rec.vms) machine.detach_vm(vm);
  machine.set_powered(false);

  if (tel_ != nullptr) {
    tel_->registry.counter("faults.machine_crashes").add();
    tel_->trace.instant(
        sim_.now(), telemetry::EventKind::kMachineCrash, machine.name(),
        machine.name(),
        {{"vms", telemetry::json_num(static_cast<int>(rec.vms.size()))},
         {"datanodes",
          telemetry::json_num(static_cast<int>(dn_sites.size()))},
         {"trackers",
          telemetry::json_num(static_cast<int>(rec.tracker_sites.size()))}});
    if (!dn_sites.empty()) {
      tel_->registry.counter("faults.replica_losses").add();
      tel_->trace.instant(
          sim_.now(), telemetry::EventKind::kReplicaLoss, machine.name(),
          machine.name(),
          {{"blocks_lost", telemetry::json_num(blocks_lost)}});
    }
  }
  down_.push_back(std::move(rec));

  if (reboot_after >= sim::Duration{0}) {
    Machine* mp = &machine;
    // sim-lint: allow(capture-lifetime)
    sim_.after(reboot_after, [this, mp]() { reboot_machine(*mp); });
  }
  return true;
}

void FaultInjector::reboot_machine(Machine& machine) {
  auto it = std::find_if(down_.begin(), down_.end(), [&](const DownMachine& d) {
    return d.machine == &machine;
  });
  if (it == down_.end()) return;
  DownMachine rec = std::move(*it);
  down_.erase(it);

  ++stats_.machine_reboots;
  sim::log_info(sim_.now(), "faults", "machine reboot: " + machine.name());
  machine.set_powered(true);
  for (VirtualMachine* vm : rec.vms) machine.attach_vm(vm);
  // DataNodes come back empty: their blocks were re-replicated elsewhere
  // during the crash, and new placements may use them again.
  for (ExecutionSite* s : rec.datanode_sites) hdfs_.add_datanode(*s);
  for (ExecutionSite* s : rec.tracker_sites) {
    if (mr_.restore_tracker(*s)) ++stats_.tracker_restores;
  }
  if (tel_ != nullptr) {
    tel_->registry.counter("faults.machine_reboots").add();
    tel_->trace.instant(sim_.now(), telemetry::EventKind::kMachineReboot,
                        machine.name(), machine.name());
  }
}

}  // namespace hybridmr::faults
