// Declarative fault schedules for the FaultInjector.
//
// A schedule mixes one-shot faults pinned to simulated instants with
// Poisson-rate fault streams, all drawn from the schedule's own seed so a
// chaos run is reproducible bit-for-bit and fault draws never perturb the
// simulation's main RNG stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/units.h"

namespace hybridmr::faults {

/// One scheduled fault.
struct FaultSpec {
  enum class Kind {
    kMachineCrash,    // host dies: VMs, trackers and replicas go with it
    kTaskFailure,     // one running attempt fails (counts against retries)
    kTrackerTimeout,  // heartbeat loss: blacklist without killing the host
  };

  Kind kind = Kind::kTaskFailure;
  /// Simulated time the fault fires.
  double at = 0;
  /// What to hit. Machine name for kMachineCrash, attempt-label prefix
  /// (e.g. "sort-j0-m") for kTaskFailure, site name for kTrackerTimeout.
  /// Empty = seeded random pick among valid victims at fire time.
  std::string target;
  /// Recovery delay after the fault (machine reboot / tracker heartbeat
  /// return). Negative = never recovers.
  sim::Duration recover_after{-1.0};
};

/// A full fault plan for one run.
struct FaultSchedule {
  std::vector<FaultSpec> one_shot;

  /// Poisson rate (faults/simulated second) of random task-attempt
  /// failures; 0 disables the stream.
  double task_failure_rate = 0;
  /// Poisson rate of random machine crashes; 0 disables the stream.
  double crash_rate = 0;
  /// Reboot delay applied to rate-generated crashes.
  sim::Duration crash_recover_after{60.0};
  /// Rate streams stop scheduling past this simulated time. <= 0 means no
  /// horizon — beware that an ever-rearming stream keeps the event queue
  /// non-empty, so run_jobs()-style "drain the queue" loops never exit.
  double rate_horizon_s = 0;

  /// Seed for the injector's private RNG (victim picks, inter-arrivals).
  std::uint64_t seed = 0x5eedf417;

  [[nodiscard]] bool empty() const {
    return one_shot.empty() && task_failure_rate <= 0 && crash_rate <= 0;
  }
};

}  // namespace hybridmr::faults
