// Plain-text table printer for the benchmark harnesses: each bench binary
// regenerates one of the paper's figures as rows of (series, value).
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace hybridmr::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::ostream& os = std::cout) const;

  /// The same data as RFC-4180-style CSV (quotes cells containing commas
  /// or quotes), for plotting the regenerated figures.
  void write_csv(std::ostream& os) const;
  [[nodiscard]] std::string csv() const;

  /// Formats a double with `precision` decimals.
  static std::string num(double v, int precision = 1);
  /// Formats a ratio as a percentage string ("12.3%").
  static std::string pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a figure banner: "=== Figure 1(a): ... ===".
void banner(const std::string& title, std::ostream& os = std::cout);

}  // namespace hybridmr::harness
