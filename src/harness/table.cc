#include "harness/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace hybridmr::harness {

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "  ";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    os << "\n";
  };
  print_row(headers_);
  std::size_t total = 2;
  for (auto w : widths) total += w + 2;
  os << "  " << std::string(total - 2, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

namespace {

void write_csv_cell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (char ch : cell) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}

void write_csv_row(std::ostream& os, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) os << ',';
    write_csv_cell(os, row[i]);
  }
  os << '\n';
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  write_csv_row(os, headers_);
  for (const auto& row : rows_) write_csv_row(os, row);
}

std::string Table::csv() const {
  std::ostringstream out;
  write_csv(out);
  return out.str();
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

void banner(const std::string& title, std::ostream& os) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace hybridmr::harness
