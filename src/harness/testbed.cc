#include "harness/testbed.h"

#include <algorithm>
#include <cassert>

#include "mapred/scheduler.h"

namespace hybridmr::harness {

TestBed::TestBed(Options options) : options_(std::move(options)) {
  sim_ = std::make_unique<sim::Simulation>(options_.seed);
  cluster_ = std::make_unique<cluster::HybridCluster>(*sim_,
                                                      options_.calibration);
  hdfs_ = std::make_unique<storage::Hdfs>(*sim_, options_.calibration);
  mapred::MapReduceEngine::Options mr_options;
  mr_options.speculative_execution = options_.speculative_execution;
  mr_ = std::make_unique<mapred::MapReduceEngine>(
      *sim_, *hdfs_, options_.calibration,
      mapred::make_scheduler(options_.scheduler), mr_options);
}

cluster::ExecutionSite* TestBed::register_node(cluster::ExecutionSite& site,
                                               bool datanode, bool tracker) {
  if (datanode) hdfs_->add_datanode(site);
  if (tracker) mr_->add_tracker(site);
  nodes_.push_back(&site);
  return &site;
}

std::vector<cluster::ExecutionSite*> TestBed::add_native_nodes(int count) {
  std::vector<cluster::ExecutionSite*> out;
  for (auto* m : cluster_->add_machines(count, "native")) {
    out.push_back(register_node(*m, /*datanode=*/true, /*tracker=*/true));
  }
  return out;
}

std::pair<double, double> TestBed::partitioned_vm_shape(
    int vms_per_host) const {
  const auto& cal = options_.calibration;
  // One vCPU minimum: Xen's credit scheduler is work-conserving, so a
  // lone busy VM can use a full core even at high packing density.
  const double vcpus = std::max(1.0, cal.pm_cores / vms_per_host);
  // Up to two VMs per host, half of each VM's memory slice goes to the
  // guest (the rest stays with Dom-0 and the page cache): at 2 VMs per
  // dual-core 4 GB server this is exactly the paper's 1 vCPU / 1 GB
  // configuration. Denser packings squeeze Dom-0 instead (0.75 x slice).
  const double memory = vms_per_host <= 2
                            ? cal.pm_memory_mb / (2.0 * vms_per_host)
                            : cal.pm_memory_mb / vms_per_host;
  return {vcpus, memory};
}

std::vector<cluster::ExecutionSite*> TestBed::add_virtual_nodes(
    int hosts, int vms_per_host, bool partitioned) {
  std::vector<cluster::ExecutionSite*> out;
  const auto [vcpus, memory] = partitioned_vm_shape(vms_per_host);
  for (auto* m : cluster_->add_machines(hosts, "vhost")) {
    for (int i = 0; i < vms_per_host; ++i) {
      auto* vm = partitioned ? cluster_->add_vm(*m, "", vcpus, memory)
                             : cluster_->add_vm(*m);
      out.push_back(register_node(*vm, /*datanode=*/true, /*tracker=*/true));
    }
  }
  return out;
}

std::vector<cluster::ExecutionSite*> TestBed::add_split_nodes(
    int hosts, int compute_vms_per_host) {
  std::vector<cluster::ExecutionSite*> out;
  const auto [vcpus, memory] = partitioned_vm_shape(compute_vms_per_host);
  for (auto* m : cluster_->add_machines(hosts, "split-host")) {
    // One lean storage VM per host: it only runs the DataNode daemon, so
    // half a vCPU and a small guest heap suffice — its memory is almost
    // entirely page cache (the split architecture's win).
    auto* dn_vm = cluster_->add_vm(*m, "", 0.5, 512);
    hdfs_->add_datanode(*dn_vm);
    // ...and compute VMs shaped like the combined deployment's.
    for (int i = 0; i < compute_vms_per_host; ++i) {
      auto* vm = cluster_->add_vm(*m, "", vcpus, memory);
      out.push_back(register_node(*vm, /*datanode=*/false, /*tracker=*/true));
    }
  }
  return out;
}

std::vector<cluster::ExecutionSite*> TestBed::add_dom0_nodes(int count) {
  std::vector<cluster::ExecutionSite*> out;
  const auto& cal = options_.calibration;
  for (auto* m : cluster_->add_machines(count, "dom0-host")) {
    auto* vm = cluster_->add_vm(*m, m->name() + "-dom0", cal.pm_cores,
                                cal.pm_memory_mb);
    vm->set_dom0(true);
    out.push_back(register_node(*vm, /*datanode=*/true, /*tracker=*/true));
  }
  return out;
}

std::vector<cluster::Machine*> TestBed::add_plain_machines(int count) {
  return cluster_->add_machines(count, "plain");
}

cluster::VirtualMachine* TestBed::add_plain_vm(cluster::Machine& host) {
  return cluster_->add_vm(host);
}

double TestBed::run_job(const mapred::JobSpec& spec) {
  mapred::Job* job = mr_->submit(spec);
  while (!job->finished() && sim_->run_until(sim_->now() + 600) > 0) {
  }
  assert(job->finished() && "job did not finish (deadlocked cluster?)");
  return job->jct();
}

std::vector<double> TestBed::run_jobs(
    const std::vector<mapred::JobSpec>& specs) {
  std::vector<mapred::Job*> jobs;
  jobs.reserve(specs.size());
  for (const auto& spec : specs) jobs.push_back(mr_->submit(spec));
  bool all_done = false;
  while (!all_done) {
    if (sim_->run_until(sim_->now() + 600) == 0) break;
    all_done = true;
    for (auto* j : jobs) all_done = all_done && j->finished();
  }
  std::vector<double> jcts;
  jcts.reserve(jobs.size());
  for (auto* j : jobs) jcts.push_back(j->jct());
  return jcts;
}

}  // namespace hybridmr::harness
