#include "harness/testbed.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "interactive/sla.h"
#include "mapred/scheduler.h"
#include "stats/summary.h"

namespace hybridmr::harness {

TestBed::TestBed(Options options) : options_(std::move(options)) {
  // Opt-in verbosity without recompiling: HYBRIDMR_LOG=debug|info|warn|...
  if (const char* env = std::getenv("HYBRIDMR_LOG")) {
    if (auto level = sim::Log::parse_level(env)) {
      sim::Log::threshold() = *level;
    }
  }
  // Opt-in profiling without recompiling callers: HYBRIDMR_PROFILE=1|on
  // enables, =0|off disables, unset defers to Options::profile.
  if (const char* env = std::getenv("HYBRIDMR_PROFILE")) {
    const std::string v = env;
    if (v == "1" || v == "on") options_.profile = true;
    if (v == "0" || v == "off") options_.profile = false;
  }
  sim_ = std::make_unique<sim::Simulation>(options_.seed);
  if ((options_.telemetry || options_.profile) && telemetry::compiled_in()) {
    tel_ = std::make_unique<telemetry::Hub>();
  }
  if (tel_ && options_.profile) {
    // Enable before any set_telemetry call below: components cache their
    // profiler pointer (and intern scopes) while wiring.
    tel_->profiler.enable();
    tel_->profiler.set_simulation(sim_.get());
    tel_->profiler.set_trace(options_.telemetry ? &tel_->trace : nullptr);
    tel_->profiler.set_watchdog(options_.watchdog, nullptr);
    sim_->set_probe(&tel_->profiler);
  }
  cluster_ = std::make_unique<cluster::HybridCluster>(*sim_,
                                                      options_.calibration);
  cluster_->set_eager_reallocation(options_.eager_reallocation);
  cluster_->set_eager_reschedule(options_.eager_reschedule);
  hdfs_ = std::make_unique<storage::Hdfs>(*sim_, options_.calibration);
  mapred::MapReduceEngine::Options mr_options;
  mr_options.speculative_execution = options_.speculative_execution;
  mr_options.max_attempts = options_.max_task_attempts;
  mr_options.naive_dispatch = options_.naive_dispatch;
  mr_ = std::make_unique<mapred::MapReduceEngine>(
      *sim_, *hdfs_, options_.calibration,
      mapred::make_scheduler(options_.scheduler), mr_options);
  if (tel_) {
    cluster_->set_telemetry(tel_.get());
    mr_->set_telemetry(tel_.get());
    hdfs_->set_telemetry(tel_.get());
  }
  if (!options_.faults.empty()) {
    faults_ = std::make_unique<faults::FaultInjector>(
        *sim_, *cluster_, *hdfs_, *mr_, options_.faults);
    if (tel_) faults_->set_telemetry(tel_.get());
    faults_->arm();
  }
  // Declare every engine subsystem whose state the sim-core snapshot does
  // NOT capture: under HYBRIDMR_AUDIT a full-scope Simulation::snapshot()
  // on a wired testbed now hard-fails instead of masquerading as a fork
  // source (use whatif() for full-engine forks, or acknowledge the
  // exclusion with SnapshotScope::kCoreOnly).
  sim_->register_state_domain("cluster");
  sim_->register_state_domain("storage.hdfs");
  sim_->register_state_domain("mapred.engine");
  if (faults_) sim_->register_state_domain("faults.injector");
}

whatif::WhatIfEngine& TestBed::whatif() {
  if (!whatif_) whatif_ = std::make_unique<whatif::WhatIfEngine>(*sim_);
  return *whatif_;
}

cluster::ExecutionSite* TestBed::register_node(cluster::ExecutionSite& site,
                                               bool datanode, bool tracker) {
  if (datanode) hdfs_->add_datanode(site);
  if (tracker) mr_->add_tracker(site);
  nodes_.push_back(&site);
  return &site;
}

std::vector<cluster::ExecutionSite*> TestBed::add_native_nodes(int count) {
  std::vector<cluster::ExecutionSite*> out;
  for (auto* m : cluster_->add_machines(count, "native")) {
    out.push_back(register_node(*m, /*datanode=*/true, /*tracker=*/true));
  }
  return out;
}

std::pair<sim::CoreShare, sim::MegaBytes> TestBed::partitioned_vm_shape(
    int vms_per_host) const {
  const auto& cal = options_.calibration;
  // One vCPU minimum: Xen's credit scheduler is work-conserving, so a
  // lone busy VM can use a full core even at high packing density.
  const sim::CoreShare vcpus{std::max(1.0, cal.pm_cores / vms_per_host)};
  // Up to two VMs per host, half of each VM's memory slice goes to the
  // guest (the rest stays with Dom-0 and the page cache): at 2 VMs per
  // dual-core 4 GB server this is exactly the paper's 1 vCPU / 1 GB
  // configuration. Denser packings squeeze Dom-0 instead (0.75 x slice).
  const sim::MegaBytes memory = vms_per_host <= 2
                                    ? cal.pm_memory_mb / (2.0 * vms_per_host)
                                    : cal.pm_memory_mb / vms_per_host;
  return {vcpus, memory};
}

std::vector<cluster::ExecutionSite*> TestBed::add_virtual_nodes(
    int hosts, int vms_per_host, bool partitioned) {
  std::vector<cluster::ExecutionSite*> out;
  const auto [vcpus, memory] = partitioned_vm_shape(vms_per_host);
  for (auto* m : cluster_->add_machines(hosts, "vhost")) {
    for (int i = 0; i < vms_per_host; ++i) {
      auto* vm = partitioned ? cluster_->add_vm(*m, "", vcpus, memory)
                             : cluster_->add_vm(*m);
      out.push_back(register_node(*vm, /*datanode=*/true, /*tracker=*/true));
    }
  }
  return out;
}

std::vector<cluster::ExecutionSite*> TestBed::add_split_nodes(
    int hosts, int compute_vms_per_host) {
  std::vector<cluster::ExecutionSite*> out;
  const auto [vcpus, memory] = partitioned_vm_shape(compute_vms_per_host);
  for (auto* m : cluster_->add_machines(hosts, "split-host")) {
    // One lean storage VM per host: it only runs the DataNode daemon, so
    // half a vCPU and a small guest heap suffice — its memory is almost
    // entirely page cache (the split architecture's win).
    auto* dn_vm =
        cluster_->add_vm(*m, "", sim::CoreShare{0.5}, sim::MegaBytes{512});
    hdfs_->add_datanode(*dn_vm);
    // ...and compute VMs shaped like the combined deployment's.
    for (int i = 0; i < compute_vms_per_host; ++i) {
      auto* vm = cluster_->add_vm(*m, "", vcpus, memory);
      out.push_back(register_node(*vm, /*datanode=*/false, /*tracker=*/true));
    }
  }
  return out;
}

std::vector<cluster::ExecutionSite*> TestBed::add_dom0_nodes(int count) {
  std::vector<cluster::ExecutionSite*> out;
  const auto& cal = options_.calibration;
  for (auto* m : cluster_->add_machines(count, "dom0-host")) {
    auto* vm = cluster_->add_vm(*m, m->name() + "-dom0",
                                sim::CoreShare{cal.pm_cores},
                                cal.pm_memory_mb);
    vm->set_dom0(true);
    out.push_back(register_node(*vm, /*datanode=*/true, /*tracker=*/true));
  }
  return out;
}

std::vector<cluster::Machine*> TestBed::add_plain_machines(int count) {
  return cluster_->add_machines(count, "plain");
}

cluster::VirtualMachine* TestBed::add_plain_vm(cluster::Machine& host) {
  return cluster_->add_vm(host);
}

// A watchdog stall requests a Simulation::stop(), but run_until() resets
// that request on every call — so the run loops below must also check the
// profiler, or they would resume a stalled run forever.
bool TestBed::stalled() const {
  return tel_ && tel_->profiler.stalled();
}

double TestBed::run_job(const mapred::JobSpec& spec) {
  mapred::Job* job = mr_->submit(spec);
  while (!job->finished() && !stalled() &&
         sim_->run_until(sim_->now() + 600) > 0) {
  }
  assert((job->finished() || stalled()) &&
         "job did not finish (deadlocked cluster?)");
  return job->jct();
}

std::vector<double> TestBed::run_jobs(
    const std::vector<mapred::JobSpec>& specs) {
  std::vector<mapred::Job*> jobs;
  jobs.reserve(specs.size());
  for (const auto& spec : specs) jobs.push_back(mr_->submit(spec));
  bool all_done = false;
  while (!all_done && !stalled()) {
    if (sim_->run_until(sim_->now() + 600) == 0) break;
    all_done = true;
    for (auto* j : jobs) all_done = all_done && j->finished();
  }
  std::vector<double> jcts;
  jcts.reserve(jobs.size());
  for (auto* j : jobs) jcts.push_back(j->jct());
  return jcts;
}

telemetry::RunReport TestBed::report(
    const std::vector<const interactive::InteractiveApp*>& apps) const {
  // Publish any telemetry samples still withheld for same-instant
  // coalescing, so the registry snapshot below is complete.
  cluster_->reallocator().flush_samples();
  telemetry::RunReport report;
  const double end = sim_->now();
  report.sim_end_s = end;
  report.events_processed = sim_->events_processed();
  report.clamped_past_events = sim_->clamped_past_events();
  report.events_scheduled = sim_->events_scheduled();
  report.events_cancelled = sim_->events_cancelled();
  report.events_deferred = sim_->events_deferred();
  report.max_queue_depth = sim_->max_queue_depth();
  report.max_event_fanout = sim_->max_event_fanout();
  report.flush_scheduled_events = sim_->flush_scheduled_events();
  report.registry = tel_ ? &tel_->registry : nullptr;
  report.profiler = profiler();

  for (const auto& job : mr_->jobs()) {
    telemetry::RunReport::JobRow row;
    row.id = job->id();
    row.name = job->spec().name;
    row.state = mapred::to_string(job->state());
    row.maps = static_cast<int>(job->maps().size());
    row.reduces = static_cast<int>(job->reduces().size());
    row.submit_s = job->submit_time();
    row.finish_s = job->finish_time();
    row.jct_s = job->jct();
    row.map_phase_s = job->map_phase_seconds();
    row.reduce_phase_s = job->reduce_phase_seconds();
    row.shuffle_mb = job->total_map_output_mb();
    report.jobs.push_back(std::move(row));
  }

  // Machine series are resampled into fixed windows so reports stay small
  // on long runs: 10 s windows, widened to cap a run at ~2000 points.
  double window = 10.0;
  if (end / window > 2000) window = end / 2000;
  for (const auto& m : cluster_->machines()) {
    telemetry::RunReport::MachineRow row;
    row.name = m->name();
    row.vms = static_cast<int>(m->vms().size());
    row.powered = m->powered();
    row.mean_cpu =
        m->utilization_series(cluster::ResourceKind::kCpu).mean_in(0, end);
    row.mean_memory =
        m->utilization_series(cluster::ResourceKind::kMemory).mean_in(0, end);
    row.mean_disk =
        m->utilization_series(cluster::ResourceKind::kDisk).mean_in(0, end);
    row.mean_net =
        m->utilization_series(cluster::ResourceKind::kNet).mean_in(0, end);
    row.energy_joules = m->energy().joules(0, end);
    row.mean_watts = m->energy().mean_watts(0, end);
    const auto& cpu =
        m->utilization_series(cluster::ResourceKind::kCpu);
    const auto& power = m->energy().series();
    for (double t = 0; t < end; t += window) {
      const double t1 = std::min(t + window, end);
      row.cpu_series.push_back({t, cpu.mean_in(t, t1)});
      row.power_series.push_back({t, power.mean_in(t, t1)});
    }
    report.machines.push_back(std::move(row));
  }

  for (const auto* app : apps) {
    if (app == nullptr) continue;
    telemetry::RunReport::AppRow row;
    row.name = app->name();
    row.sla_s = app->params().sla_s;
    const std::vector<double> values = app->response_series().values();
    row.samples = values.size();
    row.mean_s = stats::mean(values);
    row.p50_s = stats::percentile(values, 50);
    row.p95_s = stats::percentile(values, 95);
    row.p99_s = stats::percentile(values, 99);
    row.max_s =
        values.empty() ? 0 : *std::max_element(values.begin(), values.end());
    row.violation_fraction =
        interactive::SlaMonitor::violation_fraction(*app, 0, end);
    report.apps.push_back(std::move(row));
  }

  return report;
}

}  // namespace hybridmr::harness
