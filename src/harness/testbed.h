// TestBed: one-stop wiring of the simulated testbed.
//
// Owns a Simulation, a HybridCluster, an Hdfs instance and a MapReduceEngine,
// and provides the cluster shapes used throughout the paper's evaluation:
// native nodes, virtualized hosts (k VMs per PM), Dom-0 quasi-native nodes,
// and the split TaskTracker/DataNode architecture (Fig. 3).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "faults/injector.h"
#include "interactive/app.h"
#include "mapred/engine.h"
#include "sim/simulation.h"
#include "storage/hdfs.h"
#include "telemetry/telemetry.h"
#include "whatif/fork.h"
#include "workload/benchmarks.h"

namespace hybridmr::harness {

class TestBed {
 public:
  struct Options {
    std::uint64_t seed = 42;
    std::string scheduler = "fair";  // paper's testbed uses FairScheduler
    bool speculative_execution = true;
    /// Wires a telemetry::Hub through cluster + engine (no-op when the
    /// build has telemetry compiled out).
    bool telemetry = true;
    /// Enables the simulation profiler (scoped wall timers + deterministic
    /// work-attribution counters; see telemetry/profiler.h). Forces a hub
    /// even when `telemetry` is false. The HYBRIDMR_PROFILE environment
    /// variable (1/on/0/off) overrides this at construction, so any
    /// harness binary can be profiled without a rebuild. No-op when
    /// telemetry is compiled out.
    bool profile = false;
    /// Watchdog for long runs, active only when `profile` is on: zero
    /// thresholds disable each check (see Profiler::WatchdogOptions).
    telemetry::Profiler::WatchdogOptions watchdog{};
    /// Recompute machine allocations on every mutation instead of
    /// deferring + coalescing per event timestamp. Slower; kept for the
    /// determinism-equivalence test (same seed, both modes, byte-identical
    /// reports).
    bool eager_reallocation = false;
    /// Retry bound forwarded to MapReduceEngine::Options::max_attempts.
    int max_task_attempts = 4;
    /// Dispatch by full tracker re-scan instead of the free-slot offer set
    /// (forwarded to MapReduceEngine::Options::naive_dispatch). Slower;
    /// kept for the placement-equivalence test.
    bool naive_dispatch = false;
    /// Cancel/re-push workload completion events eagerly instead of the
    /// lazy postpone-in-place path (forwarded to the cluster's machines).
    /// Slower; kept for the reschedule-equivalence test.
    bool eager_reschedule = false;
    /// Fault plan executed against the run; an empty schedule (default)
    /// constructs no injector at all.
    faults::FaultSchedule faults{};
    cluster::Calibration calibration = cluster::Calibration::standard();
  };

  TestBed() : TestBed(Options{}) {}
  explicit TestBed(Options options);

  [[nodiscard]] sim::Simulation& sim() { return *sim_; }
  [[nodiscard]] cluster::HybridCluster& cluster() { return *cluster_; }
  [[nodiscard]] storage::Hdfs& hdfs() { return *hdfs_; }
  [[nodiscard]] mapred::MapReduceEngine& mr() { return *mr_; }
  /// The armed fault injector; null when Options::faults was empty.
  [[nodiscard]] faults::FaultInjector* faults() { return faults_.get(); }
  [[nodiscard]] const cluster::Calibration& calibration() const {
    return options_.calibration;
  }

  /// The run's telemetry hub; null when disabled or compiled out.
  [[nodiscard]] telemetry::Hub* telemetry() const { return tel_.get(); }

  /// The what-if engine over this testbed's simulation, built on first
  /// use. Forked scenarios and lookaheads clone the entire wired engine
  /// (docs/WHATIF.md); sweep hundreds of them from one warmed state.
  [[nodiscard]] whatif::WhatIfEngine& whatif();

  /// The run's profiler; null unless profiling is live (Options::profile /
  /// HYBRIDMR_PROFILE with telemetry compiled in).
  [[nodiscard]] telemetry::Profiler* profiler() const {
    return tel_ && tel_->profiler.enabled() ? &tel_->profiler : nullptr;
  }

  /// Builds the run report from the live engine/cluster state. Pass the
  /// interactive apps (e.g. from HybridMRScheduler::apps()) to include
  /// per-app SLA percentiles.
  [[nodiscard]] telemetry::RunReport report(
      const std::vector<const interactive::InteractiveApp*>& apps = {}) const;

  // --- cluster shapes (each call adds nodes; mix freely) ---

  /// Native Hadoop nodes: one DataNode + TaskTracker per physical machine.
  std::vector<cluster::ExecutionSite*> add_native_nodes(int count);

  /// Virtualized Hadoop: `hosts` PMs each running `vms_per_host` VMs, every
  /// VM a combined DataNode + TaskTracker (default Hadoop deployment).
  /// With `partitioned` (default) each VM gets an equal slice of the host:
  /// pm_cores/k vCPUs and pm_memory/(2k) MB — at k=2 exactly the paper's
  /// 1 vCPU / 1 GB guests. With partitioned=false every VM is the paper's
  /// fixed 1 vCPU / 1 GB shape regardless of packing density (used by the
  /// consolidation experiments of Fig. 2(a)).
  std::vector<cluster::ExecutionSite*> add_virtual_nodes(
      int hosts, int vms_per_host, bool partitioned = true);

  /// Split architecture (paper Fig. 3): per host, one dedicated DataNode VM
  /// plus `compute_vms_per_host` TaskTracker-only VMs.
  std::vector<cluster::ExecutionSite*> add_split_nodes(
      int hosts, int compute_vms_per_host);

  /// VM shape for `vms_per_host`-way partitioning of one host.
  [[nodiscard]] std::pair<sim::CoreShare, sim::MegaBytes>
  partitioned_vm_shape(int vms_per_host) const;

  /// Dom-0 deployment: Hadoop runs in the privileged domain with the full
  /// machine's resources (paper Fig. 2(c)).
  std::vector<cluster::ExecutionSite*> add_dom0_nodes(int count);

  /// Physical machines with *no* Hadoop role (hosts for interactive VMs).
  std::vector<cluster::Machine*> add_plain_machines(int count);

  /// A VM on `host` with no Hadoop role (interactive app placement).
  cluster::VirtualMachine* add_plain_vm(cluster::Machine& host);

  // --- execution helpers ---

  /// Submits `spec` and runs the simulation until the job finishes.
  /// Returns the job completion time in seconds.
  double run_job(const mapred::JobSpec& spec);

  /// Submits all specs at once, runs to completion, returns each JCT
  /// in submission order.
  std::vector<double> run_jobs(const std::vector<mapred::JobSpec>& specs);

  /// Runs until simulated time `t` (use when interactive apps keep the
  /// event queue non-empty).
  void run_until(double t) { sim_->run_until(t); }

  /// All Hadoop execution sites registered so far.
  [[nodiscard]] const std::vector<cluster::ExecutionSite*>& nodes() const {
    return nodes_;
  }

 private:
  cluster::ExecutionSite* register_node(cluster::ExecutionSite& site,
                                        bool datanode, bool tracker);
  /// True once the profiler watchdog declared this run stalled.
  [[nodiscard]] bool stalled() const;

  Options options_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<telemetry::Hub> tel_;
  std::unique_ptr<cluster::HybridCluster> cluster_;
  std::unique_ptr<storage::Hdfs> hdfs_;
  std::unique_ptr<mapred::MapReduceEngine> mr_;
  std::unique_ptr<faults::FaultInjector> faults_;
  std::unique_ptr<whatif::WhatIfEngine> whatif_;
  // hmr-state(back-reference: registration order over sites owned by
  // cluster_; fork rebuilds it alongside the cloned site tree)
  std::vector<cluster::ExecutionSite*> nodes_;
};

}  // namespace hybridmr::harness
