// SLA monitoring for interactive applications (input to the IPS).
#pragma once

#include <vector>

#include "interactive/app.h"

namespace hybridmr::interactive {

class SlaMonitor {
 public:
  void track(InteractiveApp& app) { apps_.push_back(&app); }

  [[nodiscard]] const std::vector<InteractiveApp*>& apps() const {
    return apps_;
  }

  /// Apps currently above their SLA.
  [[nodiscard]] std::vector<InteractiveApp*> violators() const {
    std::vector<InteractiveApp*> out;
    for (auto* app : apps_) {
      if (app->running() && app->sla_violated()) out.push_back(app);
    }
    return out;
  }

  [[nodiscard]] bool any_violation() const { return !violators().empty(); }

  /// Fraction of samples above SLA for one app over [t0, t1].
  static double violation_fraction(const InteractiveApp& app, double t0,
                                   double t1) {
    int total = 0;
    int bad = 0;
    for (const auto& s : app.response_series().samples()) {
      if (s.time < t0 || s.time > t1) continue;
      ++total;
      if (sim::Duration{s.value} > app.params().sla_s) ++bad;
    }
    return total > 0 ? static_cast<double>(bad) / total : 0;
  }

 private:
  std::vector<InteractiveApp*> apps_;
};

}  // namespace hybridmr::interactive
