// Closed-loop interactive (transactional) applications.
//
// Substitute for RUBiS / TPC-W / Olio: N clients cycle between think time Z
// and a request served by the application's VM. The app posts its
// over-provisioned resource demand to the site (the paper's premise: spare
// capacity exists on interactive VMs) and, each control epoch, derives its
// response time from the capacity it was actually granted, via a closed
// M/G/1-PS approximation. Interference from collocated batch tasks shrinks
// the grant, which raises latency — exactly the signal the IPS watches.
#pragma once

#include <memory>
#include <string>

#include "cluster/machine.h"
#include "sim/simulation.h"
#include "stats/timeseries.h"

namespace hybridmr::telemetry {
struct Hub;
class TimeSeriesMetric;
}  // namespace hybridmr::telemetry

namespace hybridmr::interactive {

struct AppParams {
  std::string name = "app";
  sim::Duration think_time_s{7.0};
  double cpu_s_per_req = 0.0035;  // core-seconds per request
  double io_mb_per_req = 0.01;    // disk MB per request
  sim::MegaBytes memory_mb{512};  // resident footprint
  sim::Duration sla_s{2.0};       // response-time SLA (paper: 2 s)
  sim::Duration min_response_s{0.05};  // response-time floor
  sim::Duration update_period_s{5.0};  // latency model refresh
  double noise_sd = 0.04;  // lognormal jitter on reported latency
  // Capacity reserved relative to the peak offered load — interactive VMs
  // are deliberately over-provisioned (the paper's core premise, §I).
  double overprovision_factor = 2.5;
};

class InteractiveApp {
 public:
  InteractiveApp(sim::Simulation& sim, cluster::ExecutionSite& site,
                 AppParams params, int clients);
  ~InteractiveApp();

  InteractiveApp(const InteractiveApp&) = delete;
  InteractiveApp& operator=(const InteractiveApp&) = delete;

  /// Deploys the service workload and starts the periodic latency model.
  void start();
  void stop();
  [[nodiscard]] bool running() const { return service_ != nullptr; }

  void set_clients(int clients);
  [[nodiscard]] int clients() const { return clients_; }

  /// Latest modelled mean response time (seconds).
  [[nodiscard]] double response_time_s() const { return response_s_; }
  /// Latest modelled throughput (requests/second).
  [[nodiscard]] double throughput_rps() const { return throughput_rps_; }
  [[nodiscard]] bool sla_violated() const {
    return sim::Duration{response_s_} > params_.sla_s;
  }

  [[nodiscard]] const stats::TimeSeries& response_series() const {
    return response_series_;
  }
  [[nodiscard]] const AppParams& params() const { return params_; }
  [[nodiscard]] cluster::ExecutionSite& site() const { return *site_; }
  [[nodiscard]] const std::string& name() const { return params_.name; }

  /// Forces one immediate model refresh (normally periodic).
  void refresh();

  /// Attaches the app to a telemetry hub: its response time is sampled into
  /// `app.<name>.response_s` and SLA violation onsets/recoveries are traced.
  void set_telemetry(telemetry::Hub* hub);

 private:
  [[nodiscard]] cluster::Resources offered_demand() const;
  void note_telemetry();

  // hmr-state(back-reference: owner=TestBed::sim_; re-point on fork)
  sim::Simulation& sim_;
  // hmr-state(back-reference: owner=HybridCluster; the app's host VM)
  cluster::ExecutionSite* site_;
  AppParams params_;
  int clients_;
  cluster::WorkloadPtr service_;
  sim::PeriodicHandle ticker_;
  double response_s_ = 0;
  double throughput_rps_ = 0;
  stats::TimeSeries response_series_;
  telemetry::Hub* tel_ = nullptr;
  telemetry::TimeSeriesMetric* tel_response_ = nullptr;
  bool was_violated_ = false;
};

}  // namespace hybridmr::interactive
