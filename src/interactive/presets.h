// Presets for the paper's three transactional benchmarks (§IV):
// RUBiS (online auction), TPC-W (3-tier book store), Olio (Web 2.0 social).
// Parameter mixes reflect their published profiles: RUBiS is CPU-lean,
// TPC-W adds database I/O, Olio is the most I/O-heavy.
#pragma once

#include <memory>

#include "interactive/app.h"

namespace hybridmr::interactive {

inline AppParams rubis_params() {
  AppParams p;
  p.name = "rubis";
  p.cpu_s_per_req = 0.0035;
  p.io_mb_per_req = 0.010;
  p.memory_mb = sim::MegaBytes{560};
  return p;
}

inline AppParams tpcw_params() {
  AppParams p;
  p.name = "tpcw";
  p.cpu_s_per_req = 0.0042;
  p.io_mb_per_req = 0.030;
  p.memory_mb = sim::MegaBytes{640};
  return p;
}

inline AppParams olio_params() {
  AppParams p;
  p.name = "olio";
  p.cpu_s_per_req = 0.0030;
  p.io_mb_per_req = 0.050;
  p.memory_mb = sim::MegaBytes{600};
  return p;
}

inline std::unique_ptr<InteractiveApp> make_rubis(
    sim::Simulation& sim, cluster::ExecutionSite& site, int clients) {
  return std::make_unique<InteractiveApp>(sim, site, rubis_params(), clients);
}

inline std::unique_ptr<InteractiveApp> make_tpcw(
    sim::Simulation& sim, cluster::ExecutionSite& site, int clients) {
  return std::make_unique<InteractiveApp>(sim, site, tpcw_params(), clients);
}

inline std::unique_ptr<InteractiveApp> make_olio(
    sim::Simulation& sim, cluster::ExecutionSite& site, int clients) {
  return std::make_unique<InteractiveApp>(sim, site, olio_params(), clients);
}

}  // namespace hybridmr::interactive
