#include "interactive/app.h"

#include <algorithm>
#include <cmath>

#include "cluster/calibration.h"
#include "telemetry/telemetry.h"

namespace hybridmr::interactive {

using cluster::Resources;

InteractiveApp::InteractiveApp(sim::Simulation& sim,
                               cluster::ExecutionSite& site, AppParams params,
                               int clients)
    : sim_(sim), site_(&site), params_(std::move(params)), clients_(clients) {}

InteractiveApp::~InteractiveApp() { stop(); }

Resources InteractiveApp::offered_demand() const {
  // Peak load the client population could offer if served at the floor
  // latency, times the over-provisioning headroom.
  const double lambda_max =
      clients_ / (params_.think_time_s + params_.min_response_s).value();
  Resources d;
  d.cpu = lambda_max * params_.cpu_s_per_req * params_.overprovision_factor;
  d.disk = lambda_max * params_.io_mb_per_req * params_.overprovision_factor;
  d.memory = params_.memory_mb.value();
  return d;
}

void InteractiveApp::start() {
  if (service_) return;
  service_ = std::make_shared<cluster::Workload>(
      params_.name + ":service", offered_demand(),
      cluster::Workload::kService);
  site_->add(service_);
  refresh();
  ticker_ = sim_.every(params_.update_period_s, [this]() { refresh(); });
}

void InteractiveApp::stop() {
  ticker_.cancel();
  if (service_ && service_->site() != nullptr) {
    service_->site()->remove(service_.get());
  }
  service_.reset();
}

void InteractiveApp::set_clients(int clients) {
  clients_ = clients;
  if (service_) {
    service_->set_demand(offered_demand());
    refresh();
  }
}

void InteractiveApp::refresh() {
  if (!service_) return;
  if (clients_ <= 0) {
    response_s_ = params_.min_response_s.value();
    throughput_rps_ = 0;
    response_series_.add(sim_.now(), response_s_);
    note_telemetry();
    return;
  }
  const Resources alloc = service_->allocated();
  const double N = clients_;
  const double Z = params_.think_time_s.value();

  // Queueing congestion at the shared physical resources: utilization by
  // *other* consumers on the host (collocated VMs, batch tasks) lengthens
  // every request's CPU slice and disk access.
  const cluster::Machine* host = site_->host_machine();
  auto other_util = [&](cluster::ResourceKind kind, double own) {
    if (host == nullptr) return 0.0;
    const double cap = host->capacity()[kind];
    if (cap <= 0) return 0.0;
    const double others =
        host->utilization(kind) - own / cap;
    return std::clamp(others, 0.0, 0.98);
  };

  // Effective service capacity from the granted share, degraded by the
  // contention the host is experiencing.
  double mu = std::numeric_limits<double>::infinity();
  if (params_.cpu_s_per_req > 0) {
    const double usable =
        std::max(1e-9, alloc.cpu) *
        (1.0 - other_util(cluster::ResourceKind::kCpu, alloc.cpu));
    mu = std::min(mu, usable / params_.cpu_s_per_req);
  }
  if (params_.io_mb_per_req > 0) {
    const double usable =
        std::max(1e-9, alloc.disk) *
        (1.0 - other_util(cluster::ResourceKind::kDisk, alloc.disk));
    mu = std::min(mu, usable / params_.io_mb_per_req);
  }
  double s = std::isinf(mu) ? 1e-3 : 1.0 / std::max(mu, 1e-6);
  // Memory pressure inflates service time (paging).
  if (params_.memory_mb > sim::MegaBytes{0}) {
    const double ratio = alloc.memory / params_.memory_mb.value();
    s /= cluster::memory_pressure_factor(
        ratio, cluster::Calibration::standard());
  }

  // Closed PS station with N clients, think Z:  R^2 + R(Z - s(N+1)) - sZ = 0.
  const double b = Z - s * (N + 1);
  double r = (-b + std::sqrt(b * b + 4.0 * s * Z)) / 2.0;
  r = std::max(r, params_.min_response_s.value());

  // Lognormal jitter makes timelines realistic without changing the mean.
  const double jitter =
      params_.noise_sd > 0
          ? std::exp(sim_.rng().normal(0.0, params_.noise_sd))
          : 1.0;
  response_s_ = r * jitter;
  throughput_rps_ = N / (response_s_ + Z);
  response_series_.add(sim_.now(), response_s_);
  note_telemetry();
}

void InteractiveApp::set_telemetry(telemetry::Hub* hub) {
  tel_ = hub;
  tel_response_ =
      hub == nullptr
          ? nullptr
          : &hub->registry.timeseries("app." + params_.name + ".response_s",
                                      10.0, "s");
}

void InteractiveApp::note_telemetry() {
  if (tel_ == nullptr) return;
  tel_response_->sample(sim_.now(), response_s_);
  const bool violated = sla_violated();
  if (violated != was_violated_) {
    tel_->trace.instant(
        sim_.now(), telemetry::EventKind::kSlaViolation, params_.name,
        site_->name(),
        {{"state", violated ? "violated" : "recovered"},
         {"response_s", telemetry::json_num(response_s_)},
         {"sla_s", telemetry::json_num(params_.sla_s.value())}});
    was_violated_ = violated;
  }
}

}  // namespace hybridmr::interactive
