// Calibration constants for the simulated testbed.
//
// Values mirror the paper's hardware (§IV): dual 2.4 GHz Opteron servers with
// 4 GB RAM, SCSI disks and 1 GbE; Xen 3.4.2 VMs with 1 vCPU / 1 GB. The
// virtualization taxes come from the paper's own citations (≈5 % CPU, ≈15 %
// I/O [10]) and its Fig. 1/2 measurements; everything is centralized here so
// the overhead model is auditable and tunable in one place.
#pragma once

#include "cluster/resources.h"
#include "sim/units.h"

namespace hybridmr::cluster {

struct Calibration {
  // --- Physical machine (dual-core Opteron class) ---
  double pm_cores = 2.0;
  sim::MegaBytes pm_memory_mb{4096};
  sim::MBps pm_disk_mbps{80};  // Ultra320 SCSI effective sequential bandwidth
  sim::MBps pm_net_mbps{117};  // 1 GbE payload rate
  sim::Watts pm_idle_watts{180};  // typical 2-socket Opteron server
  sim::Watts pm_peak_watts{260};

  // --- Virtual machine (Xen guest) ---
  double vm_vcpus = 1.0;
  sim::MegaBytes vm_memory_mb{1024};

  // Virtualization taxes (fraction of useful work lost to the hypervisor).
  double cpu_tax = 0.05;  // paper §I: ~5 % for computation
  double io_tax = 0.12;   // paper §I: ~15 % for I/O; 12 % base + contention
  // Extra I/O tax per additional VM actively doing I/O on the same host
  // (shared Dom-0 back-end contention). Calibrated to Fig. 1(a): 7-24 %.
  double io_contention_tax = 0.02;
  // Buffer-cache miss penalty: extra I/O tax that phases in as the VM's
  // recent I/O volume exceeds `io_cache_knee_factor` x VM memory.
  double io_cache_tax = 0.04;
  double io_cache_knee_factor = 4.0;
  double io_cache_halflife_s = 120;  // decay of the recent-I/O counter
  // Dom-0 (privileged domain) runs near-native: Fig. 2(c) "< 5 % overhead".
  double dom0_cpu_tax = 0.015;
  double dom0_io_tax = 0.03;
  // Xen PV netfront throughput ceiling per guest (circa Xen 3.x, ~0.3
  // Gbps): the mechanism behind the paper's cross-host penalty (Fig. 2(a)).
  sim::MBps vm_net_cap_mbps{117};  // effectively uncapped; see EXPERIMENTS.md

  // --- Live migration (Xen pre-copy) ---
  // Effective migration bandwidth: Xen rate-limits and competes with guest
  // traffic, so this is far below line rate.
  sim::MBps migration_bw_mbps{10};
  sim::MegaBytes migration_stop_threshold_mb{4};  // stop-and-copy threshold
  int migration_max_rounds = 30;
  double migration_downtime_overhead_s = 0.05;  // fixed resume cost
  sim::MBps idle_dirty_rate_mbps{0.4};
  // Dirty rate grows with memory activity of the running workloads:
  // MB/s of dirtying per MB of hot memory (PerSecond * MegaBytes -> MBps).
  sim::PerSecond dirty_rate_per_active_mb{0.004};
  double migration_guest_slowdown = 0.10;   // guest slows ~10 % during precopy

  // --- Hadoop ---
  int map_slots_per_node = 2;
  int reduce_slots_per_node = 2;
  // Stock mapred.child.java.opts heap: every task JVM gets this fixed heap
  // regardless of node size (the rigidity HybridMR's DRM reclaims).
  sim::MegaBytes hadoop_child_heap_mb{256};
  int hdfs_replicas = 2;
  sim::MegaBytes hdfs_block_mb{128};
  // Per-stream HDFS rates: what one reader/writer/shuffle stream demands.
  sim::MBps hdfs_stream_disk_mbps{60};
  sim::MBps hdfs_stream_net_mbps{50};
  // Same-host VM-to-VM transfers bypass the physical NIC (Xen loopback).
  sim::MBps loopback_mbps{250};
  // CPU cost of the DataNode daemon per active stream (checksumming,
  // buffer copies). This is what the split architecture (Fig. 3) offloads
  // from TaskTracker VMs onto a dedicated storage VM.
  double hdfs_serve_cpu_per_stream = 0.08;
  double hdfs_read_cpu_per_stream = 0.06;
  double speculative_slowdown_threshold = 0.5;  // progress-rate gap
  double heartbeat_s = 1.0;                      // tasktracker heartbeat

  // --- Memory pressure model (piecewise-linear; see DESIGN.md §3) ---
  // Hadoop tasks degrade gracefully under small heaps (extra spill passes
  // to disk), so the penalty is bounded rather than thrashing-shaped.
  double mem_soft_knee = 0.7;      // alloc/demand ratio where slope changes
  double mem_soft_slope = 0.4;     // gentle slope above the knee
  double mem_hard_slope = 0.7;     // spill-bound slope below the knee
  double mem_floor = 0.4;          // minimum speed factor

  // --- Interactive / SLA ---
  double sla_response_time_s = 2.0;  // paper §IV: 2 s
  double control_epoch_s = 10.0;     // Phase II controller period

  /// The default testbed calibration.
  static const Calibration& standard() {
    static const Calibration c{};
    return c;
  }

  [[nodiscard]] Resources pm_capacity() const {
    return {pm_cores, pm_memory_mb.value(), pm_disk_mbps.value(),
            pm_net_mbps.value()};
  }
  [[nodiscard]] Resources vm_nominal() const {
    return {vm_vcpus, vm_memory_mb.value(), pm_disk_mbps.value(),
            pm_net_mbps.value()};
  }
};

}  // namespace hybridmr::cluster
