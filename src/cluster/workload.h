// Workload: the unit of resource consumption on a machine or VM.
//
// A workload declares a multi-resource demand vector (the rates it wants at
// full speed) and an amount of work measured in seconds-at-full-speed. The
// hosting site grants it an allocation; its *speed* is the most-constrained
// ratio granted/demanded, further scaled by memory pressure and (inside a VM)
// the virtualization taxes. Service workloads (interactive applications) have
// no finite work and simply consume resources until removed.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "cluster/resources.h"
#include "sim/event_queue.h"
#include "sim/units.h"

namespace hybridmr::cluster {

class ExecutionSite;

class Workload {
 public:
  /// Sentinel for service (non-terminating) workloads.
  static constexpr sim::Duration kService{-1.0};

  /// `work`: execution time at full speed, or kService.
  Workload(std::string name, Resources demand, sim::Duration work);

  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  // --- demand & throttles ---
  [[nodiscard]] const Resources& demand() const { return demand_; }
  /// Changes the demand vector; triggers a reallocation if attached.
  void set_demand(const Resources& demand);
  /// cgroup-style caps imposed by the DRM; effective demand is min(demand,
  /// caps). Triggers a reallocation if attached.
  [[nodiscard]] const Resources& caps() const { return caps_; }
  void set_caps(const Resources& caps);
  /// Demand after caps and pause are applied. Cached: recomputed only when
  /// demand/caps/pause/done change, because the reallocation engine reads
  /// this several times per member per recompute (gather, VM distribute per
  /// resource, I/O-activity census).
  [[nodiscard]] const Resources& effective_demand() const {
    return eff_demand_;
  }

  // --- pause (IPS action) ---
  [[nodiscard]] bool paused() const { return paused_; }
  void set_paused(bool paused);

  // --- progress ---
  [[nodiscard]] bool finite() const { return total_work_ >= 0; }
  [[nodiscard]] sim::Duration total_work() const {
    return sim::Duration{total_work_};
  }
  /// Work-at-full-speed left. Drains any pending reallocation of the
  /// host machine first (settling accrued progress), like speed().
  [[nodiscard]] sim::Duration remaining() const;
  [[nodiscard]] bool done() const { return done_; }
  /// Fraction complete in [0,1]; service workloads report 0. Drains any
  /// pending reallocation first (see remaining()).
  [[nodiscard]] double progress() const;
  /// Current speed / allocation. Reallocation is deferred and coalesced,
  /// so these first drain any pending recompute of the host machine —
  /// callers never observe stale shares (defined out of line for that).
  [[nodiscard]] double speed() const;
  [[nodiscard]] const Resources& allocated() const;

  // --- cumulative usage (for the LRM resource profiler) ---
  // Counters are settled lazily: they are current as of the machine's last
  // reallocation. Call host_machine()->settle_now() first for an exact
  // reading at an arbitrary instant.
  [[nodiscard]] sim::Duration cpu_seconds_used() const {
    return cpu_seconds_;
  }
  [[nodiscard]] sim::MegaBytes io_mb_done() const { return io_mb_; }
  [[nodiscard]] sim::SimTime started_at() const { return started_at_; }

  /// Invoked (by the hosting machine) when the work completes; the workload
  /// has already been detached from its site.
  std::function<void()> on_complete;

  // --- site attachment (managed by ExecutionSite) ---
  [[nodiscard]] ExecutionSite* site() const { return site_; }

  // === Internal interface used by the allocation engine ===

  /// Accrues progress and usage for the interval since the last settle, at
  /// the current speed/allocation. Returns MB of I/O performed in the
  /// interval (for the VM buffer-cache model). Inline: the reallocation
  /// engine calls this once per resident workload per recompute.
  double settle(sim::SimTime now) {
    const double dt = now - last_settle_;
    last_settle_ = now;
    if (dt <= 0 || done_) return 0;
    if (finite()) {
      remaining_ = remaining_ - dt * speed_ > 0 ? remaining_ - dt * speed_ : 0;
    }
    cpu_seconds_ += sim::Duration{allocated_.cpu * dt};
    const double io = (allocated_.disk + allocated_.net) * dt;
    io_mb_ += sim::MegaBytes{io};
    return io;
  }

  /// Installs the new allocation and speed (after settle).
  void apply_allocation(sim::SimTime now, const Resources& alloc,
                        double speed) {
    last_settle_ = now;
    allocated_ = alloc;
    speed_ = done_ ? 0 : speed;
  }

  /// Marks the workload complete (settles first).
  void finish(sim::SimTime now);

  /// Completion event handle, owned by the scheduling machine. For a
  /// finite workload it is created (parked at infinity) the moment the
  /// workload attaches to a site — reserving the event's FIFO tie-break
  /// seat at mutation time, independent of when the reallocation engine
  /// gets around to computing the real finish time — and lives until the
  /// workload fires or is removed. Reallocations move it in place
  /// (EventQueue::defer); a stalled workload parks back at infinity.
  sim::EventId completion_event;
  /// Absolute finish time of the scheduled completion event (valid while
  /// completion_event is; infinity while parked). Machine::reschedule()
  /// skips all queue work when a reallocation leaves this unchanged.
  sim::SimTime completion_time = 0;

 private:
  friend class ExecutionSite;

  void refresh_eff_demand();

  std::string name_;
  Resources demand_;
  Resources caps_ = Resources::unbounded();
  Resources eff_demand_{};
  double total_work_;
  double remaining_;
  bool done_ = false;
  bool paused_ = false;
  double speed_ = 0;
  Resources allocated_{};
  sim::SimTime last_settle_ = 0;
  sim::SimTime started_at_ = 0;
  sim::Duration cpu_seconds_;
  sim::MegaBytes io_mb_;
  // hmr-state(back-reference: owner=HybridCluster::machines_/vms_; a fork
  // re-points it when it clones the site tree)
  ExecutionSite* site_ = nullptr;
};

using WorkloadPtr = std::shared_ptr<Workload>;

}  // namespace hybridmr::cluster
