// Server power and energy accounting.
//
// Substitute for the paper's Yokogawa WT210 power meter: a standard linear
// utilization->power model integrated over simulated time.
#pragma once

#include "sim/event_queue.h"
#include "stats/timeseries.h"

namespace hybridmr::cluster {

/// P(u) = idle + (peak - idle) * u for a powered-on server; 0 when off.
struct PowerModel {
  double idle_watts = 180;
  double peak_watts = 260;

  /// `utilization` in [0, 1]: blended CPU/I/O activity.
  [[nodiscard]] double watts(double utilization) const {
    const double u = utilization < 0 ? 0 : (utilization > 1 ? 1 : utilization);
    return idle_watts + (peak_watts - idle_watts) * u;
  }
};

/// Integrates instantaneous power into energy (joules).
class EnergyMeter {
 public:
  /// Records that the power level changed to `watts` at time `now`.
  /// Same-instant revisions overwrite (several reallocations at one
  /// simulated time leave one sample holding the final power level).
  void record(sim::SimTime now, double watts) {
    series_.add_coalesced(now, watts);
  }

  /// Bounds the sample history for long runs; see
  /// stats::TimeSeries::set_max_samples().
  void set_max_samples(std::size_t max) { series_.set_max_samples(max); }

  /// Energy in joules consumed over [t0, t1].
  [[nodiscard]] double joules(sim::SimTime t0, sim::SimTime t1) const {
    return series_.integrate(t0, t1);
  }

  /// Energy in watt-hours over [t0, t1].
  [[nodiscard]] double watt_hours(sim::SimTime t0, sim::SimTime t1) const {
    return joules(t0, t1) / 3600.0;
  }

  /// Mean power over [t0, t1] (0 if the window is empty).
  [[nodiscard]] double mean_watts(sim::SimTime t0, sim::SimTime t1) const {
    return t1 > t0 ? joules(t0, t1) / (t1 - t0) : 0;
  }

  [[nodiscard]] const stats::TimeSeries& series() const { return series_; }

 private:
  stats::TimeSeries series_;
};

}  // namespace hybridmr::cluster
