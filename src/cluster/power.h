// Server power and energy accounting.
//
// Substitute for the paper's Yokogawa WT210 power meter: a standard linear
// utilization->power model integrated over simulated time. Power is
// strong-typed (sim::Watts in, sim::Joules out), so a power figure can never
// be mixed into a data-size or rate expression (sim/units.h).
#pragma once

#include "sim/units.h"
#include "stats/timeseries.h"

namespace hybridmr::cluster {

/// P(u) = idle + (peak - idle) * u for a powered-on server; 0 when off.
struct PowerModel {
  sim::Watts idle_watts{180};
  sim::Watts peak_watts{260};

  /// `utilization` in [0, 1]: blended CPU/I/O activity.
  [[nodiscard]] sim::Watts watts(sim::Fraction utilization) const {
    const double raw = utilization.value();
    const double u = raw < 0 ? 0 : (raw > 1 ? 1 : raw);
    return idle_watts + (peak_watts - idle_watts) * u;
  }
};

/// Integrates instantaneous power into energy (joules).
class EnergyMeter {
 public:
  /// Records that the power level changed to `watts` at time `now`.
  /// Same-instant revisions overwrite (several reallocations at one
  /// simulated time leave one sample holding the final power level).
  void record(sim::SimTime now, sim::Watts watts) {
    series_.add_coalesced(now, watts.value());
  }

  /// Bounds the sample history for long runs; see
  /// stats::TimeSeries::set_max_samples().
  void set_max_samples(std::size_t max) { series_.set_max_samples(max); }

  /// Energy consumed over [t0, t1].
  [[nodiscard]] sim::Joules joules(sim::SimTime t0, sim::SimTime t1) const {
    return sim::Joules{series_.integrate(t0, t1)};
  }

  /// Energy in watt-hours over [t0, t1] (reporting convenience).
  [[nodiscard]] double watt_hours(sim::SimTime t0, sim::SimTime t1) const {
    return joules(t0, t1).value() / 3600.0;
  }

  /// Mean power over [t0, t1] (0 W if the window is empty).
  [[nodiscard]] sim::Watts mean_watts(sim::SimTime t0, sim::SimTime t1) const {
    return t1 > t0 ? joules(t0, t1) / sim::Duration{t1 - t0} : sim::Watts{};
  }

  [[nodiscard]] const stats::TimeSeries& series() const { return series_; }

 private:
  stats::TimeSeries series_;
};

}  // namespace hybridmr::cluster
