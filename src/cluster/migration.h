// Live VM migration (Xen-style iterative pre-copy).
//
// The model reproduces the dependencies measured in the paper's Fig. 10(b,c):
// migration time grows with VM memory and with guest write activity (dirty
// rate), and downtime is small but erratic under load. The pre-copy stream is
// injected as a real network workload on both hosts, so migrations slow down
// — and are slowed down by — collocated traffic.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cluster/calibration.h"
#include "cluster/machine.h"
#include "sim/simulation.h"

namespace hybridmr::telemetry {
struct Hub;
}  // namespace hybridmr::telemetry

namespace hybridmr::cluster {

struct MigrationPlan {
  sim::Duration precopy_seconds;  // at nominal migration bandwidth
  sim::Duration downtime_seconds;
  sim::MegaBytes transferred_mb;
  int rounds = 0;
  bool converged = true;
};

/// Closed-form pre-copy model.
class MigrationModel {
 public:
  explicit MigrationModel(const Calibration& cal) : cal_(cal) {}

  /// Plans a migration of `memory` of guest memory with the given page
  /// dirty rate over a link with `bw` available for migration traffic.
  [[nodiscard]] MigrationPlan plan(sim::MegaBytes memory, sim::MBps dirty_rate,
                                   sim::MBps bw) const;

  /// Estimated page-dirty rate for a VM from its resident workloads'
  /// active memory.
  [[nodiscard]] sim::MBps dirty_rate_mbps(const VirtualMachine& vm) const;

 private:
  const Calibration& cal_;
};

struct MigrationRecord {
  std::string vm;
  std::string from;
  std::string to;
  sim::SimTime started_at = 0;
  sim::Duration precopy_seconds;  // actual, including network contention
  sim::Duration downtime_seconds;
  sim::MegaBytes transferred_mb;
  int rounds = 0;
};

/// Executes live migrations inside the simulation.
class Migrator {
 public:
  using DoneFn = std::function<void(const MigrationRecord&)>;

  Migrator(sim::Simulation& sim, const Calibration& cal)
      : sim_(sim), cal_(cal), model_(cal) {}

  /// Starts migrating `vm` to `dest`. Returns false (and does nothing) if
  /// the VM is already migrating, detached, or already on `dest`.
  bool migrate(VirtualMachine& vm, Machine& dest, DoneFn done = {});

  [[nodiscard]] const std::vector<MigrationRecord>& history() const {
    return history_;
  }
  [[nodiscard]] const MigrationModel& model() const { return model_; }
  [[nodiscard]] int in_flight() const { return in_flight_; }

  /// Attaches the migrator to a telemetry hub (null detaches).
  void set_telemetry(telemetry::Hub* hub);

 private:
  /// Dirty rate with bursty (lognormal) jitter applied.
  sim::MBps jittered_dirty_rate(const VirtualMachine& vm);

  sim::Simulation& sim_;
  const Calibration& cal_;
  MigrationModel model_;
  std::vector<MigrationRecord> history_;
  int in_flight_ = 0;
  telemetry::Hub* tel_ = nullptr;
};

}  // namespace hybridmr::cluster
