// Live VM migration (Xen-style iterative pre-copy).
//
// The model reproduces the dependencies measured in the paper's Fig. 10(b,c):
// migration time grows with VM memory and with guest write activity (dirty
// rate), and downtime is small but erratic under load. The pre-copy stream is
// injected as a real network workload on both hosts, so migrations slow down
// — and are slowed down by — collocated traffic.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/calibration.h"
#include "cluster/machine.h"
#include "sim/rng.h"
#include "sim/simulation.h"

namespace hybridmr::telemetry {
struct Hub;
}  // namespace hybridmr::telemetry

namespace hybridmr::cluster {

struct MigrationPlan {
  sim::Duration precopy_seconds;  // at nominal migration bandwidth
  sim::Duration downtime_seconds;
  sim::MegaBytes transferred_mb;
  int rounds = 0;
  bool converged = true;
};

/// Closed-form pre-copy model.
class MigrationModel {
 public:
  explicit MigrationModel(const Calibration& cal) : cal_(cal) {}

  /// Plans a migration of `memory` of guest memory with the given page
  /// dirty rate over a link with `bw` available for migration traffic.
  [[nodiscard]] MigrationPlan plan(sim::MegaBytes memory, sim::MBps dirty_rate,
                                   sim::MBps bw) const;

  /// Estimated page-dirty rate for a VM from its resident workloads'
  /// active memory.
  [[nodiscard]] sim::MBps dirty_rate_mbps(const VirtualMachine& vm) const;

 private:
  const Calibration& cal_;
};

struct MigrationRecord {
  std::string vm;
  std::string from;
  std::string to;
  sim::SimTime started_at = 0;
  sim::Duration precopy_seconds;  // actual, including network contention
  sim::Duration downtime_seconds;
  sim::MegaBytes transferred_mb;
  int rounds = 0;
  /// Rolled back before the handoff (source/dest died mid-migration).
  bool aborted = false;
};

/// Multiplier with mean exactly 1: exp(N(-sigma^2/2, sigma)). Plain
/// exp(N(0, sigma)) has mean exp(sigma^2/2), which would bias every jittered
/// quantity above its calibrated model.
[[nodiscard]] double unit_mean_lognormal(sim::Rng& rng, double sigma);

/// Executes live migrations inside the simulation.
class Migrator {
 public:
  using DoneFn = std::function<void(const MigrationRecord&)>;

  Migrator(sim::Simulation& sim, const Calibration& cal)
      : sim_(sim), cal_(cal), model_(cal) {}

  /// Starts migrating `vm` to `dest`. Returns false (and does nothing) if
  /// the VM is already migrating, detached, or already on `dest`.
  bool migrate(VirtualMachine& vm, Machine& dest, DoneFn done = {});

  /// Aborts every in-flight migration whose source or destination is
  /// `machine` (the machine-crash path): the pre-copy streams are torn
  /// down, a VM paused for downtime is resumed, and the VM stays on its
  /// source host as if the migration had never been attempted. The aborted
  /// record lands in history() with `aborted = true`; the migration's done
  /// callback is NOT fired. Returns the number of migrations aborted.
  int abort_involving(Machine& machine);

  [[nodiscard]] const std::vector<MigrationRecord>& history() const {
    return history_;
  }
  [[nodiscard]] const MigrationModel& model() const { return model_; }
  [[nodiscard]] int in_flight() const { return in_flight_; }

  /// Attaches the migrator to a telemetry hub (null detaches).
  void set_telemetry(telemetry::Hub* hub);

  /// Log-space stddev of the per-migration dirty-rate jitter.
  static constexpr double kDirtyRateJitterSigma = 0.5;

 private:
  /// State of one in-flight migration, shared between the stream/downtime
  /// closures and the abort path.
  struct InFlight {
    std::shared_ptr<MigrationRecord> record;
    VirtualMachine* vm = nullptr;
    Machine* src = nullptr;
    Machine* dest = nullptr;
    std::weak_ptr<Workload> out_stream;
    std::weak_ptr<Workload> in_stream;
    sim::EventId downtime_event{};
    bool in_downtime = false;
    DoneFn done;
  };

  /// Dirty rate with bursty (unit-mean lognormal) jitter applied.
  sim::MBps jittered_dirty_rate(const VirtualMachine& vm);
  /// Downtime elapsed: hand the VM over and record the migration.
  void complete(const std::shared_ptr<InFlight>& flight);
  void drop_flight(const std::shared_ptr<InFlight>& flight);

  sim::Simulation& sim_;
  const Calibration& cal_;
  MigrationModel model_;
  std::vector<MigrationRecord> history_;
  std::vector<std::shared_ptr<InFlight>> active_;
  int in_flight_ = 0;
  telemetry::Hub* tel_ = nullptr;
};

}  // namespace hybridmr::cluster
