#include "cluster/machine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "audit/invariants.h"
#include "cluster/realloc.h"
#include "telemetry/telemetry.h"

namespace hybridmr::cluster {

namespace {

// Long sweeps bound each per-machine series (four utilization series plus
// the energy meter) at this many samples; beyond it, older samples merge
// pairwise into time-weighted means (integral-preserving), so memory is
// O(1) per machine instead of O(events).
constexpr std::size_t kMaxMachineSeriesSamples = 16384;

}  // namespace

void waterfill_into(double capacity, std::span<const double> demands,
                    std::span<double> out, WaterfillScratch& scratch) {
  const std::size_t n = demands.size();
  assert(out.size() == n && "output extent must match demands");
  std::fill(out.begin(), out.end(), 0.0);
  if (n == 0 || capacity <= 0) return;

  // Memo replay: the allocation is a pure function of (capacity, demands),
  // so a repeat of the previous inputs reproduces the previous output
  // byte-for-byte without sorting.
  if (scratch.valid && capacity == scratch.last_capacity &&
      scratch.last_demands.size() == n &&
      std::equal(demands.begin(), demands.end(),
                 scratch.last_demands.begin())) {
    std::copy(scratch.last_out.begin(), scratch.last_out.end(), out.begin());
    return;
  }

  // Uncontended fast path: when total demand fits, the sorted fill grants
  // every demand exactly (ascending order means fair >= each demand at its
  // turn), so skip the sort. Exact same output as the general path.
  double total = 0;
  for (const double d : demands) total += d > 0 ? d : 0.0;
  if (total <= capacity) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = demands[i] > 0 ? demands[i] : 0.0;
    }
  } else {
    auto& order = scratch.order;
    order.resize(n);
    std::iota(order.begin(), order.end(), std::uint32_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return demands[a] < demands[b];
              });

    double remaining = capacity;
    std::size_t unsatisfied = n;
    for (const std::uint32_t idx : order) {
      const double fair = remaining / static_cast<double>(unsatisfied);
      const double got = std::min(demands[idx], fair);
      out[idx] = got < 0 ? 0 : got;
      remaining -= out[idx];
      --unsatisfied;
    }
  }

  scratch.last_capacity = capacity;
  scratch.last_demands.assign(demands.begin(), demands.end());
  scratch.last_out.assign(out.begin(), out.end());
  scratch.valid = true;
}

std::vector<double> waterfill(double capacity,
                              std::span<const double> demands) {
  std::vector<double> alloc(demands.size(), 0.0);
  WaterfillScratch scratch;
  waterfill_into(capacity, demands, alloc, scratch);
  return alloc;
}

double memory_pressure_factor(double ratio, const Calibration& cal) {
  if (ratio >= 1.0) return 1.0;
  if (ratio < 0) ratio = 0;
  double factor;
  if (ratio >= cal.mem_soft_knee) {
    factor = 1.0 - cal.mem_soft_slope * (1.0 - ratio);
  } else {
    factor = 1.0 - cal.mem_soft_slope * (1.0 - cal.mem_soft_knee) -
             cal.mem_hard_slope * (cal.mem_soft_knee - ratio);
  }
  return std::max(cal.mem_floor, factor);
}

namespace {

/// Speed of a workload given its (raw) demand, grant and efficiencies.
/// Using the raw demand means throttled or under-provisioned workloads run
/// proportionally slower, which is exactly the cgroup semantics the DRM
/// relies on.
double speed_of(const Workload& w, const Resources& alloc, double eff_cpu,
                double eff_io, const Calibration& cal) {
  if (w.paused()) return 0;
  const Resources& d = w.demand();
  // The I/O virtualization tax bites in proportion to how I/O-dominated
  // the workload is: a compute-heavy pipeline with a trickle of disk
  // traffic buffers through the tax, while a bulk stream feels it fully.
  // One core is weighted as one full disk stream's worth of work.
  double eff_io_weighted = eff_io;
  const double io_demand = d.disk + d.net;
  if (io_demand > 0 && d.cpu > 0) {
    const double f_io =
        io_demand / (io_demand + d.cpu * cal.hdfs_stream_disk_mbps.value());
    eff_io_weighted = 1.0 - (1.0 - eff_io) * f_io;
  }
  double speed = 1.0;
  if (d.cpu > 0) speed = std::min(speed, alloc.cpu * eff_cpu / d.cpu);
  if (d.disk > 0) {
    speed = std::min(speed, alloc.disk * eff_io_weighted / d.disk);
  }
  if (d.net > 0) speed = std::min(speed, alloc.net * eff_io_weighted / d.net);
  if (d.memory > 0) {
    speed *= memory_pressure_factor(alloc.memory / d.memory, cal);
  }
  return speed;
}

// Completion time of a workload that cannot currently make progress
// (paused, capped to nothing, starved, or on a detached VM). Its event
// parks here instead of being cancelled, keeping its identity — and its
// FIFO tie-break seat — for when an allocation revives it. The run loop
// treats a queue whose head is at infinity as drained
// (Simulation::dispatch_one).
constexpr sim::SimTime kNever = std::numeric_limits<double>::infinity();

// Completion closure shared by the attach-time parked event and the
// reschedule fallback push. Captures the simulation, not the machine: the
// closure outlives any number of reschedules (and possibly a migration off
// the original host), and the simulation is the only state it needs.
std::function<void()> completion_handler(sim::Simulation& sim,
                                         const WorkloadPtr& workload) {
  std::weak_ptr<Workload> weak = workload;
  return [&sim, weak]() {
    WorkloadPtr w = weak.lock();
    if (!w || w->done()) return;
    w->finish(sim.now());
    if (w->site() != nullptr) w->site()->remove(w.get());
    // Move the callback out before invoking: a completed workload must not
    // keep its completion closure (and the flow state / shared_ptrs it
    // captures) alive, or HDFS flows form reference cycles that leak.
    auto fire = std::move(w->on_complete);
    w->on_complete = nullptr;
    if (fire) fire();
  };
}

}  // namespace

// ---------------------------------------------------------------- Site ----

void ExecutionSite::add(WorkloadPtr workload) {
  assert(workload != nullptr);
  assert(workload->site_ == nullptr && "workload already attached");
  workload->site_ = this;
  const sim::SimTime now = simulation().now();
  workload->last_settle_ = now;
  workload->started_at_ = now;
  workloads_.push_back(std::move(workload));
  const WorkloadPtr& added = workloads_.back();
  if (added->finite() && !added->done()) {
    // Reserve the completion event — and with it the event's FIFO
    // tie-break seat — here, at mutation time, parked at "never"; the
    // first recompute defers it in place to the real finish time.
    // Creating the event inside the recompute instead would order its
    // seat by *recompute* time, which differs between eager (per
    // mutation) and deferred (per drain) reallocation and would make
    // same-time event ties — and therefore entire schedules — depend on
    // the reallocation mode.
    added->completion_time = kNever;
    added->completion_event =
        simulation().at(kNever, completion_handler(simulation(), added));
  }
  reallocate();
}

void ExecutionSite::remove(Workload* workload) {
  auto it = std::find_if(
      workloads_.begin(), workloads_.end(),
      [workload](const WorkloadPtr& p) { return p.get() == workload; });
  if (it == workloads_.end()) return;
  WorkloadPtr keep = *it;  // keep alive through the tail of this function
  // Drain any pending reallocation first: the settle below runs at the
  // current rates and discards its I/O return, so a deferred recompute must
  // land before it (crediting every sibling's interval I/O to the VM cache
  // through settle_all) exactly as an eager recompute already would have.
  if (Machine* machine = host_machine(); machine != nullptr) {
    machine->ensure_clean();
  }
  const sim::SimTime now = simulation().now();
  keep->settle(now);
  simulation().cancel(keep->completion_event);
  keep->completion_event = {};
  keep->speed_ = 0;
  keep->allocated_ = {};
  keep->site_ = nullptr;
  workloads_.erase(it);
  reallocate();
}

void ExecutionSite::reallocate() {
  Machine* machine = host_machine();
  if (machine != nullptr) machine->invalidate();
}

Resources ExecutionSite::total_demand() const {
  Resources sum;
  for (const auto& w : workloads_) sum += w->effective_demand();
  return sum;
}

Resources ExecutionSite::total_allocated() const {
  if (const Machine* machine = host_machine(); machine != nullptr) {
    machine->ensure_clean();
  }
  Resources sum;
  for (const auto& w : workloads_) sum += w->allocated();
  return sum;
}

// ------------------------------------------------------------------ VM ----

VirtualMachine::VirtualMachine(sim::Simulation& sim, std::string name,
                               sim::CoreShare vcpus, sim::MegaBytes memory_mb,
                               const Calibration& cal)
    : ExecutionSite(std::move(name)),
      sim_(sim),
      vcpus_(vcpus.value()),
      memory_mb_(memory_mb),
      cal_(cal) {}

Resources VirtualMachine::nominal() const {
  // Disk/net are shared with the host; the VM's nominal slice is the host
  // capacity divided by its resident VMs (placement-time estimate only).
  Resources n{vcpus_, memory_mb_.value(), cal_.pm_disk_mbps.value(),
              cal_.pm_net_mbps.value()};
  if (host_ != nullptr && !host_->vms().empty()) {
    const double k = static_cast<double>(host_->vms().size());
    n.disk /= k;
    n.net /= k;
  }
  return n.min(caps_);
}

void VirtualMachine::set_caps(const Resources& caps) {
  caps_ = caps;
  reallocate();
}

void VirtualMachine::set_paused(bool paused) {
  if (paused_ == paused) return;
  paused_ = paused;
  reallocate();
}

void VirtualMachine::set_migrating(bool migrating) {
  if (migrating_ == migrating) return;
  migrating_ = migrating;
  reallocate();
}

Resources VirtualMachine::aggregate_demand() const {
  if (paused_) return {};
  if (!agg_dirty_) return agg_cache_;
  Resources sum = total_demand();
  Resources limit = caps_;
  limit.cpu = std::min(limit.cpu, vcpus_);
  limit.memory = std::min(limit.memory, memory_mb_.value());
  if (!dom0_) limit.net = std::min(limit.net, cal_.vm_net_cap_mbps.value());
  agg_cache_ = sum.clamped_to(limit);
  agg_dirty_ = false;
  return agg_cache_;
}

bool VirtualMachine::doing_io() const {
  const Resources d = aggregate_demand();
  return d.disk + d.net > 1.0;  // > 1 MB/s counts as active I/O
}

double VirtualMachine::cpu_efficiency() const {
  return 1.0 - (dom0_ ? cal_.dom0_cpu_tax : cal_.cpu_tax);
}

double VirtualMachine::io_efficiency(int active_io_vms) const {
  if (dom0_) return 1.0 - cal_.dom0_io_tax;
  double tax = cal_.io_tax;
  if (active_io_vms > 1) {
    tax += cal_.io_contention_tax * static_cast<double>(active_io_vms - 1);
  }
  // Buffer-cache model: the page cache is whatever memory the resident
  // workloads leave free, so combined TaskTracker+DataNode VMs (task heap
  // squeezing the cache) hit the miss penalty much sooner than a dedicated
  // storage VM — the split-architecture advantage of Fig. 2(d)/Fig. 3.
  sim::MegaBytes used_mb;
  for (const auto& w : workloads_) {
    used_mb += sim::MegaBytes{w->demand().memory};
  }
  const sim::MegaBytes free_mb =
      std::max(sim::MegaBytes{64.0}, memory_mb_ - used_mb);
  const sim::MegaBytes knee = cal_.io_cache_knee_factor * free_mb;
  if (knee > sim::MegaBytes{}) {
    tax += cal_.io_cache_tax * std::min(1.0, recent_io_mb_ / knee);
  }
  return std::max(0.3, 1.0 - tax);
}

void VirtualMachine::settle_all(sim::SimTime now) {
  const double dt = now - last_decay_;
  if (dt > 0) {
    recent_io_mb_ *= std::exp2(-dt / cal_.io_cache_halflife_s);
    last_decay_ = now;
  }
  double io_sum = 0;
  for (const auto& w : workloads_) io_sum += w->settle(now);
  recent_io_mb_ += sim::MegaBytes{io_sum};
}

void VirtualMachine::distribute(sim::SimTime now, const Resources& grant,
                                int active_io_vms) {
  const double eff_cpu = cpu_efficiency();
  const double eff_io = io_efficiency(active_io_vms);
  const double migration_factor =
      migrating_ ? 1.0 - cal_.migration_guest_slowdown : 1.0;
  // Water-fill each resource of the grant across the effective demands,
  // into scratch reused across recomputes. Demands are gathered in one
  // pass (one member deref each) and the per-kind columns read from the
  // contiguous copy, mirroring Machine::recompute's gather.
  const std::size_t n = workloads_.size();
  split_alloc_.resize(n);
  split_eff_.resize(n);
  split_demand_.resize(n);
  split_out_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    split_eff_[i] = workloads_[i]->effective_demand();
  }
  for (int r = 0; r < kNumResources; ++r) {
    const auto kind = static_cast<ResourceKind>(r);
    for (std::size_t i = 0; i < n; ++i) {
      split_demand_[i] = split_eff_[i][kind];
    }
    waterfill_into(grant[kind], split_demand_, split_out_, split_wf_[r]);
    for (std::size_t i = 0; i < n; ++i) split_alloc_[i][kind] = split_out_[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto& w = workloads_[i];
    double speed =
        paused_ ? 0.0 : speed_of(*w, split_alloc_[i], eff_cpu, eff_io, cal_);
    speed *= migration_factor;
    w->apply_allocation(now, split_alloc_[i], speed);
    if (host_ != nullptr) host_->reschedule(w);
  }
}

// -------------------------------------------------------------- Machine ----

Machine::Machine(sim::Simulation& sim, std::string name, Resources capacity,
                 const Calibration& cal)
    : ExecutionSite(std::move(name)),
      sim_(sim),
      capacity_(capacity),
      cal_(cal),
      power_model_{cal.pm_idle_watts, cal.pm_peak_watts} {
  for (auto& series : util_series_) {
    series.set_max_samples(kMaxMachineSeriesSamples);
  }
  energy_.set_max_samples(kMaxMachineSeriesSamples);
  energy_.record(sim_.now(), power_model_.watts(sim::Fraction{0}));
}

Machine::~Machine() {
  if (coordinator_ != nullptr) coordinator_->forget(this);
}

void Machine::attach_vm(VirtualMachine* vm) {
  assert(vm != nullptr && vm->host_machine() == nullptr);
  vm->attach_to(this);
  vms_.push_back(vm);
  invalidate();
}

void Machine::detach_vm(VirtualMachine* vm) {
  auto it = std::find(vms_.begin(), vms_.end(), vm);
  if (it == vms_.end()) return;
  // Freeze the VM's workloads: settle, zero speeds, park completion events
  // at "never" (keeping their tie-break seats for re-attachment).
  vm->settle_all(sim_.now());
  for (const auto& w : vm->workloads()) {
    if (w->completion_event.valid() && sim_.defer(w->completion_event,
                                                  kNever)) {
      w->completion_time = kNever;
    }
    w->apply_allocation(sim_.now(), {}, 0);
  }
  vm->attach_to(nullptr);
  vms_.erase(it);
  invalidate();
}

void Machine::set_powered(bool on) {
  if (powered_ == on) return;
  powered_ = on;
  invalidate();
}

void Machine::invalidate() {
  if (coordinator_ != nullptr && !coordinator_->eager()) {
    if (!dirty_) {
      dirty_ = true;
      coordinator_->mark_dirty(this);
    }
    return;
  }
  recompute(coordinator_ != nullptr ? RecomputeCause::kEager
                                    : RecomputeCause::kDirect);
}

void Machine::settle_now() {
  ensure_clean();
  const sim::SimTime now = sim_.now();
  for (const auto& w : workloads_) w->settle(now);
  for (auto* vm : vms_) vm->settle_all(now);
}

double Machine::utilization(ResourceKind kind) const {
  ensure_clean();
  const double cap = capacity_[kind];
  return cap > 0 ? allocated_total_[kind] / cap : 0;
}

void Machine::reschedule(const WorkloadPtr& workload) {
  if (!workload->finite() || workload->done()) {
    if (workload->completion_event.valid()) {
      sim_.cancel(workload->completion_event);
      workload->completion_event = {};
    }
    return;
  }
  // A stalled workload (zero speed: paused, capped to nothing, starved)
  // completes "never": park its event at infinity rather than cancelling
  // it, so the event keeps its original tie-break seat for when an
  // allocation revives it.
  const sim::SimTime target =
      workload->speed() <= 0
          ? kNever
          : sim_.now() + (workload->remaining() / workload->speed()).value();
  if (workload->completion_event.valid() &&
      sim::same_time(target, workload->completion_time)) {
    // The recompute left this workload's finish time where it was; keep
    // the scheduled event instead of cancel/re-push churn (this also
    // preserves FIFO tie-break order across no-op reallocations).
    ++reschedule_skips_;
    if (prof_ != nullptr) {
      prof_->add(telemetry::WorkCounter::kRescheduleSkipped);
    }
    return;
  }
  if (workload->completion_event.valid()) {
    if (!eager_reschedule_ && sim_.defer(workload->completion_event, target)) {
      // Lazy path: the pending event moves in place (O(1) when postponing);
      // no cancel/re-push heap surgery. A false return means the id went
      // stale (fired or cancelled), so fall through to a fresh push.
      workload->completion_time = target;
      ++reschedule_defers_;
      if (prof_ != nullptr) {
        prof_->add(telemetry::WorkCounter::kRescheduleDeferred);
      }
      return;
    }
    if (eager_reschedule_) {
      // Reference mode: genuine cancel + re-push heap surgery, but at the
      // event's original tie-break seat — tie order must be a property of
      // the workload, not of the reschedule policy, or the two modes would
      // diverge on same-time completion collisions.
      if (const sim::EventId moved =
              sim_.repush(workload->completion_event, target);
          moved.valid()) {
        workload->completion_event = moved;
        workload->completion_time = target;
        if (prof_ != nullptr) {
          prof_->add(telemetry::WorkCounter::kReschedulePushed);
        }
        return;
      }
    }
  }
  if (prof_ != nullptr) prof_->add(telemetry::WorkCounter::kReschedulePushed);
  sim_.cancel(workload->completion_event);
  workload->completion_time = target;
  workload->completion_event =
      sim_.at(target, completion_handler(sim_, workload));
}

void Machine::recompute(RecomputeCause cause) {
  // Clear the dirty flag first: the utilization()/ensure_clean() reads
  // below must not re-enter.
  dirty_ = false;
  ++recompute_count_;
  if (prof_ != nullptr) {
    switch (cause) {
      case RecomputeCause::kDirect:
        prof_->add(telemetry::WorkCounter::kRecomputeDirect);
        break;
      case RecomputeCause::kDrain:
        prof_->add(telemetry::WorkCounter::kRecomputeDrain);
        break;
      case RecomputeCause::kReadBarrier:
        prof_->add(telemetry::WorkCounter::kRecomputeReadBarrier);
        break;
      case RecomputeCause::kEager:
        prof_->add(telemetry::WorkCounter::kRecomputeEager);
        break;
    }
  }
  telemetry::Scope prof_scope(prof_, prof_recompute_scope_);
  const sim::SimTime now = sim_.now();

  // 1. Settle elapsed progress at the old rates.
  for (const auto& w : workloads_) w->settle(now);
  for (auto* vm : vms_) vm->settle_all(now);

  // 2. Gather consumer demands: native workloads, then VMs.
  const std::size_t n_native = workloads_.size();
  const std::size_t n = n_native + vms_.size();
  scratch_demands_.resize(n);
  scratch_grants_.resize(n);
  scratch_d_.resize(n);
  scratch_alloc_.resize(n);
  for (std::size_t i = 0; i < n_native; ++i) {
    scratch_demands_[i] =
        powered_ ? workloads_[i]->effective_demand() : Resources{};
  }
  for (std::size_t j = 0; j < vms_.size(); ++j) {
    scratch_demands_[n_native + j] =
        powered_ ? vms_[j]->aggregate_demand() : Resources{};
  }

  // 3. Water-fill each physical resource across consumers.
  for (int r = 0; r < kNumResources; ++r) {
    const auto kind = static_cast<ResourceKind>(r);
    for (std::size_t i = 0; i < n; ++i) scratch_d_[i] = scratch_demands_[i][kind];
    waterfill_into(capacity_[kind], scratch_d_, scratch_alloc_,
                   scratch_wf_[r]);
    for (std::size_t i = 0; i < n; ++i) scratch_grants_[i][kind] = scratch_alloc_[i];
  }

  // 4. Apply to native workloads (no virtualization tax).
  for (std::size_t i = 0; i < n_native; ++i) {
    const auto& w = workloads_[i];
    const double speed = speed_of(*w, scratch_grants_[i], 1.0, 1.0, cal_);
    w->apply_allocation(now, scratch_grants_[i], speed);
    reschedule(w);
  }

  // 5. Let each VM distribute its grant internally. The I/O-activity census
  // reuses the demands gathered in step 2 rather than re-aggregating per VM
  // (when unpowered the gathered demand is zero, but so is every grant, so
  // the efficiency factor it feeds is unobservable).
  int active_io_vms = 0;
  for (std::size_t j = 0; j < vms_.size(); ++j) {
    const Resources& d = scratch_demands_[n_native + j];
    if (d.disk + d.net > 1.0) ++active_io_vms;  // > 1 MB/s = active I/O
  }
  for (std::size_t j = 0; j < vms_.size(); ++j) {
    vms_[j]->distribute(now, scratch_grants_[n_native + j], active_io_vms);
  }

  // 6. Metrics and power. Same-instant recordings coalesce: several
  // recomputes at one timestamp leave exactly one sample holding the final
  // value, so deferred and eager reallocation produce identical series.
  allocated_total_ = {};
  for (const auto& g : scratch_grants_) allocated_total_ += g;
  for (int r = 0; r < kNumResources; ++r) {
    const auto kind = static_cast<ResourceKind>(r);
    util_series_[r].add_coalesced(now, utilization(kind));
  }
  const double blended =
      0.7 * utilization(ResourceKind::kCpu) +
      0.3 * std::max(utilization(ResourceKind::kDisk),
                     utilization(ResourceKind::kNet));
  const sim::Watts watts =
      powered_ ? power_model_.watts(sim::Fraction{blended}) : sim::Watts{};
  for (int r = 0; r < kNumResources; ++r) {
    [[maybe_unused]] const auto kind = static_cast<ResourceKind>(r);
    // Conservation: water-filling may never hand out more of a resource
    // than the machine physically has (tolerance for fp accumulation).
    HYBRIDMR_AUDIT_CHECK(
        allocated_total_[kind] <= capacity_[kind] + 1e-6 ||
            allocated_total_[kind] <= capacity_[kind] * (1.0 + 1e-9),
        "cluster.machine", "shares_within_capacity", now,
        {{"machine", name()},
         {"resource", cluster::to_string(kind)},
         {"allocated", audit::num(allocated_total_[kind])},
         {"capacity", audit::num(capacity_[kind])}});
  }
  HYBRIDMR_AUDIT_CHECK(
      powered_ ? (watts >= power_model_.idle_watts - sim::Watts{1e-9} &&
                  watts <= power_model_.peak_watts + sim::Watts{1e-9})
               : watts <= sim::Watts{0},
      "cluster.machine", "power_within_model_bounds", now,
      {{"machine", name()},
       {"watts", audit::num(watts.value())},
       {"idle_watts", audit::num(power_model_.idle_watts.value())},
       {"peak_watts", audit::num(power_model_.peak_watts.value())}});
  energy_.record(now, watts);
  if (tel_cpu_ != nullptr) {
    // Windowed hub metrics aggregate count/sum, so a same-instant revision
    // cannot just overwrite: withhold the newest sample until the clock
    // moves past its timestamp, then publish exactly one.
    if (tel_pending_ && tel_pending_time_ < now) publish_sample_now();
    tel_pending_ = true;
    tel_pending_time_ = now;
    tel_pending_cpu_ = utilization(ResourceKind::kCpu);
    tel_pending_disk_ = utilization(ResourceKind::kDisk);
    tel_pending_watts_ = watts;
    if (coordinator_ != nullptr) {
      if (!tel_queued_) {
        coordinator_->mark_sample_pending(this);
        tel_queued_ = true;
      }
    } else {
      // Standalone machine: no coordinator will ever flush, publish now.
      publish_sample_now();
    }
  }
}

void Machine::publish_sample_now() {
  tel_pending_ = false;
  if (tel_cpu_ == nullptr) return;
  tel_cpu_->sample(tel_pending_time_, tel_pending_cpu_);
  tel_disk_->sample(tel_pending_time_, tel_pending_disk_);
  tel_watts_->sample(tel_pending_time_, tel_pending_watts_.value());
}

bool Machine::publish_pending_sample(sim::SimTime now) {
  if (tel_pending_ && tel_pending_time_ < now) publish_sample_now();
  if (!tel_pending_) {
    tel_queued_ = false;
    return true;
  }
  return false;
}

void Machine::publish_pending_sample() {
  if (tel_pending_) publish_sample_now();
  tel_queued_ = false;
}

void Machine::set_telemetry(telemetry::Hub* hub) {
  if (hub == nullptr) {
    tel_cpu_ = tel_disk_ = tel_watts_ = nullptr;
    tel_pending_ = false;
    prof_ = nullptr;
    return;
  }
  tel_cpu_ =
      &hub->registry.timeseries("machine." + name() + ".cpu_util", 5.0, "frac");
  tel_disk_ = &hub->registry.timeseries("machine." + name() + ".disk_util", 5.0,
                                        "frac");
  tel_watts_ =
      &hub->registry.timeseries("machine." + name() + ".watts", 5.0, "W");
  prof_ = hub->profiler.enabled() ? &hub->profiler : nullptr;
  if (prof_ != nullptr) {
    prof_recompute_scope_ = prof_->intern("cluster.machine.recompute");
  }
}

}  // namespace hybridmr::cluster
