#include "cluster/workload.h"

#include <algorithm>
#include <utility>

#include "cluster/machine.h"

namespace hybridmr::cluster {

Workload::Workload(std::string name, Resources demand, sim::Duration work)
    : name_(std::move(name)),
      demand_(demand),
      total_work_(work.value()),
      remaining_(work < sim::Duration{0} ? kService.value() : work.value()) {
  refresh_eff_demand();
}

void Workload::refresh_eff_demand() {
  eff_demand_ = (paused_ || done_) ? Resources{} : demand_.min(caps_);
}

void Workload::set_demand(const Resources& demand) {
  demand_ = demand;
  refresh_eff_demand();
  if (site_ != nullptr) site_->reallocate();
}

void Workload::set_caps(const Resources& caps) {
  caps_ = caps;
  refresh_eff_demand();
  if (site_ != nullptr) site_->reallocate();
}

void Workload::set_paused(bool paused) {
  if (paused_ == paused) return;
  paused_ = paused;
  refresh_eff_demand();
  if (site_ != nullptr) site_->reallocate();
}

namespace {

// Reallocation is deferred (see realloc.h): reads of allocation-derived
// state drain the host machine's pending recompute first so no caller —
// DRM profiling, migration dirty-rate, interactive refresh — can observe
// shares from before a same-instant mutation.
void drain_host(const ExecutionSite* site) {
  if (site == nullptr) return;
  if (const Machine* machine = site->host_machine(); machine != nullptr) {
    machine->ensure_clean();
  }
}

}  // namespace

double Workload::speed() const {
  drain_host(site_);
  return speed_;
}

sim::Duration Workload::remaining() const {
  drain_host(site_);
  return sim::Duration{remaining_};
}

double Workload::progress() const {
  if (!finite() || total_work_ <= 0) return 0;
  drain_host(site_);
  return std::clamp(1.0 - remaining_ / total_work_, 0.0, 1.0);
}

const Resources& Workload::allocated() const {
  drain_host(site_);
  return allocated_;
}

void Workload::finish(sim::SimTime now) {
  // Settle at the *current* rates: drain any deferred recompute first so
  // the interval accrues exactly as it would have under eager reallocation.
  drain_host(site_);
  settle(now);
  remaining_ = 0;
  done_ = true;
  speed_ = 0;
  allocated_ = {};
  refresh_eff_demand();
  // The demand change above bypasses reallocate() (the removal that
  // follows reallocates); drop any site-side demand cache now so a read
  // barrier in between cannot observe the pre-finish demand.
  if (site_ != nullptr) site_->invalidate_demand_cache();
}

}  // namespace hybridmr::cluster
