#include "cluster/workload.h"

#include <algorithm>
#include <utility>

#include "cluster/machine.h"

namespace hybridmr::cluster {

Workload::Workload(std::string name, Resources demand, sim::Duration work)
    : name_(std::move(name)),
      demand_(demand),
      total_work_(work.value()),
      remaining_(work < sim::Duration{0} ? kService.value() : work.value()) {}

void Workload::set_demand(const Resources& demand) {
  demand_ = demand;
  if (site_ != nullptr) site_->reallocate();
}

void Workload::set_caps(const Resources& caps) {
  caps_ = caps;
  if (site_ != nullptr) site_->reallocate();
}

Resources Workload::effective_demand() const {
  if (paused_ || done_) return {};
  return demand_.min(caps_);
}

void Workload::set_paused(bool paused) {
  if (paused_ == paused) return;
  paused_ = paused;
  if (site_ != nullptr) site_->reallocate();
}

namespace {

// Reallocation is deferred (see realloc.h): reads of allocation-derived
// state drain the host machine's pending recompute first so no caller —
// DRM profiling, migration dirty-rate, interactive refresh — can observe
// shares from before a same-instant mutation.
void drain_host(const ExecutionSite* site) {
  if (site == nullptr) return;
  if (const Machine* machine = site->host_machine(); machine != nullptr) {
    machine->ensure_clean();
  }
}

}  // namespace

double Workload::speed() const {
  drain_host(site_);
  return speed_;
}

sim::Duration Workload::remaining() const {
  drain_host(site_);
  return sim::Duration{remaining_};
}

double Workload::progress() const {
  if (!finite() || total_work_ <= 0) return 0;
  drain_host(site_);
  return std::clamp(1.0 - remaining_ / total_work_, 0.0, 1.0);
}

const Resources& Workload::allocated() const {
  drain_host(site_);
  return allocated_;
}

double Workload::settle(sim::SimTime now) {
  const double dt = now - last_settle_;
  last_settle_ = now;
  if (dt <= 0 || done_) return 0;
  if (finite()) {
    remaining_ = std::max(0.0, remaining_ - dt * speed_);
  }
  cpu_seconds_ += allocated_.cpu * dt;
  const double io = (allocated_.disk + allocated_.net) * dt;
  io_mb_ += io;
  return io;
}

void Workload::apply_allocation(sim::SimTime now, const Resources& alloc,
                                double speed) {
  last_settle_ = now;
  allocated_ = alloc;
  speed_ = done_ ? 0 : speed;
}

void Workload::finish(sim::SimTime now) {
  // Settle at the *current* rates: drain any deferred recompute first so
  // the interval accrues exactly as it would have under eager reallocation.
  drain_host(site_);
  settle(now);
  remaining_ = 0;
  done_ = true;
  speed_ = 0;
  allocated_ = {};
}

}  // namespace hybridmr::cluster
