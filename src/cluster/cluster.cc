#include "cluster/cluster.h"

#include <utility>

#include "telemetry/telemetry.h"

namespace hybridmr::cluster {

Machine* HybridCluster::add_machine(const std::string& name) {
  const std::string n =
      name.empty() ? "pm" + std::to_string(machines_.size()) : name;
  machines_.push_back(
      std::make_unique<Machine>(sim_, n, cal_.pm_capacity(), cal_));
  machines_.back()->set_coordinator(&realloc_);
  machines_.back()->set_eager_reschedule(eager_reschedule_);
  if (tel_ != nullptr) machines_.back()->set_telemetry(tel_);
  return machines_.back().get();
}

std::vector<Machine*> HybridCluster::add_machines(int n,
                                                  const std::string& prefix) {
  std::vector<Machine*> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(add_machine(prefix + std::to_string(i)));
  }
  return out;
}

VirtualMachine* HybridCluster::add_vm(Machine& host, const std::string& name,
                                      sim::CoreShare vcpus,
                                      sim::MegaBytes memory_mb) {
  const std::string n =
      name.empty() ? "vm" + std::to_string(vms_.size()) : name;
  vms_.push_back(std::make_unique<VirtualMachine>(
      sim_, n,
      vcpus > sim::CoreShare{0} ? vcpus : sim::CoreShare{cal_.vm_vcpus},
      memory_mb > sim::MegaBytes{0} ? memory_mb
                                    : cal_.vm_memory_mb,
      cal_));
  VirtualMachine* vm = vms_.back().get();
  host.attach_vm(vm);
  return vm;
}

std::vector<VirtualMachine*> HybridCluster::virtualize(Machine& host,
                                                       int count) {
  std::vector<VirtualMachine*> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(add_vm(host));
  return out;
}

Machine* HybridCluster::machine(const std::string& name) const {
  for (const auto& m : machines_) {
    if (m->name() == name) return m.get();
  }
  return nullptr;
}

VirtualMachine* HybridCluster::vm(const std::string& name) const {
  for (const auto& v : vms_) {
    if (v->name() == name) return v.get();
  }
  return nullptr;
}

sim::Joules HybridCluster::energy_joules(sim::SimTime t0,
                                         sim::SimTime t1) const {
  sim::Joules total;
  for (const auto& m : machines_) total += m->energy().joules(t0, t1);
  return total;
}

double HybridCluster::mean_utilization(ResourceKind kind, double t0,
                                       double t1) const {
  double total = 0;
  int n = 0;
  for (const auto& m : machines_) {
    if (!m->powered()) continue;
    const auto& series = m->utilization_series(kind);
    total += series.integrate(t0, t1) / (t1 > t0 ? t1 - t0 : 1);
    ++n;
  }
  return n > 0 ? total / n : 0;
}

int HybridCluster::powered_machines() const {
  int n = 0;
  for (const auto& m : machines_) {
    if (m->powered()) ++n;
  }
  return n;
}

void HybridCluster::set_telemetry(telemetry::Hub* hub) {
  tel_ = hub;
  migrator_.set_telemetry(hub);
  realloc_.set_profiler(
      hub != nullptr && hub->profiler.enabled() ? &hub->profiler : nullptr);
  for (const auto& m : machines_) m->set_telemetry(hub);
}

int HybridCluster::power_off_idle() {
  int count = 0;
  for (const auto& m : machines_) {
    if (m->powered() && m->vms().empty() && m->workloads().empty()) {
      m->set_powered(false);
      ++count;
    }
  }
  return count;
}

}  // namespace hybridmr::cluster
