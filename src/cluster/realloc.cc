#include "cluster/realloc.h"

#include <algorithm>

#include "cluster/machine.h"

namespace hybridmr::cluster {

ReallocCoordinator::ReallocCoordinator(sim::Simulation& sim) : sim_(sim) {
  hook_token_ = sim_.add_flush_hook([this] { drain(); });
}

ReallocCoordinator::~ReallocCoordinator() {
  sim_.remove_flush_hook(hook_token_);
}

void ReallocCoordinator::set_eager(bool eager) {
  if (eager) drain();
  eager_ = eager;
}

void ReallocCoordinator::set_profiler(telemetry::Profiler* prof) {
  prof_ = prof;
  if (prof_ != nullptr) {
    prof_drain_scope_ = prof_->intern("cluster.realloc.drain");
  }
}

void ReallocCoordinator::drain() {
  gate_.assert_held();
  if (!dirty_.empty()) {
    ++drains_;
    telemetry::Scope prof_scope(prof_, prof_drain_scope_);
    // recompute() can mark *other* machines dirty (it never re-marks its
    // own: the dirty flag clears on entry), so process as a queue.
    for (std::size_t i = 0; i < dirty_.size(); ++i) {
      dirty_[i]->recompute(RecomputeCause::kDrain);
    }
    if (prof_ != nullptr) {
      prof_->add(telemetry::WorkCounter::kDrainPasses);
      // The queue length at completion counts cascaded re-marks too: this
      // is the real per-flush recompute bill.
      prof_->record_dist_at(telemetry::WorkDist::kDirtySetSize,
                            dirty_.size(), sim_.now());
    }
    dirty_.clear();
  }
  if (!sample_pending_.empty()) {
    const sim::SimTime now = sim_.now();
    std::size_t keep = 0;
    for (Machine* m : sample_pending_) {
      // Publish once the clock has moved past the sample's instant: no
      // further same-time recompute can revise it.
      if (!m->publish_pending_sample(now)) sample_pending_[keep++] = m;
    }
    sample_pending_.resize(keep);
  }
}

void ReallocCoordinator::flush_samples() {
  gate_.assert_held();
  for (Machine* m : sample_pending_) m->publish_pending_sample();
  sample_pending_.clear();
}

void ReallocCoordinator::forget(Machine* machine) {
  gate_.assert_held();
  std::erase(dirty_, machine);
  std::erase(sample_pending_, machine);
}

}  // namespace hybridmr::cluster
