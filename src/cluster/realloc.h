// Deferred, coalesced machine reallocation.
//
// Every membership/demand mutation used to call Machine::recompute()
// eagerly, so a k-task placement burst at one simulated instant recomputed
// the same machine k times. The coordinator batches instead: mutations mark
// their host machine dirty here (Machine::invalidate()), and the set drains
// — one recompute() per distinct machine, in first-marked order — through a
// simulation flush hook that fires before the next event dispatches, i.e.
// before the virtual clock can move past the mutation timestamp. Reads of
// allocation-dependent state (Machine::utilization(), Workload::allocated(),
// ...) drain their own machine on demand via Machine::ensure_clean(), so no
// caller can observe stale shares.
//
// Eager mode (set_eager(true)) restores the recompute-on-every-mutation
// behavior; the determinism-equivalence test runs both modes against the
// same seed and requires byte-identical reports.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulation.h"
#include "sim/thread_annotations.h"
#include "telemetry/profiler.h"

namespace hybridmr::cluster {

class Machine;

class ReallocCoordinator {
 public:
  explicit ReallocCoordinator(sim::Simulation& sim);
  ~ReallocCoordinator();

  ReallocCoordinator(const ReallocCoordinator&) = delete;
  ReallocCoordinator& operator=(const ReallocCoordinator&) = delete;

  /// Eager mode recomputes on every mutation (the pre-coalescing
  /// behavior). Switching drains any deferred work first.
  void set_eager(bool eager);
  [[nodiscard]] bool eager() const { return eager_; }

  /// Marks `machine` dirty. Called by Machine::invalidate() only; the
  /// machine guarantees it enqueues itself at most once.
  void mark_dirty(Machine* machine) {
    gate_.assert_held();
    dirty_.push_back(machine);
  }

  /// Queues a machine whose latest telemetry sample is being withheld
  /// until the clock moves past its timestamp (so several same-instant
  /// recomputes publish one sample, matching eager mode's coalescing).
  void mark_sample_pending(Machine* machine) {
    gate_.assert_held();
    sample_pending_.push_back(machine);
  }

  /// Recomputes every dirty machine (in first-marked order), then
  /// publishes withheld telemetry samples whose timestamp the clock has
  /// passed. Runs automatically at event boundaries via the flush hook.
  void drain();

  /// Publishes every withheld telemetry sample regardless of timestamp.
  /// Call before reading the telemetry registry at the end of a run.
  void flush_samples();

  /// Drops a machine from the pending lists (machine teardown).
  void forget(Machine* machine);

  /// Number of drain passes that found work (for tests/benchmarks).
  [[nodiscard]] std::uint64_t drains() const {
    gate_.assert_held();
    return drains_;
  }

  /// Attaches the profiler (null detaches): drains record their pass
  /// count, dirty-set size distribution and wall-time scope.
  void set_profiler(telemetry::Profiler* prof);

 private:
  // Sim-thread capability token: the dirty-set is the planned work list of
  // the parallel core, so its single-writer discipline is load-bearing.
  sim::SimThreadGate gate_;

  sim::Simulation& sim_;
  std::size_t hook_token_;
  std::vector<Machine*> dirty_ HMR_GUARDED_BY(gate_);
  std::vector<Machine*> sample_pending_ HMR_GUARDED_BY(gate_);
  std::uint64_t drains_ HMR_GUARDED_BY(gate_) = 0;
  bool eager_ = false;
  telemetry::Profiler* prof_ = nullptr;
  telemetry::ScopeId prof_drain_scope_;
};

}  // namespace hybridmr::cluster
