// Physical machines and Xen-style virtual machines.
//
// Allocation model (DESIGN.md §3): a physical machine water-fills each
// resource max-min fairly across its consumers (native workloads and VMs);
// each VM then water-fills its grant across its own workloads and applies
// the virtualization taxes.
//
// Reallocation is *deferred and coalesced* (see realloc.h): a membership,
// demand or cap change marks the host machine dirty via invalidate(), and
// the machine recomputes once per event boundary (or earlier, on the first
// read of allocation-dependent state through ensure_clean()). recompute()
// itself is allocation-free in steady state: it water-fills into per-machine
// scratch buffers and only cancels/re-pushes a completion event when the
// workload's finish time actually changed.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cluster/calibration.h"
#include "cluster/power.h"
#include "cluster/resources.h"
#include "cluster/workload.h"
#include "sim/simulation.h"
#include "stats/timeseries.h"
#include "telemetry/profiler.h"

namespace hybridmr::telemetry {
struct Hub;
class Profiler;
class TimeSeriesMetric;
}  // namespace hybridmr::telemetry

namespace hybridmr::cluster {

class Machine;
class ReallocCoordinator;

/// Why a recompute ran — the profiler attributes every Machine::recompute()
/// invocation to its trigger so superlinear blowup is visible per cause
/// (a drain storm reads very differently from read-barrier churn).
enum class RecomputeCause {
  kDirect,       // direct call (tests, standalone machines)
  kDrain,        // coalescing drain at an event boundary
  kReadBarrier,  // ensure_clean() on a read of allocation-dependent state
  kEager,        // eager mode recompute-on-every-mutation
};

/// Reusable sort-order scratch for waterfill_into(): hot callers keep one
/// per call site so steady-state allocation is zero. Doubles as a memo of
/// the last fill through this scratch: identical capacity + demands replay
/// the previous allocation (a pure function of those inputs), so a VM
/// redistributing an unchanged grant across unchanged member demands skips
/// the sort entirely.
struct WaterfillScratch {
  std::vector<std::uint32_t> order;
  double last_capacity = -1;
  std::vector<double> last_demands;
  std::vector<double> last_out;
  bool valid = false;
};

/// Max-min fair ("water-filling") split of `capacity` across `demands`,
/// written into `out` (must have the same extent as `demands`). Total
/// allocated never exceeds capacity; no consumer gets more than its demand;
/// unsatisfied consumers get equal shares.
void waterfill_into(double capacity, std::span<const double> demands,
                    std::span<double> out, WaterfillScratch& scratch);

/// Allocating convenience wrapper around waterfill_into() (tests, cold
/// paths).
std::vector<double> waterfill(double capacity, std::span<const double> demands);

/// Piecewise-linear memory-pressure speed factor for an alloc/demand ratio.
double memory_pressure_factor(double ratio, const Calibration& cal);

/// Where a workload can run: a physical machine (native) or a VM.
class ExecutionSite {
 public:
  virtual ~ExecutionSite() = default;

  /// Attaches a workload; takes shared ownership until completion/removal.
  void add(WorkloadPtr workload);

  /// Detaches a workload (does not fire on_complete).
  void remove(Workload* workload);

  /// Marks the physical machine underneath for reallocation (deferred and
  /// coalesced; recomputes immediately in eager mode or without a
  /// coordinator). Virtual so a VM can invalidate its aggregate-demand
  /// cache on the same mutations that dirty the host.
  virtual void reallocate();

  /// Drops any cached view of member demands *without* scheduling a
  /// reallocation. Workload::finish() zeroes its effective demand outside
  /// the reallocate() funnel (the removal that follows reallocates), so it
  /// calls this to keep a read-barrier recompute in between exact.
  virtual void invalidate_demand_cache() {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] virtual sim::Simulation& simulation() = 0;
  [[nodiscard]] virtual bool is_virtual() const = 0;
  /// The physical machine executing this site.
  [[nodiscard]] virtual Machine* host_machine() = 0;
  [[nodiscard]] const Machine* host_machine() const {
    return const_cast<ExecutionSite*>(this)->host_machine();
  }
  /// Nominal capacity of this site (used by placement heuristics).
  [[nodiscard]] virtual Resources nominal() const = 0;

  [[nodiscard]] const std::vector<WorkloadPtr>& workloads() const {
    return workloads_;
  }
  /// Sum of effective demands of resident workloads.
  [[nodiscard]] Resources total_demand() const;
  /// Sum of current allocations of resident workloads (drains any pending
  /// reallocation of the host machine first).
  [[nodiscard]] Resources total_allocated() const;

 protected:
  explicit ExecutionSite(std::string name) : name_(std::move(name)) {}
  std::vector<WorkloadPtr> workloads_;

 private:
  std::string name_;
};

/// Xen-style virtual machine. Owned by HybridCluster; hosted by a Machine.
class VirtualMachine : public ExecutionSite {
 public:
  VirtualMachine(sim::Simulation& sim, std::string name, sim::CoreShare vcpus,
                 sim::MegaBytes memory_mb, const Calibration& cal);

  [[nodiscard]] sim::Simulation& simulation() override { return sim_; }
  [[nodiscard]] bool is_virtual() const override { return true; }
  [[nodiscard]] Machine* host_machine() override { return host_; }
  [[nodiscard]] Resources nominal() const override;

  [[nodiscard]] sim::CoreShare vcpus() const {
    return sim::CoreShare{vcpus_};
  }
  [[nodiscard]] sim::MegaBytes memory_mb() const { return memory_mb_; }

  /// Dom-0 placement: near-native taxes (paper Fig. 2(c)).
  void set_dom0(bool dom0) { dom0_ = dom0; }
  [[nodiscard]] bool dom0() const { return dom0_; }

  /// VM-level throttles (cpu cores / disk / net) set by the DRM.
  void set_caps(const Resources& caps);
  [[nodiscard]] const Resources& caps() const { return caps_; }

  /// Pauses/resumes the whole VM (IPS action, or migration downtime).
  void set_paused(bool paused);
  [[nodiscard]] bool paused() const { return paused_; }

  /// Pre-copy in progress: guest runs slightly slowed.
  void set_migrating(bool migrating);
  [[nodiscard]] bool migrating() const { return migrating_; }

  /// Aggregate demand this VM presents to its host. Cached: every mutation
  /// that can change it (member add/remove/demand/caps/pause, VM caps or
  /// pause) funnels through reallocate(), which drops the cache.
  [[nodiscard]] Resources aggregate_demand() const;

  void reallocate() override {
    agg_dirty_ = true;
    ExecutionSite::reallocate();
  }
  void invalidate_demand_cache() override { agg_dirty_ = true; }

  /// True when the VM is presently generating disk/net demand.
  [[nodiscard]] bool doing_io() const;

  /// Effective CPU / I/O efficiency given `active_io_vms` co-resident VMs
  /// currently performing I/O (includes this one).
  [[nodiscard]] double cpu_efficiency() const;
  [[nodiscard]] double io_efficiency(int active_io_vms) const;

  // --- internal: called by Machine / HybridCluster ---
  void attach_to(Machine* host) { host_ = host; }
  /// Distributes the grant across resident workloads; applies taxes;
  /// returns I/O MB settled (already folded into the cache counter).
  void distribute(sim::SimTime now, const Resources& grant, int active_io_vms);
  /// Settles all resident workloads and decays the recent-I/O counter.
  void settle_all(sim::SimTime now);

  [[nodiscard]] const Calibration& calibration() const { return cal_; }

 private:
  sim::Simulation& sim_;
  Machine* host_ = nullptr;
  double vcpus_;
  sim::MegaBytes memory_mb_;
  const Calibration& cal_;
  Resources caps_ = Resources::unbounded();
  bool dom0_ = false;
  bool paused_ = false;
  bool migrating_ = false;
  // Buffer-cache model: exponentially decayed volume of recent I/O.
  sim::MegaBytes recent_io_mb_;
  sim::SimTime last_decay_ = 0;
  // aggregate_demand() memo (see reallocate()).
  mutable Resources agg_cache_{};
  mutable bool agg_dirty_ = true;
  // Scratch for distribute(): reused across recomputes. One waterfill
  // scratch per resource kind — the per-kind demand vectors differ, so a
  // shared scratch would thrash its memo 4x per distribute and never
  // replay across recomputes.
  // hmr-state(ephemeral: waterfill scratch + memo; recompute() rebuilds it,
  // so a snapshot may discard all five)
  std::vector<Resources> split_alloc_;
  std::vector<Resources> split_eff_;
  std::vector<double> split_demand_;
  std::vector<double> split_out_;
  // hmr-state(ephemeral: per-resource waterfill memo, same policy)
  std::array<WaterfillScratch, kNumResources> split_wf_;
};

/// A physical server. Root of the allocation hierarchy.
class Machine : public ExecutionSite {
 public:
  Machine(sim::Simulation& sim, std::string name, Resources capacity,
          const Calibration& cal);
  ~Machine() override;

  [[nodiscard]] sim::Simulation& simulation() override { return sim_; }
  [[nodiscard]] bool is_virtual() const override { return false; }
  [[nodiscard]] Machine* host_machine() override { return this; }
  [[nodiscard]] Resources nominal() const override { return capacity_; }

  [[nodiscard]] const Resources& capacity() const { return capacity_; }
  [[nodiscard]] const Calibration& calibration() const { return cal_; }

  // --- VM hosting (VMs owned by the cluster) ---
  void attach_vm(VirtualMachine* vm);
  void detach_vm(VirtualMachine* vm);
  [[nodiscard]] const std::vector<VirtualMachine*>& vms() const {
    return vms_;
  }

  // --- power ---
  void set_powered(bool on);
  [[nodiscard]] bool powered() const { return powered_; }
  [[nodiscard]] EnergyMeter& energy() {
    ensure_clean();
    return energy_;
  }
  [[nodiscard]] const EnergyMeter& energy() const {
    ensure_clean();
    return energy_;
  }
  [[nodiscard]] const PowerModel& power_model() const { return power_model_; }

  // --- metrics ---
  /// Instantaneous utilization (allocated / capacity) per resource.
  /// Drains a pending reallocation first, so the reading is never stale.
  [[nodiscard]] double utilization(ResourceKind kind) const;
  [[nodiscard]] const stats::TimeSeries& utilization_series(
      ResourceKind kind) const {
    ensure_clean();
    return util_series_[static_cast<int>(kind)];
  }

  // --- deferred reallocation (see realloc.h) ---
  /// Wires this machine to the cluster's coordinator. Without one, every
  /// invalidate() recomputes eagerly (standalone-machine behavior).
  void set_coordinator(ReallocCoordinator* coordinator) {
    coordinator_ = coordinator;
  }

  /// Marks derived allocation state stale. Deferred mode enqueues the
  /// machine with the coordinator (at most once); eager or standalone
  /// machines recompute immediately.
  void invalidate();

  /// Drains a pending recompute, if any. Reads of allocation-dependent
  /// state route through this, so staleness is never observable. Logically
  /// const: recompute() only refreshes derived state.
  void ensure_clean() const {
    if (dirty_) {
      const_cast<Machine*>(this)->recompute(RecomputeCause::kReadBarrier);
    }
  }

  /// Brings every resident workload's lazy usage counters (cpu-seconds,
  /// I/O MB, progress) up to date at the current instant, applying any
  /// pending reallocation first. For profiler-style readers; allocations
  /// are unchanged.
  void settle_now();

  /// Recomputes the whole allocation for this machine (native + VMs).
  /// Prefer invalidate()/ensure_clean(): calling this directly bypasses
  /// coalescing (scripts/lint_sim.py, rule eager-recompute). The cause
  /// only feeds the profiler's work-attribution counters.
  void recompute(RecomputeCause cause = RecomputeCause::kDirect);

  /// recompute() passes since construction (tests/benchmarks).
  [[nodiscard]] std::uint64_t recompute_count() const {
    return recompute_count_;
  }
  /// Completion events left in place because the finish time was
  /// unchanged (the reschedule-churn fix; tests/benchmarks).
  [[nodiscard]] std::uint64_t reschedule_skips() const {
    return reschedule_skips_;
  }
  /// Completion events moved in place via EventQueue::defer instead of
  /// cancel+re-push (tests/benchmarks).
  [[nodiscard]] std::uint64_t reschedule_defers() const {
    return reschedule_defers_;
  }

  /// Eager mode cancels and re-pushes the completion event on every
  /// finish-time change (pre-defer behavior, kept for the equivalence
  /// test); lazy mode defer()s the pending event in place.
  void set_eager_reschedule(bool eager) { eager_reschedule_ = eager; }

  /// (Re)schedules the completion event of a finite workload hosted
  /// anywhere on this machine. No-op when the recomputed finish time
  /// equals the already-scheduled one.
  void reschedule(const WorkloadPtr& workload);

  /// Attaches this machine to a telemetry hub; registers and caches its
  /// per-machine time-series metrics so recompute() stays allocation-free.
  void set_telemetry(telemetry::Hub* hub);

  /// Publishes the withheld telemetry sample once `now` has moved past its
  /// timestamp. Returns true when nothing remains withheld (coordinator
  /// drops the machine from its pending list). Coordinator-internal.
  bool publish_pending_sample(sim::SimTime now);
  /// Unconditionally publishes the withheld sample (end-of-run flush).
  void publish_pending_sample();

 private:
  // Samples the pending telemetry values into the hub.
  void publish_sample_now();

  sim::Simulation& sim_;
  Resources capacity_;
  const Calibration& cal_;
  PowerModel power_model_;
  EnergyMeter energy_;
  std::vector<VirtualMachine*> vms_;
  bool powered_ = true;
  Resources allocated_total_{};
  stats::TimeSeries util_series_[kNumResources];

  // Deferred-reallocation state.
  ReallocCoordinator* coordinator_ = nullptr;
  // hmr-shared(quiesced-read): ensure_clean() reads this flag from any
  // thread once the sim is quiesced (drained => false => no recompute);
  // while events dispatch it is sim-thread-only like everything else here.
  bool dirty_ = false;
  bool eager_reschedule_ = false;
  std::uint64_t recompute_count_ = 0;
  std::uint64_t reschedule_skips_ = 0;
  std::uint64_t reschedule_defers_ = 0;

  // recompute() scratch, reused across passes (allocation-free steady
  // state; sized to native workloads + VMs). Per-kind waterfill scratches
  // so each resource's memo survives the 4-kind interleave (see
  // VirtualMachine::split_wf_).
  // hmr-state(ephemeral: recompute() scratch; rebuilt on the next drain)
  std::vector<Resources> scratch_demands_;
  std::vector<Resources> scratch_grants_;
  std::vector<double> scratch_d_;
  std::vector<double> scratch_alloc_;
  // hmr-state(ephemeral: per-resource waterfill memo, rebuilt on drain)
  std::array<WaterfillScratch, kNumResources> scratch_wf_;

  // Cached telemetry metric handles (null when telemetry is not wired).
  telemetry::TimeSeriesMetric* tel_cpu_ = nullptr;
  telemetry::TimeSeriesMetric* tel_disk_ = nullptr;
  telemetry::TimeSeriesMetric* tel_watts_ = nullptr;
  // The latest sample of one simulated instant is withheld until the clock
  // moves past it, so k same-instant recomputes publish one sample in
  // deferred and eager mode alike (windowed metrics aggregate counts and
  // sums, so duplicates would skew them).
  bool tel_pending_ = false;
  bool tel_queued_ = false;  // in the coordinator's pending list
  sim::SimTime tel_pending_time_ = 0;
  double tel_pending_cpu_ = 0;
  double tel_pending_disk_ = 0;
  sim::Watts tel_pending_watts_;

  // Cached profiler handle (null unless a profiled run; see realloc.h for
  // how causes are attributed).
  telemetry::Profiler* prof_ = nullptr;
  telemetry::ScopeId prof_recompute_scope_;
};

}  // namespace hybridmr::cluster
