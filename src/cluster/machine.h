// Physical machines and Xen-style virtual machines.
//
// Allocation model (DESIGN.md §3): a physical machine water-fills each
// resource max-min fairly across its consumers (native workloads and VMs);
// each VM then water-fills its grant across its own workloads and applies
// the virtualization taxes. Any membership/demand change triggers
// reallocation, settling elapsed progress and rescheduling completion events.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cluster/calibration.h"
#include "cluster/power.h"
#include "cluster/resources.h"
#include "cluster/workload.h"
#include "sim/simulation.h"
#include "stats/timeseries.h"

namespace hybridmr::telemetry {
struct Hub;
class TimeSeriesMetric;
}  // namespace hybridmr::telemetry

namespace hybridmr::cluster {

class Machine;

/// Max-min fair ("water-filling") split of `capacity` across `demands`.
/// Total allocated never exceeds capacity; no consumer gets more than its
/// demand; unsatisfied consumers get equal shares.
std::vector<double> waterfill(double capacity, std::span<const double> demands);

/// Piecewise-linear memory-pressure speed factor for an alloc/demand ratio.
double memory_pressure_factor(double ratio, const Calibration& cal);

/// Where a workload can run: a physical machine (native) or a VM.
class ExecutionSite {
 public:
  virtual ~ExecutionSite() = default;

  /// Attaches a workload; takes shared ownership until completion/removal.
  void add(WorkloadPtr workload);

  /// Detaches a workload (does not fire on_complete).
  void remove(Workload* workload);

  /// Recomputes allocations for the whole physical machine underneath.
  void reallocate();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] virtual sim::Simulation& simulation() = 0;
  [[nodiscard]] virtual bool is_virtual() const = 0;
  /// The physical machine executing this site.
  [[nodiscard]] virtual Machine* host_machine() = 0;
  [[nodiscard]] const Machine* host_machine() const {
    return const_cast<ExecutionSite*>(this)->host_machine();
  }
  /// Nominal capacity of this site (used by placement heuristics).
  [[nodiscard]] virtual Resources nominal() const = 0;

  [[nodiscard]] const std::vector<WorkloadPtr>& workloads() const {
    return workloads_;
  }
  /// Sum of effective demands of resident workloads.
  [[nodiscard]] Resources total_demand() const;
  /// Sum of current allocations of resident workloads.
  [[nodiscard]] Resources total_allocated() const;

 protected:
  explicit ExecutionSite(std::string name) : name_(std::move(name)) {}
  std::vector<WorkloadPtr> workloads_;

 private:
  std::string name_;
};

/// Xen-style virtual machine. Owned by HybridCluster; hosted by a Machine.
class VirtualMachine : public ExecutionSite {
 public:
  VirtualMachine(sim::Simulation& sim, std::string name, double vcpus,
                 double memory_mb, const Calibration& cal);

  [[nodiscard]] sim::Simulation& simulation() override { return sim_; }
  [[nodiscard]] bool is_virtual() const override { return true; }
  [[nodiscard]] Machine* host_machine() override { return host_; }
  [[nodiscard]] Resources nominal() const override;

  [[nodiscard]] double vcpus() const { return vcpus_; }
  [[nodiscard]] double memory_mb() const { return memory_mb_; }

  /// Dom-0 placement: near-native taxes (paper Fig. 2(c)).
  void set_dom0(bool dom0) { dom0_ = dom0; }
  [[nodiscard]] bool dom0() const { return dom0_; }

  /// VM-level throttles (cpu cores / disk / net) set by the DRM.
  void set_caps(const Resources& caps);
  [[nodiscard]] const Resources& caps() const { return caps_; }

  /// Pauses/resumes the whole VM (IPS action, or migration downtime).
  void set_paused(bool paused);
  [[nodiscard]] bool paused() const { return paused_; }

  /// Pre-copy in progress: guest runs slightly slowed.
  void set_migrating(bool migrating);
  [[nodiscard]] bool migrating() const { return migrating_; }

  /// Aggregate demand this VM presents to its host.
  [[nodiscard]] Resources aggregate_demand() const;

  /// True when the VM is presently generating disk/net demand.
  [[nodiscard]] bool doing_io() const;

  /// Effective CPU / I/O efficiency given `active_io_vms` co-resident VMs
  /// currently performing I/O (includes this one).
  [[nodiscard]] double cpu_efficiency() const;
  [[nodiscard]] double io_efficiency(int active_io_vms) const;

  // --- internal: called by Machine / HybridCluster ---
  void attach_to(Machine* host) { host_ = host; }
  /// Distributes the grant across resident workloads; applies taxes;
  /// returns I/O MB settled (already folded into the cache counter).
  void distribute(sim::SimTime now, const Resources& grant, int active_io_vms);
  /// Settles all resident workloads and decays the recent-I/O counter.
  void settle_all(sim::SimTime now);

  [[nodiscard]] const Calibration& calibration() const { return cal_; }

 private:
  sim::Simulation& sim_;
  Machine* host_ = nullptr;
  double vcpus_;
  double memory_mb_;
  const Calibration& cal_;
  Resources caps_ = Resources::unbounded();
  bool dom0_ = false;
  bool paused_ = false;
  bool migrating_ = false;
  // Buffer-cache model: exponentially decayed MB of recent I/O.
  double recent_io_mb_ = 0;
  sim::SimTime last_decay_ = 0;
};

/// A physical server. Root of the allocation hierarchy.
class Machine : public ExecutionSite {
 public:
  Machine(sim::Simulation& sim, std::string name, Resources capacity,
          const Calibration& cal);

  [[nodiscard]] sim::Simulation& simulation() override { return sim_; }
  [[nodiscard]] bool is_virtual() const override { return false; }
  [[nodiscard]] Machine* host_machine() override { return this; }
  [[nodiscard]] Resources nominal() const override { return capacity_; }

  [[nodiscard]] const Resources& capacity() const { return capacity_; }
  [[nodiscard]] const Calibration& calibration() const { return cal_; }

  // --- VM hosting (VMs owned by the cluster) ---
  void attach_vm(VirtualMachine* vm);
  void detach_vm(VirtualMachine* vm);
  [[nodiscard]] const std::vector<VirtualMachine*>& vms() const {
    return vms_;
  }

  // --- power ---
  void set_powered(bool on);
  [[nodiscard]] bool powered() const { return powered_; }
  [[nodiscard]] EnergyMeter& energy() { return energy_; }
  [[nodiscard]] const EnergyMeter& energy() const { return energy_; }
  [[nodiscard]] const PowerModel& power_model() const { return power_model_; }

  // --- metrics ---
  /// Instantaneous utilization (allocated / capacity) per resource.
  [[nodiscard]] double utilization(ResourceKind kind) const;
  [[nodiscard]] const stats::TimeSeries& utilization_series(
      ResourceKind kind) const {
    return util_series_[static_cast<int>(kind)];
  }

  /// Recomputes the whole allocation for this machine (native + VMs).
  void recompute();

  /// (Re)schedules the completion event of a finite workload hosted
  /// anywhere on this machine.
  void reschedule(const WorkloadPtr& workload);

  /// Attaches this machine to a telemetry hub; registers and caches its
  /// per-machine time-series metrics so recompute() stays allocation-free.
  void set_telemetry(telemetry::Hub* hub);

 private:
  sim::Simulation& sim_;
  Resources capacity_;
  const Calibration& cal_;
  PowerModel power_model_;
  EnergyMeter energy_;
  std::vector<VirtualMachine*> vms_;
  bool powered_ = true;
  Resources allocated_total_{};
  stats::TimeSeries util_series_[kNumResources];
  // Cached telemetry metric handles (null when telemetry is not wired).
  telemetry::TimeSeriesMetric* tel_cpu_ = nullptr;
  telemetry::TimeSeriesMetric* tel_disk_ = nullptr;
  telemetry::TimeSeriesMetric* tel_watts_ = nullptr;
};

}  // namespace hybridmr::cluster
