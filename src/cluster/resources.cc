#include "cluster/resources.h"

#include <cstdio>

namespace hybridmr::cluster {

const char* to_string(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kCpu:
      return "cpu";
    case ResourceKind::kMemory:
      return "memory";
    case ResourceKind::kDisk:
      return "disk";
    case ResourceKind::kNet:
      return "net";
  }
  return "?";
}

std::string Resources::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "{cpu: %.2f, mem: %.0fMB, disk: %.1fMB/s, net: %.1fMB/s}", cpu,
                memory, disk, net);
  return buf;
}

}  // namespace hybridmr::cluster
