#include "cluster/resources.h"

#include <cstdio>

namespace hybridmr::cluster {

const char* to_string(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kCpu:
      return "cpu";
    case ResourceKind::kMemory:
      return "memory";
    case ResourceKind::kDisk:
      return "disk";
    case ResourceKind::kNet:
      return "net";
  }
  return "?";
}

double& Resources::operator[](ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kCpu:
      return cpu;
    case ResourceKind::kMemory:
      return memory;
    case ResourceKind::kDisk:
      return disk;
    case ResourceKind::kNet:
      return net;
  }
  return cpu;  // unreachable
}

double Resources::operator[](ResourceKind kind) const {
  return const_cast<Resources&>(*this)[kind];
}

Resources& Resources::operator+=(const Resources& o) {
  cpu += o.cpu;
  memory += o.memory;
  disk += o.disk;
  net += o.net;
  return *this;
}

Resources& Resources::operator-=(const Resources& o) {
  cpu -= o.cpu;
  memory -= o.memory;
  disk -= o.disk;
  net -= o.net;
  return *this;
}

Resources Resources::operator*(double k) const {
  return {cpu * k, memory * k, disk * k, net * k};
}

Resources Resources::min(const Resources& o) const {
  return {std::min(cpu, o.cpu), std::min(memory, o.memory),
          std::min(disk, o.disk), std::min(net, o.net)};
}

bool Resources::fits_in(const Resources& o, double eps) const {
  return cpu <= o.cpu + eps && memory <= o.memory + eps &&
         disk <= o.disk + eps && net <= o.net + eps;
}

double Resources::dominant_share(const Resources& capacity) const {
  double share = 0;
  for (int i = 0; i < kNumResources; ++i) {
    const auto kind = static_cast<ResourceKind>(i);
    const double cap = capacity[kind];
    if (cap > 0) share = std::max(share, (*this)[kind] / cap);
  }
  return share;
}

Resources Resources::clamped_to(const Resources& hi) const {
  Resources out;
  for (int i = 0; i < kNumResources; ++i) {
    const auto kind = static_cast<ResourceKind>(i);
    out[kind] = std::clamp((*this)[kind], 0.0, hi[kind]);
  }
  return out;
}

bool Resources::is_zero(double eps) const {
  return cpu < eps && memory < eps && disk < eps && net < eps;
}

std::string Resources::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "{cpu: %.2f, mem: %.0fMB, disk: %.1fMB/s, net: %.1fMB/s}", cpu,
                memory, disk, net);
  return buf;
}

}  // namespace hybridmr::cluster
