#include "cluster/migration.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "sim/log.h"
#include "telemetry/telemetry.h"

namespace hybridmr::cluster {

MigrationPlan MigrationModel::plan(sim::MegaBytes memory, sim::MBps dirty_rate,
                                   sim::MBps bw) const {
  // The dimensional algebra carries the model: size / rate is a round's
  // duration, rate * duration is the memory dirtied while it ran.
  MigrationPlan p;
  if (memory <= sim::MegaBytes{0} || bw <= sim::MBps{0}) return p;
  sim::MegaBytes to_send = memory;
  while (p.rounds < cal_.migration_max_rounds &&
         to_send > sim::MegaBytes{cal_.migration_stop_threshold_mb}) {
    const sim::Duration t = to_send / bw;
    p.precopy_seconds += t;
    p.transferred_mb += to_send;
    to_send = dirty_rate * t;
    ++p.rounds;
    // Diverging: dirtying faster than we can send. Give up pre-copying.
    if (dirty_rate >= bw) {
      p.converged = false;
      break;
    }
  }
  p.downtime_seconds =
      to_send / bw + sim::Duration{cal_.migration_downtime_overhead_s};
  return p;
}

sim::MBps MigrationModel::dirty_rate_mbps(const VirtualMachine& vm) const {
  double active_mb = 0;
  for (const auto& w : vm.workloads()) {
    if (w->paused()) continue;
    active_mb += std::min(w->demand().memory, w->allocated().memory);
  }
  return sim::MBps{cal_.idle_dirty_rate_mbps +
                   cal_.dirty_rate_per_active_mb * active_mb};
}

sim::MBps Migrator::jittered_dirty_rate(const VirtualMachine& vm) {
  // Page-dirtying is bursty; the paper's Fig. 10(c) shows wide per-VM
  // downtime variation. Lognormal jitter reproduces that spread.
  const sim::MBps base = model_.dirty_rate_mbps(vm);
  return base * std::exp(sim_.rng().normal(0.0, 0.5));
}

bool Migrator::migrate(VirtualMachine& vm, Machine& dest, DoneFn done) {
  Machine* src = vm.host_machine();
  if (vm.migrating() || src == nullptr || src == &dest) return false;

  const sim::MBps dirty = jittered_dirty_rate(vm);
  const MigrationPlan plan = model_.plan(vm.memory_mb(), dirty,
                                         sim::MBps{cal_.migration_bw_mbps});

  auto record = std::make_shared<MigrationRecord>();
  record->vm = vm.name();
  record->from = src->name();
  record->to = dest.name();
  record->started_at = sim_.now();
  record->downtime_seconds = plan.downtime_seconds;
  record->transferred_mb = plan.transferred_mb;
  record->rounds = plan.rounds;

  ++in_flight_;
  vm.set_migrating(true);
  if (tel_ != nullptr) {
    tel_->trace.instant(
        sim_.now(), telemetry::EventKind::kMigrationStart, vm.name(),
        record->from,
        {{"to", record->to},
         {"memory_mb", telemetry::json_num(vm.memory_mb().value())},
         {"rounds", telemetry::json_num(record->rounds)}});
  }

  // Pre-copy stream: a network workload on each side sized so that at the
  // nominal migration bandwidth it finishes in plan.precopy_seconds; under
  // network contention it stretches, like real pre-copy does.
  Resources stream_demand;
  stream_demand.net = cal_.migration_bw_mbps;
  auto out_stream = std::make_shared<Workload>(
      "migrate-out:" + vm.name(), stream_demand, plan.precopy_seconds);
  auto in_stream = std::make_shared<Workload>(
      "migrate-in:" + vm.name(), stream_demand, plan.precopy_seconds);

  VirtualMachine* vmp = &vm;
  Machine* destp = &dest;
  out_stream->on_complete = [this, vmp, destp, in_stream, record,
                             done = std::move(done)]() {
    // Pre-copy finished: drop the receive stream, take the downtime.
    if (in_stream->site() != nullptr) {
      in_stream->site()->remove(in_stream.get());
    }
    record->precopy_seconds = sim::Duration{sim_.now() - record->started_at};
    vmp->set_paused(true);
    // The pending event is the record's only owner until it lands in
    // history_; the strong capture is the point.
    // sim-lint: allow(capture-lifetime)
    sim_.after(record->downtime_seconds, [this, vmp, destp, record,
                                          done = std::move(done)]() {
      Machine* from = vmp->host_machine();
      if (from != nullptr) from->detach_vm(vmp);
      destp->attach_vm(vmp);
      vmp->set_paused(false);
      vmp->set_migrating(false);
      --in_flight_;
      history_.push_back(*record);
      sim::log_info(sim_.now(), "migrator",
                    record->vm + ": " + record->from + " -> " + record->to);
      if (tel_ != nullptr) {
        tel_->registry.counter("cluster.migrations").add();
        tel_->registry.counter("cluster.migration_mb", "MB")
            .add(record->transferred_mb.value());
        tel_->registry
            .histogram("cluster.migration_downtime_s", 0.0, 2.0, "s")
            .record(record->downtime_seconds.value());
        tel_->trace.complete(
            record->started_at, sim_.now() - record->started_at,
            telemetry::EventKind::kMigrationEnd, record->vm, record->from,
            {{"to", record->to},
             {"precopy_s", telemetry::json_num(record->precopy_seconds.value())},
             {"downtime_s",
              telemetry::json_num(record->downtime_seconds.value())},
             {"transferred_mb",
              telemetry::json_num(record->transferred_mb.value())}});
      }
      if (done) done(*record);
    });
  };

  src->add(std::move(out_stream));
  dest.add(std::move(in_stream));
  return true;
}

void Migrator::set_telemetry(telemetry::Hub* hub) { tel_ = hub; }

}  // namespace hybridmr::cluster
