#include "cluster/migration.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "sim/log.h"
#include "telemetry/telemetry.h"

namespace hybridmr::cluster {

MigrationPlan MigrationModel::plan(sim::MegaBytes memory, sim::MBps dirty_rate,
                                   sim::MBps bw) const {
  // The dimensional algebra carries the model: size / rate is a round's
  // duration, rate * duration is the memory dirtied while it ran.
  MigrationPlan p;
  if (memory <= sim::MegaBytes{0} || bw <= sim::MBps{0}) return p;
  sim::MegaBytes to_send = memory;
  while (p.rounds < cal_.migration_max_rounds &&
         to_send > cal_.migration_stop_threshold_mb) {
    const sim::Duration t = to_send / bw;
    p.precopy_seconds += t;
    p.transferred_mb += to_send;
    to_send = dirty_rate * t;
    ++p.rounds;
    // Diverging: dirtying faster than we can send. Give up pre-copying.
    if (dirty_rate >= bw) break;
  }
  // Converged means the final stop-and-copy moves at most the threshold.
  // Both early exits — divergence and the round cap — leave more than that
  // behind and must report non-convergence (the round-cap exit used to slip
  // through as converged).
  if (to_send > cal_.migration_stop_threshold_mb) {
    p.converged = false;
  }
  p.downtime_seconds =
      to_send / bw + sim::Duration{cal_.migration_downtime_overhead_s};
  return p;
}

sim::MBps MigrationModel::dirty_rate_mbps(const VirtualMachine& vm) const {
  sim::MegaBytes active_mb{0};
  for (const auto& w : vm.workloads()) {
    if (w->paused()) continue;
    active_mb += sim::MegaBytes{
        std::min(w->demand().memory, w->allocated().memory)};
  }
  return cal_.idle_dirty_rate_mbps +
         cal_.dirty_rate_per_active_mb * active_mb;
}

double unit_mean_lognormal(sim::Rng& rng, double sigma) {
  return std::exp(rng.normal(-0.5 * sigma * sigma, sigma));
}

sim::MBps Migrator::jittered_dirty_rate(const VirtualMachine& vm) {
  // Page-dirtying is bursty; the paper's Fig. 10(c) shows wide per-VM
  // downtime variation. Unit-mean lognormal jitter reproduces that spread
  // without running every migration ~13 % hotter than the calibrated model
  // (the mean of exp(N(0, 0.5))). The jitter draws from its own named
  // stream (snapshot/restore carries its position, and migrations no
  // longer perturb the main stream's sequence for everyone else).
  const sim::MBps base = model_.dirty_rate_mbps(vm);
  return base * unit_mean_lognormal(sim_.named_rng("cluster.dirty_jitter"),
                                    kDirtyRateJitterSigma);
}

bool Migrator::migrate(VirtualMachine& vm, Machine& dest, DoneFn done) {
  Machine* src = vm.host_machine();
  if (vm.migrating() || src == nullptr || src == &dest) return false;

  const sim::MBps dirty = jittered_dirty_rate(vm);
  const MigrationPlan plan = model_.plan(vm.memory_mb(), dirty,
                                         cal_.migration_bw_mbps);

  auto record = std::make_shared<MigrationRecord>();
  record->vm = vm.name();
  record->from = src->name();
  record->to = dest.name();
  record->started_at = sim_.now();
  record->downtime_seconds = plan.downtime_seconds;
  record->transferred_mb = plan.transferred_mb;
  record->rounds = plan.rounds;

  ++in_flight_;
  vm.set_migrating(true);
  if (tel_ != nullptr) {
    tel_->trace.instant(
        sim_.now(), telemetry::EventKind::kMigrationStart, vm.name(),
        record->from,
        {{"to", record->to},
         {"memory_mb", telemetry::json_num(vm.memory_mb().value())},
         {"rounds", telemetry::json_num(record->rounds)}});
  }

  // Pre-copy stream: a network workload on each side sized so that at the
  // nominal migration bandwidth it finishes in plan.precopy_seconds; under
  // network contention it stretches, like real pre-copy does.
  Resources stream_demand;
  stream_demand.net = cal_.migration_bw_mbps.value();
  auto out_stream = std::make_shared<Workload>(
      "migrate-out:" + vm.name(), stream_demand, plan.precopy_seconds);
  auto in_stream = std::make_shared<Workload>(
      "migrate-in:" + vm.name(), stream_demand, plan.precopy_seconds);

  auto flight = std::make_shared<InFlight>();
  flight->record = record;
  flight->vm = &vm;
  flight->src = src;
  flight->dest = &dest;
  flight->out_stream = out_stream;
  flight->in_stream = in_stream;
  flight->done = std::move(done);
  active_.push_back(flight);

  // The flight is alive in active_ until complete() or abort_involving()
  // erases it, so the strong capture cannot outlive the migrator's view.
  // sim-lint: allow(capture-lifetime)
  out_stream->on_complete = [this, flight]() {
    // Pre-copy finished: drop the receive stream, take the downtime.
    if (auto in = flight->in_stream.lock()) {
      if (in->site() != nullptr) in->site()->remove(in.get());
    }
    flight->record->precopy_seconds =
        sim::Duration{sim_.now() - flight->record->started_at};
    flight->vm->set_paused(true);
    flight->in_downtime = true;
    flight->downtime_event = sim_.after(
        flight->record->downtime_seconds,
        // sim-lint: allow(capture-lifetime)
        [this, flight]() { complete(flight); });
  };

  src->add(std::move(out_stream));
  dest.add(std::move(in_stream));
  return true;
}

void Migrator::complete(const std::shared_ptr<InFlight>& flight) {
  const auto& record = flight->record;
  VirtualMachine* vmp = flight->vm;
  Machine* from = vmp->host_machine();
  if (from != nullptr) from->detach_vm(vmp);
  flight->dest->attach_vm(vmp);
  vmp->set_paused(false);
  vmp->set_migrating(false);
  --in_flight_;
  history_.push_back(*record);
  sim::log_info(sim_.now(), "migrator",
                record->vm + ": " + record->from + " -> " + record->to);
  if (tel_ != nullptr) {
    tel_->registry.counter("cluster.migrations").add();
    tel_->registry.counter("cluster.migration_mb", "MB")
        .add(record->transferred_mb.value());
    tel_->registry.histogram("cluster.migration_downtime_s", 0.0, 2.0, "s")
        .record(record->downtime_seconds.value());
    tel_->trace.complete(
        record->started_at, sim_.now() - record->started_at,
        telemetry::EventKind::kMigrationEnd, record->vm, record->from,
        {{"to", record->to},
         {"precopy_s", telemetry::json_num(record->precopy_seconds.value())},
         {"downtime_s", telemetry::json_num(record->downtime_seconds.value())},
         {"transferred_mb",
          telemetry::json_num(record->transferred_mb.value())}});
  }
  DoneFn done = std::move(flight->done);
  drop_flight(flight);
  if (done) done(*record);
}

void Migrator::drop_flight(const std::shared_ptr<InFlight>& flight) {
  active_.erase(std::remove(active_.begin(), active_.end(), flight),
                active_.end());
}

int Migrator::abort_involving(Machine& machine) {
  // Snapshot: aborting mutates active_.
  std::vector<std::shared_ptr<InFlight>> doomed;
  for (const auto& f : active_) {
    if (f->src == &machine || f->dest == &machine) doomed.push_back(f);
  }
  for (const auto& flight : doomed) {
    // Tear the pre-copy streams down without firing their completions.
    if (auto out = flight->out_stream.lock()) {
      out->on_complete = nullptr;
      if (out->site() != nullptr) out->site()->remove(out.get());
    }
    if (auto in = flight->in_stream.lock()) {
      if (in->site() != nullptr) in->site()->remove(in.get());
    }
    if (flight->in_downtime) {
      sim_.cancel(flight->downtime_event);
    } else {
      flight->record->precopy_seconds =
          sim::Duration{sim_.now() - flight->record->started_at};
    }
    // The VM never left its source: roll back to a plain running state.
    flight->vm->set_paused(false);
    flight->vm->set_migrating(false);
    --in_flight_;
    flight->record->aborted = true;
    history_.push_back(*flight->record);
    sim::log_info(sim_.now(), "migrator",
                  flight->record->vm + ": aborted " + flight->record->from +
                      " -> " + flight->record->to);
    if (tel_ != nullptr) {
      tel_->registry.counter("cluster.migrations_aborted").add();
      tel_->trace.instant(sim_.now(), telemetry::EventKind::kMigrationAbort,
                          flight->record->vm, flight->record->from,
                          {{"to", flight->record->to}});
    }
    drop_flight(flight);
  }
  return static_cast<int>(doomed.size());
}

void Migrator::set_telemetry(telemetry::Hub* hub) { tel_ = hub; }

}  // namespace hybridmr::cluster
