// Multi-resource vectors.
//
// CPU is measured in cores, memory in MB (an occupancy, not a rate), disk
// and network in MB/s. The same struct is used for machine capacities,
// workload demands, throttle caps and granted allocations.
#pragma once

#include <algorithm>
#include <limits>
#include <string>

namespace hybridmr::cluster {

enum class ResourceKind { kCpu = 0, kMemory = 1, kDisk = 2, kNet = 3 };

inline constexpr int kNumResources = 4;

/// Name for diagnostics ("cpu", "memory", "disk", "net").
const char* to_string(ResourceKind kind);

struct Resources {
  double cpu = 0;     // cores
  double memory = 0;  // MB
  double disk = 0;    // MB/s
  double net = 0;     // MB/s

  /// A vector with every component at +infinity (used for "no cap").
  static Resources unbounded() {
    const double inf = std::numeric_limits<double>::infinity();
    return {inf, inf, inf, inf};
  }

  double& operator[](ResourceKind kind);
  double operator[](ResourceKind kind) const;

  Resources& operator+=(const Resources& o);
  Resources& operator-=(const Resources& o);
  friend Resources operator+(Resources a, const Resources& b) { return a += b; }
  friend Resources operator-(Resources a, const Resources& b) { return a -= b; }
  Resources operator*(double k) const;

  /// Component-wise minimum.
  [[nodiscard]] Resources min(const Resources& o) const;

  /// True when every component of *this is <= the matching one of `o`
  /// (with a small tolerance).
  [[nodiscard]] bool fits_in(const Resources& o, double eps = 1e-9) const;

  /// Largest component-wise ratio this/capacity (0 where capacity is 0).
  /// This is the "dominant share" used by placement heuristics.
  [[nodiscard]] double dominant_share(const Resources& capacity) const;

  /// Clamps all components into [0, hi component-wise].
  [[nodiscard]] Resources clamped_to(const Resources& hi) const;

  [[nodiscard]] bool is_zero(double eps = 1e-12) const;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace hybridmr::cluster
