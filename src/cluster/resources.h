// Multi-resource vectors.
//
// CPU is measured in cores, memory in MB (an occupancy, not a rate), disk
// and network in MB/s. The same struct is used for machine capacities,
// workload demands, throttle caps and granted allocations.
#pragma once

#include <algorithm>
#include <limits>
#include <string>

namespace hybridmr::cluster {

enum class ResourceKind { kCpu = 0, kMemory = 1, kDisk = 2, kNet = 3 };

inline constexpr int kNumResources = 4;

/// Name for diagnostics ("cpu", "memory", "disk", "net").
const char* to_string(ResourceKind kind);

struct Resources {
  double cpu = 0;     // cores
  double memory = 0;  // MB
  double disk = 0;    // MB/s
  double net = 0;     // MB/s

  /// A vector with every component at +infinity (used for "no cap").
  static Resources unbounded() {
    const double inf = std::numeric_limits<double>::infinity();
    return {inf, inf, inf, inf};
  }

  // The arithmetic below is defined inline: these run inside the per-kind
  // water-fill loops of Machine::recompute/VirtualMachine::distribute
  // (hundreds of millions of calls per scale/96 run), where a cross-TU
  // call is measurable.
  double& operator[](ResourceKind kind) {
    switch (kind) {
      case ResourceKind::kCpu:
        return cpu;
      case ResourceKind::kMemory:
        return memory;
      case ResourceKind::kDisk:
        return disk;
      case ResourceKind::kNet:
        return net;
    }
    return cpu;  // unreachable
  }
  double operator[](ResourceKind kind) const {
    return const_cast<Resources&>(*this)[kind];
  }

  Resources& operator+=(const Resources& o) {
    cpu += o.cpu;
    memory += o.memory;
    disk += o.disk;
    net += o.net;
    return *this;
  }
  Resources& operator-=(const Resources& o) {
    cpu -= o.cpu;
    memory -= o.memory;
    disk -= o.disk;
    net -= o.net;
    return *this;
  }
  friend Resources operator+(Resources a, const Resources& b) { return a += b; }
  friend Resources operator-(Resources a, const Resources& b) { return a -= b; }
  Resources operator*(double k) const {
    return {cpu * k, memory * k, disk * k, net * k};
  }

  /// Component-wise minimum.
  [[nodiscard]] Resources min(const Resources& o) const {
    return {std::min(cpu, o.cpu), std::min(memory, o.memory),
            std::min(disk, o.disk), std::min(net, o.net)};
  }

  /// True when every component of *this is <= the matching one of `o`
  /// (with a small tolerance).
  [[nodiscard]] bool fits_in(const Resources& o, double eps = 1e-9) const {
    return cpu <= o.cpu + eps && memory <= o.memory + eps &&
           disk <= o.disk + eps && net <= o.net + eps;
  }

  /// Largest component-wise ratio this/capacity (0 where capacity is 0).
  /// This is the "dominant share" used by placement heuristics.
  [[nodiscard]] double dominant_share(const Resources& capacity) const {
    double share = 0;
    for (int i = 0; i < kNumResources; ++i) {
      const auto kind = static_cast<ResourceKind>(i);
      const double cap = capacity[kind];
      if (cap > 0) share = std::max(share, (*this)[kind] / cap);
    }
    return share;
  }

  /// Clamps all components into [0, hi component-wise].
  [[nodiscard]] Resources clamped_to(const Resources& hi) const {
    Resources out;
    for (int i = 0; i < kNumResources; ++i) {
      const auto kind = static_cast<ResourceKind>(i);
      out[kind] = std::clamp((*this)[kind], 0.0, hi[kind]);
    }
    return out;
  }

  [[nodiscard]] bool is_zero(double eps = 1e-12) const {
    return cpu < eps && memory < eps && disk < eps && net < eps;
  }

  [[nodiscard]] std::string to_string() const;
};

}  // namespace hybridmr::cluster
