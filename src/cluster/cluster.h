// HybridCluster: the container for a mixed native/virtual testbed.
//
// Owns all machines and VMs, provides builder helpers for the paper's
// topologies (24 PMs, k VMs per PM, Dom-0 nodes, ...) and cluster-wide
// metric aggregation (energy, utilization, powered server count).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/calibration.h"
#include "cluster/machine.h"
#include "cluster/migration.h"
#include "cluster/realloc.h"
#include "sim/simulation.h"

namespace hybridmr::telemetry {
struct Hub;
}  // namespace hybridmr::telemetry

namespace hybridmr::cluster {

class HybridCluster {
 public:
  explicit HybridCluster(sim::Simulation& sim,
                         const Calibration& cal = Calibration::standard())
      : sim_(sim), cal_(cal), realloc_(sim), migrator_(sim, cal) {}

  HybridCluster(const HybridCluster&) = delete;
  HybridCluster& operator=(const HybridCluster&) = delete;

  // --- construction ---

  /// Adds one physical machine with the calibrated capacity.
  Machine* add_machine(const std::string& name = "");

  /// Adds `n` physical machines named <prefix>0..<prefix>n-1.
  std::vector<Machine*> add_machines(int n, const std::string& prefix = "pm");

  /// Adds a VM on `host` with the calibrated VM shape (or overrides; a
  /// negative override falls back to the calibrated value).
  VirtualMachine* add_vm(Machine& host, const std::string& name = "",
                         sim::CoreShare vcpus = sim::CoreShare{-1},
                         sim::MegaBytes memory_mb = sim::MegaBytes{-1});

  /// Adds `count` VMs to `host`.
  std::vector<VirtualMachine*> virtualize(Machine& host, int count);

  // --- lookup ---
  [[nodiscard]] const std::vector<std::unique_ptr<Machine>>& machines() const {
    return machines_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<VirtualMachine>>& vms()
      const {
    return vms_;
  }
  [[nodiscard]] Machine* machine(const std::string& name) const;
  [[nodiscard]] VirtualMachine* vm(const std::string& name) const;
  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] const Calibration& calibration() const { return cal_; }
  [[nodiscard]] Migrator& migrator() { return migrator_; }

  /// The cluster's deferred-reallocation coordinator (see realloc.h).
  [[nodiscard]] ReallocCoordinator& reallocator() { return realloc_; }

  /// Eager mode recomputes on every mutation instead of coalescing; kept
  /// for the determinism-equivalence test (both modes must produce
  /// byte-identical reports for the same seed).
  void set_eager_reallocation(bool eager) { realloc_.set_eager(eager); }

  /// Eager mode cancels and re-pushes completion events on every finish-
  /// time change instead of defer()ing them in place; applies to existing
  /// machines and ones added later. Kept for the reschedule-equivalence
  /// test.
  void set_eager_reschedule(bool eager) {
    eager_reschedule_ = eager;
    for (const auto& m : machines_) m->set_eager_reschedule(eager);
  }

  // --- cluster-wide metrics ---

  /// Total energy consumed by powered machines over [t0, t1].
  [[nodiscard]] sim::Joules energy_joules(sim::SimTime t0,
                                          sim::SimTime t1) const;

  /// Mean utilization of one resource across powered machines in [t0, t1].
  [[nodiscard]] double mean_utilization(ResourceKind kind, double t0,
                                        double t1) const;

  [[nodiscard]] int powered_machines() const;

  /// Powers off every machine hosting neither VMs nor workloads.
  int power_off_idle();

  /// Attaches the whole cluster (machines, migrator, and machines added
  /// later) to a telemetry hub. Null detaches.
  void set_telemetry(telemetry::Hub* hub);
  [[nodiscard]] telemetry::Hub* telemetry() const { return tel_; }

 private:
  sim::Simulation& sim_;
  const Calibration& cal_;
  // Declared before the machines: they deregister from it on destruction.
  ReallocCoordinator realloc_;
  Migrator migrator_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::vector<std::unique_ptr<VirtualMachine>> vms_;
  telemetry::Hub* tel_ = nullptr;
  bool eager_reschedule_ = false;
};

}  // namespace hybridmr::cluster
