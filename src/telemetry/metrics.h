// Sim-time metrics registry: counters, gauges, histograms and windowed time
// series, cheap enough to stay enabled in benches.
//
// Design rules:
//   - record paths are O(1) and allocation-free (histograms use fixed bucket
//     arrays, time series only allocate when a new window opens);
//   - everything compiles out when the HYBRIDMR_TELEMETRY CMake option is
//     OFF (the registry still exists so consumers link, but record calls
//     become empty inline functions);
//   - iteration order is insertion order, so exports are deterministic.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/thread_annotations.h"

namespace hybridmr::telemetry {

#if defined(HYBRIDMR_TELEMETRY_DISABLED)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// True when telemetry recording is compiled into this build.
constexpr bool compiled_in() { return kCompiledIn; }

/// Monotonically increasing total (events seen, MB shuffled, ...).
class Counter {
 public:
  void add(double delta = 1.0) {
    if constexpr (kCompiledIn) {
      value_ += delta;
      ++events_;
    } else {
      (void)delta;
    }
  }

  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] std::uint64_t events() const { return events_; }

 private:
  double value_ = 0;
  std::uint64_t events_ = 0;
};

/// Last-write-wins instantaneous value (running attempts, powered servers).
class Gauge {
 public:
  void set(double value) {
    if constexpr (kCompiledIn) value_ = value;
    else (void)value;
  }
  void add(double delta) {
    if constexpr (kCompiledIn) value_ += delta;
    else (void)delta;
  }

  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram over [lo, hi] with linear bucket edges.
///
/// Values outside the range land in the first/last bucket (min/max still
/// track the true extremes). Percentiles interpolate linearly inside the
/// bucket, so accuracy is bounded by the bucket width — size the range to
/// the quantity (e.g. [0, 10] seconds for SLA latencies).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  Histogram(double lo, double hi) : lo_(lo), hi_(hi > lo ? hi : lo + 1) {}

  void record(double v) {
    if constexpr (kCompiledIn) {
      ++counts_[bucket_of(v)];
      ++count_;
      sum_ += v;
      if (count_ == 1 || v < min_) min_ = v;
      if (count_ == 1 || v > max_) max_ = v;
    } else {
      (void)v;
    }
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ ? sum_ / count_ : 0; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0; }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }

  /// Approximate percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const {
    return counts_;
  }

 private:
  [[nodiscard]] std::size_t bucket_of(double v) const {
    if (v <= lo_) return 0;
    if (v >= hi_) return kBuckets - 1;
    const double f = (v - lo_) / (hi_ - lo_);
    const auto i = static_cast<std::size_t>(f * kBuckets);
    return i < kBuckets ? i : kBuckets - 1;
  }

  double lo_;
  double hi_;
  // hmr-state(ephemeral: histogram buckets; a fork re-accumulates its own)
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Sim-time-windowed series: samples are aggregated into fixed windows of
/// `window_s` simulated seconds (count/sum/min/max per window). Windows are
/// aligned to multiples of window_s, so two same-seed runs produce identical
/// window boundaries.
class TimeSeriesMetric {
 public:
  struct Window {
    double start = 0;  // window covers [start, start + window_s)
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;

    [[nodiscard]] double mean() const { return count ? sum / count : 0; }
  };

  explicit TimeSeriesMetric(double window_s)
      : window_s_(window_s > 0 ? window_s : 1.0) {}

  void sample(double now, double value) {
    if constexpr (kCompiledIn) {
      const auto idx = static_cast<std::int64_t>(now / window_s_);
      if (!live_open_ || idx != live_idx_) {
        if (live_open_) completed_.push_back(live_);
        live_ = Window{static_cast<double>(idx) * window_s_, 0, 0, 0, 0};
        live_idx_ = idx;
        live_open_ = true;
      }
      ++live_.count;
      live_.sum += value;
      if (live_.count == 1 || value < live_.min) live_.min = value;
      if (live_.count == 1 || value > live_.max) live_.max = value;
      ++total_count_;
      total_sum_ += value;
    } else {
      (void)now;
      (void)value;
    }
  }

  [[nodiscard]] double window_seconds() const { return window_s_; }
  [[nodiscard]] std::uint64_t count() const { return total_count_; }
  [[nodiscard]] double mean() const {
    return total_count_ ? total_sum_ / total_count_ : 0;
  }
  /// Mean of the most recent window with samples (0 when empty).
  [[nodiscard]] double last() const {
    if (live_open_ && live_.count > 0) return live_.sum / live_.count;
    return completed_.empty() ? 0 : completed_.back().mean();
  }

  /// All windows, oldest first, including the still-open one.
  [[nodiscard]] std::vector<Window> windows() const {
    std::vector<Window> out = completed_;
    if (live_open_) out.push_back(live_);
    return out;
  }

 private:
  double window_s_;
  std::vector<Window> completed_;
  Window live_{};
  std::int64_t live_idx_ = 0;
  bool live_open_ = false;
  std::uint64_t total_count_ = 0;
  double total_sum_ = 0;
};

/// Owns all metrics of one run, keyed by name. Components fetch their
/// metric once (creation is not the hot path) and record through the
/// returned reference; references stay valid for the registry's lifetime.
class Registry {
 public:
  enum class Type { kCounter, kGauge, kHistogram, kTimeSeries };

  struct Entry {
    Type type;
    std::string name;
    std::string unit;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<TimeSeriesMetric> series;
  };

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Fetch-or-create; an existing metric of the same name and type is
  /// returned as-is (the unit of the first registration wins).
  Counter& counter(const std::string& name, const std::string& unit = "");
  Gauge& gauge(const std::string& name, const std::string& unit = "");
  Histogram& histogram(const std::string& name, double lo, double hi,
                       const std::string& unit = "");
  TimeSeriesMetric& timeseries(const std::string& name, double window_s,
                               const std::string& unit = "");

  [[nodiscard]] const std::vector<std::unique_ptr<Entry>>& entries() const {
    gate_.assert_held();
    return entries_;
  }

  /// Looks up an existing metric entry; nullptr if absent.
  [[nodiscard]] const Entry* find(const std::string& name) const;

  /// Deterministic JSON dump of every metric (insertion order).
  void to_json(std::ostream& os) const;

 private:
  Entry& fetch(const std::string& name, Type type, const std::string& unit)
      HMR_REQUIRES(gate_);

  // Sim-thread capability token: every component of a run records into
  // this one registry, so it is shared state the moment handlers shard.
  sim::SimThreadGate gate_;

  std::vector<std::unique_ptr<Entry>> entries_ HMR_GUARDED_BY(gate_);
  std::map<std::string, std::size_t> index_ HMR_GUARDED_BY(gate_);
};

const char* to_string(Registry::Type type);

}  // namespace hybridmr::telemetry
