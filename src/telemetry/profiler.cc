#include "telemetry/profiler.h"

#include <algorithm>
#include <bit>
#include <chrono>  // sim-lint: allow(wall-clock) — profiler module only
#include <iomanip>
#include <iostream>
#include <ostream>
#include <sstream>

#include "sim/simulation.h"
#include "telemetry/json.h"
#include "telemetry/trace.h"

namespace hybridmr::telemetry {

namespace {

// The one wall-clock read in the codebase. Every caller is in this file;
// the determinism analyzer sanctions exactly this module (see
// scripts/analyze/determinism.py), because the profiler's *wall* outputs
// are segregated from every deterministic artifact.
std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now()  // sim-lint: allow(wall-clock)
              .time_since_epoch())
          .count());
}

}  // namespace

void LogHistogram::record(std::uint64_t v) {
  if constexpr (kCompiledIn) {
    // bucket 0 <- 0, bucket b <- [2^(b-1), 2^b). bit_width(uint64 max) is
    // 64, which lands in the last bucket.
    const auto b = static_cast<std::size_t>(std::bit_width(v));
    ++counts_[b < kBuckets ? b : kBuckets - 1];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (count_ == 1 || v > max_) max_ = v;
  } else {
    (void)v;
  }
}

double LogHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0) return static_cast<double>(min_);
  if (p >= 100) return static_cast<double>(max_);
  const double target = p / 100.0 * static_cast<double>(count_);
  double cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const double c = static_cast<double>(counts_[b]);
    if (cum + c >= target && c > 0) {
      // Bucket 0 holds only zeros; bucket b >= 1 spans [2^(b-1), 2^b).
      const double lo_edge =
          b == 0 ? 0 : static_cast<double>(std::uint64_t{1} << (b - 1));
      const double width = b == 0 ? 0 : lo_edge;
      const double frac = (target - cum) / c;
      double v = lo_edge + frac * width;
      // The extremes are exact; never report beyond them.
      if (v < static_cast<double>(min_)) v = static_cast<double>(min_);
      if (v > static_cast<double>(max_)) v = static_cast<double>(max_);
      return v;
    }
    cum += c;
  }
  return static_cast<double>(max_);
}

const char* to_string(WorkCounter c) {
  switch (c) {
    case WorkCounter::kRecomputeDirect:
      return "recompute_direct";
    case WorkCounter::kRecomputeDrain:
      return "recompute_drain";
    case WorkCounter::kRecomputeReadBarrier:
      return "recompute_read_barrier";
    case WorkCounter::kRecomputeEager:
      return "recompute_eager";
    case WorkCounter::kReschedulePushed:
      return "reschedule_pushed";
    case WorkCounter::kRescheduleSkipped:
      return "reschedule_skipped";
    case WorkCounter::kRescheduleDeferred:
      return "reschedule_deferred";
    case WorkCounter::kDrainPasses:
      return "drain_passes";
    case WorkCounter::kDispatchPasses:
      return "dispatch_passes";
    case WorkCounter::kDispatchTrackerScans:
      return "dispatch_tracker_scans";
    case WorkCounter::kDispatchLaunches:
      return "dispatch_launches";
    case WorkCounter::kSpeculationScans:
      return "speculation_scans";
    case WorkCounter::kShuffleTransfers:
      return "shuffle_transfers";
    case WorkCounter::kHdfsReads:
      return "hdfs_reads";
    case WorkCounter::kHdfsWrites:
      return "hdfs_writes";
    case WorkCounter::kHdfsFlows:
      return "hdfs_flows";
    case WorkCounter::kCount:
      break;
  }
  return "?";
}

const char* to_string(WorkDist d) {
  switch (d) {
    case WorkDist::kQueueDepth:
      return "queue_depth";
    case WorkDist::kEventFanout:
      return "event_fanout";
    case WorkDist::kDirtySetSize:
      return "dirty_set_size";
    case WorkDist::kCount:
      break;
  }
  return "?";
}

Profiler::Profiler() {
  nodes_.push_back(Node{});  // synthetic root
  event_scope_ = intern("sim.event");
}

void Profiler::set_watchdog(const WatchdogOptions& options,
                            std::ostream* out) {
  if constexpr (!kCompiledIn) {
    (void)options;
    (void)out;
    return;
  }
  watchdog_ = options;
  if (watchdog_.check_every_events == 0) watchdog_.check_every_events = 2048;
  watchdog_out_ = out != nullptr ? out : &std::cerr;
  watchdog_armed_ = watchdog_.heartbeat_every_s > 0 ||
                    watchdog_.wall_budget_s > 0 ||
                    watchdog_.max_same_time_events > 0;
  if (watchdog_armed_) {
    watchdog_start_ns_ = wall_now_ns();
    last_heartbeat_ns_ = watchdog_start_ns_;
    events_at_heartbeat_ = events_seen_;
  }
}

ScopeId Profiler::intern(const std::string& name) {
  auto it = scope_index_.find(name);
  if (it != scope_index_.end()) return ScopeId{it->second};
  const std::size_t index = scope_names_.size();
  scope_names_.push_back(name);
  wall_.emplace_back();
  scope_index_[name] = index;
  return ScopeId{index};
}

std::size_t Profiler::child_node(std::size_t parent, std::size_t scope) {
  for (std::size_t c : nodes_[parent].children) {
    if (nodes_[c].scope == scope) return c;
  }
  const std::size_t index = nodes_.size();
  Node node;
  node.parent = parent;
  node.scope = scope;
  nodes_.push_back(node);
  nodes_[parent].children.push_back(index);
  return index;
}

void Profiler::enter(ScopeId s) {
  if (!enabled() || !s.valid()) return;
  const std::size_t parent = stack_.empty() ? 0 : stack_.back().node;
  const std::size_t node = child_node(parent, s.index);
  stack_.push_back(Frame{node, wall_now_ns()});
}

void Profiler::exit(ScopeId s) {
  if (!enabled() || stack_.empty()) return;
  const Frame frame = stack_.back();
  stack_.pop_back();
  const std::uint64_t t1 = wall_now_ns();
  const std::uint64_t elapsed = t1 > frame.t0_ns ? t1 - frame.t0_ns : 0;
  Node& node = nodes_[frame.node];
  ++node.count;
  node.total_ns += elapsed;
  WallStats& stats = wall_[s.valid() ? s.index : node.scope];
  ++stats.count;
  stats.total_ns += elapsed;
  if (elapsed > stats.max_ns) stats.max_ns = elapsed;
  stats.hist.record(elapsed);
}

void Profiler::record_dist_at(WorkDist d, std::uint64_t value, double now) {
  if (!enabled()) return;
  record_dist(d, value);
  if (trace_ != nullptr) {
    trace_->instant(now, EventKind::kProfileMark, to_string(d), "profiler",
                    {{"value", json_num(static_cast<double>(value))}});
  }
}

void Profiler::on_event_begin(sim::SimTime now, std::size_t queue_depth) {
  (void)now;
  if (!enabled()) return;
  record_dist(WorkDist::kQueueDepth, queue_depth);
  enter(event_scope_);
}

void Profiler::on_event_end(sim::SimTime now, std::uint64_t fanout,
                            std::size_t queue_depth) {
  (void)queue_depth;
  if (!enabled()) return;
  record_dist(WorkDist::kEventFanout, fanout);
  exit(event_scope_);
  ++events_seen_;
  if (!watchdog_armed_ || stalled_) return;
  if (watchdog_.max_same_time_events > 0) {
    if (sim::same_time(now, last_event_time_)) {
      if (++same_time_run_ >= watchdog_.max_same_time_events) {
        std::ostringstream reason;
        reason << "same-time livelock: " << same_time_run_
               << " consecutive events at sim t=" << now;
        stall(reason.str());
        return;
      }
    } else {
      same_time_run_ = 0;
    }
  }
  last_event_time_ = now;
  if (events_seen_ % watchdog_.check_every_events == 0) check_watchdog(now);
}

void Profiler::check_watchdog(sim::SimTime now) {
  const std::uint64_t t = wall_now_ns();
  const double wall_s =
      static_cast<double>(t - watchdog_start_ns_) / 1e9;
  if (watchdog_.wall_budget_s > 0 && wall_s > watchdog_.wall_budget_s) {
    std::ostringstream reason;
    reason << "wall budget exceeded: " << std::fixed << std::setprecision(1)
           << wall_s << "s > " << watchdog_.wall_budget_s << "s at sim t="
           << std::setprecision(3) << now << " (" << events_seen_
           << " events)";
    stall(reason.str());
    return;
  }
  if (watchdog_.heartbeat_every_s <= 0) return;
  const double since_hb_s =
      static_cast<double>(t - last_heartbeat_ns_) / 1e9;
  if (since_hb_s < watchdog_.heartbeat_every_s) return;
  const double evps =
      since_hb_s > 0
          ? static_cast<double>(events_seen_ - events_at_heartbeat_) /
                since_hb_s
          : 0;
  *watchdog_out_ << "[hb] wall=" << std::fixed << std::setprecision(1)
                 << wall_s << "s sim=" << std::setprecision(3) << now
                 << "s events=" << events_seen_ << " ev/s=" << std::fixed
                 << std::setprecision(0) << evps
                 << " queue=" << (sim_ != nullptr ? sim_->pending_events() : 0)
                 << "\n";
  watchdog_out_->flush();
  last_heartbeat_ns_ = t;
  events_at_heartbeat_ = events_seen_;
}

void Profiler::stall(const std::string& reason) {
  stalled_ = true;
  stall_reason_ = reason;
  if (watchdog_out_ != nullptr) {
    *watchdog_out_ << "[watchdog] STALL: " << reason << "\n";
    watchdog_out_->flush();
  }
  if (sim_ != nullptr) sim_->stop();
}

namespace {

void dist_to_json(std::ostream& os, const LogHistogram& h) {
  os << "{\"count\":" << json_num(static_cast<double>(h.count()))
     << ",\"min\":" << json_num(static_cast<double>(h.min()))
     << ",\"max\":" << json_num(static_cast<double>(h.max()))
     << ",\"mean\":" << json_num(h.mean())
     << ",\"p50\":" << json_num(h.percentile(50))
     << ",\"p95\":" << json_num(h.percentile(95))
     << ",\"p99\":" << json_num(h.percentile(99)) << "}";
}

}  // namespace

void Profiler::work_to_json(std::ostream& os) const {
  os << "{\"counters\":{";
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(WorkCounter::kCount); ++i) {
    if (i > 0) os << ",";
    os << json_str(to_string(static_cast<WorkCounter>(i))) << ":"
       << json_num(static_cast<double>(work_[i]));
  }
  os << "},\"dists\":{";
  for (std::size_t i = 0; i < static_cast<std::size_t>(WorkDist::kCount);
       ++i) {
    if (i > 0) os << ",";
    os << json_str(to_string(static_cast<WorkDist>(i))) << ":";
    dist_to_json(os, dists_[i]);
  }
  os << "},\"scopes\":[";
  for (std::size_t i = 0; i < scope_names_.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"name\":" << json_str(scope_names_[i])
       << ",\"count\":" << json_num(static_cast<double>(wall_[i].count))
       << "}";
  }
  os << "]}";
}

void Profiler::to_json(std::ostream& os, bool include_wall) const {
  os << "{\"enabled\":" << (enabled() ? "true" : "false") << ",\"work\":";
  work_to_json(os);
  if (include_wall) {
    os << ",\"wall\":{\"scopes\":[";
    for (std::size_t i = 0; i < scope_names_.size(); ++i) {
      if (i > 0) os << ",";
      const WallStats& s = wall_[i];
      os << "{\"name\":" << json_str(scope_names_[i])
         << ",\"count\":" << json_num(static_cast<double>(s.count))
         << ",\"total_ms\":"
         << json_num(static_cast<double>(s.total_ns) / 1e6)
         << ",\"mean_us\":"
         << json_num(s.count ? static_cast<double>(s.total_ns) / 1e3 /
                                   static_cast<double>(s.count)
                             : 0)
         << ",\"max_us\":" << json_num(static_cast<double>(s.max_ns) / 1e3)
         << ",\"p50_us\":" << json_num(s.hist.percentile(50) / 1e3)
         << ",\"p95_us\":" << json_num(s.hist.percentile(95) / 1e3)
         << ",\"p99_us\":" << json_num(s.hist.percentile(99) / 1e3) << "}";
    }
    os << "],\"nodes\":[";
    bool first = true;
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
      const Node& node = nodes_[i];
      // Path from the root, ";"-joined — collapsed-stack friendly.
      std::vector<std::size_t> chain;
      for (std::size_t j = i; j != 0; j = nodes_[j].parent) {
        chain.push_back(nodes_[j].scope);
      }
      std::string path;
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        if (!path.empty()) path += ";";
        path += scope_names_[*it];
      }
      if (!first) os << ",";
      first = false;
      os << "{\"path\":" << json_str(path)
         << ",\"count\":" << json_num(static_cast<double>(node.count))
         << ",\"total_ns\":" << json_num(static_cast<double>(node.total_ns))
         << "}";
    }
    os << "]}";
  }
  os << "}";
}

void Profiler::print_hotspots(std::ostream& os, std::size_t top_n) const {
  std::vector<std::size_t> order(scope_names_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     if (wall_[a].total_ns != wall_[b].total_ns) {
                       return wall_[a].total_ns > wall_[b].total_ns;
                     }
                     return wall_[a].count > wall_[b].count;
                   });
  os << "  " << std::left << std::setw(28) << "scope" << std::right
     << std::setw(12) << "calls" << std::setw(12) << "total_ms"
     << std::setw(10) << "mean_us" << std::setw(10) << "p95_us"
     << std::setw(10) << "max_us" << "\n";
  std::size_t shown = 0;
  for (std::size_t i : order) {
    if (shown >= top_n) break;
    const WallStats& s = wall_[i];
    if (s.count == 0) continue;
    ++shown;
    os << "  " << std::left << std::setw(28) << scope_names_[i] << std::right
       << std::setw(12) << s.count << std::setw(12) << std::fixed
       << std::setprecision(2) << static_cast<double>(s.total_ns) / 1e6
       << std::setw(10) << std::setprecision(1)
       << (s.count ? static_cast<double>(s.total_ns) / 1e3 /
                         static_cast<double>(s.count)
                   : 0)
       << std::setw(10) << s.hist.percentile(95) / 1e3 << std::setw(10)
       << static_cast<double>(s.max_ns) / 1e3 << "\n";
  }
  if (shown == 0) os << "  (no scope data collected)\n";
}

}  // namespace hybridmr::telemetry
