#include "telemetry/report.h"

#include <sstream>

#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"

namespace hybridmr::telemetry {

namespace {

void write_series(std::ostream& os,
                  const std::vector<RunReport::SeriesPoint>& series) {
  os << "[";
  bool first = true;
  for (const auto& p : series) {
    if (!first) os << ",";
    first = false;
    os << "[" << json_num(p.t) << "," << json_num(p.v) << "]";
  }
  os << "]";
}

/// CSV cell: quotes only when needed (names here never contain commas, but
/// be safe).
std::string csv(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

std::string csv(double v) { return json_num(v); }

}  // namespace

void RunReport::to_json(std::ostream& os) const {
  os << "{\n  \"sim_end_s\":" << json_num(sim_end_s)
     << ",\n  \"events_processed\":" << json_num(double(events_processed))
     << ",\n  \"clamped_past_events\":"
     << json_num(double(clamped_past_events))
     << ",\n  \"events_scheduled\":" << json_num(double(events_scheduled))
     << ",\n  \"events_cancelled\":" << json_num(double(events_cancelled))
     << ",\n  \"events_deferred\":" << json_num(double(events_deferred))
     << ",\n  \"max_queue_depth\":" << json_num(double(max_queue_depth))
     << ",\n  \"max_event_fanout\":" << json_num(double(max_event_fanout))
     << ",\n  \"flush_scheduled_events\":"
     << json_num(double(flush_scheduled_events)) << ",\n  \"jobs\":[";
  bool first = true;
  for (const auto& j : jobs) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"id\":" << j.id << ",\"name\":" << json_str(j.name)
       << ",\"state\":" << json_str(j.state) << ",\"maps\":" << j.maps
       << ",\"reduces\":" << j.reduces
       << ",\"submit_s\":" << json_num(j.submit_s)
       << ",\"finish_s\":" << json_num(j.finish_s)
       << ",\"jct_s\":" << json_num(j.jct_s)
       << ",\"map_phase_s\":" << json_num(j.map_phase_s)
       << ",\"reduce_phase_s\":" << json_num(j.reduce_phase_s)
       << ",\"shuffle_mb\":" << json_num(j.shuffle_mb.value()) << "}";
  }
  os << "\n  ],\n  \"machines\":[";
  first = true;
  for (const auto& m : machines) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"name\":" << json_str(m.name) << ",\"vms\":" << m.vms
       << ",\"powered\":" << (m.powered ? "true" : "false")
       << ",\"mean_cpu_util\":" << json_num(m.mean_cpu)
       << ",\"mean_memory_util\":" << json_num(m.mean_memory)
       << ",\"mean_disk_util\":" << json_num(m.mean_disk)
       << ",\"mean_net_util\":" << json_num(m.mean_net)
       << ",\"energy_joules\":" << json_num(m.energy_joules.value())
       << ",\"mean_watts\":" << json_num(m.mean_watts.value())
       << ",\"cpu_util_series\":";
    write_series(os, m.cpu_series);
    os << ",\"power_watts_series\":";
    write_series(os, m.power_series);
    os << "}";
  }
  os << "\n  ],\n  \"apps\":[";
  first = true;
  for (const auto& a : apps) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"name\":" << json_str(a.name)
       << ",\"sla_s\":" << json_num(a.sla_s.value())
       << ",\"samples\":" << json_num(double(a.samples))
       << ",\"mean_s\":" << json_num(a.mean_s)
       << ",\"p50_s\":" << json_num(a.p50_s)
       << ",\"p95_s\":" << json_num(a.p95_s)
       << ",\"p99_s\":" << json_num(a.p99_s)
       << ",\"max_s\":" << json_num(a.max_s)
       << ",\"violation_fraction\":" << json_num(a.violation_fraction)
       << "}";
  }
  os << "\n  ],\n  \"metrics\":";
  if (registry != nullptr) {
    registry->to_json(os);
  } else {
    os << "[]";
  }
  // Deterministic work-attribution section only; wall-clock stats are
  // deliberately excluded (see report.h).
  if (profiler != nullptr && profiler->enabled()) {
    os << ",\n  \"profile\":";
    profiler->work_to_json(os);
  }
  os << "\n}\n";
}

void RunReport::to_csv(std::ostream& os) const {
  os << "# jobs\n"
     << "id,name,state,maps,reduces,submit_s,finish_s,jct_s,map_phase_s,"
        "reduce_phase_s,shuffle_mb\n";
  for (const auto& j : jobs) {
    os << j.id << "," << csv(j.name) << "," << csv(j.state) << "," << j.maps
       << "," << j.reduces << "," << csv(j.submit_s) << ","
       << csv(j.finish_s) << "," << csv(j.jct_s) << "," << csv(j.map_phase_s)
       << "," << csv(j.reduce_phase_s) << "," << csv(j.shuffle_mb.value())
       << "\n";
  }
  os << "\n# machines\n"
     << "name,vms,powered,mean_cpu_util,mean_memory_util,mean_disk_util,"
        "mean_net_util,energy_joules,mean_watts\n";
  for (const auto& m : machines) {
    os << csv(m.name) << "," << m.vms << "," << (m.powered ? 1 : 0) << ","
       << csv(m.mean_cpu) << "," << csv(m.mean_memory) << ","
       << csv(m.mean_disk) << "," << csv(m.mean_net) << ","
       << csv(m.energy_joules.value()) << "," << csv(m.mean_watts.value())
       << "\n";
  }
  os << "\n# apps\n"
     << "name,sla_s,samples,mean_s,p50_s,p95_s,p99_s,max_s,"
        "violation_fraction\n";
  for (const auto& a : apps) {
    os << csv(a.name) << "," << csv(a.sla_s.value()) << "," << a.samples
       << ","
       << csv(a.mean_s) << "," << csv(a.p50_s) << "," << csv(a.p95_s) << ","
       << csv(a.p99_s) << "," << csv(a.max_s) << ","
       << csv(a.violation_fraction) << "\n";
  }
}

}  // namespace hybridmr::telemetry
