// RunReport: one run's summary — per-job JCT breakdowns, per-machine
// utilization and power, SLA percentiles — serializable to JSON and CSV.
//
// The struct is plain data so the telemetry library stays dependency-free;
// harness::TestBed::report() fills it from the live engine/cluster/apps
// (see harness/testbed.h). Serialization is deterministic: same seed, same
// bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/units.h"

namespace hybridmr::telemetry {

class Profiler;
class Registry;

struct RunReport {
  struct SeriesPoint {
    double t = 0;  // window start, simulated seconds
    double v = 0;  // mean over the window
  };

  /// Per-job completion-time breakdown (map/shuffle+reduce phase split).
  struct JobRow {
    int id = -1;
    std::string name;
    std::string state;
    int maps = 0;
    int reduces = 0;
    double submit_s = -1;
    double finish_s = -1;
    double jct_s = -1;
    double map_phase_s = -1;
    double reduce_phase_s = -1;
    sim::MegaBytes shuffle_mb;  // total shuffle volume of the job
  };

  /// Per-machine utilization means, energy integral and resampled series.
  struct MachineRow {
    std::string name;
    int vms = 0;
    bool powered = true;
    double mean_cpu = 0;
    double mean_memory = 0;
    double mean_disk = 0;
    double mean_net = 0;
    sim::Joules energy_joules;
    sim::Watts mean_watts;
    std::vector<SeriesPoint> cpu_series;
    std::vector<SeriesPoint> power_series;
  };

  /// Per-interactive-app latency distribution vs. its SLA.
  struct AppRow {
    std::string name;
    sim::Duration sla_s;
    std::size_t samples = 0;
    double mean_s = 0;
    double p50_s = 0;
    double p95_s = 0;
    double p99_s = 0;
    double max_s = 0;
    double violation_fraction = 0;
  };

  double sim_end_s = 0;
  std::size_t events_processed = 0;
  std::uint64_t clamped_past_events = 0;
  // Event-queue accounting — always on (the sim kernel tracks these
  // whether or not the profiler is enabled), and deterministic.
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_cancelled = 0;
  std::uint64_t events_deferred = 0;
  std::size_t max_queue_depth = 0;
  std::uint64_t max_event_fanout = 0;
  std::uint64_t flush_scheduled_events = 0;
  std::vector<JobRow> jobs;
  std::vector<MachineRow> machines;
  std::vector<AppRow> apps;

  /// Optional metrics snapshot (set by the builder; may be null).
  const Registry* registry = nullptr;

  /// Optional profiler snapshot (set by the builder for profiled runs; may
  /// be null). Only the deterministic *work* section is serialized here —
  /// wall-clock stats go through Profiler::to_json so same-seed report
  /// bytes stay identical with profiling enabled.
  const Profiler* profiler = nullptr;

  void to_json(std::ostream& os) const;

  /// Three CSV sections (jobs, machines, apps), separated by blank lines;
  /// each section starts with a `# <section>` marker and a header row.
  void to_csv(std::ostream& os) const;
};

}  // namespace hybridmr::telemetry
