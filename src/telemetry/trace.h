// Structured event tracing for whole simulation runs.
//
// Components emit typed events (task lifecycle, shuffle flows, migrations,
// DRM/IPS decisions, SLA violations, reconfigurations); the recorder stores
// them in emission order and exports either JSONL (one event per line, easy
// to grep/pandas) or Chrome trace_event JSON that loads directly in
// chrome://tracing and Perfetto, with one timeline track per machine/VM/job.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"

namespace hybridmr::telemetry {

enum class EventKind {
  kJobSubmit,
  kJobFinish,
  kTaskStart,
  kTaskFinish,
  kTaskKilled,
  kSpeculativeLaunch,
  kShuffleStart,
  kMigrationStart,
  kMigrationEnd,
  kDrmDecision,
  kIpsAction,
  kPhase1Placement,
  kSlaViolation,
  kReconfiguration,
  // Fault injection & recovery (src/faults + engine/storage hooks).
  kTaskFailed,
  kJobFailed,
  kMapOutputLost,
  kTrackerLost,
  kTrackerRestored,
  kMachineCrash,
  kMachineReboot,
  kMigrationAbort,
  kReplicaLoss,
  // Profiler work marks (src/telemetry/profiler.h): deterministic
  // sim-derived values only, so traces stay reproducible.
  kProfileMark,
};

/// Stable event-kind identifier used in the JSONL export.
const char* to_string(EventKind kind);
/// Chrome trace category for the kind ("task", "migration", ...).
const char* category(EventKind kind);

struct TraceEvent {
  double time_s = 0;  // simulated seconds (span start for complete events)
  double dur_s = 0;   // span length; 0 for instants
  EventKind kind = EventKind::kTaskStart;
  char phase = 'i';  // 'i' instant, 'X' complete span
  std::string name;
  std::string track;  // timeline row: machine, VM, job or subsystem name
  std::vector<std::pair<std::string, std::string>> args;
};

class TraceRecorder {
 public:
  using Args = std::vector<std::pair<std::string, std::string>>;

  /// Point event at `now`.
  void instant(double now, EventKind kind, std::string name,
               std::string track, Args args = {}) {
    if constexpr (kCompiledIn) {
      events_.push_back({now, 0, kind, 'i', std::move(name), std::move(track),
                         std::move(args)});
    } else {
      (void)now;
      (void)kind;
      (void)name;
      (void)track;
      (void)args;
    }
  }

  /// Span event covering [start_s, start_s + dur_s] (emitted at completion,
  /// when the duration is known).
  void complete(double start_s, double dur_s, EventKind kind,
                std::string name, std::string track, Args args = {}) {
    if constexpr (kCompiledIn) {
      events_.push_back({start_s, dur_s < 0 ? 0 : dur_s, kind, 'X',
                         std::move(name), std::move(track), std::move(args)});
    } else {
      (void)start_s;
      (void)dur_s;
      (void)kind;
      (void)name;
      (void)track;
      (void)args;
    }
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// One JSON object per line; deterministic for a fixed seed.
  void to_jsonl(std::ostream& os) const;

  /// Chrome trace_event JSON (the "JSON Array Format" with metadata), valid
  /// input for chrome://tracing and Perfetto. Simulated seconds map to
  /// trace microseconds; each distinct `track` becomes one tid with a
  /// thread_name metadata record.
  void to_chrome(std::ostream& os) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace hybridmr::telemetry
