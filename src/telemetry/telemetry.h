// Telemetry hub: the single handle wired through the scheduler stack.
//
// One Hub per run pairs the metrics registry with the structured trace
// recorder. harness::TestBed owns one and hands a pointer to every
// subsystem (cluster, engine, DRM, IPS, apps, ...); a null hub simply means
// "telemetry off" — every instrumentation site guards with `if (tel_)`.
#pragma once

#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"
#include "telemetry/report.h"
#include "telemetry/trace.h"

namespace hybridmr::telemetry {

struct Hub {
  Registry registry;
  TraceRecorder trace;
  // Off by default even when telemetry is on; TestBed enables it for
  // profiled runs (Options::profile / HYBRIDMR_PROFILE=1).
  Profiler profiler;
};

}  // namespace hybridmr::telemetry
