#include "telemetry/trace.h"

#include <map>

#include "telemetry/json.h"

namespace hybridmr::telemetry {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kJobSubmit:
      return "job_submit";
    case EventKind::kJobFinish:
      return "job_finish";
    case EventKind::kTaskStart:
      return "task_start";
    case EventKind::kTaskFinish:
      return "task_finish";
    case EventKind::kTaskKilled:
      return "task_killed";
    case EventKind::kSpeculativeLaunch:
      return "speculative_launch";
    case EventKind::kShuffleStart:
      return "shuffle_start";
    case EventKind::kMigrationStart:
      return "migration_start";
    case EventKind::kMigrationEnd:
      return "migration_end";
    case EventKind::kDrmDecision:
      return "drm_decision";
    case EventKind::kIpsAction:
      return "ips_action";
    case EventKind::kPhase1Placement:
      return "phase1_placement";
    case EventKind::kSlaViolation:
      return "sla_violation";
    case EventKind::kReconfiguration:
      return "reconfiguration";
    case EventKind::kTaskFailed:
      return "task_failed";
    case EventKind::kJobFailed:
      return "job_failed";
    case EventKind::kMapOutputLost:
      return "map_output_lost";
    case EventKind::kTrackerLost:
      return "tracker_lost";
    case EventKind::kTrackerRestored:
      return "tracker_restored";
    case EventKind::kMachineCrash:
      return "machine_crash";
    case EventKind::kMachineReboot:
      return "machine_reboot";
    case EventKind::kMigrationAbort:
      return "migration_abort";
    case EventKind::kReplicaLoss:
      return "replica_loss";
    case EventKind::kProfileMark:
      return "profile_mark";
  }
  return "?";
}

const char* category(EventKind kind) {
  switch (kind) {
    case EventKind::kJobSubmit:
    case EventKind::kJobFinish:
      return "job";
    case EventKind::kTaskStart:
    case EventKind::kTaskFinish:
    case EventKind::kTaskKilled:
    case EventKind::kSpeculativeLaunch:
      return "task";
    case EventKind::kShuffleStart:
      return "shuffle";
    case EventKind::kMigrationStart:
    case EventKind::kMigrationEnd:
      return "migration";
    case EventKind::kDrmDecision:
      return "drm";
    case EventKind::kIpsAction:
      return "ips";
    case EventKind::kPhase1Placement:
      return "phase1";
    case EventKind::kSlaViolation:
      return "sla";
    case EventKind::kReconfiguration:
      return "reconfig";
    case EventKind::kTaskFailed:
      return "task";
    case EventKind::kJobFailed:
      return "job";
    case EventKind::kMapOutputLost:
      return "task";
    case EventKind::kTrackerLost:
    case EventKind::kTrackerRestored:
    case EventKind::kMachineCrash:
    case EventKind::kMachineReboot:
      return "fault";
    case EventKind::kMigrationAbort:
      return "migration";
    case EventKind::kReplicaLoss:
      return "storage";
    case EventKind::kProfileMark:
      return "profiler";
  }
  return "?";
}

namespace {

void write_args(std::ostream& os, const TraceRecorder::Args& args) {
  os << "{";
  bool first = true;
  for (const auto& [k, v] : args) {
    if (!first) os << ",";
    first = false;
    os << json_str(k) << ":" << json_str(v);
  }
  os << "}";
}

/// Microseconds with fixed 3-decimal formatting (Perfetto accepts
/// fractional timestamps; fixed precision keeps output byte-stable).
std::string micros(double seconds) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

}  // namespace

void TraceRecorder::to_jsonl(std::ostream& os) const {
  for (const auto& e : events_) {
    os << "{\"t\":" << json_num(e.time_s);
    if (e.phase == 'X') os << ",\"dur\":" << json_num(e.dur_s);
    os << ",\"kind\":" << json_str(to_string(e.kind))
       << ",\"cat\":" << json_str(category(e.kind))
       << ",\"name\":" << json_str(e.name)
       << ",\"track\":" << json_str(e.track);
    if (!e.args.empty()) {
      os << ",\"args\":";
      write_args(os, e.args);
    }
    os << "}\n";
  }
}

void TraceRecorder::to_chrome(std::ostream& os) const {
  // Assign tids in first-appearance order so output is deterministic.
  std::map<std::string, int> tid_of;
  std::vector<std::string> tracks;
  for (const auto& e : events_) {
    if (tid_of.emplace(e.track, static_cast<int>(tracks.size())).second) {
      tracks.push_back(e.track);
    }
  }
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"ph\":\"M\",\"pid\":0,\"tid\":" << i
       << ",\"name\":\"thread_name\",\"args\":{\"name\":"
       << json_str(tracks[i]) << "}}";
  }
  for (const auto& e : events_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":" << json_str(e.name)
       << ",\"cat\":" << json_str(category(e.kind)) << ",\"ph\":\"" << e.phase
       << "\",\"ts\":" << micros(e.time_s);
    if (e.phase == 'X') os << ",\"dur\":" << micros(e.dur_s);
    if (e.phase == 'i') os << ",\"s\":\"t\"";
    os << ",\"pid\":0,\"tid\":" << tid_of[e.track] << ",\"args\":";
    TraceRecorder::Args args = e.args;
    args.emplace_back("kind", to_string(e.kind));
    write_args(os, args);
    os << "}";
  }
  os << "\n]}\n";
}

}  // namespace hybridmr::telemetry
