// Minimal deterministic JSON formatting helpers for the telemetry exporters.
//
// Determinism matters more than speed here: two runs of the same simulation
// with the same seed must produce byte-identical trace and report files, so
// every number goes through one fixed printf format and every string through
// one escaper.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

namespace hybridmr::telemetry {

/// Formats a double with enough digits to round-trip, "null" for non-finite.
inline std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  // Integers print without a trailing ".0" so counters look like counts.
  if (v == static_cast<long long>(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// Escapes a string for embedding inside JSON double quotes.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// `"name"` with escaping and quotes.
inline std::string json_str(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

}  // namespace hybridmr::telemetry
