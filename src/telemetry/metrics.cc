#include "telemetry/metrics.h"

#include "telemetry/json.h"

namespace hybridmr::telemetry {

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0) return min_;
  if (p >= 100) return max_;
  const double target = p / 100.0 * static_cast<double>(count_);
  double cum = 0;
  const double width = (hi_ - lo_) / static_cast<double>(kBuckets);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const double c = static_cast<double>(counts_[i]);
    if (cum + c >= target) {
      const double frac = c > 0 ? (target - cum) / c : 0.5;
      const double lo_edge = lo_ + width * static_cast<double>(i);
      double v = lo_edge + frac * width;
      // The extremes are exact; never report beyond them.
      if (v < min_) v = min_;
      if (v > max_) v = max_;
      return v;
    }
    cum += c;
  }
  return max_;
}

Registry::Entry& Registry::fetch(const std::string& name, Type type,
                                 const std::string& unit) {
  auto it = index_.find(name);
  if (it != index_.end() && entries_[it->second]->type == type) {
    return *entries_[it->second];
  }
  auto entry = std::make_unique<Entry>();
  entry->type = type;
  entry->name = name;
  entry->unit = unit;
  entries_.push_back(std::move(entry));
  index_[name] = entries_.size() - 1;
  return *entries_.back();
}

Counter& Registry::counter(const std::string& name, const std::string& unit) {
  gate_.assert_held();
  Entry& e = fetch(name, Type::kCounter, unit);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& unit) {
  gate_.assert_held();
  Entry& e = fetch(name, Type::kGauge, unit);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name, double lo, double hi,
                               const std::string& unit) {
  gate_.assert_held();
  Entry& e = fetch(name, Type::kHistogram, unit);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(lo, hi);
  return *e.histogram;
}

TimeSeriesMetric& Registry::timeseries(const std::string& name,
                                       double window_s,
                                       const std::string& unit) {
  gate_.assert_held();
  Entry& e = fetch(name, Type::kTimeSeries, unit);
  if (!e.series) e.series = std::make_unique<TimeSeriesMetric>(window_s);
  return *e.series;
}

const Registry::Entry* Registry::find(const std::string& name) const {
  gate_.assert_held();
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : entries_[it->second].get();
}

const char* to_string(Registry::Type type) {
  switch (type) {
    case Registry::Type::kCounter:
      return "counter";
    case Registry::Type::kGauge:
      return "gauge";
    case Registry::Type::kHistogram:
      return "histogram";
    case Registry::Type::kTimeSeries:
      return "timeseries";
  }
  return "?";
}

void Registry::to_json(std::ostream& os) const {
  gate_.assert_held();
  os << "[";
  bool first = true;
  for (const auto& e : entries_) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\":" << json_str(e->name)
       << ",\"type\":" << json_str(to_string(e->type))
       << ",\"unit\":" << json_str(e->unit);
    switch (e->type) {
      case Type::kCounter:
        os << ",\"value\":" << json_num(e->counter->value())
           << ",\"events\":" << json_num(double(e->counter->events()));
        break;
      case Type::kGauge:
        os << ",\"value\":" << json_num(e->gauge->value());
        break;
      case Type::kHistogram: {
        const Histogram& h = *e->histogram;
        os << ",\"count\":" << json_num(double(h.count()))
           << ",\"mean\":" << json_num(h.mean())
           << ",\"min\":" << json_num(h.min())
           << ",\"max\":" << json_num(h.max())
           << ",\"p50\":" << json_num(h.percentile(50))
           << ",\"p95\":" << json_num(h.percentile(95))
           << ",\"p99\":" << json_num(h.percentile(99));
        break;
      }
      case Type::kTimeSeries: {
        const TimeSeriesMetric& s = *e->series;
        os << ",\"window_s\":" << json_num(s.window_seconds())
           << ",\"count\":" << json_num(double(s.count()))
           << ",\"mean\":" << json_num(s.mean()) << ",\"windows\":[";
        bool w_first = true;
        for (const auto& w : s.windows()) {
          if (!w_first) os << ",";
          w_first = false;
          os << "{\"t\":" << json_num(w.start)
             << ",\"n\":" << json_num(double(w.count))
             << ",\"mean\":" << json_num(w.mean())
             << ",\"min\":" << json_num(w.min)
             << ",\"max\":" << json_num(w.max) << "}";
        }
        os << "]";
        break;
      }
    }
    os << "}";
  }
  os << "\n]";
}

}  // namespace hybridmr::telemetry
