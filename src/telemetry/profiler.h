// Simulation profiler: scoped wall timers + deterministic work attribution.
//
// Two kinds of evidence, deliberately segregated:
//
//   - *Wall* data (scope timers, calling-context tree, log-bucketed latency
//     histograms) explains where real time goes. It is inherently
//     nondeterministic and is therefore exported only through
//     to_json(os, /*include_wall=*/true) — never into RunReport, whose
//     bytes must be identical across same-seed runs.
//   - *Work* data (counters per trigger cause, dirty-set / queue-depth /
//     fan-out distributions, per-scope invocation counts) explains *why*
//     wall time grows: it counts algorithmic work in integers derived only
//     from simulation state, so two same-seed runs produce byte-identical
//     work sections even with profiling enabled. This is what RunReport's
//     `profile` section carries and what determinism diffs may cover.
//
// The profiler implements sim::DispatchProbe, so the event loop feeds it
// queue depth and per-event fan-out; a heartbeat/stall watchdog rides on the
// same callback to detect hung runs (wall budget, same-sim-time livelock)
// and stop the simulation with a diagnosable reason instead of spinning
// forever (the scale/384 failure mode).
//
// Wall-clock reads are confined to profiler.cc — the determinism analyzer
// grants the wall-clock allowance to this module only (see
// scripts/analyze/determinism.py WALL_CLOCK_SANCTIONED).
//
// Everything compiles out with the HYBRIDMR_TELEMETRY CMake option: record
// paths become empty inlines and instrumentation sites keep a null pointer.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/probe.h"
#include "telemetry/metrics.h"

namespace hybridmr::sim {
class Simulation;
}  // namespace hybridmr::sim

namespace hybridmr::telemetry {

class TraceRecorder;

/// Histogram over unsigned values with power-of-two bucket edges: bucket 0
/// holds zeros, bucket b (b >= 1) holds [2^(b-1), 2^b). Covers the full
/// uint64 range in 64 fixed buckets with O(1) record, so it suits both
/// nanosecond latencies (ns .. minutes) and work sizes (queue depths,
/// dirty-set sizes). Recording only touches integer state — a log histogram
/// of deterministic values is itself deterministic.
class LogHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return count_ ? max_ : 0; }
  [[nodiscard]] double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0;
  }

  /// Approximate percentile, p in [0, 100]; interpolates inside the bucket
  /// and clamps to the exact [min, max] extremes (single-sample histograms
  /// report that sample for every percentile).
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const {
    return counts_;
  }

 private:
  // hmr-state(ephemeral: profiler histogram buckets; a snapshot may drop
  // them and let the fork re-accumulate from its own run)
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Deterministic work counters, keyed by trigger cause. A fixed enum (not
/// string interning) so the export schema is stable across runs and PRs —
/// profile diffs compare like with like.
enum class WorkCounter {
  kRecomputeDirect,       // Machine::recompute() called eagerly/inline
  kRecomputeDrain,        // recompute from the coalescing drain
  kRecomputeReadBarrier,  // recompute forced by ensure_clean() on a read
  kRecomputeEager,        // eager_reallocation mode invalidate->recompute
  kReschedulePushed,      // completion events cancel+re-pushed (fresh push)
  kRescheduleSkipped,     // reschedule() skipped (finish time unchanged)
  kRescheduleDeferred,    // completion events defer()ed in place (lazy path)
  kDrainPasses,           // ReallocCoordinator::drain() invocations
  kDispatchPasses,        // MapReduceEngine::dispatch() invocations
  kDispatchTrackerScans,  // tracker slots examined across dispatch passes
  kDispatchLaunches,      // tasks launched by dispatch
  kSpeculationScans,      // speculation_scan() invocations
  kShuffleTransfers,      // HDFS shuffle transfers started
  kHdfsReads,             // HDFS block reads started
  kHdfsWrites,            // HDFS writes started
  kHdfsFlows,             // point-to-point flows opened
  kCount,
};

/// Stable snake_case identifier for the JSON export.
const char* to_string(WorkCounter c);

/// Deterministic work-size distributions (integer-valued LogHistograms).
enum class WorkDist {
  kQueueDepth,    // event-queue depth observed at each dispatch
  kEventFanout,   // events scheduled by each event handler
  kDirtySetSize,  // dirty machines per ReallocCoordinator drain
  kCount,
};

const char* to_string(WorkDist d);

/// Interned scope identifier; components intern their scope names once at
/// wiring time (interning is not the hot path) and open Scope guards with
/// the id. Ids are indices, so enter/exit is array arithmetic.
struct ScopeId {
  std::size_t index = static_cast<std::size_t>(-1);
  [[nodiscard]] bool valid() const {
    return index != static_cast<std::size_t>(-1);
  }
};

class Profiler : public sim::DispatchProbe {
 public:
  /// Watchdog thresholds; zero disables the corresponding check. Wall
  /// thresholds are real seconds, not simulated ones.
  struct WatchdogOptions {
    double heartbeat_every_s = 0;  // periodic progress line to `out`
    double wall_budget_s = 0;      // stop the run past this wall time
    // Stop when this many consecutive events fire at one sim timestamp
    // (livelock: the clock is stuck while the queue churns).
    std::uint64_t max_same_time_events = 0;
    // How often (in events) the watchdog reads the wall clock.
    std::uint64_t check_every_events = 2048;
  };

  /// Per-scope aggregated wall statistics.
  struct WallStats {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
    LogHistogram hist;  // nanoseconds per invocation
  };

  /// Calling-context-tree node: one (parent chain, scope) combination.
  /// Node 0 is the synthetic root. Creation order follows first-visit
  /// order, which is deterministic for a fixed seed.
  struct Node {
    std::size_t parent = 0;
    std::size_t scope = 0;  // ScopeId::index; unused for the root
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::vector<std::size_t> children;
  };

  Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Profiling is off by default even when telemetry is on; TestBed enables
  /// it for Options::profile / HYBRIDMR_PROFILE=1 runs. When disabled (or
  /// compiled out) every record path is a no-op and instrumentation sites
  /// hold a null Profiler*.
  void enable(bool on = true) {
    if constexpr (kCompiledIn) enabled_ = on;
    else (void)on;
  }
  [[nodiscard]] bool enabled() const { return kCompiledIn && enabled_; }

  /// Attaches the simulation so the watchdog can stop a stalled run.
  void set_simulation(sim::Simulation* sim) { sim_ = sim; }

  /// When set, deterministic work marks (drain dirty-set sizes) interleave
  /// with the simulation events in the Chrome trace on a "profiler" track.
  /// Marks carry only sim-derived values, so traces stay reproducible.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Arms the heartbeat/stall watchdog; `out` receives heartbeat and stall
  /// lines (defaults to stderr when null).
  void set_watchdog(const WatchdogOptions& options, std::ostream* out);

  /// Interns `name` (idempotent) and returns its scope id.
  ScopeId intern(const std::string& name);

  void add(WorkCounter c, std::uint64_t n = 1) {
    if constexpr (kCompiledIn) {
      if (enabled_) work_[static_cast<std::size_t>(c)] += n;
    } else {
      (void)c;
      (void)n;
    }
  }

  void record_dist(WorkDist d, std::uint64_t value) {
    if constexpr (kCompiledIn) {
      if (enabled_) dists_[static_cast<std::size_t>(d)].record(value);
    } else {
      (void)d;
      (void)value;
    }
  }

  /// record_dist() plus a deterministic trace mark at sim time `now` when a
  /// trace recorder is attached.
  void record_dist_at(WorkDist d, std::uint64_t value, double now);

  /// Scope timing; prefer the Scope RAII guard. Unbalanced enter/exit
  /// corrupts the context stack (the exit pops whatever is on top).
  void enter(ScopeId s);
  void exit(ScopeId s);

  // sim::DispatchProbe
  void on_event_begin(sim::SimTime now, std::size_t queue_depth) override;
  void on_event_end(sim::SimTime now, std::uint64_t fanout,
                    std::size_t queue_depth) override;

  /// True when the watchdog stopped the run (wall budget or livelock).
  [[nodiscard]] bool stalled() const { return stalled_; }
  [[nodiscard]] const std::string& stall_reason() const {
    return stall_reason_;
  }

  [[nodiscard]] std::uint64_t work(WorkCounter c) const {
    return work_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const LogHistogram& dist(WorkDist d) const {
    return dists_[static_cast<std::size_t>(d)];
  }
  [[nodiscard]] const std::vector<std::string>& scope_names() const {
    return scope_names_;
  }
  [[nodiscard]] const std::vector<WallStats>& wall_stats() const {
    return wall_;
  }
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }

  /// Deterministic work section only (counters, distributions, per-scope
  /// invocation counts) — safe to embed in RunReport.
  void work_to_json(std::ostream& os) const;

  /// Full profile: the work section plus (optionally) wall statistics and
  /// the calling-context tree. Benches write this next to their results as
  /// `<run>.profile.json`.
  void to_json(std::ostream& os, bool include_wall) const;

  /// Human-readable hotspot table, ranked by total wall time (top_n rows);
  /// falls back to invocation counts when no wall data was collected.
  void print_hotspots(std::ostream& os, std::size_t top_n = 10) const;

 private:
  struct Frame {
    std::size_t node = 0;
    std::uint64_t t0_ns = 0;
  };

  void check_watchdog(sim::SimTime now);
  void stall(const std::string& reason);
  std::size_t child_node(std::size_t parent, std::size_t scope);

  bool enabled_ = false;
  sim::Simulation* sim_ = nullptr;
  TraceRecorder* trace_ = nullptr;

  // hmr-state(ephemeral: cost-attribution counters; forks restart
  // attribution from zero rather than inheriting the parent's profile)
  std::array<std::uint64_t, static_cast<std::size_t>(WorkCounter::kCount)>
      work_{};
  // hmr-state(ephemeral: per-cause work distributions, same policy as work_)
  std::array<LogHistogram, static_cast<std::size_t>(WorkDist::kCount)>
      dists_{};

  std::vector<std::string> scope_names_;
  std::map<std::string, std::size_t> scope_index_;
  std::vector<WallStats> wall_;
  std::vector<Node> nodes_;
  std::vector<Frame> stack_;
  ScopeId event_scope_;  // "sim.event", interned at construction

  // Watchdog state (wall times in ns since the first armed check).
  WatchdogOptions watchdog_{};
  // hmr-state(back-reference: owner=process stderr / harness wiring; never
  // part of simulation state)
  std::ostream* watchdog_out_ = nullptr;
  bool watchdog_armed_ = false;
  std::uint64_t watchdog_start_ns_ = 0;
  std::uint64_t last_heartbeat_ns_ = 0;
  std::uint64_t events_seen_ = 0;
  std::uint64_t events_at_heartbeat_ = 0;
  sim::SimTime last_event_time_ = -1;
  std::uint64_t same_time_run_ = 0;
  bool stalled_ = false;
  std::string stall_reason_;
};

/// RAII scope guard. Null profiler (telemetry off / profiling disabled)
/// costs one pointer compare; instrumentation sites cache the pointer as
/// null unless profiling is live, mirroring the `tel_` metric idiom.
class Scope {
 public:
  Scope(Profiler* p, ScopeId s) : p_(p), s_(s) {
    if (p_) p_->enter(s_);
  }
  ~Scope() {
    if (p_) p_->exit(s_);
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Profiler* p_;
  ScopeId s_;
};

}  // namespace hybridmr::telemetry
