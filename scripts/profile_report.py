#!/usr/bin/env python3
"""Offline analysis of HybridMR simulation-profiler JSON.

Consumes any of the three profile shapes the codebase emits:

  * a bench_scale --profile file: {"scale/24": {...}, "scale/96": {...}}
    with one full profile (work + wall) per sweep point,
  * a single Profiler::to_json() object: {"enabled":..., "work":..., ...},
  * a RunReport with a "profile" section (deterministic work counters only,
    no wall data — wall-dependent subcommands explain what is missing).

Subcommands:

  top FILE [--point P] [-n N]
      Rank wall-clock hotspots (scope table, sorted by total time) and
      print the work-attribution counters that explain them.

  flame FILE [--point P] [-o OUT]
      Emit collapsed call stacks ("path;to;scope <self_time_us>" lines)
      from the calling-context tree — the input format of the standard
      flamegraph.pl / speedscope "collapsed" importers. Self time is a
      node's total minus its children's totals.

  diff OLD NEW [--point P] [--new-point Q] [-n N]
      Compare two profiles: wall hotspot deltas and work-counter growth
      factors, sorted by what grew most. OLD and NEW may be the same file
      with different points (--point scale/24 --new-point scale/96) —
      that comparison answers "what turned superlinear".

  fingerprint FILE [--point P]
      Print a short digest of the deterministic work counters only (wall
      data excluded by construction). Two same-seed runs must print the
      same fingerprint; CI and tests compare these.

Exit code is 0 on success, 1 on malformed input or a missing --point.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path


def die(msg: str) -> "None":
    print(f"profile_report: {msg}", file=sys.stderr)
    raise SystemExit(1)


def load_profiles(path: Path) -> dict[str, dict]:
    """Returns {point_name: profile_dict} for any supported input shape."""
    try:
        with path.open(encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"cannot read {path}: {e}")
    if not isinstance(doc, dict):
        die(f"{path}: expected a JSON object")
    if "work" in doc and "enabled" in doc:          # bare Profiler::to_json
        return {"": doc}
    if "profile" in doc and "counters" in doc.get("profile", {}):
        return {"": {"work": doc["profile"]}}       # RunReport
    points = {k: v for k, v in doc.items()
              if isinstance(v, dict) and "work" in v}
    if not points:
        die(f"{path}: no profile objects found")
    return points


def pick(points: dict[str, dict], point: str | None, path: Path) -> dict:
    if point is not None:
        if point not in points:
            die(f"{path}: no point {point!r} (have: {', '.join(points)})")
        return points[point]
    if len(points) > 1:
        # Deterministic default: the largest sweep point is the interesting
        # one, and sweep keys sort numerically as "scale/<N>".
        name = max(points, key=lambda k: (len(k), k))
        print(f"# point: {name} (of {', '.join(sorted(points))}; "
              "override with --point)")
        return points[name]
    return next(iter(points.values()))


def wall_scopes(profile: dict) -> list[dict]:
    return profile.get("wall", {}).get("scopes", [])


def cct_nodes(profile: dict) -> list[dict]:
    return profile.get("wall", {}).get("nodes", [])


def counters(profile: dict) -> dict[str, float]:
    return profile.get("work", {}).get("counters", {})


def dists(profile: dict) -> dict[str, dict]:
    return profile.get("work", {}).get("dists", {})


# --- top ---------------------------------------------------------------------

def cmd_top(args: argparse.Namespace) -> int:
    profile = pick(load_profiles(args.file), args.point, args.file)
    scopes = [s for s in wall_scopes(profile) if s.get("count")]
    if scopes:
        scopes.sort(key=lambda s: -s.get("total_ms", 0))
        print(f"{'scope':<30}{'calls':>12}{'total_ms':>12}{'mean_us':>10}"
              f"{'p95_us':>10}{'max_us':>10}")
        for s in scopes[:args.top]:
            print(f"{s['name']:<30}{s['count']:>12.0f}"
                  f"{s.get('total_ms', 0):>12.2f}{s.get('mean_us', 0):>10.1f}"
                  f"{s.get('p95_us', 0):>10.1f}{s.get('max_us', 0):>10.1f}")
    else:
        print("(no wall data — work-counter-only profile, e.g. a RunReport)")
    work = counters(profile)
    if work:
        print(f"\n{'work counter':<30}{'value':>14}")
        for name, value in sorted(work.items(), key=lambda kv: -kv[1]):
            print(f"{name:<30}{value:>14.0f}")
    for name, d in dists(profile).items():
        print(f"{name:<22} n={d.get('count', 0):.0f} mean={d.get('mean', 0):.2f}"
              f" p95={d.get('p95', 0):.2f} max={d.get('max', 0):.0f}")
    return 0


# --- flame -------------------------------------------------------------------

def collapsed_stacks(profile: dict) -> list[str]:
    """One "a;b;c weight" line per CCT node, weight = self time in us."""
    nodes = cct_nodes(profile)
    total_children: dict[str, float] = {}
    for n in nodes:
        path = n["path"]
        parent = path.rsplit(";", 1)[0] if ";" in path else None
        if parent is not None:
            total_children[parent] = (total_children.get(parent, 0)
                                      + n.get("total_ns", 0))
    lines = []
    for n in nodes:
        self_ns = n.get("total_ns", 0) - total_children.get(n["path"], 0)
        self_us = max(0, int(self_ns / 1e3))
        if self_us > 0:
            lines.append(f"{n['path']} {self_us}")
    return lines


def cmd_flame(args: argparse.Namespace) -> int:
    profile = pick(load_profiles(args.file), args.point, args.file)
    if not cct_nodes(profile):
        die("no calling-context tree in this profile (work-only input?)")
    lines = collapsed_stacks(profile)
    if args.output:
        args.output.write_text("\n".join(lines) + "\n", encoding="utf-8")
        print(f"profile_report: wrote {len(lines)} stacks to {args.output}")
    else:
        for line in lines:
            print(line)
    return 0


# --- diff --------------------------------------------------------------------

def fmt_growth(old: float, new: float) -> str:
    if old <= 0:
        return "new" if new > 0 else "0"
    return f"{new / old:.2f}x"


def diff_profiles(old: dict, new: dict, top: int) -> list[str]:
    """Human-readable delta report, biggest wall-time growth first."""
    out: list[str] = []
    old_scopes = {s["name"]: s for s in wall_scopes(old)}
    new_scopes = {s["name"]: s for s in wall_scopes(new)}
    names = sorted(set(old_scopes) | set(new_scopes),
                   key=lambda n: -(new_scopes.get(n, {}).get("total_ms", 0)
                                   - old_scopes.get(n, {}).get("total_ms", 0)))
    if names:
        out.append(f"{'scope':<30}{'old_ms':>10}{'new_ms':>10}{'delta_ms':>10}"
                   f"{'growth':>8}{'calls':>8}")
        for name in names[:top]:
            o = old_scopes.get(name, {})
            n = new_scopes.get(name, {})
            o_ms, n_ms = o.get("total_ms", 0), n.get("total_ms", 0)
            out.append(f"{name:<30}{o_ms:>10.2f}{n_ms:>10.2f}"
                       f"{n_ms - o_ms:>10.2f}{fmt_growth(o_ms, n_ms):>8}"
                       f"{fmt_growth(o.get('count', 0), n.get('count', 0)):>8}")
    old_work, new_work = counters(old), counters(new)
    work_names = sorted(set(old_work) | set(new_work),
                        key=lambda k: -(new_work.get(k, 0)
                                        / max(1.0, old_work.get(k, 0))))
    if work_names:
        out.append("")
        out.append(f"{'work counter':<30}{'old':>12}{'new':>12}{'growth':>8}")
        for name in work_names[:top]:
            o, n = old_work.get(name, 0), new_work.get(name, 0)
            out.append(f"{name:<30}{o:>12.0f}{n:>12.0f}"
                       f"{fmt_growth(o, n):>8}")
    return out


def cmd_diff(args: argparse.Namespace) -> int:
    old = pick(load_profiles(args.old), args.point, args.old)
    new = pick(load_profiles(args.new), args.new_point or args.point,
               args.new)
    for line in diff_profiles(old, new, args.top):
        print(line)
    return 0


# --- fingerprint -------------------------------------------------------------

def work_fingerprint(profile: dict) -> str:
    """Digest over the deterministic work section only (never wall data)."""
    canonical = json.dumps(profile.get("work", {}), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def cmd_fingerprint(args: argparse.Namespace) -> int:
    points = load_profiles(args.file)
    if args.point is not None:
        points = {args.point: pick(points, args.point, args.file)}
    for name in sorted(points):
        label = name or str(args.file)
        print(f"{work_fingerprint(points[name])}  {label}")
    return 0


# -----------------------------------------------------------------------------

def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("top", help="rank wall hotspots + work counters")
    p.add_argument("file", type=Path)
    p.add_argument("--point", help="sweep point key, e.g. scale/96")
    p.add_argument("-n", "--top", type=int, default=10)
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser("flame", help="collapsed stacks for flamegraph.pl")
    p.add_argument("file", type=Path)
    p.add_argument("--point")
    p.add_argument("-o", "--output", type=Path)
    p.set_defaults(fn=cmd_flame)

    p = sub.add_parser("diff", help="hotspot/counter deltas of two profiles")
    p.add_argument("old", type=Path)
    p.add_argument("new", type=Path)
    p.add_argument("--point", help="sweep point in OLD (and NEW by default)")
    p.add_argument("--new-point", help="sweep point in NEW when different")
    p.add_argument("-n", "--top", type=int, default=10)
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser("fingerprint",
                       help="digest of the deterministic work counters")
    p.add_argument("file", type=Path)
    p.add_argument("--point")
    p.set_defaults(fn=cmd_fingerprint)

    args = parser.parse_args()
    return args.fn(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `profile_report.py top ... | head`
        sys.exit(0)
