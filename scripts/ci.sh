#!/usr/bin/env bash
# CI entry point: build and test the Release configuration, then an
# ASan/UBSan configuration (HYBRIDMR_SANITIZE) so hot-path telemetry and
# scheduler code stay sanitizer-clean.
#
#   $ scripts/ci.sh [build-root]        # default build root: ./build-ci
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
root="${1:-$repo/build-ci}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_variant() {
  local name="$1"
  shift
  local dir="$root/$name"
  echo "=== [$name] configure + build ==="
  cmake -S "$repo" -B "$dir" -DCMAKE_BUILD_TYPE=Release "$@"
  cmake --build "$dir" -j "$jobs"
  echo "=== [$name] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

run_variant release
# Leak checking stays off for now: the simulation substrate has known
# shared_ptr lifetime cycles (HDFS flows / workload callbacks held by the
# event queue at teardown) that predate the sanitizer CI. ASan still traps
# use-after-free/overflows and UBSan all undefined behavior.
export ASAN_OPTIONS="detect_leaks=0"
run_variant sanitize -DHYBRIDMR_SANITIZE=address,undefined

echo "=== ci.sh: all variants green ==="
