#!/usr/bin/env bash
# CI entry point. Stages, in order (see docs/CORRECTNESS.md):
#
#   format       clang-format --dry-run -Werror over src/ tests/ bench/
#                (skipped with a notice when clang-format is not installed)
#   lint         scripts/lint_sim.py determinism linter (thin wrapper over
#                the analyzer's determinism rule group) — blocking
#   release      Release build + full ctest suite (also produces the
#                compile database the next two stages resolve against)
#   analyze      scripts/analyze/hybridmr-analyze full rule suite over src/
#                (dimensions, layering, capture-lifetime, determinism,
#                concurrency) gated by the committed baseline — blocking,
#                never skipped; exit 1 (findings) and exit 2 (broken
#                analyzer) are reported distinctly
#   concurrency  hybridmr-analyze --group=concurrency over src/, emitting
#                the layer-keyed shared-state census (shared_state.json in
#                the build root) — blocking, zero unbaselined findings
#   state        hybridmr-analyze --group=state over src/, emitting the
#                layer-keyed state-ownership census (state_graph.json in
#                the build root; see docs/SNAPSHOT.md) — blocking: zero
#                unclassified fields and a non-empty census (an empty one
#                means the pass went vacuous)
#   clang-tidy   bugprone/performance/modernize/cppcoreguidelines profile
#                against the Release compile database (skipped with a
#                notice when clang-tidy is not installed)
#   thread-safety clang build of the core library with -Werror=thread-safety
#                over the HMR_* capability annotations
#                (src/sim/thread_annotations.h); skipped with a notice when
#                clang++ is not installed
#   sanitize     ASan/UBSan build + ctest, LeakSanitizer ENABLED — the
#                teardown paths are leak-clean and must stay that way
#   tsan         ThreadSanitizer build of the concurrency harness
#                (tests/concurrency_test must run clean) plus the racy
#                negative control (tests/tsan_race_probe must be CAUGHT —
#                the stage fails if TSan misses the planted race)
#   audit        -DHYBRIDMR_AUDIT=ON build + ctest: every runtime invariant
#                checkpoint compiled in and exercised by the suite
#   chaos        bench_faults seeded chaos scenario in the sanitize and
#                audit trees, determinism-diffed across two same-seed runs
#   whatif       whole-engine fork suite: chaos fork-equivalence,
#                fork-isolation and the IPS regressions under ASan/UBSan,
#                the snapshot/fork audit guards in the audit tree, a
#                same-seed bench_whatif sweep-fingerprint diff, and the
#                warmed-vs-cold capacity sweep gated by perf_gate.py
#                against BENCH_whatif.json (cold/forked >= 5x)
#   determinism  two same-seed quickstart runs; telemetry artifacts must be
#                byte-identical — once plain and once with HYBRIDMR_PROFILE=1
#                (the profiler's wall-clock data must never leak into the
#                reports, so profiled runs must stay byte-identical too);
#                plus the snapshot fork-equivalence suite (tests/
#                snapshot_test) re-run from the audit tree, so the
#                restore path holds under every runtime invariant check
#   profile      simulation-profiler smoke in the sanitize tree: bench_scale
#                scale/24 with --profile + armed watchdog, hotspot table via
#                scripts/profile_report.py, and a work-counter fingerprint
#                diff across two same-seed profiled runs
#   perf         Release bench_micro + bench_scale runs gated by
#                scripts/perf_gate.py against the committed BENCH_micro.json
#                / BENCH_scale.json baselines (see docs/PERFORMANCE.md)
#
#   $ scripts/ci.sh [build-root]        # default build root: ./build-ci
#
# Build trees live under the build root with fixed names, so repeat runs
# reuse them incrementally.
set -uo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
root="${1:-$repo/build-ci}"
jobs="$(nproc 2>/dev/null || echo 4)"

declare -a stage_names=()
declare -a stage_results=()
failures=0

note_stage() {  # name result   (any result starting with FAIL counts)
  stage_names+=("$1")
  stage_results+=("$2")
  case "$2" in
    FAIL*) failures=$((failures + 1)) ;;
  esac
  echo "=== [$1] $2 ==="
}

build_and_test() {  # name [cmake args...]
  local name="$1"
  shift
  local dir="$root/$name"
  echo "=== [$name] configure + build ==="
  if cmake -S "$repo" -B "$dir" -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "$@" &&
      cmake --build "$dir" -j "$jobs"; then
    echo "=== [$name] ctest ==="
    if ctest --test-dir "$dir" --output-on-failure -j "$jobs"; then
      note_stage "$name" PASS
      return 0
    fi
  fi
  note_stage "$name" FAIL
  return 1
}

cxx_sources() {
  git -C "$repo" ls-files 'src/**' 'tests/**' 'bench/**' 'examples/**' |
    grep -E '\.(cc|cpp|cxx|h|hpp)$'
}

# --- format -----------------------------------------------------------------
if command -v clang-format > /dev/null 2>&1; then
  echo "=== [format] clang-format --dry-run -Werror ==="
  if (cd "$repo" && cxx_sources | xargs clang-format --dry-run -Werror); then
    note_stage format PASS
  else
    note_stage format FAIL
  fi
else
  note_stage format "SKIP (clang-format not installed)"
fi

# --- lint (always-on, blocking) ---------------------------------------------
echo "=== [lint] scripts/lint_sim.py ==="
if python3 "$repo/scripts/lint_sim.py" "$repo/src" "$repo/tests" \
    "$repo/bench" "$repo/examples"; then
  note_stage lint PASS
else
  note_stage lint FAIL
fi

# --- release build + tests (also produces the compile database) -------------
build_and_test release || true

# Runs the analyzer and notes the stage, distinguishing "findings" (exit 1,
# the gate caught something) from "infrastructure error" (exit 2, the
# analyzer itself is broken) in the stage result.
run_analyze_stage() {  # stage-name [analyzer args...]
  local name="$1"
  shift
  python3 "$repo/scripts/analyze/hybridmr-analyze" "$@"
  local code=$?
  case "$code" in
    0) note_stage "$name" PASS ;;
    1) note_stage "$name" "FAIL (findings)" ;;
    *) note_stage "$name" "FAIL (analyzer infrastructure error, exit $code)" ;;
  esac
  return "$code"
}

# --- analyze: full static-analysis suite, baseline-gated, never skipped ------
# The SARIF artifact is for code-review tooling; emitting it does not change
# the gate (findings still decide the exit status).
echo "=== [analyze] scripts/analyze/hybridmr-analyze ==="
run_analyze_stage analyze \
    --compile-commands "$root/release/compile_commands.json" \
    --sarif "$root/analyze.sarif" "$repo/src" || true

# --- concurrency: readiness census for the parallel sim core (blocking) ------
# Emits the layer-keyed shared-state report alongside the gate; the report
# is the design input for the event-loop sharding work (docs/CONCURRENCY.md)
# and must list every annotated shared site.
echo "=== [concurrency] hybridmr-analyze --group=concurrency ==="
python3 "$repo/scripts/analyze/hybridmr-analyze" --group=concurrency \
    --shared-state-report "$root/shared_state.json" "$repo/src"
case $? in
  0)
    # A census that lists no annotated sites means the report side of the
    # pass is broken — the intentionally-shared core state is annotated.
    if grep -q '"annotated": true' "$root/shared_state.json" 2>/dev/null; then
      note_stage concurrency PASS
    else
      echo "concurrency: shared-state report lists no annotated sites"
      note_stage concurrency "FAIL (empty census)"
    fi
    ;;
  1) note_stage concurrency "FAIL (findings)" ;;
  *) note_stage concurrency "FAIL (analyzer infrastructure error)" ;;
esac

# --- state: snapshot-safety census for the fork/checkpoint work (blocking) ---
# Emits the layer-keyed state-ownership census (docs/SNAPSHOT.md): every
# field of every root-reachable class classified into the five snapshot
# kinds. Gate: zero findings (no unclassified fields, raw owners, orphan
# back-references or hidden mutable-lambda state) AND a non-empty census —
# a report with no annotated sites means the pass went vacuous, because
# the core's sanctioned ephemerals and back-references are annotated.
echo "=== [state] hybridmr-analyze --group=state ==="
python3 "$repo/scripts/analyze/hybridmr-analyze" --group=state \
    --state-graph-report "$root/state_graph.json" \
    --sarif "$root/state.sarif" "$repo/src"
case $? in
  0)
    if grep -q '"annotated": true' "$root/state_graph.json" 2>/dev/null; then
      note_stage state PASS
    else
      echo "state: state-graph census lists no annotated sites"
      note_stage state "FAIL (empty census)"
    fi
    ;;
  1) note_stage state "FAIL (findings)" ;;
  *) note_stage state "FAIL (analyzer infrastructure error)" ;;
esac

# --- clang-tidy (needs the compile database from the release tree) ----------
if command -v clang-tidy > /dev/null 2>&1; then
  echo "=== [clang-tidy] src/ against compile database ==="
  if (cd "$repo" &&
      git ls-files 'src/**' | grep -E '\.(cc|cpp|cxx)$' |
      xargs clang-tidy -p "$root/release" --quiet); then
    note_stage clang-tidy PASS
  else
    note_stage clang-tidy FAIL
  fi
else
  note_stage clang-tidy "SKIP (clang-tidy not installed)"
fi

# --- thread-safety: clang -Werror=thread-safety over the annotations ---------
# Only clang implements the capability analysis behind the HMR_* macros
# (src/sim/thread_annotations.h); under gcc they compile out. Building the
# core library is enough — every annotated class lives in src/.
if command -v clang++ > /dev/null 2>&1; then
  echo "=== [thread-safety] clang++ -Werror=thread-safety build ==="
  if cmake -S "$repo" -B "$root/thread-safety" -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_CXX_COMPILER=clang++ -DHYBRIDMR_THREAD_SAFETY=ON &&
      cmake --build "$root/thread-safety" -j "$jobs" --target hybridmr; then
    note_stage thread-safety PASS
  else
    note_stage thread-safety FAIL
  fi
else
  note_stage thread-safety "SKIP (clang++ not installed)"
fi

# --- sanitizers, leak checking ENABLED --------------------------------------
# No ASAN_OPTIONS=detect_leaks=0 and no suppression file: teardown is
# leak-clean by construction (weak_ptr flow/ticker captures plus
# Simulation::shutdown()) and any regression must fail CI.
unset ASAN_OPTIONS LSAN_OPTIONS
build_and_test sanitize -DHYBRIDMR_SANITIZE=address,undefined || true

# --- tsan: concurrency harness + planted-race negative control ---------------
# TSan cannot share a tree with ASan/LSan, so this is its own build; only
# the two concurrency targets are built to keep the stage cheap. The probe
# MUST fail under TSan — a probe that exits 0 means the sanitizer is not
# instrumenting the build and the harness's clean run proves nothing.
echo "=== [tsan] ThreadSanitizer harness + race probe ==="
tsan_result=FAIL
if cmake -S "$repo" -B "$root/tsan" -DCMAKE_BUILD_TYPE=Release \
      -DHYBRIDMR_SANITIZE=thread &&
    cmake --build "$root/tsan" -j "$jobs" \
      --target concurrency_test tsan_race_probe; then
  if "$root/tsan/tests/concurrency_test"; then
    if "$root/tsan/tests/tsan_race_probe" > /dev/null 2>&1; then
      echo "tsan: race probe exited 0 — TSan missed the planted race" \
           "(uninstrumented build?)"
      tsan_result="FAIL (vacuous: planted race not caught)"
    else
      tsan_result=PASS
    fi
  else
    echo "tsan: concurrency_test reported races or failed"
  fi
fi
note_stage tsan "$tsan_result"

# --- runtime invariant audit -------------------------------------------------
build_and_test audit -DHYBRIDMR_AUDIT=ON || true

# --- chaos smoke: seeded fault schedule under sanitizers + audit --------------
# bench_faults runs the batch under machine crashes, bounded retries and an
# aborted live migration. It exits non-zero if any job hangs short of a
# terminal state or the faults stop biting; running it in the sanitize tree
# proves crash teardown is leak-clean, in the audit tree that every
# invariant checkpoint holds mid-recovery. Same-seed runs must produce
# byte-identical chaos reports.
echo "=== [chaos] bench_faults under sanitize + audit trees ==="
chaos_result=PASS
chaos_dir="$root/chaos"
mkdir -p "$chaos_dir"
for tree in sanitize audit; do
  cb="$root/$tree/bench/bench_faults"
  if [ ! -x "$cb" ]; then
    echo "chaos: $cb missing ($tree build failed?)"
    chaos_result=FAIL
    continue
  fi
  if ! ("$cb" --seed 7 --out "$chaos_dir/$tree-a.json" > /dev/null &&
        "$cb" --seed 7 --out "$chaos_dir/$tree-b.json" > /dev/null); then
    echo "chaos: bench_faults failed in the $tree tree"
    chaos_result=FAIL
    continue
  fi
  if ! cmp -s "$chaos_dir/$tree-a.json" "$chaos_dir/$tree-b.json"; then
    echo "chaos: same-seed chaos reports differ in the $tree tree"
    chaos_result=FAIL
  fi
done
note_stage chaos "$chaos_result"

# --- whatif: whole-engine fork suite ------------------------------------------
# The fork-equivalence oracle (tests/whatif_test) and the IPS restore-path
# regressions (tests/ips_regression_test) run in the sanitize tree — the
# fork/pipe/waitpid plumbing and the forked children themselves must be
# ASan/UBSan-clean — and in the audit tree, where the snapshot honesty
# guards (registered state domains, uncaptured named Rng streams) become
# live death tests. bench_whatif then sweeps forked capacity scenarios
# from one warmed engine: two same-seed sweeps must report the same
# deterministic fingerprint, and perf_gate.py holds the headline claim
# (a forked scenario >= 5x cheaper than a cold start) via BENCH_whatif.json.
echo "=== [whatif] whole-engine fork suite ==="
whatif_result=PASS
whatif_dir="$root/whatif"
mkdir -p "$whatif_dir"
for tree in sanitize audit; do
  for t in whatif_test ips_regression_test; do
    tb="$root/$tree/tests/$t"
    if [ ! -x "$tb" ]; then
      echo "whatif: $tb missing ($tree build failed?)"
      whatif_result=FAIL
      continue
    fi
    if ! "$tb" > /dev/null; then
      echo "whatif: $t failed in the $tree tree"
      whatif_result=FAIL
    fi
  done
done
wb="$root/release/bench/bench_whatif"
if [ -x "$wb" ]; then
  if "$wb" --seed 7 --scenarios 40 --cold 2 --fingerprint \
        > "$whatif_dir/sweep-a.txt" &&
      "$wb" --seed 7 --scenarios 40 --cold 2 --fingerprint \
        > "$whatif_dir/sweep-b.txt"; then
    fp_a="$(grep sweep_fingerprint "$whatif_dir/sweep-a.txt")"
    fp_b="$(grep sweep_fingerprint "$whatif_dir/sweep-b.txt")"
    if [ -z "$fp_a" ] || [ "$fp_a" != "$fp_b" ]; then
      echo "whatif: same-seed sweep fingerprints differ"
      echo "  a: $fp_a"
      echo "  b: $fp_b"
      whatif_result=FAIL
    fi
  else
    echo "whatif: bench_whatif sweep run failed"
    whatif_result=FAIL
  fi
  if ! ("$wb" --seed 42 --scenarios 120 --cold 8 \
          --out "$whatif_dir/whatif.json" > /dev/null &&
        python3 "$repo/scripts/perf_gate.py" check \
          --baseline "$repo/BENCH_whatif.json" \
          --run "$whatif_dir/whatif.json"); then
    echo "whatif: warmed-vs-cold gate failed"
    whatif_result=FAIL
  fi
else
  echo "whatif: $wb missing (release build failed?)"
  whatif_result=FAIL
fi
note_stage whatif "$whatif_result"

# --- determinism: same seed => byte-identical telemetry artifacts ------------
echo "=== [determinism] two same-seed quickstart runs ==="
qs="$root/release/examples/quickstart"
det_result=FAIL
if [ -x "$qs" ]; then
  rm -rf "$root/det-a" "$root/det-b"
  mkdir -p "$root/det-a" "$root/det-b"
  if (cd "$root/det-a" && "$qs" > stdout.txt 2>&1) &&
      (cd "$root/det-b" && "$qs" > stdout.txt 2>&1); then
    det_result=PASS
    for f in quickstart_trace.json quickstart_report.json \
             quickstart_report.csv stdout.txt; do
      if ! cmp -s "$root/det-a/$f" "$root/det-b/$f"; then
        echo "determinism: $f differs between same-seed runs"
        det_result=FAIL
      fi
    done
    # Same property with the profiler live: its wall-clock readings are
    # wall-only by construction, so profiled artifacts must also be
    # byte-identical run to run (and the report gains a "profile" section).
    rm -rf "$root/det-pa" "$root/det-pb"
    mkdir -p "$root/det-pa" "$root/det-pb"
    if (cd "$root/det-pa" && HYBRIDMR_PROFILE=1 "$qs" > stdout.txt 2>&1) &&
        (cd "$root/det-pb" && HYBRIDMR_PROFILE=1 "$qs" > stdout.txt 2>&1); then
      for f in quickstart_trace.json quickstart_report.json \
               quickstart_report.csv stdout.txt; do
        if ! cmp -s "$root/det-pa/$f" "$root/det-pb/$f"; then
          echo "determinism: $f differs between same-seed PROFILED runs"
          det_result=FAIL
        fi
      done
      if ! grep -q '"profile"' "$root/det-pa/quickstart_report.json"; then
        echo "determinism: profiled report lacks a profile section"
        det_result=FAIL
      fi
    else
      echo "determinism: profiled quickstart run failed"
      det_result=FAIL
    fi
  else
    echo "determinism: quickstart run failed"
  fi
else
  echo "determinism: quickstart binary missing ($qs)"
fi
# Snapshot fork-equivalence under the audit build: restore() replays the
# original run byte-for-byte while every runtime invariant checkpoint
# (event conservation, monotonic time, no orphaned handlers) is compiled
# in and armed across the snapshot/restore boundary.
snap="$root/audit/tests/snapshot_test"
if [ -x "$snap" ]; then
  echo "=== [determinism] snapshot fork-equivalence in the audit tree ==="
  if ! HYBRIDMR_AUDIT=1 "$snap" > /dev/null; then
    echo "determinism: snapshot fork-equivalence failed under audit"
    det_result=FAIL
  fi
else
  echo "determinism: $snap missing (audit build failed?)"
  det_result=FAIL
fi
note_stage determinism "$det_result"

# --- profile: profiler smoke under sanitizers ---------------------------------
# bench_scale scale/24 with the profiler and watchdog armed, in the ASan/
# UBSan tree: proves the instrumentation hot paths are sanitizer-clean,
# prints the hotspot table through scripts/profile_report.py, and checks
# that two same-seed profiled runs produce the same deterministic
# work-counter fingerprint. The generous wall budget only catches hangs.
echo "=== [profile] bench_scale --profile smoke in the sanitize tree ==="
profile_result=FAIL
profile_dir="$root/profile"
sb="$root/sanitize/bench/bench_scale"
if [ -x "$sb" ]; then
  mkdir -p "$profile_dir"
  if "$sb" --sizes 24 --out "$profile_dir/scale-a.json" \
        --profile "$profile_dir/scale-a.profile.json" \
        --heartbeat-s 30 --wall-budget-s 900 &&
      "$sb" --sizes 24 --out "$profile_dir/scale-b.json" \
        --profile "$profile_dir/scale-b.profile.json" \
        --heartbeat-s 30 --wall-budget-s 900 > /dev/null &&
      python3 "$repo/scripts/profile_report.py" top \
        "$profile_dir/scale-a.profile.json" &&
      fp_a="$(python3 "$repo/scripts/profile_report.py" fingerprint \
        "$profile_dir/scale-a.profile.json")" &&
      fp_b="$(python3 "$repo/scripts/profile_report.py" fingerprint \
        "$profile_dir/scale-b.profile.json")"; then
    if [ "$fp_a" = "$fp_b" ]; then
      profile_result=PASS
    else
      echo "profile: work-counter fingerprints differ between same-seed runs"
      echo "  a: $fp_a"
      echo "  b: $fp_b"
    fi
  fi
else
  echo "profile: $sb missing (sanitize build failed?)"
fi
note_stage profile "$profile_result"

# --- perf: bench runs gated against the committed baselines -------------------
# Uses the release tree built above. Micro benches run a filtered subset at a
# short min_time. The scale sweep runs the CI-gated 24/96/384 points with the
# profiler + watchdog armed: a hang at any point exits 3 (watchdog stall)
# instead of spinning forever, and the profile sibling file feeds
# perf_gate.py's hotspot + work-counter context when the gate is red. The
# committed baselines are min-of-N UNPROFILED measurements (see
# docs/PERFORMANCE.md); the profiler's overhead is well inside the scale
# entries' per-entry 2.5x tolerance (sized for shared-vCPU host-speed
# drift). Export HYBRIDMR_CI_SCALE_1536=1 to also smoke the
# 1536-PM point (hours on one core — opt-in for nightly/refresh runs).
echo "=== [perf] bench_micro + bench_scale vs committed baselines ==="
perf_result=FAIL
perf_dir="$root/perf"
micro="$root/release/bench/bench_micro"
scale="$root/release/bench/bench_scale"
if [ -x "$micro" ] && [ -x "$scale" ]; then
  mkdir -p "$perf_dir"
  if "$micro" \
        --benchmark_filter='BM_RecomputeBurst|BM_Waterfill|BM_EventQueue|BM_EventCancellation|BM_MachineRecompute|BM_EndToEndSmallJob' \
        --benchmark_min_time=0.05 \
        --benchmark_out="$perf_dir/micro.json" \
        --benchmark_out_format=json > /dev/null &&
      "$scale" --sizes 24,96,384 --out "$perf_dir/scale.json" \
        --profile "$perf_dir/scale.profile.json" \
        --heartbeat-s 60 --wall-budget-s 900 &&
      python3 "$repo/scripts/perf_gate.py" check \
        --baseline "$repo/BENCH_micro.json" --run "$perf_dir/micro.json" &&
      python3 "$repo/scripts/perf_gate.py" check \
        --baseline "$repo/BENCH_scale.json" --run "$perf_dir/scale.json"; then
    perf_result=PASS
  fi
  if [ "$perf_result" = PASS ] && [ -n "${HYBRIDMR_CI_SCALE_1536:-}" ]; then
    echo "=== [perf] opt-in scale/1536 smoke (HYBRIDMR_CI_SCALE_1536) ==="
    if ! "$scale" --sizes 1536 --out "$perf_dir/scale-1536.json" \
          --profile "$perf_dir/scale-1536.profile.json" \
          --heartbeat-s 300 --wall-budget-s 43200; then
      echo "perf: scale/1536 smoke failed (watchdog stall or crash)"
      perf_result="FAIL (scale/1536 smoke)"
    fi
  fi
else
  echo "perf: bench binaries missing (release build failed?)"
fi
note_stage perf "$perf_result"

# --- summary -----------------------------------------------------------------
echo
echo "=== ci.sh summary ==="
for i in "${!stage_names[@]}"; do
  printf '  %-12s %s\n' "${stage_names[$i]}" "${stage_results[$i]}"
done
if [ "$failures" -ne 0 ]; then
  echo "=== ci.sh: $failures stage(s) FAILED ==="
  exit 1
fi
echo "=== ci.sh: all stages green ==="
