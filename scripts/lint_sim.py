#!/usr/bin/env python3
"""Simulation-aware linter for the HybridMR codebase.

clang-tidy catches generic C++ bugs; this linter rejects the three
anti-pattern families that break a discrete-event simulator specifically,
none of which generic tooling can see (see docs/CORRECTNESS.md):

  wall-clock        Any source of host time or host randomness
                    (std::chrono clocks, time(), rand(), random_device,
                    gettimeofday, ...). Simulated components must express
                    time through sim::Simulation and randomness through
                    sim::Rng, or two same-seed runs diverge.

  unordered-iteration
                    Range-for / begin() iteration over a std::unordered_map
                    or std::unordered_set declared in the same file.
                    Unordered iteration order is implementation-defined and
                    varies with allocation history, so any scheduling
                    decision or export fed from it is nondeterministic.
                    Iterate a vector, a std::map, or sort first.

  simtime-eq        Raw == / != between SimTime values. SimTime is a
                    double; exact equality on derived times silently
                    depends on rounding. Use ordered comparisons, or the
                    sanctioned sim::same_time() helper when both operands
                    come from the same computation.

  eager-recompute   Direct Machine::recompute() calls outside the
                    sanctioned drain path (machine.h/.cc, realloc.cc).
                    Reallocation is deferred: mutations mark the machine
                    dirty and the per-simulation ReallocCoordinator drains
                    the dirty set once per event timestamp. Call
                    invalidate() after a mutation, settle_now() when a
                    test needs allocations synchronously, or read through
                    an accessor (they self-clean via ensure_clean()).
                    See docs/PERFORMANCE.md.

Suppression: append  // sim-lint: allow(<rule>)  to the offending line
(or the line directly above it) with a short justification nearby.

Usage:  lint_sim.py [--tests] DIR [DIR...]
Exit status is non-zero when any finding is reported (blocking CI stage).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".cc", ".cpp", ".cxx", ".h", ".hpp"}

ALLOW_RE = re.compile(r"//\s*sim-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# ---------------------------------------------------------------- rules ----

# Host time / host randomness. Word-ish boundaries so e.g. next_time( or
# mig_time( never match bare time(.
WALL_CLOCK_PATTERNS = [
    (re.compile(r"std::chrono::(system|steady|high_resolution)_clock"),
     "host clock (use sim::Simulation::now())"),
    (re.compile(r"(?<![\w:])gettimeofday\s*\("),
     "host clock (use sim::Simulation::now())"),
    (re.compile(r"(?<![\w.>:])(?:std::)?time\s*\(\s*(?:NULL|nullptr|0|&)"),
     "host clock (use sim::Simulation::now())"),
    (re.compile(r"(?<![\w.>:])(?:std::)?clock\s*\(\s*\)"),
     "host clock (use sim::Simulation::now())"),
    (re.compile(r"(?<![\w.>:])(?:std::)?s?rand\s*\("),
     "host randomness (use sim::Rng)"),
    (re.compile(r"std::random_device"),
     "host randomness (use sim::Rng)"),
]

# Declarations of unordered containers: captures the variable name that
# follows the (possibly nested) template argument list.
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<")
IDENT_RE = re.compile(r"\s*([A-Za-z_]\w*)\s*(?:=|;|\{|,|\))")

# SimTime variable declarations (members, locals, parameters).
SIMTIME_DECL_RE = re.compile(
    r"\b(?:sim::)?SimTime\s+(?:&\s*)?([A-Za-z_]\w*)\s*[=;,){]")

# Direct recompute() calls. Only the deferred-reallocation machinery itself
# may call recompute(); everything else goes through invalidate() /
# ensure_clean() / settle_now() so bursts coalesce (docs/PERFORMANCE.md).
EAGER_RECOMPUTE_RE = re.compile(r"(?:\.|->)\s*recompute\s*\(")
EAGER_RECOMPUTE_SANCTIONED = (
    "src/cluster/machine.h",
    "src/cluster/machine.cc",
    "src/cluster/realloc.h",
    "src/cluster/realloc.cc",
)


def template_tail_ident(text: str, start: int) -> str | None:
    """Given text and the index of '<' opening a template argument list,
    return the first identifier after the matching '>' (the declared
    variable name), or None when this is not a declaration."""
    depth = 0
    i = start
    while i < len(text):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                m = IDENT_RE.match(text, i + 1)
                return m.group(1) if m else None
        elif c in ";{":
            return None
        i += 1
    return None


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def allowed_rules(lines: list[str], idx: int) -> set[str]:
    """Rules suppressed for line idx (same line or the line above)."""
    rules: set[str] = set()
    for probe in (idx, idx - 1):
        if 0 <= probe < len(lines):
            m = ALLOW_RE.search(lines[probe])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def strip_strings_and_comments(line: str) -> str:
    """Blanks out string/char literals and // comments (keeps length)."""
    out = []
    in_str = None
    i = 0
    while i < len(line):
        c = line[i]
        if in_str:
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            out.append(" ")
            if c == in_str:
                in_str = None
        elif c in "\"'":
            in_str = c
            out.append(" ")
        elif c == "/" and line[i:i + 2] == "//":
            break
        else:
            out.append(c)
        i += 1
    return "".join(out)


def lint_file(path: Path) -> list[Finding]:
    raw_lines = path.read_text(encoding="utf-8").splitlines()
    code_lines = [strip_strings_and_comments(l) for l in raw_lines]
    findings: list[Finding] = []
    recompute_sanctioned = str(path.as_posix()).endswith(
        EAGER_RECOMPUTE_SANCTIONED)

    # Pass 1: collect per-file declarations.
    unordered_names: set[str] = set()
    simtime_names: set[str] = set()
    for code in code_lines:
        for m in UNORDERED_DECL_RE.finditer(code):
            name = template_tail_ident(code, m.end() - 1)
            if name:
                unordered_names.add(name)
        for m in SIMTIME_DECL_RE.finditer(code):
            simtime_names.add(m.group(1))

    unordered_iter_res = [
        # for (... : container) — also matches members (foo.bar_, p->m_).
        re.compile(r"for\s*\([^;)]*:\s*[\w.\->]*\b(%s)\s*\)" %
                   "|".join(map(re.escape, sorted(unordered_names))))
        if unordered_names else None,
        re.compile(r"\b(%s)\s*\.\s*(?:c?begin|c?end)\s*\(" %
                   "|".join(map(re.escape, sorted(unordered_names))))
        if unordered_names else None,
    ]
    # (?!\s*[.([]|\s*->) keeps member access out: `t.value == x` compares
    # the member, not the SimTime.
    simtime_eq_re = (
        re.compile(
            r"(\b(%(n)s)\b(?!\s*[.(\[]|\s*->)\s*[=!]=(?!=)"
            r"|[=!]=\s*\b(%(n)s)\b(?!\s*[.(\[]|\s*->))" %
            {"n": "|".join(map(re.escape, sorted(simtime_names)))})
        if simtime_names else None)

    # Pass 2: flag uses.
    for idx, code in enumerate(code_lines):
        allow = allowed_rules(raw_lines, idx)
        lineno = idx + 1

        if "wall-clock" not in allow:
            for pattern, why in WALL_CLOCK_PATTERNS:
                if pattern.search(code):
                    findings.append(Finding(
                        path, lineno, "wall-clock",
                        f"nondeterministic {why}"))

        if "unordered-iteration" not in allow:
            for pattern in unordered_iter_res:
                if pattern and pattern.search(code):
                    findings.append(Finding(
                        path, lineno, "unordered-iteration",
                        "iteration over an unordered container is "
                        "order-nondeterministic; iterate a vector/std::map "
                        "or sort first"))
                    break

        if ("eager-recompute" not in allow and not recompute_sanctioned
                and EAGER_RECOMPUTE_RE.search(code)):
            findings.append(Finding(
                path, lineno, "eager-recompute",
                "direct recompute() outside the drain path defeats "
                "coalescing; use invalidate()/settle_now() or read through "
                "an accessor (see docs/PERFORMANCE.md)"))

        if "simtime-eq" not in allow and simtime_eq_re:
            m = simtime_eq_re.search(code)
            # Skip `==` that is part of <=/>=/!==... handled by regex, and
            # skip pointer/null checks on the same line only when the match
            # itself is the SimTime identifier.
            if m:
                findings.append(Finding(
                    path, lineno, "simtime-eq",
                    "exact ==/!= on SimTime doubles; use ordered "
                    "comparisons or sim::same_time()"))

    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("dirs", nargs="+", type=Path,
                        help="directories (or files) to lint")
    args = parser.parse_args()

    files: list[Path] = []
    for d in args.dirs:
        if d.is_file():
            files.append(d)
        else:
            files.extend(p for p in sorted(d.rglob("*"))
                         if p.suffix in CXX_SUFFIXES)
    if not files:
        print("lint_sim.py: no C++ sources found", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f))

    for finding in findings:
        print(finding)
    print(f"lint_sim.py: {len(files)} files, {len(findings)} findings")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
