#!/usr/bin/env python3
"""Simulation-determinism linter — compatibility wrapper.

The rule implementations moved into the multi-pass analyzer at
scripts/analyze/ (see docs/ANALYSIS.md); this wrapper keeps the historic
CLI (`lint_sim.py DIR [DIR...]`, nonzero exit on findings) and runs the
determinism group only:

  wall-clock              host time / host randomness in simulated code
  unordered-iteration     range-for / begin() over unordered containers
  unordered-accumulation  order-sensitive reduction inside such a loop
  simtime-eq              exact ==/!= between SimTime doubles
  eager-recompute         Machine::recompute() outside the drain path

Suppression syntax is unchanged: `// sim-lint: allow(<rule>)` on the
offending line or the line directly above. For the full suite
(dimensions, layering, capture-lifetime) run
scripts/analyze/hybridmr-analyze directly.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ANALYZER = Path(__file__).resolve().parent / "analyze" / "hybridmr-analyze"


def main() -> int:
    args = sys.argv[1:]
    if not args or args[0] in ("-h", "--help"):
        print(__doc__.strip())
        return 0 if args else 2
    cmd = [sys.executable, str(ANALYZER),
           "--engine", "tokens", "--rules", "determinism", *args]
    return subprocess.call(cmd)


if __name__ == "__main__":
    sys.exit(main())
