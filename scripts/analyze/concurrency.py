"""Concurrency-readiness rules for the parallel-sim-core work.

  shared-mutable-state    census of static-storage mutable data in src/:
                          namespace/function/class `static` and namespace-
                          scope `inline` variables that are not const.
                          Intentionally shared sites are sanctioned with a
                          thread-safety annotation (HMR_GUARDED_BY on the
                          declaration) or an `// hmr-shared(<capability>)`
                          marker, and land in the shared-state report
                          instead of the findings list.
  rng-discipline          every random draw must flow through a named
                          sim::Rng stream: constructing a std::<engine> or
                          std::*_distribution anywhere but src/sim/rng.h
                          makes per-shard streams under the parallel core
                          non-derivable. (Host entropy — rand(),
                          std::random_device — is already rejected by the
                          determinism pass, rule wall-clock.)
  mutation-outside-drain  direct calls to the allocation-engine mutators
                          (Workload::settle/apply_allocation/finish,
                          ReallocCoordinator::mark_dirty/...) outside the
                          Machine/ReallocCoordinator drain path. The dirty
                          set is the planned parallel work list; writes
                          that bypass it would race with the drain.
  handler-cross-machine   heuristic map of event handlers (lambdas handed
                          to at()/after()/every()/add_flush_hook() or
                          installed as on_complete) that touch state on
                          more than one machine — the conservative
                          synchronization boundary set for sharding.
                          Reviewed handlers are acknowledged with an
                          `// hmr-cross-machine(<note>)` marker; they stay
                          in the report but stop being findings.

shared-mutable-state and handler-cross-machine are src/-only census
passes; rng-discipline and mutation-outside-drain apply to every analyzed
file (a test constructing its own engine is as nondeterministic as a
scheduler doing it).

Besides findings, the passes feed the machine-readable shared-state
report (--shared-state-report): every annotated shared site and every
cross-machine handler, keyed by layer. docs/CONCURRENCY.md documents the
format; the report is the design input for the event-loop sharding PR.
"""

from __future__ import annotations

import re

from findings import Finding, SourceFile

# --- shared-mutable-state ---------------------------------------------------

# `static <type> <name> (= | ; | {` with const/constexpr excluded. The type
# part cannot cross '(' so function declarations/definitions never match;
# multi-line declarations are out of (token-level) reach and accepted as a
# documented limitation.
STATIC_DECL_RE = re.compile(
    r"^\s*(?:inline\s+)?static\s+(?:thread_local\s+)?"
    r"(?!const\b|constexpr\b)"
    r"([\w:<>,*&\s]+?)\s+([A-Za-z_]\w*)\s*(?:=|;|\{)")
# Namespace-scope `inline` variables (C++17): mutable globals in headers.
INLINE_VAR_RE = re.compile(
    r"^\s*inline\s+(?!const\b|constexpr\b|namespace\b|static\b)"
    r"([\w:<>,*&\s]+?)\s+([A-Za-z_]\w*)\s*(?:=|;|\{)")
# thread_local is still shared state for the census: the parallel core pins
# nothing to threads yet, so per-thread copies would silently fork results.
THREAD_LOCAL_DECL_RE = re.compile(
    r"^\s*(?:static\s+)?thread_local\s+(?:static\s+)?"
    r"(?!const\b|constexpr\b)"
    r"([\w:<>,*&\s]+?)\s+([A-Za-z_]\w*)\s*(?:=|;|\{)")

GUARDED_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:HMR_GUARDED_BY|HMR_PT_GUARDED_BY)\s*\(([^)]*)\)")
# Long declarations wrap before the annotation; the identifier is then the
# last word of the previous line.
GUARDED_CONT_RE = re.compile(
    r"^\s*(?:HMR_GUARDED_BY|HMR_PT_GUARDED_BY)\s*\(([^)]*)\)")
TAIL_IDENT_RE = re.compile(r"([A-Za-z_]\w*)\s*$")
SHARED_MARKER_RE = re.compile(r"//\s*hmr-shared\(([^)]*)\)")
CROSS_MARKER_RE = re.compile(r"//\s*hmr-cross-machine\(([^)]*)\)")

SHARED_RULE = "shared-mutable-state"
RNG_RULE = "rng-discipline"
MUTATION_RULE = "mutation-outside-drain"
HANDLER_RULE = "handler-cross-machine"


def _marker(source: SourceFile, regex: re.Pattern, lineno: int) -> str | None:
    """Marker payload on the 1-based line or in the contiguous //-comment
    block directly above it, else None."""
    idx = lineno - 1
    if 0 <= idx < len(source.raw):
        m = regex.search(source.raw[idx])
        if m:
            return m.group(1).strip()
    probe = idx - 1
    while 0 <= probe < len(source.raw) \
            and source.raw[probe].lstrip().startswith("//"):
        m = regex.search(source.raw[probe])
        if m:
            return m.group(1).strip()
        probe -= 1
    return None


def scan_shared_state(source: SourceFile) -> tuple[list[Finding], list[dict]]:
    """Census pass. Returns (findings, shared-site report entries)."""
    findings: list[Finding] = []
    sites: list[dict] = []
    if not source.rel.startswith("src/"):
        return findings, sites

    for idx, code in enumerate(source.code):
        lineno = idx + 1
        if code.lstrip().startswith("#"):
            continue  # the macro definitions themselves are not members

        # Annotated members are intentional shared state by definition:
        # they go straight into the report, never the findings list.
        for m in GUARDED_RE.finditer(code):
            sites.append({
                "file": source.rel, "line": lineno, "identifier": m.group(1),
                "kind": "guarded-member",
                "capability": m.group(2).strip(), "annotated": True,
            })
        cont = GUARDED_CONT_RE.search(code)
        if cont and idx > 0:
            prev = TAIL_IDENT_RE.search(source.code[idx - 1])
            if prev:
                sites.append({
                    "file": source.rel, "line": lineno - 1,
                    "identifier": prev.group(1), "kind": "guarded-member",
                    "capability": cont.group(1).strip(), "annotated": True,
                })

        decl = (STATIC_DECL_RE.search(code) or INLINE_VAR_RE.search(code)
                or THREAD_LOCAL_DECL_RE.search(code))
        if decl is None:
            continue
        name = decl.group(2)
        marker = _marker(source, SHARED_MARKER_RE, lineno)
        if marker is not None or GUARDED_RE.search(code):
            sites.append({
                "file": source.rel, "line": lineno, "identifier": name,
                "kind": "static",
                "capability": marker if marker is not None else "",
                "annotated": True,
            })
            continue
        if SHARED_RULE in source.allowed(lineno):
            continue
        findings.append(Finding(
            rule=SHARED_RULE, file=source.rel, line=lineno, identifier=name,
            message=(
                f"mutable static-storage data '{name}' is shared state "
                "under the parallel core; guard it (HMR_GUARDED_BY), mark "
                "it intentional (// hmr-shared(<capability>)) or make it "
                "per-simulation")))
        sites.append({
            "file": source.rel, "line": lineno, "identifier": name,
            "kind": "static", "capability": "", "annotated": False,
        })
    return findings, sites


# --- rng-discipline ---------------------------------------------------------

RNG_SANCTIONED = ("src/sim/rng.h",)
RNG_PATTERNS = [
    (re.compile(
        r"\bstd::(mt19937(?:_64)?|minstd_rand0?|default_random_engine"
        r"|ranlux(?:24|48)(?:_base)?|knuth_b|mersenne_twister_engine"
        r"|linear_congruential_engine|subtract_with_carry_engine"
        r"|discard_block_engine|independent_bits_engine"
        r"|shuffle_order_engine)\b"),
     "raw random engine"),
    (re.compile(r"\bstd::\w+_distribution\b"), "raw distribution"),
]


def scan_rng(source: SourceFile) -> list[Finding]:
    findings: list[Finding] = []
    if source.rel in RNG_SANCTIONED:
        return findings
    for idx, code in enumerate(source.code):
        lineno = idx + 1
        if RNG_RULE in source.allowed(lineno):
            continue
        for pattern, what in RNG_PATTERNS:
            m = pattern.search(code)
            if m:
                findings.append(Finding(
                    rule=RNG_RULE, file=source.rel, line=lineno,
                    identifier=m.group(0).removeprefix("std::"),
                    message=(
                        f"{what} outside src/sim/rng.h; draw through a "
                        "named sim::Rng stream so per-shard streams stay "
                        "derivable")))
    return findings


# --- mutation-outside-drain -------------------------------------------------

# The drain path: Machine::recompute/ensure_clean and the coordinator own
# every direct write to allocation state; Workload implements the mutators.
MUTATION_SANCTIONED = (
    "src/cluster/machine.h",
    "src/cluster/machine.cc",
    "src/cluster/workload.h",
    "src/cluster/workload.cc",
    "src/cluster/realloc.h",
    "src/cluster/realloc.cc",
)
MUTATION_RE = re.compile(
    r"(?:\.|->)\s*(settle|apply_allocation|finish|mark_dirty"
    r"|mark_sample_pending)\s*\(")


def scan_mutation(source: SourceFile) -> list[Finding]:
    findings: list[Finding] = []
    if source.rel in MUTATION_SANCTIONED:
        return findings
    for idx, code in enumerate(source.code):
        lineno = idx + 1
        if MUTATION_RULE in source.allowed(lineno):
            continue
        for m in MUTATION_RE.finditer(code):
            findings.append(Finding(
                rule=MUTATION_RULE, file=source.rel, line=lineno,
                identifier=m.group(1),
                message=(
                    f"direct {m.group(1)}() writes allocation state "
                    "outside the ReallocCoordinator drain path; mutate via "
                    "invalidate()/ensure_clean() so the dirty-set (the "
                    "parallel work list) sees it")))
    return findings


# --- handler-cross-machine --------------------------------------------------

HANDLER_INTRO_RE = re.compile(
    r"(?:\b(?:at|after|every|add_flush_hook)\s*\(|\bon_complete\s*=)")
MACHINE_DECL_RE = re.compile(
    r"\b(?:cluster::)?(?:Machine|VirtualMachine)\s*[*&]\s*([a-z_]\w*)")
HOST_ASSIGN_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*=\s*[\w.>()-]*host_machine\s*\(\)")
HOST_RECV_RE = re.compile(
    r"\b([A-Za-z_]\w*)(?:\(\))?\s*(?:->|\.)\s*host_machine\s*\(")


def _lambda_body(source: SourceFile, intro_idx: int,
                 intro_col: int) -> tuple[str, int] | None:
    """Text of the first lambda body opening at/after (intro_idx, intro_col)
    and the number of lines it spans, or None when no lambda follows within
    two lines (named callbacks / bind expressions are out of scope)."""
    # Locate the lambda introducer '['.
    start_idx, start_col = None, None
    for idx in range(intro_idx, min(intro_idx + 3, len(source.code))):
        col = source.code[idx].find(
            "[", intro_col if idx == intro_idx else 0)
        if col != -1:
            start_idx, start_col = idx, col
            break
    if start_idx is None:
        return None
    # Walk to the body's '{' then brace-match to its end.
    depth = 0
    in_body = False
    chunks: list[str] = []
    idx, col = start_idx, start_col
    for idx in range(start_idx, min(start_idx + 200, len(source.code))):
        line = source.code[idx]
        begin = col if idx == start_idx else 0
        for j in range(begin, len(line)):
            c = line[j]
            if not in_body:
                if c == "{":
                    in_body = True
                    depth = 1
                elif c == ";":
                    return None  # statement ended before a body appeared
            else:
                if c == "{":
                    depth += 1
                elif c == "}":
                    depth -= 1
                    if depth == 0:
                        chunks.append(line[:j])
                        return "\n".join(chunks), idx - intro_idx + 1
        if in_body:
            chunks.append(line)
    return None


def scan_handlers(source: SourceFile) -> tuple[list[Finding], list[dict]]:
    """Heuristic cross-machine-handler map. Returns (findings, report)."""
    findings: list[Finding] = []
    handlers: list[dict] = []
    if not source.rel.startswith("src/"):
        return findings, handlers

    machine_names: set[str] = set()
    for code in source.code:
        for m in MACHINE_DECL_RE.finditer(code):
            machine_names.add(m.group(1))
        for m in HOST_ASSIGN_RE.finditer(code):
            machine_names.add(m.group(1))
    names_re = (re.compile(r"\b(%s)\b" % "|".join(
        map(re.escape, sorted(machine_names)))) if machine_names else None)

    for idx, code in enumerate(source.code):
        lineno = idx + 1
        for intro in HANDLER_INTRO_RE.finditer(code):
            body = _lambda_body(source, idx, intro.end())
            if body is None:
                continue
            text, _span = body
            touched: set[str] = set()
            if names_re is not None:
                for m in names_re.finditer(text):
                    touched.add(m.group(1))
            for m in HOST_RECV_RE.finditer(text):
                touched.add(f"host({m.group(1)})")
            if re.search(r"(?<![\w.>])host_machine\s*\(", text):
                touched.add("host(this)")
            if len(touched) < 2:
                continue
            ident = "+".join(sorted(touched))
            acknowledged = _marker(source, CROSS_MARKER_RE, lineno)
            handlers.append({
                "file": source.rel, "line": lineno,
                "machines": sorted(touched),
                "acknowledged": acknowledged is not None,
                "note": acknowledged or "",
            })
            if acknowledged is not None:
                continue
            if HANDLER_RULE in source.allowed(lineno):
                continue
            findings.append(Finding(
                rule=HANDLER_RULE, file=source.rel, line=lineno,
                identifier=ident,
                message=(
                    f"event handler touches state on multiple machines "
                    f"({ident}); it needs conservative synchronization "
                    "under a sharded event loop — review it and mark "
                    "// hmr-cross-machine(<note>)")))
    return findings, handlers


# Rule catalog for --list-rules / --sarif.
RULES = {
    SHARED_RULE: (
        "mutable static-storage data in src/ without a capability "
        "annotation or // hmr-shared(<capability>) marker"),
    RNG_RULE: (
        "std random engine/distribution constructed outside src/sim/rng.h "
        "(per-shard streams become non-derivable)"),
    MUTATION_RULE: (
        "allocation-engine mutator called outside the "
        "Machine/ReallocCoordinator drain path"),
    HANDLER_RULE: (
        "event handler touching state on multiple machines without an "
        "// hmr-cross-machine(<note>) acknowledgment"),
}
