"""capture-lifetime: strong self-captures in event-queue callbacks.

A lambda handed to Simulation/EventQueue ``at`` / ``after`` / ``every``
outlives the statement that registered it. Three strong-capture shapes
are latent use-after-free / leak bugs there, and all three have an
established weak-capture idiom in this codebase (machine.cc,
engine.cc, dfsio.cc: ``std::weak_ptr<T> weak = strong;`` capture ``weak``,
lock inside):

  1. ``shared_from_this()`` in the capture list — the event queue keeps
     the object alive arbitrarily long; teardown leaks until the event
     fires. Capture ``weak_from_this()`` and lock.
  2. by-copy capture of a variable declared as a shared_ptr in the same
     file — same ownership extension, same fix.
  3. a ``this``-capturing lambda registered with ``every()`` whose
     PeriodicHandle is discarded — the ticker can never be cancelled, so
     it keeps firing into ``this`` after the owner is destroyed.

``at``/``after`` with plain ``this`` are not flagged: one-shot events on
simulation-lifetime objects are the simulator's bread and butter.
"""

from __future__ import annotations

import re

from findings import Finding, SourceFile

RULE = "capture-lifetime"

REGISTER_RE = re.compile(r"(?:\.|->)\s*(at|after|every)\s*\(")
# Declarations that make a name shared-owning in this file.
SHARED_DECL_RES = [
    re.compile(r"\bstd::shared_ptr\s*<[^;=]*>\s+([A-Za-z_]\w*)\s*[=;({]"),
    re.compile(r"\bWorkloadPtr\s+([A-Za-z_]\w*)\s*[=;({]"),
    re.compile(r"\b(?:const\s+)?auto&?\s+([A-Za-z_]\w*)\s*=\s*"
               r"std::make_shared\s*<"),
]
CAPTURE_ITEM_RE = re.compile(r"[&=]?\s*([A-Za-z_]\w*(?:\s*\(\s*\))?)")


def shared_names(source: SourceFile) -> set[str]:
    names: set[str] = set()
    for code in source.code:
        for pattern in SHARED_DECL_RES:
            for m in pattern.finditer(code):
                names.add(m.group(1))
    return names


def _line_of(offsets: list[int], pos: int) -> int:
    """1-based line for a position in the joined text."""
    lo, hi = 0, len(offsets) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if offsets[mid] <= pos:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1


def scan(source: SourceFile) -> list[Finding]:
    if not source.rel.startswith("src/"):
        return []
    shared = shared_names(source)
    text = "\n".join(source.code)
    offsets = [0]
    for line in source.code:
        offsets.append(offsets[-1] + len(line) + 1)
    offsets.pop()

    findings: list[Finding] = []
    for m in REGISTER_RE.finditer(text):
        method = m.group(1)
        open_paren = m.end() - 1
        # Walk the argument list to its closing paren.
        depth = 0
        end = open_paren
        for i in range(open_paren, min(len(text), open_paren + 4000)):
            c = text[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    end = i
                    break
        args = text[open_paren + 1:end]
        # First lambda capture list inside the arguments.
        cap = re.search(r"\[([^\]]*)\]", args)
        if not cap:
            continue
        cap_pos = open_paren + 1 + cap.start()
        lineno = _line_of(offsets, cap_pos)
        if RULE in source.allowed(lineno):
            continue
        items = [s.strip() for s in cap.group(1).split(",") if s.strip()]

        captured_this = False
        for item in items:
            bare = item.lstrip("&=").strip()
            if item == "this":
                captured_this = True
            if "shared_from_this" in item:
                findings.append(Finding(
                    rule=RULE, file=source.rel, line=lineno,
                    identifier="shared_from_this",
                    message=(
                        f"lambda registered with {method}() captures "
                        "shared_from_this(), extending the object's "
                        "lifetime until the event fires; capture "
                        "weak_from_this() and lock inside")))
                continue
            if not item.startswith("&") and bare in shared:
                findings.append(Finding(
                    rule=RULE, file=source.rel, line=lineno,
                    identifier=bare,
                    message=(
                        f"lambda registered with {method}() captures "
                        f"shared_ptr '{bare}' by value; convert to "
                        "std::weak_ptr before the capture and lock inside "
                        "(see machine.cc / engine.cc for the idiom)")))

        if method == "every" and captured_this:
            # Is the registration's PeriodicHandle used? Look back to the
            # start of the statement: an '=' or 'return' means it is.
            stmt_start = max(text.rfind(ch, 0, m.start())
                             for ch in ";{}")
            prefix = text[stmt_start + 1:m.start()]
            # Strip the receiver expression (identifier chains) off the end.
            prefix = re.sub(r"[\w:.>()\-\s]+$", "", prefix)
            used = ("=" in prefix or "return" in text[stmt_start + 1:m.start()])
            if not used:
                findings.append(Finding(
                    rule=RULE, file=source.rel, line=lineno,
                    identifier="this",
                    message=(
                        "every() with a this-capturing lambda discards the "
                        "PeriodicHandle, so the ticker can never be "
                        "cancelled and outlives the object; store the "
                        "handle and cancel it in the destructor/stop()")))
    return findings


# Rule catalog for --list-rules / --sarif.
RULES = {
    "capture-lifetime": (
        "strong self-capture (shared_from_this / by-copy shared_ptr / "
        "discarded every() handle) in an event-queue callback"),
}
