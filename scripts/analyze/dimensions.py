"""dim-raw-double: dimension hygiene for quantity-like declarations.

src/sim/units.h provides zero-overhead strong types (sim::MegaBytes,
sim::MBps, sim::Watts, sim::Joules, sim::Duration, ...) whose operators
only admit dimensionally valid arithmetic. A raw ``double`` parameter or
field whose *name* claims a unit (``block_mb``, ``bw_mbps``,
``idle_watts``, ``timeout_secs``, ``deadline``...) re-opens the door to
the mixed-unit bugs the types exist to prevent, so new ones are rejected.

Pre-migration declarations live in the committed baseline
(scripts/analyze/baseline.json) keyed by rule|file|identifier; they are
reported only with --no-baseline. New code must use the strong types.
"""

from __future__ import annotations

import re

from findings import Finding, SourceFile

# Suffix claims a unit. Trailing underscores (members) are stripped first.
UNIT_SUFFIX_RE = re.compile(
    r"(?:_mb|_mbps|_gbps|_kbps|_watts|_joules|_wh|_kwh|_secs|_seconds)$")
# Name claims a time dimension outright.
UNIT_WORD_RE = re.compile(r"(?:deadline|interval|duration)")

# double/float declarations:  [const] double name [=;,)}...]
#   - not preceded by identifier chars / :: / . / -> / < (rules out
#     std::vector<double> handled separately, member access, etc.)
#   - not followed by '(' (function returning double)
DECL_RE = re.compile(
    r"(?<![\w:.>])(?:double|float)\s+(?:[&*]\s*)?([A-Za-z_]\w*)\s*(?=[=;,)\]{]|$)")
# Containers of raw doubles with a unit-claiming name are the same defect:
#   std::vector<double> sizes_mb;
TEMPLATE_DECL_RE = re.compile(
    r"(?:double|float)\s*>\s*(?:[&*]\s*)?([A-Za-z_]\w*)\s*(?=[=;,)\]{]|$)")

RULE = "dim-raw-double"


def unit_like(name: str) -> bool:
    bare = name.rstrip("_")
    return bool(UNIT_SUFFIX_RE.search(bare) or UNIT_WORD_RE.search(bare))


def scan(source: SourceFile) -> list[Finding]:
    if not source.rel.startswith("src/"):
        return []
    if source.rel == "src/sim/units.h":
        return []  # the strong types' own implementation
    findings: list[Finding] = []
    for idx, code in enumerate(source.code):
        lineno = idx + 1
        if RULE in source.allowed(lineno):
            continue
        for pattern in (DECL_RE, TEMPLATE_DECL_RE):
            for m in pattern.finditer(code):
                name = m.group(1)
                if not unit_like(name):
                    continue
                findings.append(Finding(
                    rule=RULE, file=source.rel, line=lineno,
                    identifier=name,
                    message=(
                        f"raw double '{name}' is named like a quantity; use "
                        "the strong type from sim/units.h (sim::MegaBytes, "
                        "sim::MBps, sim::Watts, sim::Joules, sim::Duration, "
                        "...) so unit mixing is a compile error")))
    return findings


def scan_libclang(cindex, tu, source: SourceFile) -> list[Finding]:
    """AST variant: parameter/field/variable declarations of canonical
    double/float type with a unit-claiming spelling."""
    if not source.rel.startswith("src/") or source.rel == "src/sim/units.h":
        return []
    kinds = {cindex.CursorKind.PARM_DECL, cindex.CursorKind.FIELD_DECL,
             cindex.CursorKind.VAR_DECL}
    findings: list[Finding] = []
    want = source.path.resolve().as_posix()
    for cursor in tu.cursor.walk_preorder():
        if cursor.kind not in kinds or not cursor.location.file:
            continue
        if cursor.location.file.name != want:
            continue
        canonical = cursor.type.get_canonical().spelling
        if canonical not in ("double", "float") and not re.search(
                r"<\s*(?:double|float)\s*>", canonical):
            continue
        name = cursor.spelling or ""
        if not unit_like(name):
            continue
        lineno = cursor.location.line
        if RULE in source.allowed(lineno):
            continue
        findings.append(Finding(
            rule=RULE, file=source.rel, line=lineno, identifier=name,
            message=(
                f"raw double '{name}' is named like a quantity; use the "
                "strong type from sim/units.h so unit mixing is a compile "
                "error")))
    return findings


# Rule catalog for --list-rules / --sarif.
RULES = {
    "dim-raw-double": (
        "raw double/float declaration whose name claims a unit; use the "
        "strong types from src/sim/units.h"),
}
