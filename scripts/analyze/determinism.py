"""Determinism rules (folded in from scripts/lint_sim.py) plus the
unordered-accumulation check.

  wall-clock             host time / host randomness in simulated code
  unordered-iteration    range-for / begin() over unordered containers
  unordered-accumulation order-sensitive reduction (+=, push_back, ...)
                         inside a loop over an unordered container — fires
                         even where the iteration itself was allowed,
                         because a sorted-later loop is fine but a float
                         sum or an appended list is already order-tainted
  simtime-eq             exact ==/!= between SimTime doubles
  eager-recompute        Machine::recompute() outside the drain path

These apply to every analyzed file (src, tests, bench, examples), unlike
the src/-only dimension/layering/capture passes: a nondeterministic test
is as flaky as a nondeterministic scheduler.
"""

from __future__ import annotations

import re

from findings import Finding, SourceFile

WALL_CLOCK_PATTERNS = [
    (re.compile(r"std::chrono::(system|steady|high_resolution)_clock"),
     "host clock (use sim::Simulation::now())"),
    (re.compile(r"(?<![\w:])gettimeofday\s*\("),
     "host clock (use sim::Simulation::now())"),
    (re.compile(r"(?<![\w.>:])(?:std::)?time\s*\(\s*(?:NULL|nullptr|0|&)"),
     "host clock (use sim::Simulation::now())"),
    (re.compile(r"(?<![\w.>:])(?:std::)?clock\s*\(\s*\)"),
     "host clock (use sim::Simulation::now())"),
    (re.compile(r"(?<![\w.>:])(?:std::)?s?rand\s*\("),
     "host randomness (use sim::Rng)"),
    (re.compile(r"std::random_device"),
     "host randomness (use sim::Rng)"),
]

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
IDENT_RE = re.compile(r"\s*([A-Za-z_]\w*)\s*(?:=|;|\{|,|\))")
SIMTIME_DECL_RE = re.compile(
    r"\b(?:sim::)?SimTime\s+(?:&\s*)?([A-Za-z_]\w*)\s*[=;,){]")
EAGER_RECOMPUTE_RE = re.compile(r"(?:\.|->)\s*recompute\s*\(")
EAGER_RECOMPUTE_SANCTIONED = (
    "src/cluster/machine.h",
    "src/cluster/machine.cc",
    "src/cluster/realloc.h",
    "src/cluster/realloc.cc",
)
# The profiler is the one src/ module whose job IS reading the host clock
# (scoped wall timers, watchdog heartbeats). Its wall readings never feed
# simulation state — RunReport only serializes its deterministic work
# counters — so the wall-clock rule is waived for these two files and
# nowhere else. Every other rule still applies to them.
WALL_CLOCK_SANCTIONED = (
    "src/telemetry/profiler.h",
    "src/telemetry/profiler.cc",
)
ACCUMULATE_RE = re.compile(
    r"(?:\+=|-=|\*=|/=|\.\s*push_back\s*\(|\.\s*emplace_back\s*\()")


def template_tail_ident(text: str, start: int) -> str | None:
    """First identifier after the template argument list opening at
    ``start`` (the declared variable name), or None."""
    depth = 0
    i = start
    while i < len(text):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                m = IDENT_RE.match(text, i + 1)
                return m.group(1) if m else None
        elif c in ";{":
            return None
        i += 1
    return None


def scan(source: SourceFile) -> list[Finding]:
    findings: list[Finding] = []
    recompute_sanctioned = source.rel in EAGER_RECOMPUTE_SANCTIONED
    wall_clock_sanctioned = source.rel in WALL_CLOCK_SANCTIONED

    unordered_names: set[str] = set()
    simtime_names: set[str] = set()
    for code in source.code:
        for m in UNORDERED_DECL_RE.finditer(code):
            name = template_tail_ident(code, m.end() - 1)
            if name:
                unordered_names.add(name)
        for m in SIMTIME_DECL_RE.finditer(code):
            simtime_names.add(m.group(1))

    names_alt = "|".join(map(re.escape, sorted(unordered_names)))
    unordered_for_re = (re.compile(
        r"for\s*\([^;)]*:\s*[\w.\->]*\b(%s)\s*\)" % names_alt)
        if unordered_names else None)
    unordered_begin_re = (re.compile(
        r"\b(%s)\s*\.\s*(?:c?begin|c?end)\s*\(" % names_alt)
        if unordered_names else None)
    simtime_eq_re = (re.compile(
        r"(\b(%(n)s)\b(?!\s*[.(\[]|\s*->)\s*[=!]=(?!=)"
        r"|[=!]=\s*\b(%(n)s)\b(?!\s*[.(\[]|\s*->))" %
        {"n": "|".join(map(re.escape, sorted(simtime_names)))})
        if simtime_names else None)

    for idx, code in enumerate(source.code):
        lineno = idx + 1
        allow = source.allowed(lineno)

        if not wall_clock_sanctioned and "wall-clock" not in allow:
            for pattern, why in WALL_CLOCK_PATTERNS:
                if pattern.search(code):
                    findings.append(Finding(
                        rule="wall-clock", file=source.rel, line=lineno,
                        identifier=pattern.pattern[:24],
                        message=f"nondeterministic {why}"))

        hit_for = unordered_for_re.search(code) if unordered_for_re else None
        if "unordered-iteration" not in allow:
            if hit_for or (unordered_begin_re
                           and unordered_begin_re.search(code)):
                findings.append(Finding(
                    rule="unordered-iteration", file=source.rel, line=lineno,
                    identifier=(hit_for.group(1) if hit_for else
                                unordered_begin_re.search(code).group(1)),
                    message=(
                        "iteration over an unordered container is "
                        "order-nondeterministic; iterate a vector/std::map "
                        "or sort first")))

        if hit_for:
            findings.extend(_accumulation_in_loop(
                source, idx, hit_for.group(1)))

        if (not recompute_sanctioned and "eager-recompute" not in allow
                and EAGER_RECOMPUTE_RE.search(code)):
            findings.append(Finding(
                rule="eager-recompute", file=source.rel, line=lineno,
                identifier="recompute",
                message=(
                    "direct recompute() outside the drain path defeats "
                    "coalescing; use invalidate()/settle_now() or read "
                    "through an accessor (see docs/PERFORMANCE.md)")))

        if simtime_eq_re and "simtime-eq" not in allow:
            if simtime_eq_re.search(code):
                findings.append(Finding(
                    rule="simtime-eq", file=source.rel, line=lineno,
                    identifier="==",
                    message=("exact ==/!= on SimTime doubles; use ordered "
                             "comparisons or sim::same_time()")))

    return findings


def _accumulation_in_loop(source: SourceFile, for_idx: int,
                          container: str) -> list[Finding]:
    """Flags order-sensitive accumulation statements inside the body of a
    range-for over ``container`` (an unordered map/set)."""
    findings: list[Finding] = []
    # Find the loop body: from the for's closing paren, either a braced
    # block or a single statement ending at ';'.
    depth = 0
    body_lines: list[int] = []
    i = for_idx
    brace_depth = 0
    in_body = False
    saw_brace = False
    while i < len(source.code):
        line = source.code[i]
        start = 0
        if i == for_idx:
            start = line.find("for")
        for j in range(start, len(line)):
            c = line[j]
            if not in_body:
                if c == "(":
                    depth += 1
                elif c == ")":
                    depth -= 1
                    if depth == 0:
                        in_body = True
            else:
                if c == "{":
                    brace_depth += 1
                    saw_brace = True
                elif c == "}":
                    brace_depth -= 1
                    if saw_brace and brace_depth == 0:
                        body_lines.append(i)
                        return _flag(source, body_lines, container, findings)
                elif c == ";" and not saw_brace:
                    body_lines.append(i)
                    return _flag(source, body_lines, container, findings)
        if in_body:
            body_lines.append(i)
        i += 1
        if i - for_idx > 200:  # unterminated / pathological; stop scanning
            break
    return _flag(source, body_lines, container, findings)


def _flag(source: SourceFile, body_lines: list[int], container: str,
          findings: list[Finding]) -> list[Finding]:
    for idx in body_lines:
        lineno = idx + 1
        if "unordered-accumulation" in source.allowed(lineno):
            continue
        if ACCUMULATE_RE.search(source.code[idx]):
            findings.append(Finding(
                rule="unordered-accumulation", file=source.rel, line=lineno,
                identifier=container,
                message=(
                    f"accumulation inside iteration over unordered "
                    f"'{container}': the reduction order is "
                    "implementation-defined (float sums and appended lists "
                    "change run to run); copy to a sorted vector first")))
    return findings


# Rule catalog for --list-rules / --sarif.
RULES = {
    "wall-clock": "host clock or host randomness in simulated code",
    "unordered-iteration": (
        "range-for / begin() over an unordered container (iteration order "
        "is nondeterministic)"),
    "unordered-accumulation": (
        "order-sensitive reduction inside a loop over an unordered "
        "container"),
    "simtime-eq": (
        "exact ==/!= between SimTime doubles (route through "
        "sim::same_time())"),
    "eager-recompute": (
        "Machine::recompute() called outside the ReallocCoordinator drain "
        "path"),
}
