"""layer-upward-include / layer-cycle: the src/ layering DAG.

The codebase layers only downward (lower layers never know about higher
ones):

    audit, stats                 (leaf utilities)
    sim                          -> audit
    telemetry                    -> sim
    cluster                      -> telemetry, sim, stats, audit
    storage | interactive        -> cluster and below
    mapred                       -> storage, cluster and below
    workload                     -> mapred, interactive and below
    core                         -> workload, mapred, interactive and below
    harness                      -> everything below

layer-upward-include flags any ``#include "layer/..."`` whose target layer
is not in the including layer's allowed (transitive) set. layer-cycle runs
independently of the table: it builds the *observed* layer graph from the
includes and reports any strongly connected component with more than one
layer, so a mutual dependency is caught even if someone "fixes" the table
instead of the code.
"""

from __future__ import annotations

import re

from findings import Finding, SourceFile

# Direct allowed dependencies; closure is computed below.
ALLOWED_DEPS: dict[str, set[str]] = {
    "audit": set(),
    "stats": set(),
    "sim": {"audit"},
    "whatif": {"sim"},
    "telemetry": {"sim"},
    "cluster": {"telemetry", "sim", "stats", "audit"},
    "storage": {"cluster"},
    "interactive": {"cluster"},
    "mapred": {"storage", "cluster"},
    "faults": {"mapred", "storage", "cluster"},
    "workload": {"mapred", "interactive"},
    "core": {"workload", "mapred", "interactive", "whatif"},
    "harness": {"core", "workload", "mapred", "faults", "interactive",
                "storage", "whatif"},
}

# Anchored at line start and matched against the RAW line: the quoted
# include path is a string literal, so the blanked `code` view erases it.
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([a-z_]+)/[^"]+"')

UPWARD_RULE = "layer-upward-include"
CYCLE_RULE = "layer-cycle"


def _closure() -> dict[str, set[str]]:
    closed: dict[str, set[str]] = {}

    def visit(layer: str, stack: tuple[str, ...] = ()) -> set[str]:
        if layer in closed:
            return closed[layer]
        if layer in stack:
            raise SystemExit(
                "hybridmr-analyze: ALLOWED_DEPS itself contains a cycle "
                f"through '{layer}' — fix scripts/analyze/layering.py")
        deps: set[str] = set()
        for d in ALLOWED_DEPS.get(layer, set()):
            deps.add(d)
            deps |= visit(d, stack + (layer,))
        closed[layer] = deps
        return deps

    for layer in ALLOWED_DEPS:
        visit(layer)
    return closed


CLOSURE = _closure()


def layer_of(rel: str) -> str | None:
    parts = rel.split("/")
    if len(parts) >= 3 and parts[0] == "src" and parts[1] in ALLOWED_DEPS:
        return parts[1]
    return None


def scan_file(source: SourceFile,
              observed: dict[str, dict[str, tuple[str, int, str]]]
              ) -> list[Finding]:
    """Checks one src/ file's includes; records observed layer edges into
    ``observed[from][to] = (file, line, header)`` for the cycle pass."""
    layer = layer_of(source.rel)
    if layer is None:
        return []
    findings: list[Finding] = []
    for idx, raw in enumerate(source.raw):
        m = INCLUDE_RE.search(raw)
        if not m:
            continue
        target = m.group(1)
        if target not in ALLOWED_DEPS or target == layer:
            continue
        lineno = idx + 1
        header = m.group(0)
        observed.setdefault(layer, {}).setdefault(
            target, (source.rel, lineno, header))
        if target in CLOSURE[layer]:
            continue
        if UPWARD_RULE in source.allowed(lineno):
            continue
        findings.append(Finding(
            rule=UPWARD_RULE, file=source.rel, line=lineno,
            identifier=target,
            message=(
                f"layer '{layer}' must not include layer '{target}' "
                f"(allowed: {', '.join(sorted(CLOSURE[layer])) or 'none'}); "
                "invert the dependency or move the shared piece down")))
    return findings


def cycle_findings(
        observed: dict[str, dict[str, tuple[str, int, str]]]
) -> list[Finding]:
    """Tarjan SCC over the observed layer graph; every component with more
    than one layer is reported once, anchored at one offending include."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    sccs: list[list[str]] = []

    def strongconnect(v: str) -> None:
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in observed.get(v, {}):
            if w not in index:
                strongconnect(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            comp: list[str] = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                comp.append(w)
                if w == v:
                    break
            sccs.append(comp)

    nodes = set(observed) | {t for edges in observed.values() for t in edges}
    for v in sorted(nodes):
        if v not in index:
            strongconnect(v)

    findings: list[Finding] = []
    for comp in sccs:
        if len(comp) < 2:
            continue
        comp_sorted = sorted(comp)
        # Anchor the report at one include that participates in the cycle.
        anchor = None
        for frm in comp_sorted:
            for to, loc in sorted(observed.get(frm, {}).items()):
                if to in comp:
                    anchor = loc
                    break
            if anchor:
                break
        file, line, _ = anchor if anchor else ("src", 1, "")
        label = " <-> ".join(comp_sorted)
        findings.append(Finding(
            rule=CYCLE_RULE, file=file, line=line, identifier=label,
            message=f"layer dependency cycle: {label}; break it by moving "
                    "the shared abstraction into a lower layer"))
    return findings


# Rule catalog for --list-rules / --sarif.
RULES = {
    "layer-upward-include": (
        "#include from a lower src/ layer into a higher one (the layer "
        "DAG only points down)"),
    "layer-cycle": (
        "strongly connected component in the observed include-layer graph"),
}
