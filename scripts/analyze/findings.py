"""Finding model, suppressions and baseline handling for hybridmr-analyze.

A Finding pins a rule violation to file:line. Its *key* — ``rule|file|ident``
— is deliberately line-free so committed baselines survive unrelated edits
that only shift line numbers.

Suppression: append ``// sim-lint: allow(<rule>[, <rule>...])`` to the
offending line or the line directly above it (same syntax the old
lint_sim.py used, so existing annotations keep working).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

ALLOW_RE = re.compile(r"//\s*sim-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")


@dataclass
class Finding:
    rule: str
    file: str  # repo-relative posix path
    line: int  # 1-based
    message: str
    identifier: str = ""  # declared name / included header / cycle label

    @property
    def key(self) -> str:
        return f"{self.rule}|{self.file}|{self.identifier}"

    def __str__(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "identifier": self.identifier,
            "message": self.message,
        }


@dataclass
class SourceFile:
    """One analyzed file: raw lines plus literal/comment-blanked lines.

    ``code`` has string literals, character literals, // comments and
    /* */ comments replaced by spaces (lengths and line structure kept),
    so regex passes never fire inside text.
    """

    path: Path        # absolute
    rel: str          # repo-relative posix
    raw: list[str]
    code: list[str]
    allow: list[set[str]] = field(default_factory=list)

    def allowed(self, lineno: int) -> set[str]:
        """Suppressed rules for 1-based lineno (same line or line above)."""
        rules: set[str] = set()
        for probe in (lineno - 1, lineno - 2):
            if 0 <= probe < len(self.allow):
                rules |= self.allow[probe]
        return rules


def blank_literals(text: str) -> str:
    """Blanks out string/char literals and comments, preserving newlines."""
    out: list[str] = []
    i = 0
    n = len(text)
    state = None  # None | '"' | "'" | "line" | "block" | "raw"
    raw_delim = ""
    while i < n:
        c = text[i]
        if state is None:
            if c == '"':
                # Raw string literal R"delim( ... )delim"
                if i >= 1 and text[i - 1] == "R" and (i < 2 or not text[i - 2].isalnum()):
                    m = re.match(r'([^\s()\\]{0,16})\(', text[i + 1:])
                    if m:
                        raw_delim = ")" + m.group(1) + '"'
                        state = "raw"
                        out.append(" ")
                        i += 1
                        continue
                state = '"'
                out.append(" ")
            elif c == "'":
                state = "'"
                out.append(" ")
            elif c == "/" and text[i:i + 2] == "//":
                state = "line"
                out.append(" ")
            elif c == "/" and text[i:i + 2] == "/*":
                state = "block"
                out.append(" ")
            else:
                out.append(c)
        elif state in ('"', "'"):
            if c == "\\":
                out.append("  " if text[i + 1:i + 2] != "\n" else " \n")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            if c == state:
                state = None
        elif state == "line":
            if c == "\n":
                out.append("\n")
                state = None
            else:
                out.append(" ")
        elif state == "block":
            if text[i:i + 2] == "*/":
                out.append("  ")
                i += 2
                state = None
                continue
            out.append("\n" if c == "\n" else " ")
        elif state == "raw":
            if text.startswith(raw_delim, i):
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
                state = None
                continue
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def load_source(path: Path, repo: Path) -> SourceFile:
    text = path.read_text(encoding="utf-8")
    raw = text.splitlines()
    code = blank_literals(text).splitlines()
    # blank_literals preserves newlines, but guard against a trailing
    # mismatch (e.g. no final newline).
    while len(code) < len(raw):
        code.append("")
    allow: list[set[str]] = []
    for line in raw:
        m = ALLOW_RE.search(line)
        allow.append({r.strip() for r in m.group(1).split(",")} if m else set())
    rel = path.resolve().relative_to(repo.resolve()).as_posix()
    return SourceFile(path=path, rel=rel, raw=raw, code=code, allow=allow)


# ------------------------------------------------------------- baseline ----

def load_baseline(path: Path | None) -> set[str]:
    if path is None or not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    return set(data.get("grandfathered", []))


def write_baseline(path: Path, findings: list[Finding]) -> None:
    keys = sorted({f.key for f in findings})
    payload = {
        "comment": (
            "Grandfathered hybridmr-analyze findings. Keys are "
            "rule|file|identifier (line-free). Do not add entries for new "
            "code; migrate it to sim/units.h types instead."
        ),
        "grandfathered": keys,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
