"""Snapshot-safety rules: the state-ownership census behind snapshot/fork.

The ROADMAP's what-if engine (fork a warmed-up simulation, run lookahead
sweeps, replay from checkpoints) needs an exhaustive answer to "what is
full simulation state?" before anyone copies it. This pass builds the
ownership graph of everything reachable from the two state roots —
``sim::Simulation`` and ``harness::TestBed`` — and classifies every field
of every state-bearing class in src/ into the five snapshot kinds:

  owned-value     plain values (numbers, enums, strong units, value
                  structs): memcpy-forkable.
  owned-heap      exclusively owned heap state (unique_ptr, containers,
                  std::string, std::function): deep-copy per fork.
  shared          shared_ptr ownership; the census records which side is
                  the primary owner and which holds a weak_ptr observer,
                  because a fork must clone the primary and re-point the
                  observers.
  back-reference  raw pointer / reference / span into state owned
                  elsewhere: a fork must re-point it at the clone.
  ephemeral       scratch, memo and profiler state a snapshot may discard
                  and rebuild (WaterfillScratch, offer-set indexes,
                  LogHistogram buckets). Never inferred — always declared
                  via the annotation.

Inference covers the std:: vocabulary and every class/enum/unit type the
pass harvests from src/ itself; what it cannot infer must carry an
``// hmr-state(<kind>[: note])`` annotation on the field's line or in the
comment block directly above it. Annotations override inference, so a
field that *looks* owned but is rebuildable scratch is declared
``// hmr-state(ephemeral: ...)``.

Rules:

  state-unclassified-field  a field of a state-bearing (root-reachable)
                            class with no inferable kind and no
                            annotation — the census must be exhaustive or
                            the fork PR starts from archaeology again.
  state-raw-owner           a raw pointer that owns (new/delete evidence
                            in the class's files, or an owned-* annotation
                            on a raw pointer): forks double-free or leak;
                            make it unique_ptr.
  state-backref-cycle       a back-reference whose pointee class has no
                            owning edge anywhere in the graph and no
                            annotation declaring its owner: nothing to
                            re-point the fork's copy from.
  state-hidden-state        a *mutable* lambda handed to the event queue
                            (at/after/every/add_flush_hook/on_complete):
                            captured-by-value mutable state lives only
                            inside the pending callback, where no census
                            and no snapshot can reach it — the fork
                            killer. Hoist the state into a censused field.

Besides findings, the pass feeds the layer-keyed state-graph census
(--state-graph-report, consumed by ci.sh's blocking ``state`` stage and
documented in docs/SNAPSHOT.md): every class with every classified field,
the ownership edges, and the hidden-state callback map.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from findings import Finding, SourceFile

UNCLASSIFIED_RULE = "state-unclassified-field"
RAW_OWNER_RULE = "state-raw-owner"
BACKREF_RULE = "state-backref-cycle"
HIDDEN_RULE = "state-hidden-state"

# Rule catalog for --list-rules / --sarif.
RULES = {
    UNCLASSIFIED_RULE: (
        "field of a root-reachable class with no inferable snapshot kind "
        "and no // hmr-state(<kind>) annotation"),
    RAW_OWNER_RULE: (
        "raw pointer with ownership evidence (new/delete or an owned-* "
        "annotation); forks double-free — use unique_ptr"),
    BACKREF_RULE: (
        "back-reference whose pointee type has no owning edge in the "
        "graph and no annotation declaring the owner"),
    HIDDEN_RULE: (
        "mutable lambda handed to the event queue: captured-by-value "
        "mutable state only a pending callback can reach"),
}

KINDS = ("owned-value", "owned-heap", "shared", "back-reference", "ephemeral")

# The ownership roots: a run *is* a Simulation; a TestBed is the harness
# hub every engine object hangs off; a HybridMRScheduler owns the Phase
# I/II control stack (profiler, DRM, IPS, SLA monitor, deployed apps) the
# what-if engine must fork along with the testbed; the WhatIfEngine itself
# is the fork mechanism's state.
ROOTS = ("Simulation", "TestBed", "HybridMRScheduler", "WhatIfEngine")

STATE_MARKER_RE = re.compile(r"//\s*hmr-state\(([^)]*)\)")
# For joined comment blocks (the // prefixes are stripped by the join).
STATE_MARKER_BARE_RE = re.compile(r"\bhmr-state\(([^)]*)\)")

CLASS_RE = re.compile(r"\b(class|struct)\s+(?:HMR_CAPABILITY\([^)]*\)\s*)?"
                      r"([A-Za-z_]\w*)")
ALIAS_RE = re.compile(r"\busing\s+([A-Za-z_]\w*)\s*=\s*([^;]+);")
BASE_RE = re.compile(r"(?:public|protected|private|virtual)\s+"
                     r"([A-Za-z_][\w:]*)")

# std:: template heads with exclusive ownership of heap storage.
OWNING_CONTAINERS = {
    "vector", "deque", "list", "forward_list", "set", "multiset", "map",
    "multimap", "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset", "priority_queue", "queue", "stack", "basic_string",
}
# std:: template heads that are value aggregates of their arguments.
VALUE_WRAPPERS = {"optional", "array", "pair", "tuple", "variant", "atomic"}
# std:: value types with by-value copy semantics (random engines and
# distributions are plain value objects; copying one IS the snapshot).
STD_VALUE_TYPES = {
    "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
    "default_random_engine", "ranlux24", "ranlux48", "knuth_b", "byte",
}
STD_VALUE_TEMPLATES = {
    "uniform_real_distribution", "uniform_int_distribution",
    "normal_distribution", "exponential_distribution",
    "bernoulli_distribution", "poisson_distribution", "chrono", "ratio",
    "bitset", "linear_congruential_engine", "mersenne_twister_engine",
}
# Non-owning views.
VIEW_TEMPLATES = {"span", "string_view", "reference_wrapper"}

SIM_UNIT_TYPES = {
    "SimTime", "EventId", "Duration", "Seconds", "MegaBytes", "MBps",
    "SecondsPerMB", "PerSecond", "Watts", "Joules", "CoreShare", "Fraction",
    "Quantity",
}
BUILTIN_VALUE_RE = re.compile(
    r"^(?:unsigned\s+|signed\s+)?(?:std::)?"
    r"(?:bool|char|short|int|long|long\s+long|float|double"
    r"|u?int(?:8|16|32|64)_t|size_t|ptrdiff_t|uintptr_t|byte)"
    r"(?:\s+(?:int|long))*$")

OWNERSHIP_KINDS = {"owned-value", "owned-heap", "shared"}


@dataclass
class FieldInfo:
    name: str
    type: str
    line: int
    kind: str | None          # one of KINDS, or None = unclassified
    inferred: str | None      # what inference said (pre-annotation)
    annotated: bool
    note: str
    role: str = ""            # shared fields: "primary" | "observer"
    targets: list[str] = field(default_factory=list)  # harvested class names
    raw_pointer: bool = False


@dataclass
class ClassInfo:
    name: str                 # qualified within the file, e.g. EventQueue::Slot
    file: str
    line: int
    fields: list[FieldInfo] = field(default_factory=list)
    bases: list[str] = field(default_factory=list)  # bare base-class names
    reachable: bool = False


@dataclass
class Harvest:
    classes: list[ClassInfo] = field(default_factory=list)
    enums: set[str] = field(default_factory=set)
    # bare alias name -> list of aliased type strings (every definition
    # seen; the classifier only trusts an alias whose definitions all
    # classify identically)
    aliases: dict[str, list[str]] = field(default_factory=dict)


# --------------------------------------------------------------- harvesting

def _line_starts(text: str) -> list[int]:
    starts = [0]
    for i, c in enumerate(text):
        if c == "\n":
            starts.append(i + 1)
    return starts


def _line_of(starts: list[int], offset: int) -> int:
    lo, hi = 0, len(starts) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if starts[mid] <= offset:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1  # 1-based


def _match_brace(text: str, open_idx: int) -> int:
    """Index just past the matching '}' for the '{' at open_idx (or len)."""
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def harvest_classes(source: SourceFile) -> Harvest:
    """All class/struct definitions (nested ones qualified Outer::Inner)
    plus the enum names and `using X = T;` aliases declared in this file."""
    text = "\n".join(source.code)
    starts = _line_starts(text)
    out = Harvest()
    for m in re.finditer(r"\benum\s+(?:class\s+|struct\s+)?([A-Za-z_]\w*)",
                         text):
        out.enums.add(m.group(1))
    for m in ALIAS_RE.finditer(text):
        out.aliases.setdefault(m.group(1), []).append(
            " ".join(m.group(2).split()))

    # (body-start, body-end, name, line, bases)
    spans: list[tuple[int, int, str, int, list[str]]] = []
    for m in CLASS_RE.finditer(text):
        # `enum class X` is a value type, not a state-bearing class.
        head = text[max(0, m.start() - 8):m.start()]
        if re.search(r"enum\s+$", head):
            continue
        name = m.group(2)
        # Find the body '{' before any ';' (a ';' first = forward decl,
        # variable decl `struct X x;`, or template parameter).
        body_open = None
        for i in range(m.end(), min(m.end() + 400, len(text))):
            c = text[i]
            if c == "{":
                body_open = i
                break
            if c in ";)=,>" and text[m.end():i].count(":") == 0:
                break
            if c in ";)=":
                break
        if body_open is None:
            continue
        intro = text[m.end():body_open]
        bases = [b.split("::")[-1] for b in BASE_RE.findall(intro)] \
            if ":" in intro else []
        spans.append((body_open, _match_brace(text, body_open), name,
                      _line_of(starts, m.start()), bases))

    for start, end, name, line, bases in spans:
        qual = name
        for ostart, oend, oname, _oline, _ob in spans:
            if ostart < start and end <= oend:
                qual = f"{oname}::{qual}"
        body = text[start + 1:end - 1]
        nested = [(s - start - 1, e - start - 1)
                  for s, e, _n, _l, _b in spans if start < s and e <= end]
        info = ClassInfo(name=qual, file=source.rel, line=line, bases=bases)
        for stmt, offset in split_statements(body, nested):
            f = parse_field(stmt)
            if f is None:
                continue
            f.line = _line_of(starts, start + 1 + offset)
            info.fields.append(f)
        out.classes.append(info)
    return out


def split_statements(body: str,
                     nested: list[tuple[int, int]]
                     ) -> list[tuple[str, int]]:
    """Top-level member statements of a class body as (text, offset-of-
    first-char). Function bodies, nested type bodies and preprocessor
    lines are skipped; brace initializers are kept inside their statement.
    """
    stmts: list[tuple[str, int]] = []
    cur: list[str] = []
    cur_start: int | None = None
    i, n = 0, len(body)
    paren = 0
    while i < n:
        c = body[i]
        if c == "#" and (i == 0 or body[i - 1] == "\n"):
            while i < n and body[i] != "\n":
                i += 1
            continue
        if c == "(":
            paren += 1
        elif c == ")":
            paren = max(0, paren - 1)
        elif c == "{" and paren == 0:
            head = "".join(cur).strip()
            head = re.sub(r"^\s*(?:public|private|protected)\s*:", "", head)
            if re.match(r"^\s*(?:template\s*<[^;{]*>\s*)?"
                        r"(?:class|struct|union|enum)\b", head) or \
                    _looks_like_function(head):
                i = _match_brace(body, i)
                # Swallow the optional trailing ';' of a type definition.
                while i < n and body[i] in " \t\n":
                    i += 1
                if i < n and body[i] == ";":
                    i += 1
                cur, cur_start = [], None
                continue
            # Brace initializer: keep it in the statement text.
            close = _match_brace(body, i)
            if cur_start is None:
                cur_start = i
            cur.append(body[i:close])
            i = close
            continue
        if c == ":" and paren == 0 and body[i:i + 2] != "::" \
                and "".join(cur).strip() in ("public", "private",
                                             "protected"):
            # Access specifier: ends here, the next statement starts fresh
            # (otherwise `private:` would absorb the following field and
            # shift its recorded line).
            cur, cur_start = [], None
            i += 1
            continue
        if c == ";" and paren == 0:
            if cur_start is not None:
                stmts.append(("".join(cur), cur_start))
            cur, cur_start = [], None
            i += 1
            continue
        if cur_start is None and not c.isspace():
            cur_start = i
        if cur_start is not None:
            cur.append(c)
        i += 1
    return stmts


def _angle_aware_top_level(text: str) -> list[tuple[int, str]]:
    """(index, char) pairs for chars at template-angle depth 0."""
    out: list[tuple[int, str]] = []
    depth = 0
    prev = ""
    for i, c in enumerate(text):
        if c == "<" and (prev.isalnum() or prev in "_>"):
            depth += 1
        elif c == ">" and depth > 0 and prev != "-":
            depth -= 1
        else:
            if depth == 0:
                out.append((i, c))
        if not c.isspace():
            prev = c
    return out


def _looks_like_function(head: str) -> bool:
    """True when a '{' terminates a function definition rather than a
    brace initializer: there is a top-level '(' and no '=' before it."""
    for _, c in _angle_aware_top_level(head):
        if c == "=":
            return False
        if c == "(":
            return True
    return False


SKIP_STMT_RE = re.compile(
    r"^\s*(?:using|typedef|friend|template|static_assert|explicit|virtual|"
    r"operator|~|public\b|private\b|protected\b)")
ARRAY_SUFFIX_RE = re.compile(r"\[[^\]]*\]\s*$")
ANNOT_RE = re.compile(r"\b(?:HMR|HYBRIDMR)_[A-Z_]+\s*(?:\([^()]*\))?")
ATTR_RE = re.compile(r"\[\[[^\]]*\]\]")


def parse_field(stmt: str) -> FieldInfo | None:
    s = " ".join(stmt.split())
    s = re.sub(r"^\s*(?:public|private|protected)\s*:\s*", "", s)
    if not s or SKIP_STMT_RE.match(s) or "operator" in s:
        return None
    s = ATTR_RE.sub(" ", s)
    s = ANNOT_RE.sub(" ", s)
    # Cut the initializer: first top-level '=' or '{'.
    decl = s
    for i, c in _angle_aware_top_level(s):
        if c in "={" and not (c == "=" and s[i:i + 2] == "=="):
            decl = s[:i]
            break
        if c == "(":
            return None  # function declaration
    decl = decl.strip().rstrip(";").strip()
    if not decl:
        return None
    static = bool(re.match(r"^(?:inline\s+)?static\b", decl))
    if static:
        return None  # process-wide state: the concurrency census owns it
    decl = re.sub(r"^(?:mutable|inline|volatile|typename)\s+", "", decl)
    decl = ARRAY_SUFFIX_RE.sub("", decl).strip()
    m = re.search(r"([A-Za-z_]\w*)\s*$", decl)
    if not m:
        return None
    name, type_str = m.group(1), decl[:m.start()].strip()
    if not type_str or type_str in ("class", "struct", "enum", "union",
                                    "return", "goto"):
        return None
    return FieldInfo(name=name, type=type_str, line=0, kind=None,
                     inferred=None, annotated=False, note="")


# ----------------------------------------------------------- classification

def _split_template(type_str: str) -> tuple[str, list[str]] | None:
    """('std::vector', ['Foo*']) for 'std::vector<Foo*>', else None."""
    m = re.match(r"^([A-Za-z_][\w:]*)\s*<(.*)>$", type_str.strip())
    if not m:
        return None
    head, inner = m.group(1), m.group(2)
    args: list[str] = []
    depth = 0
    cur: list[str] = []
    for c in inner:
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
        elif c == "," and depth == 0:
            args.append("".join(cur).strip())
            cur = []
            continue
        cur.append(c)
    if cur:
        args.append("".join(cur).strip())
    return head, args


def _strip_cv(t: str) -> str:
    t = t.strip()
    while True:
        new = re.sub(r"^(?:const|volatile)\s+", "", t)
        new = re.sub(r"\s+(?:const|volatile)$", "", new)
        if new == t:
            return t
        t = new


class Classifier:
    def __init__(self, known_classes: set[str], known_enums: set[str],
                 aliases: dict[str, list[str]] | None = None):
        self.known_classes = known_classes
        self.known_enums = known_enums
        self.aliases = aliases or {}

    def _resolve_alias(self, t: str, depth: int) -> tuple[str | None, str,
                                                          bool] | None:
        """Classification through a `using X = T;` alias, when every
        definition of the alias classifies identically (bare names only:
        `cluster::WorkloadPtr` resolves via 'WorkloadPtr')."""
        bare = t.split("::")[-1]
        candidates = self.aliases.get(bare)
        if not candidates or depth > 3:
            return None
        verdicts = {self.classify(c, depth + 1) for c in candidates}
        if len(verdicts) == 1:
            return next(iter(verdicts))
        return None

    def classify(self, type_str: str,
                 depth: int = 0) -> tuple[str | None, str, bool]:
        """(kind | None, shared-role, is-raw-pointer) for a field type."""
        t = _strip_cv(type_str)
        # Top-level pointer/reference: strip all trailing */&/const.
        stripped = re.sub(r"(?:\s*[*&]\s*|\s+const)+$", "", t)
        if stripped != t:
            return "back-reference", "", "*" in t[len(stripped):]
        tmpl = _split_template(t)
        if tmpl is not None:
            head, args = tmpl
            base = head.removeprefix("std::")
            if base == "unique_ptr":
                return "owned-heap", "", False
            if base == "shared_ptr":
                return "shared", "primary", False
            if base == "weak_ptr":
                return "shared", "observer", False
            if base in VIEW_TEMPLATES:
                return "back-reference", "", False
            if base == "function":
                return "owned-heap", "", False
            if base in STD_VALUE_TEMPLATES:
                return "owned-value", "", False
            if base in OWNING_CONTAINERS or base in VALUE_WRAPPERS:
                if base in ("array", "bitset"):
                    args = args[:1]  # the rest are non-type (size) args
                kinds = {self.classify(a, depth)[0] for a in args if a
                         and not a.isdigit()}
                roles = {self.classify(a, depth)[1] for a in args if a}
                if "back-reference" in kinds:
                    return "back-reference", "", False
                if "shared" in kinds:
                    role = "observer" if roles == {"observer", ""} \
                        else "primary"
                    return "shared", role, False
                if None in kinds:
                    return None, "", False
                if base in VALUE_WRAPPERS and kinds <= {"owned-value"}:
                    return "owned-value", "", False
                return "owned-heap", "", False
            if base == "Quantity" or head.split("::")[-1] in SIM_UNIT_TYPES:
                return "owned-value", "", False
            resolved = self._resolve_alias(head, depth)
            return resolved if resolved is not None else (None, "", False)
        bare = t.split("::")[-1]
        if BUILTIN_VALUE_RE.match(t) or t in ("std::string",):
            return ("owned-heap", "", False) if t == "std::string" \
                else ("owned-value", "", False)
        if bare in STD_VALUE_TYPES:
            return "owned-value", "", False
        if bare in SIM_UNIT_TYPES or bare in self.known_enums:
            return "owned-value", "", False
        if bare == "SimThreadGate":
            return "owned-value", "", False
        if bare in self.known_classes:
            return "owned-value", "", False
        resolved = self._resolve_alias(t, depth)
        return resolved if resolved is not None else (None, "", False)


def _targets(type_str: str, known_classes: set[str]) -> list[str]:
    found: list[str] = []
    for m in re.finditer(r"[A-Za-z_]\w*", type_str):
        if m.group(0) in known_classes and m.group(0) not in found:
            found.append(m.group(0))
    return found


# ------------------------------------------------------------- annotations

def _marker(source: SourceFile, lineno: int) -> str | None:
    """hmr-state payload on the 1-based line or in the contiguous
    //-comment block directly above it, else None. The block is joined
    before matching so a long annotation may wrap across comment lines."""
    idx = lineno - 1
    if 0 <= idx < len(source.raw):
        m = STATE_MARKER_RE.search(source.raw[idx])
        if m:
            return m.group(1).strip()
    block: list[str] = []
    probe = idx - 1
    while 0 <= probe < len(source.raw) \
            and source.raw[probe].lstrip().startswith("//"):
        block.append(source.raw[probe].lstrip().lstrip("/").strip())
        probe -= 1
    if block:
        m = STATE_MARKER_BARE_RE.search(" ".join(reversed(block)))
        if m:
            return m.group(1).strip()
    return None


def _parse_marker(payload: str) -> tuple[str, str]:
    """('back-reference', 'owner=Simulation') from
    'back-reference: owner=Simulation'."""
    kind, _, note = payload.partition(":")
    return kind.strip(), note.strip()


# ------------------------------------------------------------ hidden state

HIDDEN_INTRO_RE = re.compile(
    r"(?:\b(?:at|after|every|add_flush_hook)\s*\(|\bon_complete\s*=)")
MUTABLE_LAMBDA_RE = re.compile(r"\]\s*(?:\([^()]*\)\s*)?mutable\b")


def scan_hidden_state(source: SourceFile) -> tuple[list[Finding], list[dict]]:
    """Mutable lambdas handed to the event queue. src/-only."""
    findings: list[Finding] = []
    sites: list[dict] = []
    if not source.rel.startswith("src/"):
        return findings, sites
    for idx, code in enumerate(source.code):
        lineno = idx + 1
        for intro in HIDDEN_INTRO_RE.finditer(code):
            window = "\n".join(source.code[idx:idx + 3])
            start = intro.end() if True else 0
            bracket = window.find("[", start)
            if bracket == -1:
                continue
            m = MUTABLE_LAMBDA_RE.search(window, bracket)
            if not m:
                continue
            marker = _marker(source, lineno)
            sites.append({
                "file": source.rel, "line": lineno,
                "api": intro.group(0).strip(" (="),
                "sanctioned": marker is not None,
                "note": marker or "",
            })
            if marker is not None:
                continue
            if HIDDEN_RULE in source.allowed(lineno):
                continue
            findings.append(Finding(
                rule=HIDDEN_RULE, file=source.rel, line=lineno,
                identifier=intro.group(0).strip(" (="),
                message=(
                    "mutable lambda scheduled on the event queue: its "
                    "captured-by-value state lives only inside the pending "
                    "callback where no snapshot can reach it — hoist the "
                    "state into a censused field (or annotate "
                    "// hmr-state(ephemeral: <why discardable>))")))
            break  # one finding per line is enough
    return findings, sites


# ------------------------------------------------------------- raw owners

def ownership_evidence(sources_by_rel: dict[str, SourceFile],
                       rel: str, name: str) -> bool:
    """True when the class's file or its header/impl sibling news/deletes
    the field."""
    stem = re.sub(r"\.(h|hpp|cc|cpp|cxx)$", "", rel)
    pats = (re.compile(r"\bdelete(?:\s*\[\s*\])?\s+(?:this->)?"
                       + re.escape(name) + r"\b"),
            re.compile(r"\b" + re.escape(name) + r"\s*=\s*new\b"),
            re.compile(r"\b" + re.escape(name) + r"\s*\(\s*new\b"))
    for other_rel, src in sources_by_rel.items():
        if not other_rel.startswith(stem + "."):
            continue
        for code in src.code:
            for p in pats:
                if p.search(code):
                    return True
    return False


# ------------------------------------------------------------------- pass

def run(sources: list[SourceFile], layer_of) -> tuple[list[Finding], dict]:
    """The full cross-file state pass. Returns (findings, census)."""
    findings: list[Finding] = []
    src_sources = [s for s in sources if s.rel.startswith("src/")]
    sources_by_rel = {s.rel: s for s in src_sources}

    all_classes: list[ClassInfo] = []
    all_enums: set[str] = set()
    all_aliases: dict[str, list[str]] = {}
    for src in src_sources:
        h = harvest_classes(src)
        all_classes.extend(h.classes)
        all_enums |= h.enums
        for name, types in h.aliases.items():
            all_aliases.setdefault(name, []).extend(
                t for t in types if t not in all_aliases.get(name, []))

    known_classes = {c.name.split("::")[-1] for c in all_classes}
    classifier = Classifier(known_classes, all_enums, all_aliases)
    # bare class name -> its (transitive) base-class names: owning a
    # Machine also owns the ExecutionSite subobject every back-reference
    # actually points at.
    bases_of: dict[str, set[str]] = {}
    direct_bases = {c.name.split("::")[-1]: c.bases for c in all_classes}

    def expand_bases(name: str, seen: frozenset = frozenset()) -> set[str]:
        if name in bases_of:
            return bases_of[name]
        out: set[str] = set()
        for b in direct_bases.get(name, []):
            if b in seen:
                continue
            out.add(b)
            out |= expand_bases(b, seen | {name})
        bases_of[name] = out
        return out

    for name in list(direct_bases):
        expand_bases(name)

    # Classify every field; collect ownership edges and owners-of map.
    owners: dict[str, list[str]] = {}   # bare class name -> owning classes
    edges: list[dict] = []
    for cls in all_classes:
        src = sources_by_rel[cls.file]
        for f in cls.fields:
            f.inferred, f.role, f.raw_pointer = classifier.classify(f.type)
            f.kind = f.inferred
            f.targets = _targets(f.type, known_classes)
            payload = _marker(src, f.line)
            if payload is not None:
                kind, note = _parse_marker(payload)
                if kind in KINDS:
                    f.kind, f.note, f.annotated = kind, note, True
            for t in f.targets:
                edges.append({"from": cls.name, "to": t,
                              "kind": f.kind or "unclassified",
                              "field": f.name})
                if f.kind in OWNERSHIP_KINDS and f.role != "observer":
                    owners.setdefault(t, []).append(cls.name)
                    for base in bases_of.get(t, ()):
                        owners.setdefault(base, []).append(cls.name)

    # Reachability from the roots over every edge kind: a back-reference
    # or weak observer still names state a fork must understand.
    adjacency: dict[str, set[str]] = {}
    for e in edges:
        adjacency.setdefault(e["from"].split("::")[-1], set()).add(e["to"])
        # A nested class is part of its outer class's state.
        if "::" in e["from"]:
            adjacency.setdefault(e["from"].split("::")[0],
                                 set()).add(e["from"].split("::")[-1])
    for cls in all_classes:
        if "::" in cls.name:
            adjacency.setdefault(cls.name.split("::")[0],
                                 set()).add(cls.name.split("::")[-1])
        # A pointer to the base reaches every derived class (and a derived
        # class carries its base subobject's fields).
        bare = cls.name.split("::")[-1]
        for b in cls.bases:
            adjacency.setdefault(b, set()).add(bare)
            adjacency.setdefault(bare, set()).add(b)
    reachable: set[str] = set()
    frontier = [r for r in ROOTS]
    while frontier:
        node = frontier.pop()
        if node in reachable:
            continue
        reachable.add(node)
        frontier.extend(adjacency.get(node, ()))
    for cls in all_classes:
        cls.reachable = any(part in reachable
                            for part in cls.name.split("::"))

    # Findings over state-bearing classes.
    for cls in all_classes:
        if not cls.reachable:
            continue
        src = sources_by_rel[cls.file]
        for f in cls.fields:
            ident = f"{cls.name}::{f.name}"
            if f.kind is None:
                if UNCLASSIFIED_RULE not in src.allowed(f.line):
                    findings.append(Finding(
                        rule=UNCLASSIFIED_RULE, file=cls.file, line=f.line,
                        identifier=ident,
                        message=(
                            f"cannot classify '{f.name}' ({f.type}) for the "
                            "snapshot census; annotate it "
                            "// hmr-state(owned-value|owned-heap|shared|"
                            "back-reference|ephemeral[: note])")))
                continue
            if f.raw_pointer and (
                    f.kind in ("owned-heap", "owned-value")
                    or ownership_evidence(sources_by_rel, cls.file, f.name)):
                if RAW_OWNER_RULE not in src.allowed(f.line):
                    findings.append(Finding(
                        rule=RAW_OWNER_RULE, file=cls.file, line=f.line,
                        identifier=ident,
                        message=(
                            f"raw pointer '{f.name}' owns its pointee; a "
                            "fork would double-free or leak it — make the "
                            "ownership explicit with std::unique_ptr")))
                continue
            if f.kind == "back-reference" and not f.annotated:
                targets_owned = [t for t in f.targets if owners.get(t)]
                if f.targets and targets_owned == f.targets:
                    continue  # every pointee has a declared owner edge
                if BACKREF_RULE not in src.allowed(f.line):
                    missing = [t for t in f.targets if not owners.get(t)]
                    what = ", ".join(missing) if missing else f.type
                    findings.append(Finding(
                        rule=BACKREF_RULE, file=cls.file, line=f.line,
                        identifier=ident,
                        message=(
                            f"back-reference '{f.name}' points at {what} "
                            "which no censused field owns; a fork has "
                            "nothing to re-point it from — declare the "
                            "owner or annotate "
                            "// hmr-state(back-reference: owner=<who>)")))

    for src in src_sources:
        found, _sites = scan_hidden_state(src)
        findings.extend(found)

    census = build_census(all_classes, edges, src_sources, layer_of)
    return findings, census


def build_census(all_classes: list[ClassInfo], edges: list[dict],
                 src_sources: list[SourceFile], layer_of) -> dict:
    layers: dict[str, dict] = {}
    counts = {k: 0 for k in KINDS}
    unclassified = 0
    nfields = 0
    for cls in sorted(all_classes, key=lambda c: (c.file, c.line)):
        layer = layer_of(cls.file) or "(other)"
        entry = {
            "file": cls.file,
            "line": cls.line,
            "reachable": cls.reachable,
            "fields": [],
        }
        for f in cls.fields:
            nfields += 1
            if f.kind is None:
                unclassified += 1
            else:
                counts[f.kind] += 1
            rec = {
                "name": f.name, "type": f.type, "line": f.line,
                "kind": f.kind or "unclassified",
                "annotated": f.annotated,
            }
            if f.role:
                rec["role"] = f.role
            if f.note:
                rec["note"] = f.note
            if f.targets:
                rec["targets"] = f.targets
            entry["fields"].append(rec)
        layers.setdefault(layer, {"classes": {}})["classes"][cls.name] = entry

    hidden: list[dict] = []
    for src in src_sources:
        _found, sites = scan_hidden_state(src)
        hidden.extend(sites)

    return {
        "version": 1,
        "roots": list(ROOTS),
        "layers": {k: layers[k] for k in sorted(layers)},
        "edges": sorted(edges, key=lambda e: (e["from"], e["to"],
                                              e["field"])),
        "hidden_state": sorted(hidden, key=lambda h: (h["file"], h["line"])),
        "summary": {
            "classes": len(all_classes),
            "reachable_classes": sum(1 for c in all_classes if c.reachable),
            "fields": nfields,
            "unclassified": unclassified,
            "by_kind": counts,
        },
    }
