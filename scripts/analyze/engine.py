"""Translation-unit discovery and analysis engines for hybridmr-analyze.

Two engines produce the same rule set:

  tokens    Pure-python tokenizer passes over literal-blanked source.
            Always available; this is what CI runs, so the gate can never
            silently no-op just because libclang is missing.

  libclang  AST-driven passes through the clang python bindings, resolved
            against compile_commands.json. Preferred when the bindings are
            importable; requesting it explicitly (--engine libclang) on a
            machine without the bindings is a hard error, never a skip.

``--engine auto`` probes for libclang and falls back to tokens with a
notice on stderr.
"""

from __future__ import annotations

import json
import re
import shlex
import sys
from pathlib import Path

from findings import SourceFile, load_source

CXX_SUFFIXES = {".cc", ".cpp", ".cxx", ".h", ".hpp"}
TU_SUFFIXES = {".cc", ".cpp", ".cxx"}

IDENT_RE = re.compile(r"[A-Za-z_]\w*")


class SourceCache:
    """Shared per-file analysis cache used by every rule group.

    Before this cache each group's pass re-read and re-tokenized its inputs
    independently (the analyzer is invoked once per CI stage, and a stage
    enabling N groups paid N loads per file). The cache loads and
    literal-blanks each file exactly once per process and memoizes the
    identifier token stream, so adding a rule group costs only its own
    matching work, never another I/O + blanking pass. hybridmr-analyze's
    per-group wall times (--json "timings") make the win visible.
    """

    def __init__(self, root: Path):
        self.root = root
        self._sources: dict[Path, SourceFile] = {}
        self._tokens: dict[Path, list[tuple[int, int, str]]] = {}

    def source(self, path: Path) -> SourceFile:
        key = path.resolve()
        if key not in self._sources:
            self._sources[key] = load_source(path, self.root)
        return self._sources[key]

    def tokens(self, path: Path) -> list[tuple[int, int, str]]:
        """Identifier token stream over the blanked code as
        (1-based line, 0-based column, identifier) tuples."""
        key = path.resolve()
        if key not in self._tokens:
            src = self.source(path)
            toks: list[tuple[int, int, str]] = []
            for idx, line in enumerate(src.code):
                for m in IDENT_RE.finditer(line):
                    toks.append((idx + 1, m.start(), m.group(0)))
            self._tokens[key] = toks
        return self._tokens[key]


def repo_root(start: Path) -> Path:
    p = start.resolve()
    for candidate in (p, *p.parents):
        if (candidate / ".git").exists():
            return candidate
    return p


def collect_files(paths: list[Path]) -> list[Path]:
    """C++ sources under ``paths``. Recursive walks skip ``fixtures/``
    directories — those hold deliberate rule violations for the analyzer's
    own tests (tests/analyze/fixtures) and are only analyzed when passed
    explicitly (the fixture driver does, with --root)."""
    files: list[Path] = []
    for p in paths:
        if p.is_file():
            if p.suffix in CXX_SUFFIXES:
                files.append(p)
        elif p.is_dir():
            files.extend(f for f in sorted(p.rglob("*"))
                         if f.suffix in CXX_SUFFIXES
                         and "fixtures" not in f.relative_to(p).parts)
    return files


def load_compile_commands(path: Path) -> list[dict]:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"hybridmr-analyze: cannot read {path}: {e}")


def check_tu_coverage(files: list[Path], compile_commands: list[dict],
                      repo: Path) -> list[str]:
    """Every analyzed .cc must appear in the compile database; a TU the
    build does not compile would otherwise dodge every compiler-adjacent
    check. Returns warning strings (non-fatal: the tokenizer still scans
    the file either way)."""
    compiled = set()
    for entry in compile_commands:
        f = Path(entry.get("file", ""))
        if not f.is_absolute():
            f = Path(entry.get("directory", ".")) / f
        try:
            compiled.add(f.resolve().relative_to(repo.resolve()).as_posix())
        except ValueError:
            continue
    warnings = []
    for f in files:
        if f.suffix not in TU_SUFFIXES:
            continue
        rel = f.resolve().relative_to(repo.resolve()).as_posix()
        if not rel.startswith("src/"):
            continue  # tests/benches are separate targets; src is the gate
        if rel not in compiled:
            warnings.append(
                f"hybridmr-analyze: {rel} is not in compile_commands.json "
                "(not built, analyzed from source only)")
    return warnings


# ------------------------------------------------------------- libclang ----

def probe_libclang():
    """Returns the clang.cindex module, or None when unavailable."""
    try:
        import clang.cindex  # type: ignore
    except ImportError:
        return None
    try:
        clang.cindex.Index.create()
    except Exception:  # missing libclang.so despite bindings
        return None
    return clang.cindex


def resolve_engine(requested: str):
    """Maps --engine {auto,tokens,libclang} to ('tokens'|'libclang', module).

    Explicitly requested libclang MUST resolve or we abort loudly: a CI
    config that asks for AST analysis and silently gets nothing is the
    exact failure mode this tool exists to prevent.
    """
    if requested == "tokens":
        return "tokens", None
    cindex = probe_libclang()
    if requested == "libclang":
        if cindex is None:
            raise SystemExit(
                "hybridmr-analyze: --engine libclang requested but the clang "
                "python bindings (python3 -m clang.cindex) are unavailable; "
                "install them or use --engine tokens. Refusing to silently "
                "skip AST analysis.")
        return "libclang", cindex
    # auto
    if cindex is None:
        print("hybridmr-analyze: libclang bindings unavailable; using the "
              "tokenizer engine", file=sys.stderr)
        return "tokens", None
    return "libclang", cindex


def clang_args_for(file: Path, compile_commands: list[dict],
                   repo: Path) -> list[str]:
    """Compiler args for `file` from the compile database (TUs), or the
    args of any sibling TU for headers."""
    want = file.resolve().as_posix()
    fallback: list[str] = []
    for entry in compile_commands:
        args = entry.get("arguments")
        if args is None:
            args = shlex.split(entry.get("command", ""))
        # Drop compiler, -c/-o pairs and the input path.
        cleaned: list[str] = []
        skip = False
        for a in args[1:]:
            if skip:
                skip = False
                continue
            if a in ("-c", "-o"):
                skip = (a == "-o")
                continue
            if a.endswith((".cc", ".cpp", ".cxx", ".o")):
                continue
            cleaned.append(a)
        f = Path(entry.get("file", ""))
        if not f.is_absolute():
            f = Path(entry.get("directory", ".")) / f
        if f.resolve().as_posix() == want:
            return cleaned
        if not fallback:
            fallback = cleaned
    if not fallback:
        fallback = [f"-I{repo / 'src'}", "-std=c++20"]
    return fallback
