#!/usr/bin/env python3
"""Performance gate for the HybridMR benches.

Compares a fresh google-benchmark-shaped JSON run (from bench_micro's
--benchmark_out or bench_scale's --out) against a committed baseline file
(BENCH_micro.json / BENCH_scale.json at the repo root) and fails on
regressions beyond tolerance.

The committed baseline files double as the PR's performance record: each
entry may carry a `pre_pr_real_time` (the number measured on the same
machine before the coalesced-reallocation work) and a `min_speedup`; the
gate also re-asserts that the committed baseline itself still documents
that speedup, so the record cannot silently rot when baselines are
refreshed.

Three kinds of checks, all driven by the baseline file:

  absolute      For every baseline benchmark present in the fresh run:
                fresh real_time must be <= baseline * tolerance.
                Wall-clock comparisons are machine-sensitive, so the
                default tolerance is generous (1.75x) — the gate exists to
                catch algorithmic regressions (the O(k) recompute burst
                coming back), not 10% noise. A baseline entry may carry
                its own `tolerance` overriding the global one: end-to-end
                sweep points on a shared vCPU see sustained host-speed
                drift (~2x observed) that the short, cache-resident micro
                benches do not, so BENCH_scale.json sets a wider per-entry
                tolerance while the micro gate stays at the default.

  speedup       For every baseline entry with both `pre_pr_real_time` and
                `min_speedup`: pre_pr / baseline >= min_speedup. This is a
                static property of the committed file (no fresh run
                involved) and records the PR's headline numbers.

  ratio_rules   Hardware-independent ratios evaluated on the FRESH run,
                e.g. eager recompute-burst time / deferred time >= 2.0.
                These hold on any machine, so they are the strictest part
                of the gate.

Usage:
  perf_gate.py check  --baseline BENCH_micro.json --run fresh.json
                      [--tolerance 1.75]
  perf_gate.py update --baseline BENCH_micro.json --run fresh.json

`update` rewrites the baseline real_time values from the fresh run while
preserving pre_pr_real_time, min_speedup and ratio_rules, then re-runs
`check` so a refresh that breaks the speedup record fails immediately.
See docs/PERFORMANCE.md for the refresh workflow.

When the gate FAILS and a sibling profile file exists next to the fresh
run JSON (scale.json -> scale.profile.json, written by
`bench_scale --profile`), the failure report ends with the top-5 wall
hotspots — diffed against the baseline's sibling profile when that exists
too — so "the gate is red" arrives together with "here is what got slow".
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import profile_report

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def sibling_profile(path: Path) -> Path:
    return path.with_suffix(".profile.json")


# Deterministic work counters that explain an absolute-budget failure: the
# dispatch sweep, the shuffle event count and the reschedule churn are the
# three superlinear cost centres this gate exists to pin down.
KEY_COUNTERS = ("dispatch_tracker_scans", "shuffle_transfers",
                "reschedule_pushed", "reschedule_deferred")


def print_key_counter_deltas(base_profile: dict, run_profile: dict,
                             point: str) -> None:
    """Deltas of the headline work counters (deterministic, so any growth
    here is an algorithmic regression, not machine noise)."""
    old = profile_report.counters(base_profile) if base_profile else {}
    new = profile_report.counters(run_profile)
    rows = [(k, old.get(k), new.get(k)) for k in KEY_COUNTERS
            if k in old or k in new]
    if not rows:
        return
    print(f"perf_gate: work-counter deltas for {point} "
          "(deterministic; growth = algorithmic regression):")
    for name, o, n in rows:
        if o is None:
            print(f"  {name:<28}{'-':>14}{n:>14.0f}")
        elif n is None:
            print(f"  {name:<28}{o:>14.0f}{'-':>14}")
        else:
            growth = f"{n / o:.2f}x" if o else ("new" if n else "0")
            print(f"  {name:<28}{o:>14.0f}{n:>14.0f}{growth:>9}")


def print_hotspot_context(baseline_path: Path, run_path: Path) -> None:
    """Top-5 hotspot table for a failed gate; silent when no profile."""
    run_profile_path = sibling_profile(run_path)
    if not run_profile_path.exists():
        print(f"perf_gate: no profile at {run_profile_path} — rerun with "
              "bench_scale --profile for hotspot attribution")
        return
    try:
        run_points = profile_report.load_profiles(run_profile_path)
    except SystemExit:
        return
    base_points: dict[str, dict] = {}
    base_profile_path = sibling_profile(baseline_path)
    if base_profile_path.exists():
        try:
            base_points = profile_report.load_profiles(base_profile_path)
        except SystemExit:
            base_points = {}
    for name in sorted(run_points):
        new = run_points[name]
        old = base_points.get(name)
        if old is not None:
            print(f"perf_gate: hotspot deltas for {name} "
                  f"(vs {base_profile_path.name}):")
            for line in profile_report.diff_profiles(old, new, top=5):
                print(f"  {line}")
        else:
            print(f"perf_gate: top hotspots for {name} "
                  f"(no baseline profile to diff against):")
            scopes = sorted((s for s in profile_report.wall_scopes(new)
                             if s.get("count")),
                            key=lambda s: -s.get("total_ms", 0))
            for s in scopes[:5]:
                print(f"  {s['name']:<30}{s['count']:>12.0f} calls"
                      f"{s.get('total_ms', 0):>12.2f} ms")
        print_key_counter_deltas(old, new, name)


def load(path: Path) -> dict:
    with path.open(encoding="utf-8") as f:
        return json.load(f)


def to_ns(entry: dict) -> float:
    return float(entry["real_time"]) * TIME_UNIT_NS[entry.get("time_unit", "ns")]


def by_name(doc: dict) -> dict[str, dict]:
    out: dict[str, dict] = {}
    for entry in doc.get("benchmarks", []):
        # Skip google-benchmark aggregate rows (mean/median/stddev).
        if entry.get("run_type") == "aggregate":
            continue
        out[entry["name"]] = entry
    return out


def fmt_ns(ns: float) -> str:
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def check(baseline_doc: dict, run_doc: dict, tolerance: float) -> int:
    base = by_name(baseline_doc)
    run = by_name(run_doc)
    failures = 0
    checked = 0

    for name, b in base.items():
        # -- speedup record (static property of the committed file) --------
        pre = b.get("pre_pr_real_time")
        min_speedup = b.get("min_speedup")
        if pre is not None and min_speedup is not None:
            pre_ns = float(pre) * TIME_UNIT_NS[b.get("time_unit", "ns")]
            speedup = pre_ns / to_ns(b)
            checked += 1
            status = "ok" if speedup >= float(min_speedup) else "FAIL"
            print(f"  [speedup ] {name}: pre-PR {fmt_ns(pre_ns)} / baseline "
                  f"{fmt_ns(to_ns(b))} = {speedup:.2f}x "
                  f"(need >= {min_speedup}x) {status}")
            if status == "FAIL":
                failures += 1

        # -- absolute regression against the fresh run ----------------------
        r = run.get(name)
        if r is None:
            continue
        checked += 1
        base_ns, run_ns = to_ns(b), to_ns(r)
        limit_ns = base_ns * float(b.get("tolerance", tolerance))
        status = "ok" if run_ns <= limit_ns else "FAIL"
        print(f"  [absolute] {name}: run {fmt_ns(run_ns)} vs baseline "
              f"{fmt_ns(base_ns)} (limit {fmt_ns(limit_ns)}) {status}")
        if status == "FAIL":
            failures += 1

    for rule in baseline_doc.get("ratio_rules", []):
        num = run.get(rule["numerator"])
        den = run.get(rule["denominator"])
        name = rule.get("name", f"{rule['numerator']}/{rule['denominator']}")
        if num is None or den is None:
            print(f"  [ratio   ] {name}: MISSING benchmark in run "
                  f"({rule['numerator']} / {rule['denominator']})")
            failures += 1
            continue
        # A rule may compare any numeric field the bench emits (e.g.
        # events_per_sec for throughput-survives-scale rules); real_time
        # (the default) goes through the unit-aware conversion.
        metric = rule.get("metric", "real_time")
        if metric == "real_time":
            num_value, den_value = to_ns(num), to_ns(den)
        elif metric in num and metric in den:
            num_value, den_value = float(num[metric]), float(den[metric])
        else:
            print(f"  [ratio   ] {name}: MISSING metric '{metric}' in run "
                  f"entries")
            failures += 1
            continue
        checked += 1
        ratio = num_value / den_value
        status = "ok" if ratio >= float(rule["min_ratio"]) else "FAIL"
        print(f"  [ratio   ] {name}: {metric}({rule['numerator']}) / "
              f"{metric}({rule['denominator']}) = {ratio:.2f}x "
              f"(need >= {rule['min_ratio']}x) {status}")
        if status == "FAIL":
            failures += 1

    if checked == 0:
        print("perf_gate: no overlapping benchmarks between baseline and run")
        return 1
    print(f"perf_gate: {checked} checks, {failures} failures")
    return 1 if failures else 0


def update(baseline_path: Path, baseline_doc: dict, run_doc: dict,
           tolerance: float) -> int:
    run = by_name(run_doc)
    for entry in baseline_doc.get("benchmarks", []):
        r = run.get(entry["name"])
        if r is None:
            print(f"perf_gate: update: {entry['name']} not in run, keeping "
                  "old baseline value")
            continue
        run_ns = to_ns(r)
        entry["real_time"] = run_ns / TIME_UNIT_NS[entry.get("time_unit", "ns")]
    baseline_path.write_text(
        json.dumps(baseline_doc, indent=2) + "\n", encoding="utf-8")
    print(f"perf_gate: baselines in {baseline_path} refreshed from run")
    # A refresh that breaks the recorded speedup must fail loudly.
    return check(baseline_doc, run_doc, tolerance)


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("mode", choices=["check", "update"])
    parser.add_argument("--baseline", required=True, type=Path,
                        help="committed baseline JSON (BENCH_*.json)")
    parser.add_argument("--run", required=True, type=Path,
                        help="fresh benchmark run JSON")
    parser.add_argument("--tolerance", type=float, default=1.75,
                        help="allowed run/baseline slowdown (default 1.75)")
    args = parser.parse_args()

    baseline_doc = load(args.baseline)
    run_doc = load(args.run)
    print(f"perf_gate: {args.mode} {args.run} against {args.baseline} "
          f"(tolerance {args.tolerance}x)")
    if args.mode == "check":
        rc = check(baseline_doc, run_doc, args.tolerance)
    else:
        rc = update(args.baseline, baseline_doc, run_doc, args.tolerance)
    if rc != 0:
        print_hotspot_context(args.baseline, args.run)
    return rc


if __name__ == "__main__":
    sys.exit(main())
