// Regressions for two IPS restore-path bugs (see docs/WHATIF.md for the
// release-observer wiring these pin down):
//
//   Bug 1 — the flap-guard ratchet only ever went up. A host that
//   re-violated soon after restores doubled its required healthy streak
//   (up to 64) and then kept that requirement FOREVER, so one bad hour
//   early in a long run left batch work throttled long after the
//   interference was gone. Fix: every `ratchet_decay_epochs` consecutive
//   healthy epochs halves the requirement, and a requirement back at the
//   configured floor is dropped.
//
//   Bug 2 — stale state after attempt/machine death. `actions_` entries
//   for dead attempts lingered until the next epoch's poll, so owns()
//   lied to the DRM mid-epoch; and the per-host hysteresis maps
//   (healthy/required streaks, last restore time) were never pruned when
//   a machine crashed, growing without bound under chaos schedules. Fix:
//   an engine release observer erases actions the instant any attempt
//   dies (finish, kill, requeue, crash teardown all funnel through
//   TaskTracker::release), and epoch-start pruning drops per-host entries
//   for unpowered machines.
//
// Both tests fail against the pre-fix IPS.
#include <gtest/gtest.h>

#include <vector>

#include "core/estimator.h"
#include "core/ips.h"
#include "faults/injector.h"
#include "harness/testbed.h"
#include "interactive/app.h"
#include "interactive/presets.h"
#include "interactive/sla.h"
#include "workload/benchmarks.h"

namespace hybridmr::core {
namespace {

// One shared host: interactive VM + batch VM (datanode + tracker), the
// smallest cluster where the IPS has anything to arbitrate.
struct SharedHost {
  explicit SharedHost(harness::TestBed& bed)
      : host(bed.add_plain_machines(1)[0]),
        app_vm(bed.add_plain_vm(*host)),
        batch_vm(bed.add_plain_vm(*host)) {
    bed.hdfs().add_datanode(*batch_vm);
    bed.mr().add_tracker(*batch_vm);
  }
  cluster::Machine* host;
  cluster::VirtualMachine* app_vm;
  cluster::VirtualMachine* batch_vm;
};

// --- Bug 1: the flap-guard ratchet must decay on sustained health --------

TEST(IpsFlapGuard, RatchetDecaysAfterSustainedHealth) {
  harness::TestBed bed;
  SharedHost shape(bed);

  interactive::SlaMonitor monitor;
  interactive::InteractiveApp app(bed.sim(), *shape.app_vm,
                                  interactive::olio_params(), 1000);
  app.start();
  monitor.track(app);

  Estimator estimator;
  IpsOptions options;
  options.allow_vm_migration = false;
  options.ratchet_decay_epochs = 2;  // fast decay keeps the test short
  InterferencePreventionSystem ips(bed.sim(), bed.mr(), bed.cluster(),
                                   monitor, estimator, options);
  ips.start();

  // Round 1: batch load violates the SLA, the IPS throttles, the job
  // drains, health returns and actions are restored.
  bed.mr().submit(workload::sort_job().with_input_gb(1.0));
  while (ips.stats().restores == 0 && bed.sim().now() < 2000) {
    bed.run_until(bed.sim().now() + 10);
  }
  ASSERT_GT(ips.stats().restores, 0) << "scenario never restored";

  // Round 2: re-offend inside the flap window — the ratchet must engage.
  bed.mr().submit(workload::sort_job().with_input_gb(1.0));
  while (ips.required_streak(*shape.host) <= options.restore_streak &&
         bed.sim().now() < 2000) {
    bed.run_until(bed.sim().now() + 10);
  }
  ASSERT_GT(ips.required_streak(*shape.host), options.restore_streak)
      << "flap ratchet never engaged";

  // Sustained health: the batch drains and the app idles below margin.
  // The decay must walk the requirement back to the floor — pre-fix it
  // stays ratcheted forever.
  bed.run_until(bed.sim().now() + 600);
  EXPECT_EQ(ips.required_streak(*shape.host), options.restore_streak)
      << "flap ratchet never decayed";
  app.stop();
  ips.stop();
}

// --- Bug 2: chaos must not leave stale actions or host maps behind ------

TEST(IpsStaleState, CrashErasesActionsImmediatelyAndPrunesHostMaps) {
  harness::TestBed::Options o;
  // The shared host dies mid-violation and never comes back.
  o.faults.one_shot.push_back({faults::FaultSpec::Kind::kMachineCrash,
                               /*at=*/160.0, "plain0", sim::Duration{-1.0}});
  harness::TestBed bed(o);
  SharedHost shape(bed);

  interactive::SlaMonitor monitor;
  interactive::InteractiveApp app(bed.sim(), *shape.app_vm,
                                  interactive::olio_params(), 1000);
  app.start();
  monitor.track(app);

  Estimator estimator;
  IpsOptions options;
  // Keep actions parked at throttle/pause so ownership persists until the
  // crash: no requeue erasure, no migration escape hatch, and a restore
  // margin no response time can meet (so restores never drain the map).
  options.allow_requeue = false;
  options.allow_vm_migration = false;
  options.restore_margin = 0.0;
  InterferencePreventionSystem ips(bed.sim(), bed.mr(), bed.cluster(),
                                   monitor, estimator, options);
  ips.start();

  bed.mr().submit(workload::sort_job().with_input_gb(4.0));

  // Record state just before, just after, and one epoch after the crash.
  bool owned_before = false;
  bool tracked_before = false;
  int actions_right_after_crash = -1;
  bool stale_owns_right_after_crash = false;
  std::vector<mapred::TaskAttempt*> owned;
  bed.sim().at(159.0, [&] {
    owned_before = ips.action_count() > 0;
    tracked_before = ips.tracks_host(*shape.host);
    for (auto* a : bed.mr().running_attempts()) {
      if (ips.owns(*a)) owned.push_back(a);
    }
  });
  // 160.5 sits between the crash and the next IPS epoch (tick at 170): an
  // epoch-start poll cannot have run yet, so only the event-driven
  // release observer can have cleaned up — exactly what the fix adds.
  bed.sim().at(160.5, [&] {
    actions_right_after_crash = ips.action_count();
    for (auto* a : owned) {
      stale_owns_right_after_crash |= ips.owns(*a);
    }
  });
  bed.run_until(180.0);

  ASSERT_TRUE(owned_before) << "IPS never took ownership before the crash";
  ASSERT_TRUE(tracked_before);
  ASSERT_FALSE(shape.host->powered());
  // Event-driven: dead attempts leave the action map the instant the
  // crash tears their trackers down, not at the next epoch.
  EXPECT_EQ(actions_right_after_crash, 0);
  EXPECT_FALSE(stale_owns_right_after_crash);
  // Epoch-start pruning: the dead host's hysteresis entries are gone.
  EXPECT_FALSE(ips.tracks_host(*shape.host));
  ips.stop();
}

}  // namespace
}  // namespace hybridmr::core
