// Fixture: capture-lifetime. Strong self-captures in EventQueue
// registrations, plus the clean weak-capture / stored-handle idioms that
// must NOT be flagged.
#include <memory>

#include "sim/simulation.h"

namespace cluster {

struct Watcher : std::enable_shared_from_this<Watcher> {
  void fire();
  void arm(sim::Simulation& sim) {
    // line 14: shared_from_this() in the capture list
    sim.after(sim::Duration{5.0}, [self = shared_from_this()]() { self->fire(); });
  }
  void arm_weak(sim::Simulation& sim) {
    std::weak_ptr<Watcher> weak = weak_from_this();
    // clean: weak capture, locked inside
    sim.after(sim::Duration{5.0}, [weak]() {
      if (auto self = weak.lock()) self->fire();
    });
  }
};

void register_job(sim::Simulation& sim) {
  std::shared_ptr<int> job = std::make_shared<int>(7);
  // line 28: by-copy capture of a shared_ptr-declared name
  sim.at(9.0, [job]() { (void)*job; });
}

struct Poller {
  void poll();
  void start(sim::Simulation& sim) {
    // line 35: this-capturing every() whose PeriodicHandle is discarded
    sim.every(sim::Duration{1.0}, [this]() { poll(); });
  }
  void start_stored(sim::Simulation& sim) {
    // clean: the handle is kept, so the ticker can be cancelled
    ticker_ = sim.every(sim::Duration{1.0}, [this]() { poll(); });
  }
  sim::PeriodicHandle ticker_;
};

}  // namespace cluster
