// Fixture: dim-raw-double. Deliberate violations — never built, only fed
// to hybridmr-analyze by tests/analyze/analyze_driver.py, which pins the
// expected rule IDs and line numbers. Keep line numbers stable or update
// the driver.
#pragma once

#include <vector>

namespace cluster {

struct DimBad {
  double block_mb = 64.0;              // line 12: unit-suffixed field
  float idle_watts = 0.0F;             // line 13: float counts too
  std::vector<double> sizes_mb;        // line 14: container of raw doubles
  void set_deadline(double deadline);  // line 15: unit-word parameter
  double shuffle_ratio = 0.5;          // clean: dimensionless name
  // sim-lint: allow(dim-raw-double)
  double legacy_mbps = 0.0;            // clean: suppressed on line above
};

}  // namespace cluster
