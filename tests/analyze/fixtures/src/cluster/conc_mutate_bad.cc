// mutation-outside-drain fixtures: direct calls to the allocation-engine
// mutators outside the Machine/ReallocCoordinator drain path. Line
// numbers are pinned in analyze_driver.py.
namespace hybridmr::cluster {

struct FakeWorkload {
  void settle(double now);
  void apply_allocation(int share);
  void finish(double now);
  void settle_now();
};

struct FakeCoordinator {
  void mark_dirty(int machine);
};

void poke(FakeWorkload* w, FakeCoordinator& coord) {
  w->settle(1.0);          // line 18: bypasses the drain
  coord.mark_dirty(3);     // line 19: dirty-set write outside the path

  // sim-lint: allow(mutation-outside-drain)
  w->apply_allocation(2);  // suppressed decoy

  w->settle_now();         // clean: the profiler-read entry point
}

}  // namespace hybridmr::cluster
