// handler-cross-machine fixtures: event handlers touching state on more
// than one machine, plus acknowledged/suppressed/clean decoys. Line
// numbers are pinned in analyze_driver.py.
namespace hybridmr::cluster {

class Machine {
 public:
  void invalidate();
};

struct FakeSim {
  template <typename F>
  void after(double delay, F fn);
  template <typename F>
  void at(double when, F fn);
};

void wire(FakeSim& sim, Machine* left, Machine* right) {
  sim.after(2.0, [left, right]() {  // line 19: touches left AND right
    left->invalidate();
    right->invalidate();
  });

  sim.at(1.0, [left]() {  // clean: single machine
    left->invalidate();
  });

  // hmr-cross-machine(transfer teardown touches both endpoints by design)
  sim.after(3.0, [left, right]() {  // acknowledged -> report-only
    left->invalidate();
    right->invalidate();
  });

  // sim-lint: allow(handler-cross-machine)
  sim.after(4.0, [left, right]() {  // suppressed decoy
    left->invalidate();
    right->invalidate();
  });
}

}  // namespace hybridmr::cluster
