// Fixture: the legal half of the storage <-> mapred cycle. mapred may
// include storage, so this line alone is clean — but together with
// ../storage/cycle_bad.cc it forms a two-layer strongly connected
// component that layer-cycle must report (anchored here, at the
// alphabetically-first participating edge).
#include "storage/hdfs.h"  // line 6: legal edge, completes the cycle
