// Fixture: one half of a storage <-> mapred layer cycle. This include is
// upward (storage may not see mapred) and, combined with
// ../mapred/cycle_other.cc's legal include of storage, closes a cycle in
// the observed layer graph for the layer-cycle pass.
#include "mapred/engine.h"  // line 5: storage -> mapred is upward
