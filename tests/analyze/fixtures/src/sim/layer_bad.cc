// Fixture: layer-upward-include. sim is near the bottom of the DAG and
// may only include audit; cluster is two layers up.
#include "audit/audit.h"    // clean: sim -> audit is allowed
#include "cluster/machine.h"  // line 4: sim -> cluster is upward
