// rng-discipline fixtures: raw std engines/distributions outside
// src/sim/rng.h. Line numbers are pinned in analyze_driver.py.
#include <random>

namespace hybridmr::sim {

double draw() {
  std::mt19937 bad_engine(42);                            // line 8
  std::uniform_real_distribution<double> bad_dist(0, 1);  // line 9

  // sim-lint: allow(rng-discipline)
  std::mt19937_64 suppressed_engine(7);  // suppressed decoy

  // Clean: drawing through a named stream object is the sanctioned path.
  struct NamedStream {
    double uniform() { return 0.5; }
  } stream;
  double ok = stream.uniform();

  return ok + bad_dist(bad_engine) +
         static_cast<double>(suppressed_engine());
}

}  // namespace hybridmr::sim
