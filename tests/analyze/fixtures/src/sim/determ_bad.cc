// Fixture: determinism rules (wall-clock, unordered-iteration,
// unordered-accumulation, simtime-eq, eager-recompute).
#include <chrono>
#include <unordered_map>

namespace sim {

double wall_now() {
  auto t = std::chrono::steady_clock::now();  // line 9: wall-clock
  (void)t;
  return 0.0;
}

double sum_loads() {
  std::unordered_map<int, double> load;
  double total = 0.0;
  for (const auto& kv : load) {  // line 17: unordered-iteration
    total += kv.second;          // line 18: unordered-accumulation
  }
  // clean: suppressed iteration, but the accumulation inside still fires
  // sim-lint: allow(unordered-iteration)
  for (const auto& kv : load) {  // suppressed
    total -= kv.second;          // line 23: unordered-accumulation
  }
  return total;
}

bool same_instant(SimTime a, SimTime b) {
  return a == b;  // line 29: simtime-eq
}

template <typename M>
void poke(M& machine) {
  machine.recompute();  // line 34: eager-recompute
}

}  // namespace sim
