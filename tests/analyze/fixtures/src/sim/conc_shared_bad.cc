// shared-mutable-state fixtures: mutable static-storage data, with
// sanctioned/suppressed decoys that must NOT be findings. Line numbers
// are pinned in tests/analyze/analyze_driver.py.
namespace hybridmr::sim {

static int bad_counter = 0;      // line 6: namespace-scope mutable static
inline double bad_tuning = 1.5;  // line 7: inline variable (header global)
thread_local int bad_tls = 0;    // line 8: thread_local is still shared

static const int kFineConst = 3;           // clean: immutable
static constexpr double kFineConstexpr{2}; // clean: immutable
inline constexpr int kFineInline = 9;      // clean: immutable

// hmr-shared(process-global): sanctioned site — report-only, no finding.
static int sanctioned_counter = 0;

// sim-lint: allow(shared-mutable-state)
static int suppressed_counter = 0;  // suppressed decoy

int bump() {
  static int bad_call_count = 0;  // line 21: function-local mutable static
  return ++bad_call_count + bad_counter + bad_tls + sanctioned_counter +
         suppressed_counter + kFineConst + kFineInline;
}

}  // namespace hybridmr::sim
