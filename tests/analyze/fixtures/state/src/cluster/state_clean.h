// Clean state fixture: every field classifiable without annotation,
// nothing fires. Exercises the TestBed root, the shared primary/observer
// roles, and a back-reference satisfied by an owning edge (pool_ owns
// Widget, so into_pool_ needs no annotation).
#pragma once

#include <memory>
#include <vector>

namespace fx {

struct Widget {
  double mass = 0;
};

class TestBed {
 private:
  std::vector<Widget> pool_;
  std::shared_ptr<Widget> primary_;
  std::weak_ptr<Widget> observer_;
  Widget* into_pool_ = nullptr;
  unsigned long seed_ = 42;
};

}  // namespace fx
