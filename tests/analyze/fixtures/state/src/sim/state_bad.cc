// Impl sibling of state_bad.h: the new/delete ownership evidence for
// gadget_, plus the hidden-state callback sites (violation, suppressed,
// annotated sanction). The blank lines between at() calls matter: the
// scanner reads a three-line window per call site, so adjacent sites
// must not bleed into each other's windows.
#include "sim/state_bad.h"

namespace fx {

Simulation::~Simulation() {
  delete gadget_;
}

void Simulation::tick() {}

void Simulation::schedule() {
  at(1.0, [this] { tick(); });  // clean: no captured-by-value mutable state


  at(5.0, [n = 0]() mutable { ++n; });  // line 20: state-hidden-state

  at(6.0, [k = 0]() mutable { ++k; });  // sim-lint: allow(state-hidden-state)

  // hmr-state(ephemeral: fixture-sanctioned counter, discarded on fork)
  at(7.0, [j = 0]() mutable { ++j; });
}

}  // namespace fx
