// State-group fixture: each rule fires exactly once, with suppressed and
// annotated decoys that must stay silent. Line numbers are pinned in
// tests/analyze/analyze_driver.py — keep the `line N:` markers in sync.
#pragma once

#include <functional>
#include <memory>

namespace fx {

struct Orphan {
  int x = 0;
};

struct Owned {
  int y = 0;
};

class Simulation {
 public:
  void at(double t, std::function<void()> fn);
  void tick();
  void schedule();
  ~Simulation();

 private:
  UnknownHandle handle_;  // line 27: state-unclassified-field
  Gadget* gadget_;        // line 28: state-raw-owner (delete in the .cc)
  Orphan* orphan_;        // line 29: state-backref-cycle (nobody owns Orphan)
  std::unique_ptr<Owned> owned_;  // clean: owned-heap
  double clock_ = 0;              // clean: owned-value
  MysteryState quiet_;  // sim-lint: allow(state-unclassified-field)
  // hmr-state(ephemeral: memo rebuilt on first use after a fork)
  ScratchBlob scratch_;
  // hmr-state(back-reference: owner=the embedding harness)
  Orphan* harness_orphan_;
};

}  // namespace fx
