#!/usr/bin/env python3
"""ctest driver for scripts/analyze/hybridmr-analyze.

Nine checks:

  1. fixtures   The known-violation tree under tests/analyze/fixtures/
                produces EXACTLY the expected (rule, file, line) set —
                nothing missing (a rule went no-op), nothing extra (a
                rule regressed into noise), suppressed/clean decoys
                absent.
  2. clean src  The real src/ tree with the committed baseline reports
                zero findings and exits 0 — the state CI gates on.
  3. loud fail  --engine libclang on a machine without the clang python
                bindings must abort with a nonzero exit and an explicit
                refusal, never silently skip (skipped when the bindings
                are actually importable).
  4. wrapper    scripts/lint_sim.py still finds determinism violations
                when handed a fixture file directly (the delegation path
                ci.sh's lint stage uses).
  5. report     --group=concurrency --shared-state-report emits the
                layer-keyed census: sanctioned fixture statics appear as
                annotated sites, acknowledged cross-machine handlers as
                report-only entries, and the real src/ report lists the
                annotated core sites (EventQueue heap_, coordinator
                dirty-set).
  6. exit codes 0 clean / 1 findings / 2 configuration-or-internal
                error: unknown rules, --shared-state-report without the
                concurrency rules, --state-graph-report without the
                state rules, and an unwritable report path must all
                exit 2, never 0 or 1.
  7. state      The state-rule fixture tree under fixtures/state/
                produces exactly the pinned (rule, file, line) set for
                all four state rules, the suppressed/annotated decoys
                stay silent, and the census records the sanctioned
                sites (ephemeral/back-reference annotations, hidden-
                state sanctions, shared primary/observer roles).
  8. src census The real src/ tree passes the state group with ZERO
                unclassified fields, and the state-graph census lists
                the annotated core sites the snapshot contract relies
                on (Simulation probe_, scratch/offer-set ephemerals).
  9. catalog    --list-rules prints every registered rule; --sarif
                emits a parseable SARIF 2.1.0 log whose results agree
                with the findings.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
ANALYZE = REPO / "scripts" / "analyze" / "hybridmr-analyze"
LINT_SIM = REPO / "scripts" / "lint_sim.py"
FIXTURES = REPO / "tests" / "analyze" / "fixtures"

# (rule, fixture-relative file, 1-based line). Keep in sync with the
# `// line N:` markers inside the fixture sources.
EXPECTED = sorted([
    ("dim-raw-double", "src/cluster/dim_bad.h", 12),
    ("dim-raw-double", "src/cluster/dim_bad.h", 13),
    ("dim-raw-double", "src/cluster/dim_bad.h", 14),
    ("dim-raw-double", "src/cluster/dim_bad.h", 15),
    ("layer-upward-include", "src/sim/layer_bad.cc", 4),
    ("layer-upward-include", "src/storage/cycle_bad.cc", 5),
    # cycle_bad.cc (storage->mapred) + cycle_other.cc (mapred->storage):
    ("layer-cycle", "src/mapred/cycle_other.cc", 6),
    # layer_bad.cc (sim->cluster) + capture_bad.cc (cluster->sim):
    ("layer-cycle", "src/cluster/capture_bad.cc", 6),
    ("capture-lifetime", "src/cluster/capture_bad.cc", 14),
    ("capture-lifetime", "src/cluster/capture_bad.cc", 28),
    ("capture-lifetime", "src/cluster/capture_bad.cc", 35),
    ("wall-clock", "src/sim/determ_bad.cc", 9),
    ("unordered-iteration", "src/sim/determ_bad.cc", 17),
    ("unordered-accumulation", "src/sim/determ_bad.cc", 18),
    ("unordered-accumulation", "src/sim/determ_bad.cc", 23),
    ("simtime-eq", "src/sim/determ_bad.cc", 29),
    ("eager-recompute", "src/sim/determ_bad.cc", 34),
    ("shared-mutable-state", "src/sim/conc_shared_bad.cc", 6),
    ("shared-mutable-state", "src/sim/conc_shared_bad.cc", 7),
    ("shared-mutable-state", "src/sim/conc_shared_bad.cc", 8),
    ("shared-mutable-state", "src/sim/conc_shared_bad.cc", 21),
    ("rng-discipline", "src/sim/conc_rng_bad.cc", 8),
    ("rng-discipline", "src/sim/conc_rng_bad.cc", 9),
    ("mutation-outside-drain", "src/cluster/conc_mutate_bad.cc", 18),
    ("mutation-outside-drain", "src/cluster/conc_mutate_bad.cc", 19),
    ("handler-cross-machine", "src/cluster/conc_handler_bad.cc", 19),
])

# Pinned findings for the state-rule fixture tree (run with
# --root fixtures/state, so file paths are relative to that root).
STATE_EXPECTED = sorted([
    ("state-unclassified-field", "src/sim/state_bad.h", 27),
    ("state-raw-owner", "src/sim/state_bad.h", 28),
    ("state-backref-cycle", "src/sim/state_bad.h", 29),
    ("state-hidden-state", "src/sim/state_bad.cc", 20),
])

failures: list[str] = []


def check(label: str, ok: bool, detail: str = "") -> None:
    print(f"{'ok  ' if ok else 'FAIL'} {label}" + (f": {detail}" if detail and not ok else ""))
    if not ok:
        failures.append(label)


def run(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, *argv],
                          capture_output=True, text=True)


# --- 1. fixture tree: exact findings -----------------------------------
with tempfile.TemporaryDirectory() as td:
    out = Path(td) / "findings.json"
    p = run(str(ANALYZE), "--root", str(FIXTURES), "--no-baseline",
            "--engine", "tokens", "--json", str(out), str(FIXTURES / "src"))
    check("fixtures exit status is 1", p.returncode == 1,
          f"got {p.returncode}\n{p.stdout}\n{p.stderr}")
    payload = json.loads(out.read_text(encoding="utf-8"))
    got = sorted((f["rule"], f["file"], f["line"])
                 for f in payload["findings"])
    missing = [e for e in EXPECTED if e not in got]
    extra = [g for g in got if g not in EXPECTED]
    check("fixture findings match expected set", not missing and not extra,
          f"missing={missing} extra={extra}")
    check("fixture run reports its engine", payload["engine"] in
          ("tokens", "libclang"), str(payload.get("engine")))

# --- 2. real src/ is clean under the committed baseline ----------------
p = run(str(ANALYZE), "--engine", "tokens", str(REPO / "src"))
check("src/ clean with committed baseline (exit 0)", p.returncode == 0,
      f"exit {p.returncode}\n{p.stdout}")
check("src/ summary says 0 findings", "0 findings" in p.stdout, p.stdout)

# --- 3. explicit libclang without bindings fails loudly ----------------
probe = run("-c", "import clang.cindex")
if probe.returncode != 0:
    p = run(str(ANALYZE), "--engine", "libclang", str(REPO / "src"))
    check("--engine libclang aborts when bindings missing",
          p.returncode not in (0, 1), f"exit {p.returncode}")
    check("libclang abort message is explicit",
          "Refusing to silently skip" in p.stderr, p.stderr)
else:
    print("skip --engine libclang abort checks (bindings present)")

# --- 4. lint_sim.py wrapper delegation ---------------------------------
p = run(str(LINT_SIM), str(FIXTURES / "src" / "sim" / "determ_bad.cc"))
check("lint_sim.py wrapper finds determinism violations (exit 1)",
      p.returncode == 1, f"exit {p.returncode}\n{p.stdout}\n{p.stderr}")
check("wrapper reports wall-clock", "[wall-clock]" in p.stdout, p.stdout)
check("wrapper omits src-only rules", "[dim-raw-double]" not in p.stdout
      and "[capture-lifetime]" not in p.stdout, p.stdout)

p = run(str(LINT_SIM), str(REPO / "src"), str(REPO / "tests"),
        str(REPO / "bench"), str(REPO / "examples"))
check("lint_sim.py clean over src/tests/bench/examples (exit 0)",
      p.returncode == 0, f"exit {p.returncode}\n{p.stdout}")

# --- 5. shared-state report content ------------------------------------
with tempfile.TemporaryDirectory() as td:
    report_path = Path(td) / "report.json"
    p = run(str(ANALYZE), "--root", str(FIXTURES), "--no-baseline",
            "--engine", "tokens", "--group", "concurrency",
            "--shared-state-report", str(report_path),
            str(FIXTURES / "src"))
    check("fixture concurrency group exits 1", p.returncode == 1,
          f"exit {p.returncode}\n{p.stdout}\n{p.stderr}")
    report = json.loads(report_path.read_text(encoding="utf-8"))
    sim_sites = {(s["identifier"], s["annotated"])
                 for s in report["shared_state"].get("sim", [])}
    check("sanctioned fixture static is an annotated report site",
          ("sanctioned_counter", True) in sim_sites, str(sim_sites))
    check("violating fixture static is an unannotated report site",
          ("bad_counter", False) in sim_sites, str(sim_sites))
    handlers = {(h["file"], h["line"], h["acknowledged"])
                for h in report["cross_machine_handlers"]}
    check("flagged cross-machine handler appears unacknowledged",
          ("src/cluster/conc_handler_bad.cc", 19, False) in handlers,
          str(handlers))
    check("marked cross-machine handler appears acknowledged, not flagged",
          ("src/cluster/conc_handler_bad.cc", 29, True) in handlers,
          str(handlers))

    src_report = Path(td) / "src_report.json"
    p = run(str(ANALYZE), "--engine", "tokens", "--group", "concurrency",
            "--shared-state-report", str(src_report), str(REPO / "src"))
    check("src/ concurrency group is clean (exit 0)", p.returncode == 0,
          f"exit {p.returncode}\n{p.stdout}")
    report = json.loads(src_report.read_text(encoding="utf-8"))
    annotated = {(s["file"], s["identifier"])
                 for layer in report["shared_state"].values()
                 for s in layer if s["annotated"]}
    for site in [("src/sim/event_queue.h", "heap_"),
                 ("src/cluster/realloc.h", "dirty_"),
                 ("src/telemetry/metrics.h", "entries_"),
                 ("src/sim/log.h", "sink")]:
        check(f"src/ census lists annotated site {site[1]}",
              site in annotated, str(sorted(annotated)))
    check("src/ census has no unannotated shared state",
          all(s["annotated"]
              for layer in report["shared_state"].values() for s in layer),
          str(report["shared_state"]))

# --- 7. state-rule fixture tree ----------------------------------------
STATE_FIXTURES = FIXTURES / "state"
with tempfile.TemporaryDirectory() as td:
    out = Path(td) / "findings.json"
    census_path = Path(td) / "census.json"
    p = run(str(ANALYZE), "--root", str(STATE_FIXTURES), "--no-baseline",
            "--engine", "tokens", "--group", "state",
            "--state-graph-report", str(census_path),
            "--json", str(out), str(STATE_FIXTURES / "src"))
    check("state fixtures exit status is 1", p.returncode == 1,
          f"got {p.returncode}\n{p.stdout}\n{p.stderr}")
    payload = json.loads(out.read_text(encoding="utf-8"))
    got = sorted((f["rule"], f["file"], f["line"])
                 for f in payload["findings"])
    missing = [e for e in STATE_EXPECTED if e not in got]
    extra = [g for g in got if g not in STATE_EXPECTED]
    check("state fixture findings match expected set",
          not missing and not extra, f"missing={missing} extra={extra}")
    census = json.loads(census_path.read_text(encoding="utf-8"))
    sim_fields = {f["name"]: f
                  for f in census["layers"]["sim"]["classes"]["Simulation"]
                  ["fields"]}
    check("annotated ephemeral sanction is censused, not flagged",
          sim_fields["scratch_"]["kind"] == "ephemeral"
          and sim_fields["scratch_"]["annotated"], str(sim_fields))
    check("annotated back-reference sanction carries its owner note",
          sim_fields["harness_orphan_"]["annotated"]
          and "harness" in sim_fields["harness_orphan_"].get("note", ""),
          str(sim_fields.get("harness_orphan_")))
    check("suppressed unclassified field still counts in the census",
          census["summary"]["unclassified"] == 2, str(census["summary"]))
    hidden = {(h["line"], h["sanctioned"])
              for h in census["hidden_state"]}
    check("hidden-state sites: violation+suppressed unsanctioned, "
          "annotated sanctioned",
          hidden == {(20, False), (22, False), (25, True)}, str(hidden))
    tb_fields = {f["name"]: f
                 for f in census["layers"]["cluster"]["classes"]["TestBed"]
                 ["fields"]}
    check("shared primary/observer roles recorded",
          tb_fields["primary_"].get("role") == "primary"
          and tb_fields["observer_"].get("role") == "observer",
          str(tb_fields))
    check("owner-satisfied back-reference needs no annotation",
          tb_fields["into_pool_"]["kind"] == "back-reference"
          and not tb_fields["into_pool_"]["annotated"], str(tb_fields))

# --- 8. real src/ state census: exhaustive, zero unclassified ----------
with tempfile.TemporaryDirectory() as td:
    census_path = Path(td) / "state_graph.json"
    p = run(str(ANALYZE), "--engine", "tokens", "--group", "state",
            "--state-graph-report", str(census_path), str(REPO / "src"))
    check("src/ state group is clean (exit 0)", p.returncode == 0,
          f"exit {p.returncode}\n{p.stdout}")
    census = json.loads(census_path.read_text(encoding="utf-8"))
    check("src/ census has zero unclassified fields",
          census["summary"]["unclassified"] == 0, str(census["summary"]))
    check("src/ census reaches the sim core",
          census["summary"]["reachable_classes"] > 0
          and census["summary"]["fields"] > 0, str(census["summary"]))
    annotated = {(cls["file"], fname, f["kind"])
                 for layer in census["layers"].values()
                 for cname, cls in layer["classes"].items()
                 for f in cls["fields"] if f["annotated"]
                 for fname in [f["name"]]}
    for site in [("src/sim/simulation.h", "probe_", "back-reference"),
                 ("src/cluster/machine.h", "scratch_demands_", "ephemeral"),
                 ("src/mapred/engine.h", "offer_map_", "ephemeral"),
                 ("src/telemetry/profiler.h", "counts_", "ephemeral")]:
        check(f"src/ state census lists annotated site {site[1]}",
              site in annotated, str(sorted(annotated)))
    check("src/ census spans multiple layers",
          len(census["layers"]) >= 6, str(sorted(census["layers"])))

# --- 9. rule catalog and SARIF output ----------------------------------
p = run(str(ANALYZE), "--list-rules")
check("--list-rules exits 0", p.returncode == 0, f"exit {p.returncode}")
for rule in ["dim-raw-double", "state-unclassified-field",
             "state-hidden-state", "shared-mutable-state", "wall-clock"]:
    check(f"--list-rules names {rule}", rule in p.stdout, p.stdout)

with tempfile.TemporaryDirectory() as td:
    sarif_path = Path(td) / "findings.sarif"
    p = run(str(ANALYZE), "--root", str(STATE_FIXTURES), "--no-baseline",
            "--engine", "tokens", "--group", "state",
            "--sarif", str(sarif_path), str(STATE_FIXTURES / "src"))
    check("state fixtures with --sarif still exit 1", p.returncode == 1,
          f"exit {p.returncode}\n{p.stderr}")
    sarif = json.loads(sarif_path.read_text(encoding="utf-8"))
    check("sarif declares version 2.1.0", sarif.get("version") == "2.1.0",
          str(sarif.get("version")))
    results = sarif["runs"][0]["results"]
    got = sorted((r["ruleId"],
                  r["locations"][0]["physicalLocation"]["artifactLocation"]
                  ["uri"],
                  r["locations"][0]["physicalLocation"]["region"]
                  ["startLine"]) for r in results)
    check("sarif results agree with the pinned state findings",
          got == STATE_EXPECTED, f"got={got}")
    rules = {r["id"] for r in
             sarif["runs"][0]["tool"]["driver"]["rules"]}
    check("sarif rule metadata covers the fired rules",
          {r for r, _f, _l in STATE_EXPECTED} <= rules, str(rules))

# --- 6. exit-code hygiene: config/internal errors are 2, never 0/1 -----
p = run(str(ANALYZE), "--rules", "no-such-rule", str(REPO / "src"))
check("unknown rule exits 2", p.returncode == 2, f"exit {p.returncode}")
p = run(str(ANALYZE), "--group", "no-such-group", str(REPO / "src"))
check("unknown group exits 2", p.returncode == 2, f"exit {p.returncode}")
p = run(str(ANALYZE), "--rules", "dimensions",
        "--shared-state-report", "anywhere.json", str(REPO / "src"))
check("--shared-state-report without concurrency rules exits 2",
      p.returncode == 2, f"exit {p.returncode}\n{p.stderr}")
p = run(str(ANALYZE), "--rules", "dimensions",
        "--state-graph-report", "anywhere.json", str(REPO / "src"))
check("--state-graph-report without state rules exits 2",
      p.returncode == 2, f"exit {p.returncode}\n{p.stderr}")
p = run(str(ANALYZE), "--engine", "tokens", "--group", "state",
        "--state-graph-report", "/nonexistent-dir/state.json",
        str(REPO / "src"))
check("unwritable state-graph path exits 2", p.returncode == 2,
      f"exit {p.returncode}\n{p.stderr}")
p = run(str(ANALYZE), "--engine", "tokens", "--group", "concurrency",
        "--shared-state-report", "/nonexistent-dir/report.json",
        str(REPO / "src"))
check("unwritable report path exits 2 (internal error, not findings)",
      p.returncode == 2, f"exit {p.returncode}\n{p.stderr}")
check("internal error names itself on stderr",
      "internal error" in p.stderr, p.stderr)

if failures:
    print(f"\n{len(failures)} check(s) failed: {failures}")
    sys.exit(1)
print("\nall analyze checks passed")
