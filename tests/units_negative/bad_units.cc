// Negative-compile fixture for sim/units.h: each CASE is one deliberately
// mis-dimensioned expression that MUST fail to compile. CMake registers one
// ctest per case with WILL_FAIL, invoking the compiler in -fsyntax-only
// mode; a case that compiles cleanly fails the suite.
//
// Keep each case to a single expression so a failure pinpoints the operator
// that went missing — or the careless overload that snuck in.
#include "sim/units.h"

using namespace hybridmr::sim;

#ifndef CASE
#error "compile with -DCASE=<n>"
#endif

void bad() {
#if CASE == 1
  // Power times size has no dimension here.
  auto x = Watts{180} * MegaBytes{64};
#elif CASE == 2
  // A rate plus a time span is meaningless.
  auto x = MBps{50} + Seconds{2};
#elif CASE == 3
  // Sizes and rates do not add.
  auto x = MegaBytes{64} + MBps{50};
#elif CASE == 4
  // Energy is not power.
  Watts x = Watts{1};
  x = Joules{3600} / MegaBytes{1};
#elif CASE == 5
  // No implicit construction from a bare double.
  MegaBytes x = 64.0;
#elif CASE == 6
  // No implicit decay back to double.
  double x = MegaBytes{64};
#elif CASE == 7
  // Cross-dimension assignment.
  Seconds x{1};
  x = MegaBytes{1};
#else
#error "unknown CASE"
#endif
  (void)x;
}
