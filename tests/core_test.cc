// Tests for HybridMR's core: profiler (Algorithm 1), Phase I placement
// (Algorithm 2), Estimator models, DRM and IPS behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "core/estimator.h"
#include "core/hybridmr.h"
#include "core/phase1.h"
#include "core/profiler.h"
#include "harness/testbed.h"
#include "interactive/presets.h"
#include "workload/benchmarks.h"

namespace hybridmr::core {
namespace {

using harness::TestBed;

// ----------------------------------------------------------- ProfileDb ----

TEST(ProfileDatabase, ExactLookup) {
  ProfileDatabase db;
  db.add({"Sort", true, 8, 2.0, 100, 60, 40});
  db.add({"Sort", false, 8, 2.0, 80, 50, 30});
  auto hit = db.lookup("Sort", true, 8, 2.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->jct_s, 100);
  EXPECT_FALSE(db.lookup("Sort", true, 4, 2.0).has_value());
  EXPECT_FALSE(db.lookup("Sort", true, 8, 3.0).has_value());
  EXPECT_FALSE(db.lookup("Kmeans", true, 8, 2.0).has_value());
  // 2% tolerance on data size.
  EXPECT_TRUE(db.lookup("Sort", true, 8, 2.01).has_value());
}

TEST(ProfileDatabase, FiltersByClusterAndData) {
  ProfileDatabase db;
  db.add({"Sort", true, 4, 1.0, 50, 30, 20});
  db.add({"Sort", true, 4, 2.0, 90, 55, 35});
  db.add({"Sort", true, 8, 1.0, 30, 18, 12});
  EXPECT_EQ(db.with_cluster_size("Sort", true, 4).size(), 2u);
  EXPECT_EQ(db.with_data_size("Sort", true, 1.0).size(), 2u);
  EXPECT_EQ(db.for_job("Sort", true).size(), 3u);
  EXPECT_TRUE(db.for_job("Sort", false).empty());
}

// ------------------------------------------------------------ Profiler ----

TEST(JobProfiler, ExactMatchReturnsStoredValue) {
  ProfileDatabase db;
  db.add({"Sort", true, 8, 2.0, 100, 60, 40});
  JobProfiler profiler(db, nullptr);
  const auto est =
      profiler.estimate(workload::sort_job().with_input_gb(2.0), true, 8);
  EXPECT_EQ(est.method, JobProfiler::Estimate::Method::kExact);
  EXPECT_DOUBLE_EQ(est.jct_s, 100);
}

TEST(JobProfiler, LinearDataExtrapolation) {
  // JCT linear in data size (paper Fig. 5(d)): 1GB->60s, 2GB->100s, so
  // 4GB should come out near 180s.
  ProfileDatabase db;
  db.add({"Sort", true, 8, 1.0, 60, 40, 20});
  db.add({"Sort", true, 8, 2.0, 100, 65, 35});
  JobProfiler profiler(db, nullptr);
  const auto est =
      profiler.estimate(workload::sort_job().with_input_gb(4.0), true, 8);
  EXPECT_EQ(est.method, JobProfiler::Estimate::Method::kDataExtrapolation);
  EXPECT_NEAR(est.jct_s, 180, 1e-6);
}

TEST(JobProfiler, ClusterExtrapolationUsesPhases) {
  // Map time follows ~1/c; build profiles at c=2,4,8 and ask for c=16.
  ProfileDatabase db;
  for (int c : {2, 4, 8}) {
    ProfileEntry e{"Sort", true, c, 2.0, 0, 0, 0};
    e.map_s = 10 + 160.0 / c;
    e.reduce_s = 20 + 40.0 / c;
    e.jct_s = e.map_s + e.reduce_s;
    db.add(e);
  }
  JobProfiler profiler(db, nullptr);
  const auto est =
      profiler.estimate(workload::sort_job().with_input_gb(2.0), true, 16);
  EXPECT_EQ(est.method, JobProfiler::Estimate::Method::kClusterExtrapolation);
  EXPECT_NEAR(est.map_s, 10 + 10, 2.0);
  EXPECT_GT(est.jct_s, est.map_s);
  EXPECT_LT(est.jct_s, 60);
}

TEST(JobProfiler, TrainingPopulatesDatabase) {
  ProfileDatabase db;
  JobProfiler profiler(db, make_simulated_runner());
  const std::vector<int> sizes{2, 4};
  const std::vector<double> data{0.25, 0.5};
  profiler.train(workload::sort_job(), false, sizes, data);
  EXPECT_EQ(db.size(), 4u);
  for (const auto& e : db.entries()) {
    EXPECT_GT(e.jct_s, 0);
    EXPECT_GT(e.map_s, 0);
    EXPECT_GT(e.reduce_s, 0);
    EXPECT_NEAR(e.jct_s, e.map_s + e.reduce_s, 1.0);
  }
}

TEST(JobProfiler, EstimationErrorIsModest) {
  // The paper reports ~10.8% mean profiling error (Fig. 6(a)). Train on
  // small data / small clusters and check the prediction for a larger run
  // against the ground-truth simulation.
  ProfileDatabase db;
  JobProfiler profiler(db, make_simulated_runner());
  const auto spec = workload::sort_job();
  const std::vector<int> sizes{4};
  const std::vector<double> data{0.5, 1.0, 2.0};
  profiler.train(spec, false, sizes, data);

  const auto est = profiler.estimate(spec.with_input_gb(4.0), false, 4);
  ASSERT_TRUE(est.valid());
  const auto truth = make_simulated_runner()(spec, false, 4, 4.0);
  const double err = std::abs(est.jct_s - truth.jct_s) / truth.jct_s;
  EXPECT_LT(err, 0.30);
}

// -------------------------------------------------------------- Phase I ----

TEST(PhaseOne, IoHeavyJobGoesNative) {
  ProfileDatabase db;
  // Virtual is 40% slower: significant overhead.
  db.add({"Sort", false, 4, 20.0, 100, 60, 40});
  db.add({"Sort", true, 8, 20.0, 140, 90, 50});
  JobProfiler profiler(db, nullptr);
  PhaseOneScheduler::Config config;
  config.native_cluster_size = 4;
  config.virtual_cluster_size = 8;
  config.auto_train = false;
  PhaseOneScheduler phase1(profiler, config);
  const auto d = phase1.place(workload::sort_job());
  EXPECT_EQ(d.pool, mapred::PlacementPool::kNativeOnly);
  EXPECT_GT(d.overhead, 0.15);
}

TEST(PhaseOne, CpuJobStaysVirtual) {
  ProfileDatabase db;
  db.add({"Kmeans", false, 4, 10.0, 100, 80, 20});
  db.add({"Kmeans", true, 8, 10.0, 106, 84, 22});
  JobProfiler profiler(db, nullptr);
  PhaseOneScheduler::Config config;
  config.native_cluster_size = 4;
  config.virtual_cluster_size = 8;
  config.auto_train = false;
  PhaseOneScheduler phase1(profiler, config);
  const auto d = phase1.place(workload::kmeans());
  EXPECT_EQ(d.pool, mapred::PlacementPool::kVirtualOnly);
  EXPECT_LT(d.overhead, 0.15);
}

TEST(PhaseOne, DesiredJctRuleOverridesThreshold) {
  ProfileDatabase db;
  db.add({"Sort", false, 4, 20.0, 100, 60, 40});
  db.add({"Sort", true, 8, 20.0, 108, 66, 42});  // only 8% overhead
  JobProfiler profiler(db, nullptr);
  PhaseOneScheduler::Config config;
  config.native_cluster_size = 4;
  config.virtual_cluster_size = 8;
  config.auto_train = false;
  PhaseOneScheduler phase1(profiler, config);
  // SLO tighter than the virtual estimate -> native despite low overhead.
  auto d = phase1.place(workload::sort_job().with_desired_jct(sim::Duration{105}));
  EXPECT_EQ(d.pool, mapred::PlacementPool::kNativeOnly);
  // Loose SLO -> virtual.
  d = phase1.place(workload::sort_job().with_desired_jct(sim::Duration{200}));
  EXPECT_EQ(d.pool, mapred::PlacementPool::kVirtualOnly);
}

TEST(PhaseOne, NoProfilesDefaultsToVirtual) {
  ProfileDatabase db;
  JobProfiler profiler(db, nullptr);
  PhaseOneScheduler::Config config;
  config.auto_train = false;
  PhaseOneScheduler phase1(profiler, config);
  const auto d = phase1.place(workload::sort_job());
  EXPECT_EQ(d.pool, mapred::PlacementPool::kVirtualOnly);
}

// ------------------------------------------------------------ Estimator ----

TEST(TaskModelTest, AnalyticRateForFewSamples) {
  TaskModel model;
  TaskSample s;
  s.time = 0;
  s.progress = 0.1;
  s.rate = 0.01;
  s.demand = {1.0, 400, 0, 0};
  s.alloc = {1.0, 400, 0, 0};
  model.add(s);
  // Halved CPU -> roughly halved predicted rate.
  cluster::Resources half = s.alloc;
  half.cpu = 0.5;
  EXPECT_NEAR(model.predict_rate(half, s.demand), 0.005, 1e-9);
  EXPECT_FALSE(model.bottleneck().has_value());
}

TEST(TaskModelTest, DetectsBottleneckAndDeficit) {
  TaskModel model;
  TaskSample s;
  s.demand = {1.0, 400, 40, 0};
  s.alloc = {1.0, 400, 10, 0};  // disk-starved
  s.rate = 0.004;
  model.add(s);
  auto b = model.bottleneck();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, cluster::ResourceKind::kDisk);
  EXPECT_NEAR(model.deficit().disk, 30, 1e-9);
  EXPECT_DOUBLE_EQ(model.deficit().cpu, 0);
}

TEST(TaskModelTest, EstimatedRemainingFromRate) {
  TaskModel model;
  TaskSample s;
  s.progress = 0.5;
  s.rate = 0.05;
  model.add(s);
  EXPECT_NEAR(model.estimated_remaining_s(), 10.0, 1e-9);
}

TEST(EstimatorTest, ObservationsBuildRates) {
  TestBed bed;
  bed.add_native_nodes(2);
  Estimator estimator;
  mapred::Job* job = bed.mr().submit(workload::sort_job().with_input_gb(0.5));
  bool positive_rate = false;
  std::size_t tracked_peak = 0;
  bed.sim().every(2.0, [&] {
    for (auto* a : bed.mr().running_attempts()) {
      estimator.observe(*a, bed.sim().now());
      const TaskModel* m = estimator.model(a);
      if (m != nullptr && !m->empty() && m->last().rate > 0) {
        positive_rate = true;
      }
    }
    tracked_peak = std::max(tracked_peak, estimator.tracked());
  });
  bed.sim().run_until(30);
  EXPECT_GT(tracked_peak, 0u);
  EXPECT_TRUE(positive_rate);
  (void)job;
}

// ------------------------------------------------------------------ DRM ----

TEST(Drm, LiftsStaticCapsOnManagedResources) {
  TestBed bed;
  bed.add_native_nodes(2);
  Estimator estimator;
  DrmOptions options;
  DynamicResourceManager drm(bed.sim(), bed.mr(), bed.cluster(), estimator,
                             options);
  bed.mr().submit(workload::sort_job().with_input_gb(0.5));
  bed.sim().run_until(5);
  auto attempts = bed.mr().running_attempts();
  ASSERT_FALSE(attempts.empty());
  // Static Hadoop caps in force before the DRM touches anything.
  EXPECT_TRUE(std::isfinite(attempts.front()->caps().disk));
  drm.epoch();
  EXPECT_TRUE(std::isinf(attempts.front()->caps().disk));
  EXPECT_TRUE(std::isinf(attempts.front()->caps().memory));
}

TEST(Drm, UnmanagedResourcesKeepStaticCaps) {
  TestBed bed;
  bed.add_native_nodes(2);
  Estimator estimator;
  DrmOptions options;
  options.manage_io = false;
  options.manage_memory = true;
  options.manage_cpu = false;
  DynamicResourceManager drm(bed.sim(), bed.mr(), bed.cluster(), estimator,
                             options);
  bed.mr().submit(workload::sort_job().with_input_gb(0.5));
  bed.sim().run_until(5);
  auto attempts = bed.mr().running_attempts();
  ASSERT_FALSE(attempts.empty());
  drm.epoch();
  EXPECT_TRUE(std::isfinite(attempts.front()->caps().disk));
  EXPECT_TRUE(std::isinf(attempts.front()->caps().memory));
}

TEST(Drm, MemoryAdmissionPausesOversubscribedTasks) {
  // Two 800 MB tasks per 1 GB VM: the DRM should serialize them.
  TestBed bed;
  bed.add_virtual_nodes(1, 2);
  Estimator estimator;
  DrmOptions options;
  DynamicResourceManager drm(bed.sim(), bed.mr(), bed.cluster(), estimator,
                             options);
  auto spec = workload::twitter().with_input_gb(0.5);  // 4 x 800MB tasks
  mapred::Job* job = bed.mr().submit(spec);
  drm.start();
  while (!job->finished()) bed.sim().run_until(bed.sim().now() + 60);
  drm.stop();
  // At some epoch both 800 MB tasks were computing inside the 1 GB VM and
  // the admission policy serialized them.
  EXPECT_GE(drm.lifetime_stats().memory_pauses, 1);
  EXPECT_GE(drm.lifetime_stats().memory_resumes, 1);
}

TEST(Drm, ManagementImprovesMemoryHeavyJct) {
  // Fig. 8(b) mechanics: Twitter on a small virtual cluster with and
  // without the Phase II DRM.
  auto spec = workload::twitter().with_input_gb(0.5).with_reducers(4);

  TestBed plain;
  plain.add_virtual_nodes(2, 2);
  const double jct_default = plain.run_job(spec);

  TestBed managed;
  managed.add_virtual_nodes(2, 2);
  Estimator estimator;
  DrmOptions options;
  DynamicResourceManager drm(managed.sim(), managed.mr(), managed.cluster(),
                             estimator, options);
  drm.start();
  mapred::Job* job = managed.mr().submit(spec);
  while (!job->finished()) managed.sim().run_until(managed.sim().now() + 60);
  drm.stop();
  EXPECT_LT(job->jct(), jct_default);
}

// ------------------------------------------------------------------ IPS ----

TEST(Ips, ThrottlesInterferersAndRestores) {
  TestBed bed;
  // One host: an interactive VM plus a batch VM.
  auto* host = bed.add_plain_machines(1)[0];
  auto* app_vm = bed.add_plain_vm(*host);
  auto* batch_vm = bed.add_plain_vm(*host);
  bed.hdfs().add_datanode(*batch_vm);
  bed.mr().add_tracker(*batch_vm);

  interactive::SlaMonitor monitor;
  interactive::InteractiveApp app(bed.sim(), *app_vm,
                                  interactive::olio_params(), 1000);
  app.start();
  monitor.track(app);

  Estimator estimator;
  IpsOptions options;
  options.allow_vm_migration = false;
  InterferencePreventionSystem ips(bed.sim(), bed.mr(), bed.cluster(),
                                   monitor, estimator, options);
  ips.start();

  bed.mr().submit(workload::sort_job().with_input_gb(1.0));
  bed.sim().run_until(400);
  // The batch job hammers the shared disk; the IPS must have acted.
  EXPECT_GT(ips.stats().violations_seen, 0);
  EXPECT_GT(ips.stats().throttles, 0);
  // And the app must end healthy.
  EXPECT_LT(app.response_time_s(), app.params().sla_s.value());
  app.stop();
  ips.stop();
}

TEST(Ips, KeepsSlaThatDefaultSchedulingViolates) {
  auto run_scenario = [](bool with_ips) {
    TestBed bed;
    auto* host = bed.add_plain_machines(1)[0];
    auto* app_vm = bed.add_plain_vm(*host);
    auto* batch_vm = bed.add_plain_vm(*host);
    bed.hdfs().add_datanode(*batch_vm);
    bed.mr().add_tracker(*batch_vm);

    interactive::SlaMonitor monitor;
    interactive::InteractiveApp app(bed.sim(), *app_vm,
                                    interactive::olio_params(), 1000);
    app.start();
    monitor.track(app);

    Estimator estimator;
    InterferencePreventionSystem ips(bed.sim(), bed.mr(), bed.cluster(),
                                     monitor, estimator, IpsOptions{});
    if (with_ips) ips.start();
    bed.mr().submit(workload::sort_job().with_input_gb(4.0));
    bed.sim().run_until(300);
    const double violation_fraction =
        interactive::SlaMonitor::violation_fraction(app, 20, 300);
    app.stop();
    return violation_fraction;
  };
  const double without = run_scenario(false);
  const double with = run_scenario(true);
  EXPECT_GT(without, 0.15);
  EXPECT_LT(with, without * 0.7);
}

// ------------------------------------------------------------- Facade ----

TEST(HybridMr, Phase1SteersJobsByOverhead) {
  TestBed bed;
  bed.add_native_nodes(4);
  bed.add_virtual_nodes(4, 2);
  core::HybridMROptions options;
  options.phase1.training_cluster_sizes = {2};
  options.phase1.training_data_gbs = {0.25, 0.5};
  HybridMRScheduler hybrid(bed.sim(), bed.cluster(), bed.hdfs(), bed.mr(),
                           options);
  hybrid.start();

  hybrid.submit(workload::sort_job().with_input_gb(1.0));
  const auto sort_decision = hybrid.last_decision();
  hybrid.submit(workload::pi_est().with_input_gb(0.5));
  const auto pi_decision = hybrid.last_decision();

  // Relative ordering must hold: the I/O-heavy job sees more overhead.
  EXPECT_GT(sort_decision.overhead, pi_decision.overhead);
  bed.sim().run_until(2000);
  hybrid.stop();
  for (const auto& job : bed.mr().jobs()) {
    EXPECT_TRUE(job->finished());
  }
}

TEST(HybridMr, DeploysInteractiveOnLeastLoadedVm) {
  TestBed bed;
  bed.add_virtual_nodes(2, 2);
  HybridMRScheduler hybrid(bed.sim(), bed.cluster(), bed.hdfs(), bed.mr());
  auto& app = hybrid.deploy_interactive(interactive::rubis_params(), 500);
  EXPECT_TRUE(app.running());
  EXPECT_TRUE(app.site().is_virtual());
  EXPECT_EQ(hybrid.sla_monitor().apps().size(), 1u);
  bed.sim().run_until(30);
  EXPECT_LT(app.response_time_s(), 2.0);
}

TEST(HybridMr, NodeCountsReflectTrackers) {
  TestBed bed;
  bed.add_native_nodes(3);
  bed.add_virtual_nodes(2, 2);
  HybridMRScheduler hybrid(bed.sim(), bed.cluster(), bed.hdfs(), bed.mr());
  EXPECT_EQ(hybrid.native_nodes(), 3);
  EXPECT_EQ(hybrid.virtual_nodes(), 4);
}

}  // namespace
}  // namespace hybridmr::core
