// Property-based tests: invariants that must hold across parameter sweeps
// (TEST_P / INSTANTIATE_TEST_SUITE_P), not just at hand-picked points.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster.h"
#include "cluster/machine.h"
#include "cluster/migration.h"
#include "harness/testbed.h"
#include "interactive/presets.h"
#include "stats/regression.h"
#include "workload/benchmarks.h"

namespace hybridmr {
namespace {

using cluster::Resources;
using cluster::Workload;
using harness::TestBed;

// ------------------------------------------------------- waterfill laws ----

class WaterfillProperty : public ::testing::TestWithParam<int> {};

TEST_P(WaterfillProperty, ConservationAndFairness) {
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const int n = rng.uniform_int(1, 12);
    std::vector<double> demands(n);
    for (auto& d : demands) d = rng.uniform(0, 10);
    const double capacity = rng.uniform(0.1, 25);
    const auto alloc = cluster::waterfill(capacity, demands);

    double total = 0;
    double min_unsat = 1e300;
    double max_unsat = 0;
    for (int i = 0; i < n; ++i) {
      // Never allocate more than demanded.
      EXPECT_LE(alloc[i], demands[i] + 1e-9);
      EXPECT_GE(alloc[i], -1e-12);
      total += alloc[i];
      if (alloc[i] < demands[i] - 1e-9) {
        min_unsat = std::min(min_unsat, alloc[i]);
        max_unsat = std::max(max_unsat, alloc[i]);
      }
    }
    // Never exceed capacity.
    EXPECT_LE(total, capacity + 1e-9);
    // Work conservation: either everyone is satisfied or capacity is used.
    double demand_total = 0;
    for (double d : demands) demand_total += d;
    if (demand_total > capacity + 1e-9) {
      EXPECT_NEAR(total, capacity, 1e-9);
      // Max-min: all unsatisfied consumers get the same share.
      if (max_unsat > 0) {
        EXPECT_NEAR(min_unsat, max_unsat, 1e-9);
      }
    } else {
      EXPECT_NEAR(total, demand_total, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaterfillProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------ machine conservation ----

class MachineProperty : public ::testing::TestWithParam<int> {};

TEST_P(MachineProperty, AllocationsNeverExceedCapacity) {
  sim::Simulation sim(GetParam());
  cluster::HybridCluster hc(sim);
  auto* machine = hc.add_machine();
  auto* vm1 = hc.add_vm(*machine);
  auto* vm2 = hc.add_vm(*machine);
  sim::Rng rng(GetParam() * 7 + 1);

  std::vector<cluster::WorkloadPtr> workloads;
  for (int i = 0; i < 9; ++i) {
    Resources d;
    d.cpu = rng.uniform(0, 1.5);
    d.memory = rng.uniform(0, 900);
    d.disk = rng.uniform(0, 70);
    d.net = rng.uniform(0, 70);
    auto w = std::make_shared<Workload>("w" + std::to_string(i), d,
                                        sim::Duration{rng.uniform(5, 50)});
    workloads.push_back(w);
    if (i % 3 == 0) {
      machine->add(w);
    } else if (i % 3 == 1) {
      vm1->add(w);
    } else {
      vm2->add(w);
    }

    Resources total;
    for (const auto& each : workloads) {
      if (each->site() != nullptr) total += each->allocated();
    }
    EXPECT_LE(total.cpu, machine->capacity().cpu + 1e-6);
    EXPECT_LE(total.disk, machine->capacity().disk + 1e-6);
    EXPECT_LE(total.net, machine->capacity().net + 1e-6);
    EXPECT_LE(total.memory, machine->capacity().memory + 1e-6);
  }
  sim.run();
  for (const auto& w : workloads) EXPECT_TRUE(w->done());
}

TEST_P(MachineProperty, SpeedNeverExceedsOne) {
  sim::Simulation sim(GetParam());
  cluster::HybridCluster hc(sim);
  auto* machine = hc.add_machine();
  sim::Rng rng(GetParam() * 13 + 5);
  for (int i = 0; i < 6; ++i) {
    Resources d;
    d.cpu = rng.uniform(0.1, 2.0);
    d.disk = rng.uniform(0, 60);
    auto w = std::make_shared<Workload>("w", d, sim::Duration{10});
    machine->add(w);
    for (const auto& each : machine->workloads()) {
      EXPECT_LE(each->speed(), 1.0 + 1e-9);
      EXPECT_GE(each->speed(), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineProperty,
                         ::testing::Values(11, 23, 37, 59));

// ------------------------------------------------------ job monotonics ----

class ClusterSizeMonotonic
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ClusterSizeMonotonic, MoreNodesNeverMuchSlower) {
  const auto [small_n, large_n] = GetParam();
  TestBed small;
  small.add_native_nodes(small_n);
  const double slow = small.run_job(workload::sort_job().with_input_gb(2));
  TestBed large;
  large.add_native_nodes(large_n);
  const double fast = large.run_job(workload::sort_job().with_input_gb(2));
  // JCT is (weakly) decreasing in cluster size, modulo wave effects.
  EXPECT_LE(fast, slow * 1.05);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ClusterSizeMonotonic,
    ::testing::Values(std::make_pair(2, 4), std::make_pair(4, 8),
                      std::make_pair(8, 16)));

class DataSizeMonotonic : public ::testing::TestWithParam<double> {};

TEST_P(DataSizeMonotonic, MoreDataTakesLonger) {
  const double gb = GetParam();
  TestBed a;
  a.add_native_nodes(4);
  const double small = a.run_job(workload::sort_job().with_input_gb(gb));
  TestBed b;
  b.add_native_nodes(4);
  const double large =
      b.run_job(workload::sort_job().with_input_gb(gb * 2));
  EXPECT_GT(large, small);
  // Fig. 5(d): roughly linear in data size.
  EXPECT_LT(large, small * 3.0);
  EXPECT_GT(large, small * 1.4);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DataSizeMonotonic,
                         ::testing::Values(1.0, 2.0, 4.0));

// -------------------------------------------------------- determinism ----

class Determinism : public ::testing::TestWithParam<const char*> {};

TEST_P(Determinism, SameSeedSameResult) {
  auto run_once = [&]() {
    TestBed::Options o;
    o.seed = 77;
    TestBed bed(o);
    bed.add_virtual_nodes(4, 2);
    return bed.run_job(workload::benchmark(GetParam()).with_input_gb(1));
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, Determinism,
                         ::testing::Values("sort", "kmeans", "wcount",
                                           "distgrep"));

// ------------------------------------------------- benchmark lifecycle ----

class BenchmarkLifecycle : public ::testing::TestWithParam<const char*> {};

TEST_P(BenchmarkLifecycle, EveryTaskCompletesExactlyOnce) {
  TestBed bed;
  bed.add_native_nodes(4);
  auto spec = workload::benchmark(GetParam());
  if (spec.input_gb > 2) spec = spec.with_input_gb(1.0);
  mapred::Job* job = bed.mr().submit(spec);
  bed.sim().run();
  ASSERT_TRUE(job->finished());
  EXPECT_GT(job->jct(), 0);
  for (const auto& t : job->maps()) {
    EXPECT_TRUE(t->completed());
    EXPECT_GT(t->duration().value(), 0);
    int finished = 0;
    for (const auto& a : t->attempts()) {
      if (a->finished()) ++finished;
      EXPECT_FALSE(a->running());
    }
    EXPECT_EQ(finished, 1);  // exactly one winner
  }
  for (const auto& t : job->reduces()) EXPECT_TRUE(t->completed());
  // Conservation of data: at least the input was read.
  EXPECT_GE(bed.hdfs().bytes_read_local_mb() +
                bed.hdfs().bytes_read_remote_mb(),
            0.9 * spec.input_mb() * 0.15);  // at least the head fetches
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, BenchmarkLifecycle,
                         ::testing::Values("twitter", "wcount", "piest",
                                           "distgrep", "sort", "kmeans"));

// ----------------------------------------------------- migration sweep ----

class MigrationMemorySweep : public ::testing::TestWithParam<double> {};

TEST_P(MigrationMemorySweep, PrecopyMonotoneInMemory) {
  const cluster::MigrationModel model(cluster::Calibration::standard());
  const double mb = GetParam();
  const auto smaller = model.plan(sim::MegaBytes{mb}, sim::MBps{1.0}, sim::MBps{10});
  const auto larger = model.plan(sim::MegaBytes{mb * 2}, sim::MBps{1.0}, sim::MBps{10});
  EXPECT_GT(larger.precopy_seconds, smaller.precopy_seconds);
  EXPECT_GT(smaller.precopy_seconds.value(), 0);
  EXPECT_TRUE(smaller.converged);
}

INSTANTIATE_TEST_SUITE_P(Memories, MigrationMemorySweep,
                         ::testing::Values(256.0, 512.0, 1024.0, 2048.0));

// ----------------------------------------------- interactive monotonic ----

class ClientSweep : public ::testing::TestWithParam<int> {};

TEST_P(ClientSweep, ThroughputScalesWithClientsUntilSaturation) {
  sim::Simulation sim(3);
  cluster::HybridCluster hc(sim);
  auto* host = hc.add_machine();
  auto* vm = hc.add_vm(*host);
  interactive::InteractiveApp app(sim, *vm, interactive::rubis_params(),
                                  GetParam());
  app.start();
  sim.run_until(30);
  EXPECT_GT(app.throughput_rps(), 0);
  // Closed-loop identity: X = N / (R + Z).
  const double expected =
      GetParam() / (app.response_time_s() + app.params().think_time_s.value());
  EXPECT_NEAR(app.throughput_rps(), expected, expected * 0.01);
  app.stop();
}

INSTANTIATE_TEST_SUITE_P(Clients, ClientSweep,
                         ::testing::Values(100, 400, 1600, 6400));

// -------------------------------------------------- regression recovery ----

class InverseRecovery : public ::testing::TestWithParam<double> {};

TEST_P(InverseRecovery, FitRecoversPlantedCoefficients) {
  const double b = GetParam();
  std::vector<double> x{1, 2, 4, 8, 16, 32};
  std::vector<double> y;
  for (double v : x) y.push_back(7.0 + b / v);
  auto fit = stats::InverseRegression::fit(x, y);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->a(), 7.0, 1e-6);
  EXPECT_NEAR(fit->b(), b, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Slopes, InverseRecovery,
                         ::testing::Values(10.0, 100.0, 1000.0));

// --------------------------------------------------- energy accounting ----

class EnergySweep : public ::testing::TestWithParam<int> {};

TEST_P(EnergySweep, EnergyBoundedByIdleAndPeak) {
  TestBed bed;
  bed.add_native_nodes(GetParam());
  bed.run_job(workload::sort_job().with_input_gb(1));
  const double end = bed.sim().now();
  const double joules = bed.cluster().energy_joules(0, end).value();
  const auto& cal = bed.calibration();
  const double idle_floor = GetParam() * cal.pm_idle_watts.value() * end;
  const double peak_ceiling = GetParam() * cal.pm_peak_watts.value() * end;
  EXPECT_GE(joules, idle_floor - 1e-6);
  EXPECT_LE(joules, peak_ceiling + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Nodes, EnergySweep, ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace hybridmr
