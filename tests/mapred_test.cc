// Tests for the MapReduce engine: job lifecycle, scheduling policies,
// speculation, deployment shapes, and the dispatch/reschedule equivalence
// pins (indexed offer-set dispatch vs the naive tracker re-scan, lazy
// completion-event reschedule vs eager cancel + re-push).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/testbed.h"
#include "mapred/engine.h"
#include "telemetry/telemetry.h"
#include "workload/benchmarks.h"

namespace hybridmr::mapred {
namespace {

using harness::TestBed;

JobSpec small_sort(double gb = 1.0) {
  return workload::sort_job().with_input_gb(gb);
}

TEST(MapReduce, SortCompletesOnNativeCluster) {
  TestBed bed;
  bed.add_native_nodes(4);
  const double jct = bed.run_job(small_sort());
  EXPECT_GT(jct, 5.0);
  EXPECT_LT(jct, 600.0);
}

TEST(MapReduce, JobPhasesAreOrdered) {
  TestBed bed;
  bed.add_native_nodes(4);
  Job* job = bed.mr().submit(small_sort());
  bed.sim().run();
  ASSERT_TRUE(job->finished());
  EXPECT_GE(job->submit_time(), 0);
  EXPECT_GT(job->map_phase_end(), job->submit_time());
  EXPECT_GT(job->finish_time(), job->map_phase_end());
  EXPECT_NEAR(job->jct(),
              job->map_phase_seconds() + job->reduce_phase_seconds(), 1e-9);
}

TEST(MapReduce, TaskCountsMatchSpec) {
  TestBed bed;
  bed.add_native_nodes(4);
  Job* job = bed.mr().submit(small_sort(1.0));  // 1024 MB -> 8 blocks
  bed.sim().run();
  EXPECT_EQ(job->maps().size(), 8u);
  // Hadoop's rule: 0.95 x total reduce slots (4 trackers x 2 slots).
  EXPECT_EQ(job->reduces().size(), 7u);
  EXPECT_EQ(job->maps_done(), 8);
  EXPECT_EQ(job->reduces_done(), 7);
  for (const auto& t : job->maps()) {
    EXPECT_TRUE(t->completed());
    EXPECT_GT(t->duration().value(), 0);
    EXPECT_NE(t->output_site(), nullptr);
  }
}

TEST(MapReduce, ExplicitReducerCountHonored) {
  TestBed bed;
  bed.add_native_nodes(4);
  Job* job = bed.mr().submit(small_sort().with_reducers(2));
  bed.sim().run();
  EXPECT_EQ(job->reduces().size(), 2u);
  EXPECT_TRUE(job->finished());
}

TEST(MapReduce, MoreNodesFinishFaster) {
  TestBed small;
  small.add_native_nodes(2);
  const double jct_small = small.run_job(small_sort(2.0));

  TestBed large;
  large.add_native_nodes(8);
  const double jct_large = large.run_job(small_sort(2.0));
  EXPECT_LT(jct_large, jct_small);
}

TEST(MapReduce, LargerInputTakesLonger) {
  TestBed bed;
  bed.add_native_nodes(4);
  const double jct1 = bed.run_job(small_sort(1.0));
  TestBed bed2;
  bed2.add_native_nodes(4);
  const double jct2 = bed2.run_job(small_sort(4.0));
  EXPECT_GT(jct2, jct1 * 2);
}

TEST(MapReduce, VirtualClusterSlowerThanNative) {
  // The headline substrate behaviour behind Fig. 1(a): same physical
  // hardware (4 PMs), I/O-bound job, virtual pays the virtualization taxes.
  const auto spec = small_sort(2.0).with_reducers(4);
  TestBed native;
  native.add_native_nodes(4);
  const double native_jct = native.run_job(spec);

  TestBed virt;
  virt.add_virtual_nodes(/*hosts=*/4, /*vms_per_host=*/2);
  const double virt_jct = virt.run_job(spec);
  EXPECT_GT(virt_jct, native_jct * 1.02);
  EXPECT_LT(virt_jct, native_jct * 1.8);
}

TEST(MapReduce, CpuBoundSuffersLessVirtualizationPenalty) {
  auto cpu_spec = workload::kmeans().with_input_gb(1.0).with_reducers(4);
  auto io_spec = small_sort(1.0).with_reducers(4);

  TestBed n1;
  n1.add_native_nodes(4);
  const double cpu_native = n1.run_job(cpu_spec);
  TestBed n2;
  n2.add_native_nodes(4);
  const double io_native = n2.run_job(io_spec);

  TestBed v1;
  v1.add_virtual_nodes(4, 2);
  const double cpu_virt = v1.run_job(cpu_spec);
  TestBed v2;
  v2.add_virtual_nodes(4, 2);
  const double io_virt = v2.run_job(io_spec);

  const double cpu_penalty = cpu_virt / cpu_native - 1.0;
  const double io_penalty = io_virt / io_native - 1.0;
  EXPECT_LT(cpu_penalty, io_penalty);
}

TEST(MapReduce, Dom0NearNativePerformance) {
  TestBed native;
  native.add_native_nodes(4);
  const double native_jct = native.run_job(small_sort(2.0));

  TestBed dom0;
  dom0.add_dom0_nodes(4);
  const double dom0_jct = dom0.run_job(small_sort(2.0));
  EXPECT_LT(dom0_jct, native_jct * 1.08);  // paper: < 5% average overhead
}

TEST(MapReduce, FairSchedulerSharesAcrossJobs) {
  // Submit a long job then a short one; under FIFO the short job waits for
  // the long job's maps, under Fair it interleaves and finishes much
  // sooner.
  auto long_job = small_sort(4.0);
  auto short_job = workload::dist_grep().with_input_gb(0.5);

  auto run_pair = [&](const std::string& policy) {
    TestBed::Options o;
    o.scheduler = policy;
    TestBed bed(o);
    bed.add_native_nodes(4);
    auto jcts = bed.run_jobs({long_job, short_job});
    return jcts[1];  // short job JCT
  };
  const double fifo_short = run_pair("fifo");
  const double fair_short = run_pair("fair");
  EXPECT_LT(fair_short, fifo_short);
}

TEST(MapReduce, MultipleJobsAllComplete) {
  TestBed bed;
  bed.add_native_nodes(6);
  std::vector<JobSpec> specs;
  for (const auto& s : workload::all_benchmarks()) {
    specs.push_back(s.with_input_gb(std::min(s.input_gb, 1.0)));
  }
  const auto jcts = bed.run_jobs(specs);
  for (double jct : jcts) EXPECT_GT(jct, 0);
}

TEST(MapReduce, SpeculativeExecutionRescuesStragglers) {
  TestBed bed;
  auto nodes = bed.add_native_nodes(4);
  // Submit, then throttle one node's first compute workload hard to create
  // a straggler once tasks are running.
  Job* job = bed.mr().submit(workload::kmeans().with_input_gb(1.0));
  bed.sim().at(20.0, [&] {
    auto attempts = bed.mr().running_attempts();
    if (!attempts.empty()) {
      cluster::Resources caps = cluster::Resources::unbounded();
      caps.cpu = 0.02;
      attempts.front()->set_caps(caps);
    }
  });
  bed.sim().run_until(5000);
  EXPECT_TRUE(job->finished());
  EXPECT_GE(bed.mr().speculative_launched(), 1);
}

TEST(MapReduce, RequeueBansTrackerAndStillFinishes) {
  TestBed bed;
  bed.add_native_nodes(4);
  Job* job = bed.mr().submit(small_sort(1.0));
  bed.sim().at(5.0, [&] {
    auto attempts = bed.mr().running_attempts();
    if (!attempts.empty()) {
      bed.mr().requeue(*attempts.front(), /*ban_tracker=*/true);
    }
  });
  bed.sim().run();
  EXPECT_TRUE(job->finished());
  EXPECT_GE(bed.mr().requeued(), 1);
}

TEST(MapReduce, SplitArchitectureOutperformsCombined) {
  // Paper Fig. 2(d): split TaskTracker/DataNode VMs beat combined VMs.
  auto spec = small_sort(2.0);

  TestBed combined;
  combined.add_virtual_nodes(/*hosts=*/4, /*vms_per_host=*/2);
  const double combined_jct = combined.run_job(spec);

  TestBed split;
  split.add_split_nodes(/*hosts=*/4, /*compute_vms_per_host=*/2);
  const double split_jct = split.run_job(spec);
  EXPECT_LT(split_jct, combined_jct);
}

TEST(MapReduce, CrossHostShuffleCostsMoreThanSameHost) {
  // Paper Fig. 2(a): 4 VMs on 1 host vs 4 VMs on 4 hosts.
  auto spec = small_sort(1.0);

  TestBed same;
  same.add_virtual_nodes(/*hosts=*/1, /*vms_per_host=*/4);
  const double same_host = same.run_job(spec);

  TestBed cross;
  cross.add_virtual_nodes(/*hosts=*/4, /*vms_per_host=*/1);
  const double cross_host = cross.run_job(spec);
  // Note: cross-host has 4x the physical hardware, but the shuffle and
  // replication traffic must cross the network.
  EXPECT_GT(same_host, 0);
  EXPECT_GT(cross_host, 0);
}

TEST(MapReduce, JobRecordsLocalityBenefit) {
  TestBed bed;
  bed.add_native_nodes(4);
  bed.run_job(small_sort(1.0));
  const double local = bed.hdfs().bytes_read_local_mb().value();
  const double remote = bed.hdfs().bytes_read_remote_mb().value();
  // The scheduler prefers data-local maps; most input reads stay local.
  EXPECT_GT(local, remote);
}

// --- dispatch / reschedule equivalence ---
//
// The perf work behind the scaling fixes (offer-set dispatch, lazy
// completion-event reschedule) must be invisible in simulated outcomes.
// Each fast path keeps its slow reference mode alive solely so these
// tests can pin the equivalence byte-for-byte on a mixed cluster.

struct ReportArtifacts {
  std::string json;
  std::string csv;
  std::string trace;
};

template <typename Mutator>
ReportArtifacts run_report_scenario(Mutator mutate) {
  TestBed::Options options;
  options.seed = 1234;
  mutate(options);
  TestBed bed(options);
  bed.add_native_nodes(2);
  bed.add_virtual_nodes(2, 2);

  bed.run_jobs({workload::sort_job().with_input_gb(0.25),
                workload::wcount().with_input_gb(0.25)});

  ReportArtifacts out;
  const telemetry::RunReport report = bed.report();
  std::ostringstream json, csv, trace;
  report.to_json(json);
  report.to_csv(csv);
  if (bed.telemetry() != nullptr) bed.telemetry()->trace.to_jsonl(trace);
  out.json = json.str();
  out.csv = csv.str();
  out.trace = trace.str();
  return out;
}

// Queue-mechanics counters (cancel vs defer counts, depth) differ between
// reschedule modes BY DESIGN; everything else must match. Same stripping
// rule as realloc_test's eager/deferred-reallocation pin.
std::string strip_queue_mechanics(const std::string& json) {
  static const char* kModeDependent[] = {
      "\"events_scheduled\"", "\"events_cancelled\"", "\"events_deferred\"",
      "\"max_queue_depth\"",  "\"max_event_fanout\"",
      "\"flush_scheduled_events\""};
  std::istringstream in(json);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    bool drop = false;
    for (const char* key : kModeDependent) {
      if (line.find(key) != std::string::npos) drop = true;
    }
    if (!drop) out << line << '\n';
  }
  return out.str();
}

TEST(DispatchEquivalence, IndexedMatchesNaiveByteForByte) {
  const ReportArtifacts indexed = run_report_scenario([](TestBed::Options&) {});
  const ReportArtifacts naive = run_report_scenario(
      [](TestBed::Options& o) { o.naive_dispatch = true; });
  // Identical placements mean identical simulated histories — including
  // the queue-mechanics counters — so nothing is stripped here.
  EXPECT_EQ(indexed.json, naive.json);
  EXPECT_EQ(indexed.csv, naive.csv);
  EXPECT_EQ(indexed.trace, naive.trace);
}

TEST(RescheduleEquivalence, LazyMatchesEagerCancelByteForByte) {
  const ReportArtifacts lazy = run_report_scenario([](TestBed::Options&) {});
  const ReportArtifacts eager = run_report_scenario(
      [](TestBed::Options& o) { o.eager_reschedule = true; });
  EXPECT_EQ(strip_queue_mechanics(lazy.json),
            strip_queue_mechanics(eager.json));
  EXPECT_EQ(lazy.csv, eager.csv);
  EXPECT_EQ(lazy.trace, eager.trace);
}

// --- offer-set maintenance across blacklist / crash / restore ---

// Attempts of `job` on `tr` that started strictly after `after`.
int attempts_on(const Job& job, const TaskTracker& tr, double after = -1) {
  int n = 0;
  auto scan = [&](const std::vector<std::unique_ptr<Task>>& tasks) {
    for (const auto& t : tasks) {
      for (const auto& a : t->attempts()) {
        if (&a->tracker() == &tr && a->started_at() > after) ++n;
      }
    }
  };
  scan(job.maps());
  scan(job.reduces());
  return n;
}

TEST(DispatchOfferSet, BlacklistedTrackerReceivesNoWork) {
  TestBed bed;
  bed.add_native_nodes(3);
  cluster::ExecutionSite* lost = bed.nodes().front();
  ASSERT_TRUE(bed.mr().mark_tracker_lost(*lost));

  Job* job = bed.mr().submit(small_sort(1.0));
  bed.sim().run();
  ASSERT_TRUE(job->finished());

  const TaskTracker* t0 = bed.mr().tracker_on(*lost);
  ASSERT_NE(t0, nullptr);
  EXPECT_TRUE(t0->blacklisted());
  EXPECT_EQ(attempts_on(*job, *t0), 0)
      << "blacklisted tracker must be absent from the offer sets";
}

TEST(DispatchOfferSet, SurvivesCrashTeardownAndRestore) {
  // A mid-run crash requeues the tracker's attempts and drops it from the
  // offer sets; the surviving trackers finish the job without ever
  // launching there again. Restoring the tracker must re-offer its slots:
  // a follow-up job runs work there.
  TestBed bed;
  bed.add_native_nodes(2);
  cluster::ExecutionSite* crashed = bed.nodes().front();

  Job* first = bed.mr().submit(small_sort(1.0));
  bed.sim().at(10.0, [&] { bed.mr().mark_tracker_lost(*crashed); });
  bed.sim().run();
  ASSERT_TRUE(first->finished());

  const TaskTracker* t0 = bed.mr().tracker_on(*crashed);
  ASSERT_NE(t0, nullptr);
  EXPECT_EQ(attempts_on(*first, *t0, /*after=*/10.0), 0)
      << "no attempt may start on the lost tracker after the crash";

  ASSERT_TRUE(bed.mr().restore_tracker(*crashed));
  Job* second = bed.mr().submit(small_sort(1.0));
  bed.sim().run();
  ASSERT_TRUE(second->finished());
  EXPECT_GT(attempts_on(*second, *t0), 0)
      << "restored tracker must be back in the offer sets";
}

}  // namespace
}  // namespace hybridmr::mapred
