// Tests for the MapReduce engine: job lifecycle, scheduling policies,
// speculation, deployment shapes.
#include <gtest/gtest.h>

#include "harness/testbed.h"
#include "mapred/engine.h"
#include "workload/benchmarks.h"

namespace hybridmr::mapred {
namespace {

using harness::TestBed;

JobSpec small_sort(double gb = 1.0) {
  return workload::sort_job().with_input_gb(gb);
}

TEST(MapReduce, SortCompletesOnNativeCluster) {
  TestBed bed;
  bed.add_native_nodes(4);
  const double jct = bed.run_job(small_sort());
  EXPECT_GT(jct, 5.0);
  EXPECT_LT(jct, 600.0);
}

TEST(MapReduce, JobPhasesAreOrdered) {
  TestBed bed;
  bed.add_native_nodes(4);
  Job* job = bed.mr().submit(small_sort());
  bed.sim().run();
  ASSERT_TRUE(job->finished());
  EXPECT_GE(job->submit_time(), 0);
  EXPECT_GT(job->map_phase_end(), job->submit_time());
  EXPECT_GT(job->finish_time(), job->map_phase_end());
  EXPECT_NEAR(job->jct(),
              job->map_phase_seconds() + job->reduce_phase_seconds(), 1e-9);
}

TEST(MapReduce, TaskCountsMatchSpec) {
  TestBed bed;
  bed.add_native_nodes(4);
  Job* job = bed.mr().submit(small_sort(1.0));  // 1024 MB -> 8 blocks
  bed.sim().run();
  EXPECT_EQ(job->maps().size(), 8u);
  // Hadoop's rule: 0.95 x total reduce slots (4 trackers x 2 slots).
  EXPECT_EQ(job->reduces().size(), 7u);
  EXPECT_EQ(job->maps_done(), 8);
  EXPECT_EQ(job->reduces_done(), 7);
  for (const auto& t : job->maps()) {
    EXPECT_TRUE(t->completed());
    EXPECT_GT(t->duration(), 0);
    EXPECT_NE(t->output_site(), nullptr);
  }
}

TEST(MapReduce, ExplicitReducerCountHonored) {
  TestBed bed;
  bed.add_native_nodes(4);
  Job* job = bed.mr().submit(small_sort().with_reducers(2));
  bed.sim().run();
  EXPECT_EQ(job->reduces().size(), 2u);
  EXPECT_TRUE(job->finished());
}

TEST(MapReduce, MoreNodesFinishFaster) {
  TestBed small;
  small.add_native_nodes(2);
  const double jct_small = small.run_job(small_sort(2.0));

  TestBed large;
  large.add_native_nodes(8);
  const double jct_large = large.run_job(small_sort(2.0));
  EXPECT_LT(jct_large, jct_small);
}

TEST(MapReduce, LargerInputTakesLonger) {
  TestBed bed;
  bed.add_native_nodes(4);
  const double jct1 = bed.run_job(small_sort(1.0));
  TestBed bed2;
  bed2.add_native_nodes(4);
  const double jct2 = bed2.run_job(small_sort(4.0));
  EXPECT_GT(jct2, jct1 * 2);
}

TEST(MapReduce, VirtualClusterSlowerThanNative) {
  // The headline substrate behaviour behind Fig. 1(a): same physical
  // hardware (4 PMs), I/O-bound job, virtual pays the virtualization taxes.
  const auto spec = small_sort(2.0).with_reducers(4);
  TestBed native;
  native.add_native_nodes(4);
  const double native_jct = native.run_job(spec);

  TestBed virt;
  virt.add_virtual_nodes(/*hosts=*/4, /*vms_per_host=*/2);
  const double virt_jct = virt.run_job(spec);
  EXPECT_GT(virt_jct, native_jct * 1.02);
  EXPECT_LT(virt_jct, native_jct * 1.8);
}

TEST(MapReduce, CpuBoundSuffersLessVirtualizationPenalty) {
  auto cpu_spec = workload::kmeans().with_input_gb(1.0).with_reducers(4);
  auto io_spec = small_sort(1.0).with_reducers(4);

  TestBed n1;
  n1.add_native_nodes(4);
  const double cpu_native = n1.run_job(cpu_spec);
  TestBed n2;
  n2.add_native_nodes(4);
  const double io_native = n2.run_job(io_spec);

  TestBed v1;
  v1.add_virtual_nodes(4, 2);
  const double cpu_virt = v1.run_job(cpu_spec);
  TestBed v2;
  v2.add_virtual_nodes(4, 2);
  const double io_virt = v2.run_job(io_spec);

  const double cpu_penalty = cpu_virt / cpu_native - 1.0;
  const double io_penalty = io_virt / io_native - 1.0;
  EXPECT_LT(cpu_penalty, io_penalty);
}

TEST(MapReduce, Dom0NearNativePerformance) {
  TestBed native;
  native.add_native_nodes(4);
  const double native_jct = native.run_job(small_sort(2.0));

  TestBed dom0;
  dom0.add_dom0_nodes(4);
  const double dom0_jct = dom0.run_job(small_sort(2.0));
  EXPECT_LT(dom0_jct, native_jct * 1.08);  // paper: < 5% average overhead
}

TEST(MapReduce, FairSchedulerSharesAcrossJobs) {
  // Submit a long job then a short one; under FIFO the short job waits for
  // the long job's maps, under Fair it interleaves and finishes much
  // sooner.
  auto long_job = small_sort(4.0);
  auto short_job = workload::dist_grep().with_input_gb(0.5);

  auto run_pair = [&](const std::string& policy) {
    TestBed::Options o;
    o.scheduler = policy;
    TestBed bed(o);
    bed.add_native_nodes(4);
    auto jcts = bed.run_jobs({long_job, short_job});
    return jcts[1];  // short job JCT
  };
  const double fifo_short = run_pair("fifo");
  const double fair_short = run_pair("fair");
  EXPECT_LT(fair_short, fifo_short);
}

TEST(MapReduce, MultipleJobsAllComplete) {
  TestBed bed;
  bed.add_native_nodes(6);
  std::vector<JobSpec> specs;
  for (const auto& s : workload::all_benchmarks()) {
    specs.push_back(s.with_input_gb(std::min(s.input_gb, 1.0)));
  }
  const auto jcts = bed.run_jobs(specs);
  for (double jct : jcts) EXPECT_GT(jct, 0);
}

TEST(MapReduce, SpeculativeExecutionRescuesStragglers) {
  TestBed bed;
  auto nodes = bed.add_native_nodes(4);
  // Submit, then throttle one node's first compute workload hard to create
  // a straggler once tasks are running.
  Job* job = bed.mr().submit(workload::kmeans().with_input_gb(1.0));
  bed.sim().at(20.0, [&] {
    auto attempts = bed.mr().running_attempts();
    if (!attempts.empty()) {
      cluster::Resources caps = cluster::Resources::unbounded();
      caps.cpu = 0.02;
      attempts.front()->set_caps(caps);
    }
  });
  bed.sim().run_until(5000);
  EXPECT_TRUE(job->finished());
  EXPECT_GE(bed.mr().speculative_launched(), 1);
}

TEST(MapReduce, RequeueBansTrackerAndStillFinishes) {
  TestBed bed;
  bed.add_native_nodes(4);
  Job* job = bed.mr().submit(small_sort(1.0));
  bed.sim().at(5.0, [&] {
    auto attempts = bed.mr().running_attempts();
    if (!attempts.empty()) {
      bed.mr().requeue(*attempts.front(), /*ban_tracker=*/true);
    }
  });
  bed.sim().run();
  EXPECT_TRUE(job->finished());
  EXPECT_GE(bed.mr().requeued(), 1);
}

TEST(MapReduce, SplitArchitectureOutperformsCombined) {
  // Paper Fig. 2(d): split TaskTracker/DataNode VMs beat combined VMs.
  auto spec = small_sort(2.0);

  TestBed combined;
  combined.add_virtual_nodes(/*hosts=*/4, /*vms_per_host=*/2);
  const double combined_jct = combined.run_job(spec);

  TestBed split;
  split.add_split_nodes(/*hosts=*/4, /*compute_vms_per_host=*/2);
  const double split_jct = split.run_job(spec);
  EXPECT_LT(split_jct, combined_jct);
}

TEST(MapReduce, CrossHostShuffleCostsMoreThanSameHost) {
  // Paper Fig. 2(a): 4 VMs on 1 host vs 4 VMs on 4 hosts.
  auto spec = small_sort(1.0);

  TestBed same;
  same.add_virtual_nodes(/*hosts=*/1, /*vms_per_host=*/4);
  const double same_host = same.run_job(spec);

  TestBed cross;
  cross.add_virtual_nodes(/*hosts=*/4, /*vms_per_host=*/1);
  const double cross_host = cross.run_job(spec);
  // Note: cross-host has 4x the physical hardware, but the shuffle and
  // replication traffic must cross the network.
  EXPECT_GT(same_host, 0);
  EXPECT_GT(cross_host, 0);
}

TEST(MapReduce, JobRecordsLocalityBenefit) {
  TestBed bed;
  bed.add_native_nodes(4);
  bed.run_job(small_sort(1.0));
  const double local = bed.hdfs().bytes_read_local_mb().value();
  const double remote = bed.hdfs().bytes_read_remote_mb().value();
  // The scheduler prefers data-local maps; most input reads stay local.
  EXPECT_GT(local, remote);
}

}  // namespace
}  // namespace hybridmr::mapred
