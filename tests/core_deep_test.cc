// Deeper tests of the core scheduler internals: fitted estimator models,
// the Arbiter's BestFit choice, profiler fallback paths, IPS ownership and
// DRM/IPS interplay.
#include <gtest/gtest.h>

#include <cmath>

#include "core/estimator.h"
#include "core/hybridmr.h"
#include "core/ips.h"
#include "core/profiler.h"
#include "harness/testbed.h"
#include "interactive/presets.h"
#include "workload/benchmarks.h"

namespace hybridmr::core {
namespace {

using cluster::Resources;
using harness::TestBed;

TEST(TaskModelFits, LinearCpuModelFromSamples) {
  // Feed a synthetic history where rate is exactly linear in cpu alloc:
  // the fitted regression should drive predictions, not the analytic
  // fallback.
  TaskModel model;
  for (int i = 1; i <= 6; ++i) {
    TaskSample s;
    s.time = i * 10.0;
    s.progress = 0.1 * i;
    s.demand = {1.0, 200, 0, 0};
    s.alloc = {0.1 * i, 200, 0, 0};
    s.rate = 0.02 * (0.1 * i);  // rate = 0.02 * cpu
    model.add(s);
  }
  const double at_half = model.predict_rate({0.5, 200, 0, 0},
                                            {1.0, 200, 0, 0});
  EXPECT_NEAR(at_half, 0.01, 0.002);
  const double at_full = model.predict_rate({1.0, 200, 0, 0},
                                            {1.0, 200, 0, 0});
  EXPECT_GT(at_full, at_half * 1.5);
}

TEST(TaskModelFits, EstimatedRemainingAtFullUsesPrediction) {
  TaskModel model;
  for (int i = 1; i <= 5; ++i) {
    TaskSample s;
    s.progress = 0.08 * i;
    s.demand = {1.0, 0, 0, 0};
    s.alloc = {0.4, 0, 0, 0};
    s.rate = 0.008;  // starved at 0.4 cores
    model.add(s);
  }
  // At the current (starved) rate: (1 - 0.4) / 0.008 = 75 s.
  EXPECT_NEAR(model.estimated_remaining_s(), 75, 1.0);
  // Granted full demand it should finish faster.
  EXPECT_LT(model.estimated_remaining_at_full_s(),
            model.estimated_remaining_s());
}

TEST(ArbiterTest, BestFitPicksTightestHost) {
  sim::Simulation sim(1);
  cluster::HybridCluster hc(sim);
  auto* roomy = hc.add_machine("roomy");
  auto* tight = hc.add_machine("tight");
  auto* full = hc.add_machine("full");
  // Load them differently.
  Resources light;
  light.cpu = 0.5;
  tight->add(std::make_shared<cluster::Workload>(
      "t", light, cluster::Workload::kService));
  Resources heavy;
  heavy.cpu = 2.0;
  heavy.memory = 4000;
  full->add(std::make_shared<cluster::Workload>(
      "f", heavy, cluster::Workload::kService));

  Estimator estimator;
  Arbiter arbiter(estimator);
  Resources needed;
  needed.cpu = 0.5;
  needed.memory = 512;
  cluster::Machine* pick = arbiter.best_fit_host(hc, needed, {});
  EXPECT_EQ(pick, tight);  // fits, with the least spare room
  // Excluding the tight host falls back to the roomy one.
  pick = arbiter.best_fit_host(hc, needed, {tight});
  EXPECT_EQ(pick, roomy);
  // Impossible demands find nothing.
  Resources impossible;
  impossible.cpu = 10;
  EXPECT_EQ(arbiter.best_fit_host(hc, impossible, {}), nullptr);
}

TEST(ProfilerFallback, ScaledMethodWhenNoMatchingAxis) {
  ProfileDatabase db;
  db.add({"Sort", true, 4, 2.0, 100, 60, 40});
  JobProfiler profiler(db, nullptr);
  // Different cluster AND data size: only the scaled fallback applies.
  const auto est =
      profiler.estimate(workload::sort_job().with_input_gb(4.0), true, 8);
  EXPECT_EQ(est.method, JobProfiler::Estimate::Method::kScaled);
  // Double data, double nodes: roughly the same map time, sub-linear
  // reduce benefit.
  EXPECT_NEAR(est.map_s, 60, 1e-6);
  EXPECT_GT(est.jct_s, est.map_s);
}

TEST(IpsOwnership, DrmSkipsIpsManagedAttempts) {
  TestBed bed;
  auto* host = bed.add_plain_machines(1)[0];
  auto* app_vm = bed.add_plain_vm(*host);
  auto* batch_vm = bed.add_plain_vm(*host);
  bed.hdfs().add_datanode(*batch_vm);
  bed.mr().add_tracker(*batch_vm);

  core::HybridMROptions options;
  options.enable_phase1 = false;
  HybridMRScheduler hybrid(bed.sim(), bed.cluster(), bed.hdfs(), bed.mr(),
                           options);
  hybrid.start();
  hybrid.deploy_interactive(interactive::olio_params(), 1100, app_vm);
  bed.mr().submit(workload::sort_job().with_input_gb(2));

  // At some point during the run an attempt must fall under IPS control,
  // and while it does, its caps must stay below the base slot share (the
  // DRM exempts IPS-owned attempts instead of lifting their throttles).
  bool any_owned = false;
  bool caps_respected = true;
  bed.sim().every(5, [&] {
    for (auto* a : bed.mr().running_attempts()) {
      if (hybrid.ips().owns(*a)) {
        any_owned = true;
        if (!(a->caps().cpu + a->caps().disk <
              a->base_caps().cpu + a->base_caps().disk)) {
          caps_respected = false;
        }
      }
    }
  });
  bed.run_until(400);
  EXPECT_TRUE(any_owned);
  EXPECT_TRUE(caps_respected);
  hybrid.stop();
}

TEST(PhaseOneTraining, PopulatesBothEnvironments) {
  ProfileDatabase db;
  JobProfiler profiler(db, make_simulated_runner());
  PhaseOneScheduler::Config config;
  config.training_cluster_sizes = {2};
  config.training_data_gbs = {0.5};
  PhaseOneScheduler phase1(profiler, config);
  phase1.ensure_trained(workload::dist_grep());
  EXPECT_EQ(db.for_job("DistGrep", false).size(), 1u);
  EXPECT_EQ(db.for_job("DistGrep", true).size(), 1u);
  // Virtual training ran on 2 * vms_per_host VM nodes.
  EXPECT_EQ(db.for_job("DistGrep", true)[0].cluster_size,
            2 * config.vms_per_host);
  // Re-training is a no-op once profiles exist.
  phase1.ensure_trained(workload::dist_grep());
  EXPECT_EQ(db.size(), 2u);
}

TEST(HybridFacade, SubmitWithoutNativePartitionUsesAnyPool) {
  TestBed bed;
  bed.add_virtual_nodes(2, 2);  // no native trackers at all
  HybridMRScheduler hybrid(bed.sim(), bed.cluster(), bed.hdfs(), bed.mr());
  mapred::Job* job = hybrid.submit(workload::sort_job().with_input_gb(0.5));
  EXPECT_EQ(job->pool(), mapred::PlacementPool::kAny);
  bed.sim().run();
  EXPECT_TRUE(job->finished());
}

TEST(HybridFacade, PoolConstraintKeepsTasksInPartition) {
  TestBed bed;
  bed.add_native_nodes(2);
  bed.add_virtual_nodes(2, 2);
  mapred::Job* job = bed.mr().submit(
      workload::sort_job().with_input_gb(0.5),
      mapred::PlacementPool::kNativeOnly);
  bed.sim().run();
  ASSERT_TRUE(job->finished());
  for (const auto& t : job->maps()) {
    EXPECT_FALSE(t->output_site()->is_virtual());
  }
  for (const auto& t : job->reduces()) {
    EXPECT_FALSE(t->output_site()->is_virtual());
  }
}

TEST(OnlineProfiling, ProductionRunsFeedTheDatabase) {
  TestBed bed;
  bed.add_native_nodes(2);
  bed.add_virtual_nodes(2, 2);
  core::HybridMROptions options;
  options.phase1.training_cluster_sizes = {2};
  options.phase1.training_data_gbs = {0.5};
  HybridMRScheduler hybrid(bed.sim(), bed.cluster(), bed.hdfs(), bed.mr(),
                           options);
  mapred::Job* job = hybrid.submit(workload::dist_grep().with_input_gb(1));
  const std::size_t after_training = hybrid.profiler().database().size();
  bed.sim().run();
  ASSERT_TRUE(job->finished());
  // The production run added exactly one more profile entry, at the
  // production data size.
  EXPECT_EQ(hybrid.profiler().database().size(), after_training + 1);
  const auto& entries = hybrid.profiler().database().entries();
  const auto& last = entries.back();
  EXPECT_EQ(last.job_name, "DistGrep");
  EXPECT_DOUBLE_EQ(last.data_gb, 1.0);
  EXPECT_NEAR(last.jct_s, job->jct(), 1e-9);
}

TEST(EstimatorRegistry, RetainOnlyDropsStaleModels) {
  TestBed bed;
  bed.add_native_nodes(2);
  Estimator estimator;
  bed.mr().submit(workload::sort_job().with_input_gb(0.5));
  bed.sim().every(2, [&] {
    for (auto* a : bed.mr().running_attempts()) {
      estimator.observe(*a, bed.sim().now());
    }
  });
  bed.sim().run_until(20);
  EXPECT_GT(estimator.tracked(), 0u);
  estimator.retain_only({});
  EXPECT_EQ(estimator.tracked(), 0u);
}

}  // namespace
}  // namespace hybridmr::core
