// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulation.h"

namespace hybridmr::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (auto e = q.pop()) e->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoTieBreaking) {
  EventQueue q;
  std::vector<int> order;
  q.push(1.0, [&] { order.push_back(1); });
  q.push(1.0, [&] { order.push_back(2); });
  q.push(1.0, [&] { order.push_back(3); });
  while (auto e = q.pop()) e->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(EventId{}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.push(1.0, [] {});
  q.push(5.0, [] {});
  q.cancel(early);
  ASSERT_TRUE(q.next_time().has_value());
  EXPECT_DOUBLE_EQ(*q.next_time(), 5.0);
}

TEST(Simulation, ClockAdvancesToEventTime) {
  Simulation sim;
  double seen = -1;
  sim.at(12.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 12.5);
  EXPECT_DOUBLE_EQ(sim.now(), 12.5);
}

TEST(Simulation, AfterSchedulesRelative) {
  Simulation sim;
  std::vector<double> times;
  sim.at(10.0, [&] {
    sim.after(5.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 15.0);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, StopFromCallback) {
  Simulation sim;
  int fired = 0;
  sim.at(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.at(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, CancelScheduledEvent) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, PeriodicFiresAtPeriod) {
  Simulation sim;
  std::vector<double> times;
  auto handle = sim.every(2.0, [&] { times.push_back(sim.now()); });
  sim.run_until(7.0);
  handle.cancel();
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{2.0, 4.0, 6.0}));
}

TEST(Simulation, PeriodicInitialDelay) {
  Simulation sim;
  std::vector<double> times;
  auto handle = sim.every(2.0, [&] { times.push_back(sim.now()); }, 0.5);
  sim.run_until(5.0);
  handle.cancel();
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{0.5, 2.5, 4.5}));
}

TEST(Simulation, PeriodicCancelStopsFirings) {
  Simulation sim;
  int fired = 0;
  auto handle = sim.every(1.0, [&] { ++fired; });
  sim.at(3.5, [&] { handle.cancel(); });
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, EventsProcessedCounts) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(5.0, 6.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(1);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(1, 3);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == 1;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalClampedRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal_clamped(0, 10, -1, 1);
    EXPECT_GE(v, -1);
    EXPECT_LE(v, 1);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto original = v;
  rng.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

}  // namespace
}  // namespace hybridmr::sim
