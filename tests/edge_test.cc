// Edge-case and failure-injection tests across the substrate.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "harness/testbed.h"
#include "interactive/presets.h"
#include "storage/hdfs.h"
#include "workload/benchmarks.h"

namespace hybridmr {
namespace {

using cluster::Resources;
using cluster::Workload;
using harness::TestBed;

TEST(WorkloadEdge, ServiceWorkloadNeverCompletes) {
  sim::Simulation sim(1);
  cluster::HybridCluster hc(sim);
  auto* m = hc.add_machine();
  Resources d;
  d.cpu = 0.5;
  auto w = std::make_shared<Workload>("svc", d, Workload::kService);
  bool fired = false;
  w->on_complete = [&] { fired = true; };
  m->add(w);
  sim.at(1000, [&] { m->settle_now(); });  // settle the lazy usage counters
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(w->done());
  EXPECT_FALSE(w->finite());
  EXPECT_DOUBLE_EQ(w->progress(), 0);
  // But it accrued usage.
  EXPECT_NEAR(w->cpu_seconds_used().value(), 500, 1e-6);
}

TEST(WorkloadEdge, CapsOnServiceWorkloadLimitAllocation) {
  sim::Simulation sim(1);
  cluster::HybridCluster hc(sim);
  auto* m = hc.add_machine();
  Resources d;
  d.cpu = 2.0;
  auto w = std::make_shared<Workload>("svc", d, Workload::kService);
  m->add(w);
  EXPECT_NEAR(w->allocated().cpu, 2.0, 1e-9);
  Resources caps = Resources::unbounded();
  caps.cpu = 0.75;
  w->set_caps(caps);
  EXPECT_NEAR(w->allocated().cpu, 0.75, 1e-9);
  w->set_caps(Resources::unbounded());
  EXPECT_NEAR(w->allocated().cpu, 2.0, 1e-9);
}

TEST(WorkloadEdge, PowerOffStallsWork) {
  sim::Simulation sim(1);
  cluster::HybridCluster hc(sim);
  auto* m = hc.add_machine();
  auto w = std::make_shared<Workload>("w", Resources{1, 0, 0, 0},
                                     sim::Duration{10.0});
  m->add(w);
  sim.at(3.0, [&] { m->set_powered(false); });
  sim.at(8.0, [&] { m->set_powered(true); });
  sim.run();
  EXPECT_NEAR(sim.now(), 15.0, 1e-9);  // 5 s outage inserted
  EXPECT_TRUE(w->done());
}

TEST(HdfsEdge, TransferToSelfIsLocalRead) {
  sim::Simulation sim(2);
  cluster::HybridCluster hc(sim);
  storage::Hdfs hdfs(sim, cluster::Calibration::standard());
  auto* m = hc.add_machine();
  bool done = false;
  hdfs.transfer(*m, *m, sim::MegaBytes{60}, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(sim.now(), 1.0, 1e-9);  // 60 MB at the 60 MB/s disk stream
}

TEST(HdfsEdge, CancelledFlowFiresNoCallback) {
  sim::Simulation sim(2);
  cluster::HybridCluster hc(sim);
  storage::Hdfs hdfs(sim, cluster::Calibration::standard());
  auto* a = hc.add_machine();
  auto* b = hc.add_machine();
  bool done = false;
  auto flow = hdfs.transfer(*a, *b, sim::MegaBytes{500}, [&] { done = true; });
  sim.at(1.0, [&] { flow.cancel(); });
  sim.run();
  EXPECT_FALSE(done);
  EXPECT_TRUE(a->workloads().empty());
  EXPECT_TRUE(b->workloads().empty());
}

TEST(MapReduceEdge, VmMigrationMidJobPreservesCorrectness) {
  // Live-migrate a Hadoop VM while its tasks run: the job must still
  // produce every task exactly once.
  TestBed bed;
  bed.add_virtual_nodes(3, 2);
  bed.add_plain_machines(1);
  mapred::Job* job = bed.mr().submit(workload::sort_job().with_input_gb(1));
  bed.sim().at(5.0, [&] {
    auto* vm = bed.cluster().vm("vm0");
    auto* spare = bed.cluster().machine("plain0");
    ASSERT_NE(vm, nullptr);
    ASSERT_NE(spare, nullptr);
    EXPECT_TRUE(bed.cluster().migrator().migrate(*vm, *spare));
  });
  bed.sim().run_until(10000);
  ASSERT_TRUE(job->finished());
  for (const auto& t : job->maps()) EXPECT_TRUE(t->completed());
  EXPECT_EQ(bed.cluster().migrator().history().size(), 1u);
}

TEST(MapReduceEdge, ZeroSelectivityJobSkipsShuffleWork) {
  TestBed bed;
  bed.add_native_nodes(2);
  auto spec = workload::dist_grep().with_input_gb(0.5);
  spec.map_selectivity = 0.0;  // nothing to shuffle at all
  mapred::Job* job = bed.mr().submit(spec);
  bed.sim().run();
  ASSERT_TRUE(job->finished());
  EXPECT_NEAR(job->shuffle_mb_per_reducer().value(), 0, 1e-9);
}

TEST(MapReduceEdge, ManySmallJobsDrainCompletely) {
  TestBed bed;
  bed.add_native_nodes(4);
  std::vector<mapred::Job*> jobs;
  for (int i = 0; i < 12; ++i) {
    jobs.push_back(
        bed.mr().submit(workload::dist_grep().with_input_gb(0.25)));
  }
  bed.sim().run();
  for (auto* j : jobs) EXPECT_TRUE(j->finished());
  EXPECT_EQ(bed.mr().active_jobs(), 0);
}

TEST(MapReduceEdge, RequeueLoopTerminates) {
  // Aggressively requeue random attempts; the job must still finish
  // (bans are forgiven when they would cover every tracker).
  TestBed bed;
  bed.add_native_nodes(3);
  mapred::Job* job = bed.mr().submit(workload::sort_job().with_input_gb(0.5));
  auto handle = bed.sim().every(3.0, [&] {
    auto attempts = bed.mr().running_attempts();
    if (!attempts.empty()) {
      bed.mr().requeue(*attempts.front(), /*ban_tracker=*/true);
    }
    if (job->finished()) bed.sim().stop();
  });
  bed.sim().run_until(20000);
  handle.cancel();
  bed.sim().run();
  EXPECT_TRUE(job->finished());
  EXPECT_GT(bed.mr().requeued(), 0);
}

TEST(InteractiveEdge, ZeroClientsIsHarmless) {
  sim::Simulation sim(4);
  cluster::HybridCluster hc(sim);
  auto* host = hc.add_machine();
  auto* vm = hc.add_vm(*host);
  interactive::InteractiveApp app(sim, *vm, interactive::rubis_params(), 0);
  app.start();
  sim.run_until(30);
  EXPECT_LE(app.response_time_s(), app.params().sla_s.value());
  EXPECT_GE(app.throughput_rps(), 0);
  app.stop();
}

TEST(InteractiveEdge, ClientSurgeAndRecovery) {
  sim::Simulation sim(4);
  cluster::HybridCluster hc(sim);
  auto* host = hc.add_machine();
  auto* vm = hc.add_vm(*host);
  interactive::InteractiveApp app(sim, *vm, interactive::rubis_params(), 300);
  app.start();
  sim.run_until(30);
  const double calm = app.response_time_s();
  app.set_clients(8000);
  sim.run_until(60);
  EXPECT_GT(app.response_time_s(), calm * 5);
  app.set_clients(300);
  sim.run_until(90);
  EXPECT_LT(app.response_time_s(), app.params().sla_s.value());
  app.stop();
}

TEST(MigrationEdge, DetachedVmRefusesMigration) {
  sim::Simulation sim(5);
  cluster::HybridCluster hc(sim);
  auto* a = hc.add_machine();
  auto* b = hc.add_machine();
  auto* vm = hc.add_vm(*a);
  a->detach_vm(vm);
  EXPECT_FALSE(hc.migrator().migrate(*vm, *b));
}

TEST(ClusterEdge, EnergyWindowBeforeCreationIsZero) {
  sim::Simulation sim(6);
  cluster::HybridCluster hc(sim);
  sim.run_until(100);
  auto* m = hc.add_machine();
  sim.at(200, [] {});
  sim.run();
  EXPECT_NEAR(m->energy().joules(0, 100).value(), 0, 1e-9);
  EXPECT_GT(m->energy().joules(100, 200).value(), 0);
}

}  // namespace
}  // namespace hybridmr
