// Concurrency harness for the quiesced-read contract (docs/CONCURRENCY.md):
// once the event loop has drained and the flush hooks have run, no machine
// is dirty, so Machine::ensure_clean() and every allocation-dependent read
// routed through it are pure reads — safe to issue from any number of
// threads concurrently. scripts/ci.sh runs this binary under
// -fsanitize=thread (the tsan stage); tests/tsan_race_probe.cc proves that
// stage actually detects races.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/machine.h"
#include "cluster/workload.h"
#include "sim/simulation.h"

namespace hybridmr::cluster {
namespace {

WorkloadPtr service_work(double cores, double disk, const std::string& name) {
  Resources d;
  d.cpu = cores;
  d.disk = disk;
  return std::make_shared<Workload>(name, d, Workload::kService);
}

// A small loaded cluster, driven to the quiesced state: events drained,
// flush hooks run, every dirty flag cleared.
class QuiescedClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machines_ = cluster_.add_machines(4);
    for (std::size_t i = 0; i < machines_.size(); ++i) {
      Machine* m = machines_[i];
      VirtualMachine* vm = cluster_.add_vm(*m);
      m->add(service_work(1.5, 40.0, "native-" + std::to_string(i)));
      vm->add(service_work(0.75, 10.0, "virt-" + std::to_string(i)));
    }
    sim_.run();
    sim_.flush();
    // Clear any read-barrier debt left by setup itself.
    for (Machine* m : machines_) m->ensure_clean();
  }

  sim::Simulation sim_{1};
  HybridCluster cluster_{sim_};
  std::vector<Machine*> machines_;
};

constexpr int kThreads = 8;
constexpr int kIters = 250;
constexpr ResourceKind kKinds[] = {ResourceKind::kCpu, ResourceKind::kMemory,
                                   ResourceKind::kDisk, ResourceKind::kNet};

// Many threads calling ensure_clean() on the same quiesced machines must
// never trigger a recompute: the read barrier is a no-op on clean state,
// and under TSan this is the proof the barrier itself is race-free.
TEST_F(QuiescedClusterTest, ConcurrentEnsureCleanIsPureRead) {
  std::vector<std::uint64_t> before;
  for (Machine* m : machines_) before.push_back(m->recompute_count());

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this]() {
      for (int i = 0; i < kIters; ++i)
        for (Machine* m : machines_) m->ensure_clean();
    });
  }
  for (auto& th : threads) th.join();

  for (std::size_t i = 0; i < machines_.size(); ++i) {
    EXPECT_EQ(machines_[i]->recompute_count(), before[i])
        << "ensure_clean() recomputed on a quiesced machine " << i
        << " — a read raced a drain";
  }
}

// Allocation-dependent reads from many threads must all observe exactly
// the single-threaded snapshot (bitwise — the values are derived once at
// the last drain and never touched again while quiesced).
TEST_F(QuiescedClusterTest, ConcurrentUtilizationReadsMatchSnapshot) {
  std::vector<double> snapshot;
  for (Machine* m : machines_)
    for (ResourceKind kind : kKinds) snapshot.push_back(m->utilization(kind));

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &snapshot, &mismatches]() {
      for (int i = 0; i < kIters; ++i) {
        std::size_t idx = 0;
        for (Machine* m : machines_) {
          for (ResourceKind kind : kKinds) {
            if (m->utilization(kind) != snapshot[idx]) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
            ++idx;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "a concurrent reader observed a value differing from the "
         "single-threaded snapshot";
}

// Reads that route through VMs (host_machine() indirection) follow the
// same contract: the host's read barrier is hit from every thread.
TEST_F(QuiescedClusterTest, ConcurrentVmHostReadsAreConsistent) {
  std::vector<std::size_t> vm_counts;
  for (Machine* m : machines_) vm_counts.push_back(m->vms().size());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &vm_counts, &mismatches]() {
      for (int i = 0; i < kIters; ++i) {
        for (std::size_t mi = 0; mi < machines_.size(); ++mi) {
          Machine* m = machines_[mi];
          for (VirtualMachine* vm : m->vms()) {
            Machine* host = vm->host_machine();
            host->ensure_clean();
            if (host != m) mismatches.fetch_add(1);
          }
          if (m->vms().size() != vm_counts[mi]) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace hybridmr::cluster
