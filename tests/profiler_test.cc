// Tests for the simulation profiler (src/telemetry/profiler.h): histogram
// percentile math at the edges, calling-context-tree nesting, work-counter
// determinism across same-seed runs, event-conservation of the queue
// counters, the always-on RunReport fields, and the stall watchdog.
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/testbed.h"
#include "sim/simulation.h"
#include "telemetry/profiler.h"
#include "telemetry/report.h"
#include "workload/benchmarks.h"

namespace hybridmr {
namespace {

// --- LogHistogram ------------------------------------------------------------

TEST(LogHistogram, EmptyReportsZeros) {
  telemetry::LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 0);
}

TEST(LogHistogram, SingleSampleReportsItselfAtEveryPercentile) {
  telemetry::LogHistogram h;
  h.record(37);
  for (double p : {0.0, 1.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 37) << "p=" << p;
  }
  EXPECT_EQ(h.min(), 37u);
  EXPECT_EQ(h.max(), 37u);
  EXPECT_DOUBLE_EQ(h.mean(), 37);
}

TEST(LogHistogram, ZeroLandsInBucketZero) {
  telemetry::LogHistogram h;
  h.record(0);
  h.record(0);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0);
  EXPECT_EQ(h.max(), 0u);
}

TEST(LogHistogram, PowerOfTwoBucketEdges) {
  telemetry::LogHistogram h;
  // Bucket b >= 1 holds [2^(b-1), 2^b): 1 -> bucket 1, 2..3 -> bucket 2,
  // 4..7 -> bucket 3.
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(4);
  h.record(7);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 2u);
  EXPECT_EQ(h.buckets()[3], 2u);
}

TEST(LogHistogram, OverflowValuesLandInTheLastBucket) {
  telemetry::LogHistogram h;
  const std::uint64_t huge = std::numeric_limits<std::uint64_t>::max();
  h.record(huge);
  h.record(huge - 1);
  EXPECT_EQ(h.buckets()[telemetry::LogHistogram::kBuckets - 1], 2u);
  EXPECT_EQ(h.max(), huge);
  // Percentiles clamp to the observed max, not the 2^64 bucket edge.
  EXPECT_LE(h.percentile(99), static_cast<double>(huge));
  EXPECT_GE(h.percentile(1), static_cast<double>(huge - 1));
}

TEST(LogHistogram, PercentilesAreMonotoneAndClamped) {
  telemetry::LogHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  double prev = h.percentile(0);
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    const double value = h.percentile(p);
    EXPECT_GE(value, prev) << "p=" << p;
    EXPECT_GE(value, 1.0);
    EXPECT_LE(value, 1000.0);
    prev = value;
  }
  // The median of 1..1000 must land in the right ballpark despite the
  // coarse power-of-two buckets (bucket [512,1024) starts at 512).
  EXPECT_GT(h.percentile(50), 250.0);
  EXPECT_LT(h.percentile(50), 1000.0);
}

// --- Profiler scopes and the calling-context tree ---------------------------

TEST(Profiler, DisabledRecordsNothing) {
  telemetry::Profiler prof;  // enabled() is false by default
  prof.add(telemetry::WorkCounter::kDrainPasses);
  prof.record_dist(telemetry::WorkDist::kQueueDepth, 5);
  const telemetry::ScopeId s = prof.intern("test.scope");
  { telemetry::Scope guard(&prof, s); }
  EXPECT_EQ(prof.work(telemetry::WorkCounter::kDrainPasses), 0u);
  EXPECT_EQ(prof.dist(telemetry::WorkDist::kQueueDepth).count(), 0u);
  EXPECT_EQ(prof.wall_stats()[s.index].count, 0u);
}

TEST(Profiler, NullProfilerScopeIsSafe) {
  telemetry::Scope guard(nullptr, telemetry::ScopeId{});
  // Destructor must be a no-op; reaching the end of scope is the test.
  SUCCEED();
}

TEST(Profiler, InternIsIdempotent) {
  telemetry::Profiler prof;
  const telemetry::ScopeId a = prof.intern("x");
  const telemetry::ScopeId b = prof.intern("x");
  EXPECT_EQ(a.index, b.index);
  EXPECT_NE(prof.intern("y").index, a.index);
}

TEST(Profiler, ContextTreeTracksNesting) {
  telemetry::Profiler prof;
  prof.enable();
  const telemetry::ScopeId outer = prof.intern("outer");
  const telemetry::ScopeId inner = prof.intern("inner");
  {
    telemetry::Scope a(&prof, outer);
    { telemetry::Scope b(&prof, inner); }
    { telemetry::Scope c(&prof, inner); }
  }
  { telemetry::Scope d(&prof, inner); }  // inner at the root: a new node

  // Root (node 0) + outer + outer>inner + inner = 4 nodes.
  ASSERT_EQ(prof.nodes().size(), 4u);
  const auto& nodes = prof.nodes();
  // Node 1: outer under the root.
  EXPECT_EQ(nodes[1].parent, 0u);
  EXPECT_EQ(nodes[1].scope, outer.index);
  EXPECT_EQ(nodes[1].count, 1u);
  // Node 2: inner under outer, entered twice.
  EXPECT_EQ(nodes[2].parent, 1u);
  EXPECT_EQ(nodes[2].scope, inner.index);
  EXPECT_EQ(nodes[2].count, 2u);
  // Node 3: inner directly under the root.
  EXPECT_EQ(nodes[3].parent, 0u);
  EXPECT_EQ(nodes[3].scope, inner.index);
  EXPECT_EQ(nodes[3].count, 1u);
  // Flat per-scope stats see all three inner invocations.
  EXPECT_EQ(prof.wall_stats()[inner.index].count, 3u);
  EXPECT_EQ(prof.wall_stats()[outer.index].count, 1u);
}

TEST(Profiler, WorkJsonHasNoWallFields) {
  telemetry::Profiler prof;
  prof.enable();
  prof.add(telemetry::WorkCounter::kDrainPasses, 3);
  std::ostringstream os;
  prof.work_to_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"drain_passes\":3"), std::string::npos);
  EXPECT_EQ(json.find("_ns"), std::string::npos);
  EXPECT_EQ(json.find("_us"), std::string::npos);
  EXPECT_EQ(json.find("_ms"), std::string::npos);
  EXPECT_EQ(json.find("wall"), std::string::npos);
}

// --- End-to-end: same-seed determinism and conservation ----------------------

struct ProfiledRun {
  std::string work_json;
  std::uint64_t scheduled = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t processed = 0;
  std::size_t live = 0;
  std::string report_json;
};

ProfiledRun run_profiled(std::uint64_t seed) {
  harness::TestBed::Options opt;
  opt.seed = seed;
  opt.profile = true;
  harness::TestBed bed(opt);
  bed.add_native_nodes(2);
  bed.add_virtual_nodes(2, 2);
  bed.run_jobs({workload::sort_job().with_input_gb(0.25),
                workload::wcount().with_input_gb(0.25)});

  ProfiledRun out;
  telemetry::Profiler* prof = bed.profiler();
  if (prof != nullptr) {
    std::ostringstream os;
    prof->work_to_json(os);
    out.work_json = os.str();
  }
  out.scheduled = bed.sim().events_scheduled();
  out.cancelled = bed.sim().events_cancelled();
  out.processed = bed.sim().events_processed();
  out.live = bed.sim().pending_events();
  std::ostringstream report;
  bed.report().to_json(report);
  out.report_json = report.str();
  return out;
}

TEST(ProfilerDeterminism, SameSeedSameWorkCounters) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  const ProfiledRun a = run_profiled(99);
  const ProfiledRun b = run_profiled(99);
  EXPECT_EQ(a.work_json, b.work_json);
  EXPECT_EQ(a.report_json, b.report_json);
  // And a different seed genuinely changes the work profile (guards
  // against the counters being dead constants).
  const ProfiledRun c = run_profiled(100);
  EXPECT_NE(a.report_json, c.report_json);
}

TEST(ProfilerDeterminism, EventCountersConserve) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  const ProfiledRun a = run_profiled(7);
  // Every event ever scheduled was processed, cancelled, or is still live.
  EXPECT_EQ(a.scheduled, a.processed + a.cancelled + a.live);
  EXPECT_GT(a.scheduled, 0u);
}

TEST(ProfilerDeterminism, ReportCarriesQueueMechanicsWithProfilerOff) {
  // The always-on RunReport fields need no profiler at all.
  harness::TestBed bed;  // default options: telemetry on, profile off
  bed.add_native_nodes(2);
  bed.run_job(workload::wcount().with_input_gb(0.125));
  EXPECT_EQ(bed.profiler(), nullptr);
  std::ostringstream os;
  bed.report().to_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"events_scheduled\":"), std::string::npos);
  EXPECT_NE(json.find("\"events_cancelled\":"), std::string::npos);
  EXPECT_NE(json.find("\"max_queue_depth\":"), std::string::npos);
  EXPECT_NE(json.find("\"max_event_fanout\":"), std::string::npos);
  EXPECT_NE(json.find("\"flush_scheduled_events\":"), std::string::npos);
  // ...and the profile section only appears when profiling is live.
  EXPECT_EQ(json.find("\"profile\":"), std::string::npos);
}

TEST(ProfilerDeterminism, RecomputeCauseCountersSumToRecomputes) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  harness::TestBed::Options opt;
  opt.profile = true;
  harness::TestBed bed(opt);
  bed.add_virtual_nodes(2, 2);
  bed.run_job(workload::sort_job().with_input_gb(0.25));
  telemetry::Profiler* prof = bed.profiler();
  ASSERT_NE(prof, nullptr);
  using WC = telemetry::WorkCounter;
  const std::uint64_t by_cause =
      prof->work(WC::kRecomputeDirect) + prof->work(WC::kRecomputeDrain) +
      prof->work(WC::kRecomputeReadBarrier) + prof->work(WC::kRecomputeEager);
  // The recompute scope is entered exactly once per recompute() call, so
  // the per-cause split must account for every invocation.
  const telemetry::ScopeId scope = prof->intern("cluster.machine.recompute");
  EXPECT_EQ(by_cause, prof->wall_stats()[scope.index].count);
  EXPECT_GT(by_cause, 0u);
}

// --- Watchdog ----------------------------------------------------------------

TEST(Watchdog, SameTimeLivelockStallsTheRun) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  sim::Simulation sim(1);
  telemetry::Profiler prof;
  prof.enable();
  prof.set_simulation(&sim);
  std::ostringstream log;
  telemetry::Profiler::WatchdogOptions wd;
  wd.max_same_time_events = 100;
  prof.set_watchdog(wd, &log);
  sim.set_probe(&prof);

  // A self-rescheduling zero-delay event: the classic stuck-clock livelock.
  std::function<void()> spin = [&] { sim.after(0.0, [&] { spin(); }); };
  sim.after(0.0, spin);
  sim.run();

  EXPECT_TRUE(prof.stalled());
  EXPECT_NE(prof.stall_reason().find("livelock"), std::string::npos);
  EXPECT_NE(log.str().find("STALL"), std::string::npos);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Watchdog, HealthyRunDoesNotStall) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  harness::TestBed::Options opt;
  opt.profile = true;
  opt.watchdog.max_same_time_events = 100000;
  opt.watchdog.wall_budget_s = 3600;
  harness::TestBed bed(opt);
  bed.add_native_nodes(2);
  bed.run_job(workload::wcount().with_input_gb(0.125));
  ASSERT_NE(bed.profiler(), nullptr);
  EXPECT_FALSE(bed.profiler()->stalled());
}

}  // namespace
}  // namespace hybridmr
