// Tests for the fault-injection subsystem: crash/reboot recovery, bounded
// task retries, tracker blacklisting with map re-execution, migration
// rollback, and bit-for-bit chaos determinism.
#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>

#include "faults/injector.h"
#include "harness/testbed.h"
#include "mapred/engine.h"
#include "workload/benchmarks.h"

namespace hybridmr {
namespace {

using faults::FaultInjector;
using faults::FaultSchedule;
using faults::FaultSpec;

mapred::JobSpec slow_job(const std::string& name, double input_gb,
                         int reducers) {
  mapred::JobSpec spec;
  spec.name = name;
  spec.input_gb = input_gb;
  // ~32 s per 64 MB split: faults land mid-run
  spec.map_cpu_s_per_mb = sim::SecondsPerMB{0.5};
  spec.num_reducers = reducers;
  return spec;
}

TEST(Faults, CrashRestoresReplicationFactorAndJobCompletes) {
  harness::TestBed::Options o;
  o.faults.one_shot.push_back(
      {FaultSpec::Kind::kMachineCrash, /*at=*/10.0, "native0"});
  harness::TestBed bed(o);
  bed.add_native_nodes(6);
  ASSERT_NE(bed.faults(), nullptr);

  bed.run_job(slow_job("gr", /*input_gb=*/1.0, /*reducers=*/2));

  const auto& st = bed.faults()->stats();
  EXPECT_EQ(st.machine_crashes, 1);
  EXPECT_EQ(bed.faults()->machines_down(), 1);
  EXPECT_GT(st.datanodes_crashed, 0);
  EXPECT_FALSE(bed.cluster().machine("native0")->powered());
  // 16 input blocks x RF 2 over 6 nodes: the dead node held replicas, all
  // of them re-replicated from survivors with no block lost for good.
  EXPECT_GT(bed.hdfs().re_replicated_mb().value(), 0);
  EXPECT_EQ(bed.hdfs().blocks_lost(), 0);
  EXPECT_EQ(bed.hdfs().min_replication(), bed.calibration().hdfs_replicas);
  ASSERT_EQ(bed.mr().jobs().size(), 1u);
  EXPECT_TRUE(bed.mr().jobs().front()->succeeded());
}

TEST(Faults, RetryBoundTakesJobDown) {
  harness::TestBed::Options o;
  o.max_task_attempts = 2;
  // Fail attempt 1 of map 0 at t=1; the requeue redispatches it on the
  // spot, so the t=2 failure hits attempt 2 and exhausts the bound.
  o.faults.one_shot.push_back(
      {FaultSpec::Kind::kTaskFailure, /*at=*/1.0, "gr-j0-m0"});
  o.faults.one_shot.push_back(
      {FaultSpec::Kind::kTaskFailure, /*at=*/2.0, "gr-j0-m0"});
  harness::TestBed bed(o);
  bed.add_native_nodes(2);

  bed.run_job(slow_job("gr", /*input_gb=*/0.25, /*reducers=*/1));

  EXPECT_EQ(bed.faults()->stats().task_failures, 2);
  EXPECT_EQ(bed.mr().attempt_failures(), 2);
  EXPECT_EQ(bed.mr().jobs_failed(), 1);
  ASSERT_EQ(bed.mr().jobs().size(), 1u);
  const mapred::Job& job = *bed.mr().jobs().front();
  EXPECT_TRUE(job.failed());
  EXPECT_TRUE(job.finished());
  EXPECT_FALSE(job.succeeded());
  EXPECT_EQ(bed.mr().active_jobs(), 0);
}

TEST(Faults, SurvivableFailuresStayUnderTheBound) {
  harness::TestBed::Options o;
  o.max_task_attempts = 4;  // stock Hadoop: the same two hits are survivable
  o.faults.one_shot.push_back(
      {FaultSpec::Kind::kTaskFailure, /*at=*/1.0, "gr-j0-m0"});
  o.faults.one_shot.push_back(
      {FaultSpec::Kind::kTaskFailure, /*at=*/2.0, "gr-j0-m0"});
  harness::TestBed bed(o);
  bed.add_native_nodes(2);

  bed.run_job(slow_job("gr", /*input_gb=*/0.25, /*reducers=*/1));

  EXPECT_EQ(bed.mr().attempt_failures(), 2);
  EXPECT_EQ(bed.mr().jobs_failed(), 0);
  EXPECT_TRUE(bed.mr().jobs().front()->succeeded());
}

TEST(Faults, TrackerTimeoutReexecutesLostMapOutputs) {
  harness::TestBed bed;
  bed.add_native_nodes(3);
  FaultInjector inj(bed.sim(), bed.cluster(), bed.hdfs(), bed.mr(),
                    FaultSchedule{});

  mapred::Job* job = bed.mr().submit(slow_job("gr", 0.5, 2));
  // Once the reduces are shuffling, time out the tracker whose site holds
  // a finished map's output: Hadoop 1 must re-execute that map.
  bool fired = false;
  std::function<void()> poll = [&] {
    if (!fired && job->state() == mapred::JobState::kReducing) {
      for (const auto& m : job->maps()) {
        if (m->output_site() != nullptr) {
          fired = true;
          EXPECT_TRUE(
              inj.timeout_tracker(*m->output_site(), sim::Duration{20.0}));
          return;  // stop polling
        }
      }
    }
    if (!job->finished()) bed.sim().after(sim::Duration{1.0}, poll);
  };
  bed.sim().after(sim::Duration{1.0}, poll);
  bed.run_until(4000.0);

  ASSERT_TRUE(fired);
  EXPECT_TRUE(job->succeeded());
  EXPECT_EQ(inj.stats().tracker_timeouts, 1);
  EXPECT_EQ(inj.stats().tracker_restores, 1);
  EXPECT_GT(bed.mr().maps_reexecuted(), 0);
  // Every tracker is live again and leaked no slots.
  for (const auto& tr : bed.mr().trackers()) {
    EXPECT_FALSE(tr->blacklisted());
    EXPECT_TRUE(tr->running().empty());
    EXPECT_EQ(tr->free_slots(mapred::TaskType::kMap), tr->map_slots());
    EXPECT_EQ(tr->free_slots(mapred::TaskType::kReduce), tr->reduce_slots());
  }
}

TEST(Faults, CrashDuringShuffleRebootsAndCompletes) {
  harness::TestBed bed;
  bed.add_native_nodes(3);
  FaultInjector inj(bed.sim(), bed.cluster(), bed.hdfs(), bed.mr(),
                    FaultSchedule{});

  mapred::Job* job = bed.mr().submit(slow_job("gr", 0.5, 2));
  bool fired = false;
  std::function<void()> poll = [&] {
    if (!fired && job->state() == mapred::JobState::kReducing) {
      for (const auto& m : job->maps()) {
        if (m->output_site() != nullptr) {
          fired = true;
          cluster::Machine* host =
              bed.cluster().machine(m->output_site()->name());
          ASSERT_NE(host, nullptr);
          EXPECT_TRUE(inj.crash_machine(*host, sim::Duration{30.0}));
          return;
        }
      }
    }
    if (!job->finished()) bed.sim().after(sim::Duration{1.0}, poll);
  };
  bed.sim().after(sim::Duration{1.0}, poll);
  bed.run_until(4000.0);

  ASSERT_TRUE(fired);
  EXPECT_TRUE(job->succeeded());
  EXPECT_EQ(inj.stats().machine_crashes, 1);
  EXPECT_EQ(inj.stats().machine_reboots, 1);
  EXPECT_EQ(inj.machines_down(), 0);
  EXPECT_GT(bed.mr().maps_reexecuted(), 0);
  EXPECT_EQ(bed.hdfs().blocks_lost(), 0);
  EXPECT_EQ(bed.hdfs().min_replication(), bed.calibration().hdfs_replicas);
  for (const auto& m : bed.cluster().machines()) {
    EXPECT_TRUE(m->powered());
  }
}

TEST(Faults, LastReplicaLossFailsDependentJobInsteadOfHanging) {
  harness::TestBed::Options o;
  o.calibration.hdfs_replicas = 1;  // every block loss is terminal
  o.faults.one_shot.push_back(
      {FaultSpec::Kind::kMachineCrash, /*at=*/5.0, "native0"});
  harness::TestBed bed(o);
  bed.add_native_nodes(2);

  bed.run_job(slow_job("gr", /*input_gb=*/1.0, /*reducers=*/1));

  // 16 single-replica blocks over 2 nodes: the crashed node held some,
  // and with RF 1 there is no survivor to re-replicate from.
  EXPECT_GT(bed.hdfs().blocks_lost(), 0);
  const mapred::Job& job = *bed.mr().jobs().front();
  EXPECT_TRUE(bed.hdfs().has_lost_block(job.input_file()));
  EXPECT_TRUE(job.failed());
  EXPECT_EQ(bed.mr().jobs_failed(), 1);
}

TEST(Faults, CrashOfMigrationEndpointRollsVmBack) {
  harness::TestBed bed;
  bed.add_native_nodes(2);
  auto machines = bed.add_plain_machines(2);
  cluster::Machine* src = machines[0];
  cluster::Machine* dst = machines[1];
  cluster::VirtualMachine* vm = bed.add_plain_vm(*src);
  FaultInjector inj(bed.sim(), bed.cluster(), bed.hdfs(), bed.mr(),
                    FaultSchedule{});

  bool done_fired = false;
  ASSERT_TRUE(bed.cluster().migrator().migrate(
      *vm, *dst, [&](const cluster::MigrationRecord&) { done_fired = true; }));
  bed.sim().at(5.0, [&] {
    // Destination dies mid pre-copy: the migration unwinds, then the host
    // powers off.
    EXPECT_TRUE(inj.crash_machine(*dst));
  });
  bed.run_until(1000.0);

  EXPECT_FALSE(done_fired);
  EXPECT_EQ(inj.stats().migrations_aborted, 1);
  EXPECT_EQ(vm->host_machine(), src);
  EXPECT_FALSE(vm->migrating());
  EXPECT_FALSE(vm->paused());
  EXPECT_FALSE(dst->powered());
  ASSERT_EQ(bed.cluster().migrator().history().size(), 1u);
  EXPECT_TRUE(bed.cluster().migrator().history().front().aborted);
}

// Satellite regression: requeue(ban) on a single-tracker cluster used to
// clear the whole ban set — including the just-evicted tracker — letting
// the task bounce straight back onto the node it was pulled from. The
// forgiveness pass must keep the most recent tracker banned until the
// grace timer clears it.
TEST(Faults, RequeueBanSurvivesSaturationForgiveness) {
  harness::TestBed bed;
  bed.add_native_nodes(1);
  mapred::Job* job = bed.mr().submit(slow_job("gr", 0.25, 1));

  bed.sim().at(5.0, [&] {
    auto attempts = bed.mr().running_attempts();
    ASSERT_FALSE(attempts.empty());
    mapred::TaskAttempt* a = attempts.front();
    mapred::Task& task = a->task();
    bed.mr().requeue(*a, /*ban_tracker=*/true);
    // The ban set saturated (1 tracker) and was forgiven down to the most
    // recent entry — not emptied.
    EXPECT_EQ(task.banned_trackers.size(), 1u);
  });
  bed.run_until(4000.0);

  EXPECT_EQ(bed.mr().requeued(), 1);
  // The grace timer forgave the last ban, so the job still completed on
  // the only tracker there is.
  EXPECT_TRUE(job->succeeded());
}

TEST(Faults, ChaosRunsAreByteIdentical) {
  auto run_once = [] {
    harness::TestBed::Options o;
    o.seed = 7;
    o.faults.seed = 99;
    o.faults.one_shot.push_back(
        {FaultSpec::Kind::kMachineCrash, /*at=*/12.0, "native1",
         sim::Duration{40.0}});
    o.faults.one_shot.push_back({FaultSpec::Kind::kTrackerTimeout,
                                 /*at=*/20.0, "", sim::Duration{15.0}});
    o.faults.task_failure_rate = 0.01;
    o.faults.rate_horizon_s = 150;
    harness::TestBed bed(o);
    bed.add_native_nodes(4);
    bed.run_jobs({slow_job("gr", 0.5, 2), slow_job("wc", 0.25, 1)});
    std::ostringstream os;
    bed.report().to_json(os);
    return os.str();
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace hybridmr
