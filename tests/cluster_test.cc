// Tests for the machine/VM allocation engine, power and migration models.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "cluster/cluster.h"
#include "cluster/machine.h"
#include "cluster/migration.h"
#include "sim/simulation.h"

namespace hybridmr::cluster {
namespace {

const Calibration& cal() { return Calibration::standard(); }

WorkloadPtr make_cpu_work(double cores, double seconds,
                          const std::string& name = "w") {
  Resources d;
  d.cpu = cores;
  return std::make_shared<Workload>(name, d, sim::Duration{seconds});
}

class ClusterTest : public ::testing::Test {
 protected:
  sim::Simulation sim{1};
  HybridCluster cluster{sim};
};

TEST(Waterfill, SatisfiesAllWhenCapacitySufficient) {
  std::vector<double> d{1, 2, 3};
  auto a = waterfill(10, d);
  EXPECT_DOUBLE_EQ(a[0], 1);
  EXPECT_DOUBLE_EQ(a[1], 2);
  EXPECT_DOUBLE_EQ(a[2], 3);
}

TEST(Waterfill, MaxMinFairUnderContention) {
  std::vector<double> d{1, 10, 10};
  auto a = waterfill(9, d);
  EXPECT_DOUBLE_EQ(a[0], 1);  // small demand fully satisfied
  EXPECT_DOUBLE_EQ(a[1], 4);  // remainder split equally
  EXPECT_DOUBLE_EQ(a[2], 4);
}

TEST(Waterfill, NeverExceedsCapacityOrDemand) {
  std::vector<double> d{5, 3, 8, 0.5};
  auto a = waterfill(7, d);
  double total = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_LE(a[i], d[i] + 1e-12);
    total += a[i];
  }
  EXPECT_LE(total, 7 + 1e-9);
}

TEST(Waterfill, EmptyAndZeroCapacity) {
  EXPECT_TRUE(waterfill(5, {}).empty());
  std::vector<double> d{1, 2};
  auto a = waterfill(0, d);
  EXPECT_DOUBLE_EQ(a[0], 0);
  EXPECT_DOUBLE_EQ(a[1], 0);
}

TEST(MemoryPressure, PiecewiseShape) {
  const auto& c = cal();
  EXPECT_DOUBLE_EQ(memory_pressure_factor(1.0, c), 1.0);
  EXPECT_DOUBLE_EQ(memory_pressure_factor(1.5, c), 1.0);
  // Gentle region.
  const double soft = memory_pressure_factor(0.85, c);
  EXPECT_LT(soft, 1.0);
  EXPECT_GT(soft, 0.85);
  // Thrashing region is steeper.
  const double hard = memory_pressure_factor(0.4, c);
  EXPECT_LT(hard, soft);
  // Floored.
  EXPECT_DOUBLE_EQ(memory_pressure_factor(0.0, c), c.mem_floor);
}

TEST_F(ClusterTest, SingleWorkloadRunsAtFullSpeed) {
  Machine* m = cluster.add_machine();
  bool done = false;
  auto w = make_cpu_work(1.0, 10.0);
  w->on_complete = [&] { done = true; };
  m->add(w);
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST_F(ClusterTest, ZeroDemandWorkloadIsPureDelay) {
  Machine* m = cluster.add_machine();
  auto w = std::make_shared<Workload>("delay", Resources{}, sim::Duration{7.0});
  bool done = false;
  w->on_complete = [&] { done = true; };
  m->add(w);
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sim.now(), 7.0);
}

TEST_F(ClusterTest, CpuContentionSlowsProportionally) {
  // Two 1.5-core demands on a 2-core machine: each granted 1.0 core,
  // speed = 1/1.5, so 10s of work takes 15s.
  Machine* m = cluster.add_machine();
  m->add(make_cpu_work(1.5, 10.0, "a"));
  m->add(make_cpu_work(1.5, 10.0, "b"));
  sim.run();
  EXPECT_NEAR(sim.now(), 15.0, 1e-9);
}

TEST_F(ClusterTest, LateArrivalSlowsTheFirst) {
  Machine* m = cluster.add_machine();
  auto a = make_cpu_work(2.0, 10.0, "a");
  double a_done = -1;
  a->on_complete = [&] { a_done = sim.now(); };
  m->add(a);
  sim.at(5.0, [&] { m->add(make_cpu_work(2.0, 10.0, "b")); });
  sim.run();
  // First half at full speed (5s of work done by t=5), then half speed:
  // remaining 5s of work takes 10s -> a completes at 15.
  EXPECT_NEAR(a_done, 15.0, 1e-9);
}

TEST_F(ClusterTest, CapsThrottleSpeed) {
  Machine* m = cluster.add_machine();
  auto w = make_cpu_work(1.0, 10.0);
  Resources caps = Resources::unbounded();
  caps.cpu = 0.5;
  w->set_caps(caps);
  m->add(w);
  sim.run();
  EXPECT_NEAR(sim.now(), 20.0, 1e-9);
}

TEST_F(ClusterTest, PauseStopsProgressAndResumeContinues) {
  Machine* m = cluster.add_machine();
  auto w = make_cpu_work(1.0, 10.0);
  m->add(w);
  sim.at(4.0, [&] { w->set_paused(true); });
  sim.at(9.0, [&] { w->set_paused(false); });
  sim.run();
  EXPECT_NEAR(sim.now(), 15.0, 1e-9);  // 4s run + 5s pause + 6s run
}

TEST_F(ClusterTest, RemoveCancelsCompletion) {
  Machine* m = cluster.add_machine();
  auto w = make_cpu_work(1.0, 10.0);
  bool completed = false;
  w->on_complete = [&] { completed = true; };
  m->add(w);
  sim.at(3.0, [&] { m->remove(w.get()); });
  sim.run();
  EXPECT_FALSE(completed);
  EXPECT_NEAR(w->remaining().value(), 7.0, 1e-9);
  EXPECT_EQ(w->site(), nullptr);
}

TEST_F(ClusterTest, DiskContentionSharesBandwidth) {
  Machine* m = cluster.add_machine();
  Resources d;
  d.disk = 80;  // full disk each
  auto a = std::make_shared<Workload>("a", d, sim::Duration{10.0});
  auto b = std::make_shared<Workload>("b", d, sim::Duration{10.0});
  m->add(a);
  m->add(b);
  sim.run();
  EXPECT_NEAR(sim.now(), 20.0, 1e-9);  // each gets half the disk
}

TEST_F(ClusterTest, VmCpuTaxSlowsWork) {
  Machine* m = cluster.add_machine();
  VirtualMachine* vm = cluster.add_vm(*m);
  auto w = make_cpu_work(1.0, 10.0);
  vm->add(w);
  sim.run();
  EXPECT_NEAR(sim.now(), 10.0 / (1.0 - cal().cpu_tax), 1e-6);
}

TEST_F(ClusterTest, Dom0NearNative) {
  Machine* m = cluster.add_machine();
  VirtualMachine* vm =
      cluster.add_vm(*m, "dom0", sim::CoreShare{cal().pm_cores},
                     cal().pm_memory_mb);
  vm->set_dom0(true);
  auto w = make_cpu_work(1.0, 100.0);
  vm->add(w);
  sim.run();
  // Within 5% of native (paper Fig. 2(c)).
  EXPECT_LT(sim.now(), 105.0);
  EXPECT_GT(sim.now(), 100.0);
}

TEST_F(ClusterTest, VmIoTaxExceedsCpuTax) {
  Machine* m1 = cluster.add_machine();
  VirtualMachine* vm1 = cluster.add_vm(*m1);
  Resources io;
  io.disk = 40;
  auto w = std::make_shared<Workload>("io", io, sim::Duration{10.0});
  vm1->add(w);
  sim.run();
  const double io_time = sim.now();
  EXPECT_GT(io_time, 10.0 / (1.0 - cal().cpu_tax));  // worse than CPU tax
  EXPECT_LT(io_time, 10.0 / (1.0 - 0.35));           // bounded
}

TEST_F(ClusterTest, CollocatedIoVmsContendBeyondSharing) {
  // Two VMs on one host each running a 30 MB/s disk stream: raw bandwidth
  // (80) is sufficient, so any slowdown beyond the base tax is the Dom-0
  // back-end contention term.
  Machine* m = cluster.add_machine();
  VirtualMachine* vm1 = cluster.add_vm(*m);
  VirtualMachine* vm2 = cluster.add_vm(*m);
  Resources io;
  io.disk = 30;
  auto a = std::make_shared<Workload>("a", io, sim::Duration{10.0});
  auto b = std::make_shared<Workload>("b", io, sim::Duration{10.0});
  vm1->add(a);
  vm2->add(b);
  double single_eff = vm1->io_efficiency(1);
  double dual_eff = vm1->io_efficiency(2);
  EXPECT_LT(dual_eff, single_eff);
  sim.run();
  EXPECT_NEAR(sim.now(), 10.0 / dual_eff, 0.2);
}

TEST_F(ClusterTest, VmVcpuCapLimitsInternalWork) {
  // Two 1-core demands inside a 1-vCPU VM on an idle 2-core host: the VM
  // cap, not the host, is the bottleneck.
  Machine* m = cluster.add_machine();
  VirtualMachine* vm = cluster.add_vm(*m);
  vm->add(make_cpu_work(1.0, 10.0, "a"));
  vm->add(make_cpu_work(1.0, 10.0, "b"));
  sim.run();
  EXPECT_NEAR(sim.now(), 20.0 / (1.0 - cal().cpu_tax), 1e-6);
}

TEST_F(ClusterTest, PausedVmFreezesItsWorkloads) {
  Machine* m = cluster.add_machine();
  VirtualMachine* vm = cluster.add_vm(*m);
  auto w = make_cpu_work(1.0, 9.5);
  vm->add(w);
  sim.at(2.0, [&] { vm->set_paused(true); });
  sim.at(7.0, [&] { vm->set_paused(false); });
  sim.run();
  // 9.5s of work at 0.95 speed = 10s of runtime, plus the 5s pause.
  EXPECT_NEAR(sim.now(), 15.0, 1e-6);
}

TEST_F(ClusterTest, EnergyIdleIntegratesIdlePower) {
  Machine* m = cluster.add_machine();
  sim.at(100.0, [] {});
  sim.run();
  EXPECT_NEAR(m->energy().joules(0, 100).value(), cal().pm_idle_watts.value() * 100,
              1e-6);
}

TEST_F(ClusterTest, EnergyRisesWithLoad) {
  Machine* idle = cluster.add_machine();
  Machine* busy = cluster.add_machine();
  busy->add(make_cpu_work(2.0, 100.0));
  sim.run();
  EXPECT_GT(busy->energy().joules(0, 100), idle->energy().joules(0, 100));
  // Fully CPU-loaded: blended utilization 0.7 -> 180 + 80*0.7 = 236 W.
  EXPECT_NEAR(busy->energy().mean_watts(0, 100).value(), 236.0, 1.0);
}

TEST_F(ClusterTest, PoweredOffMachineConsumesNothing) {
  Machine* m = cluster.add_machine();
  m->set_powered(false);
  sim.at(50.0, [] {});
  sim.run();
  EXPECT_NEAR(m->energy().joules(0, 50).value(), 0, 1e-9);
}

TEST_F(ClusterTest, PowerOffIdleSkipsBusyMachines) {
  Machine* busy = cluster.add_machine();
  cluster.add_machine();  // idle
  busy->add(make_cpu_work(1.0, 10.0));
  EXPECT_EQ(cluster.power_off_idle(), 1);
  EXPECT_EQ(cluster.powered_machines(), 1);
  EXPECT_TRUE(busy->powered());
}

TEST(MigrationModel, PlanScalesWithMemory) {
  MigrationModel model(cal());
  const auto small =
      model.plan(sim::MegaBytes{512}, sim::MBps{0.0}, sim::MBps{10});
  const auto large =
      model.plan(sim::MegaBytes{1024}, sim::MBps{0.0}, sim::MBps{10});
  EXPECT_NEAR(small.precopy_seconds.value(), 51.2, 1e-9);
  EXPECT_NEAR(large.precopy_seconds.value(), 102.4, 1e-9);
  EXPECT_GT(large.precopy_seconds, small.precopy_seconds);
}

TEST(MigrationModel, DirtyRateLengthensPrecopyAndDowntime) {
  MigrationModel model(cal());
  const auto idle =
      model.plan(sim::MegaBytes{1024}, sim::MBps{0.2}, sim::MBps{10});
  const auto busy =
      model.plan(sim::MegaBytes{1024}, sim::MBps{4.0}, sim::MBps{10});
  EXPECT_GT(busy.precopy_seconds, idle.precopy_seconds);
  EXPECT_GT(busy.downtime_seconds, idle.downtime_seconds);
  EXPECT_TRUE(busy.converged);
}

TEST(MigrationModel, DivergentDirtyRateBails) {
  MigrationModel model(cal());
  const auto plan =
      model.plan(sim::MegaBytes{1024}, sim::MBps{20.0}, sim::MBps{10});
  EXPECT_FALSE(plan.converged);
  EXPECT_GT(plan.downtime_seconds, sim::Duration{1.0});  // big stop-and-copy
}

TEST_F(ClusterTest, LiveMigrationMovesVmAndPreservesWork) {
  Machine* src = cluster.add_machine("src");
  Machine* dst = cluster.add_machine("dst");
  VirtualMachine* vm = cluster.add_vm(*src);
  auto w = make_cpu_work(0.5, 200.0);
  bool work_done = false;
  w->on_complete = [&] { work_done = true; };
  vm->add(w);

  bool migrated = false;
  sim.at(1.0, [&] {
    EXPECT_TRUE(cluster.migrator().migrate(*vm, *dst,
                                           [&](const MigrationRecord& r) {
                                             migrated = true;
                                             EXPECT_EQ(r.from, "src");
                                             EXPECT_EQ(r.to, "dst");
                                             EXPECT_GT(r.precopy_seconds.value(), 0);
                                             EXPECT_GT(r.downtime_seconds.value(), 0);
                                           }));
  });
  sim.run();
  EXPECT_TRUE(migrated);
  EXPECT_TRUE(work_done);
  EXPECT_EQ(vm->host_machine(), dst);
  EXPECT_EQ(cluster.migrator().history().size(), 1u);
  EXPECT_FALSE(vm->migrating());
  EXPECT_FALSE(vm->paused());
}

TEST_F(ClusterTest, MigrationRefusesDoubleAndSelfMoves) {
  Machine* src = cluster.add_machine("src");
  Machine* dst = cluster.add_machine("dst");
  VirtualMachine* vm = cluster.add_vm(*src);
  EXPECT_FALSE(cluster.migrator().migrate(*vm, *src));  // same host
  EXPECT_TRUE(cluster.migrator().migrate(*vm, *dst));
  EXPECT_FALSE(cluster.migrator().migrate(*vm, *dst));  // already in flight
  sim.run();
  EXPECT_EQ(vm->host_machine(), dst);
}

TEST_F(ClusterTest, LoadedVmMigratesSlowerThanIdle) {
  Machine* a = cluster.add_machine();
  Machine* b = cluster.add_machine();
  Machine* c = cluster.add_machine();
  Machine* d = cluster.add_machine();
  VirtualMachine* idle_vm = cluster.add_vm(*a);
  VirtualMachine* busy_vm = cluster.add_vm(*c);
  Resources mem_heavy;
  mem_heavy.cpu = 0.5;
  mem_heavy.memory = 800;
  busy_vm->add(std::make_shared<Workload>("hot", mem_heavy, sim::Duration{1e6}));

  double idle_time = -1;
  double busy_time = -1;
  cluster.migrator().migrate(*idle_vm, *b, [&](const MigrationRecord& r) {
    idle_time = r.precopy_seconds.value();
  });
  cluster.migrator().migrate(*busy_vm, *d, [&](const MigrationRecord& r) {
    busy_time = r.precopy_seconds.value();
  });
  sim.run_until(10000);
  ASSERT_GT(idle_time, 0);
  ASSERT_GT(busy_time, 0);
  EXPECT_GT(busy_time, idle_time);
}

TEST(MigrationModel, RoundCapExitReportsNonConvergence) {
  MigrationModel model(cal());
  // Dirtying at 95% of bandwidth shrinks the residual by only 5% per
  // round: 1024 MB * 0.95^30 is still ~220 MB when the round cap hits.
  // This exit used to slip through with converged == true.
  const auto capped =
      model.plan(sim::MegaBytes{1024}, sim::MBps{9.5}, sim::MBps{10});
  EXPECT_EQ(capped.rounds, cal().migration_max_rounds);
  EXPECT_FALSE(capped.converged);
  // The big residual becomes stop-and-copy downtime.
  EXPECT_GT(capped.downtime_seconds, sim::Duration{10.0});

  // The genuine-convergence exit still reports converged with a downtime
  // bounded by the stop threshold.
  const auto fine =
      model.plan(sim::MegaBytes{1024}, sim::MBps{0.5}, sim::MBps{10});
  EXPECT_LT(fine.rounds, cal().migration_max_rounds);
  EXPECT_TRUE(fine.converged);
  EXPECT_LE(fine.downtime_seconds,
            cal().migration_stop_threshold_mb / sim::MBps{10} +
                sim::Duration{cal().migration_downtime_overhead_s + 1e-9});
}

TEST(MigrationModel, DirtyRateJitterIsUnitMean) {
  // exp(N(0, sigma)) has mean exp(sigma^2/2) ~ 1.13 at sigma = 0.5 — the
  // old jitter silently ran every migration 13% hotter. The unit-mean
  // form exp(N(-sigma^2/2, sigma)) must average to 1.
  sim::Rng rng{1234};
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += unit_mean_lognormal(rng, Migrator::kDirtyRateJitterSigma);
  }
  const double mean = sum / n;
  // Standard error of the mean is ~sqrt((e^{0.25}-1))/sqrt(n) ~ 0.0038;
  // +-0.02 is over 5 sigma, so this cannot flap, but it would have
  // failed the old 1.13-mean jitter by a mile.
  EXPECT_NEAR(mean, 1.0, 0.02);
}

TEST_F(ClusterTest, AbortDuringPrecopyRollsBackToSource) {
  Machine* src = cluster.add_machine("src");
  Machine* dst = cluster.add_machine("dst");
  VirtualMachine* vm = cluster.add_vm(*src);
  auto w = make_cpu_work(0.5, 500.0);
  vm->add(w);

  bool done_fired = false;
  ASSERT_TRUE(cluster.migrator().migrate(
      *vm, *dst, [&](const MigrationRecord&) { done_fired = true; }));
  // Mid pre-copy (an idle 1 GB guest pre-copies for ~100 s): the
  // destination host dies.
  sim.at(5.0, [&] {
    EXPECT_EQ(cluster.migrator().abort_involving(*dst), 1);
  });
  sim.run_until(400.0);

  EXPECT_FALSE(done_fired);  // completion must not fire after an abort
  EXPECT_EQ(vm->host_machine(), src);
  EXPECT_FALSE(vm->migrating());
  EXPECT_FALSE(vm->paused());
  EXPECT_FALSE(w->paused());  // guest work keeps running on the source
  // Both pre-copy streams are gone from their hosts.
  EXPECT_TRUE(src->workloads().empty());
  EXPECT_TRUE(dst->workloads().empty());
  ASSERT_EQ(cluster.migrator().history().size(), 1u);
  const MigrationRecord& rec = cluster.migrator().history().front();
  EXPECT_TRUE(rec.aborted);
  EXPECT_NEAR(rec.precopy_seconds.value(), 5.0, 1e-9);
  // A fresh migration of the same VM is allowed afterwards.
  EXPECT_TRUE(cluster.migrator().migrate(*vm, *dst));
}

TEST_F(ClusterTest, AbortDuringDowntimeCancelsCompletion) {
  Machine* src = cluster.add_machine("src");
  Machine* dst = cluster.add_machine("dst");
  VirtualMachine* vm = cluster.add_vm(*src);

  bool done_fired = false;
  ASSERT_TRUE(cluster.migrator().migrate(
      *vm, *dst, [&](const MigrationRecord&) { done_fired = true; }));
  // Poll for the stop-and-copy pause (its start time is jittered); the
  // fixed downtime overhead is 50 ms, so a 10 ms poll always catches it.
  std::function<void()> poll = [&] {
    if (vm->paused()) {
      EXPECT_EQ(cluster.migrator().abort_involving(*src), 1);
    } else if (vm->migrating()) {
      sim.after(sim::Duration{0.01}, poll);
    }
  };
  sim.after(sim::Duration{0.01}, poll);
  sim.run_until(2000.0);

  EXPECT_FALSE(done_fired);
  EXPECT_EQ(vm->host_machine(), src);  // the cutover never happened
  EXPECT_FALSE(vm->migrating());
  EXPECT_FALSE(vm->paused());
  ASSERT_EQ(cluster.migrator().history().size(), 1u);
  EXPECT_TRUE(cluster.migrator().history().front().aborted);
}

TEST_F(ClusterTest, ResourcesHelpers) {
  Resources a{1, 100, 10, 5};
  Resources b{2, 50, 20, 5};
  const Resources sum = a + b;
  EXPECT_DOUBLE_EQ(sum.cpu, 3);
  EXPECT_DOUBLE_EQ(sum.memory, 150);
  const Resources m = a.min(b);
  EXPECT_DOUBLE_EQ(m.cpu, 1);
  EXPECT_DOUBLE_EQ(m.memory, 50);
  EXPECT_TRUE(m.fits_in(a));
  EXPECT_FALSE(b.fits_in(a));
  EXPECT_NEAR(a.dominant_share(Resources{2, 400, 40, 40}), 0.5, 1e-12);
  EXPECT_TRUE(Resources{}.is_zero());
  EXPECT_FALSE(a.is_zero());
}

}  // namespace
}  // namespace hybridmr::cluster
