// Whole-engine fork tests for the what-if engine (docs/WHATIF.md).
//
// The sim-core fork-equivalence proof (snapshot_test.cc) covers the event
// queue and Rng stream in isolation. These tests extend the claim to the
// fully wired engine: cluster + HDFS + MapReduce + interactive apps +
// fault injector + Phase II control loops, forked MID-CHAOS via
// WhatIfEngine::run_isolated. The oracle is the strongest one available:
// the forked child and the primary continue from the same cut and their
// %.17g end-of-run fingerprints must match byte for byte.
//
// Also covered here: fork isolation (child mutations never reach the
// parent), the model-predictive IPS (lookaheads happen; same seed =>
// byte-identical reports across two independent engines), child-failure
// reporting, and the HYBRIDMR_AUDIT guards that keep the in-process
// snapshot honest (registered state domains / named Rng streams).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "audit/invariants.h"
#include "core/hybridmr.h"
#include "faults/injector.h"
#include "harness/testbed.h"
#include "interactive/presets.h"
#include "sim/simulation.h"
#include "whatif/fork.h"
#include "workload/benchmarks.h"

namespace hybridmr {
namespace {

// Full round-trip precision — the oracle is byte equality, so nothing may
// round away a divergence.
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Chaos cluster with IPS + DRM active: the fig-8-class shape (virtual
// Hadoop partition + a collocated interactive app) under machine crashes,
// reboots and a background attempt-failure stream.
harness::TestBed::Options chaos_options(std::uint64_t seed) {
  harness::TestBed::Options o;
  o.seed = seed;
  o.calibration.hdfs_replicas = 3;
  o.faults.one_shot.push_back(
      {faults::FaultSpec::Kind::kMachineCrash, /*at=*/30.0, "vhost1",
       sim::Duration{60.0}});
  o.faults.one_shot.push_back(
      {faults::FaultSpec::Kind::kMachineCrash, /*at=*/120.0, "vhost3",
       sim::Duration{45.0}});
  o.faults.task_failure_rate = 0.02;
  o.faults.rate_horizon_s = 240;
  o.faults.seed = seed ^ 0x9e3779b9;
  return o;
}

// One wired engine: TestBed + HybridMRScheduler (Phase II only) + an
// interactive app + batch jobs, paused mid-chaos at `pause_at`.
struct Engine {
  explicit Engine(std::uint64_t seed, bool predictive = false)
      : bed(chaos_options(seed)) {
    auto sites = bed.add_virtual_nodes(/*hosts=*/4, /*vms_per_host=*/2);
    core::HybridMROptions options;
    options.enable_phase1 = false;
    options.ips.model_predictive = predictive;
    options.ips.lookahead_horizon_s = 20.0;
    hybrid = std::make_unique<core::HybridMRScheduler>(
        bed.sim(), bed.cluster(), bed.hdfs(), bed.mr(), options);
    hybrid->start();
    // Collocated with batch trackers on vhost0 (which stays up through
    // the chaos schedule): the IPS has real interference to arbitrate.
    hybrid->deploy_interactive(interactive::olio_params(), 1100, sites[0]);
    bed.mr().submit(workload::sort_job().with_input_gb(2));
    bed.mr().submit(workload::wcount().with_input_gb(1));
  }

  void run_until(double t) { bed.run_until(t); }

  // Deterministic across processes: report JSON, clock, per-job outcome,
  // then trailing draws from the main and every named Rng stream — any
  // divergence in hidden state shows up in the resumed sequences.
  std::string fingerprint() {
    std::vector<const interactive::InteractiveApp*> apps;
    for (const auto& app : hybrid->apps()) apps.push_back(app.get());
    std::ostringstream os;
    bed.report(apps).to_json(os);
    os << "\nnow=" << num(bed.sim().now());
    int i = 0;
    for (const auto& job : bed.mr().jobs()) {
      os << "\njob" << i++ << " finished=" << job->finished()
         << " ok=" << job->succeeded() << " t=" << num(job->finish_time());
    }
    for (int k = 0; k < 3; ++k) {
      os << "\nrng=" << num(bed.sim().rng().uniform());
    }
    for (const auto& name : bed.sim().named_rng_streams()) {
      os << "\n" << name << "=" << num(bed.sim().named_rng(name).uniform());
    }
    return os.str();
  }

  // Non-mutating view (no Rng draws) for isolation checks.
  std::string passive_fingerprint() {
    std::vector<const interactive::InteractiveApp*> apps;
    for (const auto& app : hybrid->apps()) apps.push_back(app.get());
    std::ostringstream os;
    bed.report(apps).to_json(os);
    os << "\nnow=" << num(bed.sim().now());
    return os.str();
  }

  harness::TestBed bed;
  std::unique_ptr<core::HybridMRScheduler> hybrid;
};

// --- tentpole oracle: whole-engine fork equivalence, mid-chaos ----------

TEST(WhatIfFork, ChaosForkEquivalence) {
  constexpr double kCut = 80.0;  // vhost1 is down, its reboot is pending
  constexpr double kEnd = 400.0;

  Engine e(/*seed=*/7);
  e.run_until(kCut);

  // Child continues the run to kEnd and reports its fingerprint.
  whatif::ForkResult child = e.bed.whatif().run_isolated([&] {
    e.run_until(kEnd);
    return e.fingerprint();
  });
  ASSERT_TRUE(child.ok);

  // The primary performs the identical continuation.
  e.run_until(kEnd);
  const std::string primary = e.fingerprint();

  EXPECT_EQ(child.payload, primary);
  EXPECT_EQ(e.bed.whatif().stats().forks, 1);
  EXPECT_EQ(e.bed.whatif().stats().child_failures, 0);
}

// A second cut inside the *other* crash window, different seed: the
// equivalence must not depend on a lucky fork point.
TEST(WhatIfFork, ChaosForkEquivalenceSecondCut) {
  constexpr double kCut = 130.0;  // vhost3 down, background failures armed
  constexpr double kEnd = 400.0;

  Engine e(/*seed=*/1234);
  e.run_until(kCut);
  whatif::ForkResult child = e.bed.whatif().run_isolated([&] {
    e.run_until(kEnd);
    return e.fingerprint();
  });
  ASSERT_TRUE(child.ok);
  e.run_until(kEnd);
  EXPECT_EQ(child.payload, e.fingerprint());
}

// --- isolation: nothing a child does is visible to the parent -----------

TEST(WhatIfFork, ForkIsolation) {
  Engine e(/*seed=*/11);
  e.run_until(60.0);

  const std::string before = e.passive_fingerprint();

  // The child mutates aggressively: runs 300 more simulated seconds of
  // chaos, drains jobs, draws from every Rng stream.
  whatif::ForkResult child = e.bed.whatif().run_isolated([&] {
    e.run_until(360.0);
    return e.fingerprint();
  });
  ASSERT_TRUE(child.ok);
  EXPECT_NE(child.payload, before);

  // Parent state is untouched: same clock, same report, and the run
  // continues normally afterwards.
  EXPECT_EQ(e.passive_fingerprint(), before);
  e.run_until(90.0);
  EXPECT_EQ(num(e.bed.sim().now()), num(90.0));
}

// --- child failure is an answer, not an error ---------------------------

TEST(WhatIfFork, ChildFailureReported) {
  Engine e(/*seed=*/5);
  e.run_until(20.0);
  whatif::ForkResult r = e.bed.whatif().run_isolated(
      []() -> std::string { std::_Exit(3); });
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(e.bed.whatif().stats().forks, 1);
  EXPECT_EQ(e.bed.whatif().stats().child_failures, 1);
  // The engine survives a dead child: the next fork works.
  whatif::ForkResult r2 =
      e.bed.whatif().run_isolated([] { return std::string("alive"); });
  EXPECT_TRUE(r2.ok);
  EXPECT_EQ(r2.payload, "alive");
}

// --- model-predictive IPS ----------------------------------------------

TEST(WhatIfPredictiveIps, LookaheadsRunAndRunCompletes) {
  Engine e(/*seed=*/7, /*predictive=*/true);
  e.run_until(400.0);
  const auto& stats = e.hybrid->ips().stats();
  EXPECT_GT(stats.lookaheads, 0);
  ASSERT_NE(e.hybrid->whatif(), nullptr);
  EXPECT_GT(e.hybrid->whatif()->stats().forks, 0);
  bool any_finished = false;
  for (const auto& job : e.bed.mr().jobs()) {
    any_finished = any_finished || job->finished();
  }
  EXPECT_TRUE(any_finished);
  e.hybrid->stop();
}

// Lookahead forks are side-effect-free on the parent beyond the chosen
// action: two independent engines with the same seed stay byte-identical
// through an entire predictive run.
TEST(WhatIfPredictiveIps, SameSeedByteIdentical) {
  Engine a(/*seed=*/99, /*predictive=*/true);
  Engine b(/*seed=*/99, /*predictive=*/true);
  a.run_until(400.0);
  b.run_until(400.0);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

// --- audit guards over the in-process snapshot --------------------------

using WhatIfAuditDeathTest = ::testing::Test;

TEST(WhatIfAuditDeathTest, FullSnapshotRefusedWithStateDomains) {
  if (!audit::enabled()) GTEST_SKIP() << "audit disabled in this build";
  sim::Simulation sim(1);
  sim.register_state_domain("cluster");
  EXPECT_DEATH({ auto snap = sim.snapshot(); }, "uncaptured_state_domain");
  // Acknowledging the exclusion succeeds.
  auto snap = sim.snapshot(sim::Simulation::SnapshotScope::kCoreOnly);
  sim.restore(snap);
}

TEST(WhatIfAuditDeathTest, RestoreRefusedWithUncapturedNamedStream) {
  if (!audit::enabled()) GTEST_SKIP() << "audit disabled in this build";
  sim::Simulation sim(1);
  (void)sim.named_rng("early");
  auto snap = sim.snapshot();
  (void)sim.named_rng("late");  // born after the cut: not in `snap`
  EXPECT_DEATH(sim.restore(snap), "named_rng_stream_uncaptured");
}

}  // namespace
}  // namespace hybridmr
