// Tests for the workload generators and the harness utilities.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "harness/table.h"
#include "harness/testbed.h"
#include "workload/benchmarks.h"
#include "workload/mix.h"

namespace hybridmr {
namespace {

TEST(Benchmarks, AllSixPresent) {
  const auto all = workload::all_benchmarks();
  ASSERT_EQ(all.size(), 6u);
  const std::vector<std::string> names{"Twitter", "Wcount",   "PiEst",
                                       "DistGrep", "Sort",    "Kmeans"};
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(all[i].name, names[i]);
  }
}

TEST(Benchmarks, LookupIsCaseInsensitive) {
  EXPECT_EQ(workload::benchmark("sort").name, "Sort");
  EXPECT_EQ(workload::benchmark("KMEANS").name, "Kmeans");
  EXPECT_EQ(workload::benchmark("PiEst").name, "PiEst");
  EXPECT_THROW(workload::benchmark("terasort"), std::out_of_range);
}

TEST(Benchmarks, ResourceClassesMatchPaper) {
  EXPECT_EQ(workload::sort_job().job_class, mapred::JobClass::kIoBound);
  EXPECT_EQ(workload::dist_grep().job_class, mapred::JobClass::kIoBound);
  EXPECT_EQ(workload::pi_est().job_class, mapred::JobClass::kCpuBound);
  EXPECT_EQ(workload::kmeans().job_class, mapred::JobClass::kCpuBound);
  EXPECT_EQ(workload::twitter().job_class,
            mapred::JobClass::kMemoryIoBound);
  EXPECT_EQ(workload::wcount().job_class, mapred::JobClass::kMemoryIoBound);
  // CPU-bound jobs have much higher compute density than I/O-bound ones.
  EXPECT_GT(workload::kmeans().map_cpu_s_per_mb,
            3 * workload::sort_job().map_cpu_s_per_mb);
}

TEST(Benchmarks, WithHelpersDeriveSpecs) {
  const auto base = workload::sort_job();
  EXPECT_DOUBLE_EQ(base.with_input_gb(3).input_gb, 3);
  EXPECT_EQ(base.with_reducers(7).num_reducers, 7);
  EXPECT_DOUBLE_EQ(base.with_desired_jct(sim::Duration{120}).desired_jct_s.value(), 120);
  EXPECT_NEAR(base.with_input_gb(3).input_mb().value(), 3072, 1e-9);
}

TEST(Mix, RespectsInteractiveFraction) {
  sim::Rng rng(5);
  workload::MixOptions o;
  o.total_entries = 20;
  o.interactive_fraction = 0.5;
  const auto entries = workload::make_mix(rng, o);
  ASSERT_EQ(entries.size(), 20u);
  int interactive = 0;
  for (const auto& e : entries) {
    if (!e.is_batch) ++interactive;
  }
  EXPECT_EQ(interactive, 10);
}

TEST(Mix, ArrivalsSortedWithinHorizon) {
  sim::Rng rng(9);
  workload::MixOptions o;
  o.total_entries = 15;
  o.horizon_s = 100;
  const auto entries = workload::make_mix(rng, o);
  EXPECT_TRUE(std::is_sorted(entries.begin(), entries.end(),
                             [](const auto& a, const auto& b) {
                               return a.arrival_s < b.arrival_s;
                             }));
  for (const auto& e : entries) {
    EXPECT_GE(e.arrival_s, 0);
    EXPECT_LT(e.arrival_s, 100);
  }
}

TEST(Mix, WmixPresets) {
  EXPECT_DOUBLE_EQ(workload::wmix_options(1).interactive_fraction, 0.5);
  EXPECT_DOUBLE_EQ(workload::wmix_options(2).interactive_fraction, 0.2);
  EXPECT_DOUBLE_EQ(workload::wmix_options(3).interactive_fraction, 0.8);
  EXPECT_THROW(workload::wmix_options(4), std::out_of_range);
}

TEST(Mix, BatchScaleAppliedToJobs) {
  sim::Rng rng(3);
  workload::MixOptions o;
  o.total_entries = 8;
  o.interactive_fraction = 0;
  o.batch_input_scale = 0.5;
  const auto entries = workload::make_mix(rng, o);
  const auto base = workload::all_benchmarks();
  for (const auto& e : entries) {
    ASSERT_TRUE(e.is_batch);
    // Scaled relative to some benchmark's natural size.
    bool matches = false;
    for (const auto& b : base) {
      if (e.job.name == b.name) {
        matches = true;
        EXPECT_NEAR(e.job.input_gb, b.input_gb * 0.5, 1e-9);
      }
    }
    EXPECT_TRUE(matches);
  }
}

TEST(TablePrinter, AlignsColumnsAndFormats) {
  harness::Table table({"name", "value"});
  table.row({"alpha", harness::Table::num(1.234, 2)});
  table.row({"b", harness::Table::pct(0.5, 0)});
  std::ostringstream out;
  table.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("50%"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TablePrinter, CsvEscapesSpecialCells) {
  harness::Table table({"name", "note"});
  table.row({"a,b", "say \"hi\""});
  table.row({"plain", "ok"});
  const std::string csv = table.csv();
  EXPECT_NE(csv.find("name,note\n"), std::string::npos);
  EXPECT_NE(csv.find("\"a,b\",\"say \"\"hi\"\"\"\n"), std::string::npos);
  EXPECT_NE(csv.find("plain,ok\n"), std::string::npos);
}

TEST(TestBedShapes, PartitionedVmShapesMatchPaperAtDensityTwo) {
  harness::TestBed bed;
  const auto [vcpus, memory] = bed.partitioned_vm_shape(2);
  EXPECT_DOUBLE_EQ(vcpus.value(), 1.0);     // the paper's 1 vCPU guest
  EXPECT_DOUBLE_EQ(memory.value(), 1024);   // ... with 1 GB of memory
  const auto [v1, m1] = bed.partitioned_vm_shape(1);
  EXPECT_DOUBLE_EQ(v1.value(), 2.0);
  const auto [v4, m4] = bed.partitioned_vm_shape(4);
  EXPECT_DOUBLE_EQ(v4.value(), 1.0);  // work-conserving credit scheduler minimum
  EXPECT_DOUBLE_EQ(m4.value(), 1024); // full overcommit, like the paper's 4x1GB
}

TEST(TestBedShapes, NodeRegistrationCounts) {
  harness::TestBed bed;
  bed.add_native_nodes(3);
  bed.add_virtual_nodes(2, 2);
  bed.add_dom0_nodes(1);
  EXPECT_EQ(bed.nodes().size(), 3u + 4u + 1u);
  EXPECT_EQ(bed.mr().trackers().size(), 8u);
  EXPECT_EQ(bed.hdfs().datanodes().size(), 8u);
  // Split nodes add one storage VM (datanode only) plus compute-only
  // tracker VMs.
  bed.add_split_nodes(1, 2);
  EXPECT_EQ(bed.mr().trackers().size(), 10u);
  EXPECT_EQ(bed.hdfs().datanodes().size(), 9u);
}

}  // namespace
}  // namespace hybridmr
