// Strong unit types: dimensional algebra, literals, and compile-time
// rejection of mis-dimensioned expressions (via requires-expressions; the
// classic negative-compile route lives in tests/units_negative/).
#include "sim/units.h"

#include <gtest/gtest.h>

namespace {

using namespace hybridmr::sim;             // NOLINT
using namespace hybridmr::sim::unit_literals;  // NOLINT

TEST(Units, RateTimesDurationIsSize) {
  const MegaBytes mb = 50_mbps * 4_secs;
  EXPECT_DOUBLE_EQ(mb.value(), 200.0);
  EXPECT_DOUBLE_EQ((4_secs * 50_mbps).value(), 200.0);
}

TEST(Units, SizeOverRateIsDuration) {
  const Duration t = 200_mb / 50_mbps;
  EXPECT_DOUBLE_EQ(t.value(), 4.0);
}

TEST(Units, SizeOverDurationIsRate) {
  const MBps r = 200_mb / 4_secs;
  EXPECT_DOUBLE_EQ(r.value(), 50.0);
}

TEST(Units, PowerTimesDurationIsEnergy) {
  const Joules j = 180_watts * 3600_secs;
  EXPECT_DOUBLE_EQ(j.value(), 648000.0);
  EXPECT_DOUBLE_EQ((3600_secs * 180_watts).value(), 648000.0);
}

TEST(Units, EnergyOverDurationIsPower) {
  EXPECT_DOUBLE_EQ((648000_joules / 3600_secs).value(), 180.0);
}

TEST(Units, EnergyOverPowerIsDuration) {
  EXPECT_DOUBLE_EQ((648000_joules / 180_watts).value(), 3600.0);
}

TEST(Units, SameDimensionArithmetic) {
  MegaBytes a = 100_mb;
  a += 28_mb;
  a -= 8_mb;
  EXPECT_DOUBLE_EQ((a + 10_mb).value(), 130.0);
  EXPECT_DOUBLE_EQ((a - 10_mb).value(), 110.0);
  EXPECT_DOUBLE_EQ((-a).value(), -120.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 240.0);
  EXPECT_DOUBLE_EQ((2.0 * a).value(), 240.0);
  EXPECT_DOUBLE_EQ((a / 2.0).value(), 60.0);
  a *= 0.5;
  a /= 0.5;
  EXPECT_DOUBLE_EQ(a.value(), 120.0);
}

TEST(Units, RatioOfSameDimensionIsDouble) {
  const double ratio = 300_mb / 100_mb;
  EXPECT_DOUBLE_EQ(ratio, 3.0);
}

TEST(Units, FractionScalesAnyQuantity) {
  EXPECT_DOUBLE_EQ((Fraction{0.5} * 100_mb).value(), 50.0);
  EXPECT_DOUBLE_EQ((100_mb * Fraction{0.25}).value(), 25.0);
  EXPECT_DOUBLE_EQ((Fraction{0.1} * 260_watts).value(), 26.0);
}

TEST(Units, Comparisons) {
  EXPECT_TRUE(1_mb < 2_mb);
  EXPECT_TRUE(2_secs >= 2_secs);
  EXPECT_TRUE(3_watts > 2_watts);
  EXPECT_TRUE(same_amount(2_mb, 2_mb));
  EXPECT_TRUE(same_time(Duration{1.5}, Duration{1.5}));
  EXPECT_FALSE(same_time(Duration{1.5}, Duration{1.5000001}));
}

TEST(Units, DefaultConstructedIsZero) {
  EXPECT_DOUBLE_EQ(Watts{}.value(), 0.0);
  EXPECT_DOUBLE_EQ(CoreShare{}.value(), 0.0);
}

// --- compile-time rejection of mis-dimensioned expressions ----------------
// Each static_assert proves the expression does NOT compile. If someone adds
// a careless operator overload, these fail the build.

template <class A, class B>
concept Addable = requires(A a, B b) { a + b; };
template <class A, class B>
concept Multipliable = requires(A a, B b) { a * b; };
template <class A, class B>
concept Divisible = requires(A a, B b) { a / b; };
template <class A, class B>
concept Assignable = requires(A a, B b) { a = b; };

// Mixing dimensions additively never compiles.
static_assert(!Addable<MBps, Seconds>);
static_assert(!Addable<MegaBytes, MBps>);
static_assert(!Addable<Watts, Joules>);
static_assert(!Addable<Seconds, MegaBytes>);
static_assert(!Addable<CoreShare, Watts>);

// Products without a defined dimension never compile.
static_assert(!Multipliable<Watts, MegaBytes>);
static_assert(!Multipliable<MBps, MBps>);
static_assert(!Multipliable<Joules, MegaBytes>);
static_assert(!Multipliable<Seconds, Seconds>);
static_assert(!Multipliable<CoreShare, MegaBytes>);

// Quotients without a defined dimension never compile.
static_assert(!Divisible<Watts, MegaBytes>);
static_assert(!Divisible<Seconds, MBps>);
static_assert(!Divisible<MegaBytes, Watts>);

// No cross-dimension assignment or implicit double conversion.
static_assert(!Assignable<Watts&, MegaBytes>);
static_assert(!Assignable<Watts&, double>);
static_assert(!std::is_convertible_v<double, MegaBytes>);
static_assert(!std::is_convertible_v<MegaBytes, double>);

// The valid combinations produce exactly the expected dimension.
static_assert(std::is_same_v<decltype(MBps{1} * Seconds{1}), MegaBytes>);
static_assert(std::is_same_v<decltype(Watts{1} * Seconds{1}), Joules>);
static_assert(std::is_same_v<decltype(MegaBytes{1} / MBps{1}), Duration>);
static_assert(std::is_same_v<decltype(MegaBytes{1} / Seconds{1}), MBps>);
static_assert(std::is_same_v<decltype(Joules{1} / Seconds{1}), Watts>);
static_assert(std::is_same_v<decltype(Joules{1} / Watts{1}), Duration>);
static_assert(std::is_same_v<decltype(MegaBytes{2} / MegaBytes{1}), double>);

// Zero-overhead claim: a Quantity is exactly one double.
static_assert(sizeof(MegaBytes) == sizeof(double));
static_assert(sizeof(Joules) == sizeof(double));

}  // namespace
