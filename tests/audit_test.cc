// Tests for the runtime invariant auditor (src/audit). Compiles in every
// build flavour: with HYBRIDMR_AUDIT=ON the violation paths are exercised
// as death tests matching the structured dump; without it the same inputs
// must take the tolerant release-mode paths (clamp + counter).
#include <gtest/gtest.h>

#include <memory>

#include "audit/invariants.h"
#include "sim/simulation.h"

namespace hybridmr {
namespace {

TEST(Audit, EnabledMatchesBuildFlavour) {
#if defined(HYBRIDMR_AUDIT_ENABLED)
  EXPECT_TRUE(audit::enabled());
#else
  EXPECT_FALSE(audit::enabled());
#endif
  EXPECT_EQ(audit::kEnabled, audit::enabled());
}

TEST(Audit, NumFormatsRoundTrippably)
{
  EXPECT_EQ(audit::num(2.0), "2");
  EXPECT_EQ(audit::num(-1.0), "-1");
  EXPECT_EQ(audit::num(0.5), "0.5");
}

#if defined(HYBRIDMR_AUDIT_ENABLED)

using AuditDeathTest = ::testing::Test;

TEST(AuditDeathTest, FailDumpsComponentInvariantAndDetails) {
  EXPECT_DEATH(
      audit::fail("unit.test", "demo_invariant", 1.5,
                  {{"key", "value"}, {"n", audit::num(3.0)}}),
      "AUDIT VIOLATION(.|\n)*unit\\.test(.|\n)*demo_invariant"
      "(.|\n)*key(.|\n)*value");
}

// Satellite (b): scheduling into the past is a hard violation under audit,
// not a clamp. The release-mode clamp regression lives in telemetry_test.cc.
TEST(AuditDeathTest, PastSchedulingAborts) {
  EXPECT_DEATH(
      {
        sim::Simulation sim;
        sim.after(10.0, [] {});
        sim.run();
        sim.at(5.0, [] {});  // now() is 10: in the past
      },
      "AUDIT VIOLATION(.|\n)*no_past_scheduling");
}

#else  // !HYBRIDMR_AUDIT_ENABLED

// The same misuse must stay tolerant in ordinary builds: clamped, counted,
// and the event still fires (regression guard for the clamp path).
TEST(Audit, PastSchedulingClampsWithoutAudit) {
  sim::Simulation sim;
  sim.after(10.0, [] {});
  sim.run();
  bool fired = false;
  sim.at(5.0, [&] { fired = true; });
  EXPECT_EQ(sim.clamped_past_events(), 1u);
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

#endif  // HYBRIDMR_AUDIT_ENABLED

// shutdown() is the sanctioned leak-free teardown for abandoned runs: every
// pending handler (and the captures it owns) must be destroyed, not leaked
// and not fired.
TEST(Audit, ShutdownReleasesPendingCaptures) {
  sim::Simulation sim;
  auto sentinel = std::make_shared<int>(7);
  std::weak_ptr<int> watch = sentinel;
  bool fired = false;
  sim.after(1.0, [sentinel, &fired] { fired = true; });
  sim.after(2.0, [sentinel] {});
  sentinel.reset();
  EXPECT_FALSE(watch.expired());  // the queue keeps the captures alive
  EXPECT_EQ(sim.pending_events(), 2u);
  EXPECT_EQ(sim.shutdown(), 2u);
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending_events(), 0u);
}

// Regression for the every() ticker cycle: the periodic closure used to keep
// itself alive through a self-referencing shared_ptr even after cancel().
TEST(Audit, PeriodicTickerFreedAfterCancel) {
  sim::Simulation sim;
  auto sentinel = std::make_shared<int>(1);
  std::weak_ptr<int> watch = sentinel;
  auto handle = sim.every(1.0, [sentinel] {});
  sentinel.reset();
  sim.run_until(3.5);
  EXPECT_FALSE(watch.expired());
  handle.cancel();
  sim.run();  // drains the already scheduled (now inert) tick
  EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace hybridmr
