// Unit tests for the statistics library (regressions, summaries, series).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/regression.h"
#include "stats/summary.h"
#include "stats/timeseries.h"

namespace hybridmr::stats {
namespace {

TEST(LinearRegression, RecoversExactLine) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{3, 5, 7, 9};  // y = 1 + 2x
  auto fit = LinearRegression::fit(x, y);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->slope(), 2.0, 1e-9);
  EXPECT_NEAR(fit->intercept(), 1.0, 1e-9);
  EXPECT_NEAR(fit->r_squared(), 1.0, 1e-9);
  EXPECT_NEAR(fit->predict(10), 21.0, 1e-9);
}

TEST(LinearRegression, RejectsDegenerateInput) {
  std::vector<double> x{2, 2, 2};
  std::vector<double> y{1, 2, 3};
  EXPECT_FALSE(LinearRegression::fit(x, y).has_value());
  EXPECT_FALSE(LinearRegression::fit(std::vector<double>{1},
                                     std::vector<double>{1})
                   .has_value());
}

TEST(LinearRegression, NoisyFitHasReasonableR2) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + ((i % 2 == 0) ? 0.5 : -0.5));
  }
  auto fit = LinearRegression::fit(x, y);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->slope(), 2.0, 0.01);
  EXPECT_GT(fit->r_squared(), 0.99);
}

TEST(PiecewiseLinearRegression, FindsKnee) {
  // Flat at 10 until x=5, then slope 3.
  std::vector<double> x, y;
  for (int i = 0; i <= 10; ++i) {
    x.push_back(i);
    y.push_back(i <= 5 ? 10.0 : 10.0 + 3.0 * (i - 5));
  }
  auto fit = PiecewiseLinearRegression::fit(x, y);
  ASSERT_TRUE(fit.has_value());
  EXPECT_TRUE(fit->has_break());
  EXPECT_GT(fit->breakpoint(), 3.0);
  EXPECT_LT(fit->breakpoint(), 7.0);
  EXPECT_NEAR(fit->predict(2), 10.0, 0.8);
  EXPECT_NEAR(fit->predict(9), 22.0, 1.5);
}

TEST(PiecewiseLinearRegression, FallsBackToSingleSegment) {
  std::vector<double> x{0, 1, 2, 3, 4, 5};
  std::vector<double> y{0, 2, 4, 6, 8, 10};
  auto fit = PiecewiseLinearRegression::fit(x, y);
  ASSERT_TRUE(fit.has_value());
  EXPECT_FALSE(fit->has_break());
  EXPECT_NEAR(fit->predict(2.5), 5.0, 1e-9);
}

TEST(ExponentialRegression, RecoversExponential) {
  std::vector<double> x, y;
  for (int i = 0; i < 10; ++i) {
    x.push_back(i);
    y.push_back(2.0 * std::exp(0.3 * i));
  }
  auto fit = ExponentialRegression::fit(x, y);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->a(), 2.0, 1e-6);
  EXPECT_NEAR(fit->b(), 0.3, 1e-9);
  EXPECT_NEAR(fit->predict(12), 2.0 * std::exp(3.6), 1e-3);
}

TEST(ExponentialRegression, RejectsNonPositive) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{1, 0, 2};
  EXPECT_FALSE(ExponentialRegression::fit(x, y).has_value());
}

TEST(InverseRegression, RecoversInverseLaw) {
  // y = 5 + 100/x (JCT vs cluster size shape).
  std::vector<double> x{1, 2, 4, 8, 16};
  std::vector<double> y;
  for (double v : x) y.push_back(5 + 100 / v);
  auto fit = InverseRegression::fit(x, y);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->a(), 5.0, 1e-9);
  EXPECT_NEAR(fit->b(), 100.0, 1e-9);
  EXPECT_NEAR(fit->predict(32), 5 + 100.0 / 32, 1e-9);
}

TEST(Interpolate, MidpointAndExtrapolation) {
  std::vector<double> xs{1, 2, 4};
  std::vector<double> ys{10, 20, 40};
  EXPECT_NEAR(interpolate(xs, ys, 1.5), 15.0, 1e-9);
  EXPECT_NEAR(interpolate(xs, ys, 3.0), 30.0, 1e-9);
  EXPECT_NEAR(interpolate(xs, ys, 8.0), 80.0, 1e-9);  // extrapolates
  EXPECT_NEAR(interpolate(xs, ys, 0.5), 5.0, 1e-9);
}

TEST(Accumulator, WelfordMatchesDefinition) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_NEAR(acc.mean(), 5.0, 1e-12);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_NEAR(percentile(v, 0), 10, 1e-9);
  EXPECT_NEAR(percentile(v, 50), 25, 1e-9);
  EXPECT_NEAR(percentile(v, 100), 40, 1e-9);
  EXPECT_NEAR(percentile(v, 25), 17.5, 1e-9);
}

TEST(Summary, OfValues) {
  std::vector<double> v{1, 2, 3, 4, 5};
  const Summary s = Summary::of(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_NEAR(s.mean, 3.0, 1e-12);
  EXPECT_NEAR(s.p50, 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 5);
}

TEST(Ewma, ConvergesTowardInput) {
  Ewma e(0.5);
  e.update(10);
  EXPECT_DOUBLE_EQ(e.value(), 10);  // seeded with first sample
  e.update(0);
  EXPECT_DOUBLE_EQ(e.value(), 5);
  e.update(0);
  EXPECT_DOUBLE_EQ(e.value(), 2.5);
}

TEST(TimeSeries, ValueAtStepFunction) {
  TimeSeries ts;
  ts.add(0, 1);
  ts.add(10, 2);
  ts.add(20, 3);
  EXPECT_DOUBLE_EQ(ts.value_at(-1), 0);
  EXPECT_DOUBLE_EQ(ts.value_at(0), 1);
  EXPECT_DOUBLE_EQ(ts.value_at(9.9), 1);
  EXPECT_DOUBLE_EQ(ts.value_at(10), 2);
  EXPECT_DOUBLE_EQ(ts.value_at(100), 3);
}

TEST(TimeSeries, IntegrateStepFunction) {
  TimeSeries ts;
  ts.add(0, 100);   // 100 until t=10
  ts.add(10, 200);  // 200 afterwards
  EXPECT_NEAR(ts.integrate(0, 10), 1000, 1e-9);
  EXPECT_NEAR(ts.integrate(0, 20), 3000, 1e-9);
  EXPECT_NEAR(ts.integrate(5, 15), 500 + 1000, 1e-9);
  EXPECT_DOUBLE_EQ(ts.integrate(5, 5), 0);
}

TEST(TimeSeries, MeanInWindow) {
  TimeSeries ts;
  ts.add(0, 10);
  ts.add(1, 20);
  ts.add(2, 30);
  EXPECT_NEAR(ts.mean_in(0.5, 2.5), 25, 1e-12);
  EXPECT_DOUBLE_EQ(ts.mean_in(5, 6), 0);
}

TEST(TimeSeries, TrimKeepsBoundarySample) {
  TimeSeries ts;
  ts.add(0, 1);
  ts.add(10, 2);
  ts.add(20, 3);
  ts.trim_before(15);
  EXPECT_DOUBLE_EQ(ts.value_at(15), 2);  // sample at 10 retained
  EXPECT_EQ(ts.size(), 2u);
}

}  // namespace
}  // namespace hybridmr::stats
