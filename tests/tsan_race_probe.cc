// Deliberately racy program proving the TSan stage is not vacuous.
//
// Two threads increment the same plain int with no synchronization — the
// canonical data race. Built only when HYBRIDMR_SANITIZE contains
// `thread`; scripts/ci.sh runs it expecting a NON-zero exit (TSan reports
// the race and dies with its failure exit code). If this probe ever exits
// 0 the tsan stage fails: it would mean the sanitizer is not actually
// instrumenting the build, and the "clean" result of concurrency_test is
// meaningless.
//
// NOT registered with ctest — it is supposed to fail.
#include <cstdio>
#include <thread>

namespace {
int shared_counter = 0;  // intentionally unguarded

void hammer() {
  for (int i = 0; i < 100000; ++i) ++shared_counter;
}
}  // namespace

int main() {
  std::thread a(hammer);
  std::thread b(hammer);
  a.join();
  b.join();
  // Reaching here without a TSan report means the build is uninstrumented.
  std::printf("tsan_race_probe: %d (no race detected — probe is vacuous)\n",
              shared_counter);
  return 0;
}
