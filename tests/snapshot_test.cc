// Fork-equivalence proof for Simulation::snapshot()/restore().
//
// The state census (scripts/analyze/state.py, docs/SNAPSHOT.md) claims the
// sim core's full state is: clock, event queue (pending handlers, stale
// lazy-deleted heap items, deferred seats, conservation counters), and the
// Rng stream. These tests prove the census is *correct, not just complete*:
//
//   1. Fork: snapshot at t, run the original to completion, restore the
//      snapshot into a FRESH core, run that to completion — the two
//      RunReports must match byte for byte. Handlers reach all mutable
//      state through a stable Env* indirection the test re-points between
//      runs (the snapshot contract: copied closures alias their captures).
//   2. Rewind: snapshot, run ahead, restore IN PLACE, run again — byte
//      identical. this-capturing every() tickers are legal here.
//
// The scenario deliberately exercises the queue states a naive copy would
// get wrong: an event cancelled before t whose stale heap item is still
// buried in the heap at t, a defer() postpone (stale seat surfaces after
// t), a defer() advance (duplicate heap item), a repush() with inherited
// FIFO seq, a same-time collision straddling t, a flush-hook-scheduled
// event, and Rng draws on both sides of the cut.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulation.h"

namespace hybridmr::sim {
namespace {

// Full round-trip precision: the whole point is byte-for-byte equality, so
// the report must not round away a divergence.
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// All mutable scenario state, copyable by value at the snapshot point.
struct World {
  std::vector<std::string> trace;
  EventId victim;     // cancelled before the snapshot (stale heap item)
  EventId postponed;  // defer()ed later: stale seat buried at t
  EventId advanced;   // defer()ed earlier: duplicate heap item
  EventId repushed;   // repush()ed: fresh slot, inherited seq
  int chain_hops = 0;
  bool flush_request = false;
};

// The stable indirection every handler captures. Re-pointing sim/world
// re-targets every closure the snapshot copied — this is the documented
// fork protocol for state reached from inside pending callbacks.
struct Env {
  Simulation* sim = nullptr;
  World* world = nullptr;
};

void chain(Env* env) {
  World& w = *env->world;
  const double u = env->sim->rng().uniform();
  w.trace.push_back("chain@" + num(env->sim->now()) + " u=" + num(u));
  if (++w.chain_hops < 14) {
    env->sim->after(6.0 + 4.0 * u, [env] { chain(env); });
  }
}

// Schedules the whole scenario at absolute times (called with now() == 0).
void arm(Env* env) {
  Simulation& sim = *env->sim;
  sim.after(5.0, [env] { chain(env); });
  sim.at(20.0, [env] {
    env->world->victim = env->sim->at(80.0, [env] {
      env->world->trace.push_back("victim fired (MUST NOT HAPPEN)");
    });
  });
  sim.at(30.0, [env] {
    const bool ok = env->sim->cancel(env->world->victim);
    env->world->trace.push_back(std::string("cancel victim ") +
                                (ok ? "ok" : "miss"));
  });
  // Same-time FIFO collision at 52.0 (after the cut), pushed before it.
  sim.at(35.0, [env] {
    for (int i = 0; i < 3; ++i) {
      env->sim->at(52.0, [env, i] {
        env->world->trace.push_back("collision#" + std::to_string(i) + "@" +
                                    num(env->sim->now()));
      });
    }
  });
  sim.at(40.0, [env] {
    env->world->postponed = env->sim->at(60.0, [env] {
      env->world->trace.push_back("postponed fired@" + num(env->sim->now()));
    });
  });
  sim.at(42.0, [env] {
    env->world->advanced = env->sim->at(70.0, [env] {
      env->world->trace.push_back("advanced fired@" + num(env->sim->now()));
    });
  });
  sim.at(44.0, [env] {
    env->world->repushed = env->sim->at(65.0, [env] {
      env->world->trace.push_back("repushed fired@" + num(env->sim->now()));
    });
  });
  sim.at(45.0, [env] {
    env->sim->defer(env->world->postponed, 90.0);
    env->world->trace.push_back("defer postpone -> 90");
  });
  sim.at(47.0, [env] {
    env->world->repushed = env->sim->repush(env->world->repushed, 58.0);
    env->world->trace.push_back("repush -> 58");
  });
  sim.at(48.0, [env] {
    env->sim->defer(env->world->advanced, 55.0);
    env->world->trace.push_back("defer advance -> 55");
  });
  sim.at(49.0, [env] { env->world->flush_request = true; });
}

// Flush hooks are harness wiring (not snapshotted); the harness installs
// the same hook on every core it drives.
void wire_flush_hook(Env* env) {
  env->sim->add_flush_hook([env] {
    if (env->world->flush_request) {
      env->world->flush_request = false;
      env->sim->after(2.5, [env] {
        env->world->trace.push_back("flush-spawned@" + num(env->sim->now()));
      });
    }
  });
}

// The RunReport: every queue-mechanics counter, the full trace, and a
// post-run Rng fingerprint (three draws — byte-equal only if the stream
// position matches exactly at the end of the run).
std::string run_report(Simulation& sim, const World& world) {
  std::string out = "{\"now\":" + num(sim.now());
  out += ",\"processed\":" + std::to_string(sim.events_processed());
  out += ",\"scheduled\":" + std::to_string(sim.events_scheduled());
  out += ",\"cancelled\":" + std::to_string(sim.events_cancelled());
  out += ",\"deferred\":" + std::to_string(sim.events_deferred());
  out += ",\"pending\":" + std::to_string(sim.pending_events());
  out += ",\"max_depth\":" + std::to_string(sim.max_queue_depth());
  out += ",\"max_fanout\":" + std::to_string(sim.max_event_fanout());
  out += ",\"flush_scheduled\":" + std::to_string(sim.flush_scheduled_events());
  out += ",\"clamped\":" + std::to_string(sim.clamped_past_events());
  out += ",\"trace\":[";
  for (std::size_t i = 0; i < world.trace.size(); ++i) {
    out += (i ? ",\"" : "\"") + world.trace[i] + "\"";
  }
  out += "],\"rng\":[" + num(sim.rng().uniform()) + "," +
         num(sim.rng().uniform()) + "," + num(sim.rng().uniform()) + "]}";
  return out;
}

TEST(SnapshotFork, RestoredFreshCoreMatchesUninterruptedRunByteForByte) {
  constexpr double kCut = 50.0;

  Simulation sim_a(1234);
  World world_a;
  Env env{&sim_a, &world_a};
  wire_flush_hook(&env);
  arm(&env);
  sim_a.run_until(kCut);

  // The cut: core snapshot + value copy of the world at t.
  const Simulation::Snapshot snap = sim_a.snapshot();
  const World world_at_cut = world_a;
  ASSERT_GT(sim_a.pending_events(), 0u) << "scenario must straddle the cut";

  // Run the original, uninterrupted, to completion.
  sim_a.run();
  const std::string report_a = run_report(sim_a, world_a);

  // Fork: fresh core, restored queue/clock/rng, world copied from the cut,
  // and the Env re-pointed so every closure the snapshot copied — and
  // every closure those will schedule — lands on the fork.
  Simulation sim_b(999);  // seed is irrelevant: restore() overwrites rng
  World world_b = world_at_cut;
  env.sim = &sim_b;
  env.world = &world_b;
  wire_flush_hook(&env);
  sim_b.restore(snap);
  EXPECT_EQ(sim_b.pending_events(), snap.queue.live);
  sim_b.run();
  const std::string report_b = run_report(sim_b, world_b);

  EXPECT_EQ(report_a, report_b);
  // The scenario's tripwires actually armed before the cut:
  const std::string joined = report_a;
  EXPECT_NE(joined.find("cancel victim ok"), std::string::npos);
  EXPECT_NE(joined.find("defer postpone -> 90"), std::string::npos);
  EXPECT_NE(joined.find("defer advance -> 55"), std::string::npos);
  EXPECT_NE(joined.find("repush -> 58"), std::string::npos);
  EXPECT_NE(joined.find("flush-spawned"), std::string::npos);
  EXPECT_EQ(joined.find("MUST NOT HAPPEN"), std::string::npos);
}

TEST(SnapshotRewind, InPlaceRestoreReplaysTickersByteForByte) {
  Simulation sim(7);
  std::vector<std::string> trace;
  // every() tickers capture `this` — legal for in-place rewind (the same
  // Simulation receives the replay), never for a fresh-core fork.
  sim.every(3.0, [&] {
    trace.push_back("tick@" + num(sim.now()) + " u=" +
                    num(sim.rng().uniform()));
  });
  sim.run_until(10.0);

  const Simulation::Snapshot snap = sim.snapshot();
  const std::vector<std::string> trace_at_cut = trace;

  sim.run_until(40.0);
  std::string first = "[";
  for (const auto& s : trace) first += s + ";";
  first += "]n=" + num(sim.now()) +
           " p=" + std::to_string(sim.events_processed()) +
           " u=" + num(sim.rng().uniform());

  sim.restore(snap);
  trace = trace_at_cut;
  sim.run_until(40.0);
  std::string second = "[";
  for (const auto& s : trace) second += s + ";";
  second += "]n=" + num(sim.now()) +
            " p=" + std::to_string(sim.events_processed()) +
            " u=" + num(sim.rng().uniform());

  EXPECT_EQ(first, second);
}

TEST(Snapshot, PreSnapshotEventIdsAreValidAgainAfterRestore) {
  Simulation sim(3);
  int fired = 0;
  const EventId id = sim.at(5.0, [&] { ++fired; });
  const Simulation::Snapshot snap = sim.snapshot();

  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.cancel(id));  // consumed

  sim.restore(snap);
  // The restored queue reproduces slots and generations, so the old id
  // names the pending event again — cancel it this time.
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.events_cancelled(), 1u);
}

TEST(Snapshot, IsImmutableWhileTheOriginalKeepsRunning) {
  Simulation sim(11);
  sim.at(1.0, [] {});
  const Simulation::Snapshot snap = sim.snapshot();
  sim.at(2.0, [] {});
  sim.at(3.0, [] {});
  EXPECT_EQ(sim.pending_events(), 3u);
  EXPECT_EQ(snap.queue.live, 1u);

  sim.restore(snap);
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_EQ(sim.events_scheduled(), 1u);
}

TEST(Snapshot, CountersRoundTripExactly) {
  Simulation sim(5);
  const EventId a = sim.at(1.0, [] {});
  sim.at(2.0, [] {});
  sim.cancel(a);
  sim.run_until(1.5);
  const Simulation::Snapshot snap = sim.snapshot();

  Simulation fresh(0);
  fresh.restore(snap);
  EXPECT_DOUBLE_EQ(fresh.now(), 1.5);
  EXPECT_EQ(fresh.events_processed(), sim.events_processed());
  EXPECT_EQ(fresh.events_scheduled(), sim.events_scheduled());
  EXPECT_EQ(fresh.events_cancelled(), sim.events_cancelled());
  EXPECT_EQ(fresh.pending_events(), sim.pending_events());
  EXPECT_EQ(fresh.max_queue_depth(), sim.max_queue_depth());
}

TEST(Snapshot, NamedRngStreamsRoundTrip) {
  Simulation sim(21);
  Rng& faults = sim.named_rng("faults.injector");
  Rng& jitter = sim.named_rng("cluster.dirty_jitter");
  // Distinct per-name defaults, independent of creation order.
  EXPECT_NE(faults.uniform(), jitter.uniform());

  const Simulation::Snapshot snap = sim.snapshot();
  ASSERT_EQ(snap.named_rngs.size(), 2u);

  // Run every stream (main + named) ahead, then rewind: the resumed
  // sequences must replay exactly.
  std::vector<double> ahead;
  for (int i = 0; i < 4; ++i) {
    ahead.push_back(sim.rng().uniform());
    ahead.push_back(faults.uniform());
    ahead.push_back(jitter.uniform());
  }
  sim.restore(snap);
  // The references survive restore: streams are restored in place, and a
  // construct-then-restore lookup resolves to the same stream (the seed
  // argument of a later named_rng() call is ignored for live streams).
  EXPECT_EQ(&sim.named_rng("faults.injector", 777), &faults);
  std::vector<double> replay;
  for (int i = 0; i < 4; ++i) {
    replay.push_back(sim.rng().uniform());
    replay.push_back(faults.uniform());
    replay.push_back(jitter.uniform());
  }
  EXPECT_EQ(ahead, replay);
  EXPECT_EQ(sim.named_rng_streams(),
            (std::vector<std::string>{"cluster.dirty_jitter",
                                      "faults.injector"}));
}

}  // namespace
}  // namespace hybridmr::sim
