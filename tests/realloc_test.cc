// Tests for deferred/coalesced reallocation (realloc.h): burst coalescing,
// read-barrier freshness, eager/deferred determinism equivalence, the
// reschedule-churn fix, the span-based waterfill, and the bounded
// TimeSeries machinery that keeps long runs O(max) memory.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/machine.h"
#include "harness/testbed.h"
#include "sim/simulation.h"
#include "stats/timeseries.h"
#include "telemetry/telemetry.h"
#include "workload/benchmarks.h"

namespace hybridmr::cluster {
namespace {

WorkloadPtr make_cpu_work(double cores, sim::Duration work,
                          const std::string& name = "w") {
  Resources d;
  d.cpu = cores;
  return std::make_shared<Workload>(name, d, work);
}

class ReallocTest : public ::testing::Test {
 protected:
  sim::Simulation sim{1};
  HybridCluster cluster{sim};
};

// A k-mutation burst at one simulated instant triggers exactly one
// recompute, at the next flush, instead of k eager ones.
TEST_F(ReallocTest, BurstCoalescesToOneRecompute) {
  Machine* m = cluster.add_machine();
  const std::uint64_t c0 = m->recompute_count();

  std::vector<WorkloadPtr> work;
  for (int i = 0; i < 16; ++i) {
    work.push_back(make_cpu_work(0.5, Workload::kService));
    m->add(work.back());
  }
  EXPECT_EQ(m->recompute_count(), c0) << "mutations must defer";

  sim.flush();
  EXPECT_EQ(m->recompute_count(), c0 + 1)
      << "the whole burst must coalesce into one recompute";

  // A flush with no pending dirt must not recompute again.
  sim.flush();
  EXPECT_EQ(m->recompute_count(), c0 + 1);
}

// Reads of allocation-dependent state self-clean: no caller can observe
// the pre-mutation shares, flushed or not.
TEST_F(ReallocTest, ReadsAreNeverStale) {
  Machine* m = cluster.add_machine();
  const double cores = m->capacity().cpu;

  auto w = make_cpu_work(cores, Workload::kService);
  m->add(w);
  // No flush: utilization() / allocated() drain on demand.
  EXPECT_NEAR(m->utilization(ResourceKind::kCpu), 1.0, 1e-9);
  EXPECT_NEAR(w->allocated().cpu, cores, 1e-9);

  m->remove(w.get());
  EXPECT_NEAR(m->utilization(ResourceKind::kCpu), 0.0, 1e-9);
}

// Eager mode restores recompute-on-every-mutation.
TEST_F(ReallocTest, EagerModeRecomputesPerMutation) {
  cluster.set_eager_reallocation(true);
  Machine* m = cluster.add_machine();
  const std::uint64_t c0 = m->recompute_count();

  for (int i = 0; i < 4; ++i) m->add(make_cpu_work(0.25, Workload::kService));
  EXPECT_GE(m->recompute_count(), c0 + 4);
}

// A reallocation that leaves a workload's finish time unchanged must not
// cancel + re-push its completion event.
TEST_F(ReallocTest, RescheduleSkipsUnchangedFinishTime) {
  Machine* m = cluster.add_machine();

  // w1 finishes in 10s; the machine has capacity to spare.
  auto w1 = make_cpu_work(1.0, sim::Duration{10.0}, "w1");
  m->add(w1);
  sim.flush();  // schedules w1's completion
  const std::uint64_t skips0 = m->reschedule_skips();

  // Adding w2 recomputes the machine, but w1's share (and finish time) is
  // unchanged — the completion event must be left in place.
  auto w2 = make_cpu_work(1.0, sim::Duration{20.0}, "w2");
  m->add(w2);
  sim.flush();
  EXPECT_GT(m->reschedule_skips(), skips0);

  sim.run();
  EXPECT_NEAR(sim.now(), 20.0, 1e-6);
}

// --- determinism equivalence: deferred vs eager, same seed ---

struct ReportArtifacts {
  std::string json;
  std::string csv;
  std::string trace;
};

ReportArtifacts run_scenario(bool eager) {
  harness::TestBed::Options options;
  options.seed = 1234;
  options.eager_reallocation = eager;
  harness::TestBed bed(options);
  bed.add_native_nodes(2);
  bed.add_virtual_nodes(2, 2);

  bed.run_jobs({workload::sort_job().with_input_gb(0.25),
                workload::wcount().with_input_gb(0.25)});

  ReportArtifacts out;
  const telemetry::RunReport report = bed.report();
  std::ostringstream json, csv, trace;
  report.to_json(json);
  report.to_csv(csv);
  if (bed.telemetry() != nullptr) bed.telemetry()->trace.to_jsonl(trace);
  out.json = json.str();
  out.csv = csv.str();
  out.trace = trace.str();
  return out;
}

// The report's event-queue mechanics counters (events scheduled/cancelled,
// fan-out, flush-scheduled) differ between the two modes BY DESIGN — fewer
// reschedules is the whole point of deferred coalescing — so they are
// stripped before the byte-for-byte comparison of the simulated outcome.
std::string strip_queue_mechanics(const std::string& json) {
  static const char* kModeDependent[] = {
      "\"events_scheduled\"", "\"events_cancelled\"", "\"events_deferred\"",
      "\"max_queue_depth\"",  "\"max_event_fanout\"",
      "\"flush_scheduled_events\""};
  std::istringstream in(json);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    bool drop = false;
    for (const char* key : kModeDependent) {
      if (line.find(key) != std::string::npos) drop = true;
    }
    if (!drop) out << line << '\n';
  }
  return out.str();
}

TEST(ReallocDeterminism, DeferredMatchesEagerByteForByte) {
  const ReportArtifacts deferred = run_scenario(/*eager=*/false);
  const ReportArtifacts eager = run_scenario(/*eager=*/true);
  EXPECT_EQ(strip_queue_mechanics(deferred.json),
            strip_queue_mechanics(eager.json));
  EXPECT_EQ(deferred.csv, eager.csv);
  EXPECT_EQ(deferred.trace, eager.trace);
}

// --- span-based waterfill ---

TEST(WaterfillSpan, MatchesAllocatingVersion) {
  const std::vector<std::vector<double>> demand_sets = {
      {}, {1, 2, 3}, {1, 10, 10}, {5, 3, 8, 0.5}, {0, 0, 4}, {2.5}};
  WaterfillScratch scratch;
  for (const auto& demands : demand_sets) {
    for (double capacity : {0.0, 1.0, 7.0, 100.0}) {
      const std::vector<double> expect = waterfill(capacity, demands);
      std::vector<double> got(demands.size(), -1);
      waterfill_into(capacity, demands, got, scratch);
      ASSERT_EQ(got.size(), expect.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_DOUBLE_EQ(got[i], expect[i])
            << "capacity " << capacity << " index " << i;
      }
    }
  }
}

// --- bounded time series ---

TEST(TimeSeriesBound, CompactionBoundsMemoryAndPreservesIntegral) {
  stats::TimeSeries full;
  stats::TimeSeries bounded;
  bounded.set_max_samples(32);

  for (int i = 0; i < 4096; ++i) {
    const double t = i;
    const double v = (i % 7) * 1.5;
    full.add(t, v);
    bounded.add(t, v);
  }
  EXPECT_LE(bounded.size(), 32u);
  // The step-function integral is preserved exactly by pairwise
  // time-weighted merging.
  EXPECT_NEAR(bounded.integrate(0, 4095), full.integrate(0, 4095), 1e-6);
  // The most recent sample is never merged: current readings stay exact.
  EXPECT_DOUBLE_EQ(bounded.back().time, full.back().time);
  EXPECT_DOUBLE_EQ(bounded.back().value, full.back().value);
  EXPECT_DOUBLE_EQ(bounded.value_at(4095), full.value_at(4095));
}

TEST(TimeSeriesBound, AddCoalescedOverwritesSameInstant) {
  stats::TimeSeries s;
  s.add(1.0, 5.0);
  s.add_coalesced(1.0, 7.0);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.back().value, 7.0);

  s.add_coalesced(2.0, 3.0);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.back().value, 3.0);
}

TEST(TimeSeriesBound, EnergyMeterHistoryIsBounded) {
  EnergyMeter meter;
  meter.set_max_samples(16);
  for (int i = 0; i < 1000; ++i) {
    meter.record(static_cast<double>(i), sim::Watts{180.0 + (i % 3)});
  }
  EXPECT_LE(meter.series().size(), 16u);
  // Energy accounting stays consistent despite compaction: mean power of
  // a ~181 W trace must still be ~181 W.
  EXPECT_NEAR(meter.mean_watts(0, 999).value(), 181.0, 1.0);
}

}  // namespace
}  // namespace hybridmr::cluster
