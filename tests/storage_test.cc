// Tests for the HDFS model: placement, locality, flows, TestDFSIO.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "sim/simulation.h"
#include "storage/dfsio.h"
#include "storage/hdfs.h"

namespace hybridmr::storage {
namespace {

using cluster::Calibration;
using cluster::HybridCluster;
using cluster::Machine;

class HdfsTest : public ::testing::Test {
 protected:
  HdfsTest() : cluster(sim), hdfs(sim, Calibration::standard()) {}

  sim::Simulation sim{7};
  HybridCluster cluster;
  Hdfs hdfs;
};

TEST_F(HdfsTest, StageFileSplitsIntoBlocks) {
  Machine* m = cluster.add_machine();
  hdfs.add_datanode(*m);
  const auto f = hdfs.stage_file("in", sim::MegaBytes{300});
  EXPECT_EQ(hdfs.num_blocks(f), 3);  // 128 + 128 + 44
  EXPECT_DOUBLE_EQ(hdfs.block_size_mb(f, 0).value(), 128);
  EXPECT_DOUBLE_EQ(hdfs.block_size_mb(f, 1).value(), 128);
  EXPECT_NEAR(hdfs.block_size_mb(f, 2).value(), 44, 1e-9);
}

TEST_F(HdfsTest, TinyFileIsOneBlock) {
  Machine* m = cluster.add_machine();
  hdfs.add_datanode(*m);
  const auto f = hdfs.stage_file("tiny", sim::MegaBytes{5});
  EXPECT_EQ(hdfs.num_blocks(f), 1);
  EXPECT_DOUBLE_EQ(hdfs.block_size_mb(f, 0).value(), 5);
}

TEST_F(HdfsTest, ReplicationUsesDistinctNodes) {
  auto machines = cluster.add_machines(4);
  for (auto* m : machines) hdfs.add_datanode(*m);
  const auto f = hdfs.stage_file("in", sim::MegaBytes{1024});
  for (int b = 0; b < hdfs.num_blocks(f); ++b) {
    const auto& reps = hdfs.replicas(f, b);
    ASSERT_EQ(reps.size(), 2u);  // calibrated replica count
    EXPECT_NE(reps[0], reps[1]);
  }
}

TEST_F(HdfsTest, PlacementSpreadsAcrossDatanodes) {
  auto machines = cluster.add_machines(4);
  for (auto* m : machines) hdfs.add_datanode(*m);
  const auto f = hdfs.stage_file("in", sim::MegaBytes{128 * 16});
  EXPECT_EQ(hdfs.num_blocks(f), 16);
  // Randomized placement: no datanode hoards the file, total is 2 replicas.
  double total = 0;
  double max_mb = 0;
  for (const auto& dn : hdfs.datanodes()) {
    total += dn->stored_mb().value();
    max_mb = std::max(max_mb, dn->stored_mb().value());
  }
  EXPECT_NEAR(total, 2 * 128 * 16, 1e-6);
  EXPECT_LE(max_mb, 0.6 * total);
}

TEST_F(HdfsTest, LocalReadUsesDiskOnly) {
  Machine* m = cluster.add_machine();
  hdfs.add_datanode(*m);
  const auto f = hdfs.stage_file("in", sim::MegaBytes{60});
  bool done = false;
  hdfs.read_block(f, 0, *m, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  // 60 MB at the 60 MB/s stream rate.
  EXPECT_NEAR(sim.now(), 1.0, 1e-9);
  EXPECT_NEAR(hdfs.bytes_read_local_mb().value(), 60, 1e-9);
  EXPECT_NEAR(hdfs.bytes_read_remote_mb().value(), 0, 1e-9);
}

TEST_F(HdfsTest, RemoteReadSlowerThanLocal) {
  Machine* a = cluster.add_machine("a");
  Machine* b = cluster.add_machine("b");
  Machine* c = cluster.add_machine("c");
  hdfs.add_datanode(*a);
  hdfs.add_datanode(*b);
  const auto f = hdfs.stage_file("in", sim::MegaBytes{50});
  bool done = false;
  hdfs.read_block(f, 0, *c, [&] { done = true; });  // c has no replica
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(sim.now(), 1.0, 1e-9);  // 50 MB at the 50 MB/s net stream
  EXPECT_NEAR(hdfs.bytes_read_remote_mb().value(), 50, 1e-9);
}

TEST_F(HdfsTest, LocalityDetection) {
  Machine* host = cluster.add_machine();
  auto* vm1 = cluster.add_vm(*host);
  auto* vm2 = cluster.add_vm(*host);
  Machine* other = cluster.add_machine();
  hdfs.add_datanode(*vm1);
  const auto f = hdfs.stage_file("in", sim::MegaBytes{10});
  EXPECT_EQ(hdfs.locality_of(f, 0, vm1), Locality::kNodeLocal);
  EXPECT_EQ(hdfs.locality_of(f, 0, vm2), Locality::kHostLocal);
  EXPECT_EQ(hdfs.locality_of(f, 0, other), Locality::kRemote);
}

TEST_F(HdfsTest, WriteReplicatesToStoredState) {
  auto machines = cluster.add_machines(3);
  for (auto* m : machines) hdfs.add_datanode(*m);
  bool done = false;
  hdfs.write(*machines[0], sim::MegaBytes{120}, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(hdfs.bytes_written_mb().value(), 120, 1e-9);
  double total_stored = 0;
  for (const auto& dn : hdfs.datanodes()) total_stored += dn->stored_mb().value();
  EXPECT_NEAR(total_stored, 240, 1e-9);  // 2 replicas
  // Remote pipeline hop paces at min(disk, net) = 50 MB/s.
  EXPECT_NEAR(sim.now(), 120.0 / 50.0, 1e-9);
}

TEST_F(HdfsTest, TransferLoopbackAvoidsNetwork) {
  Machine* host = cluster.add_machine();
  auto* vm1 = cluster.add_vm(*host);
  auto* vm2 = cluster.add_vm(*host);
  Machine* remote_host = cluster.add_machine();
  auto* vm3 = cluster.add_vm(*remote_host);

  bool loop_done = false;
  hdfs.transfer(*vm1, *vm2, sim::MegaBytes{60}, [&] { loop_done = true; });
  sim.run();
  const double loop_time = sim.now();
  EXPECT_TRUE(loop_done);

  bool remote_done = false;
  hdfs.transfer(*vm1, *vm3, sim::MegaBytes{60}, [&] { remote_done = true; });
  sim.run();
  const double remote_time = sim.now() - loop_time;
  EXPECT_TRUE(remote_done);
  EXPECT_LT(loop_time, remote_time);
}

TEST_F(HdfsTest, FlowCancelStopsWork) {
  Machine* m = cluster.add_machine();
  hdfs.add_datanode(*m);
  const auto f = hdfs.stage_file("in", sim::MegaBytes{600});
  bool done = false;
  auto flow = hdfs.read_block(f, 0, *m, [&] { done = true; });
  EXPECT_TRUE(flow.active());
  sim.at(0.5, [&] { flow.cancel(); });
  sim.run();
  EXPECT_FALSE(done);
  EXPECT_FALSE(flow.active());
  EXPECT_TRUE(m->workloads().empty());
}

TEST_F(HdfsTest, FlowProgressAdvances) {
  Machine* m = cluster.add_machine();
  hdfs.add_datanode(*m);
  const auto f = hdfs.stage_file("in", sim::MegaBytes{120});  // one block: 2s at 60 MB/s
  auto flow = hdfs.read_block(f, 0, *m, [] {});
  sim.at(1.0, [&] {
    // Progress is settled lazily; nudge the machine to settle.
    m->settle_now();
    EXPECT_NEAR(flow.progress(), 0.5, 0.05);
  });
  sim.run();
  EXPECT_DOUBLE_EQ(flow.progress(), 1.0);
}

TEST_F(HdfsTest, DfsIoWriteAndReadProduceRates) {
  auto machines = cluster.add_machines(4);
  std::vector<cluster::ExecutionSite*> sites;
  for (auto* m : machines) {
    hdfs.add_datanode(*m);
    sites.push_back(m);
  }
  DfsIoBenchmark bench(sim, hdfs);
  const auto w = bench.run_write(sites, sim::MegaBytes{256});
  EXPECT_GT(w.avg_io_rate_mbps.value(), 0);
  EXPECT_GT(w.throughput_mbps.value(), 0);
  const auto r = bench.run_read(sites, sim::MegaBytes{256});
  EXPECT_GT(r.avg_io_rate_mbps.value(), 0);
  // Reads are mostly local; writes pay the replication pipeline.
  EXPECT_GT(r.avg_io_rate_mbps, w.avg_io_rate_mbps * 0.8);
}

TEST_F(HdfsTest, VirtualDfsIoSlowerThanNative) {
  // 4 native nodes vs 4 VMs on 2 hosts, same aggregate hardware per node
  // count; virtualization taxes should show up in the rates.
  auto native = cluster.add_machines(4, "n");
  std::vector<cluster::ExecutionSite*> native_sites(native.begin(),
                                                    native.end());
  sim::Simulation vsim{7};
  HybridCluster vcluster(vsim);
  Hdfs vhdfs(vsim, Calibration::standard());
  std::vector<cluster::ExecutionSite*> vm_sites;
  for (auto* host : vcluster.add_machines(2, "h")) {
    for (auto* vm : vcluster.virtualize(*host, 2)) {
      vm_sites.push_back(vm);
    }
  }
  for (auto* site : native_sites) hdfs.add_datanode(*site);
  for (auto* site : vm_sites) vhdfs.add_datanode(*site);

  DfsIoBenchmark nat(sim, hdfs);
  DfsIoBenchmark virt(vsim, vhdfs);
  const auto nw = nat.run_write(native_sites, sim::MegaBytes{512});
  const auto vw = virt.run_write(vm_sites, sim::MegaBytes{512});
  EXPECT_LT(vw.throughput_mbps, nw.throughput_mbps);
}

}  // namespace
}  // namespace hybridmr::storage
