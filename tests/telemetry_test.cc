#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/hybridmr.h"
#include "harness/testbed.h"
#include "interactive/presets.h"
#include "sim/log.h"
#include "sim/simulation.h"
#include "telemetry/telemetry.h"
#include "workload/benchmarks.h"

namespace hybridmr {
namespace {

// --- metrics primitives ---

TEST(Counter, AccumulatesValueAndEvents) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  telemetry::Counter c;
  c.add();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  EXPECT_EQ(c.events(), 2u);
}

TEST(Gauge, LastWriteWins) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  telemetry::Gauge g;
  g.set(7);
  g.add(-2);
  EXPECT_DOUBLE_EQ(g.value(), 5);
}

TEST(Histogram, PercentilesOfUniformDistribution) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  telemetry::Histogram h(0, 100);
  // 0.5, 1.5, ..., 99.5: a uniform fill, one value per unit.
  for (int i = 0; i < 100; ++i) h.record(i + 0.5);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 99.5);
  EXPECT_NEAR(h.mean(), 50.0, 1e-9);
  // Bucket width is 100/64 ~ 1.56, so percentiles are accurate to about
  // one bucket.
  EXPECT_NEAR(h.percentile(50), 50.0, 2.0);
  EXPECT_NEAR(h.percentile(95), 95.0, 2.0);
  EXPECT_NEAR(h.percentile(99), 99.0, 2.0);
  EXPECT_LE(h.percentile(0), h.percentile(100));
}

TEST(Histogram, OutOfRangeValuesClampToEdgeBuckets) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  telemetry::Histogram h(0, 10);
  h.record(-5);
  h.record(25);
  EXPECT_EQ(h.count(), 2u);
  // True extremes survive even though the samples land in edge buckets.
  EXPECT_DOUBLE_EQ(h.min(), -5);
  EXPECT_DOUBLE_EQ(h.max(), 25);
  EXPECT_EQ(h.buckets().front(), 1u);
  EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(TimeSeriesMetric, WindowBoundariesAreAligned) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  telemetry::TimeSeriesMetric ts(5.0);
  ts.sample(0.0, 1);
  ts.sample(4.999, 3);  // still the [0, 5) window
  ts.sample(5.0, 10);   // exactly on the edge -> opens [5, 10)
  ts.sample(12.0, 20);  // skips a window entirely
  const auto windows = ts.windows();
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_DOUBLE_EQ(windows[0].start, 0.0);
  EXPECT_EQ(windows[0].count, 2u);
  EXPECT_DOUBLE_EQ(windows[0].mean(), 2.0);
  EXPECT_DOUBLE_EQ(windows[0].min, 1.0);
  EXPECT_DOUBLE_EQ(windows[0].max, 3.0);
  EXPECT_DOUBLE_EQ(windows[1].start, 5.0);
  EXPECT_EQ(windows[1].count, 1u);
  EXPECT_DOUBLE_EQ(windows[2].start, 10.0);
  EXPECT_DOUBLE_EQ(windows[2].mean(), 20.0);
  EXPECT_EQ(ts.count(), 4u);
  EXPECT_DOUBLE_EQ(ts.last(), 20.0);
}

TEST(Registry, FetchOrCreateReturnsSameMetric) {
  telemetry::Registry reg;
  telemetry::Counter& a = reg.counter("x.events", "ops");
  telemetry::Counter& b = reg.counter("x.events");
  EXPECT_EQ(&a, &b);
  reg.gauge("x.level");
  reg.histogram("x.latency", 0, 10, "s");
  ASSERT_EQ(reg.entries().size(), 3u);
  // Insertion order is preserved, so exports are deterministic.
  EXPECT_EQ(reg.entries()[0]->name, "x.events");
  EXPECT_EQ(reg.entries()[1]->name, "x.level");
  EXPECT_EQ(reg.entries()[2]->name, "x.latency");
  const telemetry::Registry::Entry* found = reg.find("x.level");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->type, telemetry::Registry::Type::kGauge);
  EXPECT_EQ(reg.find("missing"), nullptr);
}

TEST(Registry, JsonExportIsWellFormed) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  telemetry::Registry reg;
  reg.counter("jobs", "").add(4);
  std::ostringstream os;
  reg.to_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"name\":\"jobs\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":4"), std::string::npos);
}

// --- trace recorder ---

TEST(TraceRecorder, ExportsJsonlAndChrome) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  telemetry::TraceRecorder trace;
  trace.instant(1.5, telemetry::EventKind::kJobSubmit, "sort-j0", "jobs",
                {{"maps", "8"}});
  trace.complete(1.5, 2.0, telemetry::EventKind::kTaskFinish, "sort-j0-m0",
                 "native-0");
  ASSERT_EQ(trace.size(), 2u);

  std::ostringstream jsonl;
  trace.to_jsonl(jsonl);
  EXPECT_NE(jsonl.str().find("job_submit"), std::string::npos);
  EXPECT_NE(jsonl.str().find("sort-j0-m0"), std::string::npos);

  std::ostringstream chrome;
  trace.to_chrome(chrome);
  const std::string json = chrome.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

// --- sim plumbing the telemetry rides on ---

// Under HYBRIDMR_AUDIT a past-time at() is a hard violation instead of a
// clamp; the abort path is covered by audit_test.cc.
#if !defined(HYBRIDMR_AUDIT_ENABLED)
TEST(SimulationClamp, PastEventIsCountedAndStillFires) {
  sim::Simulation sim;
  sim.after(10, [] {});
  sim.run();
  EXPECT_EQ(sim.clamped_past_events(), 0u);
  bool fired = false;
  sim.at(5.0, [&] { fired = true; });  // now() is 10: in the past
  EXPECT_EQ(sim.clamped_past_events(), 1u);
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(LogSink, CapturesClampWarning) {
  std::vector<std::string> lines;
  sim::Log::set_sink([&](sim::LogLevel, sim::SimTime now,
                         const std::string& tag, const std::string& msg) {
    lines.push_back(sim::Log::format(sim::LogLevel::kWarn, now, tag, msg));
  });
  const sim::LogLevel saved = sim::Log::threshold();
  sim::Log::threshold() = sim::LogLevel::kWarn;

  sim::Simulation sim;
  sim.after(3, [] {});
  sim.run();
  sim.at(1.0, [] {});

  sim::Log::threshold() = saved;
  sim::Log::set_sink({});

  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("clamped"), std::string::npos);
  EXPECT_NE(lines[0].find("sim"), std::string::npos);
}
#endif  // !HYBRIDMR_AUDIT_ENABLED

// --- end-to-end: TestBed wiring, run reports, determinism ---

struct RunArtifacts {
  std::string trace_jsonl;
  std::string report_json;
  std::string report_csv;
  int jobs_submitted = 0;
};

RunArtifacts run_scenario(std::uint64_t seed) {
  harness::TestBed::Options options;
  options.seed = seed;
  harness::TestBed bed(options);
  bed.add_native_nodes(2);
  bed.add_virtual_nodes(2, 2);

  core::HybridMROptions hopts;
  hopts.phase1.training_cluster_sizes = {2};
  core::HybridMRScheduler hybrid(bed.sim(), bed.cluster(), bed.hdfs(),
                                 bed.mr(), hopts);
  hybrid.set_telemetry(bed.telemetry());
  hybrid.start();
  hybrid.deploy_interactive(interactive::rubis_params(), 200);

  std::vector<mapred::Job*> jobs;
  jobs.push_back(hybrid.submit(workload::sort_job().with_input_gb(0.5)));
  jobs.push_back(hybrid.submit(workload::wcount().with_input_gb(0.5)));
  while (true) {
    bool done = true;
    for (auto* j : jobs) done = done && j->finished();
    if (done) break;
    bed.sim().run_until(bed.sim().now() + 60);
  }
  hybrid.stop();

  RunArtifacts out;
  out.jobs_submitted = static_cast<int>(jobs.size());
  if (bed.telemetry() != nullptr) {
    std::vector<const interactive::InteractiveApp*> apps;
    for (const auto& app : hybrid.apps()) apps.push_back(app.get());
    const telemetry::RunReport report = bed.report(apps);
    std::ostringstream trace, json, csv;
    bed.telemetry()->trace.to_jsonl(trace);
    report.to_json(json);
    report.to_csv(csv);
    out.trace_jsonl = trace.str();
    out.report_json = json.str();
    out.report_csv = csv.str();
  }
  return out;
}

TEST(TestBedTelemetry, ReportContainsEverySubmittedJob) {
  harness::TestBed bed;
  bed.add_native_nodes(3);
  const std::vector<mapred::JobSpec> specs = {
      workload::sort_job().with_input_gb(0.5),
      workload::wcount().with_input_gb(0.5),
      workload::pi_est().with_input_gb(0.1)};
  bed.run_jobs(specs);

  const telemetry::RunReport report = bed.report();
  ASSERT_EQ(report.jobs.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(report.jobs[i].name, specs[i].name);
    EXPECT_EQ(report.jobs[i].state, "done");
    EXPECT_GT(report.jobs[i].jct_s, 0);
  }
  EXPECT_EQ(report.machines.size(), 3u);
  EXPECT_GT(report.sim_end_s, 0);
  EXPECT_EQ(report.clamped_past_events, 0u);

  std::ostringstream json;
  report.to_json(json);
  for (const auto& spec : specs) {
    EXPECT_NE(json.str().find("\"" + spec.name + "\""), std::string::npos);
  }
}

TEST(TestBedTelemetry, HubRecordsEngineAndMachineMetrics) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  harness::TestBed bed;
  bed.add_native_nodes(2);
  bed.run_job(workload::wcount().with_input_gb(0.5));

  ASSERT_NE(bed.telemetry(), nullptr);
  const telemetry::Registry& reg = bed.telemetry()->registry;
  const auto* submitted = reg.find("mapred.jobs_submitted");
  ASSERT_NE(submitted, nullptr);
  EXPECT_DOUBLE_EQ(submitted->counter->value(), 1);
  const auto* finished = reg.find("mapred.tasks_finished");
  ASSERT_NE(finished, nullptr);
  EXPECT_GT(finished->counter->value(), 0);
  const auto* cpu = reg.find("machine.native0.cpu_util");
  ASSERT_NE(cpu, nullptr);
  EXPECT_GT(cpu->series->count(), 0u);
  EXPECT_GT(bed.telemetry()->trace.size(), 0u);
}

TEST(TestBedTelemetry, OptOutLeavesHubNull) {
  harness::TestBed::Options options;
  options.telemetry = false;
  harness::TestBed bed(options);
  bed.add_native_nodes(1);
  EXPECT_EQ(bed.telemetry(), nullptr);
  bed.run_job(workload::pi_est().with_input_gb(0.1));
  // report() still works without a hub; it just has no metrics block.
  const telemetry::RunReport report = bed.report();
  EXPECT_EQ(report.registry, nullptr);
  EXPECT_EQ(report.jobs.size(), 1u);
}

TEST(TestBedTelemetry, SameSeedRunsProduceIdenticalArtifacts) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  const RunArtifacts first = run_scenario(7);
  const RunArtifacts second = run_scenario(7);
  EXPECT_FALSE(first.trace_jsonl.empty());
  EXPECT_EQ(first.trace_jsonl, second.trace_jsonl);
  EXPECT_EQ(first.report_json, second.report_json);
  EXPECT_EQ(first.report_csv, second.report_csv);
}

}  // namespace
}  // namespace hybridmr
