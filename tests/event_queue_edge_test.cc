// EventQueue cancellation edge cases: lifetimes and cancellation races that
// the happy-path tests in sim_test.cc do not reach. These pin down the
// lazy-cancellation contract (cancel never restructures the heap, handlers
// die exactly once) that the leak-clean teardown work relies on.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/simulation.h"

namespace hybridmr::sim {
namespace {

TEST(EventQueueEdge, CancelAfterFireReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  auto e = q.pop();
  ASSERT_TRUE(e.has_value());
  e->fn();
  EXPECT_FALSE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueEdge, DoubleCancelSecondIsNoOp) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.push(2.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  // The cancelled heap entry must not resurface as a fireable event.
  auto e = q.pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e->time, 2.0);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(EventQueueEdge, CancelOtherEventFromPoppedCallback) {
  EventQueue q;
  bool second_fired = false;
  EventId second;
  q.push(1.0, [&] { EXPECT_TRUE(q.cancel(second)); });
  second = q.push(2.0, [&] { second_fired = true; });
  while (auto e = q.pop()) e->fn();
  EXPECT_FALSE(second_fired);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueEdge, CancelOwnIdDuringCallbackReturnsFalse) {
  // Once popped, an event has fired from the queue's perspective; its own
  // callback cancelling itself must be a harmless no-op.
  EventQueue q;
  EventId self;
  bool saw_false = false;
  self = q.push(1.0, [&] { saw_false = !q.cancel(self); });
  while (auto e = q.pop()) e->fn();
  EXPECT_TRUE(saw_false);
}

TEST(EventQueueEdge, HandlerDestroyedOnCancel) {
  EventQueue q;
  auto sentinel = std::make_shared<int>(42);
  std::weak_ptr<int> watch = sentinel;
  const EventId id = q.push(1.0, [sentinel] {});
  sentinel.reset();
  EXPECT_FALSE(watch.expired());
  EXPECT_TRUE(q.cancel(id));
  // Lazy cancellation may keep the heap entry, but the handler (and the
  // captures it owns) must die immediately.
  EXPECT_TRUE(watch.expired());
}

TEST(EventQueueEdge, HandlersDestroyedOnQueueDestruction) {
  auto sentinel = std::make_shared<int>(42);
  std::weak_ptr<int> watch = sentinel;
  {
    EventQueue q;
    q.push(1.0, [sentinel] {});
    q.push(2.0, [sentinel] {});
    sentinel.reset();
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(EventQueueEdge, ClearDropsEverythingWithoutFiring) {
  EventQueue q;
  int fired = 0;
  auto sentinel = std::make_shared<int>(0);
  std::weak_ptr<int> watch = sentinel;
  q.push(1.0, [&fired, sentinel] { ++fired; });
  q.push(2.0, [&fired, sentinel] { ++fired; });
  const EventId cancelled = q.push(3.0, [&fired] { ++fired; });
  q.cancel(cancelled);
  sentinel.reset();
  EXPECT_EQ(q.clear(), 2u);  // live events only, cancelled one not counted
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(watch.expired());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
  // The queue stays usable after clear().
  q.push(4.0, [&fired] { ++fired; });
  while (auto e = q.pop()) e->fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueEdge, NextTimeAllCancelledIsEmpty) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  const EventId b = q.push(2.0, [] {});
  q.cancel(a);
  q.cancel(b);
  EXPECT_FALSE(q.next_time().has_value());
  EXPECT_TRUE(q.empty());
}

// Simulation-level: cancelling a later event from inside a dispatched
// callback (the common "completion cancels the timeout" pattern).
TEST(SimulationEdge, CancelFromRunningCallback) {
  Simulation sim;
  std::vector<int> order;
  EventId doomed;
  sim.at(1.0, [&] {
    order.push_back(1);
    EXPECT_TRUE(sim.cancel(doomed));
  });
  doomed = sim.at(2.0, [&] { order.push_back(2); });
  sim.at(3.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

}  // namespace
}  // namespace hybridmr::sim
