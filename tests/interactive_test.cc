// Tests for the interactive application model and SLA monitoring.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "interactive/app.h"
#include "interactive/presets.h"
#include "interactive/sla.h"
#include "sim/simulation.h"

namespace hybridmr::interactive {
namespace {

using cluster::HybridCluster;
using cluster::Machine;
using cluster::Resources;
using cluster::VirtualMachine;

class InteractiveTest : public ::testing::Test {
 protected:
  sim::Simulation sim{11};
  HybridCluster cluster{sim};
};

TEST_F(InteractiveTest, LightLoadMeetsSla) {
  Machine* host = cluster.add_machine();
  VirtualMachine* vm = cluster.add_vm(*host);
  auto app = make_rubis(sim, *vm, 300);
  app->start();
  sim.run_until(60);
  EXPECT_LT(app->response_time_s(), app->params().sla_s.value());
  EXPECT_GT(app->throughput_rps(), 0);
  app->stop();
}

TEST_F(InteractiveTest, LatencyRisesWithClients) {
  Machine* host = cluster.add_machine();
  VirtualMachine* vm = cluster.add_vm(*host);
  auto app = make_rubis(sim, *vm, 200);
  app->start();
  sim.run_until(30);
  const double light = app->response_time_s();
  app->set_clients(4000);
  sim.run_until(60);
  const double heavy = app->response_time_s();
  EXPECT_GT(heavy, light * 3);
  app->stop();
}

TEST_F(InteractiveTest, HockeyStickAroundSaturation) {
  // Sweep clients; latency should be flat-ish then blow up.
  std::vector<double> latencies;
  for (int clients : {200, 800, 1600, 3200, 6400}) {
    sim::Simulation s{5};
    HybridCluster c{s};
    Machine* host = c.add_machine();
    VirtualMachine* vm = c.add_vm(*host);
    auto app = make_rubis(s, *vm, clients);
    app->start();
    s.run_until(30);
    latencies.push_back(app->response_time_s());
    app->stop();
  }
  EXPECT_LT(latencies[0], 0.2);
  EXPECT_GT(latencies.back(), 1.0);
  for (std::size_t i = 1; i < latencies.size(); ++i) {
    EXPECT_GE(latencies[i], latencies[i - 1] * 0.8);  // roughly monotone
  }
}

TEST_F(InteractiveTest, BatchInterferenceRaisesLatency) {
  Machine* host = cluster.add_machine();
  VirtualMachine* app_vm = cluster.add_vm(*host);
  VirtualMachine* batch_vm = cluster.add_vm(*host);
  auto app = make_olio(sim, *app_vm, 900);  // Olio is I/O heavy
  app->start();
  sim.run_until(30);
  const double alone = app->response_time_s();

  // An I/O-hungry batch workload lands on the sibling VM.
  Resources d;
  d.disk = 80;
  d.cpu = 1.0;
  batch_vm->add(std::make_shared<cluster::Workload>(
      "batch", d, cluster::Workload::kService));
  sim.run_until(90);
  const double contended = app->response_time_s();
  EXPECT_GT(contended, alone * 1.2);
  app->stop();
}

TEST_F(InteractiveTest, SlaMonitorFlagsViolators) {
  Machine* host = cluster.add_machine();
  VirtualMachine* vm = cluster.add_vm(*host);
  auto ok_app = make_rubis(sim, *vm, 100);
  ok_app->start();

  Machine* host2 = cluster.add_machine();
  VirtualMachine* vm2 = cluster.add_vm(*host2);
  auto hot_app = make_rubis(sim, *vm2, 8000);  // far past saturation
  hot_app->start();

  SlaMonitor monitor;
  monitor.track(*ok_app);
  monitor.track(*hot_app);
  sim.run_until(60);
  const auto violators = monitor.violators();
  ASSERT_EQ(violators.size(), 1u);
  EXPECT_EQ(violators[0], hot_app.get());
  EXPECT_TRUE(monitor.any_violation());
  ok_app->stop();
  hot_app->stop();
}

TEST_F(InteractiveTest, ViolationFractionComputed) {
  Machine* host = cluster.add_machine();
  VirtualMachine* vm = cluster.add_vm(*host);
  auto app = make_rubis(sim, *vm, 8000);
  app->start();
  sim.run_until(60);
  EXPECT_GT(SlaMonitor::violation_fraction(*app, 0, 60), 0.9);
  app->stop();
}

TEST_F(InteractiveTest, StopRemovesServiceWorkload) {
  Machine* host = cluster.add_machine();
  VirtualMachine* vm = cluster.add_vm(*host);
  auto app = make_tpcw(sim, *vm, 500);
  app->start();
  EXPECT_EQ(vm->workloads().size(), 1u);
  app->stop();
  EXPECT_TRUE(vm->workloads().empty());
  EXPECT_FALSE(app->running());
  sim.run_until(30);  // ticker cancelled; no crash
}

TEST_F(InteractiveTest, PresetsDiffer) {
  EXPECT_LT(rubis_params().io_mb_per_req, tpcw_params().io_mb_per_req);
  EXPECT_LT(tpcw_params().io_mb_per_req, olio_params().io_mb_per_req);
  EXPECT_EQ(rubis_params().sla_s, sim::Duration{2.0});
}

}  // namespace
}  // namespace hybridmr::interactive
