// Tests for dynamic cluster reconfiguration (decommissioning + the
// Reconfigurator) — the paper's "flexibly adjust native and virtual
// cluster configurations" capability.
#include <gtest/gtest.h>

#include "core/reconfigurator.h"
#include "harness/testbed.h"
#include "workload/benchmarks.h"

namespace hybridmr::core {
namespace {

using harness::TestBed;

TEST(Decommission, RemoveTrackerRefusesWhileBusy) {
  TestBed bed;
  auto nodes = bed.add_native_nodes(4);
  bed.mr().submit(workload::sort_job().with_input_gb(1));
  bed.sim().run_until(5);
  // Tasks are running everywhere: decommission must refuse.
  EXPECT_FALSE(bed.mr().remove_tracker(*nodes[0]));
  bed.sim().run();
  // Idle now: decommission succeeds exactly once.
  EXPECT_TRUE(bed.mr().remove_tracker(*nodes[0]));
  EXPECT_FALSE(bed.mr().remove_tracker(*nodes[0]));
  EXPECT_EQ(bed.mr().trackers().size(), 3u);
}

TEST(Decommission, RemoveDatanodeReReplicatesBlocks) {
  TestBed bed;
  auto nodes = bed.add_native_nodes(4);
  const auto file = bed.hdfs().stage_file("data", sim::MegaBytes{1024});  // 8 blocks x 2
  EXPECT_TRUE(bed.hdfs().remove_datanode(*nodes[0]));
  bed.sim().run();  // drain the re-replication transfers
  EXPECT_EQ(bed.hdfs().datanodes().size(), 3u);
  // Every block still has its full replica set, none on the gone node.
  for (int b = 0; b < bed.hdfs().num_blocks(file); ++b) {
    const auto& reps = bed.hdfs().replicas(file, b);
    EXPECT_EQ(reps.size(), 2u);
    for (const auto* dn : reps) {
      EXPECT_NE(dn->site(), nodes[0]);
    }
  }
  // A file of 1 GB x 2 replicas over 4 nodes: the leaving node held about
  // half a GB; that much re-replication traffic was charged.
  EXPECT_GT(bed.hdfs().re_replicated_mb(), sim::MegaBytes{128});
}

TEST(Decommission, LastDatanodeIsProtected) {
  TestBed bed;
  auto nodes = bed.add_native_nodes(1);
  bed.hdfs().stage_file("data", sim::MegaBytes{128});
  EXPECT_FALSE(bed.hdfs().remove_datanode(*nodes[0]));
}

TEST(Decommission, JobsStillRunAfterDatanodeRemoval) {
  TestBed bed;
  auto nodes = bed.add_native_nodes(4);
  // Remove one datanode (but keep its tracker), then run a job: reads of
  // re-homed blocks must still succeed.
  bed.hdfs().stage_file("warmup", sim::MegaBytes{512});
  ASSERT_TRUE(bed.hdfs().remove_datanode(*nodes[3]));
  const double jct = bed.run_job(workload::sort_job().with_input_gb(1));
  EXPECT_GT(jct, 0);
}

TEST(Reconfigurator, VirtualizeIdleNode) {
  TestBed bed;
  auto nodes = bed.add_native_nodes(4);
  bed.hdfs().stage_file("data", sim::MegaBytes{512});
  Reconfigurator reconfig(bed.cluster(), bed.hdfs(), bed.mr());

  auto* machine = static_cast<cluster::Machine*>(nodes[0]);
  ASSERT_TRUE(reconfig.idle(*machine));
  const auto vms = reconfig.virtualize_node(*machine, 2);
  ASSERT_EQ(vms.size(), 2u);
  EXPECT_EQ(machine->vms().size(), 2u);
  // The tracker/datanode roles moved from the PM to the VMs.
  EXPECT_EQ(bed.mr().tracker_on(*machine), nullptr);
  EXPECT_EQ(bed.hdfs().datanode_on(machine), nullptr);
  EXPECT_NE(bed.mr().tracker_on(*vms[0]), nullptr);
  EXPECT_NE(bed.hdfs().datanode_on(vms[0]), nullptr);
  EXPECT_EQ(reconfig.stats().virtualized, 1);
  bed.sim().run();

  // And the hybrid cluster still runs jobs end to end.
  const double jct = bed.run_job(workload::kmeans().with_input_gb(1));
  EXPECT_GT(jct, 0);
}

TEST(Reconfigurator, NativizeVirtualHost) {
  TestBed bed;
  bed.add_native_nodes(2);
  bed.add_virtual_nodes(1, 2);
  bed.hdfs().stage_file("data", sim::MegaBytes{512});
  Reconfigurator reconfig(bed.cluster(), bed.hdfs(), bed.mr());

  cluster::Machine* vhost = bed.cluster().machine("vhost0");
  ASSERT_NE(vhost, nullptr);
  ASSERT_TRUE(reconfig.nativize_host(*vhost));
  EXPECT_TRUE(vhost->vms().empty());
  EXPECT_NE(bed.mr().tracker_on(*vhost), nullptr);
  EXPECT_NE(bed.hdfs().datanode_on(vhost), nullptr);
  EXPECT_EQ(reconfig.stats().nativized, 1);
  bed.sim().run();

  const double jct = bed.run_job(workload::sort_job().with_input_gb(1));
  EXPECT_GT(jct, 0);
}

TEST(Reconfigurator, RefusesBusyMachines) {
  TestBed bed;
  auto nodes = bed.add_native_nodes(2);
  Reconfigurator reconfig(bed.cluster(), bed.hdfs(), bed.mr());
  bed.mr().submit(workload::sort_job().with_input_gb(1));
  bed.sim().run_until(5);
  auto* machine = static_cast<cluster::Machine*>(nodes[0]);
  EXPECT_FALSE(reconfig.idle(*machine));
  EXPECT_TRUE(reconfig.virtualize_node(*machine, 2).empty());
  bed.sim().run();
  EXPECT_TRUE(reconfig.idle(*machine));
}

TEST(Reconfigurator, RoundTripPreservesCapacity) {
  TestBed bed;
  auto nodes = bed.add_native_nodes(3);
  bed.hdfs().stage_file("data", sim::MegaBytes{256});
  Reconfigurator reconfig(bed.cluster(), bed.hdfs(), bed.mr());
  auto* machine = static_cast<cluster::Machine*>(nodes[2]);

  ASSERT_FALSE(reconfig.virtualize_node(*machine, 2).empty());
  bed.sim().run();
  ASSERT_TRUE(reconfig.nativize_host(*machine));
  bed.sim().run();
  EXPECT_EQ(bed.mr().trackers().size(), 3u);
  EXPECT_EQ(bed.hdfs().datanodes().size(), 3u);
  const double jct = bed.run_job(workload::wcount().with_input_gb(1));
  EXPECT_GT(jct, 0);
}

}  // namespace
}  // namespace hybridmr::core
