// Figure 6:
//   (a) Phase I profiling accuracy: actual vs estimated JCT over 24 samples
//   (b) JCT slowdown of PiEst / Sort under collocated CPU load
//   (c) JCT slowdown of PiEst / Sort under collocated I/O load
#include "common.h"

#include "core/profiler.h"
#include "stats/summary.h"

using namespace hybridmr;
using namespace hybridmr::bench;

namespace {

/// Runs one job on a VM collocated with background VMs exerting the given
/// CPU (cores) and disk (MB/s) load on a quad-core host (as in the paper's
/// microbenchmark).
double contended_jct(const mapred::JobSpec& spec, double bg_cpu_cores,
                     double bg_disk_mbps) {
  TestBed::Options o;
  o.calibration.pm_cores = 4;  // the paper used a quad-core server here
  TestBed bed(o);
  auto* host = bed.add_plain_machines(1)[0];
  auto* job_vm = bed.cluster().add_vm(*host, "job-vm", sim::CoreShare{1}, sim::MegaBytes{1024});
  bed.hdfs().add_datanode(*job_vm);
  bed.mr().add_tracker(*job_vm, 1, 1);
  // The paper pins each VM to a core and runs 8 contending threads; the
  // CPU contenders time-share the job's core, so we inject them into the
  // job VM, while the I/O contenders live on sibling VMs (the disk is
  // shared host-wide either way).
  for (int t = 0; t < static_cast<int>(bg_cpu_cores + 0.5); ++t) {
    cluster::Resources d;
    d.cpu = 1.0;  // one contending thread
    job_vm->add(std::make_shared<cluster::Workload>(
        "bg-thread" + std::to_string(t), d, cluster::Workload::kService));
  }
  for (int i = 0; i < 3 && bg_disk_mbps > 0; ++i) {
    auto* vm =
        bed.cluster().add_vm(*host, "bg" + std::to_string(i), sim::CoreShare{4},
                             sim::MegaBytes{512});
    cluster::Resources d;
    d.disk = bg_disk_mbps / 3.0;
    vm->add(std::make_shared<cluster::Workload>(
        "bg-io", d, cluster::Workload::kService));
  }
  return bed.run_job(spec);
}

}  // namespace

int main() {
  harness::banner(
      "Figure 6(a): Phase I profiling accuracy on Sort (train on small "
      "configurations, estimate 24 held-out configurations)");
  core::ProfileDatabase db;
  core::JobProfiler profiler(db, core::make_simulated_runner());
  const auto sort = workload::sort_job();
  const std::vector<int> train_sizes{4, 8};
  const std::vector<double> train_data{1.0, 2.0, 4.0};
  profiler.train(sort, /*virtual_cluster=*/true, train_sizes, train_data);

  Table fig6a({"sample", "cluster", "data (GB)", "actual (s)",
               "estimated (s)", "error"});
  std::vector<double> errors;
  int sample = 0;
  auto runner = core::make_simulated_runner(99);
  for (int vms : {4, 6, 8, 10, 12, 16}) {
    for (double gb : {3.0, 6.0, 8.0, 10.0}) {
      const auto truth = runner(sort, true, vms, gb);
      const auto est = profiler.estimate(sort.with_input_gb(gb), true, vms);
      const double err = std::abs(est.jct_s - truth.jct_s) / truth.jct_s;
      errors.push_back(err);
      fig6a.row({std::to_string(++sample), std::to_string(vms),
                 Table::num(gb, 0), Table::num(truth.jct_s),
                 Table::num(est.jct_s), Table::pct(err)});
    }
  }
  fig6a.print();
  const auto summary = stats::Summary::of(errors);
  std::printf(
      "  mean error %.1f%% (sd %.1f%%) — paper: 10.8%% mean, 9.7%% sd\n",
      summary.mean * 100, summary.stddev * 100);

  harness::banner(
      "Figure 6(b): normalized JCT vs collocated CPU load (quad-core host; "
      "load as % of one core)");
  Table fig6b({"bg CPU (%)", "Sort", "PiEst"});
  const auto pi = workload::pi_est();
  const auto sort_small = workload::sort_job().with_input_gb(1.0);
  const double pi_alone = contended_jct(pi, 0, 0);
  const double sort_alone = contended_jct(sort_small, 0, 0);
  for (double pct : {0.0, 100.0, 200.0, 300.0, 500.0, 700.0, 900.0}) {
    const double cores = pct / 100.0;
    fig6b.row({Table::num(pct, 0),
               Table::num(contended_jct(sort_small, cores, 0) / sort_alone, 2),
               Table::num(contended_jct(pi, cores, 0) / pi_alone, 2)});
  }
  fig6b.print();

  harness::banner(
      "Figure 6(c): normalized JCT vs collocated I/O load (MB/s)");
  Table fig6c({"bg I/O (MB/s)", "Sort", "PiEst"});
  for (double mbps : {0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0}) {
    fig6c.row({Table::num(mbps, 0),
               Table::num(contended_jct(sort_small, 0, mbps) / sort_alone, 2),
               Table::num(contended_jct(pi, 0, mbps) / pi_alone, 2)});
  }
  fig6c.print();
  return 0;
}
