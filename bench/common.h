// Shared builders for the figure-reproduction benches.
//
// Every bench binary regenerates one of the paper's tables/figures: it
// builds the corresponding testbed shape, runs the workload, and prints the
// same series the paper plots. See EXPERIMENTS.md for paper-vs-measured.
#pragma once

#include <string>
#include <vector>

#include "core/hybridmr.h"
#include "harness/table.h"
#include "harness/testbed.h"
#include "interactive/presets.h"
#include "workload/benchmarks.h"
#include "workload/mix.h"

namespace hybridmr::bench {

using harness::Table;
using harness::TestBed;

/// The paper's testbed scale: 24 physical servers, 48 VMs.
inline constexpr int kPaperPms = 24;
inline constexpr int kPaperVms = 48;

/// Runs `spec` once on a fresh native cluster of `nodes` PMs.
inline double native_jct(const mapred::JobSpec& spec, int nodes,
                         std::uint64_t seed = 42) {
  TestBed::Options o;
  o.seed = seed;
  TestBed bed(o);
  bed.add_native_nodes(nodes);
  return bed.run_job(spec);
}

/// Runs `spec` once on a fresh virtual cluster: `hosts` PMs each carrying
/// `vms_per_host` VMs (combined DataNode+TaskTracker per VM).
inline double virtual_jct(const mapred::JobSpec& spec, int hosts,
                          int vms_per_host, std::uint64_t seed = 42) {
  TestBed::Options o;
  o.seed = seed;
  TestBed bed(o);
  bed.add_virtual_nodes(hosts, vms_per_host);
  return bed.run_job(spec);
}

/// Scales a benchmark's input, keeping the paper's name/resource mix.
inline mapred::JobSpec sized(const mapred::JobSpec& spec, double gb) {
  return spec.with_input_gb(gb);
}

/// Pins reducers so native/virtual comparisons hold logical parallelism
/// constant (see DESIGN.md §3).
inline mapred::JobSpec pinned(const mapred::JobSpec& spec, int reducers) {
  return spec.with_reducers(reducers);
}

}  // namespace hybridmr::bench
