// Figure 10(a): cluster resource utilization over time, stock scheduling
// (Base-line) vs HybridMR. HybridMR's consolidation and dynamic allocation
// sustain higher CPU / memory / I/O utilization for the same work.
#include <functional>
#include <memory>

#include "common.h"

using namespace hybridmr;
using namespace hybridmr::bench;

namespace {

struct UtilTimeline {
  std::vector<double> cpu, mem, io;  // sampled per minute
};

UtilTimeline run(bool with_hybridmr) {
  // Base-line: the traditional isolated design — 8 native Hadoop nodes
  // plus 2 dedicated interactive servers. HybridMR: the same workload
  // consolidated onto 4 native nodes + 6 VMs on 3 PMs (7 PMs total).
  TestBed bed;
  std::vector<cluster::ExecutionSite*> app_sites;
  if (with_hybridmr) {
    bed.add_native_nodes(4);
    bed.add_virtual_nodes(3, 2);
  } else {
    bed.add_native_nodes(8);
    for (auto* m : bed.add_plain_machines(2)) app_sites.push_back(m);
  }

  core::HybridMROptions options;
  options.enable_phase1 = with_hybridmr;
  options.enable_drm = with_hybridmr;
  options.enable_ips = with_hybridmr;
  options.phase1.training_cluster_sizes = {2};
  core::HybridMRScheduler hybrid(bed.sim(), bed.cluster(), bed.hdfs(),
                                 bed.mr(), options);
  hybrid.start();
  hybrid.deploy_interactive(interactive::rubis_params(), 300,
                            app_sites.empty() ? nullptr : app_sites[0]);
  hybrid.deploy_interactive(interactive::olio_params(), 250,
                            app_sites.size() > 1 ? app_sites[1] : nullptr);

  // Closed-loop batch streams: each stream resubmits its benchmark as soon
  // as the previous run finishes, sustaining load for the whole window.
  const auto benchmarks = workload::all_benchmarks();
  auto submit_stream = std::make_shared<std::function<void(int)>>();
  *submit_stream = [&, submit_stream](int stream) {
    if (bed.sim().now() > 75 * 60) return;
    auto spec = benchmarks[stream % benchmarks.size()];
    if (spec.input_gb > 2) spec = spec.with_input_gb(spec.input_gb * 0.2);
    mapred::Job* job = with_hybridmr ? hybrid.submit(spec)
                                     : bed.mr().submit(spec);
    job->on_complete = [&, submit_stream, stream](mapred::Job&) {
      bed.sim().after(30, [submit_stream, stream]() {
        (*submit_stream)(stream);
      });
    };
  };
  for (int stream = 0; stream < 3; ++stream) {
    bed.sim().at(10.0 + 40.0 * stream,
                 [submit_stream, stream]() { (*submit_stream)(stream); });
  }

  bed.run_until(80 * 60);
  hybrid.stop();

  // The machines record full utilization histories (the same series the
  // telemetry RunReport exports), so the per-minute timeline is a post-run
  // query — no live sampling callbacks needed.
  UtilTimeline timeline;
  for (double t = 60; t <= bed.sim().now(); t += 60) {
    timeline.cpu.push_back(bed.cluster().mean_utilization(
        cluster::ResourceKind::kCpu, t - 60, t));
    timeline.mem.push_back(bed.cluster().mean_utilization(
        cluster::ResourceKind::kMemory, t - 60, t));
    timeline.io.push_back(bed.cluster().mean_utilization(
        cluster::ResourceKind::kDisk, t - 60, t));
  }
  return timeline;
}

double mean_of(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x;
  return v.empty() ? 0 : s / v.size();
}

}  // namespace

int main() {
  const auto baseline = run(false);
  const auto hybridmr = run(true);

  harness::banner(
      "Figure 10(a): cluster utilization over 80 minutes (5-minute samples); "
      "Base-line = isolated native deployment (10 PMs), HybridMR = "
      "consolidated hybrid deployment (7 PMs), same workload");
  Table table({"minute", "cpu base", "cpu hyb", "mem base", "mem hyb",
               "io base", "io hyb"});
  for (std::size_t i = 4; i < baseline.cpu.size() && i < hybridmr.cpu.size();
       i += 5) {
    table.row({std::to_string(i + 1), Table::pct(baseline.cpu[i], 0),
               Table::pct(hybridmr.cpu[i], 0), Table::pct(baseline.mem[i], 0),
               Table::pct(hybridmr.mem[i], 0), Table::pct(baseline.io[i], 0),
               Table::pct(hybridmr.io[i], 0)});
  }
  table.print();
  std::printf(
      "\n  80-minute means — cpu: %.1f%% -> %.1f%%, mem: %.1f%% -> %.1f%%, "
      "io: %.1f%% -> %.1f%%\n",
      100 * mean_of(baseline.cpu), 100 * mean_of(hybridmr.cpu),
      100 * mean_of(baseline.mem), 100 * mean_of(hybridmr.mem),
      100 * mean_of(baseline.io), 100 * mean_of(hybridmr.io));
  std::printf("  paper: HybridMR sustains visibly higher utilization on all "
              "three resources\n");
  return 0;
}
