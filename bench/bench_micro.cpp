// Micro-benchmarks (google-benchmark) for the simulator's hot paths: the
// event queue, the max-min fair allocator, machine recomputation, the
// regression fits, and an end-to-end small job.
#include <benchmark/benchmark.h>

#include "cluster/cluster.h"
#include "harness/testbed.h"
#include "sim/event_queue.h"
#include "sim/simulation.h"
#include "stats/regression.h"
#include "workload/benchmarks.h"

namespace {

using namespace hybridmr;

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.push(static_cast<double>((i * 7919) % n), [] {});
    }
    while (auto e = q.pop()) benchmark::DoNotOptimize(e->time);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1000)->Arg(10000);

void BM_EventCancellation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventId> ids;
    ids.reserve(n);
    for (int i = 0; i < n; ++i) ids.push_back(q.push(i, [] {}));
    for (int i = 0; i < n; i += 2) q.cancel(ids[i]);
    while (auto e = q.pop()) benchmark::DoNotOptimize(e->time);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventCancellation)->Arg(10000);

void BM_Waterfill(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<double> demands(n);
  for (int i = 0; i < n; ++i) demands[i] = 1.0 + (i % 17);
  for (auto _ : state) {
    auto alloc = cluster::waterfill(static_cast<double>(n), demands);
    benchmark::DoNotOptimize(alloc.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Waterfill)->Arg(8)->Arg(64)->Arg(512);

void BM_MachineRecompute(benchmark::State& state) {
  const int workloads = static_cast<int>(state.range(0));
  sim::Simulation sim;
  cluster::HybridCluster hc(sim);
  auto* machine = hc.add_machine();
  auto* vm1 = hc.add_vm(*machine);
  auto* vm2 = hc.add_vm(*machine);
  for (int i = 0; i < workloads; ++i) {
    cluster::Resources d;
    d.cpu = 0.3;
    d.disk = 10;
    d.memory = 100;
    (i % 2 == 0 ? vm1 : vm2)
        ->add(std::make_shared<cluster::Workload>(
            "w" + std::to_string(i), d, cluster::Workload::kService));
  }
  for (auto _ : state) {
    // Benchmarking the recompute pass itself; the sanctioned entry points
    // (invalidate/ensure_clean) are covered by BM_RecomputeBurst.
    machine->recompute();  // sim-lint: allow(eager-recompute)
  }
  state.SetItemsProcessed(state.iterations() * workloads);
}
BENCHMARK(BM_MachineRecompute)->Arg(4)->Arg(16)->Arg(64);

// A k-mutation burst at one simulated instant — the placement-burst /
// DRM-epoch pattern. Deferred reallocation coalesces the burst into one
// recompute per machine at the drain; eager mode (the pre-coalescing
// behavior) recomputes per mutation. The ratio of the two is the headline
// number scripts/perf_gate.py gates on, because it is hardware-independent.
template <bool kEager>
void BM_RecomputeBurst(benchmark::State& state) {
  const int burst = static_cast<int>(state.range(0));
  sim::Simulation sim;
  cluster::HybridCluster hc(sim);
  hc.set_eager_reallocation(kEager);
  auto* machine = hc.add_machine();
  auto* vm1 = hc.add_vm(*machine);
  auto* vm2 = hc.add_vm(*machine);
  std::vector<std::shared_ptr<cluster::Workload>> workloads;
  for (int i = 0; i < burst; ++i) {
    cluster::Resources d;
    d.cpu = 0.3;
    d.disk = 10;
    d.memory = 100;
    auto w = std::make_shared<cluster::Workload>(
        "w" + std::to_string(i), d, cluster::Workload::kService);
    (i % 2 == 0 ? vm1 : vm2)->add(w);
    workloads.push_back(std::move(w));
  }
  cluster::Resources caps;
  for (auto _ : state) {
    // One burst: every workload's caps change at the same instant...
    for (int i = 0; i < burst; ++i) {
      caps = cluster::Resources::unbounded();
      caps.cpu = 0.1 + 0.01 * ((static_cast<int>(state.iterations()) + i) % 7);
      workloads[static_cast<std::size_t>(i)]->set_caps(caps);
    }
    // ...then the event boundary drains the dirty set (no-op when eager).
    sim.flush();
    benchmark::DoNotOptimize(machine->utilization(cluster::ResourceKind::kCpu));
  }
  state.SetItemsProcessed(state.iterations() * burst);
  state.counters["recomputes_per_burst"] =
      static_cast<double>(machine->recompute_count()) /
      static_cast<double>(std::max<std::int64_t>(state.iterations(), 1));
}
BENCHMARK_TEMPLATE(BM_RecomputeBurst, false)
    ->Name("BM_RecomputeBurstDeferred")
    ->Arg(16)
    ->Arg(64);
BENCHMARK_TEMPLATE(BM_RecomputeBurst, true)
    ->Name("BM_RecomputeBurstEager")
    ->Arg(16)
    ->Arg(64);

void BM_LinearRegressionFit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<double> x(n), y(n);
  for (int i = 0; i < n; ++i) {
    x[i] = i;
    y[i] = 3.0 * i + (i % 5);
  }
  for (auto _ : state) {
    auto fit = stats::LinearRegression::fit(x, y);
    benchmark::DoNotOptimize(fit->slope());
  }
}
BENCHMARK(BM_LinearRegressionFit)->Arg(32)->Arg(256);

void BM_PiecewiseFit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<double> x(n), y(n);
  for (int i = 0; i < n; ++i) {
    x[i] = i;
    y[i] = i < n / 2 ? 10.0 : 10.0 + 2.0 * (i - n / 2);
  }
  for (auto _ : state) {
    auto fit = stats::PiecewiseLinearRegression::fit(x, y);
    benchmark::DoNotOptimize(fit->breakpoint());
  }
}
BENCHMARK(BM_PiecewiseFit)->Arg(32)->Arg(128);

void BM_EndToEndSmallJob(benchmark::State& state) {
  for (auto _ : state) {
    harness::TestBed bed;
    bed.add_native_nodes(4);
    const double jct =
        bed.run_job(workload::sort_job().with_input_gb(0.5));
    benchmark::DoNotOptimize(jct);
  }
}
BENCHMARK(BM_EndToEndSmallJob)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
